// Command amacbench regenerates the tables and figures of the AMAC paper
// (Kocberber, Falsafi, Grot: "Asynchronous Memory Access Chaining", VLDB
// 2015) on the simulated memory hierarchy.
//
// Usage:
//
//	amacbench -list                     # show every experiment id
//	amacbench -exp fig5b                # regenerate one artifact
//	amacbench -exp all                  # regenerate everything
//	amacbench -exp fig7 -scale tiny     # quick smoke run
//	amacbench -exp fig6 -window 15      # override the in-flight lookups
//
// Results are printed as aligned text tables whose rows and columns mirror
// the paper's artifacts; EXPERIMENTS.md records the paper-reported values
// next to the measured ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"amac/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		exp    = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale  = flag.String("scale", "small", "dataset scale: tiny, small or paper")
		seed   = flag.Uint64("seed", 42, "workload generation seed")
		window = flag.Int("window", 0, "override the number of in-flight lookups (0 = per-experiment default)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, d := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", d.ID, d.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed, Window: *window}

	var ids []string
	if *exp == "all" {
		for _, d := range experiments.Registry() {
			ids = append(ids, d.ID)
		}
	} else {
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

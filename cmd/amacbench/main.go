// Command amacbench regenerates the tables and figures of the AMAC paper
// (Kocberber, Falsafi, Grot: "Asynchronous Memory Access Chaining", VLDB
// 2015) on the simulated memory hierarchy.
//
// Usage:
//
//	amacbench -list                     # show every experiment id
//	amacbench -exp fig5b                # regenerate one artifact
//	amacbench -exp all                  # regenerate everything
//	amacbench -exp fig7 -scale tiny     # quick smoke run
//	amacbench -exp fig6 -window 15      # override the in-flight lookups
//	amacbench -exp fig6 -parallel 8     # fan sweep points over 8 host cores (same output)
//	amacbench -exp scaleN -workers 8    # sweep the parallel engine up to 8 workers
//	amacbench -exp serveN               # streaming service: arrival-rate sweep
//	amacbench -exp serveN -arrivals bursty -qcap 64  # bursty traffic, bounded drop queue
//	amacbench -exp adaptN               # adaptive execution vs every static config
//	amacbench -exp pipeN                # streaming multi-operator pipelines + mini-planner
//	amacbench -exp pipeN -plans mixed -burst 32  # one plan, smaller pump leases
//	amacbench -exp faultN               # fault injection: graceful-degradation ladder
//	amacbench -exp faultN -faults "slow:0@20000+40000x4,crash:1@90000+30000"
//	amacbench -exp faultN -slo 8000 -deadline 6000  # SLO brownout row, fixed deadline
//	amacbench -exp serveN -json         # machine-readable results, one JSON object per row
//	amacbench -exp adaptN -trace t.json # export a Perfetto-loadable event trace
//	amacbench -exp obsN -metrics m.jsonl -metrics-interval 2048  # gauge time series
//	amacbench -exp profN                # cycle attribution: category breakdown, stall hiding, MLP
//	amacbench -exp profN -flame f.txt -profile p.pb.gz  # flamegraph stacks + pprof proto
//	amacbench -bench                    # benchmark suite -> BENCH_pr4.json
//	amacbench -bench -benchgate BENCH_pr4.json  # CI gate: fail on >3x ns/op regressions
//	amacbench -exp fig6 -cpuprofile cpu.prof  # profile the simulator hot path
//
// Results are printed as aligned text tables whose rows and columns mirror
// the paper's artifacts; EXPERIMENTS.md maps each experiment id to its paper
// table or figure and records the paper-reported trend to compare the
// measured values against. With -json each table row is emitted as one JSON
// object on its own line (timing goes to stderr), so runs can be recorded
// and diffed mechanically.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"amac/internal/experiments"
	"amac/internal/fault"
	"amac/internal/obs"
	"amac/internal/prof"
	"amac/internal/profile"
	"amac/internal/serve"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		exp       = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale     = flag.String("scale", "small", "dataset scale: tiny, small or paper")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		window    = flag.Int("window", 0, "override the number of in-flight lookups (0 = per-experiment default)")
		workers   = flag.Int("workers", 0, "cap the parallel experiments' worker sweep (0 = default sweep 1,2,4,8,16); serveN worker count")
		parallel  = flag.Int("parallel", 0, "host workers for independent sweep points (0 = all cores, 1 = serial); results are identical for every value")
		arrivals  = flag.String("arrivals", "", "serving arrival process: deterministic, poisson (default) or bursty")
		qcap      = flag.Int("qcap", 0, "bound the serving admission queue and drop on overflow (0 = unbounded blocking queue)")
		plans     = flag.String("plans", "", "pipeline plan filter: comma-separated case-insensitive substrings of pipeN plan names (empty = every plan)")
		burst     = flag.Int("burst", 0, "pipeline pump lease size: admissions per upstream lease (0 = pipeline default)")
		pipeCap   = flag.Int("pipecap", 0, "pipeline inter-stage pipe capacity in rows, the backpressure bound (0 = pipeline default)")
		faults    = flag.String("faults", "", "faultN chaos schedule: comma-separated \"kind:shard@start+dur[xfactor]\" episodes or \"rand:SEED[:N]\" (empty = default scenario)")
		deadline  = flag.Int("deadline", 0, "faultN per-request deadline in cycles (0 = derive 2x the clean-run p99)")
		slo       = flag.Int("slo", 0, "faultN p99 SLO budget in cycles; enables the brownout row (0 = omit it)")
		jsonOut   = flag.Bool("json", false, "emit results as JSON Lines (one object per table row) instead of text tables")
		tracePath = flag.String("trace", "", "write a Chrome/Perfetto trace of the experiment's designated cell to this file")
		metPath   = flag.String("metrics", "", "write the designated cell's gauge time series to this file as JSON Lines")
		metEvery  = flag.Int("metrics-interval", 0, "metrics sampling period in simulated cycles (0 = default 4096); requires -metrics")
		profPath  = flag.String("profile", "", "write the designated cell's cycle-attribution profile to this file as a gzipped pprof proto (go tool pprof)")
		flamePath = flag.String("flame", "", "write the designated cell's cycle attribution to this file as folded flamegraph stacks (flamegraph.pl, speedscope)")
		bench     = flag.Bool("bench", false, "run the benchmark suite and write per-benchmark ns/op, allocs/op and simulated cycles")
		benchOut  = flag.String("benchout", "BENCH_pr4.json", "output path for -bench")
		benchGate = flag.String("benchgate", "", "baseline JSON to gate -bench against: fail on any shared benchmark regressing more than 3x in ns/op")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || (*exp == "" && !*bench) {
		listExperiments(os.Stdout)
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id>, -exp all, or -bench")
		}
		return
	}

	if err := validateExplicitZero(flag.Visit); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if *window < 0 {
		fmt.Fprintf(os.Stderr, "amacbench: -window must be non-negative, got %d\n", *window)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "amacbench: -workers must be non-negative, got %d\n", *workers)
		os.Exit(2)
	}
	if *qcap < 0 {
		fmt.Fprintf(os.Stderr, "amacbench: -qcap must be non-negative, got %d\n", *qcap)
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "amacbench: -parallel must be non-negative, got %d\n", *parallel)
		os.Exit(2)
	}
	if _, err := serve.ParseArrivals(*arrivals, 1); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if err := validateServingFlags(*exp, *bench, *arrivals, *qcap); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if *burst < 0 {
		fmt.Fprintf(os.Stderr, "amacbench: -burst must be non-negative, got %d\n", *burst)
		os.Exit(2)
	}
	if *pipeCap < 0 {
		fmt.Fprintf(os.Stderr, "amacbench: -pipecap must be non-negative, got %d\n", *pipeCap)
		os.Exit(2)
	}
	if err := experiments.ValidatePipePlans(*plans); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if err := validatePipelineFlags(*exp, *bench, *plans, *burst, *pipeCap); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if err := validateObsFlags(*exp, *bench, *tracePath, *metPath, *metEvery); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if err := validateProfFlags(*exp, *bench, *profPath, *flamePath); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	if err := validateFaultFlags(*exp, *bench, *faults, *slo, *deadline); err != nil {
		fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
		os.Exit(2)
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Scale: sc, Seed: *seed, Window: *window, Workers: *workers,
		Arrivals: *arrivals, QueueCap: *qcap, Parallel: *parallel,
		Plans: *plans, Burst: *burst, PipeCap: *pipeCap,
		Faults: *faults, Deadline: *deadline, SLOBudget: *slo,
	}
	if *tracePath != "" {
		cfg.Trace = obs.NewTrace(0)
	}
	if *metPath != "" {
		cfg.Metrics = obs.NewMetrics(*metEvery)
	}
	if *profPath != "" || *flamePath != "" {
		cfg.Profile = prof.NewProfile()
	}

	if *bench {
		if err := runBenchSuite(*benchOut, cfg, *scale, *seed, *benchGate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, d := range experiments.Registry() {
			ids = append(ids, d.ID)
		}
	} else {
		if _, ok := experiments.Find(*exp); !ok {
			fmt.Fprintf(os.Stderr, "amacbench: unknown experiment %q\n\n", *exp)
			listExperiments(os.Stderr)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := profile.WriteJSONRows(os.Stdout, id, tables); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
			continue
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if cfg.Trace != nil {
		if err := writeTrace(*tracePath, cfg.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.Metrics != nil {
		if err := writeMetrics(*metPath, cfg.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.Profile != nil {
		if err := writeProfiles(*profPath, *flamePath, cfg.Profile); err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace exports the accumulated event trace as Chrome trace-event JSON
// (Perfetto-loadable) and reports what was written on stderr, keeping stdout
// clean for -json pipelines.
func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	events := 0
	for _, c := range tr.Cores() {
		events += c.Len()
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s (%d core(s), %d event(s))\n", path, len(tr.Cores()), events)
	return nil
}

// writeMetrics exports the sampled gauge time series as JSON Lines.
func writeMetrics(path string, m *obs.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("writing metrics %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	samples := 0
	for _, c := range m.Cores() {
		samples += c.Samples()
	}
	fmt.Fprintf(os.Stderr, "metrics: wrote %s (%d core(s), %d sample(s))\n", path, len(m.Cores()), samples)
	return nil
}

// writeProfiles exports the accumulated cycle attribution: a gzipped pprof
// proto (-profile) and/or folded flamegraph stacks (-flame), reporting what
// was written on stderr so stdout stays clean for -json pipelines.
func writeProfiles(profPath, flamePath string, pr *prof.Profile) error {
	write := func(path, kind string, export func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s %s: %w", kind, path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s (%d core(s), %d attributed cycle(s))\n",
			kind, path, len(pr.Cores()), pr.TotalCycles())
		return nil
	}
	if profPath != "" {
		if err := write(profPath, "profile", func(f *os.File) error { return pr.WritePprof(f) }); err != nil {
			return err
		}
	}
	if flamePath != "" {
		if err := write(flamePath, "flame", func(f *os.File) error { return pr.WriteFolded(f) }); err != nil {
			return err
		}
	}
	return nil
}

// validateExplicitZero rejects knobs explicitly set to zero on the command
// line. Zero means "use the default" for these flags, so an explicit zero is
// always a mistake the run would otherwise silently ignore; flag.Visit sees
// only flags actually set, which is what distinguishes `-qcap 0` from no
// -qcap at all.
func validateExplicitZero(visit func(func(*flag.Flag))) error {
	var bad string
	visit(func(f *flag.Flag) {
		if bad != "" {
			return
		}
		switch f.Name {
		case "deadline", "qcap", "pipecap", "metrics-interval", "slo":
			if f.Value.String() == "0" {
				bad = f.Name
			}
		}
	})
	if bad != "" {
		return fmt.Errorf("-%s 0 is meaningless (zero selects the default; drop the flag instead)", bad)
	}
	return nil
}

// servingExperiments are the experiment ids whose runs consume the serving
// flags: -arrivals selects their traffic shape and -qcap their queue bound.
// Every other experiment ignores both.
var servingExperiments = map[string]bool{
	"serveN": true,
	"adaptN": true,
	"faultN": true,
}

// validateServingFlags rejects -arrivals/-qcap combinations that would
// silently no-op: the flags only affect the serving experiments, so asking
// for them alongside a non-serving experiment (or -bench, whose serving
// scenarios are fixed) is a mistake, not a preference.
func validateServingFlags(exp string, bench bool, arrivals string, qcap int) error {
	if arrivals == "" && qcap == 0 {
		return nil
	}
	set := "-arrivals"
	if arrivals == "" {
		set = "-qcap"
	} else if qcap != 0 {
		set = "-arrivals/-qcap"
	}
	if bench {
		return fmt.Errorf("%s has no effect with -bench (the benchmark suite fixes its serving scenarios)", set)
	}
	if exp == "all" || servingExperiments[exp] {
		return nil
	}
	return fmt.Errorf("%s only affects the serving experiments (serveN, adaptN, faultN), not %q; drop the flag or pick a serving experiment", set, exp)
}

// pipelineExperiments are the experiment ids whose runs consume the pipeline
// flags: -plans filters their plan set, -burst and -pipecap override the pump
// geometry. Every other experiment ignores all three.
var pipelineExperiments = map[string]bool{
	"pipeN": true,
}

// validatePipelineFlags rejects -plans/-burst/-pipecap combinations that
// would silently no-op, mirroring validateServingFlags: the flags only affect
// the pipeline experiments, so asking for them alongside anything else (or
// -bench, whose pipeline scenarios are fixed) is a mistake, not a preference.
func validatePipelineFlags(exp string, bench bool, plans string, burst, pipeCap int) error {
	if plans == "" && burst == 0 && pipeCap == 0 {
		return nil
	}
	var set []string
	if plans != "" {
		set = append(set, "-plans")
	}
	if burst != 0 {
		set = append(set, "-burst")
	}
	if pipeCap != 0 {
		set = append(set, "-pipecap")
	}
	s := strings.Join(set, "/")
	if bench {
		return fmt.Errorf("%s has no effect with -bench (the benchmark suite fixes its pipeline scenarios)", s)
	}
	if exp == "all" || pipelineExperiments[exp] {
		return nil
	}
	return fmt.Errorf("%s only affects the pipeline experiment (pipeN), not %q; drop the flag or pick the pipeline experiment", s, exp)
}

// traceExperiments are the experiment ids with a designated trace cell: the
// one run per experiment that a non-nil Config.Trace records.
var traceExperiments = map[string]bool{
	"serveN": true,
	"adaptN": true,
	"pipeN":  true,
	"obsN":   true,
	"faultN": true,
}

// metricsExperiments are the experiment ids whose designated cell samples the
// gauge time series (the serving experiments and the observability replay;
// pipeN's batch pipelines have no per-worker gauge set).
var metricsExperiments = map[string]bool{
	"serveN": true,
	"adaptN": true,
	"obsN":   true,
	"faultN": true,
}

// validateObsFlags rejects -trace/-metrics/-metrics-interval combinations
// that would silently produce an empty or meaningless export, mirroring the
// serving and pipeline flag guards: the sinks record one experiment's
// designated cell, so they need exactly one experiment that has one, and an
// interval is meaningless without a metrics file to sample into.
func validateObsFlags(exp string, bench bool, trace, metrics string, interval int) error {
	if interval < 0 {
		return fmt.Errorf("-metrics-interval must be non-negative, got %d", interval)
	}
	if interval > 0 && metrics == "" {
		return fmt.Errorf("-metrics-interval requires -metrics (there is no series to sample into)")
	}
	if trace == "" && metrics == "" {
		return nil
	}
	var set []string
	if trace != "" {
		set = append(set, "-trace")
	}
	if metrics != "" {
		set = append(set, "-metrics")
	}
	s := strings.Join(set, "/")
	if bench {
		return fmt.Errorf("%s has no effect with -bench (the benchmark suite runs untraced by design)", s)
	}
	if exp == "all" {
		return fmt.Errorf("%s needs a single experiment, not -exp all (each file holds one experiment's designated cell)", s)
	}
	if trace != "" && !traceExperiments[exp] {
		return fmt.Errorf("-trace only records the serving, pipeline and observability experiments (serveN, adaptN, pipeN, obsN, faultN), not %q", exp)
	}
	if metrics != "" && !metricsExperiments[exp] {
		return fmt.Errorf("-metrics only samples the serving and observability experiments (serveN, adaptN, obsN, faultN), not %q", exp)
	}
	return nil
}

// profExperiments are the experiment ids with a designated profile cell: the
// one run per experiment that a non-nil Config.Profile attributes.
var profExperiments = map[string]bool{
	"profN":  true,
	"serveN": true,
}

// validateProfFlags rejects -profile/-flame combinations that would silently
// produce an empty export, mirroring validateObsFlags: the profiler records
// one experiment's designated cell, so it needs exactly one experiment that
// has one.
func validateProfFlags(exp string, bench bool, profPath, flamePath string) error {
	if profPath == "" && flamePath == "" {
		return nil
	}
	var set []string
	if profPath != "" {
		set = append(set, "-profile")
	}
	if flamePath != "" {
		set = append(set, "-flame")
	}
	s := strings.Join(set, "/")
	if bench {
		return fmt.Errorf("%s has no effect with -bench (the benchmark suite runs unprofiled by design)", s)
	}
	if exp == "all" {
		return fmt.Errorf("%s needs a single experiment, not -exp all (each file holds one experiment's designated cell)", s)
	}
	if !profExperiments[exp] {
		return fmt.Errorf("%s only records the profiling experiments (profN, serveN), not %q", s, exp)
	}
	return nil
}

// faultExperiments are the experiment ids whose runs consume the fault
// flags: -faults scripts their chaos schedule, -deadline and -slo override
// the derived cycle budgets. Every other experiment ignores all three.
var faultExperiments = map[string]bool{
	"faultN": true,
}

// validateFaultFlags rejects -faults/-deadline/-slo combinations that would
// silently no-op, mirroring the other flag guards, and parses the -faults
// spec up front so a malformed schedule fails before any workload is built.
func validateFaultFlags(exp string, bench bool, faults string, slo, deadline int) error {
	if deadline < 0 {
		return fmt.Errorf("-deadline must be non-negative, got %d", deadline)
	}
	if slo < 0 {
		return fmt.Errorf("-slo must be non-negative, got %d", slo)
	}
	if faults != "" {
		if _, err := fault.ParseSpec(faults); err != nil {
			return fmt.Errorf("-faults: %v", err)
		}
	}
	if faults == "" && slo == 0 && deadline == 0 {
		return nil
	}
	var set []string
	if faults != "" {
		set = append(set, "-faults")
	}
	if deadline != 0 {
		set = append(set, "-deadline")
	}
	if slo != 0 {
		set = append(set, "-slo")
	}
	s := strings.Join(set, "/")
	if bench {
		return fmt.Errorf("%s has no effect with -bench (the benchmark suite fixes its scenarios)", s)
	}
	if exp == "all" || faultExperiments[exp] {
		return nil
	}
	return fmt.Errorf("%s only affects the fault experiment (faultN), not %q; drop the flag or pick the fault experiment", s, exp)
}

// listExperiments prints every registered experiment id and title.
func listExperiments(w *os.File) {
	fmt.Fprintln(w, "Available experiments:")
	for _, d := range experiments.Registry() {
		fmt.Fprintf(w, "  %-12s %s\n", d.ID, d.Title)
	}
}

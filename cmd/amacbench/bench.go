package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"amac"
	"amac/internal/experiments"
)

// benchEntry is one benchmark's record in the BENCH JSON file.
type benchEntry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SimCycles is the simulated cycle count of one run (technique
	// micro-benchmarks only; experiments report wall time per artifact).
	SimCycles uint64 `json:"sim_cycles,omitempty"`
}

// benchFile is the emitted document.
type benchFile struct {
	GeneratedBy string       `json:"generated_by"`
	GoVersion   string       `json:"go_version"`
	Scale       string       `json:"scale"`
	Seed        uint64       `json:"seed"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

// minBenchTime is how long each benchmark accumulates iterations; long
// enough to amortize one-time workload construction, short enough that the
// full suite stays a smoke run.
const minBenchTime = 200 * time.Millisecond

// measure times f until minBenchTime has elapsed (at least twice), recording
// wall time, allocation counters and the simulated cycles f reports.
func measure(name string, f func() uint64) benchEntry {
	f() // warm-up: workload construction and caches are not the subject
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	var cycles uint64
	for time.Since(start) < minBenchTime || iters < 2 {
		cycles = f()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchEntry{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		SimCycles:   cycles,
	}
}

// runBenchSuite executes the benchmark suite — one entry per technique
// micro-benchmark (with simulated cycles) and one per registered experiment
// (wall time of the full artifact) — and writes the JSON document to path.
// A non-empty gatePath additionally compares the run against that committed
// baseline and errors on gross regressions (see checkBenchGate).
func runBenchSuite(path string, cfg experiments.Config, scale string, seed uint64, gatePath string) error {
	var out benchFile
	out.GeneratedBy = "amacbench -bench"
	out.GoVersion = runtime.Version()
	out.Scale = scale
	out.Seed = seed

	// Technique micro-benchmarks: wall-clock cost of simulating one probe
	// phase, with the simulated cycle count attached so bit-identity across
	// tool versions is checkable from the file alone.
	const probeSize = 1 << 16
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: probeSize, ProbeSize: probeSize, Seed: 3})
	if err != nil {
		return err
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()
	joinOut := amac.NewOutput(join.Arena, false)
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("probe-uniform/"+tech.String(), func() uint64 {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			joinOut.Reset()
			amac.RunWith(core, join.ProbeMachine(joinOut, true), tech, amac.Params{Window: 10})
			return core.Cycle()
		}))
	}

	gbRel, err := amac.BuildGroupBy(amac.GroupBySpec{Size: 1 << 15, Repeats: 3, Zipf: 0.5, Seed: 3})
	if err != nil {
		return err
	}
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("groupby/"+tech.String(), func() uint64 {
			g := amac.NewGroupBy(gbRel, gbRel.Len()/3)
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			amac.RunWith(core, g.Machine(), tech, amac.Params{Window: 10})
			return core.Cycle()
		}))
	}

	idxBuild, idxProbe, err := amac.BuildIndexWorkload(1<<15, 5)
	if err != nil {
		return err
	}
	bstW := amac.NewBSTWorkload(idxBuild, idxProbe)
	bstOut := amac.NewOutput(bstW.Arena, false)
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("bst-search/"+tech.String(), func() uint64 {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			bstOut.Reset()
			amac.RunWith(core, bstW.SearchMachine(bstOut), tech, amac.Params{Window: 10})
			return core.Cycle()
		}))
	}

	if err := servingBenchmarks(&out); err != nil {
		return err
	}

	// Experiment artifacts: wall time to regenerate each one end to end at
	// the requested scale (workload construction amortizes across
	// iterations through the experiments package's workload cache, exactly
	// as in a sweep).
	for _, d := range experiments.Registry() {
		id := d.ID
		out.Benchmarks = append(out.Benchmarks, measure("exp/"+id, func() uint64 {
			if _, err := experiments.Run(id, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "amacbench: bench %s: %v\n", id, err)
				os.Exit(1)
			}
			return 0
		}))
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "amacbench: wrote %d benchmark entries to %s\n", len(out.Benchmarks), path)
	if gatePath != "" {
		return checkBenchGate(out, gatePath)
	}
	return nil
}

// gateRatio is the regression threshold of the CI bench gate: a benchmark
// may not run more than this factor slower than the committed baseline.
// Generous on purpose — CI runners differ from the recording host, and the
// gate is meant to catch gross bit-rot (an accidentally quadratic path, a
// lost pool), not single-digit noise.
const gateRatio = 3.0

// checkBenchGate compares the just-measured suite against a committed
// baseline file and errors out if any shared benchmark regressed by more
// than gateRatio in ns/op. The baseline may be a plain -bench output file or
// a BENCH_pr*.json record holding one under "amacbench_bench".
func checkBenchGate(current benchFile, baselinePath string) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var wrapped struct {
		AmacbenchBench *benchFile `json:"amacbench_bench"`
	}
	var base benchFile
	if err := json.Unmarshal(buf, &wrapped); err == nil && wrapped.AmacbenchBench != nil {
		base = *wrapped.AmacbenchBench
	} else if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("bench gate: cannot parse baseline %s: %v", baselinePath, err)
	}

	if base.Scale != "" && base.Scale != current.Scale {
		return fmt.Errorf("bench gate: baseline %s was recorded at scale %q but this run used %q; ns/op is only comparable at the same scale",
			baselinePath, base.Scale, current.Scale)
	}

	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b.NsPerOp
	}
	var failures []string
	shared := 0
	for _, b := range current.Benchmarks {
		want, ok := baseline[b.Name]
		if !ok || want <= 0 {
			continue
		}
		shared++
		if b.NsPerOp > gateRatio*want {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.1fx > %.1fx)",
				b.Name, b.NsPerOp, want, b.NsPerOp/want, gateRatio))
		}
	}
	if shared == 0 {
		return fmt.Errorf("bench gate: baseline %s shares no benchmark names with this run", baselinePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "amacbench: bench gate FAIL:", f)
		}
		return fmt.Errorf("bench gate: %d of %d shared benchmarks regressed more than %.0fx", len(failures), shared, gateRatio)
	}
	fmt.Fprintf(os.Stderr, "amacbench: bench gate OK (%d shared benchmarks within %.0fx of %s)\n", shared, gateRatio, baselinePath)
	return nil
}

// chainState/chainMachine form a compute-only operator for the
// serving-machinery benchmarks: each lookup runs `stages` code stages that
// charge one abstract instruction and touch no simulated memory.
type chainState struct{ left int }

type chainMachine struct{ n, stages int }

func (m chainMachine) NumLookups() int        { return m.n }
func (m chainMachine) ProvisionedStages() int { return m.stages }

func (m chainMachine) Init(c *amac.Core, s *chainState, i int) amac.Outcome {
	c.Instr(1)
	s.left = m.stages - 1
	if s.left <= 0 {
		return amac.Outcome{Done: true}
	}
	return amac.Outcome{NextStage: 1}
}

func (m chainMachine) Stage(c *amac.Core, s *chainState, stage int) amac.Outcome {
	c.Instr(1)
	if s.left--; s.left <= 0 {
		return amac.Outcome{Done: true}
	}
	return amac.Outcome{NextStage: stage}
}

// Serving benchmark workload knobs. The join is LLC-resident and skewed
// (long divergent chains, the serveN shape); the arrival period is chosen so
// the queue stays busy without unbounded growth for AMAC.
const (
	srvBenchSize   = 1 << 13
	srvBenchSeed   = 3
	srvBenchPeriod = 260
)

// servingBenchmarks appends the serving/streaming entries: one full
// open-loop serving run per technique (Poisson arrivals near capacity) and
// one fully backlogged stream replay per technique (every request due at
// cycle 0, so the run measures the steady-state serving fast path — queue
// admit/pop, stream scheduling, completion accounting — with no idle time).
func servingBenchmarks(out *benchFile) error {
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: srvBenchSize, ProbeSize: srvBenchSize, ZipfBuild: 1.0, Seed: srvBenchSeed})
	if err != nil {
		return err
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()
	srvOut := amac.NewOutput(join.Arena, false)
	arrivals := amac.Poisson{MeanPeriod: srvBenchPeriod}.Schedule(srvBenchSize, 7)
	backlog := make([]uint64, srvBenchSize) // everything due at cycle 0

	serveOnce := func(tech amac.Technique, arr []uint64) uint64 {
		srvOut.Reset()
		res := amac.RunService(amac.ServiceOptions{
			Hardware:  amac.XeonX5670(),
			Technique: tech,
			Window:    10,
		}, []amac.ServiceWorker[amac.ProbeState]{{
			Machine:  join.ProbeMachine(srvOut, true),
			Arrivals: arr,
		}})
		return res.ElapsedCycles()
	}

	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("serve-run/"+tech.String(), func() uint64 {
			return serveOnce(tech, arrivals)
		}))
	}
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("stream-backlog/"+tech.String(), func() uint64 {
			return serveOnce(tech, backlog)
		}))
	}
	// Serving-machinery benchmarks: a compute-only chain machine (no memory
	// accesses, so the memory-hierarchy model contributes almost nothing)
	// streamed from a fully backlogged queue. What remains is exactly the
	// serving fast path — ring admit/pop, engine slot scheduling, pooled
	// per-request state, recycled socket models, latency recording — which
	// is what this suite's serving entries exist to track.
	mach := chainMachine{n: 1 << 15, stages: 4}
	machBacklog := make([]uint64, mach.n)
	for _, tech := range amac.Techniques {
		tech := tech
		var machOut uint64
		out.Benchmarks = append(out.Benchmarks, measure("serve-machinery/"+tech.String(), func() uint64 {
			res := amac.RunService(amac.ServiceOptions{
				Hardware:  amac.XeonX5670(),
				Technique: tech,
				Window:    10,
			}, []amac.ServiceWorker[chainState]{{
				Machine:  mach,
				Arrivals: machBacklog,
			}})
			machOut = res.Latency.Completed
			return res.ElapsedCycles()
		}))
		if machOut != uint64(mach.n) {
			return fmt.Errorf("serve-machinery/%s: completed %d of %d requests", tech, machOut, mach.n)
		}
	}

	// Observability pair: the AMAC serving run with the trace and metrics
	// sinks attached versus the untraced serve-run/AMAC entry above. The
	// untraced arm is the guarded (disabled) path; the gate holds it to the
	// committed pre-instrumentation baseline, and the traced arm documents
	// the price of full event recording.
	out.Benchmarks = append(out.Benchmarks, measure("serve-obs/off", func() uint64 {
		return serveOnce(amac.AMAC, arrivals)
	}))
	out.Benchmarks = append(out.Benchmarks, measure("serve-obs/on", func() uint64 {
		srvOut.Reset()
		res := amac.RunService(amac.ServiceOptions{
			Hardware:  amac.XeonX5670(),
			Technique: amac.AMAC,
			Window:    10,
			Trace:     amac.NewTrace(0),
			Metrics:   amac.NewMetrics(0),
		}, []amac.ServiceWorker[amac.ProbeState]{{
			Machine:  join.ProbeMachine(srvOut, true),
			Arrivals: arrivals,
		}})
		return res.ElapsedCycles()
	}))

	// Bounded drop queue under bursty overload: exercises the admission
	// ring's wrap-around and the drop accounting.
	bursty := amac.Bursty{Period: 60, BurstLen: 128, Off: 24000}.Schedule(srvBenchSize, 11)
	out.Benchmarks = append(out.Benchmarks, measure("serve-drop/AMAC", func() uint64 {
		srvOut.Reset()
		res := amac.RunService(amac.ServiceOptions{
			Hardware:  amac.XeonX5670(),
			Technique: amac.AMAC,
			Window:    10,
			QueueCap:  64,
			Policy:    amac.QueueDrop,
		}, []amac.ServiceWorker[amac.ProbeState]{{
			Machine:  join.ProbeMachine(srvOut, true),
			Arrivals: bursty,
		}})
		return res.ElapsedCycles()
	}))
	return nil
}

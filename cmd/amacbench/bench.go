package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"amac"
	"amac/internal/experiments"
)

// benchEntry is one benchmark's record in the BENCH JSON file.
type benchEntry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SimCycles is the simulated cycle count of one run (technique
	// micro-benchmarks only; experiments report wall time per artifact).
	SimCycles uint64 `json:"sim_cycles,omitempty"`
}

// benchFile is the emitted document.
type benchFile struct {
	GeneratedBy string       `json:"generated_by"`
	GoVersion   string       `json:"go_version"`
	Scale       string       `json:"scale"`
	Seed        uint64       `json:"seed"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

// minBenchTime is how long each benchmark accumulates iterations; long
// enough to amortize one-time workload construction, short enough that the
// full suite stays a smoke run.
const minBenchTime = 200 * time.Millisecond

// measure times f until minBenchTime has elapsed (at least twice), recording
// wall time, allocation counters and the simulated cycles f reports.
func measure(name string, f func() uint64) benchEntry {
	f() // warm-up: workload construction and caches are not the subject
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	var cycles uint64
	for time.Since(start) < minBenchTime || iters < 2 {
		cycles = f()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchEntry{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		SimCycles:   cycles,
	}
}

// runBenchSuite executes the benchmark suite — one entry per technique
// micro-benchmark (with simulated cycles) and one per registered experiment
// (wall time of the full artifact) — and writes the JSON document to path.
func runBenchSuite(path string, cfg experiments.Config, scale string, seed uint64) error {
	var out benchFile
	out.GeneratedBy = "amacbench -bench"
	out.GoVersion = runtime.Version()
	out.Scale = scale
	out.Seed = seed

	// Technique micro-benchmarks: wall-clock cost of simulating one probe
	// phase, with the simulated cycle count attached so bit-identity across
	// tool versions is checkable from the file alone.
	const probeSize = 1 << 16
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: probeSize, ProbeSize: probeSize, Seed: 3})
	if err != nil {
		return err
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()
	joinOut := amac.NewOutput(join.Arena, false)
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("probe-uniform/"+tech.String(), func() uint64 {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			joinOut.Reset()
			amac.RunWith(core, join.ProbeMachine(joinOut, true), tech, amac.Params{Window: 10})
			return core.Cycle()
		}))
	}

	gbRel, err := amac.BuildGroupBy(amac.GroupBySpec{Size: 1 << 15, Repeats: 3, Zipf: 0.5, Seed: 3})
	if err != nil {
		return err
	}
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("groupby/"+tech.String(), func() uint64 {
			g := amac.NewGroupBy(gbRel, gbRel.Len()/3)
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			amac.RunWith(core, g.Machine(), tech, amac.Params{Window: 10})
			return core.Cycle()
		}))
	}

	idxBuild, idxProbe, err := amac.BuildIndexWorkload(1<<15, 5)
	if err != nil {
		return err
	}
	bstW := amac.NewBSTWorkload(idxBuild, idxProbe)
	bstOut := amac.NewOutput(bstW.Arena, false)
	for _, tech := range amac.Techniques {
		tech := tech
		out.Benchmarks = append(out.Benchmarks, measure("bst-search/"+tech.String(), func() uint64 {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			bstOut.Reset()
			amac.RunWith(core, bstW.SearchMachine(bstOut), tech, amac.Params{Window: 10})
			return core.Cycle()
		}))
	}

	// Experiment artifacts: wall time to regenerate each one end to end at
	// the requested scale (workload construction amortizes across
	// iterations through the experiments package's workload cache, exactly
	// as in a sweep).
	for _, d := range experiments.Registry() {
		id := d.ID
		out.Benchmarks = append(out.Benchmarks, measure("exp/"+id, func() uint64 {
			if _, err := experiments.Run(id, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "amacbench: bench %s: %v\n", id, err)
				os.Exit(1)
			}
			return 0
		}))
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "amacbench: wrote %d benchmark entries to %s\n", len(out.Benchmarks), path)
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"testing"

	"amac/internal/experiments"
	"amac/internal/obs"
)

// TestValidateServingFlags: -arrivals/-qcap must be rejected whenever they
// would silently no-op — any non-serving experiment, and the benchmark
// suite — and accepted for the serving experiments and -exp all.
func TestValidateServingFlags(t *testing.T) {
	cases := []struct {
		name     string
		exp      string
		bench    bool
		arrivals string
		qcap     int
		wantErr  string // substring; empty means valid
	}{
		{name: "no serving flags", exp: "fig6"},
		{name: "serveN with arrivals", exp: "serveN", arrivals: "bursty"},
		{name: "serveN with qcap", exp: "serveN", qcap: 64},
		{name: "adaptN with both", exp: "adaptN", arrivals: "poisson", qcap: 32},
		{name: "all includes serving", exp: "all", arrivals: "deterministic"},
		{name: "fig6 with arrivals", exp: "fig6", arrivals: "bursty", wantErr: "-arrivals only affects"},
		{name: "fig5b with qcap", exp: "fig5b", qcap: 8, wantErr: "-qcap only affects"},
		{name: "table3 with both", exp: "table3", arrivals: "poisson", qcap: 4, wantErr: "-arrivals/-qcap only affects"},
		{name: "scaleN with qcap", exp: "scaleN", qcap: 16, wantErr: "only affects the serving experiments"},
		{name: "bench with arrivals", bench: true, arrivals: "bursty", wantErr: "no effect with -bench"},
		{name: "bench with qcap", bench: true, qcap: 8, wantErr: "no effect with -bench"},
		{name: "bench without serving flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServingFlags(tc.exp, tc.bench, tc.arrivals, tc.qcap)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestServingExperimentsRegistered: the validator's notion of which
// experiments consume the serving flags must match the registry, so a
// future serving experiment cannot silently fall out of the allowlist.
func TestServingExperimentsRegistered(t *testing.T) {
	for id := range servingExperiments {
		if err := validateServingFlags(id, false, "bursty", 8); err != nil {
			t.Fatalf("serving experiment %q rejected: %v", id, err)
		}
	}
}

// TestValidatePipelineFlags: -plans/-burst/-pipecap must be rejected whenever
// they would silently no-op — any non-pipeline experiment, and the benchmark
// suite — and accepted for the pipeline experiment and -exp all.
func TestValidatePipelineFlags(t *testing.T) {
	cases := []struct {
		name    string
		exp     string
		bench   bool
		plans   string
		burst   int
		pipeCap int
		wantErr string // substring; empty means valid
	}{
		{name: "no pipeline flags", exp: "fig6"},
		{name: "pipeN with plans", exp: "pipeN", plans: "mixed"},
		{name: "pipeN with burst", exp: "pipeN", burst: 32},
		{name: "pipeN with pipecap", exp: "pipeN", pipeCap: 64},
		{name: "pipeN with all three", exp: "pipeN", plans: "bst,chain", burst: 16, pipeCap: 32},
		{name: "all includes pipeline", exp: "all", burst: 16},
		{name: "fig6 with plans", exp: "fig6", plans: "mixed", wantErr: "-plans only affects"},
		{name: "fig5b with burst", exp: "fig5b", burst: 8, wantErr: "-burst only affects"},
		{name: "serveN with pipecap", exp: "serveN", pipeCap: 8, wantErr: "-pipecap only affects"},
		{name: "table3 with plans and burst", exp: "table3", plans: "agg", burst: 8, wantErr: "-plans/-burst only affects"},
		{name: "scaleN with all three", exp: "scaleN", plans: "bst", burst: 4, pipeCap: 8, wantErr: "-plans/-burst/-pipecap only affects"},
		{name: "bench with plans", bench: true, plans: "mixed", wantErr: "no effect with -bench"},
		{name: "bench with burst", bench: true, burst: 8, wantErr: "no effect with -bench"},
		{name: "bench without pipeline flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validatePipelineFlags(tc.exp, tc.bench, tc.plans, tc.burst, tc.pipeCap)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestPipelineExperimentsRegistered mirrors the serving allowlist check for
// the pipeline flags.
func TestPipelineExperimentsRegistered(t *testing.T) {
	for id := range pipelineExperiments {
		if err := validatePipelineFlags(id, false, "mixed", 8, 16); err != nil {
			t.Fatalf("pipeline experiment %q rejected: %v", id, err)
		}
	}
}

// TestValidateObsFlags: -trace/-metrics/-metrics-interval must be rejected
// whenever they would silently produce an empty or meaningless export — an
// experiment without a designated cell, -exp all, the benchmark suite, or an
// interval with no metrics file — and accepted for the allowlisted
// experiments.
func TestValidateObsFlags(t *testing.T) {
	cases := []struct {
		name     string
		exp      string
		bench    bool
		trace    string
		metrics  string
		interval int
		wantErr  string // substring; empty means valid
	}{
		{name: "no obs flags", exp: "fig6"},
		{name: "serveN with trace", exp: "serveN", trace: "t.json"},
		{name: "adaptN with trace and metrics", exp: "adaptN", trace: "t.json", metrics: "m.jsonl"},
		{name: "pipeN with trace", exp: "pipeN", trace: "t.json"},
		{name: "obsN with everything", exp: "obsN", trace: "t.json", metrics: "m.jsonl", interval: 2048},
		{name: "obsN metrics only", exp: "obsN", metrics: "m.jsonl"},
		{name: "negative interval", exp: "obsN", metrics: "m.jsonl", interval: -1, wantErr: "must be non-negative"},
		{name: "interval without metrics", exp: "obsN", trace: "t.json", interval: 2048, wantErr: "-metrics-interval requires -metrics"},
		{name: "trace with fig6", exp: "fig6", trace: "t.json", wantErr: "-trace only records"},
		{name: "metrics with fig5b", exp: "fig5b", metrics: "m.jsonl", wantErr: "-metrics only samples"},
		{name: "metrics with pipeN", exp: "pipeN", metrics: "m.jsonl", wantErr: "-metrics only samples"},
		{name: "trace with exp all", exp: "all", trace: "t.json", wantErr: "not -exp all"},
		{name: "metrics with exp all", exp: "all", metrics: "m.jsonl", wantErr: "not -exp all"},
		{name: "bench with trace", bench: true, trace: "t.json", wantErr: "no effect with -bench"},
		{name: "bench with metrics", bench: true, metrics: "m.jsonl", wantErr: "no effect with -bench"},
		{name: "bench without obs flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateObsFlags(tc.exp, tc.bench, tc.trace, tc.metrics, tc.interval)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestObsExperimentsRegistered: every experiment in the trace and metrics
// allowlists must exist in the registry and be accepted by the validator, so
// a renamed experiment cannot leave a dangling allowlist entry.
func TestObsExperimentsRegistered(t *testing.T) {
	for id := range traceExperiments {
		if _, ok := experiments.Find(id); !ok {
			t.Fatalf("trace allowlist entry %q is not a registered experiment", id)
		}
		if err := validateObsFlags(id, false, "t.json", "", 0); err != nil {
			t.Fatalf("trace experiment %q rejected: %v", id, err)
		}
	}
	for id := range metricsExperiments {
		if _, ok := experiments.Find(id); !ok {
			t.Fatalf("metrics allowlist entry %q is not a registered experiment", id)
		}
		if err := validateObsFlags(id, false, "", "m.jsonl", 0); err != nil {
			t.Fatalf("metrics experiment %q rejected: %v", id, err)
		}
	}
}

// TestValidateProfFlags: -profile/-flame must be rejected whenever they
// would silently produce an empty export — an experiment without a
// designated profile cell, -exp all, or the benchmark suite — and accepted
// for the allowlisted experiments.
func TestValidateProfFlags(t *testing.T) {
	cases := []struct {
		name    string
		exp     string
		bench   bool
		prof    string
		flame   string
		wantErr string // substring; empty means valid
	}{
		{name: "no prof flags", exp: "fig6"},
		{name: "profN with profile", exp: "profN", prof: "p.pb.gz"},
		{name: "profN with flame", exp: "profN", flame: "f.txt"},
		{name: "profN with both", exp: "profN", prof: "p.pb.gz", flame: "f.txt"},
		{name: "serveN with flame", exp: "serveN", flame: "f.txt"},
		{name: "profile with fig6", exp: "fig6", prof: "p.pb.gz", wantErr: "-profile only records"},
		{name: "flame with obsN", exp: "obsN", flame: "f.txt", wantErr: "-flame only records"},
		{name: "both with adaptN", exp: "adaptN", prof: "p.pb.gz", flame: "f.txt", wantErr: "-profile/-flame only records"},
		{name: "profile with exp all", exp: "all", prof: "p.pb.gz", wantErr: "not -exp all"},
		{name: "bench with flame", bench: true, flame: "f.txt", wantErr: "no effect with -bench"},
		{name: "bench without prof flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateProfFlags(tc.exp, tc.bench, tc.prof, tc.flame)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestProfExperimentsRegistered mirrors the obs allowlist check for the
// profiling flags: every allowlisted id must exist in the registry and be
// accepted by the validator.
func TestProfExperimentsRegistered(t *testing.T) {
	for id := range profExperiments {
		if _, ok := experiments.Find(id); !ok {
			t.Fatalf("profile allowlist entry %q is not a registered experiment", id)
		}
		if err := validateProfFlags(id, false, "p.pb.gz", "f.txt"); err != nil {
			t.Fatalf("profiled experiment %q rejected: %v", id, err)
		}
	}
}

// TestValidateExplicitZero: knobs whose zero value means "use the default"
// must reject an explicit `-flag 0` on the command line — it would silently
// behave as if the flag were absent — while an unset flag, a nonzero value,
// or an explicit zero on an unrelated flag all pass.
func TestValidateExplicitZero(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means valid
	}{
		{name: "no flags", args: nil},
		{name: "nonzero qcap", args: []string{"-qcap", "64"}},
		{name: "nonzero deadline and slo", args: []string{"-deadline", "6000", "-slo", "8000"}},
		{name: "unrelated zero", args: []string{"-window", "0"}},
		{name: "explicit zero qcap", args: []string{"-qcap", "0"}, wantErr: "-qcap 0 is meaningless"},
		{name: "explicit zero deadline", args: []string{"-deadline", "0"}, wantErr: "-deadline 0 is meaningless"},
		{name: "explicit zero slo", args: []string{"-slo", "0"}, wantErr: "-slo 0 is meaningless"},
		{name: "explicit zero pipecap", args: []string{"-pipecap", "0"}, wantErr: "-pipecap 0 is meaningless"},
		{name: "explicit zero metrics-interval", args: []string{"-metrics-interval", "0"}, wantErr: "-metrics-interval 0 is meaningless"},
		{name: "zero among valid flags", args: []string{"-qcap", "32", "-pipecap", "0"}, wantErr: "-pipecap 0 is meaningless"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("amacbench", flag.ContinueOnError)
			fs.Int("window", 0, "")
			fs.Int("qcap", 0, "")
			fs.Int("pipecap", 0, "")
			fs.Int("metrics-interval", 0, "")
			fs.Int("deadline", 0, "")
			fs.Int("slo", 0, "")
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := validateExplicitZero(fs.Visit)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateFaultFlags: -faults/-deadline/-slo must be rejected whenever
// they would silently no-op — any non-fault experiment, and the benchmark
// suite — or carry a malformed schedule or negative budget; and accepted for
// the fault experiment and -exp all.
func TestValidateFaultFlags(t *testing.T) {
	cases := []struct {
		name     string
		exp      string
		bench    bool
		faults   string
		slo      int
		deadline int
		wantErr  string // substring; empty means valid
	}{
		{name: "no fault flags", exp: "fig6"},
		{name: "faultN plain", exp: "faultN"},
		{name: "faultN with scripted schedule", exp: "faultN", faults: "slow:0@20000+40000x4,crash:1@90000+30000"},
		{name: "faultN with random schedule", exp: "faultN", faults: "rand:7:3"},
		{name: "faultN with deadline", exp: "faultN", deadline: 6000},
		{name: "faultN with slo", exp: "faultN", slo: 8000},
		{name: "all includes fault", exp: "all", faults: "freeze:0@1000+2000"},
		{name: "malformed schedule", exp: "faultN", faults: "slow:0@bogus", wantErr: "-faults"},
		{name: "slow without factor", exp: "faultN", faults: "slow:0@1000+2000", wantErr: "-faults"},
		{name: "negative deadline", exp: "faultN", deadline: -1, wantErr: "-deadline must be non-negative"},
		{name: "negative slo", exp: "faultN", slo: -5, wantErr: "-slo must be non-negative"},
		{name: "fig6 with faults", exp: "fig6", faults: "rand:1", wantErr: "-faults only affects"},
		{name: "serveN with deadline", exp: "serveN", deadline: 4000, wantErr: "-deadline only affects"},
		{name: "serveN with slo", exp: "serveN", slo: 4000, wantErr: "-slo only affects"},
		{name: "table3 with all three", exp: "table3", faults: "rand:1", slo: 2, deadline: 3, wantErr: "-faults/-deadline/-slo only affects"},
		{name: "bench with faults", bench: true, faults: "rand:1", wantErr: "no effect with -bench"},
		{name: "bench with slo", bench: true, slo: 100, wantErr: "no effect with -bench"},
		{name: "bench without fault flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFaultFlags(tc.exp, tc.bench, tc.faults, tc.slo, tc.deadline)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFaultExperimentsRegistered mirrors the serving allowlist check for the
// fault flags: every allowlisted id must exist in the registry and be
// accepted by the validator.
func TestFaultExperimentsRegistered(t *testing.T) {
	for id := range faultExperiments {
		if _, ok := experiments.Find(id); !ok {
			t.Fatalf("fault allowlist entry %q is not a registered experiment", id)
		}
		if err := validateFaultFlags(id, false, "rand:3", 100, 100); err != nil {
			t.Fatalf("fault experiment %q rejected: %v", id, err)
		}
	}
}

// TestTraceJSONRoundTrip runs the observability replay with a trace attached
// and parses the Chrome export back: the file must be a single valid JSON
// object in trace-event format, name its process and fixed tracks, carry
// decision instants on the controller track, and keep every track's B/E spans
// balanced (never more ends than begins).
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := obs.NewTrace(0)
	if _, err := experiments.Run("obsN", experiments.Config{Scale: experiments.Tiny, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export holds no events")
	}

	var haveProcess, haveController, haveDecision, haveSlotSpan bool
	depth := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			t.Fatalf("event %+v has no phase", ev)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			haveProcess = true
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "controller":
			haveController = true
		case ev.Ph == "i" && ev.Tid == 0 && ev.Name == obs.DecisionName(obs.DecSwitch):
			haveDecision = true
		}
		key := fmt.Sprintf("%d/%d", ev.Pid, ev.Tid)
		switch ev.Ph {
		case "B":
			depth[key]++
			if ev.Tid >= 3 {
				haveSlotSpan = true
			}
		case "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("track %s closes more spans than it opens", key)
			}
		}
	}
	if !haveProcess || !haveController {
		t.Fatalf("missing metadata: process=%v controller=%v", haveProcess, haveController)
	}
	if !haveDecision {
		t.Fatal("no technique-switch decision instant on the controller track (the shift workload must switch)")
	}
	if !haveSlotSpan {
		t.Fatal("no slot lifecycle span in the export")
	}
}

// TestValidatePipePlans: every -plans token must select at least one pipeN
// plan; matching is a case-insensitive substring over the plan names.
func TestValidatePipePlans(t *testing.T) {
	cases := []struct {
		name    string
		filter  string
		wantErr string
	}{
		{name: "empty filter", filter: ""},
		{name: "mixed", filter: "mixed"},
		{name: "case-insensitive", filter: "BST"},
		{name: "multiple tokens", filter: "agg, chain"},
		{name: "full name", filter: "probe→BST filter (steady)"},
		{name: "unknown token", filter: "mixed,nosuchplan", wantErr: "matches no pipeN plan"},
		{name: "empty token", filter: "mixed,,agg", wantErr: "empty token"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := experiments.ValidatePipePlans(tc.filter)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

package main

import (
	"strings"
	"testing"
)

// TestValidateServingFlags: -arrivals/-qcap must be rejected whenever they
// would silently no-op — any non-serving experiment, and the benchmark
// suite — and accepted for the serving experiments and -exp all.
func TestValidateServingFlags(t *testing.T) {
	cases := []struct {
		name     string
		exp      string
		bench    bool
		arrivals string
		qcap     int
		wantErr  string // substring; empty means valid
	}{
		{name: "no serving flags", exp: "fig6"},
		{name: "serveN with arrivals", exp: "serveN", arrivals: "bursty"},
		{name: "serveN with qcap", exp: "serveN", qcap: 64},
		{name: "adaptN with both", exp: "adaptN", arrivals: "poisson", qcap: 32},
		{name: "all includes serving", exp: "all", arrivals: "deterministic"},
		{name: "fig6 with arrivals", exp: "fig6", arrivals: "bursty", wantErr: "-arrivals only affects"},
		{name: "fig5b with qcap", exp: "fig5b", qcap: 8, wantErr: "-qcap only affects"},
		{name: "table3 with both", exp: "table3", arrivals: "poisson", qcap: 4, wantErr: "-arrivals/-qcap only affects"},
		{name: "scaleN with qcap", exp: "scaleN", qcap: 16, wantErr: "only affects the serving experiments"},
		{name: "bench with arrivals", bench: true, arrivals: "bursty", wantErr: "no effect with -bench"},
		{name: "bench with qcap", bench: true, qcap: 8, wantErr: "no effect with -bench"},
		{name: "bench without serving flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServingFlags(tc.exp, tc.bench, tc.arrivals, tc.qcap)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestServingExperimentsRegistered: the validator's notion of which
// experiments consume the serving flags must match the registry, so a
// future serving experiment cannot silently fall out of the allowlist.
func TestServingExperimentsRegistered(t *testing.T) {
	for id := range servingExperiments {
		if err := validateServingFlags(id, false, "bursty", 8); err != nil {
			t.Fatalf("serving experiment %q rejected: %v", id, err)
		}
	}
}

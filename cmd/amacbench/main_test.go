package main

import (
	"strings"
	"testing"

	"amac/internal/experiments"
)

// TestValidateServingFlags: -arrivals/-qcap must be rejected whenever they
// would silently no-op — any non-serving experiment, and the benchmark
// suite — and accepted for the serving experiments and -exp all.
func TestValidateServingFlags(t *testing.T) {
	cases := []struct {
		name     string
		exp      string
		bench    bool
		arrivals string
		qcap     int
		wantErr  string // substring; empty means valid
	}{
		{name: "no serving flags", exp: "fig6"},
		{name: "serveN with arrivals", exp: "serveN", arrivals: "bursty"},
		{name: "serveN with qcap", exp: "serveN", qcap: 64},
		{name: "adaptN with both", exp: "adaptN", arrivals: "poisson", qcap: 32},
		{name: "all includes serving", exp: "all", arrivals: "deterministic"},
		{name: "fig6 with arrivals", exp: "fig6", arrivals: "bursty", wantErr: "-arrivals only affects"},
		{name: "fig5b with qcap", exp: "fig5b", qcap: 8, wantErr: "-qcap only affects"},
		{name: "table3 with both", exp: "table3", arrivals: "poisson", qcap: 4, wantErr: "-arrivals/-qcap only affects"},
		{name: "scaleN with qcap", exp: "scaleN", qcap: 16, wantErr: "only affects the serving experiments"},
		{name: "bench with arrivals", bench: true, arrivals: "bursty", wantErr: "no effect with -bench"},
		{name: "bench with qcap", bench: true, qcap: 8, wantErr: "no effect with -bench"},
		{name: "bench without serving flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServingFlags(tc.exp, tc.bench, tc.arrivals, tc.qcap)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestServingExperimentsRegistered: the validator's notion of which
// experiments consume the serving flags must match the registry, so a
// future serving experiment cannot silently fall out of the allowlist.
func TestServingExperimentsRegistered(t *testing.T) {
	for id := range servingExperiments {
		if err := validateServingFlags(id, false, "bursty", 8); err != nil {
			t.Fatalf("serving experiment %q rejected: %v", id, err)
		}
	}
}

// TestValidatePipelineFlags: -plans/-burst/-pipecap must be rejected whenever
// they would silently no-op — any non-pipeline experiment, and the benchmark
// suite — and accepted for the pipeline experiment and -exp all.
func TestValidatePipelineFlags(t *testing.T) {
	cases := []struct {
		name    string
		exp     string
		bench   bool
		plans   string
		burst   int
		pipeCap int
		wantErr string // substring; empty means valid
	}{
		{name: "no pipeline flags", exp: "fig6"},
		{name: "pipeN with plans", exp: "pipeN", plans: "mixed"},
		{name: "pipeN with burst", exp: "pipeN", burst: 32},
		{name: "pipeN with pipecap", exp: "pipeN", pipeCap: 64},
		{name: "pipeN with all three", exp: "pipeN", plans: "bst,chain", burst: 16, pipeCap: 32},
		{name: "all includes pipeline", exp: "all", burst: 16},
		{name: "fig6 with plans", exp: "fig6", plans: "mixed", wantErr: "-plans only affects"},
		{name: "fig5b with burst", exp: "fig5b", burst: 8, wantErr: "-burst only affects"},
		{name: "serveN with pipecap", exp: "serveN", pipeCap: 8, wantErr: "-pipecap only affects"},
		{name: "table3 with plans and burst", exp: "table3", plans: "agg", burst: 8, wantErr: "-plans/-burst only affects"},
		{name: "scaleN with all three", exp: "scaleN", plans: "bst", burst: 4, pipeCap: 8, wantErr: "-plans/-burst/-pipecap only affects"},
		{name: "bench with plans", bench: true, plans: "mixed", wantErr: "no effect with -bench"},
		{name: "bench with burst", bench: true, burst: 8, wantErr: "no effect with -bench"},
		{name: "bench without pipeline flags", bench: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validatePipelineFlags(tc.exp, tc.bench, tc.plans, tc.burst, tc.pipeCap)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestPipelineExperimentsRegistered mirrors the serving allowlist check for
// the pipeline flags.
func TestPipelineExperimentsRegistered(t *testing.T) {
	for id := range pipelineExperiments {
		if err := validatePipelineFlags(id, false, "mixed", 8, 16); err != nil {
			t.Fatalf("pipeline experiment %q rejected: %v", id, err)
		}
	}
}

// TestValidatePipePlans: every -plans token must select at least one pipeN
// plan; matching is a case-insensitive substring over the plan names.
func TestValidatePipePlans(t *testing.T) {
	cases := []struct {
		name    string
		filter  string
		wantErr string
	}{
		{name: "empty filter", filter: ""},
		{name: "mixed", filter: "mixed"},
		{name: "case-insensitive", filter: "BST"},
		{name: "multiple tokens", filter: "agg, chain"},
		{name: "full name", filter: "probe→BST filter (steady)"},
		{name: "unknown token", filter: "mixed,nosuchplan", wantErr: "matches no pipeN plan"},
		{name: "empty token", filter: "mixed,,agg", wantErr: "empty token"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := experiments.ValidatePipePlans(tc.filter)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

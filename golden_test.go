package amac_test

// Golden cycle-count regression tests: fixed-seed runs of every operator
// under every technique must reproduce the exact simulated statistics
// recorded in testdata/golden_stats.json. Performance work on the simulator
// (arena, memsim, engines) is allowed to change how fast the model runs, but
// never what it computes — cycles, hit/miss counts, evictions and output
// checksums are bit-for-bit stable. Regenerate the goldens only when the
// *model* deliberately changes:
//
//	go test -run TestGoldenStats -update-golden
//
// and justify the diff in the commit message.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"amac"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.json from the current simulator")

// goldenRecord is everything one run must reproduce exactly.
type goldenRecord struct {
	Stats       amac.Stats `json:"stats"`
	L1Hits      uint64     `json:"l1Hits"`
	L1Misses    uint64     `json:"l1Misses"`
	L1Evictions uint64     `json:"l1Evictions"`
	L2Hits      uint64     `json:"l2Hits"`
	L2Misses    uint64     `json:"l2Misses"`
	L2Evictions uint64     `json:"l2Evictions"`
	L3Hits      uint64     `json:"l3Hits"`
	L3Misses    uint64     `json:"l3Misses"`
	L3Evictions uint64     `json:"l3Evictions"`
	OutCount    uint64     `json:"outCount"`
	OutChecksum uint64     `json:"outChecksum"`
}

// goldenRun executes one fixed workload on a fresh core and collects the
// record. hw selects the socket model so both machine configurations (and the
// T4's prefetch-drop behaviour) stay covered.
type goldenRun struct {
	name string
	hw   amac.Hardware
	run  func(c *amac.Core) (outCount, outChecksum uint64)
}

func goldenRuns(t testing.TB) []goldenRun {
	const n = 1 << 12

	buildU, probeU, err := amac.BuildJoin(amac.JoinSpec{BuildSize: n, ProbeSize: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buildZ, probeZ, err := amac.BuildJoin(amac.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gbRel, err := amac.BuildGroupBy(amac.GroupBySpec{Size: n, Repeats: 3, Zipf: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idxBuild, idxProbe, err := amac.BuildIndexWorkload(n, 5)
	if err != nil {
		t.Fatal(err)
	}

	var runs []goldenRun
	for _, tech := range amac.Techniques {
		tech := tech
		runs = append(runs,
			goldenRun{
				name: "probe-uniform/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					j := amac.NewHashJoin(buildU, probeU)
					j.PrebuildRaw()
					out := amac.NewOutput(j.Arena, false)
					amac.RunWith(c, j.ProbeMachine(out, true), tech, amac.Params{Window: 10})
					return out.Count, out.Checksum
				},
			},
			goldenRun{
				name: "probe-skewed/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					j := amac.NewHashJoin(buildZ, probeZ)
					j.PrebuildRaw()
					out := amac.NewOutput(j.Arena, false)
					amac.RunWith(c, j.ProbeMachine(out, false), tech, amac.Params{Window: 10})
					return out.Count, out.Checksum
				},
			},
			goldenRun{
				name: "probe-uniform-t4/" + tech.String(),
				hw:   amac.SPARCT4(),
				run: func(c *amac.Core) (uint64, uint64) {
					j := amac.NewHashJoin(buildU, probeU)
					j.PrebuildRaw()
					out := amac.NewOutput(j.Arena, false)
					amac.RunWith(c, j.ProbeMachine(out, true), tech, amac.Params{Window: 10})
					return out.Count, out.Checksum
				},
			},
			goldenRun{
				name: "build/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					j := amac.NewHashJoin(buildU, probeU)
					amac.RunWith(c, j.BuildMachine(), tech, amac.Params{Window: 10})
					st := j.Table.ComputeStats()
					return st.Tuples, st.OverflowNodes
				},
			},
			goldenRun{
				name: "groupby/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					g := amac.NewGroupBy(gbRel, gbRel.Len()/3)
					amac.RunWith(c, g.Machine(), tech, amac.Params{Window: 10})
					groups := g.Table.Groups()
					var sum uint64
					for _, ag := range groups {
						sum += ag.Key*31 + ag.Count*7 + ag.Sum
					}
					return uint64(len(groups)), sum
				},
			},
			goldenRun{
				name: "bst-search/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					w := amac.NewBSTWorkload(idxBuild, idxProbe)
					out := amac.NewOutput(w.Arena, false)
					amac.RunWith(c, w.SearchMachine(out), tech, amac.Params{Window: 10})
					return out.Count, out.Checksum
				},
			},
			goldenRun{
				name: "skiplist-search/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					w := amac.NewSkipListWorkload(idxBuild, idxProbe)
					w.PrebuildRaw(9)
					out := amac.NewOutput(w.Arena, false)
					amac.RunWith(c, w.SearchMachine(out), tech, amac.Params{Window: 10})
					return out.Count, out.Checksum
				},
			},
			goldenRun{
				name: "skiplist-insert/" + tech.String(),
				hw:   amac.XeonX5670(),
				run: func(c *amac.Core) (uint64, uint64) {
					w := amac.NewSkipListWorkload(idxBuild, idxProbe)
					m := w.InsertMachine(9)
					amac.RunWith(c, m, tech, amac.Params{Window: 10})
					return uint64(m.Inserted), uint64(m.Restarts)
				},
			},
		)
	}
	return runs
}

func executeGolden(g goldenRun) goldenRecord {
	sys := amac.MustSystem(g.hw)
	c := sys.NewCore()
	outCount, outChecksum := g.run(c)
	return goldenRecord{
		Stats:       c.Stats(),
		L1Hits:      c.L1().Hits(),
		L1Misses:    c.L1().Misses(),
		L1Evictions: c.L1().Evictions(),
		L2Hits:      c.L2().Hits(),
		L2Misses:    c.L2().Misses(),
		L2Evictions: c.L2().Evictions(),
		L3Hits:      sys.L3().Hits(),
		L3Misses:    sys.L3().Misses(),
		L3Evictions: sys.L3().Evictions(),
		OutCount:    outCount,
		OutChecksum: outChecksum,
	}
}

const goldenPath = "testdata/golden_stats.json"

func TestGoldenStats(t *testing.T) {
	runs := goldenRuns(t)

	if *updateGolden {
		got := make(map[string]goldenRecord, len(runs))
		for _, g := range runs {
			got[g.name] = executeGolden(g)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(got), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(runs) {
		names := make([]string, 0, len(want))
		for n := range want {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Errorf("golden file has %d records, test defines %d: %v", len(want), len(runs), names)
	}

	for _, g := range runs {
		g := g
		t.Run(g.name, func(t *testing.T) {
			exp, ok := want[g.name]
			if !ok {
				t.Fatalf("no golden record for %q; run with -update-golden", g.name)
			}
			got := executeGolden(g)
			if got == exp {
				return
			}
			// Report exactly which counters moved, field by field.
			gv, ev := reflect.ValueOf(got.Stats), reflect.ValueOf(exp.Stats)
			for i := 0; i < gv.NumField(); i++ {
				if gv.Field(i).Uint() != ev.Field(i).Uint() {
					t.Errorf("Stats.%s: got %d want %d", gv.Type().Field(i).Name, gv.Field(i).Uint(), ev.Field(i).Uint())
				}
			}
			pairs := []struct {
				name      string
				got, want uint64
			}{
				{"L1Hits", got.L1Hits, exp.L1Hits}, {"L1Misses", got.L1Misses, exp.L1Misses}, {"L1Evictions", got.L1Evictions, exp.L1Evictions},
				{"L2Hits", got.L2Hits, exp.L2Hits}, {"L2Misses", got.L2Misses, exp.L2Misses}, {"L2Evictions", got.L2Evictions, exp.L2Evictions},
				{"L3Hits", got.L3Hits, exp.L3Hits}, {"L3Misses", got.L3Misses, exp.L3Misses}, {"L3Evictions", got.L3Evictions, exp.L3Evictions},
				{"OutCount", got.OutCount, exp.OutCount}, {"OutChecksum", got.OutChecksum, exp.OutChecksum},
			}
			for _, p := range pairs {
				if p.got != p.want {
					t.Errorf("%s: got %d want %d", p.name, p.got, p.want)
				}
			}
			if !t.Failed() {
				t.Fatalf("records differ: got %+v want %+v", got, exp)
			}
		})
	}
}

// TestGoldenStatsDeterministic guards the guard: the same run executed twice
// in one process must produce identical records, otherwise the golden
// comparison itself would be flaky.
func TestGoldenStatsDeterministic(t *testing.T) {
	runs := goldenRuns(t)
	for _, g := range runs[:4] {
		a, b := executeGolden(g), executeGolden(g)
		if a != b {
			t.Fatalf("%s: two identical runs diverged:\n%+v\n%+v", g.name, a, b)
		}
	}
}

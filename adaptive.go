package amac

import (
	"amac/internal/adapt"
	"amac/internal/exec"
)

// This file exports the adaptive execution subsystem: online technique
// selection (probe/exploit with drift-triggered re-calibration over
// Baseline, GP, SPP and AMAC) and dynamic AMAC slot-window control (AIMD
// hill-climb over per-window execution samples). The paper argues AMAC's
// per-slot independence makes the number of in-flight accesses a runtime
// knob; package adapt is that knob turned by a feedback loop. See
// EXPERIMENTS.md ("adaptN") for the measured behaviour.

// ProbeWindow is one probe window of an engine run: PMU counter deltas plus
// the scheduler's view (active width, completions) and the MSHR occupancy.
// A width controller reads the phase character off it.
type ProbeWindow = exec.Window

// WidthController is consulted by the AMAC engines once per probe window
// when attached via Options.Controller (or Params.Controller) and may
// resize the slot window mid-run; the engine applies changes safely, never
// abandoning an in-flight lookup. GP and SPP cannot act on it — their group
// size and pipeline depth are baked into their control flow — which is the
// paper's flexibility argument as a type signature.
type WidthController = exec.WidthController

// WidthAIMD is the built-in width controller: additive growth while memory
// stalls dominate, multiplicative back-off when MSHR-full waits appear,
// a glide to the floor on compute-bound phases, with hysteresis.
type WidthAIMD = adapt.WidthAIMD

// NewWidthAIMD builds a width controller starting at start, bounded to
// [min, max].
func NewWidthAIMD(start, min, max int) *WidthAIMD { return adapt.NewWidthAIMD(start, min, max) }

// AdaptiveConfig tunes an adaptive controller: candidate techniques,
// segment and probe lengths, drift band, width bounds and streaming lease
// quotas. The zero value selects the documented defaults.
type AdaptiveConfig = adapt.Config

// AdaptiveController carries the adaptive state — chosen technique,
// calibrated cost reference, persistent width controller — across segments,
// runs and operators. One per core or shard; not safe for concurrent use.
type AdaptiveController = adapt.Controller

// AdaptiveInfo reports what a controller did: probe epochs, technique
// switches, per-technique lookup tallies, width extremes, and the full
// decision log (Decisions).
type AdaptiveInfo = adapt.Info

// AdaptiveDecision is one entry of a controller's decision log: what the
// controller decided (probe start, calibration, technique switch, drift or
// queue-pressure re-probe), the simulated cycle it decided at, the
// before/after techniques, the width in force and the cycles-per-lookup
// evidence it acted on. Serving callers read the log off
// ServiceResult.PerWorker[w].Adapt.Decisions (or AdaptiveController.Decisions)
// to answer "why did this shard switch technique?" without a trace viewer.
type AdaptiveDecision = adapt.Decision

// AdaptiveDecisionKind classifies a decision-log entry.
type AdaptiveDecisionKind = adapt.DecisionKind

// The decision kinds.
const (
	// DecisionProbeStart marks the beginning of a probe epoch.
	DecisionProbeStart = adapt.KindProbeStart
	// DecisionCalibrate records a probe epoch that kept the incumbent (or the
	// first calibration).
	DecisionCalibrate = adapt.KindCalibrate
	// DecisionSwitch records a probe epoch whose winner differs from the
	// incumbent.
	DecisionSwitch = adapt.KindSwitch
	// DecisionDriftReprobe records a calibration discarded on cost drift.
	DecisionDriftReprobe = adapt.KindDriftReprobe
	// DecisionQueueReprobe records a calibration discarded on a serving
	// queue-depth jump.
	DecisionQueueReprobe = adapt.KindQueueReprobe
)

// NewAdaptiveController builds a controller with the given configuration.
func NewAdaptiveController(cfg AdaptiveConfig) *AdaptiveController {
	return adapt.NewController(cfg)
}

// RunAdaptive executes every lookup of the machine adaptively: input
// segments run under the controller's current technique, probe epochs
// re-measure the candidates whenever the observed cycles-per-lookup drifts
// out of the calibrated band, and AMAC segments run under the persistent
// width controller. Lookups execute exactly once, in index order, so the
// operator output is identical to any static run.
func RunAdaptive[S any](c *Core, m Machine[S], ctl *AdaptiveController) AdaptiveInfo {
	return adapt.Run(c, m, ctl)
}

// RunStreamAdaptive serves an open-loop request source adaptively: leases
// of requests run under the controller's current technique and the
// controller retunes on cost drift or queue-pressure jumps. queueDepth may
// be nil. Returns the aggregated AMAC scheduler stats.
func RunStreamAdaptive[S any](c *Core, src Source[S], ctl *AdaptiveController, queueDepth func() int) RunStats {
	return adapt.RunStream(c, src, ctl, queueDepth)
}

// Concat views a sequence of machines over one state type as a single
// machine whose behaviour shifts at the phase boundaries — the workload
// shape the adaptive subsystem exists for.
type Concat[S any] = exec.Concat[S]

// ConcatState wraps a machine state with the phase that initiated it.
type ConcatState[S any] = exec.ConcatState[S]

// NewConcat builds the composite machine over the given phases.
func NewConcat[S any](machines ...Machine[S]) *Concat[S] {
	return exec.NewConcat(machines...)
}

// assert the built-in controller satisfies the engine hook.
var _ WidthController = (*WidthAIMD)(nil)

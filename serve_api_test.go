package amac_test

import (
	"testing"

	"amac"
)

// TestServePublicAPIEndToEnd drives the exported streaming layer the way a
// library user would: generate an arrival schedule, feed a probe machine
// through a queue-fed source into streaming AMAC, and verify the join
// output matches the batch reference while the recorder accounts every
// request.
func TestServePublicAPIEndToEnd(t *testing.T) {
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, ZipfBuild: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()
	wantCount, wantSum := join.ReferenceJoin()

	proc, err := amac.ParseArrivals("poisson", 400)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := proc.Schedule(probe.Len(), 5)

	out := amac.NewOutput(join.Arena, false)
	src := amac.NewQueueSource(join.ProbeMachine(out, false), arrivals, 0, amac.QueueBlock, nil)
	c := amac.MustSystem(amac.XeonX5670()).NewCore()
	stats := amac.RunStream(c, src, amac.Options{Width: 10})

	if out.Count != wantCount || out.Checksum != wantSum {
		t.Fatalf("streamed output (%d, %#x) differs from reference (%d, %#x)", out.Count, out.Checksum, wantCount, wantSum)
	}
	if stats.Completed != probe.Len() {
		t.Fatalf("scheduler completed %d of %d requests", stats.Completed, probe.Len())
	}
	rec := src.Recorder()
	if rec.Completed != uint64(probe.Len()) || rec.Dropped != 0 {
		t.Fatalf("recorder completed=%d dropped=%d", rec.Completed, rec.Dropped)
	}
	if rec.P99() < rec.P50() || rec.MaxLatency < rec.P99() {
		t.Fatalf("latency quantiles out of order: p50=%d p99=%d max=%d", rec.P50(), rec.P99(), rec.MaxLatency)
	}
	if c.Stats().IdleCycles == 0 {
		t.Fatal("a paced arrival schedule should leave the core idle at times")
	}
}

// TestServiceTechniquesPublicAPI runs the sharded service once per
// technique through RunService and checks every engine serves the identical
// request set with identical join output.
func TestServiceTechniquesPublicAPI(t *testing.T) {
	const workers = 2
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	pj := amac.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	wantCount, wantSum := pj.ReferenceJoinFirstMatch()

	for _, tech := range amac.Techniques {
		outs := make([]*amac.Output, workers)
		specs := make([]amac.ServiceWorker[amac.ProbeState], workers)
		for w := 0; w < workers; w++ {
			outs[w] = amac.NewOutput(pj.Parts[w].Arena, false)
			outs[w].Sequential = true
			specs[w] = amac.ServiceWorker[amac.ProbeState]{
				Machine:  pj.ProbeMachine(w, outs[w], true),
				Arrivals: amac.Deterministic{Period: 500}.Schedule(pj.Parts[w].Probe.Len(), 0),
			}
		}
		res := amac.RunService(amac.ServiceOptions{
			Hardware:  amac.XeonX5670(),
			Technique: tech,
			Window:    8,
		}, specs)

		var count, sum uint64
		for _, out := range outs {
			count += out.Count
			sum += out.Checksum
		}
		if count != wantCount || sum != wantSum {
			t.Fatalf("%s: service output (%d, %#x) differs from reference (%d, %#x)", tech, count, sum, wantCount, wantSum)
		}
		if res.Latency.Completed != uint64(probe.Len()) {
			t.Fatalf("%s: recorder completed %d of %d", tech, res.Latency.Completed, probe.Len())
		}
		if res.ElapsedCycles() == 0 {
			t.Fatalf("%s: no elapsed cycles", tech)
		}
	}
}

package amac_test

import (
	"testing"

	"amac"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// quickstart example does: generate a workload, run it under every
// technique, and verify the results agree.
func TestPublicAPIEndToEnd(t *testing.T) {
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()
	wantCount, wantSum := join.ReferenceJoin()

	for _, tech := range amac.Techniques {
		sys, err := amac.NewSystem(amac.XeonX5670())
		if err != nil {
			t.Fatal(err)
		}
		core := sys.NewCore()
		out := amac.NewOutput(join.Arena, false)
		amac.RunWith(core, join.ProbeMachine(out, false), tech, amac.Params{Window: 8})
		if out.Count != wantCount || out.Checksum != wantSum {
			t.Fatalf("%s: results differ from reference", tech)
		}
		if core.Cycle() == 0 || core.Stats().Instructions == 0 {
			t.Fatalf("%s: core charged no work", tech)
		}
	}
}

// TestDirectEngineEntryPoints drives each engine through its dedicated
// function rather than RunWith.
func TestDirectEngineEntryPoints(t *testing.T) {
	build, probe, err := amac.BuildIndexWorkload(1<<9, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := amac.NewBSTWorkload(build, probe)

	run := func(f func(c *amac.Core, m *amac.BSTSearchMachine)) uint64 {
		sys := amac.MustSystem(amac.XeonX5670())
		c := sys.NewCore()
		out := amac.NewOutput(w.Arena, false)
		f(c, w.SearchMachine(out))
		if int(out.Count) != probe.Len() {
			t.Fatalf("search found %d of %d keys", out.Count, probe.Len())
		}
		return c.Cycle()
	}

	base := run(func(c *amac.Core, m *amac.BSTSearchMachine) { amac.RunBaseline(c, m) })
	gp := run(func(c *amac.Core, m *amac.BSTSearchMachine) { amac.RunGroupPrefetch(c, m, 10) })
	spp := run(func(c *amac.Core, m *amac.BSTSearchMachine) { amac.RunSoftwarePipeline(c, m, 10) })
	var stats amac.RunStats
	am := run(func(c *amac.Core, m *amac.BSTSearchMachine) { stats = amac.Run(c, m, amac.Options{Width: 10}) })

	if stats.Completed != probe.Len() {
		t.Fatalf("AMAC completed %d of %d", stats.Completed, probe.Len())
	}
	for name, cycles := range map[string]uint64{"baseline": base, "GP": gp, "SPP": spp, "AMAC": am} {
		if cycles == 0 {
			t.Fatalf("%s consumed no cycles", name)
		}
	}
}

func TestParseTechnique(t *testing.T) {
	tech, err := amac.ParseTechnique("AMAC")
	if err != nil || tech != amac.AMAC {
		t.Fatalf("ParseTechnique: %v %v", tech, err)
	}
	if _, err := amac.ParseTechnique("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	exps := amac.Experiments()
	if len(exps) < 14 {
		t.Fatalf("expected the full experiment registry, got %d entries", len(exps))
	}
	tables, err := amac.RunExperiment("table4", amac.ExperimentConfig{Scale: amac.TinyScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || tables[0].ID != "table4" {
		t.Fatal("table4 did not run")
	}
	if _, err := amac.RunExperiment("bogus", amac.ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestGroupByFacade(t *testing.T) {
	rel, err := amac.BuildGroupBy(amac.GroupBySpec{Size: 900, Repeats: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := amac.NewGroupBy(rel, 300)
	sys := amac.MustSystem(amac.SPARCT4())
	amac.RunWith(sys.NewCore(), g.Machine(), amac.AMAC, amac.Params{})
	groups := g.Table.Groups()
	if len(groups) != 300 {
		t.Fatalf("got %d groups, want 300", len(groups))
	}
	var agg amac.Aggregates = groups[0]
	if agg.Count == 0 || agg.Avg() <= 0 {
		t.Fatal("aggregates not populated")
	}
}

// TestCustomMachineThroughPublicAPI verifies that user code can define its
// own Machine and schedule it with AMAC, which is the library's primary
// extension point.
func TestCustomMachineThroughPublicAPI(t *testing.T) {
	m := &countdownMachine{lookups: 64, hops: 3}
	sys := amac.MustSystem(amac.XeonX5670())
	stats := amac.Run(sys.NewCore(), m, amac.Options{Width: 4})
	if stats.Completed != 64 || m.visits != 64*3 {
		t.Fatalf("completed %d, visits %d", stats.Completed, m.visits)
	}
}

// countdownMachine is a minimal user-defined Machine: each lookup performs a
// fixed number of dependent accesses at synthetic addresses.
type countdownMachine struct {
	lookups int
	hops    int
	visits  int
}

type countdownState struct {
	remaining int
	addr      amac.Addr
}

func (m *countdownMachine) NumLookups() int        { return m.lookups }
func (m *countdownMachine) ProvisionedStages() int { return m.hops + 1 }

func (m *countdownMachine) Init(c *amac.Core, s *countdownState, i int) amac.Outcome {
	c.Instr(2)
	s.remaining = m.hops
	s.addr = amac.Addr(1+i) << 20
	return amac.Outcome{NextStage: 1, Prefetch: s.addr}
}

func (m *countdownMachine) Stage(c *amac.Core, s *countdownState, stage int) amac.Outcome {
	c.Load(s.addr, 8)
	m.visits++
	s.remaining--
	if s.remaining == 0 {
		return amac.Outcome{Done: true}
	}
	s.addr += 37 * amac.LineSize
	return amac.Outcome{NextStage: 1, Prefetch: s.addr}
}

package amac

import (
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/ops"
)

// Addr is a simulated memory address (see Arena and Core).
type Addr = memsim.Addr

// LineSize is the simulated cache-line size in bytes.
const LineSize = memsim.LineSize

// Outcome is the result of executing one code stage of a lookup: the next
// stage to run, the address that stage will dereference (so the engine can
// prefetch it), and whether the lookup completed or must be retried because
// a latch is held by another in-flight lookup.
type Outcome = exec.Outcome

// Machine describes a pointer-chasing operator as numbered code stages over
// a per-lookup state S, following the paper's Table 1. Implement it to run
// your own data structure traversals under any of the four engines; the
// operators in this library (hash join, group-by, BST, skip list) are
// implementations of the same interface.
type Machine[S any] = exec.Machine[S]

// Options tunes the AMAC scheduler (circular-buffer width, refill policy).
type Options = core.Options

// RunStats summarises one AMAC execution.
type RunStats = core.RunStats

// MergeRunStats folds the per-worker AMAC scheduling stats of a sharded
// parallel phase into one report (counters summed, largest Width kept).
func MergeRunStats(perWorker []RunStats) RunStats { return core.MergeRunStats(perWorker) }

// DefaultWidth is the default number of in-flight lookups for AMAC and for
// Params.Window; it matches the per-core MLP limit of the paper's Xeon.
const DefaultWidth = core.DefaultWidth

// Run executes every lookup of machine m on core c using Asynchronous
// Memory Access Chaining — the paper's contribution.
func Run[S any](c *Core, m Machine[S], opts Options) RunStats {
	return core.Run(c, m, opts)
}

// RunBaseline executes the machine one lookup at a time with no prefetching.
func RunBaseline[S any](c *Core, m Machine[S]) {
	exec.Baseline(c, m)
}

// RunGroupPrefetch executes the machine under Group Prefetching with the
// given group size.
func RunGroupPrefetch[S any](c *Core, m Machine[S], group int) {
	exec.GroupPrefetch(c, m, group)
}

// RunSoftwarePipeline executes the machine under Software-Pipelined
// Prefetching with the given number of in-flight lookups.
func RunSoftwarePipeline[S any](c *Core, m Machine[S], inflight int) {
	exec.SoftwarePipeline(c, m, inflight)
}

// Technique selects one of the four execution schemes when using RunWith.
type Technique = ops.Technique

// The four techniques evaluated in the paper.
const (
	Baseline = ops.Baseline
	GP       = ops.GP
	SPP      = ops.SPP
	AMAC     = ops.AMAC
)

// Techniques lists all four techniques in the paper's figure order.
var Techniques = ops.Techniques

// ParseTechnique converts a label ("Baseline", "GP", "SPP", "AMAC") into a
// Technique.
func ParseTechnique(s string) (Technique, error) { return ops.ParseTechnique(s) }

// Params carries the per-technique tuning knob (the number of in-flight
// lookups) used by RunWith.
type Params = ops.Params

// RunWith executes the machine with the selected technique, which is how the
// experiment harness and the examples compare the four schemes on identical
// operator code.
func RunWith[S any](c *Core, m Machine[S], tech Technique, p Params) {
	ops.RunMachine(c, m, tech, p)
}

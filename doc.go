// Package amac is a from-scratch reproduction of "Asynchronous Memory
// Access Chaining" (Kocberber, Falsafi, Grot — VLDB 2015) as a reusable Go
// library.
//
// AMAC is a software technique for hiding memory latency in pointer-chasing
// database operators (hash joins, group-by, index search): instead of
// statically grouping or pipelining independent lookups — the prior
// Group Prefetching and Software-Pipelined Prefetching approaches — AMAC
// keeps each in-flight lookup's state in a slot of a small circular buffer
// and switches between lookups every time one of them issues a memory
// access. Because the lookups never wait for each other, irregular work
// (variable-length chains, early exits, latch conflicts) does not reduce the
// memory-level parallelism the core sustains.
//
// Go has no portable prefetch intrinsic, so this library reproduces the
// paper on a deterministic, cycle-accounting model of the two machines the
// paper evaluates (an Intel Xeon x5670 socket and a SPARC T4 socket); see
// DESIGN.md for the substitution argument. The library exposes four layers:
//
//   - the simulated hardware (System, Core, XeonX5670, SPARCT4),
//   - the execution engines (Baseline, GP, SPP, and the AMAC scheduler Run),
//     which schedule user-defined stage Machines,
//   - the paper's operators and workloads (hash join, group-by, BST search,
//     skip list search/insert) ready to run under any engine,
//   - the streaming request-serving layer (arrival processes, QueueSource,
//     RunStream and the per-technique stream engines, RunService), which
//     serves the same operators under open-loop load and accounts
//     per-request latency,
//   - the adaptive execution subsystem (AdaptiveController, RunAdaptive,
//     RunStreamAdaptive, WidthAIMD), which picks the technique per phase
//     online and resizes the AMAC slot window mid-run from per-window
//     execution samples — the paper's Section 6 flexibility argument as a
//     feedback loop,
//   - the streaming pipeline layer (PipelineBuilder, NewPipeline,
//     ServePipelines), which chains the operators into multi-operator query
//     plans whose rows stream stage-to-stage through bounded, backpressured
//     pipes with a per-stage engine choice — static, planned by the
//     cost-seeded mini-planner (PipelineBuilder.Plan), or fully adaptive,
//   - the observability subsystem (Trace, Metrics), which records the whole
//     stack on the simulated clock — slot lifecycle, group boundaries,
//     controller decisions, queue and pipe activity as Chrome/Perfetto
//     trace-event JSON, and gauge time series (width, MSHR occupancy, queue
//     depth, sliding p99, stall fraction) as JSON Lines. A nil sink is the
//     disabled state: every recording method on a nil receiver is a
//     single-branch, zero-allocation no-op, and tracing never changes a
//     simulated result byte. Adaptive controllers additionally keep an
//     always-on structured decision log (AdaptiveInfo.Decisions) answering
//     "why did this shard switch technique?" without a trace viewer,
//   - the cycle-attribution profiler (CycleProfile), under the same nil-is-
//     disabled contract: the memory model charges every simulated cycle to
//     one category (compute, exposed stall per miss level, TLB, MSHR
//     pressure, idle) under the context stack the engines push (technique,
//     stage, probe/exploit epoch, pipeline stage, serving admission), with
//     exact conservation against the core's cycle counter, hidden-versus-
//     exposed fill accounting with achieved MLP, and folded-flamegraph and
//     gzipped-pprof exports keyed on simulated cycles,
//   - the experiment harness that regenerates every table and figure of the
//     paper's evaluation (Experiments, RunExperiment; also exposed through
//     cmd/amacbench).
//
// The examples directory contains runnable programs for each layer.
package amac

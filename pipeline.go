package amac

import (
	"amac/internal/bst"
	"amac/internal/ht"
	"amac/internal/ops"
	"amac/internal/pipeline"
)

// This file exports the streaming pipeline layer: multi-operator query plans
// whose stages (hash-join probes, a BST semi-join filter, a group-by sink)
// stream rows to each other through small bounded pipes instead of
// materializing between operators. Each stage runs under its own engine —
// Baseline, GP, SPP or AMAC, static or adaptive — and a downstream stage's
// backpressure propagates upstream through bounded pump leases. The
// cost-seeded mini-planner (PipelineBuilder.Plan) picks a per-stage technique
// and window from a small row sample. See the pipeN experiment and
// examples/pipeline.

// Collector receives operator result rows and charges their stores; Output
// implements it.
type Collector = ops.Collector

// HashTable is the chained hash table the probe operators walk. All
// structures of one pipeline must live in one Arena (arenas share a base
// address, so structures from different arenas would alias in the cache
// model).
type HashTable = ht.Table

// NewHashTable creates an empty chained hash table in the arena with the
// reference bucket sizing for the expected build cardinality. Populate it
// with InsertRaw (uncharged) or a PreludeBuild phase (charged).
func NewHashTable(a *Arena, expectedTuples int) *HashTable {
	nb := expectedTuples / ops.TuplesPerBucket
	if nb < 1 {
		nb = 1
	}
	return ht.New(a, nb)
}

// AggTable is the group-by aggregation table an Aggregate sink folds into.
type AggTable = ht.AggTable

// NewAggTable creates an aggregation table sized for the expected number of
// distinct groups.
func NewAggTable(a *Arena, expectedGroups int) *AggTable { return ht.NewAgg(a, expectedGroups) }

// BST is the binary search tree a BSTFilter stage walks.
type BST = bst.Tree

// NewBST creates an empty tree in the arena; populate it with Insert.
func NewBST(a *Arena) *BST { return bst.New(a) }

// Input is a materialized input relation (sequential scan source of a root
// stage or a prelude build).
type Input = ops.Input

// NewInput materializes a relation into the arena.
func NewInput(a *Arena, rel *Relation) *Input { return ops.NewInput(a, rel) }

// PipelineBuilder declares a streaming plan — ScanProbe root, then any mix of
// Probe and BSTFilter stages, optionally an Aggregate sink — and assembles
// runnable Pipeline instances from it. Pipelines are single-use; the builder
// is reused so rebuilds keep the identical simulated address layout.
type PipelineBuilder = pipeline.Builder

// NewPipeline starts an empty plan over the given arena.
func NewPipeline(a *Arena) *PipelineBuilder { return pipeline.NewBuilder(a) }

// StageConfig selects one stage's engine: the technique and its in-flight
// window (GP/SPP group size or AMAC starting width; zero = engine default).
type StageConfig = pipeline.StageConfig

// KeySel says which field of the upstream row a downstream stage looks up.
type KeySel = pipeline.KeySel

// The key selectors.
const (
	// SelKey probes with the upstream row's join key.
	SelKey = pipeline.SelKey
	// SelBuildPayload probes with the matched build-side payload — the
	// foreign-key chain of a multi-way join.
	SelBuildPayload = pipeline.SelBuildPayload
	// SelProbePayload probes with the probe-side payload carried unchanged
	// from the root relation — an attribute of the original row.
	SelProbePayload = pipeline.SelProbePayload
)

// Pipeline is one assembled, single-use plan execution: Run it with a static
// per-stage assignment or RunAdaptive with one AdaptiveController per stage.
type Pipeline = pipeline.Pipeline

// PipelineResult reports a pipeline run, one StageReport per stage.
type PipelineResult = pipeline.Result

// StageReport is one stage's outcome: engine in force, rows in/out, AMAC
// scheduler stats.
type StageReport = pipeline.StageReport

// PlanChoice is the mini-planner's output: one engine assignment per stage
// plus what the planning itself cost in simulated cycles.
type PlanChoice = pipeline.PlanChoice

// PipelineServingSpec configures a serving pipeline: open-loop arrivals into
// the root stage's bounded admission queue, end-to-end admission→completion
// latency recorded at the sink.
type PipelineServingSpec = pipeline.ServingSpec

// ServePipelines runs one pre-built serving pipeline per worker, each on a
// private core of a shared-LLC socket model, concurrently on real goroutines
// and deterministically. Each worker's pipeline must live entirely in its own
// arena (the private-copy sharing model of PartitionJoin).
func ServePipelines(hw Hardware, pipes []*Pipeline,
	prepare func(worker int, c *Core),
	body func(worker int, c *Core, p *Pipeline),
) ParallelStats {
	return pipeline.ServeParallel(hw, pipes, prepare, body)
}

package amac_test

import (
	"fmt"

	"amac"
)

// Example demonstrates the minimal end-to-end flow: generate a join
// workload, probe it under AMAC on a simulated Xeon, and verify the result
// count against a reference.
func Example() {
	build, probe, _ := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, Seed: 1})
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()

	sys := amac.MustSystem(amac.XeonX5670())
	core := sys.NewCore()
	out := amac.NewOutput(join.Arena, false)
	amac.Run(core, join.ProbeMachine(out, true), amac.Options{Width: 10})

	wantCount, _ := join.ReferenceJoin()
	fmt.Println(out.Count == wantCount)
	// Output: true
}

// ExampleRunWith shows how the same operator runs under any of the paper's
// four techniques, which is how every comparison in the experiment harness
// is produced.
func ExampleRunWith() {
	build, probe, _ := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, Seed: 1})
	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw()

	counts := make([]uint64, 0, len(amac.Techniques))
	for _, tech := range amac.Techniques {
		sys := amac.MustSystem(amac.XeonX5670())
		out := amac.NewOutput(join.Arena, false)
		amac.RunWith(sys.NewCore(), join.ProbeMachine(out, true), tech, amac.Params{Window: 10})
		counts = append(counts, out.Count)
	}
	fmt.Println(counts[0] == counts[1] && counts[1] == counts[2] && counts[2] == counts[3])
	// Output: true
}

// ExampleRun_customMachine applies the AMAC scheduler to a user-defined
// stage machine (see examples/custom_machine for a complete program).
func ExampleRun_customMachine() {
	m := &exampleChase{n: 32, hops: 4}
	sys := amac.MustSystem(amac.XeonX5670())
	stats := amac.Run(sys.NewCore(), m, amac.Options{Width: 8})
	fmt.Println(stats.Completed)
	// Output: 32
}

// exampleChase is a tiny Machine: each lookup performs a fixed number of
// dependent accesses at synthetic addresses.
type exampleChase struct {
	n, hops int
}

type exampleChaseState struct {
	left int
	addr amac.Addr
}

func (m *exampleChase) NumLookups() int        { return m.n }
func (m *exampleChase) ProvisionedStages() int { return m.hops + 1 }

func (m *exampleChase) Init(c *amac.Core, s *exampleChaseState, i int) amac.Outcome {
	c.Instr(2)
	s.left = m.hops
	s.addr = amac.Addr(1+i) << 16
	return amac.Outcome{NextStage: 1, Prefetch: s.addr}
}

func (m *exampleChase) Stage(c *amac.Core, s *exampleChaseState, stage int) amac.Outcome {
	c.Load(s.addr, 8)
	s.left--
	if s.left == 0 {
		return amac.Outcome{Done: true}
	}
	s.addr += 31 * amac.LineSize
	return amac.Outcome{NextStage: 1, Prefetch: s.addr}
}

package amac_test

import (
	"testing"

	"amac"
)

// TestParallelPublicAPIEndToEnd drives the exported sharded execution layer
// the way a library user would: partition a join, run one AMAC engine per
// worker on private cores (real goroutines), and verify the merged output
// matches the unpartitioned reference and the merge semantics hold.
func TestParallelPublicAPIEndToEnd(t *testing.T) {
	const workers = 4
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 11, ZipfBuild: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := amac.NewHashJoin(build, probe).ReferenceJoin()

	pj := amac.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	cores := make([]*amac.Core, workers)
	outs := make([]*amac.Output, workers)
	machines := make([]*amac.ProbeMachine, workers)
	for w := 0; w < workers; w++ {
		sys := amac.MustSystem(amac.XeonX5670().ShareLLC(workers))
		cores[w] = sys.NewCore()
		sys.SetActiveThreads(workers, cores[w])
		outs[w] = amac.NewOutput(pj.Parts[w].Arena, false)
		outs[w].Sequential = true
		machines[w] = pj.ProbeMachine(w, outs[w], false)
	}

	runStats := make([]amac.RunStats, workers)
	ps := amac.RunParallel(cores, func(w int, c *amac.Core) {
		runStats[w] = amac.Run(c, machines[w], amac.Options{Width: 8})
	})

	var count, sum uint64
	for _, out := range outs {
		count += out.Count
		sum += out.Checksum
	}
	if count != wantCount || sum != wantSum {
		t.Fatalf("merged output (%d, %#x) differs from reference (%d, %#x)", count, sum, wantCount, wantSum)
	}
	sched := amac.MergeRunStats(runStats)
	if sched.Initiated != probe.Len() || sched.Completed != probe.Len() {
		t.Fatalf("merged scheduling stats cover %d/%d lookups, want %d", sched.Initiated, sched.Completed, probe.Len())
	}
	if sched.Width != 8 {
		t.Fatalf("merged Width = %d, want 8", sched.Width)
	}

	var maxCycles, sumInstr uint64
	for _, s := range ps.PerWorker {
		if s.Cycles > maxCycles {
			maxCycles = s.Cycles
		}
		sumInstr += s.Instructions
	}
	if ps.ElapsedCycles() != maxCycles || ps.Merged.Instructions != sumInstr {
		t.Fatalf("merge semantics violated: %+v", ps.Merged)
	}
	if merged := amac.MergeStats(ps.PerWorker); merged != ps.Merged {
		t.Fatal("MergeStats disagrees with RunParallel's merge")
	}
}

// TestShardPublicAPI range-shards a read-only BST search across workers:
// the underlying tree is shared read-only, each worker writes to a private
// output, and the merged result equals a sequential run.
func TestShardPublicAPI(t *testing.T) {
	build, probe, err := amac.BuildIndexWorkload(1<<9, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := amac.NewBSTWorkload(build, probe)

	seqOut := amac.NewOutput(w.Arena, false)
	amac.Run(amac.MustSystem(amac.XeonX5670()).NewCore(), w.SearchMachine(seqOut), amac.Options{Width: 8})

	const workers = 3
	shards := amac.SplitLookups(probe.Len(), workers)
	cores := make([]*amac.Core, workers)
	outs := make([]*amac.Output, workers)
	machines := make([]amac.Shard[amac.BSTState], workers)
	for i := 0; i < workers; i++ {
		cores[i] = amac.MustSystem(amac.XeonX5670().ShareLLC(workers)).NewCore()
		outs[i] = amac.NewOutput(amac.NewArena(), false)
		outs[i].Sequential = true
		machines[i] = amac.Shard[amac.BSTState]{M: w.SearchMachine(outs[i]), Lo: shards[i].Lo, N: shards[i].N}
	}
	amac.RunParallel(cores, func(i int, c *amac.Core) {
		amac.Run(c, machines[i], amac.Options{Width: 8})
	})

	var count, sum uint64
	for _, out := range outs {
		count += out.Count
		sum += out.Checksum
	}
	if count != seqOut.Count || sum != seqOut.Checksum {
		t.Fatalf("sharded search (%d, %#x) differs from sequential (%d, %#x)", count, sum, seqOut.Count, seqOut.Checksum)
	}
}

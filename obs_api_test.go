package amac_test

import (
	"bytes"
	"strings"
	"testing"

	"amac"
)

// hotColdJoin builds a phase-shifting workload through the public API: a
// DRAM-resident hash join whose first half of probe keys is a hot Zipf(2.0)
// draw (buckets go cache-resident) and whose second half is uniform, so the
// per-lookup cost jumps mid-run and the adaptive controller has something to
// decide about.
func hotColdJoin(t *testing.T) (*amac.HashJoin, *amac.Output) {
	t.Helper()
	const domain, half = 1 << 12, 1 << 11
	build, _, err := amac.BuildJoin(amac.JoinSpec{BuildSize: domain, ProbeSize: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	keys := amac.ZipfKeys(half, domain, 2.0, 7)
	keys = append(keys, amac.ZipfKeys(half, domain, 0, 8)...)
	join := amac.NewHashJoin(build, amac.KeyedRelation("S", keys, 1<<40))
	join.PrebuildRaw()
	return join, amac.NewOutput(join.Arena, false)
}

// TestAdaptiveDecisionLogPublicAPI drives an adaptive run through the
// exported API and reads the decision log back three ways: off the returned
// AdaptiveInfo, off the controller, and as decision instants in an attached
// trace. The log must open with a probe epoch, resolve it with a calibration
// or switch, and render human-readably.
func TestAdaptiveDecisionLogPublicAPI(t *testing.T) {
	join, out := hotColdJoin(t)
	c := amac.MustSystem(amac.XeonX5670()).NewCore()

	ctl := amac.NewAdaptiveController(amac.AdaptiveConfig{SegmentLookups: 256, ProbeLookups: 64})
	trace := amac.NewTrace(0)
	ctl.SetTrace(trace.Core("core 0"))

	info := amac.RunAdaptive(c, join.ProbeMachine(out, false), ctl)

	if len(info.Decisions) < 2 {
		t.Fatalf("decision log holds %d entries, want at least probe-start + calibrate", len(info.Decisions))
	}
	if got := info.Decisions[0].Kind; got != amac.DecisionProbeStart {
		t.Fatalf("first decision is %v, want %v", got, amac.DecisionProbeStart)
	}
	if k := info.Decisions[1].Kind; k != amac.DecisionCalibrate && k != amac.DecisionSwitch {
		t.Fatalf("second decision is %v, want a calibration outcome", k)
	}
	if got := ctl.Decisions(); len(got) != len(info.Decisions) {
		t.Fatalf("controller reports %d decisions, info reports %d", len(got), len(info.Decisions))
	}
	var prev uint64
	for _, d := range info.Decisions {
		if d.Cycle < prev {
			t.Fatalf("decision log out of cycle order: %v after cycle %d", d, prev)
		}
		prev = d.Cycle
		if s := d.String(); !strings.Contains(s, d.Kind.String()) {
			t.Fatalf("decision %v renders as %q, missing its kind", d.Kind, s)
		}
	}

	// Every log entry is mirrored into the trace as a decision instant.
	instants := 0
	for _, ev := range trace.Cores()[0].Events() {
		if ev.Kind == amac.TraceDecision {
			instants++
		}
	}
	if instants != len(info.Decisions) {
		t.Fatalf("trace carries %d decision instants, log holds %d entries", instants, len(info.Decisions))
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "probe start") {
		t.Fatal("Chrome export is missing the probe-start decision instant")
	}
}

// TestDisabledObsZeroAllocPublicAPI asserts the disabled observability path
// — nil sinks threaded through the exported types — allocates nothing at any
// recording site. This is the contract that lets every engine carry the
// instrumentation unconditionally.
func TestDisabledObsZeroAllocPublicAPI(t *testing.T) {
	var tr *amac.Trace
	var m *amac.Metrics
	allocs := testing.AllocsPerRun(200, func() {
		ct := tr.Core("core 0")
		ct.SlotStart(10, 1, 2)
		ct.StageVisit(10, 20, 1, 0)
		ct.SlotRetry(20, 1, 0)
		ct.SlotPrefetch(21, 1)
		ct.SlotEnd(30, 1)
		ct.GroupStart(30, 8)
		ct.GroupEnd(40, 8)
		ct.EngineSample(40, 10, 3)
		ct.WidthChange(41, 12)
		ct.Decision(42, 0, 1, 2)
		ct.QueueAdmit(50, 7)
		ct.QueueDrop(51, 8)
		ct.QueueBlock(52, 4)
		ct.QueueDepth(53, 4)
		ct.PipeDepth(54, 0, 2)
		ct.Backpressure(55, 0)
		cm := m.Core("core 0")
		cm.Tick(60)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f times per run, want 0", allocs)
	}
}

// TestServiceDecisionLogPublicAPI runs an adaptive sharded service and reads
// each shard's decision log off the ServiceResult — the serving operator's
// "why did this shard switch technique?" path.
func TestServiceDecisionLogPublicAPI(t *testing.T) {
	const workers = 2
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: 1 << 11, ProbeSize: 1 << 11, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	pj := amac.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()

	specs := make([]amac.ServiceWorker[amac.ProbeState], workers)
	for w := 0; w < workers; w++ {
		out := amac.NewOutput(pj.Parts[w].Arena, false)
		out.Sequential = true
		specs[w] = amac.ServiceWorker[amac.ProbeState]{
			Machine:  pj.ProbeMachine(w, out, true),
			Arrivals: amac.Deterministic{Period: 400}.Schedule(pj.Parts[w].Probe.Len(), 0),
		}
	}
	acfg := amac.AdaptiveConfig{SegmentLookups: 128, ProbeLookups: 32}
	res := amac.RunService(amac.ServiceOptions{
		Hardware:  amac.XeonX5670(),
		Technique: amac.AMAC,
		Window:    8,
		Adaptive:  &acfg,
	}, specs)

	if len(res.Adapt.Decisions) == 0 {
		t.Fatal("merged service info holds no decisions")
	}
	for w, wr := range res.PerWorker {
		if wr.Adapt == nil {
			t.Fatalf("worker %d has no adaptive info", w)
		}
		if len(wr.Adapt.Decisions) == 0 {
			t.Fatalf("worker %d recorded no decisions", w)
		}
		if wr.Adapt.Decisions[0].Kind != amac.DecisionProbeStart {
			t.Fatalf("worker %d log opens with %v, want probe-start", w, wr.Adapt.Decisions[0].Kind)
		}
	}
}

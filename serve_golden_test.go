package amac_test

// Golden serving-regression tests: fixed-seed open-loop serving runs of
// every technique under every arrival process (and both queue policies) must
// reproduce the exact latency percentiles, completion/drop counts and cycle
// counts recorded in testdata/golden_serve.json. This pins the serving fast
// path — ring-buffer admission queue, recycled socket models, pooled stream
// state — to the simulated behaviour of the original implementation:
// performance work may change how fast serving runs execute, never what
// they measure. Regenerate only on deliberate model changes:
//
//	go test -run TestGoldenServe -update-golden
//
// (the -update-golden flag is shared with TestGoldenStats).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"amac"
)

// serveGoldenRecord is everything one serving run must reproduce exactly.
type serveGoldenRecord struct {
	Offered      uint64 `json:"offered"`
	Completed    uint64 `json:"completed"`
	Dropped      uint64 `json:"dropped"`
	P50          uint64 `json:"p50"`
	P95          uint64 `json:"p95"`
	P99          uint64 `json:"p99"`
	MaxLatency   uint64 `json:"maxLatency"`
	SumLatency   uint64 `json:"sumLatency"`
	SumQueueWait uint64 `json:"sumQueueWait"`
	DepthMax     int    `json:"depthMax"`
	Cycles       uint64 `json:"cycles"`
	IdleCycles   uint64 `json:"idleCycles"`
	Initiated    int    `json:"initiated"`
	StageVisits  uint64 `json:"stageVisits"`
}

// serveGoldenScenarios enumerates technique × arrival process × queue policy
// on a fixed skewed join, plus a two-worker sharded AMAC run.
type serveScenario struct {
	name     string
	tech     amac.Technique
	arrivals string
	qcap     int
	policy   amac.QueuePolicy
	workers  int
}

func serveScenarios() []serveScenario {
	var out []serveScenario
	for _, tech := range amac.Techniques {
		for _, proc := range []string{"deterministic", "poisson", "bursty"} {
			out = append(out,
				serveScenario{
					name: fmt.Sprintf("%s/%s/block", tech, proc),
					tech: tech, arrivals: proc, workers: 1,
				},
				serveScenario{
					name: fmt.Sprintf("%s/%s/drop", tech, proc),
					tech: tech, arrivals: proc, qcap: 32, policy: amac.QueueDrop, workers: 1,
				})
		}
	}
	out = append(out, serveScenario{name: "AMAC/poisson/sharded2", tech: amac.AMAC, arrivals: "poisson", workers: 2})
	return out
}

// servePeriod keeps the offered load near the skewed join's service rate so
// queues exercise both busy and idle paths.
const servePeriod = 400

func executeServeGolden(t testing.TB, sc serveScenario) serveGoldenRecord {
	t.Helper()
	const n = 1 << 11
	build, probe, err := amac.BuildJoin(amac.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	var workers []amac.ServiceWorker[amac.ProbeState]
	if sc.workers == 1 {
		join := amac.NewHashJoin(build, probe)
		join.PrebuildRaw()
		out := amac.NewOutput(join.Arena, false)
		workers = append(workers, amac.ServiceWorker[amac.ProbeState]{
			Machine:  join.ProbeMachine(out, true),
			Arrivals: mustArrivals(t, sc.arrivals, servePeriod, join.Probe.Len(), 11),
		})
	} else {
		pj := amac.PartitionJoin(build, probe, sc.workers)
		pj.PrebuildRaw()
		for w := 0; w < sc.workers; w++ {
			out := amac.NewOutput(pj.Parts[w].Arena, false)
			workers = append(workers, amac.ServiceWorker[amac.ProbeState]{
				Machine:  pj.ProbeMachine(w, out, true),
				Arrivals: mustArrivals(t, sc.arrivals, servePeriod*float64(sc.workers), pj.Parts[w].Probe.Len(), 11+uint64(w)),
			})
		}
	}

	res := amac.RunService(amac.ServiceOptions{
		Hardware:  amac.XeonX5670(),
		Technique: sc.tech,
		Window:    10,
		QueueCap:  sc.qcap,
		Policy:    sc.policy,
	}, workers)

	return serveGoldenRecord{
		Offered:      res.Latency.Offered,
		Completed:    res.Latency.Completed,
		Dropped:      res.Latency.Dropped,
		P50:          res.Latency.P50(),
		P95:          res.Latency.P95(),
		P99:          res.Latency.P99(),
		MaxLatency:   res.Latency.MaxLatency,
		SumLatency:   res.Latency.SumLatency,
		SumQueueWait: res.Latency.SumQueueWait,
		DepthMax:     res.Latency.DepthMax,
		Cycles:       res.Stats.Cycles,
		IdleCycles:   res.Stats.IdleCycles,
		Initiated:    res.Sched.Initiated,
		StageVisits:  res.Sched.StageVisits,
	}
}

func mustArrivals(t testing.TB, name string, period float64, n int, seed uint64) []uint64 {
	t.Helper()
	proc, err := amac.ParseArrivals(name, period)
	if err != nil {
		t.Fatal(err)
	}
	return proc.Schedule(n, seed)
}

const serveGoldenPath = "testdata/golden_serve.json"

func TestGoldenServe(t *testing.T) {
	scenarios := serveScenarios()

	if *updateGolden {
		got := make(map[string]serveGoldenRecord, len(scenarios))
		for _, sc := range scenarios {
			got[sc.name] = executeServeGolden(t, sc)
		}
		if err := os.MkdirAll(filepath.Dir(serveGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(serveGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d serving golden records to %s", len(got), serveGoldenPath)
		return
	}

	buf, err := os.ReadFile(serveGoldenPath)
	if err != nil {
		t.Fatalf("missing serving goldens (run with -update-golden to create): %v", err)
	}
	var want map[string]serveGoldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(scenarios) {
		t.Errorf("golden file has %d records, test defines %d", len(want), len(scenarios))
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			exp, ok := want[sc.name]
			if !ok {
				t.Fatalf("no serving golden record for %q; run with -update-golden", sc.name)
			}
			got := executeServeGolden(t, sc)
			if got == exp {
				return
			}
			gv, ev := reflect.ValueOf(got), reflect.ValueOf(exp)
			for i := 0; i < gv.NumField(); i++ {
				if !reflect.DeepEqual(gv.Field(i).Interface(), ev.Field(i).Interface()) {
					t.Errorf("%s: got %v want %v", gv.Type().Field(i).Name, gv.Field(i).Interface(), ev.Field(i).Interface())
				}
			}
		})
	}
}

// TestGoldenServeDeterministic guards the guard: the same serving run
// executed twice in one process — the second on recycled socket models —
// must produce identical records, which is exactly the system-pool
// invariant the serving fast path relies on.
func TestGoldenServeDeterministic(t *testing.T) {
	for _, sc := range serveScenarios()[:4] {
		a, b := executeServeGolden(t, sc), executeServeGolden(t, sc)
		if a != b {
			t.Fatalf("%s: two identical serving runs diverged:\n%+v\n%+v", sc.name, a, b)
		}
	}
}

package amac

import "amac/internal/obs"

// This file exports the observability subsystem: simulated-time event
// tracing (Chrome/Perfetto trace-event JSON) and gauge time series (JSON
// Lines), both keyed on simulated cycles. A nil sink is the disabled state —
// every recording method on a nil receiver is a single-branch no-op that
// allocates nothing — so instrumented code threads the pointers
// unconditionally, and simulated results are byte-identical with the sinks
// on or off. Attach a Trace/Metrics through ServiceOptions, Options.Trace,
// Pipeline.SetTrace, AdaptiveController.SetTrace or ExperimentConfig.

// Trace is the root event-trace sink: a registry of per-core ring-buffered
// event sinks recording slot lifecycle, GP/SPP group boundaries, controller
// decisions, serving-queue activity and pipeline backpressure. Export with
// WriteChrome (loadable at ui.perfetto.dev). nil disables tracing.
type Trace = obs.Trace

// NewTrace creates a trace sink whose per-core rings hold perCoreEvents
// events (rounded up to a power of two; zero selects the 1<<16 default).
// Full rings overwrite oldest-first — a trace is the tail of the run.
func NewTrace(perCoreEvents int) *Trace { return obs.NewTrace(perCoreEvents) }

// CoreTrace is one core's event ring, handed out by Trace.Core and accepted
// by Options.Trace and the SetTrace methods. All methods no-op on nil.
type CoreTrace = obs.CoreTrace

// TraceEvent is one fixed-size trace record (simulated cycle, kind,
// per-kind detail), readable back through CoreTrace.Events.
type TraceEvent = obs.Event

// TraceEventKind discriminates TraceEvent records.
type TraceEventKind = obs.Kind

// The trace event kinds (see the obs package for each record's field
// interpretation).
const (
	TraceSlotStart    = obs.KindSlotStart
	TraceSlotEnd      = obs.KindSlotEnd
	TraceStage        = obs.KindStage
	TraceRetry        = obs.KindRetry
	TracePrefetch     = obs.KindPrefetch
	TraceGroupStart   = obs.KindGroupStart
	TraceGroupEnd     = obs.KindGroupEnd
	TraceEngineSample = obs.KindEngineSample
	TraceWidthChange  = obs.KindWidthChange
	TraceDecision     = obs.KindDecision
	TraceQueueAdmit   = obs.KindQueueAdmit
	TraceQueueDrop    = obs.KindQueueDrop
	TraceQueueBlock   = obs.KindQueueBlock
	TraceQueueDepth   = obs.KindQueueDepth
	TracePipeDepth    = obs.KindPipeDepth
	TraceBackpressure = obs.KindBackpressure
)

// Metrics is the root metrics registry: named per-core gauges sampled every
// Interval simulated cycles through the core's cycle hook and exported as
// JSON Lines via WriteJSONL. nil disables sampling.
type Metrics = obs.Metrics

// NewMetrics creates a metrics registry sampling every interval simulated
// cycles (zero selects the 4096-cycle default).
func NewMetrics(interval int) *Metrics { return obs.NewMetrics(interval) }

// CoreMetrics is one core's gauge collection, handed out by Metrics.Core.
type CoreMetrics = obs.CoreMetrics

package amac

import (
	"amac/internal/arena"
	"amac/internal/memsim"
)

// Hardware describes a simulated socket: cores, cache hierarchy, MSHRs, TLB,
// off-chip queue and clock. Use XeonX5670 or SPARCT4 for the machines the
// paper evaluates, or build a custom configuration.
type Hardware = memsim.Config

// CacheConfig describes one cache level of a Hardware configuration.
type CacheConfig = memsim.CacheConfig

// TLBConfig describes the data TLB of a Hardware configuration.
type TLBConfig = memsim.TLBConfig

// XeonX5670 returns the model of the Intel Xeon x5670 socket used in the
// paper's primary evaluation.
func XeonX5670() Hardware { return memsim.XeonX5670() }

// SPARCT4 returns the model of the Oracle SPARC T4 socket used in the
// paper's secondary evaluation.
func SPARCT4() Hardware { return memsim.SPARCT4() }

// System is one simulated socket: a shared last-level cache and off-chip
// queue from which representative cores are created.
type System = memsim.System

// NewSystem validates the hardware description and builds a socket model.
func NewSystem(h Hardware) (*System, error) { return memsim.NewSystem(h) }

// MustSystem is NewSystem for known-good configurations; it panics on error.
func MustSystem(h Hardware) *System { return memsim.MustSystem(h) }

// Core is one simulated hardware thread. Operators and engines charge their
// instructions, loads, stores and prefetches against it; Stats exposes the
// counters a hardware PMU would.
type Core = memsim.Core

// Stats holds the performance counters of a Core.
type Stats = memsim.Stats

// Arena is the simulated address space all data structures live in.
type Arena = arena.Arena

// NewArena returns an empty simulated address space.
func NewArena() *Arena { return arena.New() }

// Command pipeline demonstrates the streaming pipeline layer: a two-stage
// plan — a hash-join probe feeding a binary-search-tree semi-join filter —
// streams rows stage to stage through bounded pipes (no inter-stage
// materialization), with each stage running under its own execution engine.
// It compares every uniform static assignment against the cost-seeded
// mini-planner's per-stage choice and fully adaptive per-stage controllers,
// and verifies that every configuration produces identical results.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac"
)

const (
	buildSize = 1 << 16 // DRAM-resident hash table keys
	treeSize  = 1 << 10 // cache-resident BST keys
	probeRows = 1 << 14 // root probe rows
)

func main() {
	// Every structure of one pipeline lives in ONE arena: arenas share a
	// base address, so structures from different arenas would alias in the
	// simulated cache.
	a := amac.NewArena()

	// The probed table: payloads land in the tree's key domain about half
	// the time, so the filter actually filters.
	table := amac.NewHashTable(a, buildSize)
	for k := uint64(1); k <= buildSize; k++ {
		table.InsertRaw(k, (k*7919)%(2*treeSize)+1)
	}

	// The filter's tree, cache-resident.
	tree := amac.NewBST(a)
	for i := 0; i < treeSize; i++ {
		k := (uint64(i)*2654435761)%(2*treeSize) + 1
		tree.Insert(k, k+13)
	}

	// The root relation: uniform keys over the build domain.
	keys := make([]uint64, probeRows)
	for i := range keys {
		keys[i] = (uint64(i)*2654435761)%buildSize + 1
	}
	in := amac.NewInput(a, amac.KeyedRelation("S", keys, 0))
	out := amac.NewOutput(a, false)

	// Declare the plan: probe the table with the row's key, then keep only
	// rows whose matched build payload is in the tree.
	b := amac.NewPipeline(a)
	b.ScanProbe(table, in, true)
	b.BSTFilter(tree, amac.SelBuildPayload)

	hw := amac.XeonX5670()

	// The mini-planner samples a row prefix through the plan and assigns
	// each stage a technique and window. It is called once and cached; all
	// probed structures must already be populated.
	choice := b.Plan(hw, 1024, amac.AdaptiveConfig{})
	fmt.Printf("mini-planner choice: %s\n\n", choice)

	run := func(cfgs []amac.StageConfig) (uint64, amac.PipelineResult) {
		out.Reset()
		core := amac.MustSystem(hw).NewCore()
		res := b.Build(out).Run(core, cfgs)
		return core.Cycle(), res
	}

	var wantCount, wantSum uint64
	check := func(label string) {
		if wantCount == 0 {
			wantCount, wantSum = out.Count, out.Checksum
			return
		}
		if out.Count != wantCount || out.Checksum != wantSum {
			fmt.Fprintf(os.Stderr, "%s produced different results!\n", label)
			os.Exit(1)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "assignment\tcycles/row")

	// Uniform static assignments: one technique on both stages.
	for _, tech := range amac.Techniques {
		cfgs := []amac.StageConfig{{Tech: tech}, {Tech: tech}}
		cycles, _ := run(cfgs)
		check(tech.String())
		fmt.Fprintf(w, "%s→%s\t%.1f\n", tech, tech, float64(cycles)/probeRows)
	}

	// The planner's per-stage assignment.
	cycles, res := run(choice.Configs)
	check("planner")
	fmt.Fprintf(w, "planner\t%.1f\n", float64(cycles)/probeRows)

	// Fully adaptive: one online controller per stage.
	out.Reset()
	core := amac.MustSystem(hw).NewCore()
	ctls := []*amac.AdaptiveController{
		amac.NewAdaptiveController(amac.AdaptiveConfig{}),
		amac.NewAdaptiveController(amac.AdaptiveConfig{}),
	}
	b.Build(out).RunAdaptive(core, ctls)
	check("adaptive")
	fmt.Fprintf(w, "adaptive\t%.1f\n", float64(core.Cycle())/probeRows)
	w.Flush()

	fmt.Printf("\nper-stage report of the planner's run:\n")
	for _, st := range res.Stages {
		fmt.Printf("  %-14s %-12s rows in %6d, out %6d\n", st.Label, st.Config, st.RowsIn, st.RowsOut)
	}
	fmt.Printf("\nall assignments produced identical results (%d rows, checksum %#x)\n", wantCount, wantSum)
}

// Command custom_machine shows how to use the AMAC scheduler for your own
// pointer-intensive data structure: you describe one lookup as numbered code
// stages over a small state struct (the paper's Table 1 formulation), and
// the library interleaves as many lookups as the simulated hardware can keep
// in flight.
//
// The data structure here is a directory of linked lists ("adjacency lists"
// of a graph, posting lists of an inverted index — any structure where each
// query walks an unpredictable number of nodes). The example compares the
// no-prefetch baseline with AMAC on the same machine definition.
package main

import (
	"fmt"

	"amac"
)

// listNode is the arena layout of one linked-list node:
//
//	offset  0: value (8 bytes)
//	offset  8: next  (8 bytes, 0 = end)
const (
	nodeValueOff = 0
	nodeNextOff  = 8
	nodeBytes    = 64 // one cache line per node, as in the paper's layouts
)

// listDirectory is a set of linked lists living in a simulated arena.
type listDirectory struct {
	arena *amac.Arena
	heads []amac.Addr
}

// buildDirectory creates nLists lists whose lengths cycle 1..maxLen, filled
// with deterministic values.
func buildDirectory(nLists, maxLen int) *listDirectory {
	a := amac.NewArena()
	d := &listDirectory{arena: a, heads: make([]amac.Addr, nLists)}
	for i := range d.heads {
		length := 1 + i%maxLen
		var head amac.Addr
		for j := length - 1; j >= 0; j-- {
			node := a.Alloc(nodeBytes, amac.LineSize)
			a.WriteU64(node+nodeValueOff, uint64(i*1000+j))
			a.WriteAddr(node+nodeNextOff, head)
			head = node
		}
		d.heads[i] = head
	}
	return d
}

// sumState is the per-lookup state: which list, the running sum, and the
// node the next stage will visit.
type sumState struct {
	list int
	node amac.Addr
	sum  uint64
}

// sumMachine sums every list in the directory; each node visit is one
// dependent memory access.
type sumMachine struct {
	dir  *listDirectory
	sums []uint64
}

func (m *sumMachine) NumLookups() int        { return len(m.dir.heads) }
func (m *sumMachine) ProvisionedStages() int { return 4 }

func (m *sumMachine) Init(c *amac.Core, s *sumState, i int) amac.Outcome {
	c.Instr(2)
	s.list = i
	s.sum = 0
	s.node = m.dir.heads[i]
	if s.node == 0 {
		m.sums[i] = 0
		return amac.Outcome{Done: true}
	}
	return amac.Outcome{NextStage: 1, Prefetch: s.node, PrefetchBytes: nodeBytes}
}

func (m *sumMachine) Stage(c *amac.Core, s *sumState, stage int) amac.Outcome {
	c.Load(s.node, 16)
	c.Instr(2)
	s.sum += m.dir.arena.ReadU64(s.node + nodeValueOff)
	next := m.dir.arena.ReadAddr(s.node + nodeNextOff)
	if next == 0 {
		m.sums[s.list] = s.sum
		return amac.Outcome{Done: true}
	}
	s.node = next
	return amac.Outcome{NextStage: 1, Prefetch: next, PrefetchBytes: nodeBytes}
}

func main() {
	const nLists = 1 << 16
	dir := buildDirectory(nLists, 8)

	run := func(label string, f func(c *amac.Core, m *sumMachine)) []uint64 {
		sys := amac.MustSystem(amac.XeonX5670())
		core := sys.NewCore()
		m := &sumMachine{dir: dir, sums: make([]uint64, nLists)}
		f(core, m)
		fmt.Printf("%-28s %8.1f cycles/list   (%d lists, %.2f IPC)\n",
			label, float64(core.Cycle())/nLists, nLists, core.Stats().IPC())
		return m.sums
	}

	base := run("baseline (no prefetch)", func(c *amac.Core, m *sumMachine) { amac.RunBaseline(c, m) })
	chained := run("AMAC (10 in flight)", func(c *amac.Core, m *sumMachine) {
		amac.Run(c, m, amac.Options{Width: 10})
	})

	for i := range base {
		if base[i] != chained[i] {
			fmt.Printf("mismatch on list %d: %d vs %d\n", i, base[i], chained[i])
			return
		}
	}
	fmt.Println("both executions produced identical sums; only the memory access schedule differs.")
}

// Command serving demonstrates the streaming request-serving layer: a hash
// join with skewed build keys is partitioned across two workers and served
// under open-loop Poisson traffic at a low and a near-saturation arrival
// rate, once per execution technique. The point the numbers make is the
// paper's flexibility argument restated as a serving property: AMAC refills
// each in-flight slot the moment its lookup completes, so it keeps p99
// latency near the bare service time at arrival rates where the
// batch-boundary refill of GP and SPP (and the one-at-a-time baseline)
// lets the admission queue — and the tail — grow.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac"
)

const workers = 2

func main() {
	build, probe, err := amac.BuildJoin(amac.JoinSpec{
		BuildSize: 1 << 14,
		ProbeSize: 1 << 14,
		ZipfBuild: 1.0, // skewed build keys: long, divergent bucket chains
		Seed:      42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Partition the join so each worker owns a private table, and pre-build
	// outside the measured phase.
	pj := amac.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	wantCount, wantChecksum := pj.ReferenceJoinFirstMatch()

	hw := amac.XeonX5670()

	// Calibrate the offered loads against AMAC's batch service capacity:
	// run the probe as a plain batch once and read cycles per tuple.
	capacity := batchCapacity(hw, pj)
	fmt.Printf("hash join service: |R| = |S| = %d tuples, Zipf(1.0) build keys, %d workers\n", probe.Len(), workers)
	fmt.Printf("batch AMAC capacity: %.1f M req/s\n\n", capacity*hw.FreqHz/1e6)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "load\ttechnique\tthroughput (M req/s)\tp50 (cycles)\tp99 (cycles)\tmax queue depth")
	for _, load := range []float64{0.5, 0.9} {
		for _, tech := range amac.Techniques {
			res, count, checksum := serveOnce(hw, pj, tech, load, capacity)
			if count != wantCount || checksum != wantChecksum {
				fmt.Fprintf(os.Stderr, "%s produced wrong results under streaming execution!\n", tech)
				os.Exit(1)
			}
			fmt.Fprintf(w, "%.0f%%\t%s\t%.1f\t%d\t%d\t%d\n",
				load*100, tech,
				res.ThroughputPerCycle()*hw.FreqHz/1e6,
				res.Latency.P50(), res.Latency.P99(), res.Latency.DepthMax)
		}
	}
	w.Flush()
	fmt.Println("\nevery technique served the identical request set and produced identical join output;",
		"only AMAC's per-slot refill holds the p99 tail flat near saturation.")
}

// batchCapacity measures AMAC's aggregate batch throughput (requests per
// cycle) over the partitioned workload: total tuples over the slowest
// worker's elapsed cycles.
func batchCapacity(hw amac.Hardware, pj *amac.PartitionedHashJoin) float64 {
	shared := hw.ShareLLC(workers)
	cores := make([]*amac.Core, workers)
	machines := make([]*amac.ProbeMachine, workers)
	for i := 0; i < workers; i++ {
		sys := amac.MustSystem(shared)
		cores[i] = sys.NewCore()
		out := amac.NewOutput(pj.Parts[i].Arena, false)
		out.Sequential = true
		machines[i] = pj.ProbeMachine(i, out, true)
	}
	ps := amac.RunParallel(cores, func(i int, c *amac.Core) {
		amac.Run(c, machines[i], amac.Options{})
	})
	return float64(pj.ProbeTuples()) / float64(ps.ElapsedCycles())
}

// serveOnce runs the sharded service at the given fraction of AMAC's batch
// capacity and returns the merged result plus the aggregated join output.
func serveOnce(hw amac.Hardware, pj *amac.PartitionedHashJoin, tech amac.Technique, load, capacity float64) (amac.ServiceResult, uint64, uint64) {
	total := pj.ProbeTuples()
	outs := make([]*amac.Output, workers)
	specs := make([]amac.ServiceWorker[amac.ProbeState], workers)
	for i := 0; i < workers; i++ {
		outs[i] = amac.NewOutput(pj.Parts[i].Arena, false)
		outs[i].Sequential = true
		nw := pj.Parts[i].Probe.Len()
		// Split the offered rate across workers in proportion to their
		// partition sizes so every stream spans the same duration.
		period := float64(total) / (load * capacity * float64(nw))
		specs[i] = amac.ServiceWorker[amac.ProbeState]{
			Machine:  pj.ProbeMachine(i, outs[i], true),
			Arrivals: amac.Poisson{MeanPeriod: period}.Schedule(nw, uint64(i)+7),
		}
	}
	res := amac.RunService(amac.ServiceOptions{
		Hardware:  hw,
		Technique: tech,
		Window:    10,
	}, specs)
	var count, checksum uint64
	for _, out := range outs {
		count += out.Count
		checksum += out.Checksum
	}
	return res, count, checksum
}

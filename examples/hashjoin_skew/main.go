// Command hashjoin_skew reproduces the paper's headline result on a single
// workload: software prefetching techniques that statically group or
// pipeline lookups (GP, SPP) lose their advantage when the build relation's
// keys are skewed — because skewed keys produce buckets with long, irregular
// chains — while AMAC keeps its full advantage.
//
// It probes the same 2^19-tuple hash join with build-key Zipf factors 0,
// 0.5 and 1.0 and prints probe cycles per tuple plus each technique's
// speedup over the no-prefetch baseline (compare with Figure 5b of the
// paper). A second section flips the skew to the probe side with
// amac.ZipfKeys: hot probe keys hammer a few cache-resident buckets, the
// memory wall recedes, and the prefetching techniques' advantage narrows —
// the regime where the adaptive subsystem (EXPERIMENTS.md "adaptN") hands
// the work back to the lean baseline loop.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac"
)

func main() {
	const size = 1 << 19
	skews := []float64{0, 0.5, 1.0}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "build skew\ttechnique\tcycles/tuple\tspeedup vs baseline\tmatches")

	for _, z := range skews {
		build, probe, err := amac.BuildJoin(amac.JoinSpec{
			BuildSize: size, ProbeSize: size, ZipfBuild: z, Seed: 7,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		join := amac.NewHashJoin(build, probe)
		join.PrebuildRaw()

		var baseline float64
		for _, tech := range amac.Techniques {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			out := amac.NewOutput(join.Arena, false)

			// With skewed (non-unique) build keys a probe must scan the
			// whole chain; with unique keys it can exit at the first match.
			earlyExit := z == 0
			amac.RunWith(core, join.ProbeMachine(out, earlyExit), tech, amac.Params{Window: 10})

			cpt := float64(core.Cycle()) / float64(probe.Len())
			if tech == amac.Baseline {
				baseline = cpt
			}
			fmt.Fprintf(w, "Zipf %.1f\t%s\t%.0f\t%.2fx\t%d\n", z, tech, cpt, baseline/cpt, out.Count)
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()

	fmt.Println("under skew (Zipf 1.0) the static techniques lose most of their advantage;")
	fmt.Println("AMAC's per-lookup state lets it keep the memory-level parallelism high.")

	// Probe-side skew: the same uniform build relation probed with keys from
	// amac.ZipfKeys. Hot keys revisit the same few buckets, which stay
	// cache-resident, so every technique speeds up and the baseline closes
	// most of the gap — prefetching cannot beat a cache hit.
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "probe skew\ttechnique\tcycles/tuple\tspeedup vs baseline\tmatches")
	build, _, err := amac.BuildJoin(amac.JoinSpec{BuildSize: size, ProbeSize: 1, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, z := range []float64{0, 1.5} {
		probe := amac.KeyedRelation("S", amac.ZipfKeys(size, uint64(size), z, 11), 1<<40)
		join := amac.NewHashJoin(build, probe)
		join.PrebuildRaw()

		var baseline float64
		for _, tech := range amac.Techniques {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			out := amac.NewOutput(join.Arena, false)
			amac.RunWith(core, join.ProbeMachine(out, true), tech, amac.Params{Window: 10})
			cpt := float64(core.Cycle()) / float64(probe.Len())
			if tech == amac.Baseline {
				baseline = cpt
			}
			fmt.Fprintf(w, "Zipf %.1f\t%s\t%.0f\t%.2fx\t%d\n", z, tech, cpt, baseline/cpt, out.Count)
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()
	fmt.Println("hot probe keys keep their buckets on chip: the baseline closes the gap,")
	fmt.Println("which is why the adaptive controller picks it on hot phases (see adaptN).")
}

// Command hashjoin_skew reproduces the paper's headline result on a single
// workload: software prefetching techniques that statically group or
// pipeline lookups (GP, SPP) lose their advantage when the build relation's
// keys are skewed — because skewed keys produce buckets with long, irregular
// chains — while AMAC keeps its full advantage.
//
// It probes the same 2^19-tuple hash join with build-key Zipf factors 0,
// 0.5 and 1.0 and prints probe cycles per tuple plus each technique's
// speedup over the no-prefetch baseline (compare with Figure 5b of the
// paper).
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac"
)

func main() {
	const size = 1 << 19
	skews := []float64{0, 0.5, 1.0}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "build skew\ttechnique\tcycles/tuple\tspeedup vs baseline\tmatches")

	for _, z := range skews {
		build, probe, err := amac.BuildJoin(amac.JoinSpec{
			BuildSize: size, ProbeSize: size, ZipfBuild: z, Seed: 7,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		join := amac.NewHashJoin(build, probe)
		join.PrebuildRaw()

		var baseline float64
		for _, tech := range amac.Techniques {
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			out := amac.NewOutput(join.Arena, false)

			// With skewed (non-unique) build keys a probe must scan the
			// whole chain; with unique keys it can exit at the first match.
			earlyExit := z == 0
			amac.RunWith(core, join.ProbeMachine(out, earlyExit), tech, amac.Params{Window: 10})

			cpt := float64(core.Cycle()) / float64(probe.Len())
			if tech == amac.Baseline {
				baseline = cpt
			}
			fmt.Fprintf(w, "Zipf %.1f\t%s\t%.0f\t%.2fx\t%d\n", z, tech, cpt, baseline/cpt, out.Count)
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()

	fmt.Println("under skew (Zipf 1.0) the static techniques lose most of their advantage;")
	fmt.Println("AMAC's per-lookup state lets it keep the memory-level parallelism high.")
}

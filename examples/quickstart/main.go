// Command quickstart is the five-minute tour of the library: it builds a
// hash-join workload, probes it with all four execution techniques of the
// AMAC paper (no-prefetch baseline, Group Prefetching, Software-Pipelined
// Prefetching, and AMAC) on a simulated Xeon x5670, verifies that all four
// produce identical join results, and prints the cycles-per-tuple comparison.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac"
)

func main() {
	// A foreign-key join: 2^18 build tuples, 2^18 probe tuples, uniform keys.
	build, probe, err := amac.BuildJoin(amac.JoinSpec{
		BuildSize: 1 << 18,
		ProbeSize: 1 << 18,
		Seed:      42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	join := amac.NewHashJoin(build, probe)
	join.PrebuildRaw() // populate the hash table outside the measured phase
	wantCount, wantChecksum := join.ReferenceJoin()

	fmt.Printf("hash join: |R| = |S| = %d tuples (%d MB each)\n\n", build.Len(), build.Bytes()>>20)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "technique\tcycles/tuple\tinstructions/tuple\tIPC\tspeedup vs baseline")

	var baselineCycles float64
	for _, tech := range amac.Techniques {
		sys := amac.MustSystem(amac.XeonX5670())
		core := sys.NewCore()
		out := amac.NewOutput(join.Arena, false)

		amac.RunWith(core, join.ProbeMachine(out, true), tech, amac.Params{Window: 10})

		if out.Count != wantCount || out.Checksum != wantChecksum {
			fmt.Fprintf(os.Stderr, "%s produced wrong results!\n", tech)
			os.Exit(1)
		}

		stats := core.Stats()
		cpt := float64(stats.Cycles) / float64(probe.Len())
		ipt := float64(stats.Instructions) / float64(probe.Len())
		if tech == amac.Baseline {
			baselineCycles = cpt
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.2f\t%.2fx\n", tech, cpt, ipt, stats.IPC(), baselineCycles/cpt)
	}
	w.Flush()

	fmt.Println("\nall four techniques returned identical join output",
		"(", wantCount, "matches ) — they differ only in how they schedule memory accesses.")
}

// Command groupby runs the paper's group-by workload: every input tuple is
// folded into its group's running aggregates (count, sum, sum of squares,
// min, max, average) inside a latched hash table. Under heavily skewed keys
// many in-flight updates target the same hot group, creating read/write
// dependencies that force GP and SPP to serialize; AMAC simply retries the
// blocked lookup on a later pass of its circular buffer (compare with
// Figure 9 of the paper).
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"amac"
)

func main() {
	const size = 1 << 18
	const repeats = 3

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "key distribution\ttechnique\tcycles/tuple\tspeedup vs baseline\tgroups")

	for _, skew := range []struct {
		label string
		zipf  float64
	}{{"uniform (3 repeats/key)", 0}, {"Zipf 0.5", 0.5}, {"Zipf 1.0", 1.0}} {
		rel, err := amac.BuildGroupBy(amac.GroupBySpec{Size: size, Repeats: repeats, Zipf: skew.zipf, Seed: 11})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		var baseline float64
		for _, tech := range amac.Techniques {
			g := amac.NewGroupBy(rel, size/repeats)
			sys := amac.MustSystem(amac.XeonX5670())
			core := sys.NewCore()
			amac.RunWith(core, g.Machine(), tech, amac.Params{Window: 10})

			cpt := float64(core.Cycle()) / float64(rel.Len())
			if tech == amac.Baseline {
				baseline = cpt
			}
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.2fx\t%d\n", skew.label, tech, cpt, baseline/cpt, len(g.Table.Groups()))

			if tech == amac.AMAC && skew.zipf == 0 {
				printSampleGroups(g)
			}
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()
}

// printSampleGroups shows a few materialized aggregates so the example also
// demonstrates reading group-by results back.
func printSampleGroups(g *amac.GroupBy) {
	groups := g.Table.Groups()
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	fmt.Println("sample aggregates (uniform input, AMAC execution):")
	for _, agg := range groups[:3] {
		fmt.Printf("  key %-6d count=%d sum=%d min=%d max=%d avg=%.1f\n",
			agg.Key, agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg())
	}
	fmt.Println()
}

// Command indexsearch runs the paper's two index workloads — binary search
// tree lookups and Pugh skip list lookups — under all four techniques. Both
// are dependent pointer chases whose length varies per lookup (tree depth,
// skip list level walks), the irregularity that AMAC handles gracefully
// (compare with Figures 10, 11 and 13 of the paper).
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac"
)

func main() {
	const size = 1 << 17

	build, probe, err := amac.BuildIndexWorkload(size, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "index\ttechnique\tcycles/lookup\tspeedup vs baseline\tfound")

	// Binary search tree: one dependent access per level.
	bst := amac.NewBSTWorkload(build, probe)
	var baseline float64
	for _, tech := range amac.Techniques {
		sys := amac.MustSystem(amac.XeonX5670())
		core := sys.NewCore()
		out := amac.NewOutput(bst.Arena, false)
		amac.RunWith(core, bst.SearchMachine(out), tech, amac.Params{Window: 10})
		cpt := float64(core.Cycle()) / float64(probe.Len())
		if tech == amac.Baseline {
			baseline = cpt
		}
		fmt.Fprintf(w, "BST (%d nodes)\t%s\t%.0f\t%.2fx\t%d\n", size, tech, cpt, baseline/cpt, out.Count)
	}
	fmt.Fprintln(w, "\t\t\t\t")

	// Skip list: search the pre-built list, then build one from scratch with
	// the insert operator.
	sl := amac.NewSkipListWorkload(build, probe)
	sl.PrebuildRaw(3)
	for _, tech := range amac.Techniques {
		sys := amac.MustSystem(amac.XeonX5670())
		core := sys.NewCore()
		out := amac.NewOutput(sl.Arena, false)
		amac.RunWith(core, sl.SearchMachine(out), tech, amac.Params{Window: 10})
		cpt := float64(core.Cycle()) / float64(probe.Len())
		if tech == amac.Baseline {
			baseline = cpt
		}
		fmt.Fprintf(w, "skip list search (%d elems)\t%s\t%.0f\t%.2fx\t%d\n", size, tech, cpt, baseline/cpt, out.Count)
	}
	fmt.Fprintln(w, "\t\t\t\t")

	for _, tech := range amac.Techniques {
		fresh := amac.NewSkipListWorkload(build, probe)
		sys := amac.MustSystem(amac.XeonX5670())
		core := sys.NewCore()
		m := fresh.InsertMachine(3)
		amac.RunWith(core, m, tech, amac.Params{Window: 10})
		cpt := float64(core.Cycle()) / float64(build.Len())
		if tech == amac.Baseline {
			baseline = cpt
		}
		fmt.Fprintf(w, "skip list insert (%d elems)\t%s\t%.0f\t%.2fx\t%d\n", size, tech, cpt, baseline/cpt, m.Inserted)
	}
	w.Flush()
}

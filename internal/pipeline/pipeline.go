// Package pipeline composes the operator machines into streaming
// multi-operator query plans: a chain of stages (hash-join probes, a
// binary-search-tree filter, a group-by aggregation) in which intermediate
// rows flow through small bounded pipes instead of being materialized between
// operators.
//
// Each stage wraps one operator machine behind one execution engine —
// Baseline, GP, SPP or AMAC, chosen per stage — and the engines compose
// through the exec.Source pull interface: the sink stage's engine drives the
// whole plan, and a stage whose pipe runs dry pumps its upstream neighbour
// for a bounded, backpressured lease of its engine. Admission backpressure
// therefore propagates upstream (a full pipe closes the pump's gate; the
// upstream engine drains its in-flight lookups and hands control back), and
// the sink alone idles on open-loop arrival gaps.
//
// Because different operators in one plan can sit in different regimes — a
// cache-resident dimension probe wants the baseline's lean loop while a
// DRAM-resident tree filter wants AMAC's memory-level parallelism — the
// package includes a cost-seeded mini-planner (Builder.Plan): it streams a
// small row sample through the plan, replays each stage's sample under the
// adaptive controller's probe machinery, and emits a per-stage technique and
// window assignment. Fully adaptive execution (one controller per stage,
// retuning online) is available as Pipeline.RunAdaptive.
package pipeline

import (
	"fmt"

	"amac/internal/adapt"
	"amac/internal/arena"
	"amac/internal/bst"
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/ht"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
	"amac/internal/serve"
)

// StageConfig selects one stage's engine: the technique and its in-flight
// window (GP/SPP group size or AMAC starting width; zero selects the engine
// default).
type StageConfig struct {
	Tech   ops.Technique
	Window int
}

// String renders "tech/window".
func (sc StageConfig) String() string {
	if sc.Window <= 0 {
		return sc.Tech.String()
	}
	return fmt.Sprintf("%s/%d", sc.Tech, sc.Window)
}

// KeySel says which field of the upstream row a stage looks up.
type KeySel int

const (
	// SelKey probes with the upstream row's join key.
	SelKey KeySel = iota
	// SelBuildPayload probes with the matched build-side payload — the
	// foreign-key chain of a multi-way join, where the payload of one probe
	// is the key into the next table.
	SelBuildPayload
	// SelProbePayload probes with the probe-side payload carried unchanged
	// from the root relation — an attribute of the original row, so a later
	// stage can join on it regardless of what the stages in between matched.
	SelProbePayload
)

// of extracts the selected key from a row.
func (s KeySel) of(r Row) uint64 {
	switch s {
	case SelBuildPayload:
		return r.BuildPayload
	case SelProbePayload:
		return r.ProbePayload
	}
	return r.Key
}

// stageKind enumerates the operators a stage can wrap.
type stageKind int

const (
	kindScanProbe stageKind = iota
	kindProbe
	kindBST
	kindAggregate
)

// stageDef is one declared stage, recorded by the Builder until Build wires
// the concrete machines.
type stageDef struct {
	kind      stageKind
	table     *ht.Table
	tree      *bst.Tree
	agg       *ht.AggTable
	in        *ops.Input
	sel       KeySel
	earlyExit bool
}

// label renders a stage's display name.
func (d stageDef) label(i int) string {
	switch d.kind {
	case kindScanProbe:
		return fmt.Sprintf("%d:scan-probe", i)
	case kindProbe:
		return fmt.Sprintf("%d:probe", i)
	case kindBST:
		return fmt.Sprintf("%d:bst-filter", i)
	default:
		return fmt.Sprintf("%d:aggregate", i)
	}
}

// Builder declares a pipeline plan and assembles runnable Pipeline instances
// from it. A Pipeline is single-use (its pipes and stage state are one run's
// worth), so sweeps build one per measured cell; the builder's charged pipe
// windows are allocated once and shared by every instance, which keeps the
// simulated address layout — and therefore the cycle counts — identical
// across rebuilds, exactly like Output.Reset.
//
// All referenced structures must live in the builder's arena: arenas share a
// base address, so structures from different arenas would alias in the cache
// model.
type Builder struct {
	a        *arena.Arena
	burst    int
	pipeCap  int
	defs     []stageDef
	preludes []struct {
		table *ht.Table
		in    *ops.Input
	}

	// windows are the pipes' charged arena spans, allocated at first build.
	windows []arena.Addr

	// scratch holds the planner's throwaway sink structures (see Plan).
	scratchOut *ops.Output
	scratchAgg *ht.AggTable

	choice *PlanChoice
}

// Default pump geometry: a pump lease admits up to defaultBurst upstream
// lookups, and a pipe buffers up to defaultPipeCap rows before backpressure
// closes the pump's gate.
const (
	defaultBurst   = 64
	defaultPipeCap = 128
)

// NewBuilder starts an empty plan over the given arena.
func NewBuilder(a *arena.Arena) *Builder {
	return &Builder{a: a, burst: defaultBurst, pipeCap: defaultPipeCap}
}

// Burst sets the pump lease size (admissions per upstream lease).
func (b *Builder) Burst(n int) *Builder {
	if n > 0 {
		b.burst = n
	}
	return b
}

// PipeCap sets the per-pipe row bound (the backpressure threshold). It must
// be set before the first Build: the charged pipe windows are sized to the
// capacity when they are allocated.
func (b *Builder) PipeCap(n int) *Builder {
	if len(b.windows) > 0 {
		panic("pipeline: PipeCap must be set before the first Build")
	}
	if n > 0 {
		b.pipeCap = n
	}
	return b
}

// PreludeBuild declares a charged hash-table build phase that runs on the
// measured core before the streaming plan starts: the build side of a
// build→probe pipeline. It always runs under AMAC with its width seeded from
// the core's measured MSHR budget — the build is a fixed prefix, not a
// planned stage.
func (b *Builder) PreludeBuild(t *ht.Table, in *ops.Input) *Builder {
	b.preludes = append(b.preludes, struct {
		table *ht.Table
		in    *ops.Input
	}{t, in})
	return b
}

// ScanProbe declares the root stage: a hash-join probe scanning a
// materialized input relation. Every plan starts with one.
func (b *Builder) ScanProbe(t *ht.Table, in *ops.Input, earlyExit bool) *Builder {
	b.defs = append(b.defs, stageDef{kind: kindScanProbe, table: t, in: in, earlyExit: earlyExit})
	return b
}

// Probe declares a downstream hash-join probe fed by the previous stage's
// rows, looking up the field sel selects.
func (b *Builder) Probe(t *ht.Table, sel KeySel, earlyExit bool) *Builder {
	b.defs = append(b.defs, stageDef{kind: kindProbe, table: t, sel: sel, earlyExit: earlyExit})
	return b
}

// BSTFilter declares a binary-search-tree semi-join stage: an upstream row
// survives (with the tree's payload attached) iff its selected key is in the
// tree.
func (b *Builder) BSTFilter(tree *bst.Tree, sel KeySel) *Builder {
	b.defs = append(b.defs, stageDef{kind: kindBST, tree: tree, sel: sel})
	return b
}

// Aggregate declares a group-by sink: upstream rows fold into the
// aggregation table, grouped by the selected field, aggregating the carried
// probe payload. It must be the last stage.
func (b *Builder) Aggregate(agg *ht.AggTable, sel KeySel) *Builder {
	b.defs = append(b.defs, stageDef{kind: kindAggregate, agg: agg, sel: sel})
	return b
}

// validate panics on a malformed plan.
func (b *Builder) validate() {
	if len(b.defs) == 0 {
		panic("pipeline: empty plan")
	}
	if b.defs[0].kind != kindScanProbe {
		panic("pipeline: plans start with ScanProbe")
	}
	for i, d := range b.defs[1:] {
		if d.kind == kindScanProbe {
			panic("pipeline: ScanProbe must be the root stage")
		}
		if d.kind == kindAggregate && i+1 != len(b.defs)-1 {
			panic("pipeline: Aggregate must be the sink stage")
		}
	}
}

// ensureWindows allocates the charged pipe windows once.
func (b *Builder) ensureWindows() {
	for len(b.windows) < len(b.defs)-1 {
		b.windows = append(b.windows, b.a.AllocSpan(pipeSlots(b.pipeCap)*pipeSlotBytes))
	}
}

// buildSpec parameterizes one Pipeline assembly.
type buildSpec struct {
	sinkOut   ops.Collector // sink collector (Probe/BST sinks)
	sinkAgg   *ht.AggTable  // aggregate-sink override (planner scratch)
	tapCap    int           // rows each pipe retains for the planner
	rootLimit int           // root input prefix (planner sampling)
	rootSkip  int           // root rows to skip (planner trial measure-half)
	serving   *ServingSpec
}

// Build assembles a batch pipeline whose sink emits into out (nil for a plan
// ending in Aggregate, whose results live in its table). The returned
// Pipeline is single-use.
func (b *Builder) Build(out ops.Collector) *Pipeline {
	return b.build(buildSpec{sinkOut: out})
}

// BuildServing assembles a serving pipeline: the root admits requests from
// the arrival schedule through a bounded queue, and the sink records
// end-to-end admission→completion latency. The returned Pipeline is
// single-use.
func (b *Builder) BuildServing(sv ServingSpec) *Pipeline {
	return b.build(buildSpec{sinkOut: sv.Out, serving: &sv})
}

// build wires the declared stages into a runnable Pipeline.
func (b *Builder) build(spec buildSpec) *Pipeline {
	b.validate()
	b.ensureWindows()
	n := len(b.defs)
	if b.defs[n-1].kind != kindAggregate && spec.sinkOut == nil {
		panic("pipeline: plan needs a sink collector (Build(out) or ServingSpec.Out)")
	}

	p := &Pipeline{burst: b.burst}
	for _, pr := range b.preludes {
		t, in := pr.table, pr.in
		p.prelude = append(p.prelude, func(c *memsim.Core) {
			core.Run(c, &ops.BuildMachine{Table: t, In: in}, core.Options{SeedWidthFromMSHRs: true})
		})
	}

	p.pipes = make([]*pipe, n-1)
	for i := range p.pipes {
		p.pipes[i] = newPipe(b.a, b.windows[i], b.pipeCap)
		p.pipes[i].idx = i
		p.pipes[i].tapCap = spec.tapCap
		if spec.serving != nil {
			arr := spec.serving.Arrivals
			p.pipes[i].admitOf = func(rid int) uint64 { return arr[rid] }
		}
	}

	for i, d := range b.defs {
		st := &stageExec{label: d.label(i)}
		if i > 0 {
			st.in = p.pipes[i-1]
		}
		var col ops.Collector
		if i < n-1 {
			st.out = p.pipes[i]
			col = p.pipes[i]
		} else {
			col = spec.sinkOut
		}
		var onDone func(req exec.Request, done uint64)
		if i == n-1 && spec.serving != nil && spec.serving.Latency != nil {
			rec := spec.serving.Latency
			onDone = func(req exec.Request, done uint64) { rec.RecordLatency(done - req.Admit) }
		}

		switch d.kind {
		case kindScanProbe:
			m := &ops.ProbeMachine{Table: d.table, In: d.in, Out: col, EarlyExit: d.earlyExit, Limit: spec.rootLimit}
			p.rootRows = m.NumLookups()
			if sv := spec.serving; sv != nil {
				if n < 2 {
					// The queue source's own recorder covers the root
					// operator; a one-stage plan is just serve.Run.
					panic("pipeline: serving plans need at least two stages")
				}
				qs := serve.NewQueueSource[ops.ProbeState](m, sv.Arrivals, sv.QueueCap, sv.Policy, sv.Queue)
				if len(sv.Arrivals) < p.rootRows {
					p.rootRows = len(sv.Arrivals)
				}
				p.rootDepth = qs.Depth
				wireRootStage[ops.ProbeState](st, qs, m, spec.rootLimit)
			} else {
				rootM := exec.Machine[ops.ProbeState](m)
				if skip := spec.rootSkip; skip > 0 {
					// A planner trial over the sample's measure half: lookups
					// [skip, NumLookups) with their original row ids.
					n := m.NumLookups()
					if skip > n {
						skip = n
					}
					rootM = exec.Shard[ops.ProbeState]{M: m, Lo: skip, N: n - skip}
					p.rootRows = n - skip
				}
				wireRootStage[ops.ProbeState](st, exec.NewMachineSource[ops.ProbeState](rootM), m, spec.rootLimit)
			}
		case kindProbe:
			m := &ops.ProbeMachine{Table: d.table, Out: col, EarlyExit: d.earlyExit}
			sel := d.sel
			wirePipeStage[ops.ProbeState](p, st, i,
				func(c *memsim.Core, s *ops.ProbeState, r Row) exec.Outcome {
					return m.InitKey(c, s, r.RID, sel.of(r), r.ProbePayload)
				},
				m.Stage, m.ProvisionedStages(), onDone)
		case kindBST:
			m := &ops.BSTSearchMachine{Tree: d.tree, Out: col}
			sel := d.sel
			wirePipeStage[ops.BSTState](p, st, i,
				func(c *memsim.Core, s *ops.BSTState, r Row) exec.Outcome {
					return m.InitKey(c, s, r.RID, sel.of(r), r.ProbePayload)
				},
				m.Stage, m.ProvisionedStages(), onDone)
		case kindAggregate:
			agg := d.agg
			if spec.sinkAgg != nil {
				agg = spec.sinkAgg
			}
			m := &ops.GroupByMachine{Table: agg}
			sel := d.sel
			wirePipeStage[ops.GroupByState](p, st, i,
				func(c *memsim.Core, s *ops.GroupByState, r Row) exec.Outcome {
					return m.InitKey(c, s, r.RID, sel.of(r), r.ProbePayload)
				},
				m.Stage, m.ProvisionedStages(), onDone)
		}
		p.stages = append(p.stages, st)
	}
	return p
}

// Pipeline is one assembled, single-use plan execution: run it with a static
// per-stage assignment (Run) or one adaptive controller per stage
// (RunAdaptive).
type Pipeline struct {
	stages  []*stageExec
	pipes   []*pipe
	burst   int
	prelude []func(c *memsim.Core)

	// rootRows is the root stage's input size (lookups or scheduled
	// arrivals), for the report.
	rootRows int

	// rootDepth reports the admission-queue backlog of a serving root (nil
	// for batch), the root tuner's queue-pressure signal.
	rootDepth func() int

	// nested is the busy-cycle attribution stack of an adaptive run:
	// nested[k] accumulates the busy cycles of pumps launched from recursion
	// depth k, so each stage's tuner observes only its own engine's work.
	nested []uint64

	// tr receives stage engine events, pipe depth counters and backpressure
	// instants (SetTrace); nil methods no-op. Purely observational.
	tr *obs.CoreTrace

	used bool
}

// SetTrace attaches a per-core trace sink to the pipeline: every stage
// engine's slot lifecycle, each pipe's depth counter, and a backpressure
// instant whenever a pump lease ends on a full outbound pipe. Purely
// observational — simulated results are bit-identical with or without it.
// Call before Run/RunAdaptive.
func (p *Pipeline) SetTrace(tr *obs.CoreTrace) {
	p.tr = tr
	for _, st := range p.stages {
		st.tr = tr
	}
	for _, pp := range p.pipes {
		pp.tr = tr
	}
}

// StageReport is one stage's outcome.
type StageReport struct {
	Label string
	// Config is the engine assignment (for adaptive runs, the technique in
	// force when the run ended).
	Config StageConfig
	// RowsIn counts rows entering the stage; RowsOut rows it emitted
	// downstream (zero for the sink — its collector holds the results).
	RowsIn, RowsOut uint64
	// Sched aggregates the stage's AMAC scheduler stats, if any.
	Sched core.RunStats
}

// Result reports a pipeline run.
type Result struct {
	Stages []StageReport
}

// pump runs one bounded lease of stage idx's engine, filling its outbound
// pipe, and returns the cycle a waiting root asked to be resumed at (zero
// otherwise). The lease never idles — only the sink engine may idle — and
// its gate closes when the outbound pipe fills, which is how downstream
// admission backpressure propagates upstream.
func (p *Pipeline) pump(c *memsim.Core, idx int) (waitUntil uint64) {
	st := p.stages[idx]
	if st.done {
		if st.out != nil {
			st.out.done = true
		}
		return 0
	}
	var gate func() bool
	if st.out != nil {
		out := st.out
		gate = func() bool { return !out.full() }
	}
	var res leaseOutcome
	if st.tuner != nil {
		res = p.runTuned(c, st, gate)
	} else {
		res = st.run(c, st.cfg, p.burst, gate, true, nil)
	}
	st.sched.Add(res.sched)
	if res.exhausted {
		st.done = true
		if st.out != nil {
			st.out.done = true
		}
		return 0
	}
	if st.out != nil && st.out.full() {
		// The lease ended on a full outbound pipe: downstream backpressure
		// closed the gate.
		p.tr.Backpressure(c.Cycle(), idx)
	}
	return res.waitUntil
}

// runTuned runs one adaptive lease decided by the stage's tuner, attributing
// to it only the busy cycles its own engine consumed: the cycles of nested
// upstream pumps are measured through the attribution stack and subtracted,
// so each stage's controller compares techniques on its own service cost.
func (p *Pipeline) runTuned(c *memsim.Core, st *stageExec, gate func() bool) leaseOutcome {
	l := st.tuner.Next()
	var opts *core.Options
	if l.Tech == ops.AMAC {
		opts = &l.AMACOpts
	}
	before := busyCycles(c)
	p.nested = append(p.nested, 0)
	res := st.run(c, StageConfig{Tech: l.Tech, Window: l.Window}, l.Quota, gate, true, opts)
	nested := p.nested[len(p.nested)-1]
	p.nested = p.nested[:len(p.nested)-1]
	total := busyCycles(c) - before
	if len(p.nested) > 0 {
		p.nested[len(p.nested)-1] += total
	}
	st.tuner.Observe(l, res.completed, total-nested, res.sched, res.exhausted)
	return res
}

// busyCycles reads the core's non-idle cycle count.
func busyCycles(c *memsim.Core) uint64 {
	s := c.Stats()
	return s.Cycles - s.IdleCycles
}

// runPrelude runs the declared charged build phases.
func (p *Pipeline) runPrelude(c *memsim.Core) {
	for _, f := range p.prelude {
		f(c)
	}
	p.prelude = nil
}

// start guards single use.
func (p *Pipeline) start() {
	if p.used {
		panic("pipeline: Pipeline is single-use; build a fresh one per run")
	}
	p.used = true
}

// Run executes the plan with a static per-stage engine assignment: the sink
// stage's engine drives the whole plan to exhaustion, pulling through the
// stage chain. len(cfgs) must equal the stage count.
func (p *Pipeline) Run(c *memsim.Core, cfgs []StageConfig) Result {
	p.start()
	if len(cfgs) != len(p.stages) {
		panic("pipeline: one StageConfig per stage")
	}
	for i, st := range p.stages {
		st.cfg = cfgs[i]
	}
	p.runPrelude(c)
	sink := p.stages[len(p.stages)-1]
	res := sink.run(c, sink.cfg, 0, nil, false, nil)
	sink.sched.Add(res.sched)
	sink.done = true
	return p.result()
}

// RunAdaptive executes the plan with one adaptive controller per stage: each
// stage's leases are decided by its own probe/exploit tuner, fed by the
// stage's inbound backlog (its pipe depth; the admission queue for the
// root). len(ctls) must equal the stage count; controllers persist across
// pipelines, so a sweep can let tuning carry over.
func (p *Pipeline) RunAdaptive(c *memsim.Core, ctls []*adapt.Controller) Result {
	p.start()
	if len(ctls) != len(p.stages) {
		panic("pipeline: one Controller per stage")
	}
	for i, st := range p.stages {
		depth := p.rootDepth
		if st.in != nil {
			depth = st.in.depth
		}
		if p.tr != nil {
			ctls[i].SetTrace(p.tr)
		}
		st.tuner = adapt.NewStreamTuner(ctls[i], depth)
	}
	p.runPrelude(c)
	last := len(p.stages) - 1
	sink := p.stages[last]
	for !sink.done {
		waitUntil := p.pump(c, last)
		if waitUntil > c.Cycle() {
			// Nothing in flight anywhere and no row arrives before
			// waitUntil: the sink idles, as a static sink's engine would. A
			// stale (already due) wait needs no idling — the next pump's
			// root pull admits the arrival.
			c.AdvanceTo(waitUntil)
		}
	}
	for i, st := range p.stages {
		st.cfg = StageConfig{Tech: ctls[i].Technique()}
		if st.cfg.Tech == ops.AMAC {
			st.cfg.Window = ctls[i].Width()
		}
	}
	return p.result()
}

// result assembles the per-stage report.
func (p *Pipeline) result() Result {
	res := Result{Stages: make([]StageReport, len(p.stages))}
	for i, st := range p.stages {
		r := StageReport{Label: st.label, Config: st.cfg, Sched: st.sched}
		if i == 0 {
			r.RowsIn = uint64(p.rootRows)
		} else {
			r.RowsIn = p.pipes[i-1].popped
		}
		if i < len(p.pipes) {
			r.RowsOut = p.pipes[i].pushed
		}
		res.Stages[i] = r
	}
	return res
}

package pipeline

import (
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/serve"
)

// ServingSpec configures a serving pipeline's admission edge: requests enter
// the ROOT stage's bounded queue on the arrival schedule, flow through the
// whole plan, and are complete when the SINK finishes them — so the recorded
// latency covers every stage plus all queueing in between.
type ServingSpec struct {
	// Arrivals is the open-loop arrival schedule: request i (root lookup i)
	// arrives at cycle Arrivals[i]; non-decreasing.
	Arrivals []uint64
	// QueueCap bounds the root admission queue (zero = unbounded).
	QueueCap int
	// Policy says what a full queue does with new arrivals.
	Policy serve.Policy
	// Out is the sink collector (nil for a plan ending in Aggregate).
	Out ops.Collector
	// Latency, if non-nil, receives end-to-end admission→completion
	// latencies: one record per request the SINK stage finishes (match or
	// not), measured from the request's original arrival cycle. A request
	// whose row stream dies upstream (an early-exit probe with no match)
	// records nothing here — its response happened at that stage, visible
	// through Queue and the stage row counts.
	Latency *serve.Recorder
	// Queue, if non-nil, receives the root queue's bookkeeping: offered
	// counts, drops, depth samples, queue waits, and the ROOT operator's
	// own completion latencies (not end-to-end).
	Queue *serve.Recorder
}

// ServeParallel runs one pre-built serving pipeline per worker, each on a
// private core of the shared-LLC socket model, concurrently on real
// goroutines — the pipeline analogue of serve.Run. Each worker's pipeline
// must live entirely in its OWN arena, probed structures included: an Arena
// is unsafe for concurrent use even read-only (every access updates its
// last-touched-chunk cache), so the supported sharing model is a private
// copy per worker, exactly as ops.PartitionJoin does for the single-operator
// layer. That isolation is also what makes the merged result deterministic
// regardless of the goroutine schedule.
//
// prepare, if non-nil, warms each worker's core before measurement; body
// then drives that worker's pipeline (p.Run or p.RunAdaptive) with its own
// recorders. Per-worker latency/queue recorders live in each pipeline's
// ServingSpec; merge them after ServeParallel returns.
func ServeParallel(hw memsim.Config, pipes []*Pipeline,
	prepare func(w int, c *memsim.Core),
	body func(w int, c *memsim.Core, p *Pipeline),
) exec.ParallelStats {
	n := len(pipes)
	if n == 0 {
		return exec.ParallelStats{}
	}
	shared := hw.ShareLLC(n)
	pooled := make([]*memsim.PooledSystem, n)
	cores := make([]*memsim.Core, n)
	for w := 0; w < n; w++ {
		pooled[w] = memsim.AcquireSystem(shared)
		cores[w] = pooled[w].Core
		pooled[w].Sys.SetActiveThreads(n, cores[w])
		if prepare != nil {
			prepare(w, cores[w])
		}
		cores[w].ResetStats()
	}
	ps := exec.RunParallel(cores, func(w int, c *memsim.Core) {
		body(w, c, pipes[w])
	})
	for w := 0; w < n; w++ {
		pooled[w].Release()
	}
	return ps
}

package pipeline

import (
	"encoding/binary"

	"amac/internal/arena"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
)

// Row is one intermediate result streaming between two pipeline stages: the
// upstream operator's emitted row plus the cycle at which the originating
// request was admitted (serving pipelines carry it so the sink can account
// true admission→completion latency; batch pipelines leave it zero).
type Row struct {
	ops.JoinRow
	Admit uint64
}

// Pipe geometry. A pushed row is charged as a 16-byte store into a rotating
// arena-resident window and a popped row as the matching load: the traffic of
// a real bounded ring buffer without allocating one per possible stream
// length. The window is sized to the pipe's capacity (the next power of two,
// at least twice the capacity so a resident row is never overwritten before
// its load) — a bounded pipe's cache footprint is its capacity, so the
// streamed stores must not march through more address space than the real
// ring would occupy. Slot selection is a mask.
const (
	pipeSlotBytes = 16
	pipeMinSlots  = 1 << 4
	pipeMaxSlots  = 1 << 12
	// costPipePop covers unlinking the head row (mirrors the admission
	// queue's pop bookkeeping).
	costPipePop = 2
)

// pipeSlots returns the charged-window slot count for a pipe capacity.
func pipeSlots(capacity int) uint64 {
	s := uint64(pipeMinSlots)
	for int(s) < 2*capacity && s < pipeMaxSlots {
		s <<= 1
	}
	return s
}

// pipe is the bounded buffer between two adjacent stages. The upstream
// stage's operator machine emits into it (it implements ops.Collector), and
// the downstream stage's source pops from it. Capacity is the backpressure
// bound: a pump lease's gate closes when the pipe is full, so the upstream
// engine drains its in-flight lookups and hands control back downstream.
type pipe struct {
	a    *arena.Arena
	base arena.Addr

	// rows[head:] is the logical FIFO content.
	rows []Row
	head int

	// pushed and popped count rows ever through the pipe; masked by slots-1
	// they address the charged window.
	pushed, popped uint64
	slots          uint64

	// capacity is the backpressure bound on buffered rows.
	capacity int

	// done marks the upstream stage exhausted: once set, an empty pipe means
	// end-of-stream rather than "pump upstream".
	done bool

	// admitOf, if non-nil, maps an emitted row id to its original admission
	// cycle (a serving pipeline's arrival schedule). Row ids are preserved
	// through every stage, so the lookup works at any depth in the plan.
	admitOf func(rid int) uint64

	// tap retains the first tapCap pushed rows for the planner's sampling
	// pass; zero tapCap keeps nothing.
	tap    []ops.JoinRow
	tapCap int

	// tr receives a depth counter event on every push and pop (nil-safe
	// no-op); idx names the pipe on the trace track.
	tr  *obs.CoreTrace
	idx int
}

// newPipe creates a pipe whose charged window lives at base.
func newPipe(a *arena.Arena, base arena.Addr, capacity int) *pipe {
	if capacity < 1 {
		capacity = 1
	}
	if capacity > pipeMaxSlots/2 {
		capacity = pipeMaxSlots / 2
	}
	return &pipe{a: a, base: base, capacity: capacity, slots: pipeSlots(capacity)}
}

// depth returns the number of buffered rows.
func (p *pipe) depth() int { return len(p.rows) - p.head }

// full reports whether the pipe has reached its backpressure bound.
func (p *pipe) full() bool { return p.depth() >= p.capacity }

// Emit implements ops.Collector: the upstream operator materializes one
// result row into the pipe. The charge is identical to Output.Emit — the row
// is a real 16-byte record written to a real (simulated) buffer — so a stage
// boundary costs exactly one store here plus one load at the pop.
func (p *pipe) Emit(c *memsim.Core, rid int, key, buildPayload, probePayload uint64) {
	c.Instr(ops.CostMaterialize)
	slot := p.pushed & (p.slots - 1)
	addr := p.base + arena.Addr(slot*pipeSlotBytes)
	c.Store(addr, pipeSlotBytes)
	b := p.a.Bytes(addr, pipeSlotBytes)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], buildPayload)
	p.pushed++

	r := Row{JoinRow: ops.JoinRow{RID: rid, Key: key, BuildPayload: buildPayload, ProbePayload: probePayload}}
	if p.admitOf != nil {
		r.Admit = p.admitOf(rid)
	}
	if len(p.tap) < p.tapCap {
		p.tap = append(p.tap, r.JoinRow)
	}
	p.rows = append(p.rows, r)
	p.tr.PipeDepth(c.Cycle(), p.idx, p.depth())
}

// pop removes and returns the head row, charging its load.
func (p *pipe) pop(c *memsim.Core) Row {
	c.Instr(costPipePop)
	slot := p.popped & (p.slots - 1)
	c.Load(p.base+arena.Addr(slot*pipeSlotBytes), pipeSlotBytes)
	p.popped++

	r := p.rows[p.head]
	p.head++
	if p.head == len(p.rows) {
		p.rows = p.rows[:0]
		p.head = 0
	}
	p.tr.PipeDepth(c.Cycle(), p.idx, p.depth())
	return r
}

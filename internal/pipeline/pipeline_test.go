package pipeline

import (
	"testing"

	"amac/internal/adapt"
	"amac/internal/arena"
	"amac/internal/bst"
	"amac/internal/exec"
	"amac/internal/ht"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
	"amac/internal/serve"
)

func newCore() *memsim.Core {
	return memsim.MustSystem(memsim.XeonX5670()).NewCore()
}

// keyedRel builds a relation with explicit per-tuple payloads.
func keyedRel(name string, n int, key func(i int) uint64, pay func(i int) uint64) *relation.Relation {
	tup := make([]relation.Tuple, n)
	for i := range tup {
		tup[i] = relation.Tuple{Key: key(i), Payload: pay(i)}
	}
	return &relation.Relation{Name: name, Tuples: tup}
}

// chainWorkload is the 3-way foreign-key join chain test plan: probe keys
// look up T1, T1 payloads are keys into T2, T2 payloads keys into T3.
type chainWorkload struct {
	a          *arena.Arena
	t1, t2, t3 *ht.Table
	probe      *ops.Input
}

const chainN = 1 << 10

func newChainWorkload() *chainWorkload {
	a := arena.New()
	w := &chainWorkload{
		a:  a,
		t1: ht.New(a, chainN/ops.TuplesPerBucket),
		t2: ht.New(a, chainN/ops.TuplesPerBucket),
		t3: ht.New(a, chainN/ops.TuplesPerBucket),
	}
	for k := uint64(1); k <= chainN; k++ {
		w.t1.InsertRaw(k, (k*7)%chainN+1)
		w.t2.InsertRaw(k, (k*11)%chainN+1)
		w.t3.InsertRaw(k, k*1000)
	}
	// Half the probe keys miss T1 (keys above the build domain).
	probe := keyedRel("S", chainN,
		func(i int) uint64 { return uint64(i*2654435761)%(2*chainN) + 1 },
		func(i int) uint64 { return uint64(i) + 5 })
	w.probe = ops.NewInput(a, probe)
	return w
}

func (w *chainWorkload) builder() *Builder {
	b := NewBuilder(w.a)
	b.ScanProbe(w.t1, w.probe, true)
	b.Probe(w.t2, SelBuildPayload, true)
	b.Probe(w.t3, SelBuildPayload, true)
	return b
}

// seqChain executes the chain plan stage by stage with full materialization
// between operators (the non-pipelined execution every pipelined run must
// reproduce bit-for-bit, logically).
func (w *chainWorkload) seqChain(t *testing.T) (count, checksum uint64) {
	t.Helper()
	c := newCore()
	ref := arena.New()
	out1 := ops.NewOutput(ref, true)
	ops.RunMachine(c, &ops.ProbeMachine{Table: w.t1, In: w.probe, Out: out1, EarlyExit: true}, ops.Baseline, ops.Params{})

	out2 := ops.NewOutput(ref, true)
	m2 := &ops.ProbeMachine{Table: w.t2, Out: out2, EarlyExit: true}
	ops.RunMachine(c, &rowsMachine[ops.ProbeState]{
		rows: out1.Rows,
		initRow: func(c *memsim.Core, s *ops.ProbeState, r Row) exec.Outcome {
			return m2.InitKey(c, s, r.RID, r.BuildPayload, r.ProbePayload)
		},
		stage: m2.Stage, provision: 2,
	}, ops.Baseline, ops.Params{})

	out3 := ops.NewOutput(ref, false)
	m3 := &ops.ProbeMachine{Table: w.t3, Out: out3, EarlyExit: true}
	ops.RunMachine(c, &rowsMachine[ops.ProbeState]{
		rows: out2.Rows,
		initRow: func(c *memsim.Core, s *ops.ProbeState, r Row) exec.Outcome {
			return m3.InitKey(c, s, r.RID, r.BuildPayload, r.ProbePayload)
		},
		stage: m3.Stage, provision: 2,
	}, ops.Baseline, ops.Params{})
	return out3.Count, out3.Checksum
}

// TestPipelineChainMatchesSequential is the tentpole's correctness
// contract: the streamed 3-way join chain produces exactly the output of
// sequential materialized stage-at-a-time execution, under every per-stage
// technique assignment (all 64 combinations).
func TestPipelineChainMatchesSequential(t *testing.T) {
	w := newChainWorkload()
	wantCount, wantSum := w.seqChain(t)
	if wantCount == 0 {
		t.Fatal("degenerate chain: no results")
	}

	b := w.builder()
	out := ops.NewOutput(w.a, false)
	for _, t1 := range ops.Techniques {
		for _, t2 := range ops.Techniques {
			for _, t3 := range ops.Techniques {
				out.Reset()
				p := b.Build(out)
				res := p.Run(newCore(), []StageConfig{{Tech: t1}, {Tech: t2}, {Tech: t3}})
				if out.Count != wantCount || out.Checksum != wantSum {
					t.Fatalf("%v/%v/%v: count=%d sum=%x, want %d/%x",
						t1, t2, t3, out.Count, out.Checksum, wantCount, wantSum)
				}
				if res.Stages[0].RowsIn != chainN {
					t.Fatalf("root rows %d, want %d", res.Stages[0].RowsIn, chainN)
				}
				if res.Stages[1].RowsIn != res.Stages[0].RowsOut || res.Stages[2].RowsIn != res.Stages[1].RowsOut {
					t.Fatalf("pipe accounting inconsistent: %+v", res.Stages)
				}
			}
		}
	}
}

// bstWorkload is the probe→tree-filter test plan: a small dimension probe
// whose matches are filtered through a BST semi-join.
type bstWorkload struct {
	a     *arena.Arena
	dim   *ht.Table
	tree  *bst.Tree
	probe *ops.Input
}

const bstDimN, bstTreeN, bstProbeN = 1 << 8, 1 << 11, 1 << 11

// bstTables populates a dimension table and BST in arena a. Content is
// identical for every caller, which is what lets the parallel serving test
// hand each worker a private copy (arenas are not shareable, even read-only).
func bstTables(a *arena.Arena) (*ht.Table, *bst.Tree) {
	dim := ht.New(a, bstDimN/ops.TuplesPerBucket)
	tree := bst.New(a)
	for k := uint64(1); k <= bstDimN; k++ {
		// Dimension payloads land in the tree's key domain about half the
		// time, so the filter actually filters.
		dim.InsertRaw(k, (k*7919)%(2*bstTreeN)+1)
	}
	// Shuffled insert order for a balanced-ish random BST.
	for i := 0; i < bstTreeN; i++ {
		k := uint64(i*2654435761)%(2*bstTreeN) + 1
		tree.Insert(k, k+13)
	}
	return dim, tree
}

func newBSTWorkload() *bstWorkload {
	a := arena.New()
	w := &bstWorkload{a: a}
	w.dim, w.tree = bstTables(a)
	probe := keyedRel("S", bstProbeN,
		func(i int) uint64 { return uint64(i)%bstDimN + 1 },
		func(i int) uint64 { return uint64(i) })
	w.probe = ops.NewInput(a, probe)
	return w
}

func (w *bstWorkload) builder() *Builder {
	b := NewBuilder(w.a)
	b.ScanProbe(w.dim, w.probe, true)
	b.BSTFilter(w.tree, SelBuildPayload)
	return b
}

func (w *bstWorkload) seq(t *testing.T) (count, checksum uint64) {
	t.Helper()
	c := newCore()
	ref := arena.New()
	out1 := ops.NewOutput(ref, true)
	ops.RunMachine(c, &ops.ProbeMachine{Table: w.dim, In: w.probe, Out: out1, EarlyExit: true}, ops.Baseline, ops.Params{})

	out2 := ops.NewOutput(ref, false)
	m2 := &ops.BSTSearchMachine{Tree: w.tree, Out: out2}
	ops.RunMachine(c, &rowsMachine[ops.BSTState]{
		rows: out1.Rows,
		initRow: func(c *memsim.Core, s *ops.BSTState, r Row) exec.Outcome {
			return m2.InitKey(c, s, r.RID, r.BuildPayload, r.ProbePayload)
		},
		stage: m2.Stage, provision: m2.ProvisionedStages(),
	}, ops.Baseline, ops.Params{})
	return out2.Count, out2.Checksum
}

// TestPipelineBSTFilterMatchesSequential: second plan shape, all 16
// technique combinations.
func TestPipelineBSTFilterMatchesSequential(t *testing.T) {
	w := newBSTWorkload()
	wantCount, wantSum := w.seq(t)
	if wantCount == 0 {
		t.Fatal("degenerate filter: no results")
	}
	b := w.builder()
	out := ops.NewOutput(w.a, false)
	for _, t1 := range ops.Techniques {
		for _, t2 := range ops.Techniques {
			out.Reset()
			p := b.Build(out)
			p.Run(newCore(), []StageConfig{{Tech: t1}, {Tech: t2}})
			if out.Count != wantCount || out.Checksum != wantSum {
				t.Fatalf("%v/%v: count=%d sum=%x, want %d/%x", t1, t2, out.Count, out.Checksum, wantCount, wantSum)
			}
		}
	}
}

// aggWorkload is the build→probe→aggregate test plan, with the build phase
// running as a charged pipeline prelude.
type aggWorkload struct {
	a     *arena.Arena
	table *ht.Table
	agg   *ht.AggTable
	build *ops.Input
	probe *ops.Input
}

func newAggWorkload() *aggWorkload {
	const buildN, groups = 1 << 10, 64
	a := arena.New()
	w := &aggWorkload{a: a, table: ht.New(a, buildN/ops.TuplesPerBucket), agg: ht.NewAgg(a, groups)}
	// Build payload IS the group id: the aggregation downstream groups by it.
	brel := keyedRel("R", buildN,
		func(i int) uint64 { return uint64(i) + 1 },
		func(i int) uint64 { return uint64(i % groups) })
	prel := keyedRel("S", 1<<11,
		func(i int) uint64 { return uint64(i*31)%(2*buildN) + 1 },
		func(i int) uint64 { return uint64(i) * 3 })
	w.build = ops.NewInput(a, brel)
	w.probe = ops.NewInput(a, prel)
	return w
}

func (w *aggWorkload) builder() *Builder {
	b := NewBuilder(w.a)
	b.PreludeBuild(w.table, w.build)
	b.ScanProbe(w.table, w.probe, true)
	b.Aggregate(w.agg, SelBuildPayload)
	return b
}

// seqAgg executes build, probe and aggregation as separate materialized
// phases into fresh twins and returns the reference groups.
func seqAgg(t *testing.T) []ht.Aggregates {
	t.Helper()
	w := newAggWorkload()
	c := newCore()
	ops.RunMachine(c, &ops.BuildMachine{Table: w.table, In: w.build}, ops.Baseline, ops.Params{})
	ref := arena.New()
	out := ops.NewOutput(ref, true)
	ops.RunMachine(c, &ops.ProbeMachine{Table: w.table, In: w.probe, Out: out, EarlyExit: true}, ops.Baseline, ops.Params{})
	m := &ops.GroupByMachine{Table: w.agg}
	ops.RunMachine(c, &rowsMachine[ops.GroupByState]{
		rows: out.Rows,
		initRow: func(c *memsim.Core, s *ops.GroupByState, r Row) exec.Outcome {
			return m.InitKey(c, s, r.RID, r.BuildPayload, r.ProbePayload)
		},
		stage: m.Stage, provision: 3,
	}, ops.Baseline, ops.Params{})
	return w.agg.Groups()
}

func groupsEqual(a, b []ht.Aggregates) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[uint64]ht.Aggregates, len(a))
	for _, g := range a {
		am[g.Key] = g
	}
	for _, g := range b {
		if am[g.Key] != g {
			return false
		}
	}
	return true
}

// TestPipelineAggregateMatchesSequential: the build→probe→aggregate plan
// (charged build prelude included) folds exactly the reference groups, for
// all 16 probe/aggregate technique combinations. Each combination gets a
// fresh materialization because both the build and the aggregation mutate.
func TestPipelineAggregateMatchesSequential(t *testing.T) {
	want := seqAgg(t)
	if len(want) == 0 {
		t.Fatal("degenerate aggregation: no groups")
	}
	for _, t1 := range ops.Techniques {
		for _, t2 := range ops.Techniques {
			w := newAggWorkload()
			p := w.builder().Build(nil)
			p.Run(newCore(), []StageConfig{{Tech: t1}, {Tech: t2}})
			if got := w.agg.Groups(); !groupsEqual(got, want) {
				t.Fatalf("%v/%v: groups differ (%d vs %d)", t1, t2, len(got), len(want))
			}
		}
	}
}

// TestPipelineStaticRunsAreDeterministic: identical rebuilds give identical
// cycle counts, the foundation of the sweep layer's bit-identical contract.
func TestPipelineStaticRunsAreDeterministic(t *testing.T) {
	w := newChainWorkload()
	b := w.builder()
	out := ops.NewOutput(w.a, false)
	cfgs := []StageConfig{{Tech: ops.AMAC, Window: 8}, {Tech: ops.GP, Window: 6}, {Tech: ops.Baseline}}
	run := func() (uint64, uint64) {
		out.Reset()
		c := newCore()
		b.Build(out).Run(c, cfgs)
		return c.Cycle(), out.Checksum
	}
	cy1, sum1 := run()
	cy2, sum2 := run()
	if cy1 != cy2 || sum1 != sum2 {
		t.Fatalf("reruns differ: %d/%x vs %d/%x", cy1, sum1, cy2, sum2)
	}
}

// TestPipelineBackpressureTinyPipes: a pipe bound far below the row volume
// must still stream everything (the gate closes, the upstream engine drains,
// the sink pulls through) with unchanged output.
func TestPipelineBackpressureTinyPipes(t *testing.T) {
	w := newChainWorkload()
	wantCount, wantSum := w.seqChain(t)
	b := w.builder().Burst(4).PipeCap(5)
	out := ops.NewOutput(w.a, false)
	p := b.Build(out)
	p.Run(newCore(), []StageConfig{{Tech: ops.AMAC}, {Tech: ops.AMAC}, {Tech: ops.AMAC}})
	if out.Count != wantCount || out.Checksum != wantSum {
		t.Fatalf("count=%d sum=%x, want %d/%x", out.Count, out.Checksum, wantCount, wantSum)
	}
	for i, pp := range p.pipes {
		if pp.depth() != 0 {
			t.Fatalf("pipe %d still holds %d rows", i, pp.depth())
		}
		if pp.pushed != pp.popped {
			t.Fatalf("pipe %d pushed %d popped %d", i, pp.pushed, pp.popped)
		}
	}
}

// TestPipelineAdaptiveMatchesStatic: per-stage adaptive execution serves
// every row exactly once — identical logical output — and is deterministic.
func TestPipelineAdaptiveMatchesStatic(t *testing.T) {
	w := newChainWorkload()
	wantCount, wantSum := w.seqChain(t)
	b := w.builder()
	out := ops.NewOutput(w.a, false)
	acfg := adapt.Config{RetuneRequests: 64, ProbeRequests: 16}
	run := func() (uint64, uint64, uint64) {
		out.Reset()
		c := newCore()
		ctls := make([]*adapt.Controller, 3)
		for i := range ctls {
			ctls[i] = adapt.NewControllerFor(c, acfg)
		}
		b.Build(out).RunAdaptive(c, ctls)
		return out.Count, out.Checksum, c.Cycle()
	}
	count, sum, cy := run()
	if count != wantCount || sum != wantSum {
		t.Fatalf("adaptive: count=%d sum=%x, want %d/%x", count, sum, wantCount, wantSum)
	}
	count2, sum2, cy2 := run()
	if count2 != count || sum2 != sum || cy2 != cy {
		t.Fatal("adaptive pipeline runs must be deterministic")
	}
}

// TestPipelineSingleUse: a Pipeline refuses to run twice.
func TestPipelineSingleUse(t *testing.T) {
	w := newBSTWorkload()
	out := ops.NewOutput(w.a, false)
	p := w.builder().Build(out)
	cfgs := []StageConfig{{Tech: ops.Baseline}, {Tech: ops.Baseline}}
	p.Run(newCore(), cfgs)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run must panic")
		}
	}()
	p.Run(newCore(), cfgs)
}

// TestPlannerProducesValidDeterministicChoice: the mini-planner assigns one
// config per stage, picks only real techniques, caches its choice, and is
// deterministic across builders over identical workloads.
func TestPlannerProducesValidDeterministicChoice(t *testing.T) {
	hw := memsim.XeonX5670()
	plan := func() PlanChoice {
		w := newBSTWorkload()
		return w.builder().Plan(hw, 256, adapt.Config{})
	}
	pc := plan()
	if len(pc.Configs) != 2 {
		t.Fatalf("%d configs for 2 stages", len(pc.Configs))
	}
	for _, cfg := range pc.Configs {
		valid := false
		for _, tech := range ops.Techniques {
			if cfg.Tech == tech {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("invalid technique %v", cfg.Tech)
		}
	}
	if pc.PlanCycles == 0 {
		t.Fatal("planning cost must be accounted")
	}
	pc2 := plan()
	for i := range pc.Configs {
		if pc.Configs[i] != pc2.Configs[i] {
			t.Fatalf("planner not deterministic: %v vs %v", pc, pc2)
		}
	}

	// The cached choice comes back without re-planning.
	w := newBSTWorkload()
	b := w.builder()
	first := b.Plan(hw, 256, adapt.Config{})
	again := b.Plan(hw, 999, adapt.Config{})
	if first.SampleRows != again.SampleRows || first.PlanCycles != again.PlanCycles {
		t.Fatal("second Plan call must return the cached choice")
	}

	// A planned pipeline still produces the reference output.
	wantCount, wantSum := w.seq(t)
	out := ops.NewOutput(w.a, false)
	b.Build(out).Run(newCore(), first.Configs)
	if out.Count != wantCount || out.Checksum != wantSum {
		t.Fatalf("planned run: count=%d sum=%x, want %d/%x", out.Count, out.Checksum, wantCount, wantSum)
	}
}

// TestPipelineServingEndToEndLatency: a served pipeline completes every
// surviving row at the sink, records end-to-end (arrival→sink) latencies,
// and produces the batch run's output.
func TestPipelineServingEndToEndLatency(t *testing.T) {
	w := newBSTWorkload()
	wantCount, wantSum := w.seq(t)

	arrivals := serve.Poisson{MeanPeriod: 400}.Schedule(w.probe.Len(), 11)
	var lat, queue serve.Recorder
	out := ops.NewOutput(w.a, false)
	p := w.builder().BuildServing(ServingSpec{
		Arrivals: arrivals,
		QueueCap: 64,
		Policy:   serve.Block,
		Out:      out,
		Latency:  &lat,
		Queue:    &queue,
	})
	res := p.Run(newCore(), []StageConfig{{Tech: ops.AMAC}, {Tech: ops.AMAC}})

	if out.Count != wantCount || out.Checksum != wantSum {
		t.Fatalf("served output: count=%d sum=%x, want %d/%x", out.Count, out.Checksum, wantCount, wantSum)
	}
	// One latency record per request the sink finished: every row the root
	// stage emitted downstream.
	if lat.Completed != res.Stages[0].RowsOut || lat.Completed == 0 {
		t.Fatalf("latency recorder saw %d completions, want one per sink-served row (%d)", lat.Completed, res.Stages[0].RowsOut)
	}
	if queue.Offered != uint64(len(arrivals)) {
		t.Fatalf("queue offered %d of %d", queue.Offered, len(arrivals))
	}
	if lat.P99() < lat.Quantile(0.5) {
		t.Fatal("p99 below p50")
	}
	// End-to-end latency covers strictly more than the root operator alone.
	if lat.MeanLatency() <= queue.MeanLatency() {
		t.Fatalf("end-to-end mean %.0f not above root-stage mean %.0f", lat.MeanLatency(), queue.MeanLatency())
	}
}

// TestPipelineServeParallelDeterministic: multi-worker pipelined serving is
// deterministic across goroutine schedules; run under -race this doubles as
// the pipelined-serving race check. Each worker owns a fully PRIVATE arena —
// its own copy of the dimension table and tree plus its probe partition —
// because an Arena is unsafe to share even read-only (every access updates
// its chunk cache); this mirrors ops.PartitionJoin's private-arena-per-worker
// model.
func TestPipelineServeParallelDeterministic(t *testing.T) {
	const workers = 2
	const half = bstProbeN / workers
	hw := memsim.XeonX5670()

	run := func() ([workers]uint64, [workers]uint64, uint64) {
		var counts, sums [workers]uint64
		var p99 uint64
		pipes := make([]*Pipeline, workers)
		outs := make([]*ops.Output, workers)
		lats := make([]*serve.Recorder, workers)
		for i := 0; i < workers; i++ {
			// Everything this worker touches — tables, input partition, pipe
			// windows, sink — lives in its own arena, rebuilt identically per
			// run so both runs see the same addresses.
			a := arena.New()
			dim, tree := bstTables(a)
			part := ops.NewInput(a, keyedRel("S", half,
				func(j int) uint64 { return uint64(i*half+j)%bstDimN + 1 },
				func(j int) uint64 { return uint64(i*half + j) }))
			b := NewBuilder(a)
			b.ScanProbe(dim, part, true)
			b.BSTFilter(tree, SelBuildPayload)
			outs[i] = ops.NewOutput(a, false)
			outs[i].Sequential = true
			lats[i] = &serve.Recorder{}
			pipes[i] = b.BuildServing(ServingSpec{
				Arrivals: serve.Deterministic{Period: 300}.Schedule(half, 0),
				Out:      outs[i],
				Latency:  lats[i],
			})
		}
		ServeParallel(hw, pipes, nil, func(wk int, c *memsim.Core, p *Pipeline) {
			p.Run(c, []StageConfig{{Tech: ops.AMAC}, {Tech: ops.AMAC}})
		})
		var merged serve.Recorder
		for i := 0; i < workers; i++ {
			counts[i] = outs[i].Count
			sums[i] = outs[i].Checksum
			merged.Merge(lats[i])
		}
		p99 = merged.P99()
		return counts, sums, p99
	}

	c1, s1, p1 := run()
	c2, s2, p2 := run()
	if c1 != c2 || s1 != s2 || p1 != p2 {
		t.Fatalf("parallel serving not deterministic: %v/%v vs %v/%v (p99 %d vs %d)", c1, s1, c2, s2, p1, p2)
	}
	for i := 0; i < workers; i++ {
		if c1[i] == 0 {
			t.Fatalf("worker %d produced nothing", i)
		}
	}
}

package pipeline

import (
	"fmt"

	"amac/internal/adapt"
	"amac/internal/ht"
	"amac/internal/memsim"
	"amac/internal/ops"
)

// PlanChoice is the mini-planner's output: one engine assignment per stage,
// plus what the planning itself cost (simulated cycles on scratch cores, not
// charged to any measured run).
type PlanChoice struct {
	Configs []StageConfig
	// SampleRows is the root-row sample size the choice was derived from.
	SampleRows int
	// PlanCycles is the simulated cost of planning: the sampling pass plus
	// every stage's probe epochs.
	PlanCycles uint64
}

// String renders the per-stage assignment.
func (pc PlanChoice) String() string {
	s := ""
	for i, cfg := range pc.Configs {
		if i > 0 {
			s += "→"
		}
		s += cfg.String()
	}
	return fmt.Sprintf("%s (sample=%d, plan=%dcy)", s, pc.SampleRows, pc.PlanCycles)
}

// defaultSampleRows is the planner's root sample size when the caller passes
// zero: enough rows for a warm-up lease plus one probe segment per candidate
// technique at every stage, small enough that planning costs a fraction of
// any real plan execution.
const defaultSampleRows = 512

// Plan runs the cost-seeded mini-planner and returns a per-stage engine
// assignment. It is cost-seeded in the adaptive subsystem's sense: the
// planner streams the first sampleRows root rows through a throwaway copy of
// the plan (all-Baseline, on a scratch core, sink swapped for scratch
// structures), tapping the rows each inter-stage pipe carries; it then
// replays every stage's tapped sample through adapt's probe machinery — the
// same busy-cycles-per-completion comparison the online controller uses,
// with the AMAC starting width seeded from the scratch core's measured MSHR
// budget — and reads off each stage's winning technique and window. The sink
// stage's engine is then chosen by composed trial runs of the sampled plan
// (see below), because the sink drives the plan and overlaps its in-flight
// lookups with upstream pump leases — an effect isolated replay cannot see.
//
// The planner requires every probed structure to be populated (prebuild
// tables before planning; declared PreludeBuild phases are NOT run) and must
// be called after all arena allocations for the workload are done: it
// allocates scratch sink structures in the builder's arena on first use. The
// choice is computed once and cached, so every rebuilt Pipeline of a sweep
// shares one deterministic assignment.
func (b *Builder) Plan(hw memsim.Config, sampleRows int, cfg adapt.Config) PlanChoice {
	if b.choice != nil {
		return *b.choice
	}
	b.validate()
	if sampleRows <= 0 {
		sampleRows = defaultSampleRows
	}

	// Scratch sink structures: the sampling pass must not pollute the real
	// sink (an aggregate table has no reset), so the throwaway plan folds
	// into twins allocated once in the builder's arena.
	if b.scratchOut == nil {
		b.scratchOut = ops.NewOutput(b.a, false)
		if last := b.defs[len(b.defs)-1]; last.kind == kindAggregate {
			b.scratchAgg = ht.NewAgg(b.a, int(last.agg.NumBuckets()))
		}
	}

	sp := b.build(buildSpec{
		sinkOut:   b.scratchOut,
		sinkAgg:   b.scratchAgg,
		tapCap:    sampleRows,
		rootLimit: sampleRows,
	})
	// Declared build preludes do NOT run in the sampling pass — they mutate
	// the real table, and the planner's contract is that probed structures
	// are already populated.
	sp.prelude = nil

	choice := PlanChoice{SampleRows: sampleRows, Configs: make([]StageConfig, len(sp.stages))}

	// Sampling pass: all-Baseline, so the tap captures the plan's true row
	// stream with no scheduling artifacts.
	pooled := memsim.AcquireSystem(hw)
	base := make([]StageConfig, len(sp.stages))
	for i := range base {
		base[i] = StageConfig{Tech: ops.Baseline}
	}
	sp.Run(pooled.Core, base)
	choice.PlanCycles += pooled.Core.Cycle()
	pooled.Release()

	// Probe-epoch geometry sized to the measured half of the sample (each
	// stage sampler spends the first half warming small structures to their
	// steady-state residency): one probe per candidate fits with rows left
	// over to exploit (which refines the AMAC width / group size before it
	// is read off).
	acfg := cfg
	if acfg.ProbeLookups <= 0 {
		acfg.ProbeLookups = max(32, sampleRows/16)
	}
	if acfg.SegmentLookups <= 0 {
		acfg.SegmentLookups = max(64, sampleRows/8)
	}
	// Sampling is off the measured path, so the group-size hill climb can
	// run: a GP/SPP winner is assigned the group size its exploit segments
	// settled on, not just the seeded window.
	acfg.TuneGroupWindow = true

	last := len(sp.stages) - 1
	var sinkCtl *adapt.Controller
	for i, st := range sp.stages {
		var rows []ops.JoinRow
		if i > 0 {
			rows = sp.pipes[i-1].tap
		}
		if i > 0 && len(rows) == 0 {
			// The sample starved this stage (everything filtered upstream):
			// fall back to the paper's robust default.
			choice.Configs[i] = StageConfig{Tech: ops.AMAC}
			continue
		}
		// A fresh scratch core per stage: each stage's probe epochs start
		// from the same cold state, so the assignment does not depend on
		// which stage happened to be sampled first.
		pooled := memsim.AcquireSystem(hw)
		ctl := adapt.NewControllerFor(pooled.Core, acfg)
		st.sample(pooled.Core, ctl, rows)
		choice.PlanCycles += pooled.Core.Cycle()
		pooled.Release()

		tech := ctl.Technique()
		sc := StageConfig{Tech: tech}
		switch tech {
		case ops.AMAC:
			sc.Window = ctl.Width()
		case ops.GP, ops.SPP:
			sc.Window = ctl.GroupWindow(tech)
		}
		choice.Configs[i] = sc
		if i == last {
			sinkCtl = ctl
		}
	}

	// The sink's assignment is special: the sink engine drives the whole
	// plan, and an engine with lookups in flight keeps them progressing
	// while a pump lease runs the upstream stages — a cross-stage overlap an
	// isolated replay of the sink's rows cannot price. So the sink is
	// chosen in composition: trial-run the sampled plan end to end under
	// each candidate sink engine (upstream stages pinned to the choices
	// above, windows seeded from the isolated controller's tuning) and keep
	// the cheapest.
	if last >= 1 && sinkCtl != nil {
		cands := []StageConfig{
			{Tech: ops.Baseline},
			{Tech: ops.GP, Window: sinkCtl.GroupWindow(ops.GP)},
			{Tech: ops.SPP, Window: sinkCtl.GroupWindow(ops.SPP)},
			{Tech: ops.AMAC, Window: sinkCtl.Width()},
		}
		if w := sinkCtl.Width(); w != ops.DefaultWindow {
			// The width refined on the short sample can overfit; trial the
			// engine default too and let the measurement arbitrate.
			cands = append(cands, StageConfig{Tech: ops.AMAC, Window: ops.DefaultWindow})
		}
		var best uint64
		half := sampleRows / 2
		for ci, cand := range cands {
			cfgs := append(append([]StageConfig(nil), choice.Configs[:last]...), cand)
			// Warm half, measure half — the stage samplers' discipline, in
			// composition: a cold core makes every structure look
			// DRAM-resident, biasing the trial toward prefetching sinks even
			// when the real run keeps the probed structure cache-hot. The warm
			// pass streams the sample's first half; the measured pass streams
			// the second half, whose keys land in buckets the warm pass never
			// touched when the structure is genuinely large.
			pooled := memsim.AcquireSystem(hw)
			if half > 0 {
				warm := b.build(buildSpec{sinkOut: b.scratchOut, sinkAgg: b.scratchAgg, rootLimit: half})
				warm.prelude = nil
				warm.Run(pooled.Core, cfgs)
			}
			warmed := pooled.Core.Cycle()
			tp := b.build(buildSpec{sinkOut: b.scratchOut, sinkAgg: b.scratchAgg, rootLimit: sampleRows, rootSkip: half})
			tp.prelude = nil
			tp.Run(pooled.Core, cfgs)
			cycles := pooled.Core.Cycle() - warmed
			pooled.Release()
			choice.PlanCycles += warmed + cycles
			if ci == 0 || cycles < best {
				best = cycles
				choice.Configs[last] = cand
			}
		}
	}

	b.choice = &choice
	return choice
}

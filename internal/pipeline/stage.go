package pipeline

import (
	"amac/internal/adapt"
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
)

// pipeSource adapts an inter-stage pipe to exec.Source, which is what makes
// a downstream operator's engine composable over an upstream one: when the
// pipe runs dry, Pull recursively pumps the upstream stage — a bounded,
// backpressured lease of its engine — and resumes handing out rows the pump
// buffered. The recursion bottoms out at the root stage, whose source is a
// materialized batch (exec.MachineSource) or an admission queue
// (serve.QueueSource).
type pipeSource[S any] struct {
	p   *Pipeline
	idx int // this stage's index; Pull pumps stage idx-1
	in  *pipe

	// initRow is the operator's stage 0 over a streamed-in row (the machine's
	// InitKey), stage its ordinary stage dispatch.
	initRow   func(c *memsim.Core, s *S, r Row) exec.Outcome
	stage     func(c *memsim.Core, s *S, stage int) exec.Outcome
	provision int

	// onDone, if non-nil, observes completions (the sink stage of a serving
	// pipeline records end-to-end latency here).
	onDone func(req exec.Request, done uint64)
}

// ProvisionedStages implements exec.Source.
func (ps *pipeSource[S]) ProvisionedStages() int { return ps.provision }

// Pull implements exec.Source: pop a buffered row, or pump the upstream
// stage until one appears, the stream ends, or the upstream root reports
// that nothing arrives before a future cycle.
func (ps *pipeSource[S]) Pull(c *memsim.Core, s *S, now uint64) exec.PullResult {
	for {
		if ps.in.depth() > 0 {
			r := ps.in.pop(c)
			out := ps.initRow(c, s, r)
			return exec.PullResult{Status: exec.Pulled, Out: out, Req: exec.Request{Index: r.RID, Admit: r.Admit}}
		}
		if ps.in.done {
			return exec.PullResult{Status: exec.Exhausted}
		}
		waitUntil := ps.p.pump(c, ps.idx-1)
		if ps.in.depth() > 0 {
			continue
		}
		if waitUntil > 0 {
			// The chain bottomed out at a root with pending future arrivals:
			// propagate the wait downstream so only the sink engine idles.
			return exec.PullResult{Status: exec.Wait, NextArrival: waitUntil}
		}
		// The lease ran (consuming upstream input) but every row filtered
		// out before reaching this pipe; loop and pump again. Progress is
		// guaranteed: each iteration either advances the upstream stream or
		// observes it done/waiting.
	}
}

// Stage implements exec.Source.
func (ps *pipeSource[S]) Stage(c *memsim.Core, s *S, stage int) exec.Outcome {
	return ps.stage(c, s, stage)
}

// Complete implements exec.Source.
func (ps *pipeSource[S]) Complete(req exec.Request, done uint64) {
	if ps.onDone != nil {
		ps.onDone(req, done)
	}
}

// leaseOutcome reports one engine lease (or full run) of a stage.
type leaseOutcome struct {
	completed int
	exhausted bool
	waitUntil uint64
	sched     core.RunStats
}

// stageRunner executes the stage's engine: bounded to quota admissions under
// the gate when quota > 0 (a pump lease), to exhaustion otherwise (the sink
// of a static run). opts, when non-nil, carries an adaptive AMAC lease's
// engine options (persistent width controller attached).
type stageRunner func(c *memsim.Core, cfg StageConfig, quota int, gate func() bool, noWait bool, opts *core.Options) leaseOutcome

// stageSampler runs the planner's adaptive probe over a sample of the
// stage's input rows on a scratch core (rows is ignored by root stages,
// which sample their own materialized input).
type stageSampler func(c *memsim.Core, ctl *adapt.Controller, rows []ops.JoinRow)

// stageExec is the type-erased runtime of one stage. Go methods cannot be
// generic, so the Builder's concrete per-operator methods wire each stage
// through the generic helpers below into these closures.
type stageExec struct {
	label   string
	in, out *pipe // nil for the root / sink respectively
	cfg     StageConfig
	run     stageRunner
	sample  stageSampler

	// tuner is set (one per stage) in adaptive runs.
	tuner *adapt.StreamTuner

	// tr is the pipeline's trace sink (SetTrace); nil methods no-op.
	tr *obs.CoreTrace

	done  bool
	sched core.RunStats
}

// makeRunner builds the engine-dispatch closure over a stage's source. The
// stage's trace sink is read at lease time, so SetTrace works after Build.
func makeRunner[S any](st *stageExec, src exec.Source[S]) stageRunner {
	return func(c *memsim.Core, cfg StageConfig, quota int, gate func() bool, noWait bool, opts *core.Options) leaseOutcome {
		drive := src
		var lease *exec.LeaseSource[S]
		if quota > 0 {
			lease = &exec.LeaseSource[S]{Src: src, Quota: quota, Gate: gate, NoWait: noWait}
			drive = lease
		}
		amacOpts := core.Options{Width: cfg.Window}
		if opts != nil {
			amacOpts = *opts
		}
		if amacOpts.Trace == nil {
			amacOpts.Trace = st.tr
		}
		window := cfg.Window
		if window <= 0 {
			window = ops.DefaultWindow
		}
		// Each lease runs under the stage's label frame, so per-stage cycles
		// (and the technique frames the engines push beneath) separate in a
		// profile of the shared core.
		p := c.Profiler()
		p.Push(p.Frame(st.label))
		var sched core.RunStats
		switch cfg.Tech {
		case ops.Baseline:
			exec.BaselineStreamTraced(c, drive, st.tr)
		case ops.GP:
			exec.GroupPrefetchStreamTraced(c, drive, window, st.tr)
		case ops.SPP:
			exec.SoftwarePipelineStreamTraced(c, drive, window, st.tr)
		case ops.AMAC:
			sched = core.RunStream(c, drive, amacOpts)
		default:
			panic("pipeline: unknown technique")
		}
		p.Pop()
		if lease == nil {
			return leaseOutcome{exhausted: true, sched: sched}
		}
		return leaseOutcome{
			completed: lease.Completed,
			exhausted: lease.Exhausted,
			waitUntil: lease.WaitUntil,
			sched:     sched,
		}
	}
}

// wirePipeStage connects a non-root stage: its source pops rows from the
// inbound pipe and feeds them to the operator's InitKey.
func wirePipeStage[S any](p *Pipeline, st *stageExec, idx int,
	initRow func(c *memsim.Core, s *S, r Row) exec.Outcome,
	stage func(c *memsim.Core, s *S, stage int) exec.Outcome,
	provision int,
	onDone func(req exec.Request, done uint64),
) {
	src := &pipeSource[S]{
		p: p, idx: idx, in: st.in,
		initRow: initRow, stage: stage, provision: provision,
		onDone: onDone,
	}
	st.run = makeRunner[S](st, src)
	st.sample = func(c *memsim.Core, ctl *adapt.Controller, rows []ops.JoinRow) {
		if len(rows) == 0 {
			return
		}
		// Warm half, measure half: the first half replays under the baseline
		// engine so a small structure reaches its steady-state residency
		// before the controller measures — the long run the choice is for is
		// overwhelmingly warm. A large structure stays honest: its
		// second-half keys land in buckets the warm pass never touched.
		if warm := len(rows) / 2; warm > 0 {
			wm := &rowsMachine[S]{rows: rows[:warm], initRow: initRow, stage: stage, provision: provision}
			ops.RunMachine(c, wm, ops.Baseline, ops.Params{})
			rows = rows[warm:]
		}
		m := &rowsMachine[S]{rows: rows, initRow: initRow, stage: stage, provision: provision}
		adapt.Run[S](c, m, ctl)
	}
}

// wireRootStage connects the root stage over an arbitrary source (a
// materialized batch or an admission queue). sampleM, when non-nil, is a
// planner twin of the root machine (emitting into scratch) sampled over its
// first sampleN lookups.
func wireRootStage[S any](st *stageExec, src exec.Source[S], sampleM exec.Machine[S], sampleN int) {
	st.run = makeRunner[S](st, src)
	st.sample = func(c *memsim.Core, ctl *adapt.Controller, _ []ops.JoinRow) {
		if sampleM == nil {
			return
		}
		n := sampleM.NumLookups()
		if sampleN < n {
			n = sampleN
		}
		if n == 0 {
			return
		}
		// Warm half, measure half — same rationale as the pipe-stage sampler.
		warm := n / 2
		if warm > 0 {
			ops.RunMachine(c, exec.Shard[S]{M: sampleM, Lo: 0, N: warm}, ops.Baseline, ops.Params{})
		}
		adapt.Run[S](c, exec.Shard[S]{M: sampleM, Lo: warm, N: n - warm}, ctl)
	}
}

// rowsMachine replays a captured sample of inter-stage rows as a fixed batch
// machine, which is what lets the planner measure a mid-plan stage's cost in
// isolation: the rows its real input pipe would carry, without running the
// upstream stages again.
type rowsMachine[S any] struct {
	rows      []ops.JoinRow
	initRow   func(c *memsim.Core, s *S, r Row) exec.Outcome
	stage     func(c *memsim.Core, s *S, stage int) exec.Outcome
	provision int
}

// NumLookups implements exec.Machine.
func (m *rowsMachine[S]) NumLookups() int { return len(m.rows) }

// ProvisionedStages implements exec.Machine.
func (m *rowsMachine[S]) ProvisionedStages() int { return m.provision }

// Init implements exec.Machine.
func (m *rowsMachine[S]) Init(c *memsim.Core, s *S, i int) exec.Outcome {
	return m.initRow(c, s, Row{JoinRow: m.rows[i]})
}

// Stage implements exec.Machine.
func (m *rowsMachine[S]) Stage(c *memsim.Core, s *S, stage int) exec.Outcome {
	return m.stage(c, s, stage)
}

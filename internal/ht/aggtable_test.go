package ht

import (
	"testing"
	"testing/quick"

	"amac/internal/arena"
	"amac/internal/relation"
)

func TestAggSingleGroup(t *testing.T) {
	a := arena.New()
	tab := NewAgg(a, 4)
	for _, v := range []uint64{5, 1, 9} {
		tab.UpsertRaw(42, v)
	}
	g, ok := tab.LookupGroupRaw(42)
	if !ok {
		t.Fatal("group not found")
	}
	if g.Count != 3 || g.Sum != 15 || g.Min != 1 || g.Max != 9 || g.SumSq != 25+1+81 {
		t.Fatalf("aggregates %+v", g)
	}
	if g.Avg() != 5 {
		t.Fatalf("avg = %v", g.Avg())
	}
	if _, ok := tab.LookupGroupRaw(43); ok {
		t.Fatal("absent group reported present")
	}
}

func TestAggCollisionsChain(t *testing.T) {
	a := arena.New()
	tab := NewAgg(a, 2)
	// Keys 1, 3, 5 all hash to bucket 0 with 2 buckets.
	tab.UpsertRaw(1, 10)
	tab.UpsertRaw(3, 30)
	tab.UpsertRaw(5, 50)
	if tab.OverflowNodes() == 0 {
		t.Fatal("collisions should have allocated overflow nodes")
	}
	for _, k := range []uint64{1, 3, 5} {
		g, ok := tab.LookupGroupRaw(k)
		if !ok || g.Sum != k*10 {
			t.Fatalf("group %d: %+v ok=%v", k, g, ok)
		}
	}
	if len(tab.Groups()) != 3 {
		t.Fatalf("Groups returned %d entries", len(tab.Groups()))
	}
}

func TestAggMatchesMapReference(t *testing.T) {
	f := func(seed uint64) bool {
		rel, err := relation.BuildGroupBy(relation.GroupBySpec{Size: 600, Repeats: 3, Zipf: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		a := arena.New()
		tab := NewAgg(a, 64)
		type agg struct {
			count, sum, min, max uint64
		}
		ref := make(map[uint64]*agg)
		for _, tup := range rel.Tuples {
			tab.UpsertRaw(tup.Key, tup.Payload)
			r := ref[tup.Key]
			if r == nil {
				r = &agg{min: tup.Payload, max: tup.Payload}
				ref[tup.Key] = r
			} else {
				if tup.Payload < r.min {
					r.min = tup.Payload
				}
				if tup.Payload > r.max {
					r.max = tup.Payload
				}
			}
			r.count++
			r.sum += tup.Payload
		}
		for k, r := range ref {
			g, ok := tab.LookupGroupRaw(k)
			if !ok || g.Count != r.count || g.Sum != r.sum || g.Min != r.min || g.Max != r.max {
				return false
			}
		}
		return len(tab.Groups()) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAggLatch(t *testing.T) {
	a := arena.New()
	tab := NewAgg(a, 2)
	n := tab.BucketAddr(1)
	if !tab.TryLatch(n) || tab.TryLatch(n) || !tab.LatchHeld(n) {
		t.Fatal("latch protocol broken")
	}
	tab.Unlatch(n)
	if tab.LatchHeld(n) {
		t.Fatal("latch should be free after Unlatch")
	}
}

func TestAggAccessors(t *testing.T) {
	a := arena.New()
	tab := NewAgg(a, 0)
	if tab.NumBuckets() != 1 {
		t.Fatalf("NumBuckets = %d", tab.NumBuckets())
	}
	n := tab.BucketAddr(0)
	if tab.NodeUsed(n) {
		t.Fatal("fresh node should be unused")
	}
	tab.InitGroup(n, 7, 3)
	if !tab.NodeUsed(n) || tab.NodeKey(n) != 7 {
		t.Fatal("InitGroup did not set fields")
	}
	tab.UpdateGroup(n, 5)
	g := tab.Group(n)
	if g.Count != 2 || g.Sum != 8 || g.Min != 3 || g.Max != 5 {
		t.Fatalf("aggregates %+v", g)
	}
	next := tab.AllocNode()
	tab.SetNodeNext(n, next)
	if tab.NodeNext(n) != next {
		t.Fatal("next pointer broken")
	}
	if tab.SizeBytes() == 0 || tab.BaseAddr() == 0 {
		t.Fatal("size/base accessors broken")
	}
	var zero Aggregates
	if zero.Avg() != 0 {
		t.Fatal("Avg of empty group should be 0")
	}
}

package ht

import (
	"testing"
	"testing/quick"

	"amac/internal/arena"
	"amac/internal/relation"
)

func TestBucketAddressesAreLineAlignedAndContiguous(t *testing.T) {
	a := arena.New()
	tab := New(a, 128)
	base := tab.BucketAddr(0)
	if base%NodeBytes != 0 {
		t.Fatalf("bucket 0 not cache-line aligned: %d", base)
	}
	for b := uint64(1); b < tab.NumBuckets(); b++ {
		if tab.BucketAddr(b) != base+arena.Addr(b*NodeBytes) {
			t.Fatalf("bucket %d not contiguous", b)
		}
	}
}

func TestLargeTableSpansChunksContiguously(t *testing.T) {
	a := arena.New()
	// 3 MB of buckets: larger than one arena chunk.
	tab := New(a, 3*(1<<20)/NodeBytes)
	last := tab.NumBuckets() - 1
	if tab.BucketAddr(last) != tab.BucketAddr(0)+arena.Addr(last*NodeBytes) {
		t.Fatal("bucket array must stay contiguous across arena chunks")
	}
	// The last bucket must be addressable.
	if tab.NodeCount(tab.BucketAddr(last)) != 0 {
		t.Fatal("fresh bucket should be empty")
	}
}

func TestInsertAndLookupSingleBucket(t *testing.T) {
	a := arena.New()
	tab := New(a, 4)
	tab.InsertRaw(1, 100)
	tab.InsertRaw(5, 500) // 5-1 % 4 == 0: same bucket as key 1
	tab.InsertRaw(9, 900) // same bucket again: forces an overflow node

	if got := tab.LookupAllRaw(1); len(got) != 1 || got[0] != 100 {
		t.Fatalf("lookup(1) = %v", got)
	}
	if got := tab.LookupAllRaw(9); len(got) != 1 || got[0] != 900 {
		t.Fatalf("lookup(9) = %v", got)
	}
	if tab.OverflowNodes() != 1 {
		t.Fatalf("overflow nodes = %d, want 1", tab.OverflowNodes())
	}
	if tab.ChainLength(1) != 2 {
		t.Fatalf("chain length = %d, want 2", tab.ChainLength(1))
	}
	if got := tab.LookupAllRaw(3); len(got) != 0 {
		t.Fatalf("lookup of absent key returned %v", got)
	}
}

func TestDuplicateKeysAllReturned(t *testing.T) {
	a := arena.New()
	tab := New(a, 8)
	for i := uint64(0); i < 5; i++ {
		tab.InsertRaw(7, 70+i)
	}
	got := tab.LookupAllRaw(7)
	if len(got) != 5 {
		t.Fatalf("lookup(7) returned %d payloads, want 5", len(got))
	}
}

func TestUniformDenseKeysGiveExactChains(t *testing.T) {
	// The Figure 3 "uniform" construction: |R| dense unique keys into
	// |R|/4 buckets gives exactly 4 tuples (2 nodes) per bucket.
	a := arena.New()
	const n = 1 << 10
	tab := New(a, n/4)
	for k := uint64(1); k <= n; k++ {
		tab.InsertRaw(k, k)
	}
	for k := uint64(1); k <= n; k++ {
		if got := tab.ChainLength(k); got != 2 {
			t.Fatalf("key %d chain length = %d, want 2", k, got)
		}
	}
	s := tab.ComputeStats()
	if s.Tuples != n || s.MaxChain != 2 {
		t.Fatalf("stats %v", s)
	}
	if s.String() == "" {
		t.Fatal("Stats.String should render")
	}
}

func TestSkewedKeysProduceLongChains(t *testing.T) {
	a := arena.New()
	build, _, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1, ZipfBuild: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tab := New(a, build.Len()/4)
	for _, tup := range build.Tuples {
		tab.InsertRaw(tup.Key, tup.Payload)
	}
	if tab.ComputeStats().MaxChain <= 4 {
		t.Fatalf("Zipf(1.0) build should produce chains much longer than uniform, max = %d", tab.ComputeStats().MaxChain)
	}
}

func TestTableMatchesMapReference(t *testing.T) {
	f := func(seed uint64) bool {
		build, probe, err := relation.BuildJoin(relation.JoinSpec{
			BuildSize: 512, ProbeSize: 256, ZipfBuild: 0.75, ZipfProbe: 0.5, Seed: seed,
		})
		if err != nil {
			return false
		}
		a := arena.New()
		tab := New(a, build.Len()/4)
		ref := make(map[uint64][]uint64)
		for _, tup := range build.Tuples {
			tab.InsertRaw(tup.Key, tup.Payload)
			ref[tup.Key] = append(ref[tup.Key], tup.Payload)
		}
		for _, tup := range probe.Tuples {
			got := tab.LookupAllRaw(tup.Key)
			want := ref[tup.Key]
			if len(got) != len(want) {
				return false
			}
			sum := uint64(0)
			for _, p := range got {
				sum += p
			}
			wsum := uint64(0)
			for _, p := range want {
				wsum += p
			}
			if sum != wsum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLatch(t *testing.T) {
	a := arena.New()
	tab := New(a, 2)
	n := tab.BucketAddr(0)
	if !tab.TryLatch(n) {
		t.Fatal("latch should be free initially")
	}
	if tab.TryLatch(n) {
		t.Fatal("latch should not be acquirable twice")
	}
	if !tab.LatchHeld(n) {
		t.Fatal("LatchHeld should report true")
	}
	tab.Unlatch(n)
	if !tab.TryLatch(n) {
		t.Fatal("latch should be acquirable after release")
	}
}

func TestAppendTupleRespectsCapacity(t *testing.T) {
	a := arena.New()
	tab := New(a, 1)
	n := tab.BucketAddr(0)
	if !tab.AppendTuple(n, 1, 10) || !tab.AppendTuple(n, 2, 20) {
		t.Fatal("two tuples must fit in a node")
	}
	if tab.AppendTuple(n, 3, 30) {
		t.Fatal("third tuple must not fit")
	}
	if tab.NodeCount(n) != 2 || tab.NodeKey(n, 1) != 2 || tab.NodePayload(n, 1) != 20 {
		t.Fatal("node contents wrong")
	}
}

func TestMinimumBucketCount(t *testing.T) {
	a := arena.New()
	tab := New(a, 0)
	if tab.NumBuckets() != 1 {
		t.Fatalf("NumBuckets = %d, want 1", tab.NumBuckets())
	}
	tab.InsertRaw(1, 1)
	tab.InsertRaw(2, 2)
	tab.InsertRaw(3, 3)
	if got := tab.LookupAllRaw(3); len(got) != 1 || got[0] != 3 {
		t.Fatalf("lookup(3) = %v", got)
	}
	if tab.SizeBytes() == 0 || tab.BaseAddr() == 0 {
		t.Fatal("size/base accessors broken")
	}
}

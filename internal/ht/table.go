// Package ht implements the chained hash tables used by the paper's hash
// join and group-by workloads.
//
// The join table follows the highly optimized no-partitioning layout of
// Balkesen et al. that the paper adopts (Section 4): every bucket is one
// 64-byte cache line holding a 1-byte latch, a 1-byte tuple count, two
// 16-byte tuples, and an 8-byte pointer to an overflow node used on
// collisions. The first node of every chain is clustered with the bucket
// header, so a lookup that finds its key in the bucket costs a single memory
// access.
//
// The group-by table (see AggTable) extends the same design with aggregation
// fields, as described in Section 5.2 of the paper.
//
// The tables store their nodes in an arena so that every node visit
// corresponds to one simulated memory access; none of the methods here charge
// simulator time — the operator stage machines do that explicitly.
package ht

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"amac/internal/arena"
	"amac/internal/memsim"
)

// Layout of a join-table node (one 64-byte cache line):
//
//	offset  0: latch   (1 byte)
//	offset  1: count   (1 byte; number of tuples in this node, 0..2)
//	offset  8: key[0]  (8 bytes)
//	offset 16: pay[0]  (8 bytes)
//	offset 24: key[1]  (8 bytes)
//	offset 32: pay[1]  (8 bytes)
//	offset 40: next    (8 bytes; arena address of the overflow node, 0 = none)
const (
	offLatch = 0
	offCount = 1
	offKey0  = 8
	offPay0  = 16
	offKey1  = 24
	offPay1  = 32
	offNext  = 40

	// NodeBytes is the size of one hash-table node.
	NodeBytes = memsim.LineSize
	// TuplesPerNode is the number of tuples clustered in one node.
	TuplesPerNode = 2
)

// Table is a chained hash table for hash-join build and probe.
type Table struct {
	a        *arena.Arena
	buckets  arena.Addr
	nbuckets uint64
	hashM    uint64 // Lemire fast-mod magic for nbuckets (0 = use %)

	overflowNodes uint64
}

// New allocates a table with nbuckets bucket headers (rounded up to one).
// Buckets are laid out contiguously, one cache line each.
func New(a *arena.Arena, nbuckets int) *Table {
	if nbuckets < 1 {
		nbuckets = 1
	}
	t := &Table{a: a, nbuckets: uint64(nbuckets)}
	if t.nbuckets > 1 && t.nbuckets < 1<<32 {
		t.hashM = ^uint64(0)/t.nbuckets + 1
	}
	t.buckets = a.AllocSpan(uint64(nbuckets) * NodeBytes)
	return t
}

// NumBuckets returns the number of bucket headers.
func (t *Table) NumBuckets() uint64 { return t.nbuckets }

// OverflowNodes returns how many overflow nodes have been allocated.
func (t *Table) OverflowNodes() uint64 { return t.overflowNodes }

// BaseAddr returns the address of bucket 0 (used for cache warming).
func (t *Table) BaseAddr() arena.Addr { return t.buckets }

// SizeBytes returns the footprint of the bucket array plus overflow nodes.
func (t *Table) SizeBytes() uint64 { return (t.nbuckets + t.overflowNodes) * NodeBytes }

// Hash maps a key to a bucket index. Keys in this repository are dense
// integers starting at 1 (see package relation), so, like the radix-style
// hashing of the original implementation, a modulo spread gives a perfectly
// even distribution for unique keys; skew in the key values translates
// directly into skewed bucket occupancy, which is the effect the paper
// studies. The modulo itself runs once per lookup, so 32-bit-safe keys take
// the Lemire fast-mod double multiply instead of the hardware divide.
func (t *Table) Hash(key uint64) uint64 {
	k := key - 1
	if t.hashM != 0 && k < 1<<32 {
		mod, _ := bits.Mul64(t.hashM*k, t.nbuckets)
		return mod
	}
	return k % t.nbuckets
}

// BucketAddr returns the address of the bucket header for a hash value.
func (t *Table) BucketAddr(hash uint64) arena.Addr {
	return t.buckets + arena.Addr(hash*NodeBytes)
}

// AllocNode allocates a fresh overflow node and returns its address.
func (t *Table) AllocNode() arena.Addr {
	t.overflowNodes++
	return t.a.Alloc(NodeBytes, memsim.LineSize)
}

// --- Node field accessors (raw; no simulator time is charged) ---

// NodeRef is a zero-copy view of one node's 64 bytes, aliasing the arena.
// The stage machines fetch it once per node visit and decode every field
// from it, instead of paying a bounds-checked arena access per field. Writes
// through a NodeRef are visible to the arena immediately; the view never
// goes stale because arena chunks do not move.
type NodeRef []byte

// Node returns the view of the node at n.
func (t *Table) Node(n arena.Addr) NodeRef { return NodeRef(t.a.Bytes(n, NodeBytes)) }

// Count returns the number of tuples stored in the node (0..2).
func (n NodeRef) Count() int { return int(n[offCount]) }

// Key returns the key in the given slot.
func (n NodeRef) Key(slot int) uint64 {
	return binary.LittleEndian.Uint64(n[offKey0+slot*16:])
}

// Payload returns the payload in the given slot.
func (n NodeRef) Payload(slot int) uint64 {
	return binary.LittleEndian.Uint64(n[offPay0+slot*16:])
}

// Next returns the overflow pointer (0 means end of chain).
func (n NodeRef) Next() arena.Addr {
	return arena.Addr(binary.LittleEndian.Uint64(n[offNext:]))
}

// setNext updates the overflow pointer through the view.
func (n NodeRef) setNext(next arena.Addr) {
	binary.LittleEndian.PutUint64(n[offNext:], uint64(next))
}

// appendTuple inserts a tuple through the view if there is room.
func (n NodeRef) appendTuple(key, payload uint64) bool {
	c := int(n[offCount])
	if c >= TuplesPerNode {
		return false
	}
	binary.LittleEndian.PutUint64(n[offKey0+c*16:], key)
	binary.LittleEndian.PutUint64(n[offPay0+c*16:], payload)
	n[offCount] = uint8(c + 1)
	return true
}

// NodeCount returns the number of tuples stored in the node.
func (t *Table) NodeCount(n arena.Addr) int { return int(t.a.ReadU8(n + offCount)) }

// setNodeCount updates the tuple count.
func (t *Table) setNodeCount(n arena.Addr, c int) { t.a.WriteU8(n+offCount, uint8(c)) }

// NodeKey returns the key in the given slot (0 or 1).
func (t *Table) NodeKey(n arena.Addr, slot int) uint64 {
	return t.a.ReadU64(n + offKey0 + arena.Addr(slot*16))
}

// NodePayload returns the payload in the given slot (0 or 1).
func (t *Table) NodePayload(n arena.Addr, slot int) uint64 {
	return t.a.ReadU64(n + offPay0 + arena.Addr(slot*16))
}

// NodeNext returns the overflow pointer (0 means end of chain).
func (t *Table) NodeNext(n arena.Addr) arena.Addr { return t.a.ReadAddr(n + offNext) }

// SetNodeNext updates the overflow pointer.
func (t *Table) SetNodeNext(n, next arena.Addr) { t.a.WriteAddr(n+offNext, next) }

// SetNodeTuple writes a tuple into the given slot.
func (t *Table) SetNodeTuple(n arena.Addr, slot int, key, payload uint64) {
	t.a.WriteU64(n+offKey0+arena.Addr(slot*16), key)
	t.a.WriteU64(n+offPay0+arena.Addr(slot*16), payload)
}

// TryLatch attempts to acquire the node's latch and reports success. The
// simulation is single-threaded, so this is a plain read-modify-write; the
// AMAC, GP and SPP engines still exercise the latch-busy paths because a
// lookup can encounter a latch held by another in-flight lookup of the same
// thread (hash join build, group-by).
func (t *Table) TryLatch(n arena.Addr) bool {
	if t.a.ReadU8(n+offLatch) != 0 {
		return false
	}
	t.a.WriteU8(n+offLatch, 1)
	return true
}

// Unlatch releases the node's latch.
func (t *Table) Unlatch(n arena.Addr) { t.a.WriteU8(n+offLatch, 0) }

// LatchHeld reports whether the latch is currently held.
func (t *Table) LatchHeld(n arena.Addr) bool { return t.a.ReadU8(n+offLatch) != 0 }

// AppendTuple inserts a tuple into node n if it has a free slot and reports
// whether it did.
func (t *Table) AppendTuple(n arena.Addr, key, payload uint64) bool {
	c := t.NodeCount(n)
	if c >= TuplesPerNode {
		return false
	}
	t.SetNodeTuple(n, c, key, payload)
	t.setNodeCount(n, c+1)
	return true
}

// InsertRaw adds a tuple to the table without charging any simulator time.
// It is used to populate tables for probe-only experiments and by tests.
//
// Insertion follows the reference implementation's constant-time scheme: try
// the bucket header, then the first overflow node; if both are full, a fresh
// node is spliced in right behind the header. Inserts therefore cost at most
// two node visits regardless of chain length, which is why the paper's build
// phase is insensitive to key skew (Section 5.1).
func (t *Table) InsertRaw(key, payload uint64) {
	header := t.Node(t.BucketAddr(t.Hash(key)))
	if header.appendTuple(key, payload) {
		return
	}
	next := header.Next()
	if next != 0 && t.Node(next).appendTuple(key, payload) {
		return
	}
	node := t.AllocNode()
	nv := t.Node(node)
	nv.setNext(next)
	header.setNext(node)
	nv.appendTuple(key, payload)
}

// LookupAllRaw returns the payloads of every tuple whose key matches,
// walking the chain without charging simulator time. It is the reference
// used to validate the engine-driven probes.
func (t *Table) LookupAllRaw(key uint64) []uint64 {
	var out []uint64
	n := t.BucketAddr(t.Hash(key))
	for n != 0 {
		node := t.Node(n)
		cnt := node.Count()
		for s := 0; s < cnt; s++ {
			if node.Key(s) == key {
				out = append(out, node.Payload(s))
			}
		}
		n = node.Next()
	}
	return out
}

// ChainLength returns the number of nodes in the chain of the bucket that
// key hashes to (used by tests and by the Figure 3 workload construction).
func (t *Table) ChainLength(key uint64) int {
	n := t.BucketAddr(t.Hash(key))
	length := 0
	for n != 0 {
		length++
		n = t.NodeNext(n)
	}
	return length
}

// Stats summarises occupancy for reporting and tests.
type Stats struct {
	Buckets       uint64
	OverflowNodes uint64
	Tuples        uint64
	MaxChain      int
}

// ComputeStats walks the whole table.
func (t *Table) ComputeStats() Stats {
	s := Stats{Buckets: t.nbuckets, OverflowNodes: t.overflowNodes}
	for b := uint64(0); b < t.nbuckets; b++ {
		n := t.BucketAddr(b)
		chain := 0
		for n != 0 {
			chain++
			s.Tuples += uint64(t.NodeCount(n))
			n = t.NodeNext(n)
		}
		if chain > s.MaxChain {
			s.MaxChain = chain
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("buckets=%d overflow=%d tuples=%d maxChain=%d", s.Buckets, s.OverflowNodes, s.Tuples, s.MaxChain)
}

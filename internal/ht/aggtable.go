package ht

import (
	"encoding/binary"
	"math/bits"

	"amac/internal/arena"
	"amac/internal/memsim"
)

// AggTable is the group-by hash table: the join table's chained design
// extended with aggregation fields, as in Section 5.2 of the paper. Each
// node holds one group (one distinct key) and maintains the running state
// needed for the six aggregate functions the paper applies on every match
// (count, sum, sum of squares, min, max, and average, which is derived).
//
// Node layout (one 64-byte cache line):
//
//	offset  0: latch (1 byte)
//	offset  1: used  (1 byte; 0 = empty node)
//	offset  8: key
//	offset 16: count
//	offset 24: sum
//	offset 32: sum of squares
//	offset 40: min
//	offset 48: max
//	offset 56: next
type AggTable struct {
	a        *arena.Arena
	buckets  arena.Addr
	nbuckets uint64
	hashM    uint64 // Lemire fast-mod magic for nbuckets (0 = use %)

	overflowNodes uint64
}

const (
	aggOffLatch = 0
	aggOffUsed  = 1
	aggOffKey   = 8
	aggOffCount = 16
	aggOffSum   = 24
	aggOffSumSq = 32
	aggOffMin   = 40
	aggOffMax   = 48
	aggOffNext  = 56
)

// Aggregates is the materialized result of one group.
type Aggregates struct {
	Key   uint64
	Count uint64
	Sum   uint64
	SumSq uint64
	Min   uint64
	Max   uint64
}

// Avg returns the mean payload of the group (0 for an empty group).
func (g Aggregates) Avg() float64 {
	if g.Count == 0 {
		return 0
	}
	return float64(g.Sum) / float64(g.Count)
}

// NewAgg allocates a group-by table with nbuckets bucket headers.
func NewAgg(a *arena.Arena, nbuckets int) *AggTable {
	if nbuckets < 1 {
		nbuckets = 1
	}
	t := &AggTable{a: a, nbuckets: uint64(nbuckets)}
	if t.nbuckets > 1 && t.nbuckets < 1<<32 {
		t.hashM = ^uint64(0)/t.nbuckets + 1
	}
	t.buckets = a.AllocSpan(uint64(nbuckets) * NodeBytes)
	return t
}

// NumBuckets returns the number of bucket headers.
func (t *AggTable) NumBuckets() uint64 { return t.nbuckets }

// OverflowNodes returns how many overflow nodes have been allocated.
func (t *AggTable) OverflowNodes() uint64 { return t.overflowNodes }

// BaseAddr returns the address of bucket 0.
func (t *AggTable) BaseAddr() arena.Addr { return t.buckets }

// SizeBytes returns the footprint of the bucket array plus overflow nodes.
func (t *AggTable) SizeBytes() uint64 { return (t.nbuckets + t.overflowNodes) * NodeBytes }

// Hash maps a key to a bucket index (same scheme as the join table,
// including the fast-mod fast path).
func (t *AggTable) Hash(key uint64) uint64 {
	k := key - 1
	if t.hashM != 0 && k < 1<<32 {
		mod, _ := bits.Mul64(t.hashM*k, t.nbuckets)
		return mod
	}
	return k % t.nbuckets
}

// BucketAddr returns the address of the bucket header for a hash value.
func (t *AggTable) BucketAddr(hash uint64) arena.Addr {
	return t.buckets + arena.Addr(hash*NodeBytes)
}

// AllocNode allocates a fresh overflow node.
func (t *AggTable) AllocNode() arena.Addr {
	t.overflowNodes++
	return t.a.Alloc(NodeBytes, memsim.LineSize)
}

// AggNodeRef is a zero-copy view of one group node's 64 bytes, aliasing the
// arena (see ht.NodeRef). The group-by stage machine decodes a node visit
// and applies the aggregate update through it with a single bounds check.
type AggNodeRef []byte

// Node returns the view of the node at n.
func (t *AggTable) Node(n arena.Addr) AggNodeRef { return AggNodeRef(t.a.Bytes(n, NodeBytes)) }

// Used reports whether the node holds a group.
func (n AggNodeRef) Used() bool { return n[aggOffUsed] != 0 }

// Key returns the group key stored in the node.
func (n AggNodeRef) Key() uint64 { return binary.LittleEndian.Uint64(n[aggOffKey:]) }

// Next returns the overflow pointer (0 = end of chain).
func (n AggNodeRef) Next() arena.Addr {
	return arena.Addr(binary.LittleEndian.Uint64(n[aggOffNext:]))
}

// Update folds payload into the node's aggregates through the view.
func (n AggNodeRef) Update(payload uint64) {
	binary.LittleEndian.PutUint64(n[aggOffCount:], binary.LittleEndian.Uint64(n[aggOffCount:])+1)
	binary.LittleEndian.PutUint64(n[aggOffSum:], binary.LittleEndian.Uint64(n[aggOffSum:])+payload)
	binary.LittleEndian.PutUint64(n[aggOffSumSq:], binary.LittleEndian.Uint64(n[aggOffSumSq:])+payload*payload)
	if payload < binary.LittleEndian.Uint64(n[aggOffMin:]) {
		binary.LittleEndian.PutUint64(n[aggOffMin:], payload)
	}
	if payload > binary.LittleEndian.Uint64(n[aggOffMax:]) {
		binary.LittleEndian.PutUint64(n[aggOffMax:], payload)
	}
}

// NodeUsed reports whether the node holds a group.
func (t *AggTable) NodeUsed(n arena.Addr) bool { return t.a.ReadU8(n+aggOffUsed) != 0 }

// NodeKey returns the group key stored in the node.
func (t *AggTable) NodeKey(n arena.Addr) uint64 { return t.a.ReadU64(n + aggOffKey) }

// NodeNext returns the overflow pointer (0 = end of chain).
func (t *AggTable) NodeNext(n arena.Addr) arena.Addr { return t.a.ReadAddr(n + aggOffNext) }

// SetNodeNext updates the overflow pointer.
func (t *AggTable) SetNodeNext(n, next arena.Addr) { t.a.WriteAddr(n+aggOffNext, next) }

// TryLatch attempts to acquire the node latch and reports success.
func (t *AggTable) TryLatch(n arena.Addr) bool {
	if t.a.ReadU8(n+aggOffLatch) != 0 {
		return false
	}
	t.a.WriteU8(n+aggOffLatch, 1)
	return true
}

// Unlatch releases the node latch.
func (t *AggTable) Unlatch(n arena.Addr) { t.a.WriteU8(n+aggOffLatch, 0) }

// LatchHeld reports whether the latch is currently held.
func (t *AggTable) LatchHeld(n arena.Addr) bool { return t.a.ReadU8(n+aggOffLatch) != 0 }

// InitGroup claims an empty node for a new group and applies the first value.
func (t *AggTable) InitGroup(n arena.Addr, key, payload uint64) {
	t.a.WriteU8(n+aggOffUsed, 1)
	t.a.WriteU64(n+aggOffKey, key)
	t.a.WriteU64(n+aggOffCount, 1)
	t.a.WriteU64(n+aggOffSum, payload)
	t.a.WriteU64(n+aggOffSumSq, payload*payload)
	t.a.WriteU64(n+aggOffMin, payload)
	t.a.WriteU64(n+aggOffMax, payload)
}

// UpdateGroup folds payload into the aggregates of an existing group node.
func (t *AggTable) UpdateGroup(n arena.Addr, payload uint64) {
	t.Node(n).Update(payload)
}

// Group materializes the aggregates held by a node.
func (t *AggTable) Group(n arena.Addr) Aggregates {
	return Aggregates{
		Key:   t.a.ReadU64(n + aggOffKey),
		Count: t.a.ReadU64(n + aggOffCount),
		Sum:   t.a.ReadU64(n + aggOffSum),
		SumSq: t.a.ReadU64(n + aggOffSumSq),
		Min:   t.a.ReadU64(n + aggOffMin),
		Max:   t.a.ReadU64(n + aggOffMax),
	}
}

// UpsertRaw folds one tuple into the table without charging simulator time.
// It is the reference path used to validate the engine-driven group-by.
func (t *AggTable) UpsertRaw(key, payload uint64) {
	n := t.BucketAddr(t.Hash(key))
	for {
		if !t.NodeUsed(n) {
			t.InitGroup(n, key, payload)
			return
		}
		if t.NodeKey(n) == key {
			t.UpdateGroup(n, payload)
			return
		}
		next := t.NodeNext(n)
		if next == 0 {
			next = t.AllocNode()
			t.SetNodeNext(n, next)
		}
		n = next
	}
}

// LookupGroupRaw returns the aggregates for key and whether the group exists.
func (t *AggTable) LookupGroupRaw(key uint64) (Aggregates, bool) {
	n := t.BucketAddr(t.Hash(key))
	for n != 0 {
		if t.NodeUsed(n) && t.NodeKey(n) == key {
			return t.Group(n), true
		}
		n = t.NodeNext(n)
	}
	return Aggregates{}, false
}

// Groups walks the whole table and returns every group. Order is by bucket
// and chain position; callers that need a canonical order must sort.
func (t *AggTable) Groups() []Aggregates {
	var out []Aggregates
	for b := uint64(0); b < t.nbuckets; b++ {
		n := t.BucketAddr(b)
		for n != 0 {
			if t.NodeUsed(n) {
				out = append(out, t.Group(n))
			}
			n = t.NodeNext(n)
		}
	}
	return out
}

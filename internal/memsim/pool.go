package memsim

import "sync"

// This file provides recycling of System+Core pairs across simulation runs.
// A serving sweep executes thousands of short runs, each of which would
// otherwise construct a fresh socket model — the L3 tag array alone is over
// a megabyte — only to discard it a few milliseconds later. Recycling keeps
// steady-state serving runs allocation-free.
//
// Correctness rests on Reset being exact: a recycled pair must be
// bit-identical to a freshly constructed one, because simulated results
// depend on every piece of cache, TLB, MSHR and prefetcher state.
// TestAcquireSystemBitIdentical and the golden suites enforce this.

// PooledSystem couples one socket model with one representative core, the
// unit every probe-style run needs. Release returns the pair for reuse.
type PooledSystem struct {
	Sys  *System
	Core *Core

	pool *sync.Pool
}

// sysPools maps a Config value to the pool of recycled pairs built from it.
// Config is a flat comparable struct, so the value itself is the key.
var sysPools sync.Map

// AcquireSystem returns a System+Core pair for the given configuration,
// recycled if one is available (reset to exactly the fresh-construction
// state) and freshly built otherwise. The configuration must be valid; like
// MustSystem, invalid configurations panic.
func AcquireSystem(cfg Config) *PooledSystem {
	pv, ok := sysPools.Load(cfg)
	if !ok {
		pv, _ = sysPools.LoadOrStore(cfg, &sync.Pool{})
	}
	pool := pv.(*sync.Pool)
	if v := pool.Get(); v != nil {
		p := v.(*PooledSystem)
		p.Sys.Reset()
		p.Sys.fabric.SetActiveThreads(1)
		p.Sys.activeThreads = 1
		p.Core.Reset()
		return p
	}
	sys := MustSystem(cfg)
	return &PooledSystem{Sys: sys, Core: sys.NewCore(), pool: pool}
}

// Release returns the pair to its pool. The caller must not touch the
// System or Core afterwards.
func (p *PooledSystem) Release() {
	if p == nil || p.pool == nil {
		return
	}
	p.pool.Put(p)
}

package memsim

import (
	"testing"

	"amac/internal/prof"
)

func TestMSHRAllocateUntilFull(t *testing.T) {
	m := NewMSHRFile(3)
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	for i := uint64(0); i < 3; i++ {
		if !m.Allocate(i, 100+i, prof.CatLLC) {
			t.Fatalf("allocation %d failed unexpectedly", i)
		}
	}
	if !m.Full() {
		t.Fatal("file should be full")
	}
	if m.Allocate(99, 50, prof.CatLLC) {
		t.Fatal("allocation should fail when full")
	}
	if m.Outstanding() != 3 {
		t.Fatalf("Outstanding = %d, want 3", m.Outstanding())
	}
}

func TestMSHRLookup(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(7, 42, prof.CatDRAM)
	e := m.Lookup(7)
	if e == nil || e.ready != 42 || !e.offchip {
		t.Fatalf("Lookup(7) = %+v", e)
	}
	if m.Lookup(8) != nil {
		t.Fatal("Lookup of absent line should return nil")
	}
}

func TestMSHREarliestReadyAndDrain(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(1, 100, prof.CatLLC)
	m.Allocate(2, 50, prof.CatDRAM)
	m.Allocate(3, 200, prof.CatLLC)

	ready, ok := m.EarliestReady()
	if !ok || ready != 50 {
		t.Fatalf("EarliestReady = %d,%v, want 50,true", ready, ok)
	}

	var filled []uint64
	m.Drain(120, func(line uint64) { filled = append(filled, line) })
	if len(filled) != 2 {
		t.Fatalf("Drain filled %v, want lines 1 and 2", filled)
	}
	if m.Outstanding() != 1 || m.Lookup(3) == nil {
		t.Fatal("line 3 should remain outstanding")
	}

	m.Drain(1000, nil) // nil fill must be tolerated
	if m.Outstanding() != 0 {
		t.Fatal("all entries should have drained")
	}
	if _, ok := m.EarliestReady(); ok {
		t.Fatal("EarliestReady on empty file should report false")
	}
}

func TestMSHROutstandingOffchip(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(1, 10, prof.CatDRAM)
	m.Allocate(2, 10, prof.CatLLC)
	m.Allocate(3, 10, prof.CatDRAM)
	if got := m.OutstandingOffchip(); got != 2 {
		t.Fatalf("OutstandingOffchip = %d, want 2", got)
	}
	m.Reset()
	if m.Outstanding() != 0 {
		t.Fatal("Reset did not clear entries")
	}
}

package memsim

import (
	"math/bits"

	"amac/internal/prof"
)

// Core simulates one hardware thread: it owns a private L1-D and L2, shares
// the L3 and off-chip queue of its System, and accounts both compute
// (abstract instructions) and memory time (cache hits, outstanding-miss
// waits, MSHR-full stalls, TLB walks).
//
// The execution engines and operator stage machines call Instr, Load, Store
// and Prefetch; everything else (figures, tables, throughput numbers) is
// derived from the resulting Stats.
//
// A Core is not safe for concurrent use.
type Core struct {
	cfg    *Config
	l1     *Cache
	l2     *Cache
	l3     *Cache
	mshr   *MSHRFile
	tlb    *TLB
	fabric *Fabric

	cycle uint64
	// memLat is the effective off-chip base latency. It normally equals
	// cfg.MemLatencyCycles; the fault injector inflates it during a shard
	// slowdown episode and restores it afterwards (SetMemLatency).
	memLat uint64
	// cpiNum/cpiDen express compute cycles per instruction as a rational
	// number: smtSharers / IssueWidth. Fractional cycles are accumulated in
	// instrAcc (in units of 1/cpiDen cycles) so accounting stays exact.
	cpiNum   uint64
	cpiDen   uint64
	cpiMagic uint64 // ceil(2^64/cpiDen), for division-free accounting
	instrAcc uint64

	smtSharers int

	// oooHide is the number of stall cycles per demand access that the
	// out-of-order window hides by executing independent instructions; see
	// the cost-model discussion in DESIGN.md.
	oooHide uint64

	// streams are the hardware streaming prefetcher's trackers: when a
	// demand access continues a tracked sequential stream, the prefetcher
	// runs a few lines ahead so scans (input relations, output buffers)
	// stay cheap, exactly as on the real machines. Pointer chases never
	// match a stream, so the software techniques keep their role.
	streams      []uint64 // next expected line per tracker, 0 = idle
	streamRR     int
	streamAhead  uint64
	streamEnable bool
	// lastStreamLine/lastStreamMiss memoize the previous streamCheck:
	// repeated demand accesses to one line (several fields of one node) are
	// the common case, and once a full tracker scan has proved no tracker
	// expects that line, retraining is the only remaining effect — trackers
	// are only ever written with line+1 values, so the scan result cannot
	// change until a different line is accessed.
	lastStreamLine uint64
	lastStreamMiss bool

	// offchipDemand is a peak-holding estimate of how many off-chip misses
	// this thread keeps in flight. The shared off-chip queue (Fabric) uses
	// it to model contention: the instantaneous outstanding count at issue
	// time underestimates pressure because the thread spends most of its
	// stalled time with a full MSHR file, so the peak (with slow decay) is
	// the better proxy for the load the thread places on the socket.
	offchipDemand int

	// Cycle hook (SetCycleHook): hookFn fires once per hookStep simulated
	// cycles from every clock-advancing path. hookNext is ^uint64(0) when no
	// hook is installed, so the fast paths pay one always-false compare and
	// never a call. The hook observes (metrics sampling); it must not touch
	// the core, so installing one cannot change simulated results.
	hookFn   func(cycle uint64)
	hookStep uint64
	hookNext uint64

	// prof, when non-nil, receives one charge for every cycle the clock
	// advances (SetProfiler). All charge calls are nil-safe single-branch
	// no-ops when disabled; attaching a profiler cannot change simulated
	// results because the profiler only observes.
	prof *prof.CoreProf

	stats Stats
}

// newCore is called by System.NewCore.
func newCore(cfg *Config, l3 *Cache, fabric *Fabric) *Core {
	c := &Core{
		cfg:    cfg,
		l1:     NewCache("L1D", cfg.L1D),
		l2:     NewCache("L2", cfg.L2),
		l3:     l3,
		tlb:    NewTLB(cfg.TLB),
		fabric: fabric,
	}
	c.SetSMTSharers(1)
	c.oooHide = defaultOoOHide(cfg)
	trackers := cfg.StreamTrackers
	if trackers <= 0 {
		trackers = 8
	}
	ahead := cfg.StreamDistance
	if ahead <= 0 {
		ahead = 4
	}
	c.streams = make([]uint64, trackers)
	c.streamAhead = uint64(ahead)
	c.streamEnable = !cfg.DisableStreamPrefetcher
	c.hookNext = ^uint64(0)
	c.memLat = cfg.MemLatencyCycles
	return c
}

// SetCycleHook installs fn to fire once per step simulated cycles (at cycles
// step, 2*step, ...), from whichever clock-advancing path first crosses each
// boundary; fn receives the boundary cycle. The observability layer installs
// metric samplers here. A nil fn or zero step removes the hook. The hook
// must only observe the core — it runs mid-charge and any mutation would
// corrupt the simulation.
func (c *Core) SetCycleHook(step uint64, fn func(cycle uint64)) {
	if fn == nil || step == 0 {
		c.hookFn = nil
		c.hookStep = 0
		c.hookNext = ^uint64(0)
		return
	}
	c.hookFn = fn
	c.hookStep = step
	c.hookNext = c.cycle + step
}

// SetProfiler attaches a cycle-attribution profiler: every subsequent clock
// advance charges its cycles to the profiler's current context under one
// prof.Cat category, so the per-category sums reconcile exactly with Stats
// total cycles. A nil profiler (the default) disables attribution at the
// cost of one predictable branch per advance. Like the cycle hook, the
// profiler only observes — attaching one never changes simulated results.
func (c *Core) SetProfiler(p *prof.CoreProf) { c.prof = p }

// Profiler returns the attached profiler, nil when disabled. Execution
// engines fetch it to push attribution context frames (technique, stage)
// around their work; all frame operations are nil-safe.
func (c *Core) Profiler() *prof.CoreProf { return c.prof }

// fireHook runs the cycle hook for every step boundary the clock has
// crossed. Kept out of line so the advancing fast paths stay small.
func (c *Core) fireHook() {
	if c.hookFn == nil {
		c.hookNext = ^uint64(0)
		return
	}
	for c.cycle >= c.hookNext {
		c.hookFn(c.hookNext)
		c.hookNext += c.hookStep
	}
}

// streamCheck feeds the hardware streaming prefetcher with a demand-accessed
// line. If the line continues a tracked stream, the prefetcher installs the
// next few lines; otherwise a tracker is (re)trained to expect the following
// line.
func (c *Core) streamCheck(line uint64) {
	if !c.streamEnable {
		return
	}
	if line == c.lastStreamLine && c.lastStreamMiss {
		// The previous access to this same line scanned every tracker and
		// matched none; training only writes line+1 values, so this access
		// cannot match either. Retrain directly — bit-identical to the scan.
		c.train(line)
		return
	}
	c.lastStreamLine = line
	for i := range c.streams {
		if c.streams[i] != 0 && line == c.streams[i] {
			// Install the whole fill window per level. Equivalent to
			// filling line by line: each cache sees the same operations in
			// the same order, and the caches share no state.
			ahead := int(c.streamAhead)
			c.l1.InsertSpan(line+1, ahead)
			c.l2.InsertSpan(line+1, ahead)
			c.l3.InsertSpan(line+1, ahead)
			c.streams[i] = line + 1
			c.stats.StreamFills += c.streamAhead
			c.lastStreamMiss = false
			return
		}
	}
	c.lastStreamMiss = true
	c.train(line)
}

// train (re)trains the round-robin tracker to expect the line after the one
// just demanded.
func (c *Core) train(line uint64) {
	c.streams[c.streamRR] = line + 1
	if c.streamRR++; c.streamRR == len(c.streams) {
		c.streamRR = 0
	}
}

// defaultOoOHide derives the per-access latency the out-of-order engine hides
// from the issue width: wider cores find more independent work around a miss.
func defaultOoOHide(cfg *Config) uint64 {
	switch {
	case cfg.IssueWidth >= 4:
		return 35
	case cfg.IssueWidth >= 2:
		return 12
	default:
		return 4
	}
}

// SetSMTSharers declares how many hardware threads share this core's pipeline
// and MSHRs. The representative thread then retires instructions at
// SustainedIPC/n per cycle and may keep only L1MSHRs/n misses outstanding.
// Calling it resets the MSHR file.
func (c *Core) SetSMTSharers(n int) {
	if n < 1 {
		n = 1
	}
	c.smtSharers = n
	ipc := c.cfg.SustainedIPC
	if ipc <= 0 {
		ipc = 0.6 * float64(c.cfg.IssueWidth)
	}
	// cycles per instruction = sharers / ipc, kept as an exact rational in
	// tenths of an instruction per cycle.
	c.cpiNum = uint64(n) * 10
	c.cpiDen = uint64(ipc*10 + 0.5)
	if c.cpiDen == 0 {
		c.cpiDen = 1
	}
	// cpiDen == 1 would wrap the magic to 0; Instr special-cases it anyway
	// (division by one needs no division).
	c.cpiMagic = 0
	if c.cpiDen > 1 {
		c.cpiMagic = ^uint64(0)/c.cpiDen + 1
	}
	c.instrAcc = 0
	budget := c.cfg.L1MSHRs / n
	if budget < 1 {
		budget = 1
	}
	if c.mshr != nil && c.mshr.Size() == budget {
		// Same register count: clearing the file is state-identical to a
		// fresh one, and recycled cores (AcquireSystem) stay allocation-free.
		c.mshr.Reset()
		return
	}
	c.mshr = NewMSHRFile(budget)
}

// SMTSharers returns the declared sharer count.
func (c *Core) SMTSharers() int { return c.smtSharers }

// SetOoOHideCycles overrides the per-access latency hidden by the
// out-of-order window (used by ablation experiments).
func (c *Core) SetOoOHideCycles(n uint64) { c.oooHide = n }

// Config returns the machine configuration this core simulates.
func (c *Core) Config() *Config { return c.cfg }

// Cycle returns the current simulated cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Seconds converts the current cycle count to seconds at the configured
// clock frequency.
func (c *Core) Seconds() float64 { return float64(c.cycle) / c.cfg.FreqHz }

// Stats returns a snapshot of the counters; Cycles is filled in from the
// current cycle.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.cycle
	return s
}

// ResetStats zeroes counters and the cycle clock but keeps cache, TLB and
// MSHR contents, so a measured phase can start against a warmed hierarchy
// (for example probing a hash table that a build phase just populated).
func (c *Core) ResetStats() {
	c.stats = Stats{}
	c.cycle = 0
	c.instrAcc = 0
	c.mshr.Reset()
	// Attribution restarts with the clock, keeping the conservation
	// invariant (profiler totals == Stats.Cycles) across the reset.
	c.prof.ResetCounts()
	if c.hookFn != nil {
		// The clock restarted; re-arm the hook at its first boundary.
		c.hookNext = c.hookStep
	}
}

// Reset restores the core to a cold state — caches, TLB, MSHRs, stream
// trackers, demand estimate, counters — exactly as newCore leaves it, so a
// recycled core is bit-identical to a fresh one. The shared L3 is not
// touched; use System.Reset for that.
func (c *Core) Reset() {
	c.l1.Reset()
	c.l2.Reset()
	c.tlb.Reset()
	c.SetSMTSharers(1)
	c.oooHide = defaultOoOHide(c.cfg)
	for i := range c.streams {
		c.streams[i] = 0
	}
	c.streamRR = 0
	c.lastStreamLine = 0
	c.lastStreamMiss = false
	c.offchipDemand = 0
	c.stats = Stats{}
	c.cycle = 0
	c.instrAcc = 0
	c.hookFn = nil
	c.hookStep = 0
	c.hookNext = ^uint64(0)
	c.prof = nil
	c.memLat = c.cfg.MemLatencyCycles
}

// SetMemLatency overrides the off-chip base latency in cycles; zero restores
// the configured value. The fault injector uses it to model a shard whose
// memory system has slowed (a degraded node, a noisy neighbour): every
// off-chip fill and the queue model see the inflated base until the episode
// ends. Callers must restore before recycling the core (Reset also restores).
func (c *Core) SetMemLatency(cycles uint64) {
	if cycles == 0 {
		cycles = c.cfg.MemLatencyCycles
	}
	c.memLat = cycles
}

// MemLatency returns the effective off-chip base latency in cycles.
func (c *Core) MemLatency() uint64 { return c.memLat }

// FlushPrivate empties the core's private caches, TLB and stream trackers
// without touching the clock, counters, hooks or the shared L3 — the state a
// crashed shard restarts with. The first accesses after a flush miss and
// re-warm, which is exactly the cold-restart penalty the fault injector
// wants to charge.
func (c *Core) FlushPrivate() {
	c.l1.Reset()
	c.l2.Reset()
	c.tlb.Reset()
	for i := range c.streams {
		c.streams[i] = 0
	}
	c.streamRR = 0
	c.lastStreamLine = 0
	c.lastStreamMiss = false
}

// L1 returns the private first-level data cache (exposed for tests).
func (c *Core) L1() *Cache { return c.l1 }

// L2 returns the private second-level cache (exposed for tests).
func (c *Core) L2() *Cache { return c.l2 }

// MSHROutstanding returns the number of misses currently in flight.
func (c *Core) MSHROutstanding() int { return c.mshr.Outstanding() }

// MSHRBudget returns the number of L1 miss-status registers available to the
// representative thread (L1MSHRs divided by the SMT sharer count, at least
// one). It is the hardware's memory-level-parallelism limit: the paper finds
// AMAC's throughput saturates once the slot window covers it, so width
// controllers use it as their starting width.
func (c *Core) MSHRBudget() int { return c.mshr.Size() }

// Instr charges n abstract instructions of compute. Cycles advance at the
// core's effective issue width. Instr runs for every simulated instruction
// charge, so whole-cycle extraction avoids the hardware divide: a Lemire
// round-up multiply is exact for accumulators below 2^32 (the accumulator
// stays below cpiDen between calls, so only an absurd single charge could
// exceed that; the slow path keeps it correct anyway).
func (c *Core) Instr(n int) {
	if n <= 0 {
		return
	}
	c.stats.Instructions += uint64(n)
	c.instrAcc += uint64(n) * c.cpiNum
	if c.instrAcc < c.cpiDen {
		return
	}
	var adv uint64
	switch {
	case c.cpiDen == 1:
		adv = c.instrAcc
	case c.instrAcc < 1<<32:
		adv, _ = bits.Mul64(c.cpiMagic, c.instrAcc)
	default:
		adv = c.instrAcc / c.cpiDen
	}
	c.instrAcc -= adv * c.cpiDen
	c.cycle += adv
	c.prof.Charge(prof.CatCompute, adv)
	if c.cycle >= c.hookNext {
		c.fireHook()
	}
}

// advance moves the clock forward by stall cycles (memory time), attributing
// them to the given category.
func (c *Core) advance(cycles uint64, cat prof.Cat) {
	c.cycle += cycles
	c.stats.StallCycles += cycles
	c.prof.Charge(cat, cycles)
	if c.cycle >= c.hookNext {
		c.fireHook()
	}
}

// AdvanceTo moves the clock forward to the given cycle without charging any
// work: the core is idle because an open-loop request source has nothing
// admitted yet (the streaming engines call it to sleep until the next
// arrival). Idle time is recorded separately from memory stalls so serving
// runs can distinguish "waiting on DRAM" from "waiting on traffic". A target
// in the past is a no-op.
func (c *Core) AdvanceTo(target uint64) {
	if target <= c.cycle {
		return
	}
	c.stats.IdleCycles += target - c.cycle
	c.prof.Charge(prof.CatIdle, target-c.cycle)
	c.cycle = target
	if c.cycle >= c.hookNext {
		c.fireHook()
	}
}

// fill installs a line into the private hierarchy and the shared L3.
func (c *Core) fill(line uint64) {
	c.l1.Insert(line)
	c.l2.Insert(line)
	c.l3.Insert(line)
}

// drainMSHRs retires every outstanding miss whose data has arrived. The
// guard is duplicated from Drain so the no-op case — nothing outstanding, or
// nothing due yet — inlines into every demand access without a call.
func (c *Core) drainMSHRs() {
	if c.mshr.outstanding == 0 || c.cycle < c.mshr.minReady {
		return
	}
	c.mshr.Drain(c.cycle, c.fill)
}

// translate charges a TLB walk if needed.
func (c *Core) translate(a Addr) {
	if !c.tlb.Translate(a) {
		c.stats.TLBMisses++
		c.advance(c.tlb.Penalty(), prof.CatTLB)
	}
}

// hidden applies the out-of-order window's latency hiding to a demand stall.
func (c *Core) hidden(stall uint64) uint64 {
	if stall <= c.oooHide {
		return 0
	}
	return stall - c.oooHide
}

// missLatency determines where a line's data lives (L2, L3 or memory) and
// returns the total fill latency from the L1 miss, along with the
// attribution category of the fill level (CatDRAM means off-chip). Lower-
// level lookups update those caches' hit statistics and recency, mirroring
// an inclusive hierarchy.
func (c *Core) missLatency(line uint64) (lat uint64, src prof.Cat) {
	if c.l2.Lookup(line) {
		c.stats.L2Hits++
		return c.l2.Latency(), prof.CatL2
	}
	if c.l3.Lookup(line) {
		c.stats.L3Hits++
		return c.l2.Latency() + c.l3.Latency(), prof.CatLLC
	}
	c.stats.MemAccesses++
	outstanding := c.mshr.OutstandingOffchip() + 1
	// Peak-hold with slow decay: see the offchipDemand field comment.
	c.offchipDemand = c.offchipDemand * 31 / 32
	if outstanding > c.offchipDemand {
		c.offchipDemand = outstanding
	}
	mem := c.fabric.OffchipLatency(c.memLat, c.offchipDemand)
	c.stats.OffchipQueueExtra += mem - c.memLat
	c.prof.OffchipFill(mem)
	return c.l2.Latency() + c.l3.Latency() + mem, prof.CatDRAM
}

// waitForMSHR stalls until at least one MSHR is free, draining completions.
func (c *Core) waitForMSHR() {
	for c.mshr.Full() {
		ready, ok := c.mshr.EarliestReady()
		if !ok {
			return
		}
		if ready > c.cycle {
			wait := ready - c.cycle
			c.stats.MSHRFullStalls++
			c.stats.MSHRFullWaitCycles += wait
			c.advance(wait, prof.CatMSHRFull)
		}
		c.drainMSHRs()
	}
}

// demandLine performs a blocking access to one cache line.
func (c *Core) demandLine(line uint64) {
	c.drainMSHRs()
	c.streamCheck(line)

	if c.l1.Lookup(line) {
		c.stats.L1Hits++
		c.advance(c.hidden(c.l1.Latency()), prof.CatL1)
		return
	}

	// The line may already be in flight thanks to an earlier prefetch: the
	// access waits only for the remaining latency (an "MSHR hit"). The wait
	// is attributed to the in-flight fill's level, and the visible part is
	// latency the prefetch failed to hide — Expose claws it back from the
	// Hide the prefetch recorded at allocation.
	if e := c.mshr.Lookup(line); e != nil {
		c.stats.MSHRHits++
		if e.ready > c.cycle {
			wait := e.ready - c.cycle
			c.stats.MSHRHitWaitCycles += wait
			visible := c.hidden(wait)
			c.advance(visible, e.cat)
			c.prof.Expose(e.cat, visible)
			// The data has now (logically) arrived even if hiding
			// shortened the visible stall.
			c.mshr.Expedite(e, c.cycle)
		}
		c.drainMSHRs()
		if !c.l1.Contains(line) {
			c.fill(line)
		}
		return
	}

	// True miss: block for the full fill latency. The out-of-order window's
	// contribution (total minus visible) counts as hidden latency at the
	// fill level.
	lat, src := c.missLatency(line)
	tot := c.l1.Latency() + lat
	visible := c.hidden(tot)
	c.advance(visible, src)
	c.prof.Hide(src, tot-visible)
	c.fill(line)
}

// Load performs a blocking read of size bytes at address a, charging one
// instruction plus memory time for every cache line touched.
func (c *Core) Load(a Addr, size int) {
	c.Instr(1)
	c.stats.Loads++
	c.translate(a)
	c.accessLines(a, size)
}

// Store performs a blocking write of size bytes at address a. The model
// treats it as read-for-ownership: same latency as a load.
func (c *Core) Store(a Addr, size int) {
	c.Instr(1)
	c.stats.Stores++
	c.translate(a)
	c.accessLines(a, size)
}

func (c *Core) accessLines(a Addr, size int) {
	if size <= 0 {
		size = 1
	}
	first := Line(a)
	last := Line(a + Addr(size) - 1)
	if first == last {
		// Node fields and tuples fit one cache line; skip the loop set-up.
		c.demandLine(first)
		return
	}
	for line := first; line <= last; line++ {
		c.demandLine(line)
	}
}

// Prefetch issues a non-blocking fetch of the line containing a. It charges
// one instruction; if the line is already on chip or in flight it is dropped,
// otherwise it occupies an MSHR until its data arrives. If every MSHR is busy
// the core stalls until one frees — this is the hardware ceiling on MLP.
func (c *Core) Prefetch(a Addr) {
	c.Instr(1)
	c.stats.Prefetches++
	c.translate(a)
	c.drainMSHRs()

	line := Line(a)
	if c.l1.Contains(line) || c.mshr.Lookup(line) != nil {
		c.stats.PrefetchDropped++
		return
	}
	if c.cfg.DropPrefetchOnCacheHit && (c.l2.Contains(line) || c.l3.Contains(line)) {
		// SPARC T4 discards prefetches that hit on chip (Section 5.5).
		c.stats.PrefetchDropped++
		return
	}

	c.waitForMSHR()
	c.drainMSHRs()
	lat, src := c.missLatency(line)
	c.mshr.Allocate(line, c.cycle+lat, src)
	// The whole fill latency is scheduled off the critical path; any part a
	// demand access later waits out is Exposed on the MSHR-hit path.
	c.prof.Hide(src, lat)
	c.stats.PrefetchIssued++
}

// PrefetchSpan prefetches every line covered by [a, a+size).
func (c *Core) PrefetchSpan(a Addr, size int) {
	if size <= 0 {
		size = 1
	}
	first := Line(a)
	last := Line(a + Addr(size) - 1)
	if first == last {
		// Single-line nodes are the common case for every operator.
		c.Prefetch(Addr(first << lineShift))
		return
	}
	for line := first; line <= last; line++ {
		c.Prefetch(Addr(line << lineShift))
	}
}

// Touch installs the lines covering [a, a+size) into the hierarchy without
// charging any time or statistics. It is used to pre-warm caches to a
// realistic state before a measured phase (for example, marking the probe
// input's first lines resident) and by tests.
func (c *Core) Touch(a Addr, size int) {
	if size <= 0 {
		size = 1
	}
	first := Line(a)
	last := Line(a + Addr(size) - 1)
	for line := first; line <= last; line++ {
		c.fill(line)
	}
}

package memsim

import "testing"

// TestStreamPrefetcherMakesSequentialScansCheap: a long sequential scan must
// cost far less per line than random accesses, because the hardware stream
// prefetcher runs ahead of it.
func TestStreamPrefetcherMakesSequentialScansCheap(t *testing.T) {
	cfg := testConfig()
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.SetOoOHideCycles(0)

	const lines = 2000
	for i := 0; i < lines; i++ {
		c.Load(Addr(64+i*LineSize), 8)
	}
	seq := c.Cycle()
	if c.Stats().StreamFills == 0 {
		t.Fatal("sequential scan should have triggered the stream prefetcher")
	}

	c2 := sys.NewCore()
	c2.SetOoOHideCycles(0)
	for i := 0; i < lines; i++ {
		// Large, non-sequential stride: every access is a fresh miss.
		c2.Load(Addr(64+uint64(i)*97*LineSize), 8)
	}
	random := c2.Cycle()

	if seq*3 > random {
		t.Fatalf("sequential scan (%d cycles) should be far cheaper than random accesses (%d cycles)", seq, random)
	}
}

// TestStreamPrefetcherIgnoresPointerChases: strided or scattered accesses
// must not be treated as streams, otherwise the software techniques would
// have nothing left to do.
func TestStreamPrefetcherIgnoresPointerChases(t *testing.T) {
	sys := MustSystem(testConfig())
	c := sys.NewCore()
	for i := 0; i < 100; i++ {
		c.Load(Addr(64+uint64(i)*17*LineSize), 8)
	}
	if c.Stats().StreamFills != 0 {
		t.Fatalf("scattered accesses triggered %d stream fills", c.Stats().StreamFills)
	}
}

// TestStreamPrefetcherCanBeDisabled verifies the configuration knob used by
// ablations.
func TestStreamPrefetcherCanBeDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DisableStreamPrefetcher = true
	sys := MustSystem(cfg)
	c := sys.NewCore()
	for i := 0; i < 500; i++ {
		c.Load(Addr(64+i*LineSize), 8)
	}
	if c.Stats().StreamFills != 0 {
		t.Fatal("disabled stream prefetcher still filled lines")
	}
}

// TestStreamPrefetcherTracksMultipleStreams: interleaved sequential streams
// (e.g. an input scan plus an output scan) must both be recognised.
func TestStreamPrefetcherTracksMultipleStreams(t *testing.T) {
	sys := MustSystem(testConfig())
	c := sys.NewCore()
	c.SetOoOHideCycles(0)
	baseA := Addr(1 << 20)
	baseB := Addr(1 << 24)
	for i := 0; i < 500; i++ {
		c.Load(baseA+Addr(i*LineSize), 8)
		c.Load(baseB+Addr(i*LineSize), 8)
	}
	s := c.Stats()
	// After warm-up, almost no access should have to go to memory: both
	// streams are recognised and their lines arrive ahead of the demand.
	if s.MemAccesses > s.Loads/5 {
		t.Fatalf("%d of %d loads went to memory despite two recognisable streams", s.MemAccesses, s.Loads)
	}
}

// TestSustainedIPCDefault: when SustainedIPC is not set, compute throughput
// defaults to a fraction of the issue width.
func TestSustainedIPCDefault(t *testing.T) {
	cfg := testConfig()
	cfg.IssueWidth = 5
	cfg.SustainedIPC = 0
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.Instr(300)
	// Default sustained IPC is 3 (0.6 * 5), so 300 instructions take ~100 cycles.
	if c.Cycle() < 95 || c.Cycle() > 105 {
		t.Fatalf("300 instructions at default sustained IPC took %d cycles, want about 100", c.Cycle())
	}
}

// TestOffchipDemandDrivesFabricContention: a thread that keeps many off-chip
// misses in flight must observe inflated latency once several such threads
// share the socket, while a low-MLP thread must not.
func TestOffchipDemandDrivesFabricContention(t *testing.T) {
	cfg := testConfig()
	cfg.L1MSHRs = 8
	cfg.LLCQueueEntries = 16
	run := func(threads int, prefetches int) uint64 {
		sys := MustSystem(cfg)
		c := sys.NewCore()
		c.SetOoOHideCycles(0)
		sys.SetActiveThreads(threads, c)
		for i := 0; i < 3000; i++ {
			if prefetches > 0 {
				for p := 0; p < prefetches; p++ {
					c.Prefetch(Addr(64 + uint64(i*16+p)*101*LineSize))
				}
			}
			c.Load(Addr(64+uint64(i*16+15)*103*LineSize), 8)
		}
		return c.Cycle()
	}
	highMLPAlone := run(1, 6)
	highMLPShared := run(6, 6)
	if float64(highMLPShared) < float64(highMLPAlone)*1.2 {
		t.Fatalf("six high-MLP threads sharing a 16-entry queue should slow each other down: alone %d, shared %d", highMLPAlone, highMLPShared)
	}
	lowMLPAlone := run(1, 0)
	lowMLPShared := run(6, 0)
	if float64(lowMLPShared) > float64(lowMLPAlone)*1.1 {
		t.Fatalf("low-MLP threads should not contend: alone %d, shared %d", lowMLPAlone, lowMLPShared)
	}
}

package memsim

import "testing"

// TestCycleHookFiresOnBoundaries drives the clock through all three
// advancing paths (compute, stall, idle) and checks the hook fires once per
// boundary, in order, with the boundary cycle.
func TestCycleHookFiresOnBoundaries(t *testing.T) {
	_, c := newTestCore(t)
	var fired []uint64
	c.SetCycleHook(10, func(cycle uint64) { fired = append(fired, cycle) })

	c.Instr(25)                 // compute: crosses 10 and 20
	c.Load(0x10000, 8)          // stall: cold miss jumps far past several boundaries
	c.AdvanceTo(c.Cycle() + 35) // idle: three more boundaries

	if len(fired) == 0 {
		t.Fatalf("hook never fired")
	}
	for i, cyc := range fired {
		if cyc%10 != 0 {
			t.Fatalf("firing %d at cycle %d is not a step boundary", i, cyc)
		}
		if i > 0 && cyc != fired[i-1]+10 {
			t.Fatalf("boundary skipped or repeated: %v", fired)
		}
	}
	if last := fired[len(fired)-1]; last > c.Cycle() {
		t.Fatalf("hook fired for future cycle %d (clock at %d)", last, c.Cycle())
	}
	want := c.Cycle() / 10
	if uint64(len(fired)) != want {
		t.Fatalf("hook fired %d times over %d cycles at step 10, want %d", len(fired), c.Cycle(), want)
	}
}

// TestCycleHookObservationalOnly runs the same workload with and without a
// hook installed and checks every simulated result is bit-identical — the
// tentpole invariant at its root.
func TestCycleHookObservationalOnly(t *testing.T) {
	run := func(hook bool) Stats {
		_, c := newTestCore(t)
		if hook {
			c.SetCycleHook(7, func(uint64) {})
		}
		for i := 0; i < 50; i++ {
			c.Instr(3)
			c.Load(Addr(0x4000+i*192), 16)
			if i%5 == 0 {
				c.Prefetch(Addr(0x90000 + i*64))
			}
		}
		c.AdvanceTo(c.Cycle() + 100)
		return c.Stats()
	}
	if plain, hooked := run(false), run(true); plain != hooked {
		t.Fatalf("cycle hook changed simulated results:\nwithout: %+v\nwith:    %+v", plain, hooked)
	}
}

func TestCycleHookResetStatsRearms(t *testing.T) {
	_, c := newTestCore(t)
	var fired []uint64
	c.SetCycleHook(10, func(cycle uint64) { fired = append(fired, cycle) })
	c.Instr(25)
	c.ResetStats()
	fired = nil
	c.Instr(15)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("after ResetStats the hook should fire at the first boundary again, got %v", fired)
	}
}

func TestCycleHookClearedByReset(t *testing.T) {
	_, c := newTestCore(t)
	fired := 0
	c.SetCycleHook(10, func(uint64) { fired++ })
	c.Reset()
	c.Instr(100)
	if fired != 0 {
		t.Fatalf("hook survived Reset and fired %d times", fired)
	}
	if c.hookNext != ^uint64(0) {
		t.Fatalf("Reset left hookNext armed at %d", c.hookNext)
	}
	// Removal via SetCycleHook(0, nil) too.
	c.SetCycleHook(10, func(uint64) { fired++ })
	c.SetCycleHook(0, nil)
	c.Instr(100)
	if fired != 0 {
		t.Fatalf("removed hook fired %d times", fired)
	}
}

package memsim

import "testing"

// poolSnapshot captures everything a run exposes: core counters plus the
// hit/miss/eviction state of every cache level.
type poolSnapshot struct {
	stats         Stats
	l1h, l1m, l1e uint64
	l2h, l2m, l2e uint64
	l3h, l3m, l3e uint64
	mshrOut       int
}

// exercise runs a deterministic mixed workload — strided and pseudo-random
// loads, stores, prefetches, compute and idle skips — that leaves plenty of
// state in every structure the reset path must clear.
func exercise(sys *System, c *Core, threads int) poolSnapshot {
	sys.SetActiveThreads(threads, c)
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		switch i % 5 {
		case 0:
			c.Load(Addr(64+(x%(1<<26))), 8)
		case 1:
			c.Store(Addr(64+(x%(1<<22))), 16)
		case 2:
			c.Prefetch(Addr(64 + (x % (1 << 26))))
		case 3:
			c.Load(Addr(64+uint64(i)*64), 8) // sequential: trains the stream prefetcher
		default:
			c.Instr(3)
			if i%1000 == 999 {
				c.AdvanceTo(c.Cycle() + 500)
			}
		}
	}
	return poolSnapshot{
		stats: c.Stats(),
		l1h:   c.L1().Hits(), l1m: c.L1().Misses(), l1e: c.L1().Evictions(),
		l2h: c.L2().Hits(), l2m: c.L2().Misses(), l2e: c.L2().Evictions(),
		l3h: sys.L3().Hits(), l3m: sys.L3().Misses(), l3e: sys.L3().Evictions(),
		mshrOut: c.MSHROutstanding(),
	}
}

// TestAcquireSystemBitIdentical is the contract the serving layer's system
// recycling rests on: a recycled pair must reproduce a fresh pair's
// simulated results exactly, for every counter, even after the previous run
// left arbitrary cache, TLB, MSHR, stream-tracker and SMT state behind.
func TestAcquireSystemBitIdentical(t *testing.T) {
	cfg := XeonX5670()
	fresh := MustSystem(cfg)
	want := exercise(fresh, fresh.NewCore(), 1)

	p := AcquireSystem(cfg)
	exercise(p.Sys, p.Core, 4) // dirty it under a different SMT/fabric shape
	p.Release()

	for round := 0; round < 3; round++ {
		q := AcquireSystem(cfg)
		got := exercise(q.Sys, q.Core, 1)
		if got != want {
			t.Fatalf("round %d: recycled system diverged from fresh:\n got %+v\nwant %+v", round, got, want)
		}
		q.Release()
	}

	// An acquire/release cycle that never touches the caches (Reset's
	// skip-memset fast path) must also hand back a bit-identical pair.
	idle := AcquireSystem(cfg)
	idle.Core.Instr(100)
	idle.Core.AdvanceTo(5000)
	idle.Release()
	q := AcquireSystem(cfg)
	if got := exercise(q.Sys, q.Core, 1); got != want {
		t.Fatalf("recycled-after-idle system diverged from fresh:\n got %+v\nwant %+v", got, want)
	}
	q.Release()
}

// TestAcquireSystemDistinctConfigs checks that pools are keyed by the full
// configuration value: different configs never share instances.
func TestAcquireSystemDistinctConfigs(t *testing.T) {
	a := AcquireSystem(XeonX5670())
	b := AcquireSystem(SPARCT4())
	if a.Sys == b.Sys || a.Core == b.Core {
		t.Fatal("different configurations shared a pooled instance")
	}
	if a.Sys.Config().Name != "Xeon x5670" || b.Sys.Config().Name != "SPARC T4" {
		t.Fatalf("pooled systems carry wrong configs: %q, %q", a.Sys.Config().Name, b.Sys.Config().Name)
	}
	a.Release()
	b.Release()
}

// TestCoreResetRestoresColdState verifies Reset against a freshly built core
// across the counters that PR 3's memos and the stream prefetcher maintain.
func TestCoreResetRestoresColdState(t *testing.T) {
	cfg := XeonX5670()
	sysA := MustSystem(cfg)
	a := sysA.NewCore()
	want := exercise(sysA, a, 1)

	sysB := MustSystem(cfg)
	b := sysB.NewCore()
	exercise(sysB, b, 6)
	sysB.Reset()
	sysB.fabric.SetActiveThreads(1)
	b.Reset()
	got := exercise(sysB, b, 1)
	if got != want {
		t.Fatalf("reset core diverged from fresh:\n got %+v\nwant %+v", got, want)
	}
}

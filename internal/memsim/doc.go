// Package memsim provides a deterministic, cycle-accounting model of the
// processor memory hierarchy used in the AMAC paper's evaluation (Kocberber,
// Falsafi, Grot: "Asynchronous Memory Access Chaining", VLDB 2015).
//
// The paper measures real hardware (Intel Xeon x5670 and SPARC T4) with
// performance counters; this package substitutes a software model of the same
// resources so that the paper's experiments can be reproduced without prefetch
// intrinsics or hardware PMUs:
//
//   - set-associative, LRU L1-D, L2 and shared L3 caches with the published
//     sizes and latencies,
//   - a per-core L1-D MSHR file that caps the number of in-flight misses
//     (the resource that limits single-thread memory-level parallelism),
//   - a shared off-chip "Global Queue" (Fabric) whose limited capacity causes
//     the multi-threaded LLC contention described in Section 5.1.1,
//   - a data TLB with large-page entries,
//   - an instruction-cost accumulator so techniques with more bookkeeping
//     (Group Prefetching, Software-Pipelined Prefetching) pay for it in cycles.
//
// All state advances only when the owning goroutine calls methods on a Core,
// so simulations are single-threaded and fully deterministic.
//
// Addresses are abstract 64-bit values produced by package arena; the
// simulator only looks at cache-line and page granularity, never at the bytes
// behind an address.
package memsim

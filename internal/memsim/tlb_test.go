package memsim

import "testing"

func TestTLBHitAndMiss(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageBytes: 1 << 12, MissPenaltyCycles: 30})
	if tlb.Penalty() != 30 {
		t.Fatalf("Penalty = %d", tlb.Penalty())
	}
	if tlb.Translate(0x1000) {
		t.Fatal("first access to a page must miss")
	}
	if !tlb.Translate(0x1fff) {
		t.Fatal("second access to the same page must hit")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageBytes: 1 << 12, MissPenaltyCycles: 1})
	tlb.Translate(0x0000) // page 0
	tlb.Translate(0x1000) // page 1
	tlb.Translate(0x0000) // touch page 0: page 1 is now LRU
	tlb.Translate(0x2000) // page 2 evicts page 1
	if !tlb.Translate(0x0000) {
		t.Fatal("page 0 should have survived")
	}
	if tlb.Translate(0x1000) {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestTLBLargePagesCoverWorkingSet(t *testing.T) {
	// With 2 MB pages and 64 entries, a 100 MB working set misses only on
	// first touch of each page.
	tlb := NewTLB(TLBConfig{Entries: 64, PageBytes: 2 << 20, MissPenaltyCycles: 30})
	const pages = 50
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < pages; p++ {
			tlb.Translate(Addr(p) * (2 << 20))
		}
	}
	if tlb.Misses() != pages {
		t.Fatalf("misses = %d, want %d (first touch only)", tlb.Misses(), pages)
	}
}

func TestTLBReset(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageBytes: 1 << 12, MissPenaltyCycles: 1})
	tlb.Translate(0)
	tlb.Reset()
	if tlb.Hits() != 0 || tlb.Misses() != 0 {
		t.Fatal("Reset did not clear statistics")
	}
	if tlb.Translate(0) {
		t.Fatal("translation should miss after Reset")
	}
}

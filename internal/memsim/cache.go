package memsim

// Cache is a set-associative cache with true-LRU replacement. It stores only
// cache-line numbers (tags); data always lives in the arena. A Cache is not
// safe for concurrent use; the simulator is single-threaded by design.
type Cache struct {
	name    string
	latency uint64
	ways    int
	sets    uint64

	// tags[set*ways+way] holds lineNumber+1 so that zero means invalid.
	tags []uint64
	// use[set*ways+way] is a monotonically increasing use stamp for LRU.
	use   []uint64
	clock uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

// NewCache builds a cache from its configuration. The configuration must have
// been validated.
func NewCache(name string, cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	return &Cache{
		name:    name,
		latency: cfg.LatencyCycles,
		ways:    cfg.Ways,
		sets:    uint64(sets),
		tags:    make([]uint64, sets*cfg.Ways),
		use:     make([]uint64, sets*cfg.Ways),
	}
}

// Name returns the label given at construction time.
func (c *Cache) Name() string { return c.name }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// setBase returns the index of the first way of the set holding line.
func (c *Cache) setBase(line uint64) int {
	return int(line%c.sets) * c.ways
}

// Lookup reports whether line is present and, if so, marks it most recently
// used. Statistics are updated.
func (c *Cache) Lookup(line uint64) bool {
	base := c.setBase(line)
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.clock++
			c.use[base+w] = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains reports whether line is present without updating recency or
// statistics. It is used by prefetch filtering.
func (c *Cache) Contains(line uint64) bool {
	base := c.setBase(line)
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Insert places line in the cache, evicting the least recently used way of
// its set if necessary. It returns the evicted line and true if an eviction
// of a valid line occurred. Inserting a line that is already present only
// refreshes its recency.
func (c *Cache) Insert(line uint64) (evicted uint64, ok bool) {
	base := c.setBase(line)
	tag := line + 1
	c.clock++

	victim := base
	victimUse := c.use[base]
	for w := 0; w < c.ways; w++ {
		idx := base + w
		if c.tags[idx] == tag {
			c.use[idx] = c.clock
			return 0, false
		}
		if c.tags[idx] == 0 {
			// Prefer an invalid way; mark it as the victim and stop
			// considering occupied ways.
			victim = idx
			victimUse = 0
			continue
		}
		if c.use[idx] < victimUse {
			victim = idx
			victimUse = c.use[idx]
		}
	}
	old := c.tags[victim]
	c.tags[victim] = tag
	c.use[victim] = c.clock
	if old != 0 {
		c.evictions++
		return old - 1, true
	}
	return 0, false
}

// Invalidate removes line from the cache if present.
func (c *Cache) Invalidate(line uint64) {
	base := c.setBase(line)
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.tags[base+w] = 0
			c.use[base+w] = 0
			return
		}
	}
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.use[i] = 0
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
	c.evictions = 0
}

// Hits returns the number of Lookup calls that found their line.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of Lookup calls that did not find their line.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns the number of valid lines displaced by Insert.
func (c *Cache) Evictions() uint64 { return c.evictions }

package memsim

import (
	"math/bits"
	"sort"
)

// Cache is a set-associative cache with true-LRU replacement. It stores only
// cache-line numbers (tags); data always lives in the arena. A Cache is not
// safe for concurrent use; the simulator is single-threaded by design.
//
// This type is the innermost loop of the whole simulator — every simulated
// load, store, prefetch and stream-prefetcher fill ends in a handful of
// Lookup/Insert calls — so the representation is chosen for the host's
// memory system as much as for clarity:
//
//   - Each way is one packed uint64 word: the line tag in the low 32 bits
//     (lineNumber+1, 0 = invalid) and the LRU use stamp in the high 32 bits.
//     A set scan, a recency refresh and a victim selection all touch one
//     contiguous word per way instead of two parallel arrays, halving the
//     metadata footprint (the simulated L3's alone would otherwise be 3 MB)
//     and the number of host cache lines dirtied per operation.
//   - 32-bit use stamps wrap; before the stamp counter would overflow, the
//     cache renormalizes by compacting all live stamps order-preservingly.
//     LRU victim selection depends only on the relative order of stamps, so
//     renormalization is invisible to the simulated results.
//   - The set-index computation avoids the hardware divide: power-of-two
//     set counts use a mask and others (the Xeon L3 has 12288 sets) a
//     Lemire fast-mod double multiply. Both produce exactly line % sets.
//
// 32-bit tags bound the simulated address space to 2^32-2 cache lines
// (256 GB); exceeding it panics loudly rather than aliasing.
type Cache struct {
	name    string
	latency uint64
	ways    int
	sets    uint64
	// mask is sets-1 when sets is a power of two (pow2 true).
	pow2 bool
	mask uint64
	// fastM is ceil(2^64 / sets), the fast-mod magic; valid when sets > 1
	// fits in 32 bits (lines always do, per the address-space bound).
	fastM uint64

	// words[set*ways+way] = use<<32 | tag.
	words []uint64
	clock uint32

	// memoTag/memoIdx memoize the ways that served the most recent hits,
	// direct-mapped by the line's low bits: operators touch several fields
	// of one node, and the stream prefetcher re-installs a sliding window of
	// lines it filled one access earlier, so re-touching a just-used line is
	// the common case and skips the set scan. Entries are validated against
	// the backing word before use, so Insert/Invalidate/Reset can never
	// serve a stale way.
	memoTag [cacheMemoEntries]uint32
	memoIdx [cacheMemoEntries]int32

	// missLine/missClock/missVictim fuse the Lookup-miss-then-Insert pair
	// every demand miss performs: the miss scan reads each way's whole
	// packed word anyway, so it records the victim way it would pick, and
	// the following Insert of the same line replays it without a second set
	// scan. missClock guards the memo — any recency change in between
	// (possible on the MSHR-hit path, where in-flight fills drain first)
	// advances the clock and voids it.
	missLine   uint64
	missClock  uint32
	missVictim int32

	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheMemoEntries is the hit-way memo size (a power of two), covering the
// stream prefetcher's fill window plus the demand line it trails.
const cacheMemoEntries = 8

// noLine is an impossible line number (tagOf rejects it), used to mark the
// miss-victim memo as empty.
const noLine = ^uint64(0)

// tagOf converts a line number to its packed tag, enforcing the simulator's
// address-space bound.
func tagOf(line uint64) uint32 {
	if line >= 1<<32-1 {
		panic("memsim: cache line number exceeds the simulator's 256 GB address-space bound")
	}
	return uint32(line) + 1
}

// NewCache builds a cache from its configuration. The configuration must have
// been validated.
func NewCache(name string, cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	c := &Cache{
		name:     name,
		latency:  cfg.LatencyCycles,
		ways:     cfg.Ways,
		sets:     uint64(sets),
		words:    make([]uint64, sets*cfg.Ways),
		missLine: noLine,
	}
	if c.sets&(c.sets-1) == 0 {
		c.pow2 = true
		c.mask = c.sets - 1
	} else if c.sets < 1<<32 {
		c.fastM = ^uint64(0)/c.sets + 1
	}
	return c
}

// Name returns the label given at construction time.
func (c *Cache) Name() string { return c.name }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// setBase returns the index of the first way of the set holding line.
func (c *Cache) setBase(line uint64) int {
	if c.pow2 {
		return int(line&c.mask) * c.ways
	}
	if c.fastM != 0 {
		// Lemire fast-mod: line % sets for 32-bit operands (lines are
		// 32-bit by the address-space bound).
		mod, _ := bits.Mul64(c.fastM*line, c.sets)
		return int(mod) * c.ways
	}
	return int(line%c.sets) * c.ways
}

// tick advances the use-stamp clock, renormalizing first if the next stamp
// would overflow 32 bits.
func (c *Cache) tick() uint32 {
	if c.clock == ^uint32(0) {
		c.renormalize()
	}
	c.clock++
	return c.clock
}

// renormalize compacts all live use stamps to 1..K preserving their order.
// LRU decisions depend only on stamp order, so simulated behaviour is
// unchanged; it runs at most once per 2^32 stamp assignments per cache.
func (c *Cache) renormalize() {
	type live struct {
		idx int
		use uint32
	}
	entries := make([]live, 0, len(c.words))
	for i, w := range c.words {
		if uint32(w) != 0 {
			entries = append(entries, live{i, uint32(w >> 32)})
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].use < entries[b].use })
	for rank, e := range entries {
		c.words[e.idx] = uint64(rank+1)<<32 | uint64(uint32(c.words[e.idx]))
	}
	c.clock = uint32(len(entries))
	// The clock jumped backwards; a stale miss-victim memo could otherwise
	// match a future clock value coincidentally.
	c.missLine = noLine
}

// Lookup reports whether line is present and, if so, marks it most recently
// used. Statistics are updated. The memo hit — the common case for
// node-field re-touches and stream-filled lines — is checked first.
func (c *Cache) Lookup(line uint64) bool {
	tag := tagOf(line)
	if s := tag & (cacheMemoEntries - 1); c.memoTag[s] == tag {
		if idx := c.memoIdx[s]; uint32(c.words[idx]) == tag {
			c.words[idx] = uint64(c.tick())<<32 | uint64(tag)
			c.hits++
			return true
		}
	}
	return c.lookupSlow(line, tag)
}

// lookupSlow scans the set for tag, refreshing recency on a hit. On a miss
// it additionally records the victim way (same selection rule as
// insertSlowAt) so that the fill this miss triggers can insert without
// rescanning the set. The victim scan runs only after the hit scan failed —
// hits stay one compare per way, and the miss's second pass re-reads words
// the first pass just pulled into the host's cache.
func (c *Cache) lookupSlow(line uint64, tag uint32) bool {
	base := c.setBase(line)
	words := c.words[base : base+c.ways]
	for w := range words {
		if uint32(words[w]) == tag {
			words[w] = uint64(c.tick())<<32 | uint64(tag)
			c.hits++
			c.memoize(tag, base+w)
			return true
		}
	}
	c.misses++
	invalid, lru := -1, 0
	lruUse := ^uint32(0)
	for w := range words {
		word := words[w]
		if uint32(word) == 0 {
			invalid = w
		} else if invalid < 0 && uint32(word>>32) < lruUse {
			lru, lruUse = w, uint32(word>>32)
		}
	}
	if invalid >= 0 {
		c.missVictim = int32(base + invalid)
	} else {
		c.missVictim = int32(base + lru)
	}
	c.missLine = line
	c.missClock = c.clock
	return false
}

// Contains reports whether line is present without updating recency or
// statistics. It is used by prefetch filtering.
func (c *Cache) Contains(line uint64) bool {
	tag := tagOf(line)
	if s := tag & (cacheMemoEntries - 1); c.memoTag[s] == tag {
		if uint32(c.words[c.memoIdx[s]]) == tag {
			return true
		}
	}
	return c.containsSlow(line, tag)
}

// containsSlow scans the set for tag without side effects.
func (c *Cache) containsSlow(line uint64, tag uint32) bool {
	base := c.setBase(line)
	words := c.words[base : base+c.ways]
	for w := range words {
		if uint32(words[w]) == tag {
			return true
		}
	}
	return false
}

// Insert places line in the cache, evicting the least recently used way of
// its set if necessary. It returns the evicted line and true if an eviction
// of a valid line occurred. Inserting a line that is already present only
// refreshes its recency — the memoized fast path for that case is what the
// stream prefetcher hits three times per re-installed line.
func (c *Cache) Insert(line uint64) (evicted uint64, ok bool) {
	tag := tagOf(line)
	if s := tag & (cacheMemoEntries - 1); c.memoTag[s] == tag {
		if idx := c.memoIdx[s]; uint32(c.words[idx]) == tag {
			c.words[idx] = uint64(c.tick())<<32 | uint64(tag)
			return 0, false
		}
	}
	if line == c.missLine && c.clock == c.missClock {
		// Replay the victim recorded by the Lookup miss that caused this
		// fill; nothing has touched the cache in between (the clock guard),
		// so the rescan would reach the same way.
		idx := c.missVictim
		old := uint32(c.words[idx])
		c.words[idx] = uint64(c.tick())<<32 | uint64(tag)
		c.memoize(tag, int(idx))
		c.missLine = noLine
		if old != 0 {
			c.evictions++
			return uint64(old) - 1, true
		}
		return 0, false
	}
	return c.insertSlow(line, tag)
}

// insertSlow handles the non-memoized insert: refresh, fill an invalid way,
// or evict the LRU way. One pass finds the present way, the last invalid
// way and the LRU way together (victim selection is bit-compatible with the
// original two-array scan: the last invalid way wins if any way is invalid,
// otherwise the lowest use stamp; stamps are unique so ties cannot occur).
func (c *Cache) insertSlow(line uint64, tag uint32) (evicted uint64, ok bool) {
	return c.insertSlowAt(c.setBase(line), tag)
}

// insertSlowAt is insertSlow with the set base already resolved (InsertSpan
// steps it incrementally).
func (c *Cache) insertSlowAt(base int, tag uint32) (evicted uint64, ok bool) {
	stamp := c.tick()

	words := c.words[base : base+c.ways]
	invalid, lru := -1, 0
	lruUse := ^uint32(0)
	for w := range words {
		switch {
		case uint32(words[w]) == tag:
			words[w] = uint64(stamp)<<32 | uint64(tag)
			c.memoize(tag, base+w)
			return 0, false
		case uint32(words[w]) == 0:
			invalid = w
		case invalid < 0 && uint32(words[w]>>32) < lruUse:
			lru, lruUse = w, uint32(words[w]>>32)
		}
	}
	if invalid >= 0 {
		words[invalid] = uint64(stamp)<<32 | uint64(tag)
		c.memoize(tag, base+invalid)
		return 0, false
	}
	old := uint32(words[lru])
	words[lru] = uint64(stamp)<<32 | uint64(tag)
	c.memoize(tag, base+lru)
	c.evictions++
	return uint64(old) - 1, true
}

// InsertSpan inserts n consecutive lines starting at first, exactly as n
// successive Insert calls would (same per-cache operation order, so the
// resulting state and statistics are identical). The stream prefetcher
// re-installs its fill window on every stream hit; batching lets the span
// share the tag arithmetic and step the set index instead of recomputing it,
// and consecutive tags occupy consecutive memo slots, so the common
// all-refresh case runs without a single set scan.
func (c *Cache) InsertSpan(first uint64, n int) {
	tag := tagOf(first+uint64(n-1)) - uint32(n-1) // bound-check once
	base := c.setBase(first)
	limit := len(c.words)
	for i := 0; i < n; i++ {
		if s := tag & (cacheMemoEntries - 1); c.memoTag[s] == tag {
			if idx := c.memoIdx[s]; uint32(c.words[idx]) == tag {
				c.words[idx] = uint64(c.tick())<<32 | uint64(tag)
				tag++
				if base += c.ways; base == limit {
					base = 0
				}
				continue
			}
		}
		c.insertSlowAt(base, tag)
		tag++
		if base += c.ways; base == limit {
			base = 0
		}
	}
}

// memoize records the way that holds tag in the hit-way memo. A memo entry
// is authoritative only because every reader re-validates it against the
// backing word, so a memoized line that was since evicted or displaced
// simply misses the memo.
func (c *Cache) memoize(tag uint32, idx int) {
	s := tag & (cacheMemoEntries - 1)
	c.memoTag[s] = tag
	c.memoIdx[s] = int32(idx)
}

// Invalidate removes line from the cache if present.
func (c *Cache) Invalidate(line uint64) {
	tag := tagOf(line)
	base := c.setBase(line)
	for w := 0; w < c.ways; w++ {
		if uint32(c.words[base+w]) == tag {
			c.words[base+w] = 0
			// Invalidation does not tick the clock, so the miss-victim memo
			// must be voided explicitly.
			c.missLine = noLine
			return
		}
	}
}

// Reset invalidates all lines and clears statistics. An untouched cache is
// reset for free: every state-changing operation ticks the clock (inserts)
// or bumps the hit/miss counters (lookups), so clock == hits == misses == 0
// proves the tag array is still all-zero and the memset can be skipped —
// which is what makes recycling a socket model cheap for compute-only runs
// that never reach this level.
func (c *Cache) Reset() {
	if c.clock == 0 && c.hits == 0 && c.misses == 0 {
		c.missLine = noLine
		return
	}
	for i := range c.words {
		c.words[i] = 0
	}
	c.clock = 0
	for m := range c.memoTag {
		c.memoTag[m] = 0
		c.memoIdx[m] = 0
	}
	c.missLine = noLine
	c.missClock = 0
	c.missVictim = 0
	c.hits = 0
	c.misses = 0
	c.evictions = 0
}

// Hits returns the number of Lookup calls that found their line.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of Lookup calls that did not find their line.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns the number of valid lines displaced by Insert.
func (c *Cache) Evictions() uint64 { return c.evictions }

package memsim

import "fmt"

// Stats aggregates the counters a hardware PMU would expose. The paper's
// Table 3 and Table 4 are read directly from these fields.
type Stats struct {
	Cycles       uint64 // total simulated cycles
	Instructions uint64 // abstract instructions retired
	StallCycles  uint64 // cycles spent waiting on memory (subset of Cycles)
	IdleCycles   uint64 // cycles spent waiting for requests to arrive (subset of Cycles)

	Loads      uint64
	Stores     uint64
	Prefetches uint64

	L1Hits      uint64
	L2Hits      uint64
	L3Hits      uint64
	MemAccesses uint64 // demand or prefetch fills served from memory

	// MSHRHits counts demand accesses that found their line already being
	// fetched (outstanding miss): the data was requested early enough but
	// had not yet arrived. This is the "L1-D MSHR hits" row of Table 4.
	MSHRHits uint64
	// MSHRHitWaitCycles is the time demand accesses spent waiting on those
	// outstanding fills.
	MSHRHitWaitCycles uint64
	// MSHRFullStalls counts accesses that had to wait for a free MSHR.
	MSHRFullStalls uint64
	// MSHRFullWaitCycles is the time spent in those waits.
	MSHRFullWaitCycles uint64

	TLBMisses       uint64
	PrefetchDropped uint64 // prefetches filtered because the line was already on chip or in flight
	PrefetchIssued  uint64 // prefetches that allocated an MSHR

	// OffchipQueueExtra is the additional latency (cycles) injected by the
	// shared off-chip queue model under multi-thread contention.
	OffchipQueueExtra uint64

	// StreamFills counts lines installed by the hardware streaming
	// prefetcher model.
	StreamFills uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MSHRHitsPerKiloInstr returns MSHR hits per thousand instructions, the
// second row of the paper's Table 4.
func (s Stats) MSHRHitsPerKiloInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.MSHRHits) / float64(s.Instructions)
}

// MemoryAccessesPerLoad returns the fraction of demand loads that reached
// memory, a locality summary used in sanity checks.
func (s Stats) MemoryAccessesPerLoad() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.MemAccesses) / float64(s.Loads)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.Instructions += other.Instructions
	s.StallCycles += other.StallCycles
	s.IdleCycles += other.IdleCycles
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.Prefetches += other.Prefetches
	s.L1Hits += other.L1Hits
	s.L2Hits += other.L2Hits
	s.L3Hits += other.L3Hits
	s.MemAccesses += other.MemAccesses
	s.MSHRHits += other.MSHRHits
	s.MSHRHitWaitCycles += other.MSHRHitWaitCycles
	s.MSHRFullStalls += other.MSHRFullStalls
	s.MSHRFullWaitCycles += other.MSHRFullWaitCycles
	s.TLBMisses += other.TLBMisses
	s.PrefetchDropped += other.PrefetchDropped
	s.PrefetchIssued += other.PrefetchIssued
	s.OffchipQueueExtra += other.OffchipQueueExtra
	s.StreamFills += other.StreamFills
}

// MergeParallel combines the stats of workers that simulated concurrently on
// private cores: elapsed time is the slowest worker's cycle count (the
// workers run side by side, so wall-clock time is a max, not a sum), while
// every event counter — instructions, loads, hits, misses, prefetches — is
// summed across workers. In the merged result StallCycles (and the other
// wait-cycle counters) aggregate over all workers and may therefore exceed
// Cycles.
func MergeParallel(perWorker []Stats) Stats {
	var merged Stats
	for _, w := range perWorker {
		slowest := merged.Cycles
		if w.Cycles > slowest {
			slowest = w.Cycles
		}
		merged.Add(w)
		merged.Cycles = slowest
	}
	return merged
}

// String renders a compact one-line summary, useful in logs and test output.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d instr=%d ipc=%.2f loads=%d l1=%d l2=%d l3=%d mem=%d mshrHits=%d tlbMiss=%d",
		s.Cycles, s.Instructions, s.IPC(), s.Loads, s.L1Hits, s.L2Hits, s.L3Hits, s.MemAccesses, s.MSHRHits, s.TLBMisses)
}

package memsim

// Fabric models the shared path from the last-level cache to memory: the
// Nehalem "Global Queue" that holds at most LLCQueueEntries outstanding
// off-chip loads for the whole socket (Section 5.1.1 and Table 4 of the
// paper).
//
// The experiments simulate one representative hardware thread in detail and
// declare how many identical threads are active on each socket. When the
// aggregate off-chip demand — the representative thread's outstanding
// off-chip misses multiplied by the number of active threads sharing the
// socket — exceeds the queue capacity, each off-chip access observes a
// proportionally inflated latency. This analytic treatment of the other
// threads is the one deliberate departure from per-cycle simulation; it is
// what makes 64-thread sweeps tractable, and it reproduces the saturation at
// four threads on the Xeon (60 potential misses vs 32 queue entries) and the
// near-linear scaling on the T4.
type Fabric struct {
	queueEntries     int
	threadsPerSocket int

	extraCycles uint64 // total queueing delay added, for reporting
}

// NewFabric builds a fabric with the given off-chip queue capacity. The
// fabric starts with a single active thread.
func NewFabric(queueEntries int) *Fabric {
	return &Fabric{queueEntries: queueEntries, threadsPerSocket: 1}
}

// SetActiveThreads declares how many hardware threads currently share this
// socket's off-chip queue. Values below one are treated as one.
func (f *Fabric) SetActiveThreads(n int) {
	if n < 1 {
		n = 1
	}
	f.threadsPerSocket = n
}

// ActiveThreads returns the currently declared sharer count.
func (f *Fabric) ActiveThreads() int { return f.threadsPerSocket }

// QueueEntries returns the queue capacity.
func (f *Fabric) QueueEntries() int { return f.queueEntries }

// OffchipLatency returns the latency of an off-chip access when the issuing
// thread already has `outstanding` off-chip misses in flight (including the
// one being issued), given the uncontended latency base.
func (f *Fabric) OffchipLatency(base uint64, outstanding int) uint64 {
	if outstanding < 1 {
		outstanding = 1
	}
	demand := outstanding * f.threadsPerSocket
	if demand <= f.queueEntries {
		return base
	}
	// Latency grows with the overload ratio: each request waits, on
	// average, for the excess requests ahead of it to drain.
	lat := base * uint64(demand) / uint64(f.queueEntries)
	f.extraCycles += lat - base
	return lat
}

// ExtraCycles returns the cumulative queueing delay the fabric has added.
func (f *Fabric) ExtraCycles() uint64 { return f.extraCycles }

// Reset clears accumulated statistics (the sharer count is preserved).
func (f *Fabric) Reset() { f.extraCycles = 0 }

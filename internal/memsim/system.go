package memsim

import "fmt"

// System represents one socket: a shared last-level cache and a shared
// off-chip load queue, from which any number of representative cores can be
// created. Multi-threaded experiments simulate a single representative
// hardware thread in detail and tell the System how many identical threads
// are active; see Fabric for how that contention is applied.
type System struct {
	cfg    Config
	l3     *Cache
	fabric *Fabric

	activeThreads int
}

// NewSystem validates cfg and builds a socket model.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		cfg:           cfg,
		l3:            NewCache("L3", cfg.L3),
		fabric:        NewFabric(cfg.LLCQueueEntries),
		activeThreads: 1,
	}, nil
}

// MustSystem is NewSystem for known-good configurations; it panics on error.
func MustSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(fmt.Sprintf("memsim: %v", err))
	}
	return s
}

// Config returns the socket configuration.
func (s *System) Config() *Config { return &s.cfg }

// L3 returns the shared last-level cache.
func (s *System) L3() *Cache { return s.l3 }

// Fabric returns the shared off-chip queue model.
func (s *System) Fabric() *Fabric { return s.fabric }

// NewCore creates a representative hardware thread attached to this socket.
func (s *System) NewCore() *Core {
	return newCore(&s.cfg, s.l3, s.fabric)
}

// SetActiveThreads declares the total number of software threads running on
// this socket and derives both the off-chip queue sharing and the SMT sharing
// that the given representative core should use. Threads are assigned to
// physical cores first (one per core), then to SMT contexts, matching the
// paper's thread-placement methodology.
func (s *System) SetActiveThreads(total int, core *Core) {
	if total < 1 {
		total = 1
	}
	s.activeThreads = total
	s.fabric.SetActiveThreads(total)
	smt := 1
	if total > s.cfg.Cores {
		// Ceiling division: how many contexts share the busiest core.
		smt = (total + s.cfg.Cores - 1) / s.cfg.Cores
		if smt > s.cfg.SMTPerCore {
			smt = s.cfg.SMTPerCore
		}
	}
	if core != nil {
		core.SetSMTSharers(smt)
	}
}

// ActiveThreads returns the currently declared thread count.
func (s *System) ActiveThreads() int { return s.activeThreads }

// Reset clears the shared cache and fabric statistics.
func (s *System) Reset() {
	s.l3.Reset()
	s.fabric.Reset()
}

package memsim

// mshrEntry tracks one outstanding L1-D miss.
type mshrEntry struct {
	line    uint64
	ready   uint64 // cycle at which the fill arrives
	offchip bool   // true if the fill comes from memory (occupies the LLC queue)
	valid   bool
}

// MSHRFile models the per-core L1-D miss status handling registers. Every
// miss that is outstanding (issued but not yet filled) occupies one entry;
// when all entries are busy no further miss — demand or prefetch — can be
// issued, which is exactly the mechanism that caps per-core MLP in the paper.
type MSHRFile struct {
	entries []mshrEntry
}

// NewMSHRFile returns a file with n entries.
func NewMSHRFile(n int) *MSHRFile {
	return &MSHRFile{entries: make([]mshrEntry, n)}
}

// Size returns the number of registers.
func (m *MSHRFile) Size() int { return len(m.entries) }

// Lookup returns the entry tracking line, or nil.
func (m *MSHRFile) Lookup(line uint64) *mshrEntry {
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].line == line {
			return &m.entries[i]
		}
	}
	return nil
}

// Allocate records a new outstanding miss. It returns false if every entry is
// busy; the caller must stall until EarliestReady and drain before retrying.
func (m *MSHRFile) Allocate(line, ready uint64, offchip bool) bool {
	for i := range m.entries {
		if !m.entries[i].valid {
			m.entries[i] = mshrEntry{line: line, ready: ready, offchip: offchip, valid: true}
			return true
		}
	}
	return false
}

// Full reports whether every register is occupied.
func (m *MSHRFile) Full() bool {
	for i := range m.entries {
		if !m.entries[i].valid {
			return false
		}
	}
	return true
}

// Outstanding returns the number of occupied registers.
func (m *MSHRFile) Outstanding() int {
	n := 0
	for i := range m.entries {
		if m.entries[i].valid {
			n++
		}
	}
	return n
}

// OutstandingOffchip returns the number of occupied registers whose fills
// come from off-chip memory. The Fabric uses this to model contention for the
// shared LLC queue.
func (m *MSHRFile) OutstandingOffchip() int {
	n := 0
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].offchip {
			n++
		}
	}
	return n
}

// EarliestReady returns the smallest ready cycle among occupied entries and
// true, or 0 and false if the file is empty.
func (m *MSHRFile) EarliestReady() (uint64, bool) {
	var best uint64
	found := false
	for i := range m.entries {
		if !m.entries[i].valid {
			continue
		}
		if !found || m.entries[i].ready < best {
			best = m.entries[i].ready
			found = true
		}
	}
	return best, found
}

// Drain removes every entry whose fill has arrived by cycle now and invokes
// fill for each completed line (oldest-ready first is not required; fills are
// order-independent).
func (m *MSHRFile) Drain(now uint64, fill func(line uint64)) {
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].ready <= now {
			line := m.entries[i].line
			m.entries[i] = mshrEntry{}
			if fill != nil {
				fill(line)
			}
		}
	}
}

// Reset clears all entries.
func (m *MSHRFile) Reset() {
	for i := range m.entries {
		m.entries[i] = mshrEntry{}
	}
}

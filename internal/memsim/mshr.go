package memsim

import "amac/internal/prof"

// mshrEntry tracks one outstanding L1-D miss.
type mshrEntry struct {
	line    uint64
	ready   uint64   // cycle at which the fill arrives
	cat     prof.Cat // attribution category of the fill level (CatDRAM = off-chip)
	offchip bool     // true if the fill comes from memory (occupies the LLC queue)
	valid   bool
}

// MSHRFile models the per-core L1-D miss status handling registers. Every
// miss that is outstanding (issued but not yet filled) occupies one entry;
// when all entries are busy no further miss — demand or prefetch — can be
// issued, which is exactly the mechanism that caps per-core MLP in the paper.
//
// The file is consulted on every simulated access (Drain runs at the top of
// every demand load), so it keeps running counters — outstanding entries,
// outstanding off-chip entries, and the earliest ready cycle — that let the
// common cases (file empty, no fill due yet) exit without scanning.
type MSHRFile struct {
	entries []mshrEntry

	outstanding int
	offchip     int
	// minReady is the smallest ready cycle among valid entries; meaningful
	// only when outstanding > 0. Allocate and Expedite lower it, Drain
	// recomputes it, so it is always exact, never just a bound.
	minReady uint64

	// memoLine/memoIdx map a line's low bits to the entry tracking it, so
	// the prefetch-then-demand pattern resolves its MSHR hit in one compare.
	// Lines are unique in the file (Allocate only runs after a Lookup miss),
	// and entries are validated before use, so a drained or reused entry
	// simply misses the memo.
	memoLine [mshrMemoEntries]uint64
	memoIdx  [mshrMemoEntries]int
}

// mshrMemoEntries is the lookup memo size (a power of two).
const mshrMemoEntries = 8

// NewMSHRFile returns a file with n entries.
func NewMSHRFile(n int) *MSHRFile {
	return &MSHRFile{entries: make([]mshrEntry, n)}
}

// Size returns the number of registers.
func (m *MSHRFile) Size() int { return len(m.entries) }

// Lookup returns the entry tracking line, or nil.
func (m *MSHRFile) Lookup(line uint64) *mshrEntry {
	if m.outstanding == 0 {
		return nil
	}
	if s := line & (mshrMemoEntries - 1); m.memoLine[s] == line {
		if e := &m.entries[m.memoIdx[s]]; e.valid && e.line == line {
			return e
		}
	}
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].line == line {
			s := line & (mshrMemoEntries - 1)
			m.memoLine[s] = line
			m.memoIdx[s] = i
			return &m.entries[i]
		}
	}
	return nil
}

// Expedite lowers an outstanding entry's ready cycle: the demand access that
// hit the entry observed the data (logically) arrive early once out-of-order
// hiding shortened the visible stall. Entries must only be re-timed through
// this method so the earliest-ready bound stays exact.
func (m *MSHRFile) Expedite(e *mshrEntry, ready uint64) {
	e.ready = ready
	if ready < m.minReady {
		m.minReady = ready
	}
}

// Allocate records a new outstanding miss whose fill comes from the level
// src identifies (prof.CatDRAM marks an off-chip fill, which occupies the
// shared LLC queue). It returns false if every entry is busy; the caller
// must stall until EarliestReady and drain before retrying.
func (m *MSHRFile) Allocate(line, ready uint64, src prof.Cat) bool {
	offchip := src == prof.CatDRAM
	for i := range m.entries {
		if !m.entries[i].valid {
			m.entries[i] = mshrEntry{line: line, ready: ready, cat: src, offchip: offchip, valid: true}
			if m.outstanding == 0 || ready < m.minReady {
				m.minReady = ready
			}
			m.outstanding++
			if offchip {
				m.offchip++
			}
			s := line & (mshrMemoEntries - 1)
			m.memoLine[s] = line
			m.memoIdx[s] = i
			return true
		}
	}
	return false
}

// Full reports whether every register is occupied.
func (m *MSHRFile) Full() bool { return m.outstanding == len(m.entries) }

// Outstanding returns the number of misses currently in flight.
func (m *MSHRFile) Outstanding() int { return m.outstanding }

// OutstandingOffchip returns the number of occupied registers whose fills
// come from off-chip memory. The Fabric uses this to model contention for the
// shared LLC queue.
func (m *MSHRFile) OutstandingOffchip() int { return m.offchip }

// EarliestReady returns the smallest ready cycle among occupied entries and
// true, or 0 and false if the file is empty.
func (m *MSHRFile) EarliestReady() (uint64, bool) {
	if m.outstanding == 0 {
		return 0, false
	}
	return m.minReady, true
}

// Drain removes every entry whose fill has arrived by cycle now and invokes
// fill for each completed line, in entry order (fill order determines LRU
// stamps downstream, so it must stay stable). The empty and nothing-due-yet
// cases exit without touching the entries.
func (m *MSHRFile) Drain(now uint64, fill func(line uint64)) {
	if m.outstanding == 0 || now < m.minReady {
		return
	}
	next := ^uint64(0)
	for i := range m.entries {
		if !m.entries[i].valid {
			continue
		}
		if m.entries[i].ready <= now {
			line := m.entries[i].line
			if m.entries[i].offchip {
				m.offchip--
			}
			m.outstanding--
			m.entries[i] = mshrEntry{}
			if fill != nil {
				fill(line)
			}
			continue
		}
		if m.entries[i].ready < next {
			next = m.entries[i].ready
		}
	}
	m.minReady = next
}

// Reset clears all entries.
func (m *MSHRFile) Reset() {
	for i := range m.entries {
		m.entries[i] = mshrEntry{}
	}
	m.outstanding = 0
	m.offchip = 0
	m.minReady = 0
	for i := range m.memoLine {
		m.memoLine[i] = 0
		m.memoIdx[i] = 0
	}
}

package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCacheConfig(sizeBytes, ways int, lat uint64) CacheConfig {
	return CacheConfig{SizeBytes: sizeBytes, Ways: ways, LatencyCycles: lat}
}

func TestCacheConfigSets(t *testing.T) {
	cfg := testCacheConfig(32<<10, 8, 4)
	if got, want := cfg.Sets(), 64; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
	if err := cfg.validate("L1"); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestCacheConfigValidateRejectsDegenerateConfigs(t *testing.T) {
	cfg := testCacheConfig(3*LineSize*2, 2, 1) // 3 sets: allowed (the Xeon L3 has 12288)
	if err := cfg.validate("odd"); err != nil {
		t.Fatalf("non-power-of-two set count should be accepted: %v", err)
	}
	if err := (CacheConfig{}).validate("zero"); err == nil {
		t.Fatal("expected error for zero-size cache")
	}
	if err := testCacheConfig(LineSize, 4, 1).validate("nosets"); err == nil {
		t.Fatal("expected error when the configuration yields no sets")
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := NewCache("t", testCacheConfig(4<<10, 4, 4))
	const line = 12345
	if c.Lookup(line) {
		t.Fatal("line should miss in an empty cache")
	}
	c.Insert(line)
	if !c.Lookup(line) {
		t.Fatal("line should hit after insert")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheContainsDoesNotTouchStats(t *testing.T) {
	c := NewCache("t", testCacheConfig(4<<10, 4, 4))
	c.Insert(7)
	h, m := c.Hits(), c.Misses()
	if !c.Contains(7) || c.Contains(8) {
		t.Fatal("Contains gave wrong answers")
	}
	if c.Hits() != h || c.Misses() != m {
		t.Fatal("Contains must not update statistics")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-by-set: 2 ways, 2 sets. Lines mapping to set 0 are even.
	c := NewCache("t", testCacheConfig(2*2*LineSize, 2, 1))
	c.Insert(0) // set 0
	c.Insert(2) // set 0
	// Touch line 0 so line 2 becomes LRU.
	if !c.Lookup(0) {
		t.Fatal("line 0 should be resident")
	}
	evicted, ok := c.Insert(4) // set 0, must evict line 2
	if !ok || evicted != 2 {
		t.Fatalf("evicted %d (ok=%v), want line 2", evicted, ok)
	}
	if !c.Contains(0) || !c.Contains(4) || c.Contains(2) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheInsertExistingLineDoesNotEvict(t *testing.T) {
	c := NewCache("t", testCacheConfig(2*2*LineSize, 2, 1))
	c.Insert(0)
	c.Insert(2)
	if _, ok := c.Insert(0); ok {
		t.Fatal("re-inserting a resident line must not evict")
	}
	if c.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0", c.Evictions())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("t", testCacheConfig(4<<10, 4, 4))
	c.Insert(42)
	c.Invalidate(42)
	if c.Contains(42) {
		t.Fatal("line still present after Invalidate")
	}
	// Invalidating an absent line must be a no-op.
	c.Invalidate(43)
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", testCacheConfig(4<<10, 4, 4))
	c.Insert(1)
	c.Lookup(1)
	c.Lookup(2)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.Contains(1) {
		t.Fatal("Reset did not clear state")
	}
}

func TestCacheCapacityNeverExceeded(t *testing.T) {
	const ways, sets = 4, 8
	c := NewCache("t", testCacheConfig(ways*sets*LineSize, ways, 1))
	rng := rand.New(rand.NewSource(1))
	resident := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		line := uint64(rng.Intn(4096))
		evicted, ok := c.Insert(line)
		resident[line] = true
		if ok {
			delete(resident, evicted)
		}
		if len(resident) > ways*sets {
			t.Fatalf("resident set grew to %d, capacity is %d", len(resident), ways*sets)
		}
	}
	// Everything we believe resident must be reported resident.
	for line := range resident {
		if !c.Contains(line) {
			t.Fatalf("line %d should be resident", line)
		}
	}
}

func TestCacheSetIsolationProperty(t *testing.T) {
	// Lines in different sets never evict each other.
	const ways, sets = 2, 16
	f := func(seed int64) bool {
		c := NewCache("t", testCacheConfig(ways*sets*LineSize, ways, 1))
		rng := rand.New(rand.NewSource(seed))
		target := uint64(3) // set 3
		c.Insert(target)
		for i := 0; i < 200; i++ {
			// Insert lines that map to other sets only.
			line := uint64(rng.Intn(1<<20))*sets + 5 // set 5
			c.Insert(line)
		}
		return c.Contains(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLineHelper(t *testing.T) {
	if Line(0) != 0 || Line(63) != 0 || Line(64) != 1 || Line(128) != 2 {
		t.Fatal("Line() boundaries wrong")
	}
}

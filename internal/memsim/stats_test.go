package memsim

import "testing"

func TestMergeParallel(t *testing.T) {
	per := []Stats{
		{Cycles: 100, Instructions: 10, Loads: 3, StallCycles: 40, L1Hits: 2},
		{Cycles: 250, Instructions: 20, Loads: 5, StallCycles: 90, L1Hits: 1},
		{Cycles: 50, Instructions: 5, Loads: 1, StallCycles: 10, L1Hits: 7},
	}
	m := MergeParallel(per)
	if m.Cycles != 250 {
		t.Fatalf("merged Cycles = %d, want the slowest worker's 250", m.Cycles)
	}
	if m.Instructions != 35 || m.Loads != 9 || m.L1Hits != 10 {
		t.Fatalf("event counters must sum: %+v", m)
	}
	if m.StallCycles != 140 {
		t.Fatalf("StallCycles = %d, want aggregate 140", m.StallCycles)
	}
}

func TestMergeParallelEmpty(t *testing.T) {
	if m := MergeParallel(nil); m != (Stats{}) {
		t.Fatalf("merging no workers should be zero, got %+v", m)
	}
	if m := MergeParallel([]Stats{}); m != (Stats{}) {
		t.Fatalf("merging an empty slice should be zero, got %+v", m)
	}
}

func TestMergeParallelSingleWorker(t *testing.T) {
	one := Stats{Cycles: 77, Instructions: 11, StallCycles: 30, IdleCycles: 5, Loads: 4, L1Hits: 3, MemAccesses: 1}
	if m := MergeParallel([]Stats{one}); m != one {
		t.Fatalf("single-worker merge must be the identity: %+v != %+v", m, one)
	}
}

func TestMergeParallelZeroLookupWorkers(t *testing.T) {
	// Workers whose shards were empty finished instantly with all-zero
	// counters; merging them must not disturb the busy workers' numbers,
	// and the elapsed cycles stay the slowest busy worker's.
	busy := Stats{Cycles: 500, Instructions: 40, Loads: 9, StallCycles: 120}
	m := MergeParallel([]Stats{{}, busy, {}, {}})
	if m != busy {
		t.Fatalf("zero-lookup workers must merge as no-ops: %+v vs %+v", m, busy)
	}
	// All-idle degenerate case: everything zero.
	if m := MergeParallel([]Stats{{}, {}}); m != (Stats{}) {
		t.Fatalf("all-zero workers should merge to zero, got %+v", m)
	}
}

func TestMergeParallelSumsIdleCycles(t *testing.T) {
	// IdleCycles (request-wait time of the serving layer) aggregates like
	// the other wait counters: summed across workers, not maxed.
	m := MergeParallel([]Stats{{Cycles: 10, IdleCycles: 4}, {Cycles: 30, IdleCycles: 7}})
	if m.IdleCycles != 11 || m.Cycles != 30 {
		t.Fatalf("merged idle=%d cycles=%d, want 11/30", m.IdleCycles, m.Cycles)
	}
}

func TestShareLLC(t *testing.T) {
	cfg := XeonX5670()
	quarter := cfg.ShareLLC(4)
	if quarter.L3.SizeBytes != cfg.L3.SizeBytes/4 {
		t.Fatalf("ShareLLC(4) = %d bytes, want %d", quarter.L3.SizeBytes, cfg.L3.SizeBytes/4)
	}
	if err := quarter.Validate(); err != nil {
		t.Fatalf("shared config invalid: %v", err)
	}
	if got := cfg.ShareLLC(1); got.L3.SizeBytes != cfg.L3.SizeBytes {
		t.Fatal("ShareLLC(1) must be a no-op")
	}
	// A huge worker count must clamp to at least one set, not zero out.
	tiny := cfg.ShareLLC(1 << 30)
	if tiny.L3.Sets() < 1 {
		t.Fatalf("ShareLLC must keep at least one set, got %d", tiny.L3.Sets())
	}
	if err := tiny.Validate(); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
}

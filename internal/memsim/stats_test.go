package memsim

import "testing"

func TestMergeParallel(t *testing.T) {
	per := []Stats{
		{Cycles: 100, Instructions: 10, Loads: 3, StallCycles: 40, L1Hits: 2},
		{Cycles: 250, Instructions: 20, Loads: 5, StallCycles: 90, L1Hits: 1},
		{Cycles: 50, Instructions: 5, Loads: 1, StallCycles: 10, L1Hits: 7},
	}
	m := MergeParallel(per)
	if m.Cycles != 250 {
		t.Fatalf("merged Cycles = %d, want the slowest worker's 250", m.Cycles)
	}
	if m.Instructions != 35 || m.Loads != 9 || m.L1Hits != 10 {
		t.Fatalf("event counters must sum: %+v", m)
	}
	if m.StallCycles != 140 {
		t.Fatalf("StallCycles = %d, want aggregate 140", m.StallCycles)
	}
}

func TestMergeParallelEmpty(t *testing.T) {
	if m := MergeParallel(nil); m != (Stats{}) {
		t.Fatalf("merging no workers should be zero, got %+v", m)
	}
}

func TestShareLLC(t *testing.T) {
	cfg := XeonX5670()
	quarter := cfg.ShareLLC(4)
	if quarter.L3.SizeBytes != cfg.L3.SizeBytes/4 {
		t.Fatalf("ShareLLC(4) = %d bytes, want %d", quarter.L3.SizeBytes, cfg.L3.SizeBytes/4)
	}
	if err := quarter.Validate(); err != nil {
		t.Fatalf("shared config invalid: %v", err)
	}
	if got := cfg.ShareLLC(1); got.L3.SizeBytes != cfg.L3.SizeBytes {
		t.Fatal("ShareLLC(1) must be a no-op")
	}
	// A huge worker count must clamp to at least one set, not zero out.
	tiny := cfg.ShareLLC(1 << 30)
	if tiny.L3.Sets() < 1 {
		t.Fatalf("ShareLLC must keep at least one set, got %d", tiny.L3.Sets())
	}
	if err := tiny.Validate(); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
}

package memsim

import (
	"errors"
	"fmt"
)

// Addr is a simulated physical address. Addresses are produced by the arena
// allocator; the simulator only interprets them at cache-line and page
// granularity.
type Addr uint64

// LineSize is the cache-line size in bytes used throughout the simulator.
// Both machines evaluated in the paper use 64-byte lines, and all data
// structure nodes in the paper are aligned to this boundary.
const LineSize = 64

// lineShift converts an address to a cache-line number.
const lineShift = 6

// Line returns the cache-line number containing a.
func Line(a Addr) uint64 { return uint64(a) >> lineShift }

// CacheConfig describes one level of a set-associative cache.
type CacheConfig struct {
	// SizeBytes is the total capacity of the cache.
	SizeBytes int
	// Ways is the associativity; SizeBytes/(Ways*LineSize) gives the number
	// of sets, which need not be a power of two (the real Xeon L3 has
	// 12288 sets).
	Ways int
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles uint64
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int {
	if c.Ways <= 0 {
		return 0
	}
	return c.SizeBytes / (c.Ways * LineSize)
}

func (c CacheConfig) validate(name string) error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("memsim: %s: size and ways must be positive", name)
	}
	if c.Sets() <= 0 {
		return fmt.Errorf("memsim: %s: configuration yields no sets", name)
	}
	return nil
}

// TLBConfig describes the data TLB.
type TLBConfig struct {
	// Entries is the number of page translations held (fully associative).
	Entries int
	// PageBytes is the page size; the paper uses large VM pages (2 MB on
	// x86, 4 MB on SPARC).
	PageBytes int
	// MissPenaltyCycles is charged for a page-table walk.
	MissPenaltyCycles uint64
}

// Config describes a simulated machine: one or more identical cores sharing a
// last-level cache and an off-chip access queue.
type Config struct {
	// Name identifies the configuration in reports (e.g. "Xeon x5670").
	Name string

	// FreqHz is the core clock, used only to convert cycles into seconds
	// for the throughput figures.
	FreqHz float64

	// IssueWidth is the peak number of instructions the core can retire per
	// cycle; it determines how much latency the out-of-order window can
	// hide around a demand miss.
	IssueWidth int

	// SustainedIPC is the issue rate the compute portions of the workloads
	// actually sustain (dependent address arithmetic, comparisons and
	// branches never reach the peak width; the paper's Table 3 measures at
	// most 2.4 IPC on the 4-wide Xeon). Zero selects 0.6 * IssueWidth.
	SustainedIPC float64

	L1D CacheConfig
	L2  CacheConfig
	L3  CacheConfig

	// MemLatencyCycles is the uncontended latency of an off-chip access,
	// measured from the L3 miss.
	MemLatencyCycles uint64

	// L1MSHRs is the number of L1-D miss-status-handling registers per
	// core: the maximum number of outstanding L1-D misses, and therefore
	// the per-core ceiling on memory-level parallelism (10 on Nehalem).
	L1MSHRs int

	// LLCQueueEntries is the capacity of the shared off-chip load queue
	// (the Nehalem "Global Queue" holds 32 load entries). When the
	// aggregate off-chip demand of all active threads exceeds it, off-chip
	// latency inflates; see Fabric.
	LLCQueueEntries int

	TLB TLBConfig

	// Cores is the number of physical cores per socket.
	Cores int
	// SMTPerCore is the number of hardware threads per core.
	SMTPerCore int
	// Sockets is the number of sockets available (the paper's "2+2"
	// experiment uses two sockets, each with its own LLC and queue).
	Sockets int

	// DropPrefetchOnCacheHit models the SPARC T4 behaviour of discarding
	// software prefetches whose data is already on chip (Section 5.5).
	DropPrefetchOnCacheHit bool

	// DisableStreamPrefetcher turns off the hardware streaming prefetcher
	// model. Both evaluated machines have one; it is what makes the
	// sequential input-relation scans nearly free while doing nothing for
	// the dependent pointer chases that the software techniques target.
	DisableStreamPrefetcher bool

	// StreamTrackers and StreamDistance size the streaming prefetcher:
	// how many independent sequential streams it follows and how many
	// lines ahead it runs. Zero values select 8 and 4.
	StreamTrackers int
	StreamDistance int
}

// Validate checks internal consistency of the configuration.
func (c *Config) Validate() error {
	if c == nil {
		return errors.New("memsim: nil config")
	}
	if err := c.L1D.validate("L1D"); err != nil {
		return err
	}
	if err := c.L2.validate("L2"); err != nil {
		return err
	}
	if err := c.L3.validate("L3"); err != nil {
		return err
	}
	if c.IssueWidth <= 0 {
		return errors.New("memsim: issue width must be positive")
	}
	if c.L1MSHRs <= 0 {
		return errors.New("memsim: need at least one L1 MSHR")
	}
	if c.LLCQueueEntries <= 0 {
		return errors.New("memsim: LLC queue must have at least one entry")
	}
	if c.TLB.Entries <= 0 || c.TLB.PageBytes <= 0 {
		return errors.New("memsim: TLB entries and page size must be positive")
	}
	if c.TLB.PageBytes&(c.TLB.PageBytes-1) != 0 {
		return errors.New("memsim: TLB page size must be a power of two")
	}
	if c.Cores <= 0 || c.SMTPerCore <= 0 || c.Sockets <= 0 {
		return errors.New("memsim: cores, SMT threads and sockets must be positive")
	}
	if c.FreqHz <= 0 {
		return errors.New("memsim: frequency must be positive")
	}
	if c.MemLatencyCycles == 0 {
		return errors.New("memsim: memory latency must be positive")
	}
	return nil
}

// ShareLLC returns a copy of the configuration whose L3 holds a 1/workers
// slice of the shared capacity. The parallel execution layer gives every
// worker a private System (Core, Cache and Fabric are not safe for concurrent
// use); shrinking each private L3 to its capacity share approximates workers
// whose partitions compete for one shared LLC. This is a documented first
// cut: it models capacity sharing but not inter-worker conflict misses or
// shared-line reuse. The slice is clamped so the cache keeps at least one
// set, and off-chip queue contention is modelled separately via
// System.SetActiveThreads.
func (c Config) ShareLLC(workers int) Config {
	if workers <= 1 {
		return c
	}
	share := c.L3.SizeBytes / workers
	min := c.L3.Ways * LineSize
	if share < min {
		share = min
	}
	c.L3.SizeBytes = share
	return c
}

// HardwareThreads returns the total number of hardware contexts on one socket.
func (c *Config) HardwareThreads() int { return c.Cores * c.SMTPerCore }

// XeonX5670 returns the model of the Intel Xeon x5670 (Westmere/Nehalem-class)
// socket used in the paper: 6 cores x 2 SMT at 2.93 GHz, 4-wide, 32 KB L1-D,
// 256 KB L2, 12 MB shared L3, 10 L1-D MSHRs, 32-entry off-chip load queue,
// 2 MB pages.
func XeonX5670() Config {
	return Config{
		Name:             "Xeon x5670",
		FreqHz:           2.93e9,
		IssueWidth:       4,
		SustainedIPC:     2.4,
		L1D:              CacheConfig{SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 4},
		L2:               CacheConfig{SizeBytes: 256 << 10, Ways: 8, LatencyCycles: 10},
		L3:               CacheConfig{SizeBytes: 12 << 20, Ways: 16, LatencyCycles: 38},
		MemLatencyCycles: 200,
		L1MSHRs:          10,
		LLCQueueEntries:  32,
		TLB: TLBConfig{
			Entries:           64,
			PageBytes:         2 << 20,
			MissPenaltyCycles: 30,
		},
		Cores:      6,
		SMTPerCore: 2,
		Sockets:    2,
	}
}

// SPARCT4 returns the model of the Oracle SPARC T4 socket used in the paper:
// 8 cores x 8 threads at 3 GHz, 2-wide, 16 KB L1-D, 128 KB L2, 4 MB shared L3,
// 4 MB pages. The T4's memory subsystem sustains many more outstanding
// off-chip requests than Nehalem's Global Queue, which is why the paper's
// Figure 8 scales with all eight cores; we model that with a larger queue.
// The T4 also drops software prefetches that already hit on chip.
func SPARCT4() Config {
	return Config{
		Name:             "SPARC T4",
		FreqHz:           3.0e9,
		IssueWidth:       2,
		SustainedIPC:     1.3,
		L1D:              CacheConfig{SizeBytes: 16 << 10, Ways: 4, LatencyCycles: 3},
		L2:               CacheConfig{SizeBytes: 128 << 10, Ways: 8, LatencyCycles: 12},
		L3:               CacheConfig{SizeBytes: 4 << 20, Ways: 16, LatencyCycles: 40},
		MemLatencyCycles: 220,
		L1MSHRs:          8,
		LLCQueueEntries:  128,
		TLB: TLBConfig{
			Entries:           128,
			PageBytes:         4 << 20,
			MissPenaltyCycles: 40,
		},
		Cores:                  8,
		SMTPerCore:             8,
		Sockets:                1,
		DropPrefetchOnCacheHit: true,
	}
}

package memsim

import "testing"

// testConfig returns a small, fast configuration convenient for unit tests:
// tiny caches so evictions happen quickly, short latencies that are easy to
// reason about, no out-of-order hiding unless a test enables it.
func testConfig() Config {
	return Config{
		Name:             "test",
		FreqHz:           1e9,
		IssueWidth:       1,
		SustainedIPC:     1,
		L1D:              CacheConfig{SizeBytes: 4 * LineSize, Ways: 1, LatencyCycles: 1},
		L2:               CacheConfig{SizeBytes: 16 * LineSize, Ways: 2, LatencyCycles: 10},
		L3:               CacheConfig{SizeBytes: 64 * LineSize, Ways: 4, LatencyCycles: 30},
		MemLatencyCycles: 100,
		L1MSHRs:          2,
		LLCQueueEntries:  8,
		TLB:              TLBConfig{Entries: 16, PageBytes: 1 << 20, MissPenaltyCycles: 0},
		Cores:            2,
		SMTPerCore:       2,
		Sockets:          1,
	}
}

func newTestCore(t *testing.T) (*System, *Core) {
	t.Helper()
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	c := sys.NewCore()
	c.SetOoOHideCycles(0)
	return sys, c
}

func TestInstrAdvancesByIssueWidth(t *testing.T) {
	cfg := testConfig()
	cfg.IssueWidth = 4
	cfg.SustainedIPC = 4
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.Instr(8)
	if c.Cycle() != 2 {
		t.Fatalf("8 instructions at width 4 should take 2 cycles, got %d", c.Cycle())
	}
	c.Instr(1)
	c.Instr(1)
	c.Instr(1)
	c.Instr(1)
	if c.Cycle() != 3 {
		t.Fatalf("fractional cycles lost: cycle = %d, want 3", c.Cycle())
	}
	if c.Stats().Instructions != 12 {
		t.Fatalf("Instructions = %d, want 12", c.Stats().Instructions)
	}
}

func TestColdLoadPaysFullMemoryLatency(t *testing.T) {
	_, c := newTestCore(t)
	c.Load(0, 8)
	// 1 instruction + L1 lat (1) + L2 lat (10) + L3 lat (30) + mem (100).
	want := uint64(1 + 1 + 10 + 30 + 100)
	if c.Cycle() != want {
		t.Fatalf("cold load took %d cycles, want %d", c.Cycle(), want)
	}
	s := c.Stats()
	if s.MemAccesses != 1 || s.L1Hits != 0 {
		t.Fatalf("stats after cold load: %+v", s)
	}
}

func TestRepeatLoadHitsL1(t *testing.T) {
	_, c := newTestCore(t)
	c.Load(0, 8)
	before := c.Cycle()
	c.Load(8, 8) // same cache line
	if got := c.Cycle() - before; got != 1+1 {
		t.Fatalf("L1 hit took %d cycles, want 2 (instr+L1)", got)
	}
	if c.Stats().L1Hits != 1 {
		t.Fatalf("L1Hits = %d, want 1", c.Stats().L1Hits)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	_, c := newTestCore(t)
	c.Prefetch(0)
	// Burn enough compute for the prefetch to complete: latency is 141.
	c.Instr(200)
	before := c.Cycle()
	c.Load(0, 8)
	if got := c.Cycle() - before; got != 2 {
		t.Fatalf("prefetched load took %d cycles, want 2", got)
	}
	s := c.Stats()
	if s.PrefetchIssued != 1 {
		t.Fatalf("PrefetchIssued = %d, want 1", s.PrefetchIssued)
	}
	if s.MSHRHits != 0 {
		t.Fatalf("load after completed prefetch should not be an MSHR hit, got %d", s.MSHRHits)
	}
}

func TestEarlyLoadIsMSHRHit(t *testing.T) {
	_, c := newTestCore(t)
	c.Prefetch(0)
	c.Instr(10) // not enough to cover the ~141-cycle fill
	before := c.Cycle()
	c.Load(0, 8)
	s := c.Stats()
	if s.MSHRHits != 1 {
		t.Fatalf("MSHRHits = %d, want 1", s.MSHRHits)
	}
	elapsed := c.Cycle() - before
	if elapsed == 0 || elapsed >= 141 {
		t.Fatalf("MSHR hit should wait for the remaining latency only, waited %d", elapsed)
	}
}

func TestPrefetchDroppedWhenLineResident(t *testing.T) {
	_, c := newTestCore(t)
	c.Load(0, 8)
	c.Prefetch(0)
	if c.Stats().PrefetchDropped != 1 {
		t.Fatalf("PrefetchDropped = %d, want 1", c.Stats().PrefetchDropped)
	}
	// A second prefetch of an in-flight line is also dropped.
	c.Prefetch(LineSize * 100)
	c.Prefetch(LineSize * 100)
	if c.Stats().PrefetchDropped != 2 {
		t.Fatalf("PrefetchDropped = %d, want 2", c.Stats().PrefetchDropped)
	}
}

func TestMSHRLimitCapsInFlightPrefetches(t *testing.T) {
	_, c := newTestCore(t) // 2 MSHRs
	c.Prefetch(0 * LineSize)
	c.Prefetch(100 * LineSize)
	if c.MSHROutstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", c.MSHROutstanding())
	}
	before := c.Cycle()
	c.Prefetch(200 * LineSize) // must stall until an MSHR frees
	if c.Stats().MSHRFullStalls != 1 {
		t.Fatalf("MSHRFullStalls = %d, want 1", c.Stats().MSHRFullStalls)
	}
	if c.Cycle() <= before {
		t.Fatal("third prefetch should have stalled the core")
	}
}

func TestT4DropsPrefetchThatHitsOnChip(t *testing.T) {
	cfg := testConfig()
	cfg.DropPrefetchOnCacheHit = true
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.SetOoOHideCycles(0)

	// Load a line, then evict it from L1 by loading conflicting lines
	// (L1 is direct-mapped with 4 sets in the test config).
	c.Load(0, 8)
	c.Load(4*LineSize, 8)
	if c.L1().Contains(0) {
		t.Skip("line unexpectedly still in L1; eviction pattern changed")
	}
	c.Prefetch(0) // hits in L2/L3, so the T4 drops it
	if c.Stats().PrefetchIssued != 0 {
		t.Fatalf("PrefetchIssued = %d, want 0 (dropped on chip)", c.Stats().PrefetchIssued)
	}
}

func TestSMTSharersSlowIssueAndSplitMSHRs(t *testing.T) {
	cfg := testConfig()
	cfg.IssueWidth = 2
	cfg.SustainedIPC = 2
	cfg.L1MSHRs = 4
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.SetSMTSharers(2)
	if c.SMTSharers() != 2 {
		t.Fatalf("SMTSharers = %d", c.SMTSharers())
	}
	c.Instr(4)
	if c.Cycle() != 4 {
		t.Fatalf("4 instructions at width 2 shared by 2 should take 4 cycles, got %d", c.Cycle())
	}
	if c.mshr.Size() != 2 {
		t.Fatalf("MSHR budget = %d, want 2", c.mshr.Size())
	}
}

func TestOoOHidingShortensDemandStalls(t *testing.T) {
	cfg := testConfig()
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.SetOoOHideCycles(1000) // hide everything
	c.Load(0, 8)
	if c.Cycle() != 1 {
		t.Fatalf("with full hiding a load should cost only its instruction, got %d cycles", c.Cycle())
	}
}

func TestMultiLineLoadTouchesEachLine(t *testing.T) {
	_, c := newTestCore(t)
	c.Load(LineSize-8, 16) // spans two lines
	s := c.Stats()
	if s.MemAccesses != 2 {
		t.Fatalf("MemAccesses = %d, want 2 (two lines)", s.MemAccesses)
	}
}

func TestResetStatsKeepsWarmCaches(t *testing.T) {
	_, c := newTestCore(t)
	c.Load(0, 8)
	c.ResetStats()
	if c.Cycle() != 0 || c.Stats().Loads != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	c.Load(0, 8)
	if c.Stats().L1Hits != 1 {
		t.Fatal("cache contents should survive ResetStats")
	}
	c.Reset()
	c.Load(0, 8)
	if c.Stats().L1Hits != 0 {
		t.Fatal("Reset should cold-start the caches")
	}
}

func TestTouchWarmsWithoutCharging(t *testing.T) {
	_, c := newTestCore(t)
	c.Touch(0, 128)
	if c.Cycle() != 0 || c.Stats().Loads != 0 {
		t.Fatal("Touch must not charge time or stats")
	}
	c.Load(0, 8)
	if c.Stats().L1Hits != 1 {
		t.Fatal("Touch should have installed the line")
	}
}

func TestStoreChargedLikeLoad(t *testing.T) {
	_, c := newTestCore(t)
	c.Store(0, 8)
	if c.Stats().Stores != 1 || c.Cycle() == 0 {
		t.Fatalf("store not charged: %+v", c.Stats())
	}
}

func TestSystemSetActiveThreads(t *testing.T) {
	cfg := testConfig() // 2 cores, 2 SMT
	sys := MustSystem(cfg)
	c := sys.NewCore()

	sys.SetActiveThreads(2, c)
	if c.SMTSharers() != 1 {
		t.Fatalf("2 threads on 2 cores should not share, got %d sharers", c.SMTSharers())
	}
	sys.SetActiveThreads(3, c)
	if c.SMTSharers() != 2 {
		t.Fatalf("3 threads on 2 cores: busiest core has 2, got %d", c.SMTSharers())
	}
	if sys.Fabric().ActiveThreads() != 3 {
		t.Fatalf("fabric sharers = %d, want 3", sys.Fabric().ActiveThreads())
	}
	if sys.ActiveThreads() != 3 {
		t.Fatalf("ActiveThreads = %d, want 3", sys.ActiveThreads())
	}
}

func TestSecondsUsesFrequency(t *testing.T) {
	cfg := testConfig()
	cfg.FreqHz = 2e9
	sys := MustSystem(cfg)
	c := sys.NewCore()
	c.Instr(4) // 4 cycles at width 1
	if got := c.Seconds(); got != 2e-9 {
		t.Fatalf("Seconds = %g, want 2e-9", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.L1MSHRs = 0 },
		func(c *Config) { c.LLCQueueEntries = 0 },
		func(c *Config) { c.TLB.Entries = 0 },
		func(c *Config) { c.TLB.PageBytes = 3000 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.FreqHz = 0 },
		func(c *Config) { c.MemLatencyCycles = 0 },
		func(c *Config) { c.L1D.SizeBytes = 0 },
	}
	for i, mutate := range cases {
		bad := testConfig()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err == nil {
		t.Fatal("nil config accepted")
	}
}

func TestPresetConfigsValid(t *testing.T) {
	for _, cfg := range []Config{XeonX5670(), SPARCT4()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	x := XeonX5670()
	if x.L1MSHRs != 10 || x.LLCQueueEntries != 32 || x.Cores != 6 {
		t.Fatalf("Xeon parameters drifted from the paper: %+v", x)
	}
	if x.HardwareThreads() != 12 {
		t.Fatalf("Xeon hardware threads = %d, want 12", x.HardwareThreads())
	}
	t4 := SPARCT4()
	if t4.Cores != 8 || t4.SMTPerCore != 8 || !t4.DropPrefetchOnCacheHit {
		t.Fatalf("T4 parameters drifted from the paper: %+v", t4)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Cycles: 200, Instructions: 100, MSHRHits: 5}
	if s.IPC() != 0.5 {
		t.Fatalf("IPC = %v", s.IPC())
	}
	if s.MSHRHitsPerKiloInstr() != 50 {
		t.Fatalf("MSHR hits/k-instr = %v", s.MSHRHitsPerKiloInstr())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.MSHRHitsPerKiloInstr() != 0 || zero.MemoryAccessesPerLoad() != 0 {
		t.Fatal("zero stats should yield zero ratios")
	}
	other := Stats{Cycles: 1, Instructions: 2, Loads: 3, MemAccesses: 1}
	s.Add(other)
	if s.Cycles != 201 || s.Instructions != 102 || s.Loads != 3 {
		t.Fatalf("Add produced %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String should render something")
	}
	if other.MemoryAccessesPerLoad() <= 0 {
		t.Fatal("MemoryAccessesPerLoad should be positive")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		sys := MustSystem(testConfig())
		c := sys.NewCore()
		for i := 0; i < 500; i++ {
			a := Addr((i * 37 % 101) * LineSize)
			if i%3 == 0 {
				c.Prefetch(a)
			} else {
				c.Load(a, 8)
			}
			c.Instr(i % 7)
		}
		return c.Cycle()
	}
	if run() != run() {
		t.Fatal("identical access sequences must produce identical cycle counts")
	}
}

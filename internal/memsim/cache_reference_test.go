package memsim

import (
	"testing"
	"testing/quick"
)

// referenceCache is an obviously-correct model of a set-associative LRU
// cache: per set, a slice ordered from most to least recently used.
type referenceCache struct {
	sets [][]uint64
	ways int
}

func newReferenceCache(sets, ways int) *referenceCache {
	return &referenceCache{sets: make([][]uint64, sets), ways: ways}
}

func (r *referenceCache) access(line uint64) bool {
	set := int(line % uint64(len(r.sets)))
	entries := r.sets[set]
	for i, l := range entries {
		if l == line {
			// Move to the front (most recently used).
			copy(entries[1:i+1], entries[:i])
			entries[0] = line
			return true
		}
	}
	// Miss: insert at the front, evicting the LRU entry if needed.
	if len(entries) < r.ways {
		entries = append(entries, 0)
	}
	copy(entries[1:], entries)
	entries[0] = line
	r.sets[set] = entries
	return false
}

// TestCacheMatchesReferenceModel replays random access traces on the real
// cache (Lookup + Insert-on-miss, the way the Core drives it) and on the
// reference model, and requires identical hit/miss decisions throughout.
func TestCacheMatchesReferenceModel(t *testing.T) {
	const ways, sets = 4, 16
	f := func(seed uint64) bool {
		c := NewCache("t", CacheConfig{SizeBytes: ways * sets * LineSize, Ways: ways, LatencyCycles: 1})
		ref := newReferenceCache(sets, ways)
		state := seed
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		for i := 0; i < 5000; i++ {
			line := next() % 256
			gotHit := c.Lookup(line)
			if !gotHit {
				c.Insert(line)
			}
			wantHit := ref.access(line)
			if gotHit != wantHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCoreHitRatesImproveWithCacheSize is a sanity property of the whole
// hierarchy: for the same random trace, a machine with larger caches must
// not see more memory accesses than one with smaller caches.
func TestCoreHitRatesImproveWithCacheSize(t *testing.T) {
	trace := make([]Addr, 20000)
	state := uint64(9)
	for i := range trace {
		state = state*6364136223846793005 + 1
		trace[i] = Addr(64 + (state>>33)%(1<<14)*LineSize)
	}
	run := func(l3Lines int) uint64 {
		cfg := testConfig()
		cfg.L3 = CacheConfig{SizeBytes: l3Lines * LineSize, Ways: 8, LatencyCycles: 30}
		sys := MustSystem(cfg)
		c := sys.NewCore()
		for _, a := range trace {
			c.Load(a, 8)
		}
		return c.Stats().MemAccesses
	}
	small := run(1 << 10)
	large := run(1 << 13)
	if large > small {
		t.Fatalf("larger LLC saw more memory accesses (%d) than smaller LLC (%d)", large, small)
	}
}

package memsim

// TLB is a fully associative, true-LRU data TLB for large pages. With the
// 2 MB / 4 MB pages used by the paper a handful of entries covers the whole
// working set, so TLB misses are rare during steady-state probing; the model
// exists so that pathological configurations (the "more than 32 in-flight
// lookups" discussion of Section 6) show the expected thrashing.
type TLB struct {
	pageShift uint
	penalty   uint64

	pages []uint64 // pageNumber+1, 0 = invalid
	use   []uint64
	clock uint64
	// lastPage caches the most recent translation; with large pages almost
	// every access hits it, which keeps the simulator fast.
	lastPage uint64
	misses   uint64
	hits     uint64
}

// NewTLB constructs a TLB from its configuration; cfg must have been
// validated (power-of-two page size, positive entry count).
func NewTLB(cfg TLBConfig) *TLB {
	shift := uint(0)
	for sz := cfg.PageBytes; sz > 1; sz >>= 1 {
		shift++
	}
	return &TLB{
		pageShift: shift,
		penalty:   cfg.MissPenaltyCycles,
		pages:     make([]uint64, cfg.Entries),
		use:       make([]uint64, cfg.Entries),
	}
}

// Penalty returns the page-walk cost in cycles.
func (t *TLB) Penalty() uint64 { return t.penalty }

// Translate looks up the page containing a, installing it on a miss, and
// reports whether the access hit.
func (t *TLB) Translate(a Addr) bool {
	page := uint64(a)>>t.pageShift + 1
	if page == t.lastPage {
		t.hits++
		return true
	}
	t.clock++
	victim := 0
	victimUse := t.use[0]
	for i := range t.pages {
		if t.pages[i] == page {
			t.use[i] = t.clock
			t.hits++
			t.lastPage = page
			return true
		}
		if t.pages[i] == 0 {
			victim = i
			victimUse = 0
			continue
		}
		if t.use[i] < victimUse {
			victim = i
			victimUse = t.use[i]
		}
	}
	t.pages[victim] = page
	t.use[victim] = t.clock
	t.lastPage = page
	t.misses++
	return false
}

// Hits returns the number of translations that hit.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of translations that required a walk.
func (t *TLB) Misses() uint64 { return t.misses }

// Reset clears all translations and statistics.
func (t *TLB) Reset() {
	for i := range t.pages {
		t.pages[i] = 0
		t.use[i] = 0
	}
	t.clock = 0
	t.lastPage = 0
	t.hits = 0
	t.misses = 0
}

package memsim

// TLB is a fully associative, true-LRU data TLB for large pages. With the
// 2 MB / 4 MB pages used by the paper a handful of entries covers the whole
// working set, so TLB misses are rare during steady-state probing; the model
// exists so that pathological configurations (the "more than 32 in-flight
// lookups" discussion of Section 6) show the expected thrashing.
type TLB struct {
	pageShift uint
	penalty   uint64

	pages []uint64 // pageNumber+1, 0 = invalid
	use   []uint64
	clock uint64
	// lastPage caches the most recent translation; with large pages almost
	// every access hits it, which keeps the simulator fast.
	lastPage uint64
	// memoPage/memoIdx extend lastPage to the last few distinct pages,
	// direct-mapped by the page's low bits: operators alternate between a
	// handful of pages (input relation, index nodes, output buffer), which
	// defeats a single-entry memo. A memo hit replays exactly the effects of
	// a scan hit (clock tick, use stamp, hit count), and every entry is
	// validated against the backing array before use, so evictions can never
	// serve a stale translation.
	memoPage [tlbMemoEntries]uint64
	memoIdx  [tlbMemoEntries]int
	misses   uint64
	hits     uint64
}

// tlbMemoEntries is the recent-translation memo size (a power of two):
// enough for the pages an operator stage touches per lookup (tuple, node,
// output, spill) with headroom against low-bit collisions.
const tlbMemoEntries = 8

// NewTLB constructs a TLB from its configuration; cfg must have been
// validated (power-of-two page size, positive entry count).
func NewTLB(cfg TLBConfig) *TLB {
	shift := uint(0)
	for sz := cfg.PageBytes; sz > 1; sz >>= 1 {
		shift++
	}
	return &TLB{
		pageShift: shift,
		penalty:   cfg.MissPenaltyCycles,
		pages:     make([]uint64, cfg.Entries),
		use:       make([]uint64, cfg.Entries),
	}
}

// Penalty returns the page-walk cost in cycles.
func (t *TLB) Penalty() uint64 { return t.penalty }

// Translate looks up the page containing a, installing it on a miss, and
// reports whether the access hit. The body is split so the last-page fast
// path — which serves almost every access under large pages — inlines into
// Core.Load/Store.
func (t *TLB) Translate(a Addr) bool {
	page := uint64(a)>>t.pageShift + 1
	if page == t.lastPage {
		t.hits++
		return true
	}
	return t.translateSlow(page)
}

// translateSlow serves translations that missed the single-page fast path:
// first from the recent-translation memo, then by scanning the entries,
// installing the page on a miss.
func (t *TLB) translateSlow(page uint64) bool {
	if s := page & (tlbMemoEntries - 1); t.memoPage[s] == page {
		i := t.memoIdx[s]
		if t.pages[i] == page {
			t.clock++
			t.use[i] = t.clock
			t.hits++
			t.lastPage = page
			return true
		}
	}
	t.clock++
	victim := 0
	victimUse := t.use[0]
	for i := range t.pages {
		if t.pages[i] == page {
			t.use[i] = t.clock
			t.hits++
			t.lastPage = page
			t.memoize(page, i)
			return true
		}
		if t.pages[i] == 0 {
			victim = i
			victimUse = 0
			continue
		}
		if t.use[i] < victimUse {
			victim = i
			victimUse = t.use[i]
		}
	}
	t.pages[victim] = page
	t.use[victim] = t.clock
	t.lastPage = page
	t.memoize(page, victim)
	t.misses++
	return false
}

// memoize records where page lives for the recent-translation memo.
func (t *TLB) memoize(page uint64, idx int) {
	s := page & (tlbMemoEntries - 1)
	t.memoPage[s] = page
	t.memoIdx[s] = idx
}

// Hits returns the number of translations that hit.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of translations that required a walk.
func (t *TLB) Misses() uint64 { return t.misses }

// Reset clears all translations and statistics.
func (t *TLB) Reset() {
	for i := range t.pages {
		t.pages[i] = 0
		t.use[i] = 0
	}
	t.clock = 0
	t.lastPage = 0
	for i := range t.memoPage {
		t.memoPage[i] = 0
		t.memoIdx[i] = 0
	}
	t.hits = 0
	t.misses = 0
}

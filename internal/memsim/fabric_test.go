package memsim

import "testing"

func TestFabricUncontended(t *testing.T) {
	f := NewFabric(32)
	if got := f.OffchipLatency(200, 10); got != 200 {
		t.Fatalf("uncontended latency = %d, want 200", got)
	}
	if f.ExtraCycles() != 0 {
		t.Fatal("no extra cycles expected without contention")
	}
}

func TestFabricContention(t *testing.T) {
	f := NewFabric(32)
	f.SetActiveThreads(6)
	// 6 threads x 10 outstanding = 60 > 32: latency inflates by 60/32.
	got := f.OffchipLatency(200, 10)
	want := uint64(200 * 60 / 32)
	if got != want {
		t.Fatalf("contended latency = %d, want %d", got, want)
	}
	if f.ExtraCycles() != want-200 {
		t.Fatalf("ExtraCycles = %d, want %d", f.ExtraCycles(), want-200)
	}
}

func TestFabricTwoSocketSpreadRelievesContention(t *testing.T) {
	// The paper's "2+2" experiment: four threads over two sockets behave
	// like two threads on one socket.
	oneSocket := NewFabric(32)
	oneSocket.SetActiveThreads(4)
	twoSocket := NewFabric(32)
	twoSocket.SetActiveThreads(2)

	l4 := oneSocket.OffchipLatency(200, 10)
	l22 := twoSocket.OffchipLatency(200, 10)
	if l22 > l4 {
		t.Fatalf("2 threads/socket latency %d should not exceed 4 threads/socket latency %d", l22, l4)
	}
}

func TestFabricDefensiveInputs(t *testing.T) {
	f := NewFabric(8)
	f.SetActiveThreads(0) // clamps to 1
	if f.ActiveThreads() != 1 {
		t.Fatalf("ActiveThreads = %d, want 1", f.ActiveThreads())
	}
	if got := f.OffchipLatency(100, 0); got != 100 {
		t.Fatalf("latency with zero outstanding = %d, want 100", got)
	}
	if f.QueueEntries() != 8 {
		t.Fatalf("QueueEntries = %d", f.QueueEntries())
	}
	f.Reset()
	if f.ExtraCycles() != 0 {
		t.Fatal("Reset did not clear extra cycles")
	}
}

package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Row is the machine-readable form of one table row: the flattened record
// amacbench -json emits, one JSON object per line, so experiment results
// can be recorded as BENCH_*.json trajectories and diffed across commits.
// NaN cells (rendered "-" in text tables) become JSON nulls.
type Row struct {
	// Experiment is the registered experiment id that produced the table.
	Experiment string `json:"experiment"`
	// Table is the table id (an experiment may emit several, e.g. fig6a-c).
	Table string `json:"table"`
	// Title and Unit mirror the table header.
	Title string `json:"title,omitempty"`
	Unit  string `json:"unit,omitempty"`
	// Row is the row label; Values maps column label to cell value.
	Row    string              `json:"row"`
	Values map[string]*float64 `json:"values"`
}

// Rows flattens the table into one Row per table row.
func (t *Table) Rows(experiment string) []Row {
	out := make([]Row, 0, len(t.RowLabels))
	for i, r := range t.RowLabels {
		vals := make(map[string]*float64, len(t.ColLabels))
		for j, c := range t.ColLabels {
			v := t.Values[i][j]
			if math.IsNaN(v) {
				vals[c] = nil
				continue
			}
			vv := v
			vals[c] = &vv
		}
		out = append(out, Row{
			Experiment: experiment,
			Table:      t.ID,
			Title:      t.Title,
			Unit:       t.Unit,
			Row:        r,
			Values:     vals,
		})
	}
	return out
}

// WriteJSONRows emits every row of every table as one JSON object per line
// (JSON Lines), the format behind amacbench -json.
func WriteJSONRows(w io.Writer, experiment string, tables []*Table) error {
	enc := json.NewEncoder(w)
	for _, t := range tables {
		for _, row := range t.Rows(experiment) {
			if err := enc.Encode(row); err != nil {
				return fmt.Errorf("profile: encoding %s/%s row %q: %w", experiment, t.ID, row.Row, err)
			}
		}
	}
	return nil
}

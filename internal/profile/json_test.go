package profile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func jsonFixture() *Table {
	t := New("fig0", "JSON fixture", "cycles/tuple", []string{"row-a", "row-b"}, []string{"Baseline", "AMAC"})
	t.Set("row-a", "Baseline", 123.5)
	t.Set("row-a", "AMAC", 41.25)
	t.Set("row-b", "Baseline", math.NaN()) // rendered "-" in text, null in JSON
	t.Set("row-b", "AMAC", 0)
	t.AddNote("scale note")
	return t
}

// TestJSONRowsRoundTrip proves the -json output is machine-readable: every
// emitted line decodes with encoding/json back into a Row carrying exactly
// the table's values (NaN as null).
func TestJSONRowsRoundTrip(t *testing.T) {
	table := jsonFixture()
	var buf bytes.Buffer
	if err := WriteJSONRows(&buf, "exp0", []*Table{table}); err != nil {
		t.Fatal(err)
	}

	var rows []Row
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var r Row
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %q does not decode: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(rows) != len(table.RowLabels) {
		t.Fatalf("decoded %d rows, want %d", len(rows), len(table.RowLabels))
	}
	for i, r := range rows {
		if r.Experiment != "exp0" || r.Table != "fig0" || r.Unit != "cycles/tuple" {
			t.Fatalf("row %d metadata wrong: %+v", i, r)
		}
		if r.Row != table.RowLabels[i] {
			t.Fatalf("row %d label %q, want %q", i, r.Row, table.RowLabels[i])
		}
		for j, col := range table.ColLabels {
			want := table.Values[i][j]
			got, ok := r.Values[col]
			if !ok {
				t.Fatalf("row %q missing column %q", r.Row, col)
			}
			if math.IsNaN(want) {
				if got != nil {
					t.Fatalf("NaN cell %q/%q must decode as null, got %v", r.Row, col, *got)
				}
				continue
			}
			if got == nil || *got != want {
				t.Fatalf("cell %q/%q = %v, want %v", r.Row, col, got, want)
			}
		}
	}
}

// TestJSONRowsReencode checks the decoded rows re-marshal without loss, so a
// recorded BENCH_*.json trajectory can itself be processed and re-emitted.
func TestJSONRowsReencode(t *testing.T) {
	table := jsonFixture()
	var buf bytes.Buffer
	if err := WriteJSONRows(&buf, "exp0", []*Table{table}); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	var again bytes.Buffer
	enc := json.NewEncoder(&again)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var r Row
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if again.String() != first {
		t.Fatalf("re-encoded stream differs:\n%s\nvs\n%s", again.String(), first)
	}
}

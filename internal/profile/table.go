// Package profile holds the result-table representation shared by the
// experiment harness, the amacbench command and the benchmark suite: a named
// grid of numeric values (rows = workload points, columns = techniques or
// sweep parameters) with enough metadata to render the same rows and series
// that the paper's tables and figures report.
package profile

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced artifact (a paper table, or one data series grid
// behind a paper figure).
type Table struct {
	// ID is the experiment identifier ("fig5a", "table3", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Unit is the unit of every value ("cycles/tuple", "M tuples/s", ...).
	Unit string
	// RowLabels and ColLabels name the grid axes.
	RowLabels []string
	ColLabels []string
	// Values is indexed [row][col]. NaN is rendered as "-".
	Values [][]float64
	// Notes carries free-form remarks (scale used, substitutions, ...).
	Notes []string
}

// New creates an empty table with the given axes, initialised to zero.
func New(id, title, unit string, rows, cols []string) *Table {
	values := make([][]float64, len(rows))
	for i := range values {
		values[i] = make([]float64, len(cols))
	}
	return &Table{
		ID:        id,
		Title:     title,
		Unit:      unit,
		RowLabels: append([]string(nil), rows...),
		ColLabels: append([]string(nil), cols...),
		Values:    values,
	}
}

// Set stores a value by label; it panics on unknown labels, which are
// programming errors in the experiment definitions.
func (t *Table) Set(row, col string, v float64) {
	t.Values[t.rowIndex(row)][t.colIndex(col)] = v
}

// Get returns a value by label.
func (t *Table) Get(row, col string) float64 {
	return t.Values[t.rowIndex(row)][t.colIndex(col)]
}

func (t *Table) rowIndex(label string) int {
	for i, l := range t.RowLabels {
		if l == label {
			return i
		}
	}
	panic(fmt.Sprintf("profile: table %s has no row %q", t.ID, label))
}

func (t *Table) colIndex(label string) int {
	for i, l := range t.ColLabels {
		if l == label {
			return i
		}
	}
	panic(fmt.Sprintf("profile: table %s has no column %q", t.ID, label))
}

// AddNote appends a remark rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(w, " [%s]", t.Unit)
	}
	fmt.Fprintln(w)

	width := 12
	for _, l := range append(append([]string{}, t.RowLabels...), t.ColLabels...) {
		if len(l)+2 > width {
			width = len(l) + 2
		}
	}
	cell := func(s string) string { return fmt.Sprintf("%*s", width, s) }

	fmt.Fprint(w, cell(""))
	for _, c := range t.ColLabels {
		fmt.Fprint(w, cell(c))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, cell(""))
	fmt.Fprintln(w, strings.Repeat("-", width*len(t.ColLabels)))

	for i, r := range t.RowLabels {
		fmt.Fprint(w, cell(r))
		for j := range t.ColLabels {
			fmt.Fprint(w, cell(formatValue(t.Values[i][j])))
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

package profile

import (
	"math"
	"strings"
	"testing"
)

func TestNewTableShape(t *testing.T) {
	tab := New("fig0", "demo", "cycles", []string{"r1", "r2"}, []string{"A", "B", "C"})
	if len(tab.Values) != 2 || len(tab.Values[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(tab.Values), len(tab.Values[0]))
	}
	if tab.ID != "fig0" || tab.Title != "demo" || tab.Unit != "cycles" {
		t.Fatal("metadata not stored")
	}
}

func TestSetGetByLabel(t *testing.T) {
	tab := New("t", "demo", "", []string{"r1", "r2"}, []string{"A", "B"})
	tab.Set("r2", "B", 42.5)
	if got := tab.Get("r2", "B"); got != 42.5 {
		t.Fatalf("Get = %v", got)
	}
	if got := tab.Get("r1", "A"); got != 0 {
		t.Fatalf("unset cell = %v", got)
	}
}

func TestUnknownLabelPanics(t *testing.T) {
	tab := New("t", "demo", "", []string{"r"}, []string{"c"})
	for name, f := range map[string]func(){
		"row": func() { tab.Set("missing", "c", 1) },
		"col": func() { tab.Get("r", "missing") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

func TestRenderContainsEverything(t *testing.T) {
	tab := New("fig99", "render test", "cycles/tuple", []string{"uniform", "skewed"}, []string{"Baseline", "AMAC"})
	tab.Set("uniform", "Baseline", 1234)
	tab.Set("uniform", "AMAC", 56.78)
	tab.Set("skewed", "AMAC", 9.1)
	tab.AddNote("scale %q", "small")
	out := tab.String()

	for _, want := range []string{"fig99", "render test", "cycles/tuple", "uniform", "skewed", "Baseline", "AMAC", "1234", "56.8", "9.10", `scale "small"`} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		9.123:   "9.12",
		99.44:   "99.4",
		12345.6: "12346",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if formatValue(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
}

func TestLongLabelsWidenColumns(t *testing.T) {
	tab := New("t", "demo", "", []string{"a-very-long-row-label-indeed"}, []string{"col"})
	tab.Set("a-very-long-row-label-indeed", "col", 1)
	if !strings.Contains(tab.String(), "a-very-long-row-label-indeed") {
		t.Fatal("long labels must not be truncated")
	}
}

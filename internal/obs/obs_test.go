package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDisabledObservabilityZeroAlloc is the tentpole's hard invariant: every
// recording method on the nil (disabled) sinks must be a no-op that
// allocates nothing.
func TestDisabledObservabilityZeroAlloc(t *testing.T) {
	var (
		tr *Trace
		ct *CoreTrace
		m  *Metrics
		cm *CoreMetrics
		lw *LatencyWindow
	)
	allocs := testing.AllocsPerRun(100, func() {
		ct = tr.Core("worker 0")
		ct.SlotStart(1, 0, 7)
		ct.SlotEnd(2, 0)
		ct.StageVisit(1, 2, 0, 1)
		ct.SlotRetry(3, 0, 1)
		ct.SlotPrefetch(3, 0)
		ct.GroupStart(4, 10)
		ct.GroupEnd(5, 10)
		ct.EngineSample(6, 8, 4)
		ct.WidthChange(7, 9)
		ct.Decision(8, DecSwitch, 1, 2)
		ct.QueueAdmit(9, 1)
		ct.QueueDrop(9, 2)
		ct.QueueBlock(9, 3)
		ct.QueueDepth(9, 3)
		ct.PipeDepth(10, 1, 5)
		ct.Backpressure(10, 1)
		_ = ct.Width()
		_ = ct.Len()
		cm = m.Core("worker 0")
		cm.Gauge("depth", func() float64 { return 0 })
		cm.Tick(100)
		_ = m.Interval()
		lw.Record(42)
		lw.Merge(nil)
		_ = lw.Quantile(0.99)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestCoreTraceRingWrap(t *testing.T) {
	tr := NewTrace(8) // rounds to 8
	ct := tr.Core("c")
	for i := 0; i < 20; i++ {
		ct.QueueDepth(uint64(i), i)
	}
	if got := ct.Len(); got != 8 {
		t.Fatalf("Len = %d, want ring capacity 8", got)
	}
	if got := ct.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := ct.Events()
	for i, ev := range evs {
		if want := uint64(12 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
}

func TestTraceCoreReuseAndDiscard(t *testing.T) {
	tr := NewTrace(16)
	a := tr.Core("worker 0")
	b := tr.Core("worker 0")
	if a != b {
		t.Fatalf("Core with the same name returned distinct sinks")
	}
	c := tr.Core("worker 1")
	if c == a {
		t.Fatalf("Core with a new name returned the old sink")
	}
	if n := len(tr.Cores()); n != 2 {
		t.Fatalf("Cores = %d sinks, want 2", n)
	}
	d := NewDiscardCore()
	for i := 0; i < 100; i++ {
		d.WidthChange(uint64(i), i)
	}
	if d.Width() != 99 {
		t.Fatalf("discard sink Width = %d, want 99", d.Width())
	}
	if n := len(tr.Cores()); n != 2 {
		t.Fatalf("discard sink leaked into the registry (%d cores)", n)
	}
}

// chromeFile mirrors the exported JSON for the schema round-trip.
type chromeFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteChromeSchemaRoundTrip records one event of every kind and checks
// the export parses as Chrome trace-event JSON with well-formed records:
// every event has a phase, metadata names the process and tracks, begin/end
// spans balance, and counters carry values.
func TestWriteChromeSchemaRoundTrip(t *testing.T) {
	tr := NewTrace(1 << 10)
	ct := tr.Core("worker 0")
	ct.SlotStart(10, 0, 3)
	ct.StageVisit(10, 25, 0, 0)
	ct.SlotPrefetch(25, 0)
	ct.StageVisit(25, 80, 0, 1)
	ct.SlotRetry(80, 0, 1)
	ct.SlotEnd(90, 0)
	ct.GroupStart(100, 10)
	ct.GroupEnd(400, 10)
	ct.EngineSample(500, 12, 7)
	ct.WidthChange(600, 13)
	ct.Decision(700, DecSwitch, 1, 3)
	ct.QueueAdmit(710, 1)
	ct.QueueDrop(711, 2)
	ct.QueueBlock(712, 9)
	ct.QueueDepth(713, 9)
	ct.PipeDepth(720, 2, 31)
	ct.Backpressure(730, 2)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) == 0 {
		t.Fatalf("export holds no events")
	}
	var (
		procs, threads int
		depth          = map[int]int{}
		counters       = map[string]bool{}
		instants       int
	)
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs++
			}
			if ev.Name == "thread_name" {
				threads++
			}
			if ev.Args["name"] == "" {
				t.Fatalf("metadata event without a name: %+v", ev)
			}
		case "B":
			depth[ev.Pid<<16|ev.Tid]++
		case "E":
			depth[ev.Pid<<16|ev.Tid]--
			if depth[ev.Pid<<16|ev.Tid] < 0 {
				t.Fatalf("end event without a begin on pid %d tid %d", ev.Pid, ev.Tid)
			}
		case "X":
			if ev.Dur <= 0 {
				t.Fatalf("complete event with non-positive dur: %+v", ev)
			}
		case "i":
			if ev.S != "t" {
				t.Fatalf("instant event without thread scope: %+v", ev)
			}
			instants++
		case "C":
			if len(ev.Args) == 0 {
				t.Fatalf("counter event without a value: %+v", ev)
			}
			counters[ev.Name] = true
		default:
			t.Fatalf("unknown phase %q in %+v", ev.Ph, ev)
		}
	}
	if procs != 1 {
		t.Fatalf("process_name metadata = %d, want 1", procs)
	}
	if threads < 4 { // controller, queue, engine, slot 0
		t.Fatalf("thread_name metadata = %d, want >= 4", threads)
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced span depth %d on track %d", d, tid)
		}
	}
	for _, want := range []string{"width", "mshr", "queue depth", "pipe2 depth"} {
		if !counters[want] {
			t.Fatalf("missing counter track %q (have %v)", want, counters)
		}
	}
	if instants == 0 {
		t.Fatalf("no instant events exported")
	}
	if !strings.Contains(buf.String(), DecisionName(DecSwitch)) {
		t.Fatalf("decision instant lost its name")
	}
}

// TestWriteChromeDroppedMetadata forces ring overflow and checks the export
// declares the loss: a dropped_events metadata record carrying the overwrite
// count and the retained length, so a reader of the JSON alone can tell a
// complete trace from the tail of one. A non-overflowed core must not carry
// the record.
func TestWriteChromeDroppedMetadata(t *testing.T) {
	tr := NewTrace(8)
	full := tr.Core("full")
	for i := 0; i < 20; i++ {
		full.QueueDepth(uint64(i), i)
	}
	intact := tr.Core("intact")
	intact.QueueDepth(0, 1)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	found := map[int]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "M" || ev.Name != "dropped_events" {
			continue
		}
		found[ev.Pid] = true
		if got := ev.Args["dropped"]; got != float64(12) {
			t.Fatalf("dropped = %v, want 12", got)
		}
		if got := ev.Args["retained"]; got != float64(8) {
			t.Fatalf("retained = %v, want 8", got)
		}
	}
	fullPid, intactPid := tr.Cores()[0], tr.Cores()[1]
	_ = intactPid
	if len(found) != 1 {
		t.Fatalf("dropped_events records on %d cores, want exactly 1 (the overflowed one)", len(found))
	}
	if fullPid.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", fullPid.Dropped())
	}
}

// TestWriteChromeElidesOrphanedEnds wraps the ring past a begin event and
// checks the matching end is dropped rather than exported unbalanced.
func TestWriteChromeElidesOrphanedEnds(t *testing.T) {
	tr := NewTrace(2)
	ct := tr.Core("c")
	ct.SlotStart(1, 0, 0) // will be overwritten
	ct.QueueDepth(2, 1)
	ct.SlotEnd(3, 0) // ring now holds [depth, end]: the begin is gone
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "E" {
			t.Fatalf("orphaned end event exported: %+v", ev)
		}
	}
}

func TestMetricsJSONL(t *testing.T) {
	m := NewMetrics(0)
	if m.Interval() != DefaultMetricsInterval {
		t.Fatalf("Interval = %d, want default %d", m.Interval(), DefaultMetricsInterval)
	}
	cm := m.Core("worker 0")
	if m.Core("worker 0") != cm {
		t.Fatalf("Core with the same name returned a distinct collection")
	}
	depth := 0.0
	cm.Gauge("queue_depth", func() float64 { return depth })
	cm.Gauge("queue_depth", func() float64 { return -1 }) // duplicate renamed
	for i := 1; i <= 3; i++ {
		depth = float64(i)
		cm.Tick(uint64(i) * 4096)
	}
	if cm.Samples() != 3 {
		t.Fatalf("Samples = %d, want 3", cm.Samples())
	}
	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec struct {
			Core   string             `json:"core"`
			Cycle  uint64             `json:"cycle"`
			Values map[string]float64 `json:"values"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.Core != "worker 0" {
			t.Fatalf("line %d core = %q", i, rec.Core)
		}
		if want := uint64(i+1) * 4096; rec.Cycle != want {
			t.Fatalf("line %d cycle = %d, want %d", i, rec.Cycle, want)
		}
		if got := rec.Values["queue_depth"]; got != float64(i+1) {
			t.Fatalf("line %d queue_depth = %v, want %d", i, got, i+1)
		}
		if len(rec.Values) != 2 {
			t.Fatalf("line %d has %d values, want 2 (duplicate gauge renamed)", i, len(rec.Values))
		}
	}
}

func TestLatencyWindowQuantile(t *testing.T) {
	lw := NewLatencyWindow(4)
	if got := lw.Quantile(0.99); got != 0 {
		t.Fatalf("empty window quantile = %d, want 0", got)
	}
	for _, v := range []uint64{10, 20, 30, 40} {
		lw.Record(v)
	}
	if got := lw.Quantile(0); got != 10 {
		t.Fatalf("q0 = %d, want 10", got)
	}
	if got := lw.Quantile(1); got != 40 {
		t.Fatalf("q1 = %d, want 40", got)
	}
	// Eviction: 10 falls out of the window.
	lw.Record(50)
	if got := lw.Quantile(0); got != 20 {
		t.Fatalf("q0 after eviction = %d, want 20", got)
	}
	if got := lw.Quantile(0.5); got < 30 || got > 40 {
		t.Fatalf("median = %d, want 30..40", got)
	}
}

// TestLatencyWindowSingleSlot covers a window shorter than its sample stream:
// at size 1 every Record evicts the previous observation, so the window is
// always exactly the latest sample.
func TestLatencyWindowSingleSlot(t *testing.T) {
	lw := NewLatencyWindow(1)
	for _, v := range []uint64{10, 20, 30} {
		lw.Record(v)
		if got := lw.Quantile(0); got != v {
			t.Fatalf("q0 after Record(%d) = %d, want %d", v, got, v)
		}
		if got := lw.Quantile(1); got != v {
			t.Fatalf("q1 after Record(%d) = %d, want %d", v, got, v)
		}
	}
}

// TestLatencyWindowExactBoundaryEviction records exactly capacity samples —
// the fill boundary, where head wraps to zero — and checks the window still
// holds all of them, then evicts precisely one per further Record.
func TestLatencyWindowExactBoundaryEviction(t *testing.T) {
	lw := NewLatencyWindow(4)
	for _, v := range []uint64{10, 20, 30, 40} { // exactly full: head wrapped
		lw.Record(v)
	}
	if got := lw.Quantile(0); got != 10 {
		t.Fatalf("q0 at exact fill = %d, want 10 (nothing evicted yet)", got)
	}
	lw.Record(50) // first eviction: 10 out
	if got := lw.Quantile(0); got != 20 {
		t.Fatalf("q0 after one past the boundary = %d, want 20", got)
	}
	if got := lw.Quantile(1); got != 50 {
		t.Fatalf("q1 after one past the boundary = %d, want 50", got)
	}
}

// TestLatencyWindowMerge covers the per-worker aggregation path: empty-into-
// empty and empty-into-full no-op, a wrapped source merges oldest-first, and
// a merge that overflows the destination evicts the destination's oldest.
func TestLatencyWindowMerge(t *testing.T) {
	dst := NewLatencyWindow(4)
	dst.Merge(NewLatencyWindow(4)) // empty into empty
	if got := dst.Quantile(0.99); got != 0 {
		t.Fatalf("merge of empty windows left q99 = %d, want 0", got)
	}
	dst.Record(10)
	dst.Merge(NewLatencyWindow(4)) // empty into non-empty
	if got := dst.Quantile(1); got != 10 {
		t.Fatalf("empty merge disturbed the window: q1 = %d, want 10", got)
	}

	src := NewLatencyWindow(2)
	for _, v := range []uint64{1, 2, 3} { // wrapped: holds [2 3]
		src.Record(v)
	}
	dst.Merge(src) // dst: [10 2 3]
	if got := dst.Quantile(0); got != 2 {
		t.Fatalf("q0 after merge = %d, want 2 (overwritten 1 must not appear)", got)
	}
	if got := dst.Quantile(1); got != 10 {
		t.Fatalf("q1 after merge = %d, want 10", got)
	}

	big := NewLatencyWindow(2)
	for _, v := range []uint64{7, 8} {
		big.Record(v)
	}
	dst.Merge(big) // 3+2 > 4: dst's oldest (10) evicts; holds [2 3 7 8]
	if got := dst.Quantile(1); got != 8 {
		t.Fatalf("q1 after overflowing merge = %d, want 8", got)
	}
	if got := dst.Quantile(0); got != 2 {
		t.Fatalf("q0 after overflowing merge = %d, want 2 (10 evicted)", got)
	}
}

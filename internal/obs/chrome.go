package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Thread-track ids inside each core's process. Slots start at tidSlotBase so
// the fixed tracks sort first in Perfetto.
const (
	tidController = 0
	tidQueue      = 1
	tidEngine     = 2
	tidSlotBase   = 3
)

// chromeEvent is one record of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Ts and Dur are microseconds; the export renders one simulated cycle as one
// microsecond, so Perfetto's time axis reads directly in cycles (µs) and
// kilocycles (ms).
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports every registered core's ring as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// core becomes one process; inside it, tid 0 is the controller track
// (decisions), tid 1 the queue track (admit/drop/block instants), tid 2 the
// engine track (GP/SPP group spans, backpressure), and tid 3+i slot i's
// lifecycle track (B/E occupancy spans with stage-visit X spans nested
// inside). Width, MSHR occupancy, queue depth and pipe depths export as
// counter tracks. Rings overwrite oldest-first, so a saturated trace is the
// tail of the run; orphaned end events from overwritten begins are elided.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := newChromeEncoder(bw)
	for _, c := range t.Cores() {
		if err := c.writeChrome(enc); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEncoder streams events with separating commas, so the export never
// materializes the whole trace in memory.
type chromeEncoder struct {
	w     *bufio.Writer
	first bool
}

func newChromeEncoder(w *bufio.Writer) *chromeEncoder {
	return &chromeEncoder{w: w, first: true}
}

func (e *chromeEncoder) emit(ev chromeEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if !e.first {
		if _, err := e.w.WriteString(",\n"); err != nil {
			return err
		}
	}
	e.first = false
	_, err = e.w.Write(b)
	return err
}

func (c *CoreTrace) writeChrome(enc *chromeEncoder) error {
	meta := func(kind, name string, tid int) error {
		return enc.emit(chromeEvent{
			Name: kind, Ph: "M", Pid: c.pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	if err := meta("process_name", c.name, 0); err != nil {
		return err
	}
	if err := meta("thread_name", "controller", tidController); err != nil {
		return err
	}
	if err := meta("thread_name", "queue", tidQueue); err != nil {
		return err
	}
	if err := meta("thread_name", "engine", tidEngine); err != nil {
		return err
	}
	// Ring honesty: when wrap-around overwrote events, say so in the export
	// itself — a reader of the JSON alone must be able to tell a complete
	// trace from the tail of one.
	if d := c.Dropped(); d > 0 {
		if err := enc.emit(chromeEvent{
			Name: "dropped_events", Ph: "M", Pid: c.pid, Tid: 0,
			Args: map[string]any{"dropped": d, "retained": c.Len()},
		}); err != nil {
			return err
		}
	}
	// Name each slot track that actually recorded events, and guard B/E
	// balance per track (a ring wrap can orphan end events).
	slots := map[int32]bool{}
	depth := map[int]int{}
	for _, ev := range c.Events() {
		switch ev.Kind {
		case KindSlotStart, KindSlotEnd, KindStage, KindRetry, KindPrefetch, KindSlotAbandon:
			if !slots[ev.Track] {
				slots[ev.Track] = true
				if err := meta("thread_name", fmt.Sprintf("slot %d", ev.Track), tidSlotBase+int(ev.Track)); err != nil {
					return err
				}
			}
		}
		out, ok := c.chromeEvent(ev)
		if !ok {
			continue
		}
		for _, o := range out {
			switch o.Ph {
			case "B":
				depth[o.Tid]++
			case "E":
				if depth[o.Tid] == 0 {
					continue // begin was overwritten by the ring
				}
				depth[o.Tid]--
			}
			if err := enc.emit(o); err != nil {
				return err
			}
		}
	}
	return nil
}

// chromeEvent translates one ring record; counters may expand to two events.
func (c *CoreTrace) chromeEvent(ev Event) ([]chromeEvent, bool) {
	one := func(e chromeEvent) ([]chromeEvent, bool) { return []chromeEvent{e}, true }
	instant := func(tid int, name string) ([]chromeEvent, bool) {
		return one(chromeEvent{Name: name, Ph: "i", Ts: ev.Cycle, Pid: c.pid, Tid: tid, S: "t"})
	}
	counter := func(name string, v int64) chromeEvent {
		return chromeEvent{Name: name, Ph: "C", Ts: ev.Cycle, Pid: c.pid, Tid: 0,
			Args: map[string]any{name: v}}
	}
	slotTid := tidSlotBase + int(ev.Track)
	switch ev.Kind {
	case KindSlotStart:
		return one(chromeEvent{Name: fmt.Sprintf("req %d", ev.A), Ph: "B", Ts: ev.Cycle, Pid: c.pid, Tid: slotTid})
	case KindSlotEnd:
		return one(chromeEvent{Ph: "E", Ts: ev.Cycle, Pid: c.pid, Tid: slotTid})
	case KindStage:
		dur := ev.Dur
		if dur == 0 {
			dur = 1
		}
		return one(chromeEvent{Name: fmt.Sprintf("stage %d", ev.A), Ph: "X", Ts: ev.Cycle, Dur: dur, Pid: c.pid, Tid: slotTid})
	case KindRetry:
		return instant(slotTid, fmt.Sprintf("retry s%d", ev.A))
	case KindPrefetch:
		return instant(slotTid, "prefetch")
	case KindGroupStart:
		return one(chromeEvent{Name: fmt.Sprintf("group %d", ev.A), Ph: "B", Ts: ev.Cycle, Pid: c.pid, Tid: tidEngine})
	case KindGroupEnd:
		return one(chromeEvent{Ph: "E", Ts: ev.Cycle, Pid: c.pid, Tid: tidEngine})
	case KindEngineSample:
		return []chromeEvent{counter("width", ev.A), counter("mshr", ev.B)}, true
	case KindWidthChange:
		return []chromeEvent{
			counter("width", ev.A),
			{Name: fmt.Sprintf("width %d", ev.A), Ph: "i", Ts: ev.Cycle, Pid: c.pid, Tid: tidController, S: "t"},
		}, true
	case KindDecision:
		return one(chromeEvent{
			Name: DecisionName(int(ev.Track)), Ph: "i", Ts: ev.Cycle, Pid: c.pid, Tid: tidController, S: "t",
			Args: map[string]any{"a": ev.A, "b": ev.B},
		})
	case KindQueueAdmit:
		return instant(tidQueue, "admit")
	case KindQueueDrop:
		return instant(tidQueue, "drop")
	case KindQueueBlock:
		return instant(tidQueue, "block")
	case KindQueueDepth:
		return one(counter("queue depth", ev.A))
	case KindPipeDepth:
		return one(counter(fmt.Sprintf("pipe%d depth", ev.Track), ev.A))
	case KindBackpressure:
		return instant(tidEngine, fmt.Sprintf("backpressure p%d", ev.Track))
	case KindSlotAbandon:
		name := "timeout"
		if ev.B == 1 {
			name = "crash drop"
		}
		return []chromeEvent{
			{Name: fmt.Sprintf("%s req %d", name, ev.A), Ph: "i", Ts: ev.Cycle, Pid: c.pid, Tid: slotTid, S: "t"},
			{Ph: "E", Ts: ev.Cycle, Pid: c.pid, Tid: slotTid},
		}, true
	case KindFault:
		dur := ev.Dur
		if dur == 0 {
			dur = 1
		}
		return one(chromeEvent{
			Name: fmt.Sprintf("fault %s x%.1f", faultKindName(int(ev.A)), float64(ev.B)/1000),
			Ph:   "X", Ts: ev.Cycle, Dur: dur, Pid: c.pid, Tid: tidEngine,
		})
	case KindBreaker:
		return one(chromeEvent{
			Name: fmt.Sprintf("breaker %s→%s", breakerStateName(int(ev.A)), breakerStateName(int(ev.B))),
			Ph:   "i", Ts: ev.Cycle, Pid: c.pid, Tid: tidController, S: "t",
		})
	case KindHedge:
		return instant(tidQueue, fmt.Sprintf("hedge req %d → shard %d", ev.A, ev.B))
	case KindReroute:
		return instant(tidQueue, fmt.Sprintf("reroute req %d → shard %d", ev.A, ev.B))
	case KindRequeue:
		return instant(tidQueue, fmt.Sprintf("retry req %d (#%d)", ev.A, ev.B))
	case KindBrownout:
		return []chromeEvent{
			counter("shed level", ev.A),
			{Name: fmt.Sprintf("brownout level %d", ev.A), Ph: "i", Ts: ev.Cycle, Pid: c.pid, Tid: tidController, S: "t"},
		}, true
	}
	return nil, false
}

// faultKindName mirrors fault.Kind.String without importing the package
// (obs sits below fault in the dependency order).
func faultKindName(k int) string {
	switch k {
	case 0:
		return "slow"
	case 1:
		return "freeze"
	case 2:
		return "crash"
	case 3:
		return "spike"
	}
	return "fault"
}

// breakerStateName mirrors fault.State.String.
func breakerStateName(s int) string {
	switch s {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	}
	return "?"
}

package obs

import (
	"fmt"
	"sync"
)

// defaultCoreEvents is the per-core ring capacity when NewTrace is given
// zero: 1<<16 events × 40 bytes ≈ 2.6 MB per traced core, enough to hold the
// tail of any tiny/small-scale run.
const defaultCoreEvents = 1 << 16

// Trace is the root trace sink: a registry of per-core event rings. The zero
// of the type is not used — a nil *Trace is the disabled state, and its Core
// method hands out nil *CoreTrace sinks whose methods all no-op.
//
// Core registration takes a mutex (serving workers register during serial
// setup; sweep workers may race); event recording itself is core-local and
// lock-free, matching the simulator's one-goroutine-per-core model.
type Trace struct {
	mu      sync.Mutex
	perCore int
	cores   []*CoreTrace
	nextPid int
}

// NewTrace creates a trace sink whose per-core rings hold perCoreEvents
// events (rounded up to a power of two; zero or negative selects the
// default). When a ring fills, the oldest events are overwritten — a trace
// is the tail of the run.
func NewTrace(perCoreEvents int) *Trace {
	if perCoreEvents <= 0 {
		perCoreEvents = defaultCoreEvents
	}
	cap := 1
	for cap < perCoreEvents {
		cap <<= 1
	}
	return &Trace{perCore: cap, nextPid: 1}
}

// Core registers (or re-uses) the named per-core sink. A nil receiver
// returns a nil *CoreTrace, whose recording methods are all no-ops — callers
// thread the result unconditionally.
func (t *Trace) Core(name string) *CoreTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.cores {
		if c.name == name {
			return c
		}
	}
	c := &CoreTrace{
		name: name,
		pid:  t.nextPid,
		buf:  make([]Event, t.perCore),
		mask: uint64(t.perCore - 1),
	}
	t.nextPid++
	t.cores = append(t.cores, c)
	return c
}

// Cores snapshots the registered per-core sinks in registration order.
func (t *Trace) Cores() []*CoreTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*CoreTrace(nil), t.cores...)
}

// NewDiscardCore returns an unregistered single-slot sink. The serving layer
// uses it when metrics are enabled without tracing, so the width gauge still
// has a live holder to read; nothing recorded into it is ever exported.
func NewDiscardCore() *CoreTrace {
	return &CoreTrace{name: "discard", buf: make([]Event, 1), mask: 0}
}

// CoreTrace is one core's event ring. All methods are nil-safe no-ops on a
// nil receiver, cost a single predictable branch on the disabled path, and
// never allocate. The ring is single-writer (the core's goroutine).
type CoreTrace struct {
	name  string
	pid   int
	buf   []Event
	mask  uint64
	head  uint64
	width int
}

// Name returns the sink's registered core name.
func (c *CoreTrace) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Len is the number of events currently held (≤ ring capacity).
func (c *CoreTrace) Len() int {
	if c == nil {
		return 0
	}
	if c.head < uint64(len(c.buf)) {
		return int(c.head)
	}
	return len(c.buf)
}

// Dropped is the number of events overwritten by ring wrap-around.
func (c *CoreTrace) Dropped() uint64 {
	if c == nil {
		return 0
	}
	if n := uint64(len(c.buf)); c.head > n {
		return c.head - n
	}
	return 0
}

// Events snapshots the held events oldest-first.
func (c *CoreTrace) Events() []Event {
	if c == nil {
		return nil
	}
	n := uint64(len(c.buf))
	start := uint64(0)
	if c.head > n {
		start = c.head - n
	}
	out := make([]Event, 0, c.head-start)
	for i := start; i < c.head; i++ {
		out = append(out, c.buf[i&c.mask])
	}
	return out
}

// Width returns the engine width most recently recorded via WidthChange or
// EngineSample; the serving metrics layer reads it as a gauge.
func (c *CoreTrace) Width() int {
	if c == nil {
		return 0
	}
	return c.width
}

func (c *CoreTrace) push(e Event) {
	c.buf[c.head&c.mask] = e
	c.head++
}

// SlotStart records a lookup's admission into a slot.
func (c *CoreTrace) SlotStart(cycle uint64, slot, req int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindSlotStart, Track: int32(slot), A: int64(req)})
}

// SlotEnd records the slot's in-flight lookup completing.
func (c *CoreTrace) SlotEnd(cycle uint64, slot int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindSlotEnd, Track: int32(slot)})
}

// StageVisit records one stage execution spanning [start, end) simulated
// cycles — the span covers the stage's work plus any MSHR wait it absorbed.
func (c *CoreTrace) StageVisit(start, end uint64, slot, stage int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: start, Dur: end - start, Kind: KindStage, Track: int32(slot), A: int64(stage)})
}

// SlotRetry records a contended stage retry.
func (c *CoreTrace) SlotRetry(cycle uint64, slot, stage int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindRetry, Track: int32(slot), A: int64(stage)})
}

// SlotPrefetch records a prefetch issued on behalf of the slot.
func (c *CoreTrace) SlotPrefetch(cycle uint64, slot int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindPrefetch, Track: int32(slot)})
}

// GroupStart records a GP admission batch or SPP fill beginning.
func (c *CoreTrace) GroupStart(cycle uint64, size int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindGroupStart, A: int64(size)})
}

// GroupEnd records the group's rounds finishing.
func (c *CoreTrace) GroupEnd(cycle uint64, completed int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindGroupEnd, A: int64(completed)})
}

// EngineSample records one AMAC probe-window sample: the active width and
// the MSHR occupancy at the sample point.
func (c *CoreTrace) EngineSample(cycle uint64, width, mshr int) {
	if c == nil {
		return
	}
	c.width = width
	c.push(Event{Cycle: cycle, Kind: KindEngineSample, A: int64(width), B: int64(mshr)})
}

// WidthChange records the engine applying a slot-window resize.
func (c *CoreTrace) WidthChange(cycle uint64, width int) {
	if c == nil {
		return
	}
	c.width = width
	c.push(Event{Cycle: cycle, Kind: KindWidthChange, A: int64(width)})
}

// Decision records an adaptive-controller decision (code is a Dec* value).
func (c *CoreTrace) Decision(cycle uint64, code int, a, b int64) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindDecision, Track: int32(code), A: a, B: b})
}

// QueueAdmit records a request entering the serving queue.
func (c *CoreTrace) QueueAdmit(cycle uint64, req int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindQueueAdmit, A: int64(req)})
}

// QueueDrop records a request dropped at admission.
func (c *CoreTrace) QueueDrop(cycle uint64, req int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindQueueDrop, A: int64(req)})
}

// QueueBlock records arrivals blocking on a full queue.
func (c *CoreTrace) QueueBlock(cycle uint64, depth int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindQueueBlock, A: int64(depth)})
}

// QueueDepth samples the serving-queue depth.
func (c *CoreTrace) QueueDepth(cycle uint64, depth int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindQueueDepth, A: int64(depth)})
}

// PipeDepth samples a pipeline pipe's row count.
func (c *CoreTrace) PipeDepth(cycle uint64, pipe, depth int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindPipeDepth, Track: int32(pipe), A: int64(depth)})
}

// SlotAbandon records a slot closed without completing its request: kind 0
// is a deadline expiry, kind 1 a crash abort.
func (c *CoreTrace) SlotAbandon(cycle uint64, slot, req, kind int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindSlotAbandon, Track: int32(slot), A: int64(req), B: int64(kind)})
}

// Fault records a fault-injector episode applied to this core: kind is the
// fault.Kind code, permille the episode factor scaled by 1000.
func (c *CoreTrace) Fault(cycle, dur uint64, kind int, permille int64) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Dur: dur, Kind: KindFault, A: int64(kind), B: permille})
}

// Breaker records a circuit-breaker state transition (fault.State codes).
func (c *CoreTrace) Breaker(cycle uint64, from, to int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindBreaker, A: int64(from), B: int64(to)})
}

// Hedge records a hedge duplicate dispatched to a sibling shard.
func (c *CoreTrace) Hedge(cycle uint64, req, target int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindHedge, A: int64(req), B: int64(target)})
}

// Reroute records an arrival redirected to a sibling by an open breaker.
func (c *CoreTrace) Reroute(cycle uint64, req, target int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindReroute, A: int64(req), B: int64(target)})
}

// Requeue records a timed-out request re-enqueued by the retry policy.
func (c *CoreTrace) Requeue(cycle uint64, req, attempt int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindRequeue, A: int64(req), B: int64(attempt)})
}

// Brownout records an SLO brownout shed-level change.
func (c *CoreTrace) Brownout(cycle uint64, level int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindBrownout, A: int64(level)})
}

// Backpressure records a stage lease ending on a full output pipe.
func (c *CoreTrace) Backpressure(cycle uint64, pipe int) {
	if c == nil {
		return
	}
	c.push(Event{Cycle: cycle, Kind: KindBackpressure, Track: int32(pipe)})
}

// String summarises the sink for diagnostics.
func (c *CoreTrace) String() string {
	if c == nil {
		return "obs: disabled"
	}
	return fmt.Sprintf("obs: %s: %d events (%d dropped)", c.name, c.Len(), c.Dropped())
}

// Package obs is the observability subsystem: a zero-cost-when-disabled
// tracing and metrics layer keyed on simulated cycles as the timebase.
//
// Two sinks share that timebase:
//
//   - Event tracing (Trace/CoreTrace): per-core ring-buffered event sinks
//     recording AMAC slot lifecycle (admit → stage visits with their MSHR
//     wait → complete), GP/SPP group boundaries, controller decisions
//     (probe epochs, technique switches, width changes with reason),
//     serving-queue admit/drop/block, and pipeline pipe depth and
//     backpressure. WriteChrome exports the rings as Chrome trace-event
//     JSON, loadable in Perfetto or chrome://tracing, with one process per
//     core and one thread track per slot plus controller/queue/engine
//     tracks.
//
//   - Metrics time series (Metrics/CoreMetrics): a registry of named gauges
//     sampled every N simulated cycles through memsim's cycle hook
//     (in-flight width, MSHR occupancy, queue depth, sliding-window p99,
//     stall fraction), exported as JSON Lines.
//
// Everything is nil-safe: a nil *Trace hands out nil *CoreTrace values, and
// every CoreTrace/CoreMetrics/LatencyWindow method on a nil receiver is a
// no-op. Instrumented code therefore threads the pointers unconditionally
// and never branches on an "enabled" flag; the disabled path costs one
// predictable nil check per event site and allocates nothing (guarded by
// TestDisabledObservabilityZeroAlloc and the traced-vs-untraced benchmark
// pairs).
//
// The subsystem is purely observational — it never advances the simulated
// clock or touches simulator state — so simulated results are byte-identical
// with tracing on or off. The differential tests assert this end to end.
package obs

// Kind discriminates trace events. The Track field of an Event names a slot
// for slot-scoped kinds and a pipe for pipe-scoped kinds; other kinds ignore
// it (except KindDecision, which stores its decision code there).
type Kind uint8

const (
	// KindSlotStart marks a lookup admitted into a slot (A = request index).
	KindSlotStart Kind = iota
	// KindSlotEnd marks the slot's in-flight lookup completing.
	KindSlotEnd
	// KindStage is one stage visit: Dur simulated cycles of work plus MSHR
	// wait (A = stage index).
	KindStage
	// KindRetry is a contended stage retry (A = stage index).
	KindRetry
	// KindPrefetch marks a prefetch issued on behalf of the slot.
	KindPrefetch
	// KindGroupStart marks a GP admission batch or SPP fill beginning
	// (A = group size).
	KindGroupStart
	// KindGroupEnd marks the group's rounds completing (A = lookups finished).
	KindGroupEnd
	// KindEngineSample is one AMAC probe-window sample: A = active width,
	// B = MSHR occupancy at the sample point.
	KindEngineSample
	// KindWidthChange marks the engine applying a slot-window resize
	// (A = new width).
	KindWidthChange
	// KindDecision is an adaptive-controller decision: Track = decision code
	// (Dec*), A/B = code-specific detail.
	KindDecision
	// KindQueueAdmit marks a request entering the serving queue
	// (A = request index).
	KindQueueAdmit
	// KindQueueDrop marks a request dropped at admission (A = request index).
	KindQueueDrop
	// KindQueueBlock marks arrivals blocking on a full queue (A = depth).
	KindQueueBlock
	// KindQueueDepth samples the serving-queue depth (A = depth).
	KindQueueDepth
	// KindPipeDepth samples a pipeline pipe's depth (Track = pipe, A = depth).
	KindPipeDepth
	// KindBackpressure marks a stage lease ending because its output pipe is
	// full (Track = pipe index).
	KindBackpressure
	// KindSlotAbandon marks a slot closed without completing its request
	// (A = request index, B = 0 for a deadline expiry, 1 for a crash abort).
	KindSlotAbandon
	// KindFault is a fault-injector episode applied to this core: Dur is the
	// episode length in cycles, A the fault.Kind code, B the episode factor
	// in permille (slowdown multiplier or spike rate multiplier).
	KindFault
	// KindBreaker is a circuit-breaker state transition (A = from, B = to;
	// codes are fault.State values).
	KindBreaker
	// KindHedge marks a hedge duplicate dispatched for a slow request
	// (A = request index, B = target shard).
	KindHedge
	// KindReroute marks an arrival redirected off its home shard by an open
	// breaker (A = request index, B = target shard).
	KindReroute
	// KindRequeue marks a timed-out request re-enqueued by the retry policy
	// (A = request index, B = attempt number).
	KindRequeue
	// KindBrownout is an SLO brownout shed-level change (A = new level).
	KindBrownout
)

// Decision codes carried in KindDecision events (Event.Track). They mirror
// the adapt package's Decision log; the trace event is the cheap on-timeline
// marker, the log is the rich record.
const (
	// DecProbeStart: a calibration epoch begins (A = probe segment lookups).
	DecProbeStart = iota
	// DecCalibrate: calibration kept the incumbent technique (A = technique).
	DecCalibrate
	// DecSwitch: calibration switched technique (A = from, B = to).
	DecSwitch
	// DecDriftReprobe: exploit-phase cost drifted out of band (A = technique).
	DecDriftReprobe
	// DecQueueReprobe: serving backlog forced a re-probe (A = queue depth).
	DecQueueReprobe
	// DecStopRun: a drift-stop ended an exploited AMAC run early.
	DecStopRun
	// DecWidthGrow: width AIMD widened the slot window (A = new width).
	DecWidthGrow
	// DecWidthShrink: width AIMD backed off on MSHR-full waits (A = new width).
	DecWidthShrink
	// DecWidthGlide: width AIMD glided toward the floor on a compute-bound
	// phase (A = new width).
	DecWidthGlide
	// DecTailSafe: the SLO brownout engaged (or released) the tail-safe bias,
	// forcing exploit leases onto AMAC (A = technique in force).
	DecTailSafe
)

// decisionNames renders decision codes in exported traces.
var decisionNames = [...]string{
	DecProbeStart:   "probe start",
	DecCalibrate:    "calibrate",
	DecSwitch:       "switch",
	DecDriftReprobe: "drift reprobe",
	DecQueueReprobe: "queue reprobe",
	DecStopRun:      "drift stop",
	DecWidthGrow:    "width grow",
	DecWidthShrink:  "width shrink",
	DecWidthGlide:   "width glide",
	DecTailSafe:     "tail-safe",
}

// DecisionName returns the human label for a Dec* code.
func DecisionName(code int) string {
	if code < 0 || code >= len(decisionNames) {
		return "decision"
	}
	return decisionNames[code]
}

// Event is one fixed-size trace record. Cycle is the simulated cycle the
// event happened at (spans additionally carry Dur); the remaining fields are
// interpreted per Kind.
type Event struct {
	Cycle uint64
	Dur   uint64
	A, B  int64
	Track int32
	Kind  Kind
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// DefaultMetricsInterval is the sampling period, in simulated cycles, when
// NewMetrics is given zero.
const DefaultMetricsInterval = 4096

// Metrics is the root metrics registry: a set of per-core gauge collections
// sampled every Interval simulated cycles through memsim's cycle hook. Like
// Trace, a nil *Metrics is the disabled state — Core returns nil and every
// CoreMetrics method no-ops.
type Metrics struct {
	mu       sync.Mutex
	interval uint64
	cores    []*CoreMetrics
}

// NewMetrics creates a registry sampling every interval simulated cycles
// (zero or negative selects DefaultMetricsInterval).
func NewMetrics(interval int) *Metrics {
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	return &Metrics{interval: uint64(interval)}
}

// Interval is the sampling period in simulated cycles (0 when disabled).
func (m *Metrics) Interval() uint64 {
	if m == nil {
		return 0
	}
	return m.interval
}

// Core registers (or re-uses) the named per-core gauge collection; nil
// receiver returns nil.
func (m *Metrics) Core(name string) *CoreMetrics {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.cores {
		if c.name == name {
			return c
		}
	}
	c := &CoreMetrics{name: name}
	m.cores = append(m.cores, c)
	return c
}

// Cores snapshots the registered collections in registration order.
func (m *Metrics) Cores() []*CoreMetrics {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*CoreMetrics(nil), m.cores...)
}

// metricsRecord is one JSON Lines sample.
type metricsRecord struct {
	Core   string             `json:"core"`
	Cycle  uint64             `json:"cycle"`
	Values map[string]float64 `json:"values"`
}

// WriteJSONL exports every core's samples as JSON Lines, one object per
// sample: {"core":"worker 0","cycle":4096,"values":{"queue_depth":3,...}}.
// Cores export in registration order, samples in cycle order; map keys
// marshal sorted, so the output is deterministic.
func (m *Metrics) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range m.Cores() {
		for i, cyc := range c.cycles {
			rec := metricsRecord{Core: c.name, Cycle: cyc, Values: make(map[string]float64, len(c.names))}
			for j, name := range c.names {
				rec.Values[name] = c.vals[i][j]
			}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("obs: encoding %s sample %d: %w", c.name, i, err)
			}
		}
	}
	return bw.Flush()
}

// CoreMetrics is one core's gauge collection and its recorded samples. It is
// single-goroutine like the core it observes; all methods are nil-safe.
type CoreMetrics struct {
	name   string
	names  []string
	gauges []func() float64
	cycles []uint64
	vals   [][]float64
}

// Name returns the collection's registered core name.
func (c *CoreMetrics) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge registers a named gauge; fn is polled at every sample tick. Gauges
// registered with a name already present are renamed with a numeric suffix
// rather than rejected (sample rows must stay rectangular).
func (c *CoreMetrics) Gauge(name string, fn func() float64) {
	if c == nil || fn == nil {
		return
	}
	for _, n := range c.names {
		if n == name {
			name = fmt.Sprintf("%s_%d", name, len(c.names))
		}
	}
	c.names = append(c.names, name)
	c.gauges = append(c.gauges, fn)
}

// Tick polls every gauge and appends one sample stamped with the simulated
// cycle. Its signature matches memsim's cycle hook, so it installs directly:
// core.SetCycleHook(interval, cm.Tick).
func (c *CoreMetrics) Tick(cycle uint64) {
	if c == nil {
		return
	}
	row := make([]float64, len(c.gauges))
	for i, g := range c.gauges {
		row[i] = g()
	}
	c.cycles = append(c.cycles, cycle)
	c.vals = append(c.vals, row)
}

// Samples returns the number of recorded ticks.
func (c *CoreMetrics) Samples() int {
	if c == nil {
		return 0
	}
	return len(c.cycles)
}

// LatencyWindow is a fixed-size ring of the most recent request latencies,
// backing the sliding-window p99 gauge of the serving metrics. Nil-safe.
type LatencyWindow struct {
	buf     []uint64
	head    int
	n       int
	scratch []uint64
}

// NewLatencyWindow creates a window over the last size latencies (zero or
// negative selects 512).
func NewLatencyWindow(size int) *LatencyWindow {
	if size <= 0 {
		size = 512
	}
	return &LatencyWindow{buf: make([]uint64, size), scratch: make([]uint64, size)}
}

// Record adds one latency observation, evicting the oldest when full.
func (l *LatencyWindow) Record(v uint64) {
	if l == nil {
		return
	}
	l.buf[l.head] = v
	l.head++
	if l.head == len(l.buf) {
		l.head = 0
	}
	if l.n < len(l.buf) {
		l.n++
	}
}

// Merge folds another window's held observations into l, oldest-first, as if
// each had been Recorded here — the per-worker-to-service aggregation path.
// Merging nil or an empty window is a no-op; when the combined count exceeds
// l's capacity the oldest observations evict as usual, so the result is the
// most recent capacity-many of l's history followed by o's.
func (l *LatencyWindow) Merge(o *LatencyWindow) {
	if l == nil || o == nil || o.n == 0 {
		return
	}
	if o.n < len(o.buf) {
		for _, v := range o.buf[:o.n] {
			l.Record(v)
		}
		return
	}
	for _, v := range o.buf[o.head:] {
		l.Record(v)
	}
	for _, v := range o.buf[:o.head] {
		l.Record(v)
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the windowed latencies,
// zero when empty. The window is small; an exact sort is cheaper than
// maintaining a sketch.
func (l *LatencyWindow) Quantile(q float64) uint64 {
	if l == nil || l.n == 0 {
		return 0
	}
	s := l.scratch[:0]
	if l.n < len(l.buf) {
		s = append(s, l.buf[:l.n]...)
	} else {
		s = append(s, l.buf...)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

package core

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/memsim"
)

// streamSlot is one circular-buffer entry of a streaming run: the batch
// engine's scheduling fields plus the identity of the request occupying the
// slot (for completion accounting).
type streamSlot struct {
	busy    bool
	stage   int
	req     exec.Request
	retries uint64
}

// streamSlotPool recycles the streaming scheduling slots across runs, so a
// load sweep that executes one stream run per (technique, load, worker)
// point reuses one buffer per concurrent run.
var streamSlotPool sync.Pool

// getStreamSlots returns a zeroed slot buffer of length n from the pool.
func getStreamSlots(n int) *[]streamSlot { return exec.GetPooled[streamSlot](&streamSlotPool, n) }

// RunStream executes AMAC over a pull-based request stream instead of a
// fixed lookup batch: every slot of the circular buffer refills from the
// Source the moment its lookup completes, so under open-loop traffic a
// freed slot picks up the next queued request immediately — mid-batch, at
// any point in any other lookup's chain. This is the paper's merged
// terminal/initial stage optimisation applied to serving: where the GP and
// SPP stream adapters (package exec) admit work only at group boundaries or
// static refill points and so let the admission queue grow while in-flight
// work drains, AMAC's admission granularity is a single slot visit. The
// difference is measurable as tail latency in the serveN experiment.
//
// The engine idles (Core.AdvanceTo) only when no request is admitted AND no
// lookup is in flight; a source that reports Wait while other slots hold
// work simply leaves the slot empty until the rolling counter returns to it
// after the source's reported next arrival.
//
// Completions are reported to the source at the cycle the Done outcome is
// observed, which is when the response could be sent.
func RunStream[S any](c *memsim.Core, src exec.Source[S], opts Options) RunStats {
	width := opts.Width
	if width <= 0 {
		width = DefaultWidth
	}

	var stats RunStats
	stats.Width = width

	states, putStates := exec.GetStates[S](width)
	defer putStates()
	slotsP := getStreamSlots(width)
	defer streamSlotPool.Put(slotsP)
	slots := *slotsP
	live := 0
	exhausted := false
	waitUntil := uint64(0) // no arrivals before this cycle; skip re-polling

	// tryFill pulls the next admitted request into empty slot k; it returns
	// true if the slot now holds an in-flight lookup.
	tryFill := func(k int) bool {
		if exhausted || c.Cycle() < waitUntil {
			return false
		}
		c.Instr(CostStateSwap)
		pr := src.Pull(c, &states[k], c.Cycle())
		switch pr.Status {
		case exec.Exhausted:
			exhausted = true
		case exec.Wait:
			waitUntil = pr.NextArrival
			if waitUntil <= c.Cycle() {
				waitUntil = c.Cycle() + 1
			}
		case exec.Pulled:
			stats.Initiated++
			issue(c, pr.Out)
			if pr.Out.Done {
				stats.Completed++
				src.Complete(pr.Req, c.Cycle())
				return false
			}
			slots[k] = streamSlot{busy: true, stage: pr.Out.NextStage, req: pr.Req}
			live++
			return true
		}
		return false
	}

	k := 0
	for {
		if k == width {
			k = 0
		}
		s := &slots[k]
		if !s.busy {
			if !tryFill(k) && live == 0 {
				if exhausted {
					return stats
				}
				// Nothing in flight and nothing admitted: sleep until the
				// next arrival, then retry the same slot.
				c.AdvanceTo(waitUntil)
				continue
			}
			k++
			continue
		}

		c.Instr(CostStateSwap)
		out := src.Stage(c, &states[k], s.stage)
		stats.StageVisits++
		if out.Retry {
			s.stage = out.NextStage
			s.retries++
			stats.Retries++
			k++
			continue
		}
		if !out.Done {
			issue(c, out)
			s.stage = out.NextStage
			k++
			continue
		}

		// The lookup completed: report it and refill the slot right away so
		// an in-flight memory access is never wasted (unless the ablation
		// disabled immediate refill).
		stats.Completed++
		live--
		src.Complete(s.req, c.Cycle())
		*s = streamSlot{}
		if !opts.DisableImmediateRefill {
			tryFill(k)
		}
		k++
	}
}

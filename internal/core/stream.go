package core

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
)

// streamSlot is one circular-buffer entry of a streaming run: the batch
// engine's scheduling fields plus the identity of the request occupying the
// slot (for completion accounting).
type streamSlot struct {
	busy    bool
	stage   int
	req     exec.Request
	retries uint64
}

// streamSlotPool recycles the streaming scheduling slots across runs, so a
// load sweep that executes one stream run per (technique, load, worker)
// point reuses one buffer per concurrent run.
var streamSlotPool sync.Pool

// getStreamSlots returns a zeroed slot buffer of length n from the pool.
func getStreamSlots(n int) *[]streamSlot { return exec.GetPooled[streamSlot](&streamSlotPool, n) }

// RunStream executes AMAC over a pull-based request stream instead of a
// fixed lookup batch: every slot of the circular buffer refills from the
// Source the moment its lookup completes, so under open-loop traffic a
// freed slot picks up the next queued request immediately — mid-batch, at
// any point in any other lookup's chain. This is the paper's merged
// terminal/initial stage optimisation applied to serving: where the GP and
// SPP stream adapters (package exec) admit work only at group boundaries or
// static refill points and so let the admission queue grow while in-flight
// work drains, AMAC's admission granularity is a single slot visit. The
// difference is measurable as tail latency in the serveN experiment.
//
// The engine idles (Core.AdvanceTo) only when no request is admitted AND no
// lookup is in flight; a source that reports Wait while other slots hold
// work simply leaves the slot empty until the rolling counter returns to it
// after the source's reported next arrival.
//
// Completions are reported to the source at the cycle the Done outcome is
// observed, which is when the response could be sent.
func RunStream[S any](c *memsim.Core, src exec.Source[S], opts Options) RunStats {
	width := opts.resolveWidth(c)

	// Controller-driven runs provision the slot buffer at the growth cap and
	// move the active window inside it, exactly as in the batch engine.
	ctl := opts.Controller
	capW := width
	var probe widthProbe
	if ctl != nil {
		capW = opts.maxWidth(width)
		probe = newWidthProbe(c, opts.probeInterval(width))
	}

	// Trace methods are nil-safe no-ops; see core.Run.
	tr := opts.Trace

	var stats RunStats
	stats.Width = width
	stats.MinWidth, stats.MaxWidth = width, width

	states, putStates := exec.GetStates[S](capW)
	defer putStates()
	slotsP := getStreamSlots(capW)
	defer streamSlotPool.Put(slotsP)
	slots := *slotsP
	live := 0
	exhausted := false
	waitUntil := uint64(0) // no arrivals before this cycle; skip re-polling

	// admit is the refill bound: slots [0, admit) may pull requests. After a
	// shrink, admit drops first and width follows once the surplus in-flight
	// lookups in [admit, width) complete and retire their slots.
	//
	// The resize bookkeeping deliberately mirrors core.Run's: the engines'
	// slot types differ and both loops are zero-allocation hot paths, so the
	// logic is kept in sync by the symmetric tests in resize_test.go rather
	// than shared through a busy(i) callback that would escape to the heap.
	admit := width
	draining := 0
	applyWidth := func(target int) {
		if target == admit {
			return
		}
		stats.WidthChanges++
		if target < stats.MinWidth {
			stats.MinWidth = target
		}
		if target > stats.MaxWidth {
			stats.MaxWidth = target
		}
		if target >= width {
			width, admit, draining = target, target, 0
			return
		}
		admit = target
		draining = 0
		for i := admit; i < width; i++ {
			if slots[i].busy {
				draining++
			}
		}
		if draining == 0 {
			width = admit
		}
	}

	// tryFill pulls the next admitted request into empty slot k; it returns
	// true if the slot now holds an in-flight lookup.
	tryFill := func(k int) bool {
		if k >= admit || exhausted || c.Cycle() < waitUntil {
			return false
		}
		pullAt := c.Cycle()
		c.Instr(CostStateSwap)
		pr := src.Pull(c, &states[k], c.Cycle())
		switch pr.Status {
		case exec.Exhausted:
			exhausted = true
		case exec.Wait:
			waitUntil = pr.NextArrival
			if waitUntil <= c.Cycle() {
				waitUntil = c.Cycle() + 1
			}
		case exec.Pulled:
			stats.Initiated++
			issue(c, pr.Out)
			tr.SlotStart(pullAt, k, pr.Req.Index)
			if pr.Out.Prefetch != 0 {
				tr.SlotPrefetch(c.Cycle(), k)
			}
			if pr.Out.Done {
				stats.Completed++
				src.Complete(pr.Req, c.Cycle())
				tr.SlotEnd(c.Cycle(), k)
				return false
			}
			slots[k] = streamSlot{busy: true, stage: pr.Out.NextStage, req: pr.Req}
			live++
			return true
		}
		return false
	}

	k := 0
	stopped := false
	for {
		if k >= width {
			k = 0
		}
		// Sampling stops with the run: a stopped engine only drains, and a
		// late positive verdict must not reopen admission.
		if ctl != nil && !stopped && stats.Completed-probe.lastCompleted >= probe.interval {
			w := probe.sample(c, admit, stats.Completed)
			tr.EngineSample(c.Cycle(), admit, w.Outstanding)
			switch target := ctl.Sample(w); {
			case target < 0:
				// StopRun: close admission and let the in-flight lookups
				// drain; the source keeps the unserved requests.
				stopped = true
				admit = 0
				draining = 0
				tr.Decision(c.Cycle(), obs.DecStopRun, int64(stats.Initiated), 0)
			case target > 0:
				old := admit
				applyWidth(clampWidth(target, capW))
				if admit != old {
					tr.WidthChange(c.Cycle(), admit)
				}
			}
		}
		s := &slots[k]
		if !s.busy {
			if !tryFill(k) && live == 0 {
				if exhausted || stopped {
					return stats
				}
				// Nothing in flight and nothing admitted: sleep until the
				// next arrival, then retry the same slot.
				c.AdvanceTo(waitUntil)
				continue
			}
			k++
			continue
		}

		stage := s.stage
		visitAt := c.Cycle()
		c.Instr(CostStateSwap)
		out := src.Stage(c, &states[k], stage)
		stats.StageVisits++
		if out.Retry {
			s.stage = out.NextStage
			s.retries++
			stats.Retries++
			tr.SlotRetry(c.Cycle(), k, stage)
			k++
			continue
		}
		tr.StageVisit(visitAt, c.Cycle(), k, stage)
		if !out.Done {
			issue(c, out)
			if out.Prefetch != 0 {
				tr.SlotPrefetch(c.Cycle(), k)
			}
			s.stage = out.NextStage
			k++
			continue
		}

		// The lookup completed: report it and refill the slot right away so
		// an in-flight memory access is never wasted (unless the ablation
		// disabled immediate refill or the slot is draining out of a shrunk
		// window).
		stats.Completed++
		live--
		src.Complete(s.req, c.Cycle())
		*s = streamSlot{}
		tr.SlotEnd(c.Cycle(), k)
		if k >= admit {
			if draining > 0 {
				if draining--; draining == 0 {
					width = admit
				}
			}
		} else if !opts.DisableImmediateRefill {
			tryFill(k)
		}
		k++
	}
}

package core

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
)

// streamSlot is one circular-buffer entry of a streaming run: the batch
// engine's scheduling fields plus the identity of the request occupying the
// slot (for completion accounting).
type streamSlot struct {
	busy    bool
	stage   int
	req     exec.Request
	retries uint64
}

// streamSlotPool recycles the streaming scheduling slots across runs, so a
// load sweep that executes one stream run per (technique, load, worker)
// point reuses one buffer per concurrent run.
var streamSlotPool sync.Pool

// getStreamSlots returns a zeroed slot buffer of length n from the pool.
func getStreamSlots(n int) *[]streamSlot { return exec.GetPooled[streamSlot](&streamSlotPool, n) }

// RunStream executes AMAC over a pull-based request stream instead of a
// fixed lookup batch: every slot of the circular buffer refills from the
// Source the moment its lookup completes, so under open-loop traffic a
// freed slot picks up the next queued request immediately — mid-batch, at
// any point in any other lookup's chain. This is the paper's merged
// terminal/initial stage optimisation applied to serving: where the GP and
// SPP stream adapters (package exec) admit work only at group boundaries or
// static refill points and so let the admission queue grow while in-flight
// work drains, AMAC's admission granularity is a single slot visit. The
// difference is measurable as tail latency in the serveN experiment.
//
// The engine idles (Core.AdvanceTo) only when no request is admitted AND no
// lookup is in flight; a source that reports Wait while other slots hold
// work simply leaves the slot empty until the rolling counter returns to it
// after the source's reported next arrival.
//
// Completions are reported to the source at the cycle the Done outcome is
// observed, which is when the response could be sent.
func RunStream[S any](c *memsim.Core, src exec.Source[S], opts Options) RunStats {
	e := NewStreamEngine(c, src, opts)
	e.Run(^uint64(0))
	stats := e.Stats()
	e.Close()
	return stats
}

// StreamEngine is the streaming AMAC scheduler as a resumable object: Run
// executes the exact loop RunStream runs, but returns control at a caller-
// chosen simulated-cycle bound instead of only at end-of-stream. Pausing
// happens between slot visits and charges nothing, so driving an engine in
// bounded slices is bit-identical to one uninterrupted run — the property
// the fault-tolerant serving coordinator is built on: it steps every shard's
// engine on a common virtual timeline, injecting faults and routing recovery
// traffic at the slice boundaries, without perturbing a single simulated
// cycle of the execution in between.
//
// A StreamEngine additionally enforces Options.Deadline on in-flight
// requests and supports Abort (a crashed shard discarding its in-flight
// work); both paths retire slots through the same drain bookkeeping a
// controller-driven window shrink uses, so no slot and no pooled state is
// ever leaked: Initiated = Completed + TimedOut + Aborted once the engine
// finishes.
type StreamEngine[S any] struct {
	c   *memsim.Core
	src exec.Source[S]
	tr  *obs.CoreTrace

	deadline uint64
	noRefill bool
	sink     exec.FailSink

	ctl   exec.WidthController
	probe widthProbe

	states    []S
	putStates func()
	slotsP    *[]streamSlot
	slots     []streamSlot

	stats     RunStats
	live      int
	exhausted bool
	waitUntil uint64

	// admit is the refill bound: slots [0, admit) may pull requests. After a
	// shrink, admit drops first and width follows once the surplus in-flight
	// lookups in [admit, width) complete and retire their slots.
	//
	// The resize bookkeeping deliberately mirrors core.Run's: the engines'
	// slot types differ and both loops are zero-allocation hot paths, so the
	// logic is kept in sync by the symmetric tests in resize_test.go rather
	// than shared through a busy(i) callback that would escape to the heap.
	width    int
	admit    int
	draining int
	capW     int

	k       int
	stopped bool
	done    bool
}

// NewStreamEngine prepares a streaming run without executing any of it. The
// caller must Close the engine when finished with it (RunStream does all
// three steps).
func NewStreamEngine[S any](c *memsim.Core, src exec.Source[S], opts Options) *StreamEngine[S] {
	width := opts.resolveWidth(c)

	// Controller-driven runs provision the slot buffer at the growth cap and
	// move the active window inside it, exactly as in the batch engine.
	e := &StreamEngine[S]{
		c:        c,
		src:      src,
		tr:       opts.Trace,
		deadline: opts.Deadline,
		noRefill: opts.DisableImmediateRefill,
		ctl:      opts.Controller,
		width:    width,
		admit:    width,
		capW:     width,
	}
	if e.ctl != nil {
		e.capW = opts.maxWidth(width)
		e.probe = newWidthProbe(c, opts.probeInterval(width))
	}
	e.sink, _ = src.(exec.FailSink)

	e.stats.Width = width
	e.stats.MinWidth, e.stats.MaxWidth = width, width

	e.states, e.putStates = exec.GetStates[S](e.capW)
	e.slotsP = getStreamSlots(e.capW)
	e.slots = *e.slotsP
	return e
}

// Close releases the engine's pooled slot and state buffers. The engine must
// not be used afterwards.
func (e *StreamEngine[S]) Close() {
	if e.slotsP == nil {
		return
	}
	e.putStates()
	streamSlotPool.Put(e.slotsP)
	e.slotsP = nil
	e.slots = nil
	e.states = nil
}

// Stats returns the engine's scheduling counters so far.
func (e *StreamEngine[S]) Stats() RunStats { return e.stats }

// Done reports whether the run has finished (source exhausted or stopped,
// and every in-flight lookup retired).
func (e *StreamEngine[S]) Done() bool { return e.done }

// Live returns the number of in-flight requests.
func (e *StreamEngine[S]) Live() int { return e.live }

// applyWidth moves the admission bound to target, draining surplus slots.
func (e *StreamEngine[S]) applyWidth(target int) {
	if target == e.admit {
		return
	}
	e.stats.WidthChanges++
	if target < e.stats.MinWidth {
		e.stats.MinWidth = target
	}
	if target > e.stats.MaxWidth {
		e.stats.MaxWidth = target
	}
	if target >= e.width {
		e.width, e.admit, e.draining = target, target, 0
		return
	}
	e.admit = target
	e.draining = 0
	for i := e.admit; i < e.width; i++ {
		if e.slots[i].busy {
			e.draining++
		}
	}
	if e.draining == 0 {
		e.width = e.admit
	}
}

// tryFill pulls the next admitted request into empty slot k; it returns
// true if the slot now holds an in-flight lookup.
func (e *StreamEngine[S]) tryFill(k int) bool {
	c := e.c
	if k >= e.admit || e.exhausted || c.Cycle() < e.waitUntil {
		return false
	}
	pullAt := c.Cycle()
	c.Instr(CostStateSwap)
	p := c.Profiler()
	p.PushStage(0)
	pr := e.src.Pull(c, &e.states[k], c.Cycle())
	p.Pop()
	switch pr.Status {
	case exec.Exhausted:
		e.exhausted = true
	case exec.Wait:
		e.waitUntil = pr.NextArrival
		if e.waitUntil <= c.Cycle() {
			e.waitUntil = c.Cycle() + 1
		}
	case exec.Pulled:
		e.stats.Initiated++
		issue(c, pr.Out)
		e.tr.SlotStart(pullAt, k, pr.Req.Index)
		if pr.Out.Prefetch != 0 {
			e.tr.SlotPrefetch(c.Cycle(), k)
		}
		if pr.Out.Done {
			e.stats.Completed++
			e.src.Complete(pr.Req, c.Cycle())
			e.tr.SlotEnd(c.Cycle(), k)
			return false
		}
		e.slots[k] = streamSlot{busy: true, stage: pr.Out.NextStage, req: pr.Req}
		e.live++
		return true
	}
	return false
}

// retire empties busy slot k after its request left the engine (completed,
// timed out or aborted), running the shrink-drain bookkeeping and — on the
// completion path — the immediate refill that defines streaming AMAC.
func (e *StreamEngine[S]) retire(k int, refill bool) {
	e.live--
	e.slots[k] = streamSlot{}
	if k >= e.admit {
		if e.draining > 0 {
			if e.draining--; e.draining == 0 {
				e.width = e.admit
			}
		}
	} else if refill && !e.noRefill {
		e.tryFill(k)
	}
}

// Abort discards every in-flight request — the engine's state when its shard
// crashes. Each busy slot is reported to the source's exec.FailSink (when
// implemented) with FailCrash and counted in Stats().Aborted; the slot and
// its pooled state are retired through the normal drain path, so nothing
// leaks and the engine can keep running after the shard restarts. Returns
// the number of requests discarded.
func (e *StreamEngine[S]) Abort() int {
	n := 0
	for k := range e.slots {
		s := &e.slots[k]
		if !s.busy {
			continue
		}
		n++
		e.stats.Aborted++
		if e.sink != nil {
			e.sink.Fail(s.req, e.c.Cycle(), exec.FailCrash)
		}
		e.tr.SlotAbandon(e.c.Cycle(), k, s.req.Index, 1)
		e.states[k] = *new(S)
		e.retire(k, false)
	}
	return n
}

// Run executes the streaming loop until the source is exhausted (or a
// controller stop) and every in-flight lookup has retired — then it returns
// true — or until the simulated clock reaches limit, returning false with
// the engine paused between slot visits. Passing ^uint64(0) runs to
// completion. A paused engine holds no hidden host state: resuming with a
// later limit continues the identical cycle-for-cycle execution.
func (e *StreamEngine[S]) Run(limit uint64) bool {
	if e.done {
		return true
	}
	c := e.c
	p := c.Profiler()
	p.Push(p.Frame("AMAC"))
	defer p.Pop()
	for {
		if c.Cycle() >= limit {
			return false
		}
		if e.k >= e.width {
			e.k = 0
		}
		k := e.k
		// Sampling stops with the run: a stopped engine only drains, and a
		// late positive verdict must not reopen admission.
		if e.ctl != nil && !e.stopped && e.stats.Completed-e.probe.lastCompleted >= e.probe.interval {
			w := e.probe.sample(c, e.admit, e.stats.Completed)
			e.tr.EngineSample(c.Cycle(), e.admit, w.Outstanding)
			switch target := e.ctl.Sample(w); {
			case target < 0:
				// StopRun: close admission and let the in-flight lookups
				// drain; the source keeps the unserved requests.
				e.stopped = true
				e.admit = 0
				e.draining = 0
				e.tr.Decision(c.Cycle(), obs.DecStopRun, int64(e.stats.Initiated), 0)
			case target > 0:
				old := e.admit
				e.applyWidth(clampWidth(target, e.capW))
				if e.admit != old {
					e.tr.WidthChange(c.Cycle(), e.admit)
				}
			}
		}
		s := &e.slots[k]
		if !s.busy {
			if !e.tryFill(k) && e.live == 0 {
				if e.exhausted || e.stopped {
					e.done = true
					return true
				}
				// Nothing in flight and nothing admitted: sleep until the
				// next arrival — or the pause bound, whichever is earlier.
				// The wait is queue idle, charged under the admit frame.
				p.Push(p.Frame("admit"))
				if e.waitUntil > limit {
					c.AdvanceTo(limit)
					p.Pop()
					return false
				}
				c.AdvanceTo(e.waitUntil)
				p.Pop()
				continue
			}
			e.k++
			continue
		}

		// Deadline enforcement happens at the slot visit (the engine touches
		// a request's state nowhere else): an expired request is closed and
		// its slot drained without abandoning the in-flight memory ops —
		// whatever its last stage left in the MSHRs settles on its own.
		if e.deadline != 0 && c.Cycle() > s.req.Admit+e.deadline {
			c.Instr(CostStateSwap)
			e.stats.TimedOut++
			if e.sink != nil {
				e.sink.Fail(s.req, c.Cycle(), exec.FailDeadline)
			}
			e.tr.SlotAbandon(c.Cycle(), k, s.req.Index, 0)
			e.states[k] = *new(S)
			e.retire(k, true)
			e.k++
			continue
		}

		stage := s.stage
		visitAt := c.Cycle()
		c.Instr(CostStateSwap)
		p.PushStage(stage)
		out := e.src.Stage(c, &e.states[k], stage)
		p.Pop()
		e.stats.StageVisits++
		if out.Retry {
			s.stage = out.NextStage
			s.retries++
			e.stats.Retries++
			e.tr.SlotRetry(c.Cycle(), k, stage)
			e.k++
			continue
		}
		e.tr.StageVisit(visitAt, c.Cycle(), k, stage)
		if !out.Done {
			issue(c, out)
			if out.Prefetch != 0 {
				e.tr.SlotPrefetch(c.Cycle(), k)
			}
			s.stage = out.NextStage
			e.k++
			continue
		}

		// The lookup completed: report it and refill the slot right away so
		// an in-flight memory access is never wasted (unless the ablation
		// disabled immediate refill or the slot is draining out of a shrunk
		// window).
		e.stats.Completed++
		e.src.Complete(s.req, c.Cycle())
		e.tr.SlotEnd(c.Cycle(), k)
		e.retire(k, true)
		e.k++
	}
}

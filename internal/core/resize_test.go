package core_test

import (
	"testing"

	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/exec/exectest"
)

// scriptController replays a fixed width script, one entry per probe sample,
// holding the last entry once the script is exhausted. It also records the
// windows it saw so tests can check the probe plumbing.
type scriptController struct {
	widths  []int
	next    int
	windows []exec.Window
}

func (s *scriptController) Sample(w exec.Window) int {
	s.windows = append(s.windows, w)
	if s.next < len(s.widths) {
		s.next++
	}
	if s.next == 0 {
		return 0
	}
	return s.widths[s.next-1]
}

// TestAMACResizeMidRunCompletesAll: a run whose width is yanked up and down
// mid-flight must still execute every lookup exactly once with exactly the
// right number of node visits — growth activates fresh slots, shrinkage
// drains the surplus without abandoning in-flight work.
func TestAMACResizeMidRunCompletesAll(t *testing.T) {
	for _, script := range [][]int{
		{16, 4, 12, 2, 20},
		{1},      // collapse to a single slot and stay there
		{24, 24}, // grow to the cap and hold
		{2, 24, 2, 24},
	} {
		m := exectest.NewChainMachine(skewedLengths(500, 11), 5)
		ctl := &scriptController{widths: script}
		stats := core.Run(newCore(), m, core.Options{
			Width: 8, Controller: ctl, MaxWidth: 24, ProbeInterval: 10,
		})
		checkAllCompleted(t, m)
		if stats.Initiated != 500 || stats.Completed != 500 {
			t.Fatalf("script %v: stats %+v", script, stats)
		}
		if stats.WidthChanges == 0 {
			t.Fatalf("script %v: no width changes recorded", script)
		}
		if stats.MinWidth > 8 || stats.MaxWidth < 8 {
			t.Fatalf("script %v: width extremes [%d, %d] exclude the start width", script, stats.MinWidth, stats.MaxWidth)
		}
		if len(ctl.windows) == 0 {
			t.Fatalf("script %v: controller never sampled", script)
		}
	}
}

// TestAMACResizeWindowsCarrySignal: probe windows must carry non-trivial
// counter deltas (cycles advance, lookups complete, memory activity shows).
func TestAMACResizeWindowsCarrySignal(t *testing.T) {
	m := exectest.NewChainMachine(uniformLengths(400, 4), 5)
	ctl := &scriptController{}
	core.Run(newCore(), m, core.Options{Width: 10, Controller: ctl, ProbeInterval: 40})
	if len(ctl.windows) < 5 {
		t.Fatalf("expected several probe windows, got %d", len(ctl.windows))
	}
	for i, w := range ctl.windows {
		if w.Cycles == 0 || w.Completed == 0 {
			t.Fatalf("window %d carries no signal: %+v", i, w)
		}
		if w.Width != 10 {
			t.Fatalf("window %d width = %d, want 10 (script never resizes)", i, w.Width)
		}
	}
}

// TestAMACResizeClampsToCap: a controller demanding absurd positive widths
// is clamped to [1, MaxWidth] (negative returns are the StopRun contract,
// covered by the stop tests).
func TestAMACResizeClampsToCap(t *testing.T) {
	m := exectest.NewChainMachine(uniformLengths(300, 3), 4)
	ctl := &scriptController{widths: []int{1000, 2, 7}}
	stats := core.Run(newCore(), m, core.Options{
		Width: 4, Controller: ctl, MaxWidth: 12, ProbeInterval: 8,
	})
	checkAllCompleted(t, m)
	if stats.MaxWidth > 12 {
		t.Fatalf("width grew past the cap: %+v", stats)
	}
	if stats.MinWidth < 1 {
		t.Fatalf("width fell below 1: %+v", stats)
	}
}

// TestAMACControllerMatchesStaticOutput: with a controller that always keeps
// the width, the run performs the same work as the static engine (same
// visits and completions; the only difference is the probe overhead).
func TestAMACControllerMatchesStaticOutput(t *testing.T) {
	lengths := skewedLengths(400, 3)
	static := exectest.NewChainMachine(lengths, 5)
	core.Run(newCore(), static, core.Options{Width: 10})

	held := exectest.NewChainMachine(lengths, 5)
	core.Run(newCore(), held, core.Options{Width: 10, Controller: &scriptController{}, ProbeInterval: 32})

	checkAllCompleted(t, held)
	for i := range lengths {
		if static.Visits[i] != held.Visits[i] {
			t.Fatalf("lookup %d: static visits %d, controller-held visits %d", i, static.Visits[i], held.Visits[i])
		}
	}
}

// TestStreamResizeCompletesAll: the streaming engine under mid-run resizes
// must serve every request exactly once.
func TestStreamResizeCompletesAll(t *testing.T) {
	for _, script := range [][]int{{16, 2, 12}, {1}, {24}} {
		m := exectest.NewChainMachine(skewedLengths(400, 9), 5)
		src := exec.NewMachineSource[exectest.ChainState](m)
		stats := core.RunStream(newCore(), src, core.Options{
			Width: 8, Controller: &scriptController{widths: script}, MaxWidth: 24, ProbeInterval: 10,
		})
		checkAllCompleted(t, m)
		if stats.Completed != 400 {
			t.Fatalf("script %v: completed %d of 400", script, stats.Completed)
		}
		if stats.WidthChanges == 0 {
			t.Fatalf("script %v: no width changes recorded", script)
		}
	}
}

// stopAfterController requests StopRun after a fixed number of samples.
type stopAfterController struct {
	samples int
	stop    int
}

func (s *stopAfterController) Sample(w exec.Window) int {
	s.samples++
	if s.samples >= s.stop {
		return exec.StopRun
	}
	return 0
}

// TestAMACStopRunDrainsAndReports: a StopRun verdict must close admission,
// drain every in-flight lookup (no partial chains, no double visits) and
// report the consumed prefix in Initiated so the caller can resume.
func TestAMACStopRunDrainsAndReports(t *testing.T) {
	lengths := skewedLengths(600, 13)
	m := exectest.NewChainMachine(lengths, 5)
	stats := core.Run(newCore(), m, core.Options{
		Width: 8, Controller: &stopAfterController{stop: 3}, ProbeInterval: 20,
	})
	if stats.Initiated >= 600 {
		t.Fatalf("run was not stopped early: %+v", stats)
	}
	if stats.Completed != stats.Initiated {
		t.Fatalf("stop must drain every initiated lookup: %+v", stats)
	}
	if len(m.Completions) != stats.Completed {
		t.Fatalf("machine saw %d completions, stats %d", len(m.Completions), stats.Completed)
	}
	// Every completed lookup ran its full chain; none ran twice.
	seen := make(map[int]bool)
	for _, idx := range m.Completions {
		if seen[idx] {
			t.Fatalf("lookup %d completed twice", idx)
		}
		seen[idx] = true
		if m.Visits[idx] != lengths[idx] {
			t.Fatalf("lookup %d drained after %d of %d visits", idx, m.Visits[idx], lengths[idx])
		}
	}

	// Resuming from Initiated covers the rest exactly once.
	rest := exec.Shard[exectest.ChainState]{M: m, Lo: stats.Initiated, N: 600 - stats.Initiated}
	core.Run(newCore(), rest, core.Options{Width: 8})
	checkAllCompleted(t, m)
}

// TestStreamStopRunReturns: the streaming engine must honour StopRun even
// while the source still has requests, draining in-flight work first.
func TestStreamStopRunReturns(t *testing.T) {
	m := exectest.NewChainMachine(skewedLengths(500, 21), 5)
	src := exec.NewMachineSource[exectest.ChainState](m)
	stats := core.RunStream(newCore(), src, core.Options{
		Width: 8, Controller: &stopAfterController{stop: 3}, ProbeInterval: 20,
	})
	if stats.Initiated >= 500 {
		t.Fatalf("stream was not stopped early: %+v", stats)
	}
	if stats.Completed != stats.Initiated {
		t.Fatalf("stop must drain in-flight requests: %+v", stats)
	}
}

// flipFlopController stops on its second sample and would demand growth on
// any later one — a latched stop must never give it that later sample.
type flipFlopController struct{ samples int }

func (f *flipFlopController) Sample(w exec.Window) int {
	f.samples++
	if f.samples == 2 {
		return exec.StopRun
	}
	return 16
}

// TestAMACStopRunIsLatched: once a controller says StopRun, the engine must
// not consult it again during the drain — a late positive verdict reopening
// admission would turn a stopped run into a full one.
func TestAMACStopRunIsLatched(t *testing.T) {
	m := exectest.NewChainMachine(skewedLengths(800, 3), 5)
	ctl := &flipFlopController{}
	stats := core.Run(newCore(), m, core.Options{
		Width: 8, Controller: ctl, MaxWidth: 24, ProbeInterval: 4,
	})
	if stats.Initiated >= 800 {
		t.Fatalf("stopped run served the whole input: %+v", stats)
	}
	if stats.Completed != stats.Initiated {
		t.Fatalf("stop must drain exactly the initiated lookups: %+v", stats)
	}
	if ctl.samples != 2 {
		t.Fatalf("controller sampled %d times; sampling must end at the StopRun verdict", ctl.samples)
	}

	sm := exectest.NewChainMachine(skewedLengths(800, 3), 5)
	src := exec.NewMachineSource[exectest.ChainState](sm)
	sctl := &flipFlopController{}
	sstats := core.RunStream(newCore(), src, core.Options{
		Width: 8, Controller: sctl, MaxWidth: 24, ProbeInterval: 4,
	})
	if sstats.Initiated >= 800 || sctl.samples != 2 {
		t.Fatalf("stream stop not latched: %+v after %d samples", sstats, sctl.samples)
	}
}

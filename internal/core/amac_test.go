package core_test

import (
	"testing"

	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
	"amac/internal/xrand"
)

func newCore() *memsim.Core {
	sys := memsim.MustSystem(memsim.XeonX5670())
	return sys.NewCore()
}

func uniformLengths(n, l int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = l
	}
	return ls
}

func skewedLengths(n int, seed uint64) []int {
	// A mix of very short and very long chains, the kind of irregularity
	// the paper's skewed hash tables produce.
	rng := xrand.New(seed)
	ls := make([]int, n)
	for i := range ls {
		if rng.Intn(10) == 0 {
			ls[i] = 10 + rng.Intn(20)
		} else {
			ls[i] = 1 + rng.Intn(3)
		}
	}
	return ls
}

func checkAllCompleted(t *testing.T, m *exectest.ChainMachine) {
	t.Helper()
	if len(m.Completions) != len(m.Lengths) {
		t.Fatalf("completed %d of %d lookups", len(m.Completions), len(m.Lengths))
	}
	seen := make(map[int]bool)
	for _, idx := range m.Completions {
		if seen[idx] {
			t.Fatalf("lookup %d completed twice", idx)
		}
		seen[idx] = true
	}
	for i, want := range m.Lengths {
		if m.Visits[i] != want {
			t.Fatalf("lookup %d visited %d nodes, want %d", i, m.Visits[i], want)
		}
	}
}

func TestAMACCompletesAllLookups(t *testing.T) {
	for _, width := range []int{1, 2, 10, 32} {
		m := exectest.NewChainMachine(skewedLengths(300, 7), 5)
		stats := core.Run(newCore(), m, core.Options{Width: width})
		checkAllCompleted(t, m)
		if stats.Initiated != 300 || stats.Completed != 300 {
			t.Fatalf("stats %+v", stats)
		}
	}
}

func TestAMACZeroLookups(t *testing.T) {
	m := exectest.NewChainMachine(nil, 3)
	stats := core.Run(newCore(), m, core.Options{Width: 8})
	if stats.Completed != 0 || stats.Initiated != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestAMACDefaultWidth(t *testing.T) {
	m := exectest.NewChainMachine(uniformLengths(100, 3), 4)
	stats := core.Run(newCore(), m, core.Options{})
	if stats.Width != core.DefaultWidth {
		t.Fatalf("width = %d, want default %d", stats.Width, core.DefaultWidth)
	}
	checkAllCompleted(t, m)
}

func TestAMACWidthClampedToLookupCount(t *testing.T) {
	m := exectest.NewChainMachine(uniformLengths(3, 2), 3)
	stats := core.Run(newCore(), m, core.Options{Width: 100})
	if stats.Width != 3 {
		t.Fatalf("width = %d, want 3", stats.Width)
	}
	checkAllCompleted(t, m)
}

func TestAMACBeatsBaselineOnUniformChains(t *testing.T) {
	n, l := 400, 4
	base := newCore()
	exec.Baseline(base, exectest.NewChainMachine(uniformLengths(n, l), l+1))
	amac := newCore()
	core.Run(amac, exectest.NewChainMachine(uniformLengths(n, l), l+1), core.Options{Width: 10})
	if amac.Cycle()*2 >= base.Cycle() {
		t.Fatalf("AMAC (%d cycles) should be far faster than baseline (%d cycles) on DRAM-resident chains", amac.Cycle(), base.Cycle())
	}
}

func TestAMACRobustToIrregularChains(t *testing.T) {
	// The paper's central claim: under irregular lookups AMAC retains its
	// advantage while GP and SPP lose much of theirs. Compare the
	// slowdown each technique suffers going from uniform to skewed chains
	// with the same total number of node visits.
	const n = 600
	skew := skewedLengths(n, 3)
	totalVisits := 0
	for _, l := range skew {
		totalVisits += l
	}
	uniformLen := totalVisits / n
	uni := uniformLengths(n, uniformLen)

	cyclesPerVisit := func(run func(c *memsim.Core, lengths []int)) (uniform, skewed float64) {
		cu := newCore()
		run(cu, uni)
		cs := newCore()
		run(cs, skew)
		return float64(cu.Cycle()) / float64(n*uniformLen), float64(cs.Cycle()) / float64(totalVisits)
	}

	gpU, gpS := cyclesPerVisit(func(c *memsim.Core, lengths []int) {
		exec.GroupPrefetch(c, exectest.NewChainMachine(lengths, uniformLen+1), 10)
	})
	amacU, amacS := cyclesPerVisit(func(c *memsim.Core, lengths []int) {
		core.Run(c, exectest.NewChainMachine(lengths, uniformLen+1), core.Options{Width: 10})
	})

	gpSlowdown := gpS / gpU
	amacSlowdown := amacS / amacU
	if amacSlowdown >= gpSlowdown {
		t.Fatalf("AMAC slowdown under skew (%.2fx) should be smaller than GP's (%.2fx)", amacSlowdown, gpSlowdown)
	}
	if amacSlowdown > 1.5 {
		t.Fatalf("AMAC should be robust to irregular chains, got %.2fx slowdown", amacSlowdown)
	}
}

func TestAMACOutperformsGPAndSPPOnIrregularChains(t *testing.T) {
	const n = 600
	lengths := skewedLengths(n, 11)

	gp := newCore()
	exec.GroupPrefetch(gp, exectest.NewChainMachine(lengths, 3), 10)
	spp := newCore()
	exec.SoftwarePipeline(spp, exectest.NewChainMachine(lengths, 3), 10)
	amac := newCore()
	core.Run(amac, exectest.NewChainMachine(lengths, 3), core.Options{Width: 10})

	if amac.Cycle() >= gp.Cycle() {
		t.Fatalf("AMAC (%d) should beat GP (%d) under irregular chains", amac.Cycle(), gp.Cycle())
	}
	if amac.Cycle() >= spp.Cycle() {
		t.Fatalf("AMAC (%d) should beat SPP (%d) under irregular chains", amac.Cycle(), spp.Cycle())
	}
}

func TestAMACInstructionOverheadBelowGPAndSPP(t *testing.T) {
	n := 500
	lengths := uniformLengths(n, 4)
	gp := newCore()
	exec.GroupPrefetch(gp, exectest.NewChainMachine(lengths, 5), 10)
	spp := newCore()
	exec.SoftwarePipeline(spp, exectest.NewChainMachine(lengths, 5), 10)
	amac := newCore()
	core.Run(amac, exectest.NewChainMachine(lengths, 5), core.Options{Width: 10})
	base := newCore()
	exec.Baseline(base, exectest.NewChainMachine(lengths, 5))

	ai := amac.Stats().Instructions
	if ai >= gp.Stats().Instructions || ai >= spp.Stats().Instructions {
		t.Fatalf("AMAC instructions (%d) should be below GP (%d) and SPP (%d)",
			ai, gp.Stats().Instructions, spp.Stats().Instructions)
	}
	if ai <= base.Stats().Instructions {
		t.Fatal("AMAC must still pay more instructions than the baseline (state management)")
	}
}

func TestAMACResolvesLatchConflicts(t *testing.T) {
	m := exectest.NewLatchMachine(200, 3)
	stats := core.Run(newCore(), m, core.Options{Width: 8})
	if len(m.Completions) != 200 {
		t.Fatalf("completed %d of 200", len(m.Completions))
	}
	if m.Retries == 0 || stats.Retries == 0 {
		t.Fatal("in-flight lookups should have conflicted on the latch at least once")
	}
	if stats.Retries != uint64(m.Retries) {
		t.Fatalf("engine counted %d retries, machine observed %d", stats.Retries, m.Retries)
	}
}

func TestAMACImmediateRefillKeepsMoreAccessesInFlight(t *testing.T) {
	// Disabling the merged terminal/initial stage optimisation (Section 3.1,
	// optimisation 1) must not change results but should cost cycles on
	// early-exit-heavy workloads.
	lengths := skewedLengths(500, 5)

	on := newCore()
	mOn := exectest.NewChainMachine(lengths, 3)
	core.Run(on, mOn, core.Options{Width: 10})
	checkAllCompleted(t, mOn)

	off := newCore()
	mOff := exectest.NewChainMachine(lengths, 3)
	core.Run(off, mOff, core.Options{Width: 10, DisableImmediateRefill: true})
	checkAllCompleted(t, mOff)

	if on.Cycle() > off.Cycle() {
		t.Fatalf("immediate refill (%d cycles) should not be slower than deferred refill (%d cycles)", on.Cycle(), off.Cycle())
	}
}

func TestAMACApproachesMSHRLimit(t *testing.T) {
	// With width 15 > 10 MSHRs, prefetch issue must hit the MSHR limit; the
	// paper's Figure 6c shows no benefit beyond the hardware limit.
	c := newCore()
	core.Run(c, exectest.NewChainMachine(uniformLengths(400, 4), 5), core.Options{Width: 15})
	if c.Stats().MSHRFullStalls == 0 {
		t.Fatal("width 15 should saturate the 10-entry MSHR file")
	}

	c8 := newCore()
	core.Run(c8, exectest.NewChainMachine(uniformLengths(400, 4), 5), core.Options{Width: 8})
	c15 := newCore()
	core.Run(c15, exectest.NewChainMachine(uniformLengths(400, 4), 5), core.Options{Width: 15})
	// Beyond the MSHR limit additional width must not help much.
	if float64(c15.Cycle()) < float64(c8.Cycle())*0.8 {
		t.Fatalf("width 15 (%d cycles) should not be much faster than width 8 (%d cycles)", c15.Cycle(), c8.Cycle())
	}
}

func TestAMACDeterministic(t *testing.T) {
	run := func() uint64 {
		c := newCore()
		core.Run(c, exectest.NewChainMachine(skewedLengths(300, 9), 4), core.Options{Width: 10})
		return c.Cycle()
	}
	if run() != run() {
		t.Fatal("AMAC execution must be deterministic")
	}
}

func TestAMACStageVisitCountMatchesWork(t *testing.T) {
	lengths := uniformLengths(50, 3)
	m := exectest.NewChainMachine(lengths, 4)
	stats := core.Run(newCore(), m, core.Options{Width: 5})
	// Each lookup needs exactly 3 stage visits (3 node hops).
	if stats.StageVisits != 150 {
		t.Fatalf("StageVisits = %d, want 150", stats.StageVisits)
	}
}

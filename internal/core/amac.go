// Package core implements Asynchronous Memory Access Chaining (AMAC), the
// contribution of Kocberber, Falsafi and Grot (VLDB 2015).
//
// AMAC keeps the full state of every in-flight lookup in its own slot of a
// software-managed circular buffer (Figure 4 and Listing 1 of the paper).
// The scheduler walks the buffer with a rolling counter; at each slot it
// loads the lookup's state, jumps to the code stage recorded there, issues
// the prefetch for that lookup's next memory access, and stores the state
// back. Because every lookup is independent of every other lookup's
// position in its own pointer chain:
//
//   - a lookup that finishes early is replaced by a fresh lookup in the same
//     slot immediately (the paper's merged terminal/initial stage
//     optimisation), so the number of in-flight memory accesses stays at the
//     buffer size at all times,
//   - a lookup that needs more accesses than the common case simply keeps
//     its slot for more rounds — no bail-out path exists or is needed,
//   - a lookup that cannot acquire a latch is skipped and retried the next
//     time the rolling counter reaches its slot, so the thread spins at the
//     granularity of the whole buffer rather than on a single latch.
//
// The engine schedules the same stage machines (package exec) as the
// Baseline, Group Prefetching and Software-Pipelined Prefetching engines, so
// comparisons across techniques exercise identical operator code.
package core

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/memsim"
)

// CostStateSwap models AMAC's per-visit overhead: loading a state entry from
// the circular buffer into registers, dispatching on its stage field, and
// storing the updated state back (the paper's Table 3 measures AMAC at about
// 1.5x the baseline instruction count; GP and SPP pay 2.5x and 1.9x).
const CostStateSwap = 6

// DefaultWidth is the default number of in-flight lookups. The paper finds
// that performance saturates once the buffer covers the hardware's MLP limit
// (10 L1-D MSHRs on the Xeon) and recommends values near it.
const DefaultWidth = 10

// Options tunes the AMAC scheduler.
type Options struct {
	// Width is the number of circular-buffer entries (in-flight lookups).
	// Zero selects DefaultWidth.
	Width int
	// DisableImmediateRefill turns off the merged terminal/initial stage
	// optimisation of Section 3.1: when a lookup completes, its slot stays
	// empty until the rolling counter wraps around to it again. Used by the
	// ablation experiments; the paper's AMAC always refills immediately.
	DisableImmediateRefill bool
}

// slot is one circular-buffer entry. The lookup's operator-specific state
// (key, rid, pointer, ...) lives in the parallel states slice owned by Run;
// the slot records the scheduling fields.
type slot struct {
	busy    bool
	stage   int
	retries uint64
}

// slotPool recycles the circular-buffer scheduling slots across runs, so
// sweeps that execute the engine thousands of times (figure 6 alone runs it
// once per window per skew) reuse one buffer. The generic per-lookup state
// slice []S is recycled through exec.GetStates' per-type pools.
var slotPool sync.Pool

// getSlots returns a zeroed slot buffer of length n from the pool.
func getSlots(n int) *[]slot { return exec.GetPooled[slot](&slotPool, n) }

// Run executes every lookup of the machine using AMAC with the given
// options and returns scheduling statistics.
func Run[S any](c *memsim.Core, m exec.Machine[S], opts Options) RunStats {
	width := opts.Width
	if width <= 0 {
		width = DefaultWidth
	}
	n := m.NumLookups()
	if n == 0 {
		return RunStats{Width: width}
	}
	if width > n {
		width = n
	}

	var stats RunStats
	stats.Width = width

	states, putStates := exec.GetStates[S](width)
	defer putStates()
	slotsP := getSlots(width)
	defer slotPool.Put(slotsP)
	slots := *slotsP
	next := 0 // next input lookup to initiate
	live := 0 // slots holding unfinished lookups

	// Prologue: fill the circular buffer, issuing one prefetch per lookup.
	for k := 0; k < width && next < n; k++ {
		c.Instr(CostStateSwap)
		out := m.Init(c, &states[k], next)
		next++
		stats.Initiated++
		issue(c, out)
		if out.Done {
			stats.Completed++
			continue
		}
		slots[k] = slot{busy: true, stage: out.NextStage}
		live++
	}

	// Main loop: the rolling counter k walks the buffer; each visit runs one
	// code stage for the lookup stored in that slot.
	k := 0
	for live > 0 || next < n {
		if k == width {
			k = 0
		}
		s := &slots[k]
		if !s.busy {
			if next < n {
				c.Instr(CostStateSwap)
				out := m.Init(c, &states[k], next)
				next++
				stats.Initiated++
				issue(c, out)
				if out.Done {
					stats.Completed++
				} else {
					*s = slot{busy: true, stage: out.NextStage}
					live++
				}
			}
			k++
			continue
		}

		c.Instr(CostStateSwap)
		out := m.Stage(c, &states[k], s.stage)
		stats.StageVisits++
		if out.Retry {
			// Latch held by another in-flight lookup: remember the stage to
			// re-execute and move on to the next slot (coarse-grained spin).
			s.stage = out.NextStage
			s.retries++
			stats.Retries++
			k++
			continue
		}
		if !out.Done {
			issue(c, out)
			s.stage = out.NextStage
			k++
			continue
		}

		// The lookup completed. Initiate a new lookup in the same slot right
		// away so an in-flight memory access is never wasted (unless the
		// ablation disabled it or the input is exhausted).
		stats.Completed++
		live--
		*s = slot{}
		if !opts.DisableImmediateRefill && next < n {
			c.Instr(CostStateSwap)
			out := m.Init(c, &states[k], next)
			next++
			stats.Initiated++
			issue(c, out)
			if out.Done {
				stats.Completed++
			} else {
				*s = slot{busy: true, stage: out.NextStage}
				live++
			}
		}
		k++
	}
	return stats
}

// issue forwards a stage's prefetch request to the core.
func issue(c *memsim.Core, o exec.Outcome) {
	if o.Prefetch == 0 {
		return
	}
	n := o.PrefetchBytes
	if n <= 0 {
		n = 1
	}
	c.PrefetchSpan(o.Prefetch, n)
}

// RunStats summarises one AMAC execution for tests and reports.
type RunStats struct {
	// Width is the circular-buffer size actually used.
	Width int
	// Initiated counts lookups started (equals the machine's NumLookups
	// when the run completes).
	Initiated int
	// Completed counts lookups finished.
	Completed int
	// StageVisits counts executions of stages >= 1.
	StageVisits uint64
	// Retries counts visits that found a latch held and moved on.
	Retries uint64
}

// Add accumulates another run's scheduling counters, keeping the larger
// Width, so that the per-worker AMAC runs of a sharded parallel phase can be
// folded into one report.
func (s *RunStats) Add(other RunStats) {
	if other.Width > s.Width {
		s.Width = other.Width
	}
	s.Initiated += other.Initiated
	s.Completed += other.Completed
	s.StageVisits += other.StageVisits
	s.Retries += other.Retries
}

// MergeRunStats folds per-worker AMAC scheduling stats into one.
func MergeRunStats(perWorker []RunStats) RunStats {
	var merged RunStats
	for _, w := range perWorker {
		merged.Add(w)
	}
	return merged
}

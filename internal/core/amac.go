// Package core implements Asynchronous Memory Access Chaining (AMAC), the
// contribution of Kocberber, Falsafi and Grot (VLDB 2015).
//
// AMAC keeps the full state of every in-flight lookup in its own slot of a
// software-managed circular buffer (Figure 4 and Listing 1 of the paper).
// The scheduler walks the buffer with a rolling counter; at each slot it
// loads the lookup's state, jumps to the code stage recorded there, issues
// the prefetch for that lookup's next memory access, and stores the state
// back. Because every lookup is independent of every other lookup's
// position in its own pointer chain:
//
//   - a lookup that finishes early is replaced by a fresh lookup in the same
//     slot immediately (the paper's merged terminal/initial stage
//     optimisation), so the number of in-flight memory accesses stays at the
//     buffer size at all times,
//   - a lookup that needs more accesses than the common case simply keeps
//     its slot for more rounds — no bail-out path exists or is needed,
//   - a lookup that cannot acquire a latch is skipped and retried the next
//     time the rolling counter reaches its slot, so the thread spins at the
//     granularity of the whole buffer rather than on a single latch.
//
// The engine schedules the same stage machines (package exec) as the
// Baseline, Group Prefetching and Software-Pipelined Prefetching engines, so
// comparisons across techniques exercise identical operator code.
package core

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
)

// CostStateSwap models AMAC's per-visit overhead: loading a state entry from
// the circular buffer into registers, dispatching on its stage field, and
// storing the updated state back (the paper's Table 3 measures AMAC at about
// 1.5x the baseline instruction count; GP and SPP pay 2.5x and 1.9x).
const CostStateSwap = 6

// DefaultWidth is the default number of in-flight lookups. The paper finds
// that performance saturates once the buffer covers the hardware's MLP limit
// (10 L1-D MSHRs on the Xeon) and recommends values near it.
const DefaultWidth = 10

// CostProbe models the adaptive controller's per-window overhead: reading a
// handful of PMU counters, computing the window deltas and running the
// resize policy. Charged only when a controller is attached, so static runs
// pay nothing.
const CostProbe = 8

// DefaultProbeFactor sets the default probe interval as a multiple of the
// slot-window width: one sample every width*DefaultProbeFactor completions
// keeps controller overhead well under a tenth of a percent of the run.
const DefaultProbeFactor = 4

// Options tunes the AMAC scheduler.
type Options struct {
	// Width is the number of circular-buffer entries (in-flight lookups).
	// Zero selects DefaultWidth.
	Width int
	// DisableImmediateRefill turns off the merged terminal/initial stage
	// optimisation of Section 3.1: when a lookup completes, its slot stays
	// empty until the rolling counter wraps around to it again. Used by the
	// ablation experiments; the paper's AMAC always refills immediately.
	DisableImmediateRefill bool
	// Controller, if non-nil, is sampled every ProbeInterval completions
	// with the window's execution stats and may resize the slot window
	// mid-run (Section 6's dynamic-adjustment argument made concrete).
	// Growth activates fresh slots immediately; shrinkage stops refilling
	// the surplus slots and retires each as its in-flight lookup completes,
	// so no lookup is ever abandoned or restarted. Nil keeps the engine
	// bit-identical to the static scheduler.
	Controller exec.WidthController
	// MaxWidth caps controller-driven growth (and sizes the slot buffer).
	// Zero selects 4x the starting width, at least DefaultWidth.
	MaxWidth int
	// ProbeInterval is the number of completions between controller
	// samples. Zero selects Width*DefaultProbeFactor.
	ProbeInterval int
	// SeedWidthFromMSHRs makes a zero Width start at the core's measured
	// MSHR budget (memsim.Core.MSHRBudget) instead of DefaultWidth: the
	// paper finds throughput saturates once the slot window covers the
	// hardware MLP limit, so seeding there starts the engine near-optimal on
	// any modeled machine — including SMT configurations, where the per-
	// thread budget is a fraction of the L1 MSHR count. An explicit Width
	// always wins.
	SeedWidthFromMSHRs bool
	// Trace, if non-nil, records the run's slot lifecycle (admit, stage
	// visits, retries, prefetches, complete), probe-window samples and width
	// changes into the per-core event ring. Purely observational: simulated
	// results are bit-identical with or without it, and the nil (disabled)
	// path costs one predictable branch per event site.
	Trace *obs.CoreTrace
	// Deadline, if positive, bounds each request's admission→completion time
	// in streaming runs: a busy slot whose request has exceeded its deadline
	// is closed on its next visit — the slot drains exactly like a shrunk
	// window retires, the in-flight memory ops are left to settle in the
	// MSHRs, and the request is reported through exec.FailSink instead of
	// Complete. Batch runs ignore it (a batch has no admission times).
	Deadline uint64
}

// resolveWidth applies the width default: an explicit width wins, then the
// measured MSHR budget when seeding is requested, then DefaultWidth.
func (o Options) resolveWidth(c *memsim.Core) int {
	if o.Width > 0 {
		return o.Width
	}
	if o.SeedWidthFromMSHRs {
		return c.MSHRBudget()
	}
	return DefaultWidth
}

// maxWidth resolves the slot-buffer capacity for a controller-driven run.
func (o Options) maxWidth(width int) int {
	m := o.MaxWidth
	if m <= 0 {
		m = 4 * width
		if m < DefaultWidth {
			m = DefaultWidth
		}
	}
	if m < width {
		m = width
	}
	return m
}

// MinProbeInterval floors the default probe spacing: windows narrower than
// this carry too few completions for a stable cycles-per-completion signal
// (one cold outlier in an 8-completion window doubles its cost), so even a
// narrow slot window samples at least this many completions per window.
const MinProbeInterval = 32

// probeInterval resolves the completions-per-sample probe spacing.
func (o Options) probeInterval(width int) int {
	if o.ProbeInterval > 0 {
		return o.ProbeInterval
	}
	n := width * DefaultProbeFactor
	if n < MinProbeInterval {
		n = MinProbeInterval
	}
	return n
}

// slot is one circular-buffer entry. The lookup's operator-specific state
// (key, rid, pointer, ...) lives in the parallel states slice owned by Run;
// the slot records the scheduling fields.
type slot struct {
	busy    bool
	stage   int
	retries uint64
}

// slotPool recycles the circular-buffer scheduling slots across runs, so
// sweeps that execute the engine thousands of times (figure 6 alone runs it
// once per window per skew) reuse one buffer. The generic per-lookup state
// slice []S is recycled through exec.GetStates' per-type pools.
var slotPool sync.Pool

// getSlots returns a zeroed slot buffer of length n from the pool.
func getSlots(n int) *[]slot { return exec.GetPooled[slot](&slotPool, n) }

// Run executes every lookup of the machine using AMAC with the given
// options and returns scheduling statistics.
func Run[S any](c *memsim.Core, m exec.Machine[S], opts Options) RunStats {
	width := opts.resolveWidth(c)
	n := m.NumLookups()
	if n == 0 {
		return RunStats{Width: width}
	}
	if width > n {
		width = n
	}

	// With a controller attached the slot buffer is provisioned at the
	// growth cap; the active window [0, width) moves inside it. The static
	// path allocates exactly the requested width, as before.
	ctl := opts.Controller
	capW := width
	var probe widthProbe
	if ctl != nil {
		capW = opts.maxWidth(width)
		if capW > n {
			capW = n
		}
		probe = newWidthProbe(c, opts.probeInterval(width))
	}

	// All trace methods are nil-safe no-ops, so the event sites below run
	// unconditionally; the disabled path pays an inlined nil check and zero
	// allocations (see the traced-vs-untraced benchmark pair). The profiler
	// follows the same contract.
	tr := opts.Trace
	p := c.Profiler()
	p.Push(p.Frame("AMAC"))
	defer p.Pop()

	var stats RunStats
	stats.Width = width
	stats.MinWidth, stats.MaxWidth = width, width

	states, putStates := exec.GetStates[S](capW)
	defer putStates()
	slotsP := getSlots(capW)
	defer slotPool.Put(slotsP)
	slots := *slotsP
	next := 0 // next input lookup to initiate
	live := 0 // slots holding unfinished lookups

	// admit is the refill bound: slots [0, admit) may initiate lookups.
	// Normally admit == width; after a shrink, admit drops first and width
	// follows once the draining slots in [admit, width) retire.
	admit := width
	draining := 0

	// applyWidth resizes the active window to target (already clamped).
	// Growth activates zeroed slots immediately; shrinkage closes admission
	// and lets the surplus in-flight lookups finish where they are.
	applyWidth := func(target int) {
		if target == admit {
			return
		}
		stats.WidthChanges++
		if target < stats.MinWidth {
			stats.MinWidth = target
		}
		if target > stats.MaxWidth {
			stats.MaxWidth = target
		}
		if target >= width {
			width, admit, draining = target, target, 0
			return
		}
		admit = target
		draining = 0
		for i := admit; i < width; i++ {
			if slots[i].busy {
				draining++
			}
		}
		if draining == 0 {
			width = admit
		}
	}

	// Prologue: fill the circular buffer, issuing one prefetch per lookup.
	for k := 0; k < width && next < n; k++ {
		admitAt := c.Cycle()
		c.Instr(CostStateSwap)
		p.PushStage(0)
		out := m.Init(c, &states[k], next)
		p.Pop()
		next++
		stats.Initiated++
		issue(c, out)
		tr.SlotStart(admitAt, k, next-1)
		if out.Prefetch != 0 {
			tr.SlotPrefetch(c.Cycle(), k)
		}
		if out.Done {
			stats.Completed++
			tr.SlotEnd(c.Cycle(), k)
			continue
		}
		slots[k] = slot{busy: true, stage: out.NextStage}
		live++
	}

	// Main loop: the rolling counter k walks the buffer; each visit runs one
	// code stage for the lookup stored in that slot.
	k := 0
	stopped := false
	for live > 0 || (next < n && !stopped) {
		if k >= width {
			k = 0
		}
		// Sampling stops with the run: a stopped engine only drains, and a
		// late positive verdict must not reopen admission.
		if ctl != nil && !stopped && stats.Completed-probe.lastCompleted >= probe.interval {
			w := probe.sample(c, admit, stats.Completed)
			tr.EngineSample(c.Cycle(), admit, w.Outstanding)
			switch target := ctl.Sample(w); {
			case target < 0:
				// StopRun: close admission and let the in-flight lookups
				// drain; Initiated tells the caller where to resume.
				stopped = true
				admit = 0
				draining = 0
				tr.Decision(c.Cycle(), obs.DecStopRun, int64(stats.Initiated), 0)
			case target > 0:
				old := admit
				applyWidth(clampWidth(target, capW))
				if admit != old {
					tr.WidthChange(c.Cycle(), admit)
				}
			}
		}
		s := &slots[k]
		if !s.busy {
			if k < admit && next < n {
				admitAt := c.Cycle()
				c.Instr(CostStateSwap)
				p.PushStage(0)
				out := m.Init(c, &states[k], next)
				p.Pop()
				next++
				stats.Initiated++
				issue(c, out)
				tr.SlotStart(admitAt, k, next-1)
				if out.Prefetch != 0 {
					tr.SlotPrefetch(c.Cycle(), k)
				}
				if out.Done {
					stats.Completed++
					tr.SlotEnd(c.Cycle(), k)
				} else {
					*s = slot{busy: true, stage: out.NextStage}
					live++
				}
			}
			k++
			continue
		}

		stage := s.stage
		visitAt := c.Cycle()
		c.Instr(CostStateSwap)
		p.PushStage(stage)
		out := m.Stage(c, &states[k], stage)
		p.Pop()
		stats.StageVisits++
		if out.Retry {
			// Latch held by another in-flight lookup: remember the stage to
			// re-execute and move on to the next slot (coarse-grained spin).
			s.stage = out.NextStage
			s.retries++
			stats.Retries++
			tr.SlotRetry(c.Cycle(), k, stage)
			k++
			continue
		}
		tr.StageVisit(visitAt, c.Cycle(), k, stage)
		if !out.Done {
			issue(c, out)
			if out.Prefetch != 0 {
				tr.SlotPrefetch(c.Cycle(), k)
			}
			s.stage = out.NextStage
			k++
			continue
		}

		// The lookup completed. Initiate a new lookup in the same slot right
		// away so an in-flight memory access is never wasted (unless the
		// ablation disabled it, the input is exhausted, or the slot is
		// draining out of a shrunk window).
		stats.Completed++
		live--
		*s = slot{}
		tr.SlotEnd(c.Cycle(), k)
		if k >= admit {
			if draining > 0 {
				if draining--; draining == 0 {
					width = admit
				}
			}
		} else if !opts.DisableImmediateRefill && next < n {
			admitAt := c.Cycle()
			c.Instr(CostStateSwap)
			p.PushStage(0)
			out := m.Init(c, &states[k], next)
			p.Pop()
			next++
			stats.Initiated++
			issue(c, out)
			tr.SlotStart(admitAt, k, next-1)
			if out.Prefetch != 0 {
				tr.SlotPrefetch(c.Cycle(), k)
			}
			if out.Done {
				stats.Completed++
				tr.SlotEnd(c.Cycle(), k)
			} else {
				*s = slot{busy: true, stage: out.NextStage}
				live++
			}
		}
		k++
	}
	return stats
}

// clampWidth bounds a controller's requested width to [1, cap].
func clampWidth(target, cap int) int {
	if target < 1 {
		return 1
	}
	if target > cap {
		return cap
	}
	return target
}

// widthProbe tracks the between-samples counter state of a controller-driven
// run: the previous Stats snapshot and the completion count at the last
// sample.
type widthProbe struct {
	interval      int
	lastCompleted int
	prev          memsim.Stats
}

// newWidthProbe starts the window clock at the current counters.
func newWidthProbe(c *memsim.Core, interval int) widthProbe {
	if interval < 1 {
		interval = 1
	}
	return widthProbe{interval: interval, prev: c.Stats()}
}

// sample charges the controller overhead, builds the window delta since the
// previous sample and restarts the window.
func (p *widthProbe) sample(c *memsim.Core, admit, completed int) exec.Window {
	c.Instr(CostProbe)
	cur := c.Stats()
	w := exec.Window{
		Width:              admit,
		Completed:          completed - p.lastCompleted,
		Outstanding:        c.MSHROutstanding(),
		AtCycle:            cur.Cycles,
		Cycles:             cur.Cycles - p.prev.Cycles,
		Instructions:       cur.Instructions - p.prev.Instructions,
		StallCycles:        cur.StallCycles - p.prev.StallCycles,
		IdleCycles:         cur.IdleCycles - p.prev.IdleCycles,
		Loads:              cur.Loads - p.prev.Loads,
		MSHRHits:           cur.MSHRHits - p.prev.MSHRHits,
		MSHRHitWaitCycles:  cur.MSHRHitWaitCycles - p.prev.MSHRHitWaitCycles,
		MSHRFullStalls:     cur.MSHRFullStalls - p.prev.MSHRFullStalls,
		MSHRFullWaitCycles: cur.MSHRFullWaitCycles - p.prev.MSHRFullWaitCycles,
		MemAccesses:        cur.MemAccesses - p.prev.MemAccesses,
		PrefetchIssued:     cur.PrefetchIssued - p.prev.PrefetchIssued,
		PrefetchDropped:    cur.PrefetchDropped - p.prev.PrefetchDropped,
	}
	p.prev = cur
	p.lastCompleted = completed
	return w
}

// issue forwards a stage's prefetch request to the core.
func issue(c *memsim.Core, o exec.Outcome) {
	if o.Prefetch == 0 {
		return
	}
	n := o.PrefetchBytes
	if n <= 0 {
		n = 1
	}
	c.PrefetchSpan(o.Prefetch, n)
}

// RunStats summarises one AMAC execution for tests and reports.
type RunStats struct {
	// Width is the circular-buffer size the run started with.
	Width int
	// MinWidth and MaxWidth are the extremes the slot window reached; for a
	// static run both equal Width (zero for an empty run).
	MinWidth int
	MaxWidth int
	// WidthChanges counts controller-driven window resizes.
	WidthChanges int
	// Initiated counts lookups started (equals the machine's NumLookups
	// when the run completes).
	Initiated int
	// Completed counts lookups finished.
	Completed int
	// StageVisits counts executions of stages >= 1.
	StageVisits uint64
	// Retries counts visits that found a latch held and moved on.
	Retries uint64
	// TimedOut counts streaming requests closed past their deadline.
	TimedOut int
	// Aborted counts in-flight requests discarded by an engine Abort (a
	// crashed shard). Initiated = Completed + TimedOut + Aborted when a
	// streaming engine finishes or is aborted — the slot-leak invariant.
	Aborted int
}

// Add accumulates another run's scheduling counters, keeping the larger
// Width, so that the per-worker AMAC runs of a sharded parallel phase can be
// folded into one report.
func (s *RunStats) Add(other RunStats) {
	if other.Width > s.Width {
		s.Width = other.Width
	}
	if other.MinWidth > 0 && (s.MinWidth == 0 || other.MinWidth < s.MinWidth) {
		s.MinWidth = other.MinWidth
	}
	if other.MaxWidth > s.MaxWidth {
		s.MaxWidth = other.MaxWidth
	}
	s.WidthChanges += other.WidthChanges
	s.Initiated += other.Initiated
	s.Completed += other.Completed
	s.StageVisits += other.StageVisits
	s.Retries += other.Retries
	s.TimedOut += other.TimedOut
	s.Aborted += other.Aborted
}

// MergeRunStats folds per-worker AMAC scheduling stats into one.
func MergeRunStats(perWorker []RunStats) RunStats {
	var merged RunStats
	for _, w := range perWorker {
		merged.Add(w)
	}
	return merged
}

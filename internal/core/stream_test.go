package core_test

import (
	"testing"

	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
)

func TestRunStreamCompletesEveryRequest(t *testing.T) {
	for _, width := range []int{1, 2, 10, 32} {
		lengths := skewedLengths(300, 7)
		m := exectest.NewChainMachine(lengths, 5)
		src := exec.NewMachineSource[exectest.ChainState](m)
		var completions int
		src.OnComplete = func(req exec.Request, done uint64) { completions++ }
		stats := core.RunStream(newCore(), src, core.Options{Width: width})
		checkAllCompleted(t, m)
		if stats.Initiated != 300 || stats.Completed != 300 {
			t.Fatalf("width %d: stats %+v", width, stats)
		}
		if completions != 300 {
			t.Fatalf("width %d: source saw %d completions", width, completions)
		}
	}
}

func TestRunStreamEmptySource(t *testing.T) {
	m := exectest.NewChainMachine(nil, 3)
	stats := core.RunStream(newCore(), exec.NewMachineSource[exectest.ChainState](m), core.Options{Width: 8})
	if stats.Completed != 0 || stats.Initiated != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestRunStreamResolvesLatchConflicts(t *testing.T) {
	m := exectest.NewLatchMachine(200, 3)
	stats := core.RunStream(newCore(), exec.NewMachineSource[exectest.LatchState](m), core.Options{Width: 8})
	if len(m.Completions) != 200 {
		t.Fatalf("completed %d of 200", len(m.Completions))
	}
	if stats.Retries == 0 {
		t.Fatal("in-flight lookups should have conflicted on the latch at least once")
	}
}

// TestRunStreamMatchesBatchOutputOnHashJoin is the acceptance criterion of
// the streaming subsystem: replaying a batch workload through RunStream (a
// MachineSource admits every lookup at cycle 0, in index order) must
// produce exactly the join output of batch-mode Run over the same machine.
func TestRunStreamMatchesBatchOutputOnHashJoin(t *testing.T) {
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, ZipfBuild: 0.75, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func(stream bool) (count, checksum uint64, cycles uint64) {
		j := ops.NewHashJoin(build, probe)
		j.PrebuildRaw()
		out := ops.NewOutput(j.Arena, false)
		m := j.ProbeMachine(out, false)
		c := newCore()
		if stream {
			core.RunStream(c, exec.NewMachineSource[ops.ProbeState](m), core.Options{Width: 10})
		} else {
			core.Run(c, m, core.Options{Width: 10})
		}
		return out.Count, out.Checksum, c.Cycle()
	}

	bCount, bSum, _ := runOnce(false)
	sCount, sSum, _ := runOnce(true)
	if sCount != bCount || sSum != bSum {
		t.Fatalf("stream output (count=%d sum=%x) differs from batch (count=%d sum=%x)", sCount, sSum, bCount, bSum)
	}
}

func TestRunStreamImmediateRefillAblation(t *testing.T) {
	lengths := skewedLengths(500, 5)

	run := func(disable bool) uint64 {
		c := newCore()
		m := exectest.NewChainMachine(lengths, 3)
		core.RunStream(c, exec.NewMachineSource[exectest.ChainState](m), core.Options{Width: 10, DisableImmediateRefill: disable})
		checkAllCompleted(t, m)
		return c.Cycle()
	}
	if on, off := run(false), run(true); on > off {
		t.Fatalf("immediate refill (%d cycles) should not be slower than deferred refill (%d cycles)", on, off)
	}
}

func TestRunStreamDeterministic(t *testing.T) {
	run := func() uint64 {
		c := newCore()
		m := exectest.NewChainMachine(skewedLengths(300, 9), 4)
		core.RunStream(c, exec.NewMachineSource[exectest.ChainState](m), core.Options{Width: 10})
		return c.Cycle()
	}
	if run() != run() {
		t.Fatal("stream execution must be deterministic")
	}
}

// sparseSource releases one request every gap cycles, for the idle path.
type sparseSource struct {
	*exec.MachineSource[exectest.ChainState]
	gap      uint64
	released int
	n        int
}

func (s *sparseSource) Pull(c *memsim.Core, st *exectest.ChainState, now uint64) exec.PullResult {
	if s.released >= s.n {
		return exec.PullResult{Status: exec.Exhausted}
	}
	due := uint64(s.released) * s.gap
	if due > now {
		return exec.PullResult{Status: exec.Wait, NextArrival: due}
	}
	pr := s.MachineSource.Pull(c, st, now)
	if pr.Status == exec.Pulled {
		pr.Req.Admit = due
		s.released++
	}
	return pr
}

func TestRunStreamIdlesBetweenSparseArrivals(t *testing.T) {
	const n, gap = 25, 200000
	m := exectest.NewChainMachine(uniformLengths(n, 3), 4)
	src := &sparseSource{MachineSource: exec.NewMachineSource[exectest.ChainState](m), gap: gap, n: n}
	c := newCore()
	stats := core.RunStream(c, src, core.Options{Width: 10})
	checkAllCompleted(t, m)
	if stats.Completed != n {
		t.Fatalf("completed %d of %d", stats.Completed, n)
	}
	if c.Cycle() < (n-1)*gap {
		t.Fatalf("clock %d never reached the last arrival %d", c.Cycle(), (n-1)*gap)
	}
	if c.Stats().IdleCycles == 0 {
		t.Fatal("sparse arrivals must be bridged by idle cycles")
	}
}

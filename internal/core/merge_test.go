package core_test

import (
	"testing"

	"amac/internal/core"
	"amac/internal/exec/exectest"
)

func TestMergeRunStatsEmpty(t *testing.T) {
	if m := core.MergeRunStats(nil); m != (core.RunStats{}) {
		t.Fatalf("merging no workers should be zero, got %+v", m)
	}
	if m := core.MergeRunStats([]core.RunStats{}); m != (core.RunStats{}) {
		t.Fatalf("merging an empty slice should be zero, got %+v", m)
	}
}

func TestMergeRunStatsSingleWorker(t *testing.T) {
	one := core.RunStats{Width: 8, Initiated: 10, Completed: 10, StageVisits: 25, Retries: 2}
	if m := core.MergeRunStats([]core.RunStats{one}); m != one {
		t.Fatalf("single-worker merge must be the identity: %+v != %+v", m, one)
	}
}

func TestMergeRunStatsZeroLookupWorkers(t *testing.T) {
	// A worker whose shard is empty still reports its configured width (the
	// engine returns {Width: w} without touching the machine); merging it
	// must not disturb the busy workers' counters and must keep the largest
	// width.
	idle := core.Run(newCore(), exectest.NewChainMachine(nil, 3), core.Options{Width: 16})
	if idle.Initiated != 0 || idle.Completed != 0 || idle.StageVisits != 0 || idle.Retries != 0 {
		t.Fatalf("empty run should have zero counters: %+v", idle)
	}
	busy := core.Run(newCore(), exectest.NewChainMachine(uniformLengths(40, 3), 4), core.Options{Width: 10})

	m := core.MergeRunStats([]core.RunStats{idle, busy, idle})
	if m.Initiated != busy.Initiated || m.Completed != busy.Completed ||
		m.StageVisits != busy.StageVisits || m.Retries != busy.Retries {
		t.Fatalf("zero-lookup workers must not change the merged counters: %+v vs %+v", m, busy)
	}
	if m.Width != 16 {
		t.Fatalf("merged width %d, want the largest worker width 16", m.Width)
	}
}

func TestMergeRunStatsSumsCounters(t *testing.T) {
	a := core.RunStats{Width: 4, Initiated: 3, Completed: 3, StageVisits: 7, Retries: 1}
	b := core.RunStats{Width: 10, Initiated: 5, Completed: 4, StageVisits: 11, Retries: 0}
	m := core.MergeRunStats([]core.RunStats{a, b})
	want := core.RunStats{Width: 10, Initiated: 8, Completed: 7, StageVisits: 18, Retries: 1}
	if m != want {
		t.Fatalf("merged %+v, want %+v", m, want)
	}
}

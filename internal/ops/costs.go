// Package ops implements the paper's database operators — hash join build
// and probe, group-by with aggregation, binary-search-tree search, and skip
// list search and insert — as stage machines (exec.Machine) whose code
// stages follow the paper's Table 1. One machine definition serves all four
// execution techniques (Baseline, GP, SPP, AMAC), so measured differences
// come from scheduling alone, as in the paper's methodology.
//
// All data (input relations, hash tables, trees, skip lists, output buffers)
// lives in a simulated arena; every node visit is exactly one charged memory
// access, and compute work is charged in abstract instructions using the
// constants below.
package ops

// Operator compute costs, in abstract instructions. They stand in for the
// arithmetic the real implementations perform; the absolute values matter
// less than their rough proportions, which follow the paper's descriptions
// (hashing is a few ALU operations, applying six aggregate functions is a
// couple of dozen, the skip list's splice with its function calls and random
// level generation is the most CPU-intensive phase evaluated).
const (
	// CostHash covers hashing a key and computing the bucket address.
	CostHash = 10
	// CostTupleFetch covers decoding an input tuple after its (charged) load.
	CostTupleFetch = 4
	// CostCompare covers one key comparison and branch.
	CostCompare = 4
	// CostMaterialize covers emitting one output tuple besides its store.
	CostMaterialize = 6
	// CostLatchAcquire covers a latch test-and-set attempt.
	CostLatchAcquire = 3
	// CostLatchRelease covers releasing a latch.
	CostLatchRelease = 2
	// CostInsertTuple covers writing a tuple into a node besides its store.
	CostInsertTuple = 5
	// CostAllocNode covers allocating and initialising a fresh node.
	CostAllocNode = 12
	// CostAggUpdate covers applying the six aggregate functions (count,
	// sum, sum of squares, min, max, average) to a group.
	CostAggUpdate = 18
	// CostDescend covers moving one level down in a skip list tower or one
	// level down a tree without an additional memory access.
	CostDescend = 3
	// CostRandomLevel covers drawing the random tower height for a skip
	// list insert (the paper notes this involves function calls).
	CostRandomLevel = 10
	// CostSpliceLevel covers linking the new skip list node at one level
	// (two pointer writes plus latch bookkeeping), charged per level.
	CostSpliceLevel = 6
	// CostValidate covers re-checking one predecessor during a skip list
	// splice (the concurrent list's validation step).
	CostValidate = 3
)

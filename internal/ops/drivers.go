package ops

import (
	"amac/internal/arena"
	"amac/internal/bst"
	"amac/internal/ht"
	"amac/internal/relation"
	"amac/internal/skiplist"
	"amac/internal/xrand"
)

// TuplesPerBucket is how many build tuples a bucket header is sized for in
// the Balkesen-style join table adopted by the paper: two tuples fit in the
// header node, so the bucket count is |R|/2.
const TuplesPerBucket = ht.TuplesPerNode

// HashJoin bundles everything a hash-join experiment needs: the arena, the
// hash table, and the build and probe relations materialized in the arena.
type HashJoin struct {
	Arena *arena.Arena
	Table *ht.Table
	Build *Input
	Probe *Input
}

// NewHashJoin materializes the workload with the default bucket count
// (|R| / TuplesPerBucket, at least one).
func NewHashJoin(build, probe *relation.Relation) *HashJoin {
	return NewHashJoinWithBuckets(build, probe, build.Len()/TuplesPerBucket)
}

// NewHashJoinWithBuckets materializes the workload with an explicit bucket
// count (the Figure 3 experiments size buckets for exactly four tuples).
func NewHashJoinWithBuckets(build, probe *relation.Relation, buckets int) *HashJoin {
	return NewHashJoinInArena(arena.New(), build, probe, buckets)
}

// NewHashJoinInArena materializes the workload inside an existing arena
// (buckets <= 0 selects the default |R|/TuplesPerBucket sizing). Arenas all
// start at the same simulated base address, so phase-composite workloads
// (exec.Concat) must place every phase's structures in one arena — separate
// arenas would alias in the cache model.
func NewHashJoinInArena(a *arena.Arena, build, probe *relation.Relation, buckets int) *HashJoin {
	if buckets <= 0 {
		buckets = build.Len() / TuplesPerBucket
	}
	return &HashJoin{
		Arena: a,
		Table: ht.New(a, buckets),
		Build: NewInput(a, build),
		Probe: NewInput(a, probe),
	}
}

// PrebuildRaw populates the hash table without charging simulator time, for
// probe-only experiments.
func (j *HashJoin) PrebuildRaw() {
	for i := 0; i < j.Build.Len(); i++ {
		key, payload := j.Build.ReadRaw(i)
		j.Table.InsertRaw(key, payload)
	}
}

// BuildMachine returns a fresh build-phase machine.
func (j *HashJoin) BuildMachine() *BuildMachine {
	return &BuildMachine{Table: j.Table, In: j.Build}
}

// ProbeMachine returns a fresh probe-phase machine writing to out.
func (j *HashJoin) ProbeMachine(out *Output, earlyExit bool) *ProbeMachine {
	return &ProbeMachine{Table: j.Table, In: j.Probe, Out: out, EarlyExit: earlyExit}
}

// ReferenceJoin computes the expected number of matches and the expected
// output checksum with a plain Go hash map, for validating engine runs.
func (j *HashJoin) ReferenceJoin() (count uint64, checksum uint64) {
	builds := make(map[uint64][]uint64, j.Build.Len())
	for i := 0; i < j.Build.Len(); i++ {
		k, p := j.Build.ReadRaw(i)
		builds[k] = append(builds[k], p)
	}
	for i := 0; i < j.Probe.Len(); i++ {
		k, p := j.Probe.ReadRaw(i)
		for _, bp := range builds[k] {
			count++
			checksum += mix(uint64(i)) ^ mix(k) ^ mix(bp+1) ^ mix(p+2)
		}
	}
	return count, checksum
}

// ReferenceJoinFirstMatch is ReferenceJoin under early-exit semantics: each
// probe contributes at most the first matching tuple in its bucket's chain
// order. The hash table must already be populated (PrebuildRaw or a build
// phase), since chain order — not build input order — determines which match
// an early-exiting probe sees.
func (j *HashJoin) ReferenceJoinFirstMatch() (count uint64, checksum uint64) {
	for i := 0; i < j.Probe.Len(); i++ {
		k, p := j.Probe.ReadRaw(i)
		if matches := j.Table.LookupAllRaw(k); len(matches) > 0 {
			count++
			checksum += mix(uint64(i)) ^ mix(k) ^ mix(matches[0]+1) ^ mix(p+2)
		}
	}
	return count, checksum
}

// GroupBy bundles a group-by workload: the aggregation table and the input
// relation materialized in an arena.
type GroupBy struct {
	Arena *arena.Arena
	Table *ht.AggTable
	In    *Input
}

// NewGroupBy materializes the workload. The table is sized for the expected
// number of distinct groups (one group per bucket header in the uniform
// three-repeats case).
func NewGroupBy(rel *relation.Relation, expectedGroups int) *GroupBy {
	if expectedGroups < 1 {
		expectedGroups = 1
	}
	a := arena.New()
	return &GroupBy{
		Arena: a,
		Table: ht.NewAgg(a, expectedGroups),
		In:    NewInput(a, rel),
	}
}

// Machine returns a fresh group-by machine.
func (g *GroupBy) Machine() *GroupByMachine {
	return &GroupByMachine{Table: g.Table, In: g.In}
}

// ReferenceGroups computes the expected aggregates with plain Go maps.
func (g *GroupBy) ReferenceGroups() map[uint64]ht.Aggregates {
	ref := make(map[uint64]ht.Aggregates)
	for i := 0; i < g.In.Len(); i++ {
		k, p := g.In.ReadRaw(i)
		agg, ok := ref[k]
		if !ok {
			agg = ht.Aggregates{Key: k, Min: p, Max: p}
		}
		agg.Count++
		agg.Sum += p
		agg.SumSq += p * p
		if p < agg.Min {
			agg.Min = p
		}
		if p > agg.Max {
			agg.Max = p
		}
		ref[k] = agg
	}
	return ref
}

// BSTWorkload bundles a tree-search workload: the tree built from the build
// relation and the probe relation materialized in an arena.
type BSTWorkload struct {
	Arena *arena.Arena
	Tree  *bst.Tree
	Probe *Input
}

// NewBSTWorkload builds the index (uncharged, as in the paper the index
// exists before the measured search phase) and materializes the probes.
func NewBSTWorkload(build, probe *relation.Relation) *BSTWorkload {
	return NewBSTWorkloadInArena(arena.New(), build, probe)
}

// NewBSTWorkloadInArena builds the workload inside an existing arena (see
// NewHashJoinInArena for why composite workloads need one arena).
func NewBSTWorkloadInArena(a *arena.Arena, build, probe *relation.Relation) *BSTWorkload {
	w := &BSTWorkload{Arena: a, Tree: bst.New(a), Probe: NewInput(a, probe)}
	for _, tup := range build.Tuples {
		w.Tree.Insert(tup.Key, tup.Payload)
	}
	return w
}

// SearchMachine returns a fresh tree-search machine writing to out.
func (w *BSTWorkload) SearchMachine(out *Output) *BSTSearchMachine {
	return &BSTSearchMachine{Tree: w.Tree, In: w.Probe, Out: out}
}

// SkipListWorkload bundles the skip list workloads: an input relation for
// inserts and a probe relation for searches, plus the list itself.
type SkipListWorkload struct {
	Arena *arena.Arena
	List  *skiplist.List
	Build *Input
	Probe *Input
}

// NewSkipListWorkload materializes both relations; the list starts empty.
func NewSkipListWorkload(build, probe *relation.Relation) *SkipListWorkload {
	return NewSkipListWorkloadInArena(arena.New(), build, probe)
}

// NewSkipListWorkloadInArena materializes the workload inside an existing
// arena (see NewHashJoinInArena for why composite workloads need one arena).
func NewSkipListWorkloadInArena(a *arena.Arena, build, probe *relation.Relation) *SkipListWorkload {
	return &SkipListWorkload{
		Arena: a,
		List:  skiplist.New(a, skiplist.DefaultMaxLevel),
		Build: NewInput(a, build),
		Probe: NewInput(a, probe),
	}
}

// PrebuildRaw populates the list without charging simulator time, for
// search-only experiments.
func (w *SkipListWorkload) PrebuildRaw(seed uint64) {
	rng := xrand.New(seed)
	for i := 0; i < w.Build.Len(); i++ {
		key, payload := w.Build.ReadRaw(i)
		w.List.InsertRaw(key, payload, rng)
	}
}

// InsertMachine returns a fresh insert machine over the build relation.
func (w *SkipListWorkload) InsertMachine(seed uint64) *SkipListInsertMachine {
	return NewSkipListInsertMachine(w.List, w.Build, seed)
}

// SearchMachine returns a fresh search machine over the probe relation.
func (w *SkipListWorkload) SearchMachine(out *Output) *SkipListSearchMachine {
	return &SkipListSearchMachine{List: w.List, In: w.Probe, Out: out}
}

package ops

import (
	"amac/internal/arena"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/skiplist"
	"amac/internal/xrand"
)

// slNodeSpan is the span prefetched/loaded per skip list node visit: the
// header plus the first few tower levels fit in one cache line; taller
// towers span more lines but are rare and their upper levels are touched
// only near the head, which stays cached.
const slNodeSpan = memsim.LineSize

// SkipListSearchMachine is the skip list search operator: every probe key
// descends the tower levels of a Pugh skip list, advancing right while the
// next key is smaller and dropping a level otherwise. The number of node
// visits per level is arbitrary — the irregularity that, per Section 5.4,
// hurts the statically scheduled techniques.
type SkipListSearchMachine struct {
	// List is the index being probed.
	List *skiplist.List
	// In is the probe relation, materialized in the arena.
	In *Input
	// Out collects matches (an *Output, or a pipeline stage's pipe).
	Out Collector
	// Provision is the stage count GP and SPP provision for; zero derives
	// an estimate from the list size.
	Provision int
}

// SkipListSearchState is the per-lookup state of an in-flight search.
type SkipListSearchState struct {
	idx     int
	key     uint64
	payload uint64
	x       arena.Addr // node we stand on (already visited)
	cand    arena.Addr // prefetched successor being examined
	lvl     int
}

// NumLookups implements exec.Machine.
func (m *SkipListSearchMachine) NumLookups() int { return m.In.Len() }

// ProvisionedStages implements exec.Machine.
func (m *SkipListSearchMachine) ProvisionedStages() int {
	if m.Provision > 0 {
		return m.Provision
	}
	return expectedSkipHops(m.List.Len()) + 1
}

// expectedSkipHops estimates the node visits of an average search: about
// 1.5 per level with log2(n) levels.
func expectedSkipHops(n int) int {
	levels := 1
	for v := 1; v < n; v <<= 1 {
		levels++
	}
	return levels + levels/2
}

// Init implements exec.Machine (code stage 0): position at the highest head
// successor, as in Table 1.
func (m *SkipListSearchMachine) Init(c *memsim.Core, s *SkipListSearchState, i int) exec.Outcome {
	key, payload := m.In.Read(c, i)
	return m.InitKey(c, s, i, key, payload)
}

// InitKey is stage 0 for a key already in registers: position at the highest
// head successor. Pipeline stages fed by an upstream operator call it
// directly with the streamed-in row.
func (m *SkipListSearchMachine) InitKey(c *memsim.Core, s *SkipListSearchState, rid int, key, payload uint64) exec.Outcome {
	s.idx = rid
	s.key = key
	s.payload = payload
	s.x = m.List.Head()
	s.lvl = m.List.Level() - 1
	c.Load(s.x, slNodeSpan)
	out, _ := m.descend(c, s)
	return out
}

// descend scans x's (resident) tower downward from s.lvl until it finds a
// non-nil successor to examine, returning its outcome. The boolean result
// reports whether a candidate was found.
func (m *SkipListSearchMachine) descend(c *memsim.Core, s *SkipListSearchState) (exec.Outcome, bool) {
	tower := m.List.Tower(s.x, s.lvl)
	for {
		c.Instr(CostDescend)
		cand := tower.Next(s.lvl)
		if cand != 0 {
			s.cand = cand
			return exec.Outcome{NextStage: 1, Prefetch: cand, PrefetchBytes: slNodeSpan}, true
		}
		if s.lvl == 0 {
			// Ran off the end of the list without a match.
			return exec.Outcome{Done: true}, false
		}
		s.lvl--
	}
}

// Stage implements exec.Machine (code stage 1: examine the prefetched
// candidate node).
func (m *SkipListSearchMachine) Stage(c *memsim.Core, s *SkipListSearchState, stage int) exec.Outcome {
	if stage != 1 {
		panic("ops: SkipListSearchMachine has a single traversal stage")
	}
	c.Load(s.cand, slNodeSpan)
	node := m.List.Node(s.cand)
	c.Instr(CostCompare)
	ck := node.Key()
	switch {
	case ck == s.key:
		m.Out.Emit(c, s.idx, s.key, node.Payload(), s.payload)
		return exec.Outcome{Done: true}
	case ck < s.key:
		// Advance along the current level.
		s.x = s.cand
	default:
		// Overshot: drop a level.
		if s.lvl == 0 {
			return exec.Outcome{Done: true} // no match
		}
		s.lvl--
	}
	out, _ := m.descend(c, s)
	return out
}

// SkipListInsertMachine is the skip list insert operator (fifth column of
// the paper's Table 1): a search phase that collects the predecessor node at
// every level, followed by a splice phase that draws a random tower height,
// allocates the node, validates and latches the predecessors, and links the
// new node in. The predecessor vector lives in the per-lookup state, which
// is why the paper notes AMAC's state entries for this operator are large
// (about half a kilobyte).
type SkipListInsertMachine struct {
	// List is the skip list being built.
	List *skiplist.List
	// In is the input relation, materialized in the arena.
	In *Input
	// Levels fixes the tower height per input index so that all techniques
	// build structurally identical lists; NewSkipListInsertMachine fills it.
	Levels []int
	// Provision is the stage count GP and SPP provision for.
	Provision int

	// Inserted counts successful inserts; duplicates are skipped.
	Inserted int
	// Restarts counts splices that had to re-run the search because a
	// concurrent in-flight insert invalidated their predecessors.
	Restarts int

	// predsPool recycles predecessor vectors: a lookup takes one at Init and
	// returns it when it completes, so a run allocates O(in-flight) vectors
	// instead of one per input tuple. Safe because a lookup reaches Done
	// exactly once, and an engine that copied a state (the SPP bail-out path)
	// drives exactly one of the copies to completion while the abandoned
	// alias is overwritten by the next Init.
	predsPool [][]arena.Addr
	// scratch is the splice stage's latch-acquisition list; its lifetime is
	// a single spliceStage call, so one buffer serves every lookup.
	scratch []arena.Addr
}

// NewSkipListInsertMachine prepares an insert machine over the input,
// pre-drawing every lookup's tower height from the given seed.
func NewSkipListInsertMachine(list *skiplist.List, in *Input, seed uint64) *SkipListInsertMachine {
	rng := xrand.New(seed)
	levels := make([]int, in.Len())
	for i := range levels {
		levels[i] = list.RandomLevel(rng)
	}
	return &SkipListInsertMachine{List: list, In: in, Levels: levels}
}

// SkipListInsertState is the per-lookup state of an in-flight insert.
type SkipListInsertState struct {
	idx     int
	key     uint64
	payload uint64
	x       arena.Addr
	cand    arena.Addr
	lvl     int
	preds   []arena.Addr // predecessor per level, head above the search level
}

// NumLookups implements exec.Machine.
func (m *SkipListInsertMachine) NumLookups() int { return m.In.Len() }

// ProvisionedStages implements exec.Machine.
func (m *SkipListInsertMachine) ProvisionedStages() int {
	if m.Provision > 0 {
		return m.Provision
	}
	return expectedSkipHops(m.In.Len()) + 2
}

// Init implements exec.Machine (code stage 0).
func (m *SkipListInsertMachine) Init(c *memsim.Core, s *SkipListInsertState, i int) exec.Outcome {
	key, payload := m.In.Read(c, i)
	s.idx = i
	s.key = key
	s.payload = payload
	// A vector not shared with any live lookup: engines may copy states when
	// bailing lookups out, so vectors are handed out by the pool and only
	// returned when their lookup completes.
	s.preds = m.takePreds()
	m.restartSearch(c, s)
	out, _ := m.descend(c, s)
	return out
}

// takePreds pops a predecessor vector from the pool or allocates one.
// restartSearch overwrites every element, so recycled content is never read.
func (m *SkipListInsertMachine) takePreds() []arena.Addr {
	if n := len(m.predsPool); n > 0 {
		p := m.predsPool[n-1]
		m.predsPool = m.predsPool[:n-1]
		return p
	}
	return make([]arena.Addr, m.List.MaxLevel())
}

// putPreds returns a completed lookup's predecessor vector to the pool.
func (m *SkipListInsertMachine) putPreds(s *SkipListInsertState) {
	if s.preds != nil {
		m.predsPool = append(m.predsPool, s.preds)
		s.preds = nil
	}
}

// restartSearch positions the lookup at the head, as on entry and after a
// validation failure.
func (m *SkipListInsertMachine) restartSearch(c *memsim.Core, s *SkipListInsertState) {
	s.x = m.List.Head()
	s.lvl = m.List.Level() - 1
	for l := range s.preds {
		s.preds[l] = m.List.Head()
	}
	c.Load(s.x, slNodeSpan)
}

// descend is the insert-side variant of the search descent: it records the
// predecessor at every level it leaves, and when the bottom level has been
// fully resolved it proceeds to the splice stage instead of terminating.
func (m *SkipListInsertMachine) descend(c *memsim.Core, s *SkipListInsertState) (exec.Outcome, bool) {
	tower := m.List.Tower(s.x, s.lvl)
	for {
		c.Instr(CostDescend)
		cand := tower.Next(s.lvl)
		if cand != 0 {
			s.cand = cand
			return exec.Outcome{NextStage: 1, Prefetch: cand, PrefetchBytes: slNodeSpan}, true
		}
		s.preds[s.lvl] = s.x
		if s.lvl == 0 {
			s.cand = 0
			return exec.Outcome{NextStage: 2}, false
		}
		s.lvl--
	}
}

// Stage implements exec.Machine: stage 1 is the predecessor search, stage 2
// the splice.
func (m *SkipListInsertMachine) Stage(c *memsim.Core, s *SkipListInsertState, stage int) exec.Outcome {
	switch stage {
	case 1:
		return m.searchStage(c, s)
	case 2:
		return m.spliceStage(c, s)
	default:
		panic("ops: SkipListInsertMachine has stages 1 and 2 only")
	}
}

func (m *SkipListInsertMachine) searchStage(c *memsim.Core, s *SkipListInsertState) exec.Outcome {
	c.Load(s.cand, slNodeSpan)
	c.Instr(CostCompare)
	ck := m.List.Node(s.cand).Key()
	switch {
	case ck == s.key:
		// Key already present: nothing to insert.
		m.putPreds(s)
		return exec.Outcome{Done: true}
	case ck < s.key:
		s.x = s.cand
	default:
		s.preds[s.lvl] = s.x
		if s.lvl == 0 {
			return exec.Outcome{NextStage: 2}
		}
		s.lvl--
	}
	out, _ := m.descend(c, s)
	return out
}

func (m *SkipListInsertMachine) spliceStage(c *memsim.Core, s *SkipListInsertState) exec.Outcome {
	list := m.List
	c.Instr(CostRandomLevel)
	level := m.Levels[s.idx]

	// Validate the predecessors and acquire their latches, lowest level
	// first. If another in-flight insert has spliced a node between a
	// predecessor and our key, the collected vector is stale and the search
	// must be re-run (the concurrent list's retry path).
	acquired := m.scratch[:0]
	release := func() {
		for _, p := range acquired {
			c.Instr(CostLatchRelease)
			list.Unlatch(p)
		}
		m.scratch = acquired[:0]
	}
	for l := 0; l < level; l++ {
		pred := s.preds[l]
		c.Load(pred, slNodeSpan)
		c.Instr(CostValidate)
		succ := list.Next(pred, l)
		if succ != 0 {
			c.Load(succ, 16)
			sk := list.NodeKey(succ)
			if sk == s.key {
				release()
				m.putPreds(s)
				return exec.Outcome{Done: true}
			}
			if sk < s.key {
				// Stale predecessor: restart the whole search.
				release()
				m.Restarts++
				m.restartSearch(c, s)
				out, _ := m.descend(c, s)
				return out
			}
		}
		if latched(acquired, pred) {
			continue
		}
		c.Instr(CostLatchAcquire)
		if !list.TryLatch(pred) {
			release()
			return exec.Outcome{NextStage: 2, Retry: true}
		}
		acquired = append(acquired, pred)
	}

	c.Instr(CostAllocNode)
	node := list.NewNode(s.key, s.payload, level)
	c.Store(node, skiplist.NodeBytes(level))
	for l := 0; l < level; l++ {
		c.Instr(CostSpliceLevel)
		pred := s.preds[l]
		list.SetNext(node, l, list.Next(pred, l))
		list.SetNext(pred, l, node)
		c.Store(pred, 8)
	}
	release()
	list.NoteInsert(level)
	m.Inserted++
	m.putPreds(s)
	return exec.Outcome{Done: true}
}

// latched reports whether p is already in the acquired set.
func latched(acquired []arena.Addr, p arena.Addr) bool {
	for _, a := range acquired {
		if a == p {
			return true
		}
	}
	return false
}

package ops

import (
	"amac/internal/arena"
	"amac/internal/exec"
	"amac/internal/ht"
	"amac/internal/memsim"
)

// ProbeMachine is the hash join probe operator expressed as code stages
// (the first column of the paper's Table 1 and the pseudo-code of Listing 1):
//
//	stage 0: get the next probe tuple, hash its key, compute the bucket
//	         address, prefetch the bucket;
//	stage 1: visit the prefetched node, compare keys, emit matches, and
//	         either terminate or chase the overflow pointer.
type ProbeMachine struct {
	// Table is the hash table built from the R relation.
	Table *ht.Table
	// In is the probe relation S, materialized in the arena.
	In *Input
	// Out collects matches (an *Output, or a pipeline stage's pipe).
	Out Collector
	// EarlyExit terminates a lookup at its first match (valid when the
	// build keys are unique); without it the whole chain is scanned, as
	// required for non-unique build keys.
	EarlyExit bool
	// Provision is the stage count GP and SPP provision for; zero selects
	// two (stage 0 plus one node visit), the common case for the
	// Balkesen-style table where a bucket holds two tuples in its header.
	Provision int
	// Limit restricts the probe to the first Limit input tuples (zero means
	// all). Multi-thread experiments use it to give the simulated
	// representative thread its partition of the probe relation.
	Limit int
	// RIDs optionally maps local lookup indices to global row ids: when set,
	// lookup i carries RIDs[i] instead of i through its state. The
	// partitioned parallel join uses it so that the workers' merged output
	// (count, checksum, output slots) is identical to an unpartitioned run
	// over the same relations.
	RIDs []int
}

// ProbeState is the paper's per-lookup state (Figure 4): row id, key,
// payload, current node pointer. The engine tracks the stage field.
type ProbeState struct {
	idx     int
	key     uint64
	payload uint64
	ptr     arena.Addr
}

// NumLookups implements exec.Machine.
func (m *ProbeMachine) NumLookups() int {
	if m.Limit > 0 && m.Limit < m.In.Len() {
		return m.Limit
	}
	return m.In.Len()
}

// ProvisionedStages implements exec.Machine.
func (m *ProbeMachine) ProvisionedStages() int {
	if m.Provision > 0 {
		return m.Provision
	}
	return 2
}

// Init implements exec.Machine (code stage 0).
func (m *ProbeMachine) Init(c *memsim.Core, s *ProbeState, i int) exec.Outcome {
	key, payload := m.In.Read(c, i)
	rid := i
	if m.RIDs != nil {
		rid = m.RIDs[i]
	}
	return m.InitKey(c, s, rid, key, payload)
}

// InitKey is stage 0 for a key already in registers: hash, compute and
// prefetch the bucket. Init reads the materialized input and delegates here;
// a pipeline stage fed by an upstream operator calls it directly with the
// streamed-in row, so no input relation exists at all.
func (m *ProbeMachine) InitKey(c *memsim.Core, s *ProbeState, rid int, key, payload uint64) exec.Outcome {
	c.Instr(CostHash)
	bucket := m.Table.BucketAddr(m.Table.Hash(key))
	s.idx = rid
	s.key = key
	s.payload = payload
	s.ptr = bucket
	return exec.Outcome{NextStage: 1, Prefetch: bucket, PrefetchBytes: ht.NodeBytes}
}

// Stage implements exec.Machine (code stage 1: visit a node).
func (m *ProbeMachine) Stage(c *memsim.Core, s *ProbeState, stage int) exec.Outcome {
	if stage != 1 {
		panic("ops: ProbeMachine has a single chasing stage")
	}
	c.Load(s.ptr, ht.NodeBytes)
	node := m.Table.Node(s.ptr)
	cnt := node.Count()
	for slot := 0; slot < cnt; slot++ {
		c.Instr(CostCompare)
		if node.Key(slot) == s.key {
			m.Out.Emit(c, s.idx, s.key, node.Payload(slot), s.payload)
			if m.EarlyExit {
				return exec.Outcome{Done: true}
			}
		}
	}
	next := node.Next()
	c.Instr(1)
	if next == 0 {
		return exec.Outcome{Done: true}
	}
	s.ptr = next
	return exec.Outcome{NextStage: 1, Prefetch: next, PrefetchBytes: ht.NodeBytes}
}

package ops_test

import (
	"sort"
	"testing"

	"amac/internal/ht"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
)

func newCore() *memsim.Core {
	sys := memsim.MustSystem(memsim.XeonX5670())
	return sys.NewCore()
}

func joinSpec(zr, zs float64) relation.JoinSpec {
	return relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, ZipfBuild: zr, ZipfProbe: zs, Seed: 42}
}

func buildJoin(t *testing.T, spec relation.JoinSpec) *ops.HashJoin {
	t.Helper()
	build, probe, err := relation.BuildJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ops.NewHashJoin(build, probe)
}

func TestProbeAllTechniquesMatchReference(t *testing.T) {
	specs := map[string]relation.JoinSpec{
		"uniform":     joinSpec(0, 0),
		"skewed-R":    joinSpec(1.0, 0),
		"skewed-both": joinSpec(0.75, 0.75),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			for _, tech := range ops.Techniques {
				t.Run(tech.String(), func(t *testing.T) {
					j := buildJoin(t, spec)
					j.PrebuildRaw()
					wantCount, wantSum := j.ReferenceJoin()

					out := ops.NewOutput(j.Arena, false)
					m := j.ProbeMachine(out, false)
					ops.RunMachine(newCore(), m, tech, ops.Params{Window: 8})

					if out.Count != wantCount || out.Checksum != wantSum {
						t.Fatalf("%s: count=%d checksum=%x, want count=%d checksum=%x",
							tech, out.Count, out.Checksum, wantCount, wantSum)
					}
				})
			}
		})
	}
}

func TestProbeEarlyExitMatchesFirstMatchReference(t *testing.T) {
	j := buildJoin(t, joinSpec(0, 0))
	j.PrebuildRaw()
	wantCount, wantSum := j.ReferenceJoinFirstMatch()
	for _, tech := range ops.Techniques {
		out := ops.NewOutput(j.Arena, false)
		ops.RunMachine(newCore(), j.ProbeMachine(out, true), tech, ops.Params{Window: 10})
		if out.Count != wantCount || out.Checksum != wantSum {
			t.Fatalf("%s: early-exit results differ from reference", tech)
		}
	}
}

func TestProbeResultsIdenticalAcrossTechniques(t *testing.T) {
	j := buildJoin(t, joinSpec(0.5, 0.5))
	j.PrebuildRaw()
	var ref []ops.JoinRow
	for i, tech := range ops.Techniques {
		out := ops.NewOutput(j.Arena, true)
		ops.RunMachine(newCore(), j.ProbeMachine(out, false), tech, ops.Params{Window: 6})
		rows := append([]ops.JoinRow(nil), out.Rows...)
		sort.Slice(rows, func(a, b int) bool {
			if rows[a].RID != rows[b].RID {
				return rows[a].RID < rows[b].RID
			}
			return rows[a].BuildPayload < rows[b].BuildPayload
		})
		if i == 0 {
			ref = rows
			continue
		}
		if len(rows) != len(ref) {
			t.Fatalf("%s produced %d rows, baseline produced %d", tech, len(rows), len(ref))
		}
		for k := range rows {
			if rows[k] != ref[k] {
				t.Fatalf("%s row %d = %+v, baseline row = %+v", tech, k, rows[k], ref[k])
			}
		}
	}
}

func TestBuildAllTechniquesProduceCorrectTable(t *testing.T) {
	for _, zr := range []float64{0, 1.0} {
		for _, tech := range ops.Techniques {
			spec := joinSpec(zr, 0)
			build, probe, err := relation.BuildJoin(spec)
			if err != nil {
				t.Fatal(err)
			}
			j := ops.NewHashJoin(build, probe)
			ops.RunMachine(newCore(), j.BuildMachine(), tech, ops.Params{Window: 8})

			stats := j.Table.ComputeStats()
			if stats.Tuples != uint64(build.Len()) {
				t.Fatalf("%s zr=%v: table holds %d tuples, want %d", tech, zr, stats.Tuples, build.Len())
			}
			// Every build tuple must be findable with its own payload.
			ref := make(map[uint64]map[uint64]int)
			for _, tup := range build.Tuples {
				if ref[tup.Key] == nil {
					ref[tup.Key] = map[uint64]int{}
				}
				ref[tup.Key][tup.Payload]++
			}
			for key, payloads := range ref {
				got := j.Table.LookupAllRaw(key)
				if len(got) != lenPayloads(payloads) {
					t.Fatalf("%s zr=%v: key %d has %d entries, want %d", tech, zr, key, len(got), lenPayloads(payloads))
				}
				for _, p := range got {
					if payloads[p] == 0 {
						t.Fatalf("%s zr=%v: key %d has unexpected payload %d", tech, zr, key, p)
					}
					payloads[p]--
				}
			}
			// No latch may be left held.
			for b := uint64(0); b < j.Table.NumBuckets(); b++ {
				if j.Table.LatchHeld(j.Table.BucketAddr(b)) {
					t.Fatalf("%s zr=%v: bucket %d latch left held", tech, zr, b)
				}
			}
		}
	}
}

func lenPayloads(m map[uint64]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

func TestBuildThenProbeEndToEnd(t *testing.T) {
	// Build with one technique, probe with another: the output must always
	// match the reference, demonstrating the phases compose.
	spec := joinSpec(0.5, 0)
	for _, buildTech := range ops.Techniques {
		build, probe, err := relation.BuildJoin(spec)
		if err != nil {
			t.Fatal(err)
		}
		j := ops.NewHashJoin(build, probe)
		c := newCore()
		ops.RunMachine(c, j.BuildMachine(), buildTech, ops.Params{Window: 10})
		wantCount, wantSum := j.ReferenceJoin()
		out := ops.NewOutput(j.Arena, false)
		ops.RunMachine(c, j.ProbeMachine(out, false), ops.AMAC, ops.Params{Window: 10})
		if out.Count != wantCount || out.Checksum != wantSum {
			t.Fatalf("build with %s then probe: results differ from reference", buildTech)
		}
	}
}

func TestGroupByAllTechniquesMatchReference(t *testing.T) {
	for _, zipf := range []float64{0, 0.5, 1.0} {
		rel, err := relation.BuildGroupBy(relation.GroupBySpec{Size: 6000, Repeats: 3, Zipf: zipf, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range ops.Techniques {
			g := ops.NewGroupBy(rel, rel.Len()/3)
			ref := g.ReferenceGroups()
			ops.RunMachine(newCore(), g.Machine(), tech, ops.Params{Window: 8})

			groups := g.Table.Groups()
			if len(groups) != len(ref) {
				t.Fatalf("%s zipf=%v: %d groups, want %d", tech, zipf, len(groups), len(ref))
			}
			for _, got := range groups {
				want, ok := ref[got.Key]
				if !ok {
					t.Fatalf("%s zipf=%v: unexpected group %d", tech, zipf, got.Key)
				}
				if got != want {
					t.Fatalf("%s zipf=%v: group %d = %+v, want %+v", tech, zipf, got.Key, got, want)
				}
			}
			for b := uint64(0); b < g.Table.NumBuckets(); b++ {
				if g.Table.LatchHeld(g.Table.BucketAddr(b)) {
					t.Fatalf("%s zipf=%v: bucket %d latch left held", tech, zipf, b)
				}
			}
		}
	}
}

func TestBSTSearchAllTechniquesMatchReference(t *testing.T) {
	build, probe, err := relation.BuildIndexWorkload(1<<12, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := ops.NewBSTWorkload(build, probe)
	ref := make(map[uint64]uint64, build.Len())
	for _, tup := range build.Tuples {
		ref[tup.Key] = tup.Payload
	}
	for _, tech := range ops.Techniques {
		out := ops.NewOutput(w.Arena, true)
		ops.RunMachine(newCore(), w.SearchMachine(out), tech, ops.Params{Window: 10})
		if int(out.Count) != probe.Len() {
			t.Fatalf("%s: %d matches, want %d", tech, out.Count, probe.Len())
		}
		for _, row := range out.Rows {
			if ref[row.Key] != row.BuildPayload {
				t.Fatalf("%s: key %d matched payload %d, want %d", tech, row.Key, row.BuildPayload, ref[row.Key])
			}
		}
	}
}

func TestSkipListSearchAllTechniquesMatchReference(t *testing.T) {
	build, probe, err := relation.BuildIndexWorkload(1<<11, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := ops.NewSkipListWorkload(build, probe)
	w.PrebuildRaw(1)
	ref := make(map[uint64]uint64, build.Len())
	for _, tup := range build.Tuples {
		ref[tup.Key] = tup.Payload
	}
	for _, tech := range ops.Techniques {
		out := ops.NewOutput(w.Arena, true)
		ops.RunMachine(newCore(), w.SearchMachine(out), tech, ops.Params{Window: 10})
		if int(out.Count) != probe.Len() {
			t.Fatalf("%s: %d matches, want %d", tech, out.Count, probe.Len())
		}
		for _, row := range out.Rows {
			if ref[row.Key] != row.BuildPayload {
				t.Fatalf("%s: key %d matched payload %d, want %d", tech, row.Key, row.BuildPayload, ref[row.Key])
			}
		}
	}
}

func TestSkipListInsertAllTechniquesBuildCorrectList(t *testing.T) {
	build, _, err := relation.BuildIndexWorkload(1<<11, 13)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := make([]uint64, 0, build.Len())
	ref := make(map[uint64]uint64, build.Len())
	for _, tup := range build.Tuples {
		wantKeys = append(wantKeys, tup.Key)
		ref[tup.Key] = tup.Payload
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })

	for _, tech := range ops.Techniques {
		w := ops.NewSkipListWorkload(build, build)
		m := w.InsertMachine(99)
		ops.RunMachine(newCore(), m, tech, ops.Params{Window: 8})

		if m.Inserted != build.Len() {
			t.Fatalf("%s: inserted %d of %d", tech, m.Inserted, build.Len())
		}
		got := w.List.Keys()
		if len(got) != len(wantKeys) {
			t.Fatalf("%s: list has %d keys, want %d", tech, len(got), len(wantKeys))
		}
		for i := range got {
			if got[i] != wantKeys[i] {
				t.Fatalf("%s: key %d at position %d, want %d", tech, got[i], i, wantKeys[i])
			}
		}
		for _, k := range wantKeys {
			p, ok := w.List.SearchRaw(k)
			if !ok || p != ref[k] {
				t.Fatalf("%s: key %d payload %d,%v want %d", tech, k, p, ok, ref[k])
			}
		}
	}
}

func TestSkipListInsertDuplicatesSkipped(t *testing.T) {
	build, _, err := relation.BuildIndexWorkload(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the input: each key appears twice; only the first insert
	// of each key may succeed.
	dup := &relation.Relation{Tuples: append(append([]relation.Tuple(nil), build.Tuples...), build.Tuples...)}
	w := ops.NewSkipListWorkload(dup, dup)
	m := w.InsertMachine(5)
	ops.RunMachine(newCore(), m, ops.AMAC, ops.Params{Window: 8})
	if m.Inserted != 256 {
		t.Fatalf("inserted %d, want 256 (duplicates skipped)", m.Inserted)
	}
	if w.List.Len() != 256 {
		t.Fatalf("list length %d, want 256", w.List.Len())
	}
}

func TestTechniqueStringAndParse(t *testing.T) {
	for _, tech := range ops.Techniques {
		parsed, err := ops.ParseTechnique(tech.String())
		if err != nil || parsed != tech {
			t.Fatalf("round trip failed for %v", tech)
		}
	}
	if _, err := ops.ParseTechnique("nope"); err == nil {
		t.Fatal("unknown technique should fail to parse")
	}
	if ops.Technique(99).String() == "" {
		t.Fatal("unknown technique should still render")
	}
	if len(ops.PrefetchingTechniques) != 3 {
		t.Fatal("expected three prefetching techniques")
	}
}

func TestInputMaterialization(t *testing.T) {
	rel := &relation.Relation{Tuples: []relation.Tuple{{Key: 3, Payload: 30}, {Key: 7, Payload: 70}}}
	j := ops.NewHashJoin(rel, rel)
	if j.Probe.Len() != 2 || j.Probe.Bytes() != 32 {
		t.Fatalf("Len/Bytes = %d/%d", j.Probe.Len(), j.Probe.Bytes())
	}
	k, p := j.Probe.ReadRaw(1)
	if k != 7 || p != 70 {
		t.Fatalf("ReadRaw = %d,%d", k, p)
	}
	c := newCore()
	k, p = j.Probe.Read(c, 0)
	if k != 3 || p != 30 {
		t.Fatalf("Read = %d,%d", k, p)
	}
	if c.Stats().Loads != 1 {
		t.Fatal("charged read should perform exactly one load")
	}
	if j.Probe.TupleAddr(1) != j.Probe.Base()+16 {
		t.Fatal("tuples must be densely packed")
	}
}

func TestOutputChecksumOrderIndependent(t *testing.T) {
	j := buildJoin(t, joinSpec(0, 0))
	a := ops.NewOutput(j.Arena, false)
	b := ops.NewOutput(j.Arena, false)
	c := newCore()
	a.Emit(c, 1, 10, 100, 1000)
	a.Emit(c, 2, 20, 200, 2000)
	b.Emit(c, 2, 20, 200, 2000)
	b.Emit(c, 1, 10, 100, 1000)
	if a.Checksum != b.Checksum || a.Count != b.Count {
		t.Fatal("checksum must not depend on emission order")
	}
	d := ops.NewOutput(j.Arena, false)
	d.Emit(c, 1, 10, 100, 1001)                         // different probe payload
	if d.Checksum == a.Checksum-b.Checksum+a.Checksum { // arbitrary different value check
		t.Fatal("checksum should be sensitive to payload values")
	}
}

func TestGroupByAggregatesIncludeAvg(t *testing.T) {
	rel := &relation.Relation{Tuples: []relation.Tuple{{Key: 1, Payload: 2}, {Key: 1, Payload: 4}}}
	g := ops.NewGroupBy(rel, 1)
	ops.RunMachine(newCore(), g.Machine(), ops.Baseline, ops.Params{})
	agg, ok := g.Table.LookupGroupRaw(1)
	if !ok || agg.Avg() != 3 {
		t.Fatalf("avg = %v ok=%v", agg.Avg(), ok)
	}
}

func TestHashJoinDefaultBucketSizing(t *testing.T) {
	build, probe, err := relation.BuildJoin(joinSpec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	j := ops.NewHashJoin(build, probe)
	if j.Table.NumBuckets() != uint64(build.Len()/ht.TuplesPerNode) {
		t.Fatalf("buckets = %d, want |R|/%d", j.Table.NumBuckets(), ht.TuplesPerNode)
	}
	// Dense unique keys fill each bucket header exactly, with no overflow.
	j.PrebuildRaw()
	if j.Table.OverflowNodes() != 0 {
		t.Fatalf("uniform dense build should not need overflow nodes, got %d", j.Table.OverflowNodes())
	}
}

package ops

import (
	"amac/internal/arena"
	"amac/internal/exec"
	"amac/internal/ht"
	"amac/internal/memsim"
)

// GroupByMachine is the group-by operator with immediate aggregation (third
// column of the paper's Table 1): every input tuple locates (or creates) its
// group's node in the aggregation hash table and folds its payload into the
// six aggregate functions.
//
//	stage 0: get the next input tuple, hash, compute and prefetch the bucket;
//	stage 1: acquire the bucket latch (retry if held by another in-flight
//	         lookup); on a key match move to the aggregate-update stage, on
//	         an empty node claim it, otherwise follow or extend the chain;
//	stage 2: visit an overflow node with the latch held;
//	stage 3: apply the aggregate functions and release the latch.
//
// As in the paper, the latch is acquired in stage 1 but only released after
// the update in stage 3, so lookups for the same (hot) key conflict with
// each other inside a single thread. GP and SPP must serialize those
// conflicting lookups; AMAC simply retries them on a later pass of its
// circular buffer.
type GroupByMachine struct {
	// Table is the aggregation hash table.
	Table *ht.AggTable
	// In is the input relation, materialized in the arena.
	In *Input
	// Provision is the stage count GP and SPP provision for (default 3:
	// init, one node visit, aggregate update).
	Provision int
}

// GroupByState is the per-lookup state of an in-flight group-by update.
type GroupByState struct {
	idx     int
	key     uint64
	payload uint64
	bucket  arena.Addr // bucket header, owner of the latch
	ptr     arena.Addr // node currently being examined
}

// NumLookups implements exec.Machine.
func (m *GroupByMachine) NumLookups() int { return m.In.Len() }

// ProvisionedStages implements exec.Machine.
func (m *GroupByMachine) ProvisionedStages() int {
	if m.Provision > 0 {
		return m.Provision
	}
	return 3
}

// Init implements exec.Machine (code stage 0).
func (m *GroupByMachine) Init(c *memsim.Core, s *GroupByState, i int) exec.Outcome {
	key, payload := m.In.Read(c, i)
	return m.InitKey(c, s, i, key, payload)
}

// InitKey is stage 0 for a group key already in registers: hash, compute and
// prefetch the bucket. A pipeline aggregation stage fed by an upstream join
// calls it directly with the streamed-in row.
func (m *GroupByMachine) InitKey(c *memsim.Core, s *GroupByState, rid int, key, payload uint64) exec.Outcome {
	c.Instr(CostHash)
	bucket := m.Table.BucketAddr(m.Table.Hash(key))
	s.idx = rid
	s.key = key
	s.payload = payload
	s.bucket = bucket
	s.ptr = bucket
	return exec.Outcome{NextStage: 1, Prefetch: bucket, PrefetchBytes: ht.NodeBytes}
}

// Stage implements exec.Machine.
func (m *GroupByMachine) Stage(c *memsim.Core, s *GroupByState, stage int) exec.Outcome {
	switch stage {
	case 1:
		c.Load(s.ptr, ht.NodeBytes)
		c.Instr(CostLatchAcquire)
		if !m.Table.TryLatch(s.bucket) {
			return exec.Outcome{NextStage: 1, Retry: true}
		}
		return m.matchOrAdvance(c, s)
	case 2:
		c.Load(s.ptr, ht.NodeBytes)
		return m.matchOrAdvance(c, s)
	case 3:
		// Aggregate update: the node is already resident from the stage
		// that found the match; the latch has been held since stage 1.
		c.Load(s.ptr, ht.NodeBytes)
		c.Instr(CostAggUpdate)
		m.Table.UpdateGroup(s.ptr, s.payload)
		c.Store(s.ptr, ht.NodeBytes)
		c.Instr(CostLatchRelease)
		m.Table.Unlatch(s.bucket)
		return exec.Outcome{Done: true}
	default:
		panic("ops: GroupByMachine has stages 1..3 only")
	}
}

// matchOrAdvance inspects the current node with the latch held: claim it if
// empty, move to the aggregate-update stage on a key match, follow the chain
// otherwise, extending it when the key is new.
func (m *GroupByMachine) matchOrAdvance(c *memsim.Core, s *GroupByState) exec.Outcome {
	node := m.Table.Node(s.ptr)
	if !node.Used() {
		c.Instr(CostInsertTuple)
		m.Table.InitGroup(s.ptr, s.key, s.payload)
		c.Store(s.ptr, ht.NodeBytes)
		c.Instr(CostLatchRelease)
		m.Table.Unlatch(s.bucket)
		return exec.Outcome{Done: true}
	}
	c.Instr(CostCompare)
	if node.Key() == s.key {
		// The aggregate fields live in the node just loaded; the update is
		// a separate code stage (as in Table 1), executed with the latch
		// still held.
		return exec.Outcome{NextStage: 3}
	}
	next := node.Next()
	c.Instr(1)
	if next == 0 {
		c.Instr(CostAllocNode)
		node := m.Table.AllocNode()
		m.Table.SetNodeNext(s.ptr, node)
		c.Store(s.ptr, ht.NodeBytes)
		c.Instr(CostInsertTuple)
		m.Table.InitGroup(node, s.key, s.payload)
		c.Store(node, ht.NodeBytes)
		c.Instr(CostLatchRelease)
		m.Table.Unlatch(s.bucket)
		return exec.Outcome{Done: true}
	}
	s.ptr = next
	return exec.Outcome{NextStage: 2, Prefetch: next, PrefetchBytes: ht.NodeBytes}
}

package ops

import (
	"amac/internal/relation"
)

// PartitionedHashJoin hash-partitions a join workload into P independent
// HashJoin sub-workloads, one per worker of the parallel execution layer.
// Equal keys always land in the same partition, so each worker probes (and,
// if measured, builds) a table that no other worker ever touches — the
// cross-core scaling recipe of the paper's evaluation (Section 5.1.1), which
// sidesteps cross-core latching entirely. Every partition owns a private
// arena, so concurrent workers never write to shared simulated memory.
//
// ProbeRIDs preserves each probe tuple's global row id across the
// partitioning; wired into ProbeMachine.RIDs it makes the merged output of P
// workers (match count, order-independent checksum) identical to a
// one-partition run over the same relations, for any P, because the
// partitioning only routes (key, rid) pairs and never drops or duplicates
// them. Under EarlyExit with duplicate build keys the emitted match may
// still depend on P (chain order inside a partition's table differs from the
// global table's); all-matches probes and unique-build-key probes are
// partition-count invariant.
type PartitionedHashJoin struct {
	// Parts holds one self-contained workload per partition.
	Parts []*HashJoin
	// ProbeRIDs maps each partition's local probe index to the global probe
	// row id: partition p's lookup i is global row ProbeRIDs[p][i].
	ProbeRIDs [][]int
}

// partitionOf routes a key to one of parts partitions. It scrambles the key
// with the splitmix64 finalizer so that partitioning is independent of the
// tables' modulo bucket hash — dense keys spread evenly across partitions
// without aligning partition boundaries with bucket indices.
func partitionOf(key uint64, parts int) int {
	return int(mix(key) % uint64(parts))
}

// PartitionJoin hash-partitions the build and probe relations into parts
// independent workloads (at least one). Partitioning is a stable filter:
// tuples keep their relative order within a partition, so per-partition
// build phases insert in the same relative order as a global build would.
func PartitionJoin(build, probe *relation.Relation, parts int) *PartitionedHashJoin {
	if parts < 1 {
		parts = 1
	}
	builds := make([]*relation.Relation, parts)
	probes := make([]*relation.Relation, parts)
	rids := make([][]int, parts)
	for p := 0; p < parts; p++ {
		builds[p] = &relation.Relation{}
		probes[p] = &relation.Relation{}
	}
	for _, tup := range build.Tuples {
		p := partitionOf(tup.Key, parts)
		builds[p].Tuples = append(builds[p].Tuples, tup)
	}
	for i, tup := range probe.Tuples {
		p := partitionOf(tup.Key, parts)
		probes[p].Tuples = append(probes[p].Tuples, tup)
		rids[p] = append(rids[p], i)
	}

	pj := &PartitionedHashJoin{ProbeRIDs: rids}
	for p := 0; p < parts; p++ {
		pj.Parts = append(pj.Parts, NewHashJoin(builds[p], probes[p]))
	}
	return pj
}

// NumParts returns the number of partitions.
func (pj *PartitionedHashJoin) NumParts() int { return len(pj.Parts) }

// ProbeTuples returns the total probe cardinality across partitions.
func (pj *PartitionedHashJoin) ProbeTuples() int {
	n := 0
	for _, j := range pj.Parts {
		n += j.Probe.Len()
	}
	return n
}

// PrebuildRaw populates every partition's hash table without charging
// simulator time, for probe-only experiments.
func (pj *PartitionedHashJoin) PrebuildRaw() {
	for _, j := range pj.Parts {
		j.PrebuildRaw()
	}
}

// ProbeMachine returns a fresh probe machine for one partition, carrying
// global row ids and writing to out (which should be private to the worker
// running this partition).
func (pj *PartitionedHashJoin) ProbeMachine(part int, out *Output, earlyExit bool) *ProbeMachine {
	pm := pj.Parts[part].ProbeMachine(out, earlyExit)
	pm.RIDs = pj.ProbeRIDs[part]
	return pm
}

// ReferenceJoin computes the expected match count and order-independent
// checksum (all matches, global row ids) with plain Go maps. Because the
// partitioning routes every (rid, tuple) pair to exactly one partition, the
// result is identical for every partition count, including one.
func (pj *PartitionedHashJoin) ReferenceJoin() (count uint64, checksum uint64) {
	for p, j := range pj.Parts {
		builds := make(map[uint64][]uint64, j.Build.Len())
		for i := 0; i < j.Build.Len(); i++ {
			k, pay := j.Build.ReadRaw(i)
			builds[k] = append(builds[k], pay)
		}
		for i := 0; i < j.Probe.Len(); i++ {
			k, pay := j.Probe.ReadRaw(i)
			rid := uint64(pj.ProbeRIDs[p][i])
			for _, bp := range builds[k] {
				count++
				checksum += mix(rid) ^ mix(k) ^ mix(bp+1) ^ mix(pay+2)
			}
		}
	}
	return count, checksum
}

// ReferenceJoinFirstMatch is ReferenceJoin under early-exit semantics: each
// probe contributes at most the first match in its partition table's chain
// order. The tables must already be populated (PrebuildRaw or measured build
// phases).
func (pj *PartitionedHashJoin) ReferenceJoinFirstMatch() (count uint64, checksum uint64) {
	for p, j := range pj.Parts {
		for i := 0; i < j.Probe.Len(); i++ {
			k, pay := j.Probe.ReadRaw(i)
			if matches := j.Table.LookupAllRaw(k); len(matches) > 0 {
				rid := uint64(pj.ProbeRIDs[p][i])
				count++
				checksum += mix(rid) ^ mix(k) ^ mix(matches[0]+1) ^ mix(pay+2)
			}
		}
	}
	return count, checksum
}

package ops

import (
	"encoding/binary"

	"amac/internal/arena"
	"amac/internal/memsim"
)

// JoinRow is one materialized join or index-lookup result.
type JoinRow struct {
	// RID is the probe-side row id (the paper's rid/idx state field); the
	// output slot an engine writes is determined by it, which is how AMAC
	// preserves input order even though lookups complete out of order.
	RID int
	// Key is the join key.
	Key uint64
	// BuildPayload is the matched build-side (or index) payload.
	BuildPayload uint64
	// ProbePayload is the probe-side payload carried through the lookup.
	ProbePayload uint64
}

// Collector receives operator result rows. Output is the materializing
// implementation; the pipeline layer's inter-stage pipes implement it too,
// so an operator machine emits identically whether its results are the
// query's output or the next stage's input.
type Collector interface {
	Emit(c *memsim.Core, rid int, key, buildPayload, probePayload uint64)
}

// Output materializes operator results. Stores are charged against a
// rotating arena-resident buffer addressed by row id — sequential,
// cache-friendly traffic like the paper's out[idx] = payload — while the
// logical results are optionally retained in Go memory for verification and
// always folded into an order-independent checksum.
type Output struct {
	a    *arena.Arena
	base arena.Addr

	// Count is the number of emitted results.
	Count uint64
	// Checksum is an order-independent digest of all emitted rows.
	Checksum uint64
	// Keep controls whether Rows is populated (tests and examples do;
	// large benchmark runs do not).
	Keep bool
	// Rows holds the emitted rows when Keep is set.
	Rows []JoinRow
	// Sequential addresses the charged store window by emit order instead
	// of row id. A worker of the parallel execution layer materializes its
	// results densely into its own output partition, so its store traffic
	// is sequential even though the logical row ids it carries are a
	// scattered subset of the global input; row-id addressing would defeat
	// the hardware stream prefetcher on traffic that a real partitioned
	// operator writes sequentially. Count, Checksum and Rows still use the
	// row id, so the logical result is unchanged.
	Sequential bool
}

// outputBufferSlots is the size of the charged output window (a power of
// two, so slot selection is a mask). Real runs write a multi-gigabyte output
// array sequentially; a rotating window produces the same per-emit store
// traffic without allocating it.
const outputBufferSlots = 1 << 16

// NewOutput creates a collector backed by buf slots of 16 bytes each.
func NewOutput(a *arena.Arena, keep bool) *Output {
	return &Output{
		a:    a,
		base: a.AllocSpan(outputBufferSlots * 16),
		Keep: keep,
	}
}

// Reset clears the logical result (count, checksum, retained rows) so a
// cached read-only workload can serve another measured run. The charged
// buffer keeps its arena address — that address being stable across runs is
// what makes reuse bit-identical to a fresh construction.
func (o *Output) Reset() {
	o.Count = 0
	o.Checksum = 0
	o.Rows = o.Rows[:0]
}

// Emit materializes one result row on behalf of the lookup with row id rid.
func (o *Output) Emit(c *memsim.Core, rid int, key, buildPayload, probePayload uint64) {
	c.Instr(CostMaterialize)
	slot := uint64(rid) & (outputBufferSlots - 1)
	if o.Sequential {
		slot = o.Count & (outputBufferSlots - 1)
	}
	addr := o.base + arena.Addr(slot*16)
	c.Store(addr, 16)
	b := o.a.Bytes(addr, 16)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], buildPayload)

	o.Count++
	o.Checksum += mix(uint64(rid)) ^ mix(key) ^ mix(buildPayload+1) ^ mix(probePayload+2)
	if o.Keep {
		o.Rows = append(o.Rows, JoinRow{RID: rid, Key: key, BuildPayload: buildPayload, ProbePayload: probePayload})
	}
}

// mix is a 64-bit finalizer (splitmix64) so the checksum is sensitive to
// which values appear, not just to their sum.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package ops_test

import (
	"testing"

	"amac/internal/ops"
	"amac/internal/relation"
)

func partitionJoinSpec(zr, zs float64) relation.JoinSpec {
	return relation.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 11, ZipfBuild: zr, ZipfProbe: zs, Seed: 7}
}

// TestPartitionJoinRoutesEveryTuple: partitioning drops nothing, duplicates
// nothing, keeps equal keys together, and preserves global probe row ids.
func TestPartitionJoinRoutesEveryTuple(t *testing.T) {
	build, probe, err := relation.BuildJoin(partitionJoinSpec(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	pj := ops.PartitionJoin(build, probe, 4)
	if pj.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", pj.NumParts())
	}
	if pj.ProbeTuples() != probe.Len() {
		t.Fatalf("partitions hold %d probe tuples, want %d", pj.ProbeTuples(), probe.Len())
	}
	totalBuild := 0
	keyPart := make(map[uint64]int)
	for p, j := range pj.Parts {
		totalBuild += j.Build.Len()
		for i := 0; i < j.Build.Len(); i++ {
			k, _ := j.Build.ReadRaw(i)
			if prev, ok := keyPart[k]; ok && prev != p {
				t.Fatalf("key %d appears in partitions %d and %d", k, prev, p)
			}
			keyPart[k] = p
		}
	}
	if totalBuild != build.Len() {
		t.Fatalf("partitions hold %d build tuples, want %d", totalBuild, build.Len())
	}
	seen := make(map[int]bool, probe.Len())
	for p, rids := range pj.ProbeRIDs {
		if len(rids) != pj.Parts[p].Probe.Len() {
			t.Fatalf("partition %d has %d rids for %d probe tuples", p, len(rids), pj.Parts[p].Probe.Len())
		}
		for i, rid := range rids {
			if seen[rid] {
				t.Fatalf("global rid %d routed twice", rid)
			}
			seen[rid] = true
			wantKey, wantPay := pj.Parts[p].Probe.ReadRaw(i)
			if probe.Tuples[rid].Key != wantKey || probe.Tuples[rid].Payload != wantPay {
				t.Fatalf("rid %d does not match its routed tuple", rid)
			}
		}
	}
	if len(seen) != probe.Len() {
		t.Fatalf("routed %d probe rids, want %d", len(seen), probe.Len())
	}
}

// TestPartitionedReferenceInvariant: the all-matches reference result is
// identical for every partition count, and matches the unpartitioned
// workload's reference join.
func TestPartitionedReferenceInvariant(t *testing.T) {
	build, probe, err := relation.BuildJoin(partitionJoinSpec(1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := ops.NewHashJoin(build, probe).ReferenceJoin()
	for _, parts := range []int{1, 2, 3, 4, 8} {
		pj := ops.PartitionJoin(build, probe, parts)
		count, sum := pj.ReferenceJoin()
		if count != wantCount || sum != wantSum {
			t.Fatalf("parts=%d: reference join (%d, %#x) differs from unpartitioned (%d, %#x)",
				parts, count, sum, wantCount, wantSum)
		}
	}
}

// TestPartitionedProbeMatchesReference: running the probe machines over the
// partitions (single-threaded here; concurrency is covered in the exec and
// experiments packages) reproduces the partitioned reference exactly, with
// and without early exit.
func TestPartitionedProbeMatchesReference(t *testing.T) {
	build, probe, err := relation.BuildJoin(partitionJoinSpec(0.75, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, earlyExit := range []bool{false, true} {
		pj := ops.PartitionJoin(build, probe, 3)
		pj.PrebuildRaw()
		var wantCount, wantSum uint64
		if earlyExit {
			wantCount, wantSum = pj.ReferenceJoinFirstMatch()
		} else {
			wantCount, wantSum = pj.ReferenceJoin()
		}
		var count, sum uint64
		for p := range pj.Parts {
			out := ops.NewOutput(pj.Parts[p].Arena, false)
			ops.RunMachine(newCore(), pj.ProbeMachine(p, out, earlyExit), ops.AMAC, ops.Params{Window: 8})
			count += out.Count
			sum += out.Checksum
		}
		if count != wantCount || sum != wantSum {
			t.Fatalf("earlyExit=%v: probe produced (%d, %#x), reference (%d, %#x)",
				earlyExit, count, sum, wantCount, wantSum)
		}
	}
}

// TestPartitionedFirstMatchInvariantUniqueKeys: with unique build keys the
// first match is the only match, so even early-exit output is independent of
// the partition count.
func TestPartitionedFirstMatchInvariantUniqueKeys(t *testing.T) {
	build, probe, err := relation.BuildJoin(partitionJoinSpec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ref := ops.NewHashJoin(build, probe)
	ref.PrebuildRaw()
	wantCount, wantSum := ref.ReferenceJoinFirstMatch()
	for _, parts := range []int{1, 2, 5} {
		pj := ops.PartitionJoin(build, probe, parts)
		pj.PrebuildRaw()
		count, sum := pj.ReferenceJoinFirstMatch()
		if count != wantCount || sum != wantSum {
			t.Fatalf("parts=%d: first-match reference (%d, %#x) differs from unpartitioned (%d, %#x)",
				parts, count, sum, wantCount, wantSum)
		}
	}
}

package ops

import (
	"fmt"

	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
)

// Technique selects which execution engine schedules an operator's stage
// machine.
type Technique int

const (
	// Baseline is the no-prefetch reference implementation.
	Baseline Technique = iota
	// GP is Group Prefetching (Chen et al.).
	GP
	// SPP is Software-Pipelined Prefetching (Chen et al., Kim et al.).
	SPP
	// AMAC is Asynchronous Memory Access Chaining, the paper's contribution.
	AMAC
)

// Techniques lists all techniques in the order the paper's figures use.
var Techniques = []Technique{Baseline, GP, SPP, AMAC}

// PrefetchingTechniques lists the three prefetching schemes (no baseline).
var PrefetchingTechniques = []Technique{GP, SPP, AMAC}

// String returns the label used in the paper's figures.
func (t Technique) String() string {
	switch t {
	case Baseline:
		return "Baseline"
	case GP:
		return "GP"
	case SPP:
		return "SPP"
	case AMAC:
		return "AMAC"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// ParseTechnique converts a label into a Technique.
func ParseTechnique(s string) (Technique, error) {
	for _, t := range Techniques {
		if t.String() == s {
			return t, nil
		}
	}
	return Baseline, fmt.Errorf("ops: unknown technique %q", s)
}

// Params carries the per-technique tuning knob the paper's sensitivity
// analysis varies (Figure 6): the number of in-flight lookups — the group
// size for GP, the pipeline occupancy for SPP, the circular-buffer width for
// AMAC. The baseline ignores it.
type Params struct {
	// Window is the number of in-flight lookups; zero selects the default
	// of 10, the best-performing setting on the paper's Xeon.
	Window int
	// Controller, if non-nil, lets an adaptive width controller resize the
	// AMAC slot window mid-run (see core.Options.Controller); only AMAC can
	// act on it — GP and SPP bake their group size and pipeline depth into
	// their control flow, so they ignore it, which is the paper's
	// flexibility argument in one field.
	Controller exec.WidthController
	// MaxWidth and ProbeInterval forward to core.Options when a Controller
	// is attached (zero keeps the core defaults).
	MaxWidth      int
	ProbeInterval int
}

// DefaultWindow is used when Params.Window is zero.
const DefaultWindow = 10

func (p Params) window() int {
	if p.Window <= 0 {
		return DefaultWindow
	}
	return p.Window
}

// RunMachine executes every lookup of machine m on core c using the given
// technique. It runs the machine as a fixed batch; serve.RunSource is the
// streaming counterpart that draws the same machines from a request queue.
func RunMachine[S any](c *memsim.Core, m exec.Machine[S], tech Technique, p Params) {
	switch tech {
	case Baseline:
		exec.Baseline(c, m)
	case GP:
		exec.GroupPrefetch(c, m, p.window())
	case SPP:
		exec.SoftwarePipeline(c, m, p.window())
	case AMAC:
		core.Run(c, m, core.Options{
			Width: p.window(), Controller: p.Controller,
			MaxWidth: p.MaxWidth, ProbeInterval: p.ProbeInterval,
		})
	default:
		panic(fmt.Sprintf("ops: unknown technique %d", int(tech)))
	}
}

package ops_test

import (
	"sort"
	"testing"

	"amac/internal/ops"
	"amac/internal/relation"
)

// This file is the differential suite: for every built-in machine the three
// prefetching techniques must produce bit-identical logical output — result
// count and order-independent checksum — to the Baseline engine run on the
// same workload. The reference-based tests elsewhere check correctness;
// this one checks equivalence, so a bug that breaks all four engines the
// same way in the reference direction still cannot hide a divergence
// between them.

// fnvMix folds a value into an order-independent digest (commutative sum of
// avalanched terms, same construction as ops.Output's checksum).
func fnvMix(h *uint64, vs ...uint64) {
	var term uint64 = 1469598103934665603
	for _, v := range vs {
		v ^= v >> 30
		v *= 0xbf58476d1ce4e5b9
		v ^= v >> 27
		term = (term ^ v) * 1099511628211
	}
	*h += term
}

// outputDigest summarises an Output as (count, checksum).
func outputDigest(out *ops.Output) (uint64, uint64) { return out.Count, out.Checksum }

func TestDifferentialProbeMatchesBaseline(t *testing.T) {
	for _, earlyExit := range []bool{false, true} {
		spec := relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, ZipfBuild: 0.75, Seed: 31}
		runOne := func(tech ops.Technique) (uint64, uint64) {
			j := buildJoin(t, spec)
			j.PrebuildRaw()
			out := ops.NewOutput(j.Arena, false)
			ops.RunMachine(newCore(), j.ProbeMachine(out, earlyExit), tech, ops.Params{Window: 10})
			return outputDigest(out)
		}
		baseCount, baseSum := runOne(ops.Baseline)
		for _, tech := range ops.PrefetchingTechniques {
			count, sum := runOne(tech)
			if count != baseCount || sum != baseSum {
				t.Errorf("probe earlyExit=%v %s: count=%d sum=%x, baseline count=%d sum=%x",
					earlyExit, tech, count, sum, baseCount, baseSum)
			}
		}
	}
}

func TestDifferentialGroupByMatchesBaseline(t *testing.T) {
	rel, err := relation.BuildGroupBy(relation.GroupBySpec{Size: 6000, Repeats: 3, Zipf: 0.75, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	runOne := func(tech ops.Technique) (uint64, uint64) {
		g := ops.NewGroupBy(rel, rel.Len()/3)
		ops.RunMachine(newCore(), g.Machine(), tech, ops.Params{Window: 10})
		groups := g.Table.Groups()
		var sum uint64
		for _, agg := range groups {
			fnvMix(&sum, agg.Key, agg.Count, agg.Sum, agg.SumSq, agg.Min, agg.Max)
		}
		return uint64(len(groups)), sum
	}
	baseCount, baseSum := runOne(ops.Baseline)
	for _, tech := range ops.PrefetchingTechniques {
		count, sum := runOne(tech)
		if count != baseCount || sum != baseSum {
			t.Errorf("group-by %s: groups=%d sum=%x, baseline groups=%d sum=%x",
				tech, count, sum, baseCount, baseSum)
		}
	}
}

func TestDifferentialBSTSearchMatchesBaseline(t *testing.T) {
	build, probe, err := relation.BuildIndexWorkload(1<<12, 23)
	if err != nil {
		t.Fatal(err)
	}
	w := ops.NewBSTWorkload(build, probe)
	runOne := func(tech ops.Technique) (uint64, uint64) {
		out := ops.NewOutput(w.Arena, false)
		ops.RunMachine(newCore(), w.SearchMachine(out), tech, ops.Params{Window: 10})
		return outputDigest(out)
	}
	baseCount, baseSum := runOne(ops.Baseline)
	for _, tech := range ops.PrefetchingTechniques {
		count, sum := runOne(tech)
		if count != baseCount || sum != baseSum {
			t.Errorf("BST search %s: count=%d sum=%x, baseline count=%d sum=%x",
				tech, count, sum, baseCount, baseSum)
		}
	}
}

func TestDifferentialSkipListSearchMatchesBaseline(t *testing.T) {
	build, probe, err := relation.BuildIndexWorkload(1<<11, 29)
	if err != nil {
		t.Fatal(err)
	}
	w := ops.NewSkipListWorkload(build, probe)
	w.PrebuildRaw(4)
	runOne := func(tech ops.Technique) (uint64, uint64) {
		out := ops.NewOutput(w.Arena, false)
		ops.RunMachine(newCore(), w.SearchMachine(out), tech, ops.Params{Window: 10})
		return outputDigest(out)
	}
	baseCount, baseSum := runOne(ops.Baseline)
	for _, tech := range ops.PrefetchingTechniques {
		count, sum := runOne(tech)
		if count != baseCount || sum != baseSum {
			t.Errorf("skip list search %s: count=%d sum=%x, baseline count=%d sum=%x",
				tech, count, sum, baseCount, baseSum)
		}
	}
}

func TestDifferentialSkipListInsertMatchesBaseline(t *testing.T) {
	build, _, err := relation.BuildIndexWorkload(1<<11, 37)
	if err != nil {
		t.Fatal(err)
	}
	runOne := func(tech ops.Technique) (uint64, uint64) {
		// The same tower-height seed gives every technique an identical
		// logical list to build; only scheduling differs.
		w := ops.NewSkipListWorkload(build, build)
		m := w.InsertMachine(77)
		ops.RunMachine(newCore(), m, tech, ops.Params{Window: 10})
		keys := w.List.Keys()
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var sum uint64
		for _, k := range keys {
			p, ok := w.List.SearchRaw(k)
			if !ok {
				t.Fatalf("%s: inserted key %d not found", tech, k)
			}
			fnvMix(&sum, k, p)
		}
		return uint64(m.Inserted), sum
	}
	baseCount, baseSum := runOne(ops.Baseline)
	for _, tech := range ops.PrefetchingTechniques {
		count, sum := runOne(tech)
		if count != baseCount || sum != baseSum {
			t.Errorf("skip list insert %s: inserted=%d sum=%x, baseline inserted=%d sum=%x",
				tech, count, sum, baseCount, baseSum)
		}
	}
}

// TestDifferentialBuildMatchesBaseline extends the suite to the hash build
// machine: the table contents after a build phase must be identical across
// engines (same keys, same payload multisets, same tuple count).
func TestDifferentialBuildMatchesBaseline(t *testing.T) {
	spec := relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 10, ZipfBuild: 0.5, Seed: 41}
	runOne := func(tech ops.Technique) (uint64, uint64) {
		build, probe, err := relation.BuildJoin(spec)
		if err != nil {
			t.Fatal(err)
		}
		j := ops.NewHashJoin(build, probe)
		ops.RunMachine(newCore(), j.BuildMachine(), tech, ops.Params{Window: 10})
		var sum uint64
		seen := make(map[uint64]bool)
		for _, tup := range build.Tuples {
			if seen[tup.Key] {
				continue
			}
			seen[tup.Key] = true
			for _, p := range j.Table.LookupAllRaw(tup.Key) {
				fnvMix(&sum, tup.Key, p)
			}
		}
		return j.Table.ComputeStats().Tuples, sum
	}
	baseCount, baseSum := runOne(ops.Baseline)
	for _, tech := range ops.PrefetchingTechniques {
		count, sum := runOne(tech)
		if count != baseCount || sum != baseSum {
			t.Errorf("build %s: tuples=%d sum=%x, baseline tuples=%d sum=%x",
				tech, count, sum, baseCount, baseSum)
		}
	}
}

package ops_test

import (
	"testing"

	"amac/internal/ops"
	"amac/internal/relation"
)

func TestProbeLimitRestrictsLookups(t *testing.T) {
	j := buildJoin(t, joinSpec(0, 0))
	j.PrebuildRaw()
	out := ops.NewOutput(j.Arena, false)
	m := j.ProbeMachine(out, true)
	m.Limit = 100
	if m.NumLookups() != 100 {
		t.Fatalf("NumLookups = %d, want 100", m.NumLookups())
	}
	ops.RunMachine(newCore(), m, ops.AMAC, ops.Params{Window: 8})
	if out.Count != 100 {
		t.Fatalf("probed %d tuples, want 100", out.Count)
	}

	// A limit beyond the input size is ignored.
	m2 := j.ProbeMachine(ops.NewOutput(j.Arena, false), true)
	m2.Limit = 1 << 30
	if m2.NumLookups() != j.Probe.Len() {
		t.Fatalf("oversized limit should fall back to the input size")
	}
}

func TestProbeProvisionOverride(t *testing.T) {
	j := buildJoin(t, joinSpec(0, 0))
	m := j.ProbeMachine(ops.NewOutput(j.Arena, false), true)
	if m.ProvisionedStages() != 2 {
		t.Fatalf("default provision = %d, want 2", m.ProvisionedStages())
	}
	m.Provision = 7
	if m.ProvisionedStages() != 7 {
		t.Fatalf("override provision = %d, want 7", m.ProvisionedStages())
	}
	b := j.BuildMachine()
	b.Provision = 4
	if b.ProvisionedStages() != 4 {
		t.Fatal("build provision override broken")
	}
	g := ops.GroupByMachine{Table: nil, In: j.Probe, Provision: 5}
	if g.ProvisionedStages() != 5 {
		t.Fatal("group-by provision override broken")
	}
}

// TestUnderProvisionedEnginesStayCorrect is the regression test for the
// quadratic bail-out behaviour: probes over long skewed chains with a far
// too small provisioned depth must still produce correct results in
// reasonable time.
func TestUnderProvisionedEnginesStayCorrect(t *testing.T) {
	build, probe, err := relation.BuildJoin(relation.JoinSpec{
		BuildSize: 1 << 13, ProbeSize: 1 << 12, ZipfBuild: 1.0, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := ops.NewHashJoin(build, probe)
	j.PrebuildRaw()
	wantCount, wantSum := j.ReferenceJoin()
	for _, tech := range []ops.Technique{ops.GP, ops.SPP} {
		out := ops.NewOutput(j.Arena, false)
		m := j.ProbeMachine(out, false)
		m.Provision = 2 // far below the skewed chain lengths
		ops.RunMachine(newCore(), m, tech, ops.Params{Window: 10})
		if out.Count != wantCount || out.Checksum != wantSum {
			t.Fatalf("%s with under-provisioned stages produced wrong results", tech)
		}
	}
}

func TestSkipListInsertRestartCounterOnConcurrentInserts(t *testing.T) {
	// With many in-flight inserts into a small key range, some splices must
	// observe stale predecessors and retry; the machine records them.
	build, _, err := relation.BuildIndexWorkload(1<<10, 23)
	if err != nil {
		t.Fatal(err)
	}
	w := ops.NewSkipListWorkload(build, build)
	m := w.InsertMachine(23)
	ops.RunMachine(newCore(), m, ops.AMAC, ops.Params{Window: 16})
	if m.Inserted != build.Len() {
		t.Fatalf("inserted %d of %d", m.Inserted, build.Len())
	}
	if m.Restarts == 0 {
		t.Log("no splice restarts observed (acceptable, but unusual with 16 in-flight inserts)")
	}
}

func TestOutputKeepsRowsOnlyWhenAsked(t *testing.T) {
	j := buildJoin(t, joinSpec(0, 0))
	j.PrebuildRaw()
	quiet := ops.NewOutput(j.Arena, false)
	ops.RunMachine(newCore(), j.ProbeMachine(quiet, true), ops.AMAC, ops.Params{})
	if len(quiet.Rows) != 0 {
		t.Fatal("rows retained although Keep was false")
	}
	kept := ops.NewOutput(j.Arena, true)
	ops.RunMachine(newCore(), j.ProbeMachine(kept, true), ops.AMAC, ops.Params{})
	if uint64(len(kept.Rows)) != kept.Count {
		t.Fatalf("kept %d rows, counted %d", len(kept.Rows), kept.Count)
	}
}

package ops

import (
	"amac/internal/arena"
	"amac/internal/exec"
	"amac/internal/ht"
	"amac/internal/memsim"
)

// BuildMachine is the hash join build operator (second column of the paper's
// Table 1): every input tuple is inserted into the chained hash table under
// the bucket's latch, using the reference implementation's constant-time
// scheme (try the header, then the first overflow node, otherwise splice in
// a fresh node behind the header — at most two node visits per insert, which
// is why the build phase is insensitive to skew).
//
//	stage 0: get the next build tuple, hash, compute and prefetch the bucket;
//	stage 1: acquire the bucket latch (retry if another in-flight lookup
//	         holds it), insert into the header if it has room, extend the
//	         chain if there is no overflow node yet, otherwise prefetch the
//	         first overflow node;
//	stage 2: visit the first overflow node (latch still held), insert there
//	         or splice in a fresh node.
//
// The latch is held from stage 1 until the tuple is inserted, so concurrent
// in-flight insertions into the same bucket serialize against each other,
// which is precisely the read/write dependency the paper discusses in
// Section 3.2.
type BuildMachine struct {
	// Table is the hash table being built.
	Table *ht.Table
	// In is the build relation R, materialized in the arena.
	In *Input
	// Provision is the stage count GP and SPP provision for (default 2).
	Provision int
}

// BuildState is the per-lookup state of an in-flight insertion.
type BuildState struct {
	idx     int
	key     uint64
	payload uint64
	bucket  arena.Addr // bucket header, owner of the latch
	ptr     arena.Addr // node currently being examined
}

// NumLookups implements exec.Machine.
func (m *BuildMachine) NumLookups() int { return m.In.Len() }

// ProvisionedStages implements exec.Machine.
func (m *BuildMachine) ProvisionedStages() int {
	if m.Provision > 0 {
		return m.Provision
	}
	return 2
}

// Init implements exec.Machine (code stage 0).
func (m *BuildMachine) Init(c *memsim.Core, s *BuildState, i int) exec.Outcome {
	key, payload := m.In.Read(c, i)
	c.Instr(CostHash)
	bucket := m.Table.BucketAddr(m.Table.Hash(key))
	s.idx = i
	s.key = key
	s.payload = payload
	s.bucket = bucket
	s.ptr = bucket
	return exec.Outcome{NextStage: 1, Prefetch: bucket, PrefetchBytes: ht.NodeBytes}
}

// Stage implements exec.Machine.
func (m *BuildMachine) Stage(c *memsim.Core, s *BuildState, stage int) exec.Outcome {
	switch stage {
	case 1:
		c.Load(s.ptr, ht.NodeBytes)
		c.Instr(CostLatchAcquire)
		if !m.Table.TryLatch(s.bucket) {
			return exec.Outcome{NextStage: 1, Retry: true}
		}
		return m.insertOrAdvance(c, s, 2)
	case 2:
		c.Load(s.ptr, ht.NodeBytes)
		return m.insertOrAdvance(c, s, 2)
	default:
		panic("ops: BuildMachine has stages 1 and 2 only")
	}
}

// insertOrAdvance inserts the tuple into the current node if it has room,
// splices a fresh node behind the bucket header if the constant-time probe
// of header and first overflow node found no room, or (from the header only)
// advances to the first overflow node while keeping the bucket latch held.
func (m *BuildMachine) insertOrAdvance(c *memsim.Core, s *BuildState, walkStage int) exec.Outcome {
	ref := m.Table.Node(s.ptr)
	if ref.Count() < ht.TuplesPerNode {
		c.Instr(CostInsertTuple)
		m.Table.AppendTuple(s.ptr, s.key, s.payload)
		c.Store(s.ptr, ht.NodeBytes)
		c.Instr(CostLatchRelease)
		m.Table.Unlatch(s.bucket)
		return exec.Outcome{Done: true}
	}
	next := ref.Next()
	c.Instr(1)
	if s.ptr == s.bucket && next != 0 {
		// The header is full: examine the first overflow node.
		s.ptr = next
		return exec.Outcome{NextStage: walkStage, Prefetch: next, PrefetchBytes: ht.NodeBytes}
	}
	// Both the header and (if present) the first overflow node are full:
	// splice a fresh node in right behind the header.
	old := m.Table.NodeNext(s.bucket)
	c.Instr(CostAllocNode)
	node := m.Table.AllocNode()
	m.Table.SetNodeNext(node, old)
	m.Table.SetNodeNext(s.bucket, node)
	c.Store(s.bucket, ht.NodeBytes)
	c.Instr(CostInsertTuple)
	m.Table.AppendTuple(node, s.key, s.payload)
	c.Store(node, ht.NodeBytes)
	c.Instr(CostLatchRelease)
	m.Table.Unlatch(s.bucket)
	return exec.Outcome{Done: true}
}

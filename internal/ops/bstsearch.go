package ops

import (
	"amac/internal/arena"
	"amac/internal/bst"
	"amac/internal/exec"
	"amac/internal/memsim"
)

// BSTSearchMachine is the binary-search-tree search operator (fourth column
// of the paper's Table 1): every probe key descends from the root to its
// matching node, one dependent memory access per tree level.
//
//	stage 0: get the next probe tuple and prefetch the root;
//	stage 1: visit the prefetched node, compare keys, emit on a match or
//	         descend to the left/right child.
type BSTSearchMachine struct {
	// Tree is the index being probed.
	Tree *bst.Tree
	// In is the probe relation, materialized in the arena.
	In *Input
	// Out collects matches (an *Output, or a pipeline stage's pipe).
	Out Collector
	// Provision is the stage count GP and SPP provision for; zero derives
	// it from the tree height estimate for a random BST.
	Provision int
}

// BSTState is the per-lookup state of an in-flight tree search.
type BSTState struct {
	idx     int
	key     uint64
	payload uint64
	ptr     arena.Addr
}

// NumLookups implements exec.Machine.
func (m *BSTSearchMachine) NumLookups() int { return m.In.Len() }

// ProvisionedStages implements exec.Machine.
func (m *BSTSearchMachine) ProvisionedStages() int {
	if m.Provision > 0 {
		return m.Provision
	}
	// Expected depth of a random BST is about 2 log2(n); provisioning for
	// the common case (not the tail) is what the paper's Section 5.3 found
	// to perform best for SPP.
	n := m.Tree.Len()
	depth := 1
	for v := 1; v < n; v <<= 1 {
		depth++
	}
	return depth + depth/2
}

// Init implements exec.Machine (code stage 0).
func (m *BSTSearchMachine) Init(c *memsim.Core, s *BSTState, i int) exec.Outcome {
	key, payload := m.In.Read(c, i)
	return m.InitKey(c, s, i, key, payload)
}

// InitKey is stage 0 for a key already in registers: descend from the root.
// Pipeline stages fed by an upstream operator call it directly with the
// streamed-in row.
func (m *BSTSearchMachine) InitKey(c *memsim.Core, s *BSTState, rid int, key, payload uint64) exec.Outcome {
	s.idx = rid
	s.key = key
	s.payload = payload
	s.ptr = m.Tree.Root()
	if s.ptr == 0 {
		return exec.Outcome{Done: true}
	}
	return exec.Outcome{NextStage: 1, Prefetch: s.ptr, PrefetchBytes: bst.NodeBytes}
}

// Stage implements exec.Machine (code stage 1: visit a node).
func (m *BSTSearchMachine) Stage(c *memsim.Core, s *BSTState, stage int) exec.Outcome {
	if stage != 1 {
		panic("ops: BSTSearchMachine has a single descending stage")
	}
	c.Load(s.ptr, bst.NodeBytes)
	node := m.Tree.Node(s.ptr)
	c.Instr(CostCompare)
	nodeKey := node.Key()
	if nodeKey == s.key {
		m.Out.Emit(c, s.idx, s.key, node.Payload(), s.payload)
		return exec.Outcome{Done: true}
	}
	c.Instr(CostDescend)
	var child arena.Addr
	if s.key < nodeKey {
		child = node.Left()
	} else {
		child = node.Right()
	}
	if child == 0 {
		return exec.Outcome{Done: true}
	}
	s.ptr = child
	return exec.Outcome{NextStage: 1, Prefetch: child, PrefetchBytes: bst.NodeBytes}
}

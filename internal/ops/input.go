package ops

import (
	"encoding/binary"

	"amac/internal/arena"
	"amac/internal/memsim"
	"amac/internal/relation"
)

// Input is a relation materialized in the arena as a dense array of 16-byte
// tuples, so that reading an input tuple in code stage 0 is a charged —
// sequential and therefore cheap — memory access, exactly as in the paper's
// columnar storage.
type Input struct {
	a    *arena.Arena
	base arena.Addr
	n    int
}

// NewInput copies rel into the arena.
func NewInput(a *arena.Arena, rel *relation.Relation) *Input {
	in := &Input{a: a, n: rel.Len()}
	if in.n == 0 {
		in.base = a.Alloc(relation.TupleBytes, memsim.LineSize)
		return in
	}
	in.base = a.AllocSpan(uint64(in.n) * relation.TupleBytes)
	for i, tup := range rel.Tuples {
		b := a.Bytes(in.TupleAddr(i), relation.TupleBytes)
		binary.LittleEndian.PutUint64(b, tup.Key)
		binary.LittleEndian.PutUint64(b[8:], tup.Payload)
	}
	return in
}

// Len returns the number of tuples.
func (in *Input) Len() int { return in.n }

// Base returns the address of tuple 0.
func (in *Input) Base() arena.Addr { return in.base }

// Bytes returns the materialized size.
func (in *Input) Bytes() uint64 { return uint64(in.n) * relation.TupleBytes }

// TupleAddr returns the address of tuple i.
func (in *Input) TupleAddr(i int) arena.Addr {
	return in.base + arena.Addr(i*relation.TupleBytes)
}

// Read loads tuple i through the core (charged) and returns its key and
// payload, decoding both fields from one zero-copy view.
func (in *Input) Read(c *memsim.Core, i int) (key, payload uint64) {
	addr := in.TupleAddr(i)
	c.Load(addr, relation.TupleBytes)
	c.Instr(CostTupleFetch)
	b := in.a.Bytes(addr, relation.TupleBytes)
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:])
}

// ReadRaw returns tuple i without charging simulator time.
func (in *Input) ReadRaw(i int) (key, payload uint64) {
	b := in.a.Bytes(in.TupleAddr(i), relation.TupleBytes)
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:])
}

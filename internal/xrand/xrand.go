// Package xrand provides the deterministic random-number machinery used by
// the workload generators: a seedable 64-bit PRNG, Fisher-Yates
// permutations, and a Zipf sampler that supports the skew factors used in
// the AMAC paper (0.5, 0.75 and 1.0), which the standard library's
// rand.Zipf cannot generate (it requires s > 1).
//
// Everything here is deterministic given the seed, so every experiment and
// test in the repository is exactly reproducible.
package xrand

// Rand is a splitmix64 pseudo-random generator: tiny state, excellent
// statistical quality for workload generation, and trivially reproducible.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random value in [0, n). It panics if n is zero.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Multiply-shift bounded generation; the modulo bias is irrelevant for
	// workload generation but we avoid it anyway via rejection on the
	// (vanishingly rare) biased region.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Intn returns a pseudo-random int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

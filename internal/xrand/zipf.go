package xrand

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws values in [0, n) following a Zipf distribution with exponent
// theta: P(k) is proportional to 1/(k+1)^theta. theta = 0 degenerates to the
// uniform distribution; the paper uses theta in {0.5, 0.75, 1.0}.
//
// The sampler precomputes the cumulative distribution once and draws by
// binary search, so generation is O(log n) per value and exact for any
// theta >= 0.
type Zipf struct {
	rng *Rand
	n   uint64
	cdf []float64
}

// NewZipf builds a sampler over [0, n) with skew theta using rng as the
// randomness source. It panics if n is zero or theta is negative, which are
// programming errors in the workload definitions.
func NewZipf(rng *Rand, theta float64, n uint64) *Zipf {
	if n == 0 {
		panic("xrand: Zipf domain must be non-empty")
	}
	if theta < 0 || math.IsNaN(theta) {
		panic(fmt.Sprintf("xrand: invalid Zipf exponent %v", theta))
	}
	z := &Zipf{rng: rng, n: n}
	if theta == 0 {
		return z // uniform fast path, no CDF needed
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += 1.0 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	inv := 1.0 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1.0
	z.cdf = cdf
	return z
}

// N returns the domain size.
func (z *Zipf) N() uint64 { return z.n }

// Next draws the next value. Value 0 is the most popular element.
func (z *Zipf) Next() uint64 {
	if z.cdf == nil {
		return z.rng.Uint64n(z.n)
	}
	u := z.rng.Float64()
	idx := sort.SearchFloat64s(z.cdf, u)
	if uint64(idx) >= z.n {
		idx = int(z.n - 1)
	}
	return uint64(idx)
}

// TopShare returns the fraction of draws expected to land in the most
// popular `top` fraction of the domain — e.g. the paper's observation that
// with theta = 0.75 the most populous 1% of hash buckets hold 19% of the
// build tuples. It is used by tests to validate the sampler.
func (z *Zipf) TopShare(top float64) float64 {
	if top <= 0 {
		return 0
	}
	if top >= 1 {
		return 1
	}
	if z.cdf == nil {
		return top
	}
	k := uint64(math.Ceil(top * float64(z.n)))
	if k == 0 {
		k = 1
	}
	if k > z.n {
		k = z.n
	}
	return z.cdf[k-1]
}

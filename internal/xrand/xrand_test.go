package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different sequences")
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) returned %d", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUint64nRoughlyUniform(t *testing.T) {
	r := New(3)
	const buckets = 8
	const draws = 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want about %.0f", b, c, want)
		}
	}
}

func TestPermIsAPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 100
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(9)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatal("Shuffle lost or duplicated elements")
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(New(1), 0, 1000)
	var counts [10]int
	for i := 0; i < 100000; i++ {
		counts[z.Next()/100]++
	}
	for d, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("decile %d has %d draws; theta=0 should be uniform", d, c)
		}
	}
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	// With theta=0.75 over a large domain, a small head of the domain
	// receives a disproportionate share of the draws (the paper's
	// Section 2.2.2 observation that 1% of buckets hold ~19% of tuples;
	// the exact share depends on the Zipf parameterization, so the test
	// only checks for strong concentration well above the uniform 1%).
	const n = 1 << 17
	z := NewZipf(New(5), 0.75, n)
	const draws = 200000
	hot := uint64(n / 100)
	inHot := 0
	for i := 0; i < draws; i++ {
		if z.Next() < hot {
			inHot++
		}
	}
	share := float64(inHot) / draws
	if share < 0.10 || share > 0.50 {
		t.Fatalf("top 1%% received %.1f%% of draws, expected strong but bounded concentration", share*100)
	}
	if ts := z.TopShare(0.01); math.Abs(ts-share) > 0.03 {
		t.Fatalf("TopShare(1%%) = %.3f disagrees with empirical %.3f", ts, share)
	}
}

func TestZipfHigherThetaIsMoreSkewed(t *testing.T) {
	n := uint64(10000)
	z5 := NewZipf(New(1), 0.5, n)
	z10 := NewZipf(New(1), 1.0, n)
	if z10.TopShare(0.01) <= z5.TopShare(0.01) {
		t.Fatal("theta=1 must concentrate more mass in the head than theta=0.5")
	}
}

func TestZipfValuesInRange(t *testing.T) {
	z := NewZipf(New(11), 1.0, 37)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v >= 37 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestZipfTopShareBounds(t *testing.T) {
	z := NewZipf(New(2), 0.5, 100)
	if z.TopShare(0) != 0 || z.TopShare(1) != 1 || z.TopShare(2) != 1 {
		t.Fatal("TopShare boundary handling wrong")
	}
	u := NewZipf(New(2), 0, 100)
	if u.TopShare(0.25) != 0.25 {
		t.Fatal("uniform TopShare should equal the fraction")
	}
}

func TestZipfPanicsOnBadArguments(t *testing.T) {
	for name, f := range map[string]func(){
		"empty domain":   func() { NewZipf(New(1), 0.5, 0) },
		"negative theta": func() { NewZipf(New(1), -1, 10) },
		"NaN theta":      func() { NewZipf(New(1), math.NaN(), 10) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

// Package skiplist implements the concurrent Pugh skip list used by the
// paper's most complex workload (Section 5.4), following the ASCYLIB-style
// design the paper adopts: every node carries a latch and a tower of forward
// pointers, and inserts first search for the predecessor at every level and
// then splice the new node in under latches.
//
// Nodes live in an arena so traversals map onto simulated memory accesses;
// no method here charges simulator time — operator stage machines do.
package skiplist

import (
	"encoding/binary"
	"fmt"

	"amac/internal/arena"
	"amac/internal/memsim"
	"amac/internal/xrand"
)

// DefaultMaxLevel is sufficient for the workload sizes used in the paper and
// in this reproduction (2^25 elements need about 25 levels at p = 1/2).
const DefaultMaxLevel = 24

// Node field offsets. A node with L levels occupies headerBytes + 8*L bytes,
// allocated on its own cache line (or lines, for tall towers).
const (
	offLatch   = 0
	offLevel   = 1
	offKey     = 8
	offPayload = 16
	offTower   = 24

	headerBytes = 24
)

// List is a skip list over arena-resident nodes. The head node is a sentinel
// with the maximum number of levels and a key smaller than every real key
// (workload keys start at 1).
type List struct {
	a        *arena.Arena
	head     arena.Addr
	maxLevel int
	level    int // highest level currently in use (1-based)
	count    int

	// predsScratch is InsertRaw's predecessor vector, reused across raw
	// inserts so pre-building a large list does not allocate per key.
	predsScratch []arena.Addr
}

// New returns an empty list with the given maximum tower height.
func New(a *arena.Arena, maxLevel int) *List {
	if maxLevel < 1 {
		maxLevel = 1
	}
	if maxLevel > 64 {
		maxLevel = 64
	}
	l := &List{a: a, maxLevel: maxLevel, level: 1}
	l.head = l.NewNode(0, 0, maxLevel)
	return l
}

// NodeBytes returns the allocation size of a node with the given level.
func NodeBytes(level int) int { return headerBytes + 8*level }

// Head returns the sentinel node's address.
func (l *List) Head() arena.Addr { return l.head }

// MaxLevel returns the maximum tower height.
func (l *List) MaxLevel() int { return l.maxLevel }

// Level returns the highest level currently in use.
func (l *List) Level() int { return l.level }

// Len returns the number of keys stored.
func (l *List) Len() int { return l.count }

// NewNode allocates a node with the given tower height.
func (l *List) NewNode(key, payload uint64, level int) arena.Addr {
	if level < 1 || level > l.maxLevel {
		panic(fmt.Sprintf("skiplist: node level %d out of range [1,%d]", level, l.maxLevel))
	}
	n := l.a.Alloc(NodeBytes(level), memsim.LineSize)
	b := l.a.Bytes(n, headerBytes)
	b[offLevel] = uint8(level)
	binary.LittleEndian.PutUint64(b[offKey:], key)
	binary.LittleEndian.PutUint64(b[offPayload:], payload)
	return n
}

// NodeKey returns the key stored at node n.
func (l *List) NodeKey(n arena.Addr) uint64 { return l.a.ReadU64(n + offKey) }

// NodePayload returns the payload stored at node n.
func (l *List) NodePayload(n arena.Addr) uint64 { return l.a.ReadU64(n + offPayload) }

// SetPayload overwrites the payload at node n.
func (l *List) SetPayload(n arena.Addr, v uint64) { l.a.WriteU64(n+offPayload, v) }

// NodeLevel returns the tower height of node n.
func (l *List) NodeLevel(n arena.Addr) int { return int(l.a.ReadU8(n + offLevel)) }

// Next returns node n's successor at the given level (0-based), or 0.
func (l *List) Next(n arena.Addr, level int) arena.Addr {
	return l.a.ReadAddr(n + offTower + arena.Addr(8*level))
}

// TowerRef is a zero-copy view of a node's header plus tower levels 0..top,
// aliasing the arena. A descent reads several tower levels of one node; the
// view pays the arena bounds check once for all of them.
type TowerRef []byte

// Tower returns the view of node n covering tower levels up to top
// (0-based). The caller must be standing on n at a level it actually has,
// which guarantees the span lies inside the node's allocation.
func (l *List) Tower(n arena.Addr, top int) TowerRef {
	return TowerRef(l.a.Bytes(n, headerBytes+8*(top+1)))
}

// Node returns the header-only view of node n (key and payload; no tower
// levels — TowerRef.Next on it is out of range).
func (l *List) Node(n arena.Addr) TowerRef {
	return TowerRef(l.a.Bytes(n, headerBytes))
}

// Key returns the node's key through the view.
func (t TowerRef) Key() uint64 { return binary.LittleEndian.Uint64(t[offKey:]) }

// Payload returns the node's payload through the view.
func (t TowerRef) Payload() uint64 { return binary.LittleEndian.Uint64(t[offPayload:]) }

// Next returns the successor at the given level through the view.
func (t TowerRef) Next(level int) arena.Addr {
	return arena.Addr(binary.LittleEndian.Uint64(t[offTower+8*level:]))
}

// SetNext updates node n's successor at the given level (0-based).
func (l *List) SetNext(n arena.Addr, level int, next arena.Addr) {
	l.a.WriteAddr(n+offTower+arena.Addr(8*level), next)
}

// TryLatch attempts to acquire node n's latch and reports success.
func (l *List) TryLatch(n arena.Addr) bool {
	if l.a.ReadU8(n+offLatch) != 0 {
		return false
	}
	l.a.WriteU8(n+offLatch, 1)
	return true
}

// Unlatch releases node n's latch.
func (l *List) Unlatch(n arena.Addr) { l.a.WriteU8(n+offLatch, 0) }

// LatchHeld reports whether node n's latch is held.
func (l *List) LatchHeld(n arena.Addr) bool { return l.a.ReadU8(n+offLatch) != 0 }

// RandomLevel draws a tower height with the usual p = 1/2 geometric
// distribution, capped at the list's maximum level.
func (l *List) RandomLevel(rng *xrand.Rand) int {
	level := 1
	for level < l.maxLevel && rng.Uint64()&1 == 0 {
		level++
	}
	return level
}

// RaiseLevel records that a node of the given height now exists.
func (l *List) RaiseLevel(level int) {
	if level > l.level {
		l.level = level
	}
}

// NoteInsert updates bookkeeping after a splice performed by an operator.
func (l *List) NoteInsert(level int) {
	l.count++
	l.RaiseLevel(level)
}

// InsertRaw adds a key without charging simulator time, returning false if
// the key already exists. It is used to pre-build lists for search
// experiments and as the reference for validating engine-driven inserts.
func (l *List) InsertRaw(key, payload uint64, rng *xrand.Rand) bool {
	if l.predsScratch == nil {
		l.predsScratch = make([]arena.Addr, l.maxLevel)
	}
	preds := l.predsScratch
	x := l.head
	xt := l.Tower(x, l.level-1)
	for lvl := l.level - 1; lvl >= 0; lvl-- {
		for {
			next := xt.Next(lvl)
			if next == 0 || l.Node(next).Key() >= key {
				break
			}
			x = next
			xt = l.Tower(x, lvl)
		}
		preds[lvl] = x
	}
	if cand := l.Next(preds[0], 0); cand != 0 && l.NodeKey(cand) == key {
		return false
	}
	level := l.RandomLevel(rng)
	node := l.NewNode(key, payload, level)
	for lvl := 0; lvl < level; lvl++ {
		pred := l.head
		if lvl < l.level {
			pred = preds[lvl]
		}
		l.SetNext(node, lvl, l.Next(pred, lvl))
		l.SetNext(pred, lvl, node)
	}
	l.NoteInsert(level)
	return true
}

// SearchRaw returns the payload for key and whether it was found, without
// charging simulator time.
func (l *List) SearchRaw(key uint64) (uint64, bool) {
	x := l.head
	xt := l.Tower(x, l.level-1)
	for lvl := l.level - 1; lvl >= 0; lvl-- {
		for {
			next := xt.Next(lvl)
			if next == 0 || l.Node(next).Key() >= key {
				break
			}
			x = next
			xt = l.Tower(x, lvl)
		}
	}
	cand := xt.Next(0)
	if cand != 0 {
		if node := l.Node(cand); node.Key() == key {
			return node.Payload(), true
		}
	}
	return 0, false
}

// Keys returns every key in order by walking level 0 (for tests).
func (l *List) Keys() []uint64 {
	var out []uint64
	for n := l.Next(l.head, 0); n != 0; n = l.Next(n, 0) {
		out = append(out, l.NodeKey(n))
	}
	return out
}

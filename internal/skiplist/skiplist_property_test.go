package skiplist

import (
	"sort"
	"testing"
	"testing/quick"

	"amac/internal/arena"
	"amac/internal/xrand"
)

// TestRandomOperationSequenceMatchesMap drives the list with a random
// sequence of inserts and searches and checks every answer against a plain
// map — the kind of end-to-end invariant that catches pointer-splicing bugs
// that targeted tests miss.
func TestRandomOperationSequenceMatchesMap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		l := New(arena.New(), 12)
		ref := make(map[uint64]uint64)
		for i := 0; i < 600; i++ {
			key := rng.Uint64n(200) + 1
			switch rng.Intn(3) {
			case 0: // insert
				payload := rng.Uint64()
				inserted := l.InsertRaw(key, payload, rng)
				_, existed := ref[key]
				if inserted == existed {
					return false // must succeed exactly when the key was absent
				}
				if inserted {
					ref[key] = payload
				}
			default: // search
				got, ok := l.SearchRaw(key)
				want, exists := ref[key]
				if ok != exists || (ok && got != want) {
					return false
				}
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		// Level-0 order must equal the sorted reference keys.
		keys := l.Keys()
		wantKeys := make([]uint64, 0, len(ref))
		for k := range ref {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		if len(keys) != len(wantKeys) {
			return false
		}
		for i := range keys {
			if keys[i] != wantKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTowerHeightInvariant: a node linked at level L must have a tower of at
// least L+1 levels, for every level of the list, after a random build.
func TestTowerHeightInvariant(t *testing.T) {
	rng := xrand.New(77)
	l := New(arena.New(), 16)
	for i := 0; i < 2000; i++ {
		l.InsertRaw(rng.Uint64n(10000)+1, rng.Uint64(), rng)
	}
	for lvl := 0; lvl < l.Level(); lvl++ {
		for n := l.Next(l.Head(), lvl); n != 0; n = l.Next(n, lvl) {
			if l.NodeLevel(n) < lvl+1 {
				t.Fatalf("node with tower height %d reached from level %d", l.NodeLevel(n), lvl)
			}
		}
	}
}

package skiplist

import (
	"sort"
	"testing"
	"testing/quick"

	"amac/internal/arena"
	"amac/internal/relation"
	"amac/internal/xrand"
)

func TestEmptyList(t *testing.T) {
	l := New(arena.New(), 8)
	if l.Len() != 0 || l.Level() != 1 || l.MaxLevel() != 8 {
		t.Fatal("empty list invariants broken")
	}
	if _, ok := l.SearchRaw(5); ok {
		t.Fatal("search in empty list should fail")
	}
	if got := l.Keys(); len(got) != 0 {
		t.Fatalf("Keys = %v", got)
	}
}

func TestInsertSearchAndOrder(t *testing.T) {
	l := New(arena.New(), 12)
	rng := xrand.New(1)
	keys := []uint64{30, 10, 50, 20, 40}
	for i, k := range keys {
		if !l.InsertRaw(k, uint64(i)+100, rng) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if l.Len() != len(keys) {
		t.Fatalf("Len = %d", l.Len())
	}
	for i, k := range keys {
		p, ok := l.SearchRaw(k)
		if !ok || p != uint64(i)+100 {
			t.Fatalf("search(%d) = %d,%v", k, p, ok)
		}
	}
	if _, ok := l.SearchRaw(35); ok {
		t.Fatal("absent key reported found")
	}
	got := l.Keys()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("level-0 order not sorted: %v", got)
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	l := New(arena.New(), 8)
	rng := xrand.New(2)
	if !l.InsertRaw(7, 1, rng) {
		t.Fatal("first insert failed")
	}
	if l.InsertRaw(7, 2, rng) {
		t.Fatal("duplicate insert should be rejected")
	}
	if p, _ := l.SearchRaw(7); p != 1 {
		t.Fatal("duplicate insert must not overwrite the payload")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLevelDistribution(t *testing.T) {
	l := New(arena.New(), DefaultMaxLevel)
	rng := xrand.New(3)
	const draws = 20000
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		lv := l.RandomLevel(rng)
		if lv < 1 || lv > DefaultMaxLevel {
			t.Fatalf("level %d out of range", lv)
		}
		counts[lv]++
	}
	// Roughly half the towers have height 1, a quarter height 2, ...
	if c := counts[1]; c < draws*4/10 || c > draws*6/10 {
		t.Fatalf("height-1 towers = %d of %d, want about half", c, draws)
	}
	if counts[2] >= counts[1] || counts[3] >= counts[2] {
		t.Fatal("tower heights should become geometrically rarer")
	}
}

func TestHigherLevelsAreSubsetsOfLevelZero(t *testing.T) {
	l := New(arena.New(), 12)
	rng := xrand.New(4)
	for k := uint64(1); k <= 500; k++ {
		l.InsertRaw(k*3, k, rng)
	}
	level0 := make(map[uint64]bool)
	for n := l.Next(l.Head(), 0); n != 0; n = l.Next(n, 0) {
		level0[l.NodeKey(n)] = true
	}
	for lvl := 1; lvl < l.Level(); lvl++ {
		prev := uint64(0)
		for n := l.Next(l.Head(), lvl); n != 0; n = l.Next(n, lvl) {
			k := l.NodeKey(n)
			if !level0[k] {
				t.Fatalf("key %d appears at level %d but not at level 0", k, lvl)
			}
			if k <= prev {
				t.Fatalf("level %d not sorted", lvl)
			}
			if l.NodeLevel(n) <= lvl {
				t.Fatalf("node with height %d linked at level %d", l.NodeLevel(n), lvl)
			}
			prev = k
		}
	}
}

func TestMatchesReferenceMap(t *testing.T) {
	f := func(seed uint64) bool {
		build, probe, err := relation.BuildIndexWorkload(512, seed)
		if err != nil {
			return false
		}
		l := New(arena.New(), DefaultMaxLevel)
		rng := xrand.New(seed)
		ref := make(map[uint64]uint64)
		for _, tup := range build.Tuples {
			l.InsertRaw(tup.Key, tup.Payload, rng)
			ref[tup.Key] = tup.Payload
		}
		for _, tup := range probe.Tuples {
			p, ok := l.SearchRaw(tup.Key)
			if !ok || p != ref[tup.Key] {
				return false
			}
		}
		_, ok := l.SearchRaw(uint64(len(ref)) + 10)
		return !ok && l.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLatch(t *testing.T) {
	l := New(arena.New(), 4)
	rng := xrand.New(5)
	l.InsertRaw(10, 1, rng)
	n := l.Next(l.Head(), 0)
	if !l.TryLatch(n) || l.TryLatch(n) || !l.LatchHeld(n) {
		t.Fatal("latch protocol broken")
	}
	l.Unlatch(n)
	if l.LatchHeld(n) {
		t.Fatal("latch should be free after Unlatch")
	}
}

func TestNodeAccessors(t *testing.T) {
	l := New(arena.New(), 6)
	n := l.NewNode(9, 90, 3)
	if l.NodeKey(n) != 9 || l.NodePayload(n) != 90 || l.NodeLevel(n) != 3 {
		t.Fatal("node fields wrong")
	}
	l.SetPayload(n, 91)
	if l.NodePayload(n) != 91 {
		t.Fatal("SetPayload failed")
	}
	other := l.NewNode(11, 110, 1)
	l.SetNext(n, 2, other)
	if l.Next(n, 2) != other {
		t.Fatal("SetNext/Next broken")
	}
	if NodeBytes(3) != 24+24 {
		t.Fatalf("NodeBytes(3) = %d", NodeBytes(3))
	}
}

func TestNewNodePanicsOnBadLevel(t *testing.T) {
	l := New(arena.New(), 4)
	for _, lvl := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("level %d should panic", lvl)
				}
			}()
			l.NewNode(1, 1, lvl)
		}()
	}
}

func TestMaxLevelClamping(t *testing.T) {
	if New(arena.New(), 0).MaxLevel() != 1 {
		t.Fatal("max level should clamp up to 1")
	}
	if New(arena.New(), 1000).MaxLevel() != 64 {
		t.Fatal("max level should clamp down to 64")
	}
}

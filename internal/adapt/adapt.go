// Package adapt implements the adaptive execution subsystem: an online,
// feedback-driven controller that picks the pointer-chasing technique
// (Baseline, GP, SPP or AMAC) per execution phase and resizes the AMAC slot
// window mid-run.
//
// The paper's core argument for AMAC over group prefetching and software
// pipelining is flexibility: per-slot state makes the number of in-flight
// accesses a runtime knob and tolerates divergent control flow. This package
// turns that argument into a subsystem. A Controller watches cheap per-window
// execution samples (package exec's Window, fed by core.Run/RunStream) and
// per-segment cycle counts, and drives two loops:
//
//   - Technique selection (probe/exploit): a short probe epoch measures every
//     candidate technique on adjacent input segments and locks onto the
//     cheapest; exploitation then monitors cycles-per-lookup and re-probes
//     when the observed cost drifts outside a band around the calibrated
//     reference — the signature of a phase change (a working set outgrowing
//     the LLC, probe keys going cold, an operator switch). Hit-heavy phases
//     favour the baseline's lean loop; miss-heavy phases favour AMAC.
//   - AMAC width control (WidthAIMD): additive growth while stalls dominate,
//     multiplicative back-off when MSHR-full waits appear, a glide to the
//     floor on compute-bound phases. The controller persists across
//     segments, runs and operators, so tuning carries over.
//
// Controllers are engine-local state: one per core/shard, never shared
// across goroutines. The sharded layers (exec.RunParallel, serve.Run) give
// every worker its own.
package adapt

import (
	"fmt"

	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
)

// Config tunes a Controller. The zero value selects the documented defaults.
type Config struct {
	// Techniques are the candidates the probe epochs measure. Empty selects
	// all four (Baseline, GP, SPP, AMAC).
	Techniques []ops.Technique
	// Window is the in-flight window for GP and SPP and the AMAC starting
	// width. Zero selects ops.DefaultWindow.
	Window int
	// MinWidth and MaxWidth bound AMAC's adaptive slot window. Zero selects
	// 2 and 32.
	MinWidth, MaxWidth int
	// SegmentLookups is the exploit segment length in lookups: the
	// granularity at which drift is checked and a technique switch can
	// happen. Zero selects 4096.
	SegmentLookups int
	// ProbeLookups is the per-candidate probe segment length. Short probes
	// keep the steady-phase cost of measuring the losing techniques small.
	// Zero selects 512.
	ProbeLookups int
	// DriftUp and DriftDown bound the no-reprobe band around the calibrated
	// cycles-per-lookup reference: leaving it in either direction triggers
	// a probe epoch (costlier per lookup means the chosen technique
	// degraded; much cheaper means another technique may now win by more).
	// The downward band is deliberately wide — gradual improvement (a hot
	// set warming into the caches) should track through the reference's
	// EWMA, not re-probe on every step of the ramp; only a sharp collapse
	// in cost signals a genuine phase change. Zero selects 1.25 and 0.50.
	DriftUp, DriftDown float64
	// ProbeInterval is the width controller's sampling interval in
	// completions (forwarded to core.Options). Zero selects the core
	// default of width*4.
	ProbeInterval int
	// RetuneRequests is the streaming exploit lease: how many served
	// requests between controller decisions in RunStream. Zero selects 512.
	RetuneRequests int
	// ProbeRequests is the streaming probe lease length. Zero selects 128.
	ProbeRequests int
	// TuneGroupWindow enables adaptive GP/SPP group-size control: exploited
	// GP/SPP segments relaunch with a controller-chosen group size (a
	// GroupTuner hill-climb per technique) instead of the fixed Window.
	// Calibration probes always use Window so the candidates stay
	// comparable. Off by default: group retuning changes segment launch
	// parameters, and static sweeps must stay bit-identical.
	TuneGroupWindow bool
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if len(c.Techniques) == 0 {
		c.Techniques = ops.Techniques
	}
	if c.Window <= 0 {
		c.Window = ops.DefaultWindow
	}
	if c.MinWidth <= 0 {
		c.MinWidth = 2
	}
	if c.MaxWidth <= 0 {
		c.MaxWidth = 32
	}
	if c.MaxWidth < c.MinWidth {
		c.MaxWidth = c.MinWidth
	}
	if c.SegmentLookups <= 0 {
		c.SegmentLookups = 4096
	}
	if c.ProbeLookups <= 0 {
		c.ProbeLookups = 512
	}
	if c.ProbeLookups > c.SegmentLookups {
		c.ProbeLookups = c.SegmentLookups
	}
	if c.DriftUp <= 1 {
		c.DriftUp = 1.25
	}
	if c.DriftDown <= 0 || c.DriftDown >= 1 {
		c.DriftDown = 0.50
	}
	if c.RetuneRequests <= 0 {
		c.RetuneRequests = 512
	}
	if c.ProbeRequests <= 0 {
		c.ProbeRequests = 128
	}
	return c
}

// Info reports what a controller did, for diagnostics tables and tests.
type Info struct {
	// Probes counts probe epochs (including the initial calibration).
	Probes int
	// Switches counts technique changes decided by probe epochs.
	Switches int
	// Segments counts executed segments and leases, probes included.
	Segments int
	// Lookups tallies lookups served per technique.
	Lookups map[ops.Technique]int
	// Sched aggregates the AMAC scheduler stats of every AMAC segment
	// (width extremes and resize counts included).
	Sched core.RunStats
	// Final is the technique in force when the controller last ran; for
	// merged multi-shard tallies it is the technique that served the most
	// lookups (shards may disagree, so "last in force" has no merged
	// meaning).
	Final ops.Technique
	// Decisions is the controller's decision log: every probe epoch,
	// calibration, technique switch and reprobe trigger, stamped with the
	// simulated cycle it was taken at. Merged multi-shard tallies
	// concatenate the shards' logs (each shard runs its own clock).
	Decisions []Decision
}

// Share returns the fraction of lookups served by the given technique.
func (i Info) Share(t ops.Technique) float64 {
	total := 0
	for _, n := range i.Lookups {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(i.Lookups[t]) / float64(total)
}

// Merge folds another controller's tallies into i (sharded runs). Final
// becomes the technique serving the most merged lookups — shards may settle
// on different techniques, so "last in force" has no merged meaning.
func (i *Info) Merge(other Info) {
	i.Probes += other.Probes
	i.Switches += other.Switches
	i.Segments += other.Segments
	if i.Lookups == nil {
		i.Lookups = make(map[ops.Technique]int)
	}
	for t, n := range other.Lookups {
		i.Lookups[t] += n
	}
	i.Sched.Add(other.Sched)
	i.Decisions = append(i.Decisions, other.Decisions...)
	i.Final = other.Final
	for _, t := range ops.Techniques {
		if i.Lookups[t] > i.Lookups[i.Final] {
			i.Final = t
		}
	}
}

// String renders a compact one-line summary.
func (i Info) String() string {
	return fmt.Sprintf("final=%v probes=%d switches=%d segments=%d amacShare=%.2f width=[%d,%d] resizes=%d",
		i.Final, i.Probes, i.Switches, i.Segments, i.Share(ops.AMAC), i.Sched.MinWidth, i.Sched.MaxWidth, i.Sched.WidthChanges)
}

// Controller is the per-core adaptive state: the chosen technique, the
// calibrated cost reference, and the persistent AMAC width controller. It
// carries across Run calls, so heterogeneous operator sequences (a BST
// search followed by a skip list scan) retune at the operator boundary
// through the same drift machinery as an in-machine phase shift.
type Controller struct {
	cfg        Config
	width      *WidthAIMD
	groups     map[ops.Technique]*GroupTuner
	calibrated bool
	chosen     ops.Technique
	refCPL     float64
	info       Info

	// trace is the optional per-core trace sink (SetTrace); nil methods
	// no-op, so the hot paths call it unconditionally.
	trace *obs.CoreTrace
	// now is the controller's timebase: the driving core's cycle count as of
	// the last segment or lease boundary, stamped onto decision-log entries.
	now uint64

	// tailBias, when set, reports whether the serving layer wants tail-safe
	// execution (its SLO brownout is shedding load); tailActive remembers the
	// last reading so each engagement and release is logged once.
	tailBias   func() bool
	tailActive bool
}

// NewController builds a controller with the given configuration. The
// incumbent technique starts as AMAC — the paper's robust default — and is
// replaced by the first probe epoch's winner.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:    cfg,
		chosen: ops.AMAC,
		width:  NewWidthAIMD(cfg.Window, cfg.MinWidth, cfg.MaxWidth),
	}
}

// Info returns a snapshot of the controller's tallies.
func (ctl *Controller) Info() Info {
	info := ctl.info
	info.Final = ctl.chosen
	if info.Lookups != nil {
		cp := make(map[ops.Technique]int, len(info.Lookups))
		for t, n := range info.Lookups {
			cp[t] = n
		}
		info.Lookups = cp
	}
	info.Decisions = ctl.Decisions()
	return info
}

// Technique returns the technique currently in force.
func (ctl *Controller) Technique() ops.Technique { return ctl.chosen }

// SetTailBias attaches the serving layer's tail-safety signal: while f
// reports true (the SLO brownout is shedding load), exploit leases are
// forced onto AMAC — the paper's tail-robust engine — regardless of the
// calibrated cheapest choice. The p99 budget outranks mean cost when the
// budget is already blown.
func (ctl *Controller) SetTailBias(f func() bool) { ctl.tailBias = f }

// tailSafe reports whether the tail-safe bias is engaged, logging each
// engagement (From = calibrated choice, To = AMAC) and release once.
func (ctl *Controller) tailSafe() bool {
	if ctl.tailBias == nil {
		return false
	}
	biased := ctl.tailBias()
	if biased != ctl.tailActive {
		ctl.tailActive = biased
		if biased {
			ctl.record(KindTailSafe, ctl.chosen, ops.AMAC, 0)
		} else {
			ctl.record(KindTailSafe, ops.AMAC, ctl.chosen, 0)
		}
	}
	return biased
}

// Width returns the AMAC width currently in force.
func (ctl *Controller) Width() int { return ctl.width.W }

// amacOptions assembles the AMAC engine options with the width controller
// and the controller's trace sink attached.
func (ctl *Controller) amacOptions() core.Options {
	return core.Options{
		Width:         ctl.width.W,
		Controller:    ctl.width,
		MaxWidth:      ctl.cfg.MaxWidth,
		ProbeInterval: ctl.cfg.ProbeInterval,
		Trace:         ctl.trace,
	}
}

// account tallies one executed segment.
func (ctl *Controller) account(tech ops.Technique, lookups int, sched core.RunStats) {
	ctl.info.Segments++
	if ctl.info.Lookups == nil {
		ctl.info.Lookups = make(map[ops.Technique]int)
	}
	ctl.info.Lookups[tech] += lookups
	if tech == ops.AMAC {
		ctl.info.Sched.Add(sched)
	}
}

// observe feeds one exploit segment's cycles-per-lookup into the drift
// detector: outside the band the calibration is discarded (the next segment
// boundary runs a probe epoch); inside it the reference tracks slowly so
// gradual change does not accumulate into a false phase shift.
func (ctl *Controller) observe(cpl float64) {
	if cpl <= 0 {
		return
	}
	if cpl > ctl.refCPL*ctl.cfg.DriftUp || cpl < ctl.refCPL*ctl.cfg.DriftDown {
		ctl.recalibrate(KindDriftReprobe, cpl)
		return
	}
	ctl.refCPL = 0.7*ctl.refCPL + 0.3*cpl
}

// recalibrate discards the calibration after a detected phase shift: the
// next segment boundary runs a probe epoch, and the width and group-size
// controllers restart from the configured base width (the old tuning
// belonged to the old phase). kind and cpl record why — drift band left or
// queue pressure — in the decision log.
func (ctl *Controller) recalibrate(kind DecisionKind, cpl float64) {
	ctl.calibrated = false
	ctl.width = NewWidthAIMD(ctl.cfg.Window, ctl.cfg.MinWidth, ctl.cfg.MaxWidth)
	ctl.width.Trace = ctl.trace
	ctl.groups = nil
	ctl.record(kind, ctl.chosen, ctl.chosen, cpl)
}

// driftStop wraps the width controller during an exploited AMAC run: every
// probe window it checks the window's busy cycles-per-completion against
// the calibrated reference and, after patience consecutive out-of-band
// windows, returns exec.StopRun — the engine drains and hands control back
// within tens of lookups of the phase boundary, with no mid-run restarts on
// steady phases. In-band windows update the reference slowly, so gradual
// change (cache warm-up) tracks instead of false-triggering.
type driftStop struct {
	width    *WidthAIMD
	ref      float64
	up, down float64
	warmup   int
	patience int
	streak   int
	stopped  bool
	// lastCPL is the out-of-band observation that triggered the stop — the
	// evidence the controller records in its decision log.
	lastCPL float64
}

// newDriftStop arms the detector with the controller's calibrated state.
func newDriftStop(ctl *Controller) *driftStop {
	return &driftStop{
		width: ctl.width, ref: ctl.refCPL,
		up: ctl.cfg.DriftUp, down: ctl.cfg.DriftDown,
		warmup: 2, patience: 3,
	}
}

// Sample implements exec.WidthController.
func (d *driftStop) Sample(w exec.Window) int {
	if d.warmup > 0 {
		d.warmup--
		return d.width.Sample(w)
	}
	cpl := w.CyclesPerCompletion()
	if cpl > 0 && (cpl > d.ref*d.up || cpl < d.ref*d.down) {
		if d.streak++; d.streak >= d.patience {
			d.stopped = true
			d.lastCPL = cpl
			return exec.StopRun
		}
		return d.width.Sample(w)
	}
	d.streak = 0
	if cpl > 0 {
		d.ref = 0.7*d.ref + 0.3*cpl
	}
	return d.width.Sample(w)
}

// calibrate records a probe epoch's outcome.
func (ctl *Controller) calibrate(best ops.Technique, bestCPL float64, first bool) {
	ctl.info.Probes++
	kind := KindCalibrate
	if !first && best != ctl.chosen {
		ctl.info.Switches++
		kind = KindSwitch
	}
	from := ctl.chosen
	ctl.chosen = best
	ctl.refCPL = bestCPL
	ctl.calibrated = true
	ctl.record(kind, from, best, bestCPL)
}

// Run executes every lookup of the machine adaptively on core c. Probe
// epochs measure each candidate technique on short adjacent input segments
// and lock onto the cheapest. Exploitation then depends on the winner:
//
//   - AMAC runs as ONE engine run over everything left, with a driftStop
//     wrapped around the persistent width controller — drift is checked at
//     probe-window granularity (tens of lookups) and the run is stopped,
//     drained and handed back the moment a phase boundary is crossed, so a
//     steady phase pays no restart drains at all;
//   - the other techniques carry no inter-lookup pipeline worth preserving,
//     so they run in short restartable segments whose boundary cost is nil
//     and whose cycles-per-lookup feeds the same drift band.
//
// The lookups execute exactly once, in index order, so the operator output
// is identical to any static run.
func Run[S any](c *memsim.Core, m exec.Machine[S], ctl *Controller) Info {
	cfg := ctl.cfg
	n := m.NumLookups()
	// Non-AMAC exploit segments: short enough that a phase boundary is
	// caught within a few hundred lookups, long enough to amortise the
	// segment bookkeeping.
	segNA := max(cfg.ProbeLookups, cfg.SegmentLookups/4)
	p := c.Profiler()
	pos := 0
	for pos < n {
		if !ctl.calibrated {
			// Probe epochs charge under the "probe" frame, so a flamegraph
			// separates measurement overhead from exploitation.
			p.Push(p.Frame("probe"))
			ctl.record(KindProbeStart, ctl.chosen, ctl.chosen, 0)
			// Warm-up segment: run the incumbent unmeasured first, so the
			// earliest-probed candidate is not penalised with the phase's
			// cold caches and untrained stream state — without it the
			// epoch's measurements systematically favour whichever
			// candidate happens to probe last.
			if pos < n {
				seg := min(cfg.ProbeLookups, n-pos)
				runSegment(c, m, ctl, ctl.chosen, pos, seg)
				pos += seg
			}
			first := ctl.info.Probes == 0
			best, bestCPL := ctl.chosen, 0.0
			for _, tech := range cfg.Techniques {
				if pos >= n {
					break
				}
				seg := min(cfg.ProbeLookups, n-pos)
				cpl := runSegment(c, m, ctl, tech, pos, seg)
				pos += seg
				if bestCPL == 0 || cpl < bestCPL {
					best, bestCPL = tech, cpl
				}
			}
			if bestCPL > 0 {
				ctl.calibrate(best, bestCPL, first)
			}
			p.Pop()
			continue
		}
		if ctl.chosen == ops.AMAC {
			p.Push(p.Frame("exploit"))
			dw := newDriftStop(ctl)
			seg := exec.Shard[S]{M: m, Lo: pos, N: n - pos}
			opts := ctl.amacOptions()
			opts.Controller = dw
			sched := core.Run(c, seg, opts)
			ctl.account(ops.AMAC, sched.Initiated, sched)
			ctl.now = c.Cycle()
			pos += sched.Initiated
			ctl.refCPL = dw.ref
			if dw.stopped {
				ctl.recalibrate(KindDriftReprobe, dw.lastCPL)
			}
			p.Pop()
			continue
		}
		seg := min(segNA, n-pos)
		// Exploited GP/SPP segments relaunch at the tuner-chosen group size
		// (the configured window unless TuneGroupWindow is set): the segment
		// boundary is exactly where a statically-compiled group size CAN
		// change, so the relaunch is free.
		win := ctl.groupWindow(ctl.chosen)
		p.Push(p.Frame("exploit"))
		cpl := runSegmentW(c, m, ctl, ctl.chosen, pos, seg, win)
		p.Pop()
		pos += seg
		ctl.observeGroup(ctl.chosen, cpl)
		ctl.observe(cpl)
	}
	return ctl.Info()
}

// runSegment executes lookups [lo, lo+n) under one technique at the
// configured window and returns the segment's cycles per lookup.
func runSegment[S any](c *memsim.Core, m exec.Machine[S], ctl *Controller, tech ops.Technique, lo, n int) float64 {
	return runSegmentW(c, m, ctl, tech, lo, n, ctl.cfg.Window)
}

// runSegmentW is runSegment with an explicit GP/SPP group size.
func runSegmentW[S any](c *memsim.Core, m exec.Machine[S], ctl *Controller, tech ops.Technique, lo, n, window int) float64 {
	seg := exec.Shard[S]{M: m, Lo: lo, N: n}
	start := c.Cycle()
	var sched core.RunStats
	if tech == ops.AMAC {
		sched = core.Run(c, seg, ctl.amacOptions())
	} else {
		ops.RunMachine(c, seg, tech, ops.Params{Window: window})
	}
	ctl.account(tech, n, sched)
	ctl.now = c.Cycle()
	return float64(c.Cycle()-start) / float64(n)
}

package adapt

import (
	"amac/internal/exec"
	"amac/internal/obs"
)

// WidthAIMD resizes the AMAC slot window online, implementing the paper's
// Section 6 observation that AMAC's per-slot independence makes the number
// of in-flight memory accesses a runtime knob. The policy is an AIMD
// hill-climb over three phase signals read from each probe window:
//
//   - MSHR saturation (MSHRFullWaitCycles a visible share of busy time):
//     the window has outrun the hardware MLP limit and prefetches now stall
//     the core waiting for a free MSHR — back off multiplicatively, the
//     same instinct as a TCP sender that overran the bottleneck queue.
//   - Memory-bound (stall fraction high, MSHRs not saturated): unexploited
//     MLP remains — grow additively, one slot at a time.
//   - Compute-bound (stall fraction low): extra slots add no throughput but
//     hold more requests in flight concurrently, which inflates per-request
//     latency in serving runs — glide down one slot at a time toward Min.
//
// Hysteresis keeps the window from chattering: a direction must persist for
// Patience consecutive windows before a resize, and each resize is followed
// by Cooldown windows of observation so the new width's statistics settle
// before the next decision. The result on a steady memory-bound phase is a
// sawtooth hugging the MSHR limit from below — within the flat region of
// the paper's Figure 6 — and on compute-bound phases a glide to Min.
type WidthAIMD struct {
	// W is the current width (the value Sample returns while holding).
	W int
	// Min and Max bound the window.
	Min, Max int

	// SaturationFraction is the MSHR-full share of busy time above which
	// the window shrinks multiplicatively. Default 0.05.
	SaturationFraction float64
	// MemboundFraction is the stall share of busy time above which the
	// window grows. Default 0.35.
	MemboundFraction float64
	// CalmFraction is the stall share below which the phase counts as
	// compute-bound and the window glides down. Default 0.10.
	CalmFraction float64
	// Patience is how many consecutive windows must agree on a direction
	// before the width moves. Default 2.
	Patience int
	// Cooldown is how many windows are observed without acting after each
	// resize. Default 2.
	Cooldown int

	// Trace, if non-nil, receives a decision instant for every width move
	// (grow, shrink, glide), stamped with the probe window's end cycle.
	// Purely observational.
	Trace *obs.CoreTrace

	streakDir int
	streak    int
	cool      int
}

// NewWidthAIMD builds a controller starting at width start, bounded to
// [min, max], with the default thresholds.
func NewWidthAIMD(start, min, max int) *WidthAIMD {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	return &WidthAIMD{
		W: start, Min: min, Max: max,
		SaturationFraction: 0.05,
		MemboundFraction:   0.35,
		CalmFraction:       0.10,
		Patience:           2,
		Cooldown:           2,
	}
}

// Sample implements exec.WidthController.
func (a *WidthAIMD) Sample(w exec.Window) int {
	if a.cool > 0 {
		a.cool--
		return a.W
	}
	if w.BusyCycles() == 0 || w.Completed == 0 {
		return a.W
	}

	satur := w.MSHRFullFraction() > a.SaturationFraction
	stall := w.StallFraction()
	dir := 0
	switch {
	case satur:
		dir = -1
	case stall > a.MemboundFraction:
		dir = +1
	case stall < a.CalmFraction:
		dir = -1
	}
	if dir == 0 {
		a.streak, a.streakDir = 0, 0
		return a.W
	}
	if dir != a.streakDir {
		a.streakDir, a.streak = dir, 1
		return a.W
	}
	a.streak++
	if a.streak < a.Patience {
		return a.W
	}

	old := a.W
	code := obs.DecWidthGlide
	switch {
	case dir > 0:
		a.W++ // additive increase toward untapped MLP
		code = obs.DecWidthGrow
	case satur:
		a.W -= max(1, a.W/4) // multiplicative decrease off the MSHR wall
		code = obs.DecWidthShrink
	default:
		a.W-- // gentle glide on compute-bound phases
	}
	if a.W < a.Min {
		a.W = a.Min
	}
	if a.W > a.Max {
		a.W = a.Max
	}
	if a.W != old {
		a.Trace.Decision(w.AtCycle, code, int64(a.W), int64(old))
	}
	a.streak, a.streakDir = 0, 0
	a.cool = a.Cooldown
	return a.W
}

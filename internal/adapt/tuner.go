package adapt

import (
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/ops"
)

// NewControllerFor builds a controller seeded from the core it will drive:
// when the config leaves Window zero, the starting width (and GP/SPP group
// size) is the core's measured MSHR budget instead of the fixed
// ops.DefaultWindow. The paper finds AMAC saturates once the slot window
// covers the hardware MLP limit, so a controller seeded there starts inside
// the flat region of Figure 6 and the AIMD loop only has to fine-tune.
func NewControllerFor(c *memsim.Core, cfg Config) *Controller {
	if cfg.Window <= 0 {
		cfg.Window = c.MSHRBudget()
	}
	return NewController(cfg)
}

// GroupTuner adapts the GP/SPP group size online. GP and SPP bake their
// group size into their control flow, so unlike AMAC's width it cannot move
// mid-run; what CAN move is the size the next segment or lease is launched
// with. The tuner is an extremum-seeking hill climb over consecutive segment
// costs: step the group size in the current direction while the observed
// cycles-per-lookup keeps improving, reverse when it worsens, hold inside a
// small noise band. On a convex cost curve (too small = not enough overlap,
// too large = cache thrash and deeper bail-outs) it oscillates around the
// minimum with step-sized excursions.
type GroupTuner struct {
	// W is the group size the next segment should launch with.
	W int
	// Min and Max bound the walk.
	Min, Max int
	// Step is the per-decision group-size change. Default 2.
	Step int
	// Band is the relative cost change treated as noise: consecutive
	// segments within the band hold the current size. Default 0.05.
	Band float64

	dir  int
	last float64
}

// NewGroupTuner builds a tuner starting at the given group size.
func NewGroupTuner(start, min, max int) *GroupTuner {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	return &GroupTuner{W: start, Min: min, Max: max, Step: 2, Band: 0.05, dir: 1}
}

// Observe feeds one segment's cycles-per-lookup, measured at the group size
// Window() returned before the segment ran, and decides the next size.
func (g *GroupTuner) Observe(cpl float64) {
	if cpl <= 0 {
		return
	}
	if g.last == 0 {
		// First segment: no comparison point yet, explore in the current
		// direction so the second segment produces one.
		g.last = cpl
		g.step()
		return
	}
	switch {
	case cpl > g.last*(1+g.Band):
		g.dir = -g.dir
		g.step()
	case cpl < g.last*(1-g.Band):
		g.step()
	default:
		// Inside the noise band: hold, so a flat region does not chatter.
	}
	// The comparison point tracks slowly, as the drift band's reference
	// does, so gradual change (cache warm-up) is not mistaken for a slope.
	g.last = 0.7*g.last + 0.3*cpl
}

// step moves the group size one step, bouncing off the bounds.
func (g *GroupTuner) step() {
	g.W += g.dir * g.Step
	if g.W <= g.Min {
		g.W, g.dir = g.Min, 1
	}
	if g.W >= g.Max {
		g.W, g.dir = g.Max, -1
	}
}

// groupWindow returns the group size the next GP/SPP segment should launch
// with: the tuned size when group tuning is enabled, the configured window
// otherwise (the calibration probes always use the configured window, so
// probe epochs stay comparable across techniques).
func (ctl *Controller) groupWindow(tech ops.Technique) int {
	if !ctl.cfg.TuneGroupWindow || (tech != ops.GP && tech != ops.SPP) {
		return ctl.cfg.Window
	}
	g := ctl.groups[tech]
	if g == nil {
		if ctl.groups == nil {
			ctl.groups = make(map[ops.Technique]*GroupTuner, 2)
		}
		maxW := 4 * ctl.cfg.Window
		if maxW < 32 {
			maxW = 32
		}
		g = NewGroupTuner(ctl.cfg.Window, 2, maxW)
		ctl.groups[tech] = g
	}
	return g.W
}

// observeGroup feeds an exploited GP/SPP segment's cost into its tuner.
func (ctl *Controller) observeGroup(tech ops.Technique, cpl float64) {
	if !ctl.cfg.TuneGroupWindow || (tech != ops.GP && tech != ops.SPP) {
		return
	}
	if g := ctl.groups[tech]; g != nil {
		g.Observe(cpl)
	}
}

// GroupWindow exposes the group size currently in force for a technique
// (diagnostics and the pipeline planner).
func (ctl *Controller) GroupWindow(tech ops.Technique) int { return ctl.groupWindow(tech) }

// Lease is one streaming work grant decided by a StreamTuner: run the given
// technique over at most Quota admitted requests, then report back.
type Lease struct {
	// Tech is the engine to run.
	Tech ops.Technique
	// Window is the GP/SPP group size for this lease.
	Window int
	// Quota is the admission budget.
	Quota int
	// Probe marks a calibration lease (a candidate being measured).
	Probe bool
	// AMACOpts are the engine options for an AMAC lease, with the
	// controller's persistent width state attached.
	AMACOpts core.Options
}

// StreamTuner is the decision loop of adaptive streaming execution, factored
// out of RunStream so that any engine owner — the serving layer, a pipeline
// stage pumping between downstream pulls — can interleave its own work with
// the controller's probe/exploit cadence. The protocol is strict
// alternation: Next returns the lease to run, the caller executes it against
// the shared source (exec.LeaseSource bounds the admissions) and reports the
// outcome to Observe.
type StreamTuner struct {
	ctl        *Controller
	queueDepth func() int
	lastDepth  int
	probing    int // -1: warm-up lease; 0..len-1: candidate being measured
	best       ops.Technique
	bestCPL    float64
}

// NewStreamTuner builds the decision loop around a controller. queueDepth,
// if non-nil, reports the backlog feeding the stream (admission queue depth,
// pipe occupancy) and arms the queue-pressure retune trigger.
func NewStreamTuner(ctl *Controller, queueDepth func() int) *StreamTuner {
	return &StreamTuner{ctl: ctl, queueDepth: queueDepth, probing: -1}
}

// Next decides the next lease. Uncalibrated, the epoch runs a warm-up lease
// on the incumbent followed by one probe lease per candidate; calibrated, it
// grants exploit leases of RetuneRequests under the chosen technique.
func (t *StreamTuner) Next() Lease {
	ctl := t.ctl
	cfg := ctl.cfg
	tech := ctl.chosen
	quota := cfg.RetuneRequests
	probe := false
	if !ctl.calibrated {
		quota = cfg.ProbeRequests
		probe = true
		if t.probing >= 0 {
			tech = cfg.Techniques[t.probing]
		} else {
			// The warm-up lease is granted exactly once per epoch, so it marks
			// the epoch boundary in the decision log.
			ctl.record(KindProbeStart, ctl.chosen, ctl.chosen, 0)
		}
		// probing == -1 keeps the incumbent: an unmeasured warm-up lease so
		// the first probed candidate is not penalised with cold caches.
	}
	if !probe && tech != ops.AMAC && ctl.tailSafe() {
		// The serving layer's SLO brownout is shedding load: prefer the
		// tail-robust engine over the calibrated cheapest one until the p99
		// recovers.
		tech = ops.AMAC
	}
	l := Lease{Tech: tech, Window: cfg.Window, Quota: quota, Probe: probe}
	if tech == ops.AMAC {
		l.AMACOpts = ctl.amacOptions()
	} else if !probe {
		l.Window = ctl.groupWindow(tech)
	}
	return l
}

// Observe reports an executed lease: how many requests completed, the busy
// (non-idle) cycles they took, the AMAC scheduler stats if any, and whether
// the underlying source ended. It advances the probe epoch or feeds the
// drift and queue-pressure detectors, exactly as the monolithic RunStream
// loop did.
func (t *StreamTuner) Observe(l Lease, completed int, busyCycles uint64, sched core.RunStats, exhausted bool) {
	ctl := t.ctl
	cfg := ctl.cfg
	ctl.account(l.Tech, completed, sched)

	// Busy cycles per completion: idle time is traffic, not service cost, so
	// it is excluded — the controller compares how much work a request costs
	// under each technique, which is what determines both capacity and the
	// queue's drain rate.
	cpl := 0.0
	if completed > 0 {
		cpl = float64(busyCycles) / float64(completed)
	}

	if !ctl.calibrated {
		if t.probing >= 0 && cpl > 0 && (t.bestCPL == 0 || cpl < t.bestCPL) {
			t.best, t.bestCPL = l.Tech, cpl
		}
		t.probing++
		if t.probing == len(cfg.Techniques) || exhausted {
			if t.bestCPL > 0 {
				ctl.calibrate(t.best, t.bestCPL, ctl.info.Probes == 0)
				if t.queueDepth != nil {
					// Seed the queue-pressure baseline with the backlog the
					// probe epoch itself left behind, so the first exploit
					// lease compares against it instead of a vacuous zero —
					// the chosen engine deserves one lease to start draining
					// what probing queued up.
					t.lastDepth = t.queueDepth()
				}
			}
			t.probing, t.bestCPL = -1, 0
		}
		return
	}

	ctl.observeGroup(l.Tech, cpl)
	if l.Tech == ctl.chosen {
		// A tail-safe lease runs AMAC while the calibration references the
		// chosen technique's cost; feeding it to the drift detector would
		// compare apples to oranges and churn re-probes mid-brownout.
		ctl.observe(cpl)
	}
	if t.queueDepth != nil {
		// A queue that doubled across a lease AND holds several windows'
		// worth of backlog means the service fell behind the offered load:
		// re-probe even if the per-request cost looks stable. The absolute
		// floor matters — bursty arrivals spike the depth by a burst length
		// every burst, and re-probing on every burst echo would serve probe
		// leases under load and inflate the very tail the controller exists
		// to protect.
		d := t.queueDepth()
		if d > 2*t.lastDepth && d > 4*cfg.Window {
			// Same contract as a drift retune: the width tuning belonged to
			// the old regime, so reset it too.
			ctl.recalibrate(KindQueueReprobe, cpl)
		}
		t.lastDepth = d
	}
}

// RunLease executes one lease over the source on core c and reports it to
// the tuner, returning the lease wrapper for inspection (completions,
// exhaustion, a recorded wait) and the AMAC scheduler stats. It is the
// shared engine-dispatch helper between RunStream and the pipeline layer;
// gate and noWait configure the lease's backpressure hooks.
func RunLease[S any](c *memsim.Core, src exec.Source[S], t *StreamTuner, l Lease, gate func() bool, noWait bool) (*exec.LeaseSource[S], core.RunStats) {
	lease := &exec.LeaseSource[S]{Src: src, Quota: l.Quota, Gate: gate, NoWait: noWait}
	before := c.Stats()
	var sched core.RunStats
	tr := t.ctl.trace
	switch l.Tech {
	case ops.Baseline:
		exec.BaselineStreamTraced(c, lease, tr)
	case ops.GP:
		exec.GroupPrefetchStreamTraced(c, lease, l.Window, tr)
	case ops.SPP:
		exec.SoftwarePipelineStreamTraced(c, lease, l.Window, tr)
	case ops.AMAC:
		sched = core.RunStream(c, lease, l.AMACOpts)
	}
	after := c.Stats()
	busy := (after.Cycles - before.Cycles) - (after.IdleCycles - before.IdleCycles)
	t.ctl.now = c.Cycle()
	t.Observe(l, lease.Completed, busy, sched, lease.Exhausted)
	return lease, sched
}

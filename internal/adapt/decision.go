package adapt

import (
	"fmt"

	"amac/internal/obs"
	"amac/internal/ops"
)

// DecisionKind classifies one controller decision in the decision log.
type DecisionKind uint8

const (
	// KindProbeStart marks the beginning of a probe epoch: the controller is
	// about to measure every candidate technique on adjacent segments.
	KindProbeStart DecisionKind = iota
	// KindCalibrate records a probe epoch's outcome when the winner is the
	// incumbent (or this is the first calibration).
	KindCalibrate
	// KindSwitch records a probe epoch whose winner differs from the
	// incumbent: the technique change serving callers most want to explain.
	KindSwitch
	// KindDriftReprobe records a calibration discarded because the observed
	// cycles-per-lookup left the drift band — a phase shift.
	KindDriftReprobe
	// KindQueueReprobe records a calibration discarded because the admission
	// queue depth jumped across a lease — the service fell behind the load.
	KindQueueReprobe
	// KindTailSafe records the SLO brownout engaging (From = the calibrated
	// choice, To = AMAC) or releasing (the reverse) the tail-safe bias that
	// forces exploit leases onto AMAC while the p99 budget is blown.
	KindTailSafe
)

// String names the kind for tables and logs.
func (k DecisionKind) String() string {
	switch k {
	case KindProbeStart:
		return "probe-start"
	case KindCalibrate:
		return "calibrate"
	case KindSwitch:
		return "switch"
	case KindDriftReprobe:
		return "drift-reprobe"
	case KindQueueReprobe:
		return "queue-reprobe"
	case KindTailSafe:
		return "tail-safe"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// obsCode maps the kind onto the shared obs decision code so trace events and
// log entries name decisions identically.
func (k DecisionKind) obsCode() int {
	switch k {
	case KindProbeStart:
		return obs.DecProbeStart
	case KindCalibrate:
		return obs.DecCalibrate
	case KindSwitch:
		return obs.DecSwitch
	case KindDriftReprobe:
		return obs.DecDriftReprobe
	case KindQueueReprobe:
		return obs.DecQueueReprobe
	case KindTailSafe:
		return obs.DecTailSafe
	}
	return obs.DecProbeStart
}

// Decision is one entry of the controller's decision log: what the controller
// decided, when (in simulated cycles of the core it was driving), and the
// evidence it acted on. The log answers the serving operator's question "why
// did this shard switch technique?" without a trace viewer.
type Decision struct {
	// Cycle is the simulated cycle the decision was taken at (the cycle of
	// the segment or lease boundary that exposed the evidence).
	Cycle uint64
	// Kind classifies the decision.
	Kind DecisionKind
	// From and To are the techniques before and after the decision. Equal for
	// decisions that do not change the technique.
	From, To ops.Technique
	// Width is the AMAC slot-window width in force after the decision.
	Width int
	// CPL is the busy cycles-per-lookup evidence the decision acted on: the
	// winner's probe cost for calibrate/switch, the out-of-band observation
	// for the reprobe kinds, zero when no measurement applies.
	CPL float64
}

// String renders one log entry, e.g. "12.4kc switch GP->AMAC w=16 cpl=41.2".
func (d Decision) String() string {
	s := fmt.Sprintf("%.1fkc %v", float64(d.Cycle)/1000, d.Kind)
	if d.From != d.To {
		s += fmt.Sprintf(" %v->%v", d.From, d.To)
	} else {
		s += fmt.Sprintf(" %v", d.To)
	}
	s += fmt.Sprintf(" w=%d", d.Width)
	if d.CPL > 0 {
		s += fmt.Sprintf(" cpl=%.1f", d.CPL)
	}
	return s
}

// record appends a decision stamped with the controller's current timebase
// and mirrors it into the trace, if one is attached.
func (ctl *Controller) record(kind DecisionKind, from, to ops.Technique, cpl float64) {
	d := Decision{
		Cycle: ctl.now,
		Kind:  kind,
		From:  from,
		To:    to,
		Width: ctl.width.W,
		CPL:   cpl,
	}
	ctl.info.Decisions = append(ctl.info.Decisions, d)
	ctl.trace.Decision(d.Cycle, kind.obsCode(), int64(to), int64(d.Width))
}

// SetTrace attaches a per-core trace sink: technique decisions and AMAC width
// moves are mirrored into it as instant events on the controller track. Purely
// observational — attaching a trace changes no decision. The tracer survives
// recalibration (it is re-attached to the fresh width controller).
func (ctl *Controller) SetTrace(tr *obs.CoreTrace) {
	ctl.trace = tr
	ctl.width.Trace = tr
}

// Decisions returns a copy of the decision log accumulated so far.
func (ctl *Controller) Decisions() []Decision {
	if len(ctl.info.Decisions) == 0 {
		return nil
	}
	cp := make([]Decision, len(ctl.info.Decisions))
	copy(cp, ctl.info.Decisions)
	return cp
}

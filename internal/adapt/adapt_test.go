package adapt_test

import (
	"testing"

	"amac/internal/adapt"
	"amac/internal/exec"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/xrand"
)

func newCore() *memsim.Core {
	sys := memsim.MustSystem(memsim.XeonX5670())
	return sys.NewCore()
}

func chainLengths(n, l int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = l
	}
	return ls
}

func mixedLengths(n int, seed uint64) []int {
	rng := xrand.New(seed)
	ls := make([]int, n)
	for i := range ls {
		ls[i] = 1 + rng.Intn(6)
	}
	return ls
}

// window fabricates a probe window with the given busy profile.
func window(width, completed int, cycles, stall, mshrFullWait uint64) exec.Window {
	return exec.Window{
		Width: width, Completed: completed,
		Cycles: cycles, StallCycles: stall, MSHRFullWaitCycles: mshrFullWait,
	}
}

// TestWidthAIMDGrowsWhenMemoryBound: sustained high stall fraction with free
// MSHRs grows the window additively after Patience windows.
func TestWidthAIMDGrowsWhenMemoryBound(t *testing.T) {
	a := adapt.NewWidthAIMD(8, 2, 32)
	w := window(8, 50, 1000, 600, 0)
	if got := a.Sample(w); got != 8 {
		t.Fatalf("first memory-bound window must not act yet (hysteresis), got %d", got)
	}
	if got := a.Sample(w); got != 9 {
		t.Fatalf("second consecutive memory-bound window should grow to 9, got %d", got)
	}
}

// TestWidthAIMDBacksOffOnSaturation: visible MSHR-full waits shrink the
// window multiplicatively.
func TestWidthAIMDBacksOffOnSaturation(t *testing.T) {
	a := adapt.NewWidthAIMD(16, 2, 32)
	w := window(16, 50, 1000, 700, 100)
	a.Sample(w)
	if got := a.Sample(w); got != 12 {
		t.Fatalf("saturation should back off 16 -> 12 (W - W/4), got %d", got)
	}
}

// TestWidthAIMDGlidesWhenComputeBound: low stall fraction glides the window
// down one slot at a time.
func TestWidthAIMDGlidesWhenComputeBound(t *testing.T) {
	a := adapt.NewWidthAIMD(10, 2, 32)
	w := window(10, 50, 1000, 50, 0)
	a.Sample(w)
	if got := a.Sample(w); got != 9 {
		t.Fatalf("compute-bound phase should glide 10 -> 9, got %d", got)
	}
}

// TestWidthAIMDHysteresis: alternating signals never move the width, and a
// change is followed by a cooldown during which nothing happens.
func TestWidthAIMDHysteresis(t *testing.T) {
	a := adapt.NewWidthAIMD(10, 2, 32)
	grow := window(10, 50, 1000, 600, 0)
	calm := window(10, 50, 1000, 50, 0)
	for i := 0; i < 6; i++ {
		var got int
		if i%2 == 0 {
			got = a.Sample(grow)
		} else {
			got = a.Sample(calm)
		}
		if got != 10 {
			t.Fatalf("alternating signals moved the width to %d at step %d", got, i)
		}
	}

	// Two consistent windows act...
	a.Sample(grow)
	if got := a.Sample(grow); got != 11 {
		t.Fatalf("want growth to 11, got %d", got)
	}
	// ...then the cooldown holds even under a consistent signal.
	if got := a.Sample(grow); got != 11 {
		t.Fatalf("cooldown window must hold at 11, got %d", got)
	}
	if got := a.Sample(grow); got != 11 {
		t.Fatalf("cooldown window must hold at 11, got %d", got)
	}
}

// TestWidthAIMDRespectsBounds: the width never leaves [Min, Max].
func TestWidthAIMDRespectsBounds(t *testing.T) {
	a := adapt.NewWidthAIMD(3, 2, 4)
	grow := window(3, 50, 1000, 600, 0)
	for i := 0; i < 40; i++ {
		if got := a.Sample(grow); got > 4 {
			t.Fatalf("width %d exceeded Max 4", got)
		}
	}
	a = adapt.NewWidthAIMD(3, 2, 4)
	satur := window(3, 50, 1000, 700, 200)
	for i := 0; i < 40; i++ {
		if got := a.Sample(satur); got < 2 {
			t.Fatalf("width %d fell below Min 2", got)
		}
	}
}

// adaptCfg keeps segments small enough that a few-hundred-lookup test run
// still exercises probe, exploit and drift.
func adaptCfg() adapt.Config {
	return adapt.Config{SegmentLookups: 256, ProbeLookups: 32}
}

// TestAdaptiveRunCompletesAllLookups: the adaptive executor must run every
// lookup exactly once with exactly the right number of node visits, across
// probe epochs, technique switches and width resizes.
func TestAdaptiveRunCompletesAllLookups(t *testing.T) {
	m := exectest.NewChainMachine(mixedLengths(2000, 5), 7)
	ctl := adapt.NewController(adaptCfg())
	info := adapt.Run(newCore(), m, ctl)
	if len(m.Completions) != 2000 {
		t.Fatalf("completed %d of 2000 lookups", len(m.Completions))
	}
	seen := make(map[int]bool)
	for _, idx := range m.Completions {
		if seen[idx] {
			t.Fatalf("lookup %d completed twice", idx)
		}
		seen[idx] = true
	}
	for i, want := range m.Lengths {
		if m.Visits[i] != want {
			t.Fatalf("lookup %d visited %d nodes, want %d", i, m.Visits[i], want)
		}
	}
	if info.Probes < 1 {
		t.Fatalf("no probe epoch ran: %+v", info)
	}
	total := 0
	for _, n := range info.Lookups {
		total += n
	}
	if total != 2000 {
		t.Fatalf("technique tallies cover %d of 2000 lookups", total)
	}
}

// TestAdaptivePicksAMACOnMissHeavyChains: on DRAM-resident pointer chains —
// the paper's home turf — the probe epoch must select AMAC and the width
// controller must keep a multi-slot window.
func TestAdaptivePicksAMACOnMissHeavyChains(t *testing.T) {
	m := exectest.NewChainMachine(chainLengths(4000, 4), 5)
	ctl := adapt.NewController(adaptCfg())
	info := adapt.Run(newCore(), m, ctl)
	if info.Final != ops.AMAC {
		t.Fatalf("final technique = %v, want AMAC on miss-heavy chains (%v)", info.Final, info)
	}
	if info.Share(ops.AMAC) < 0.8 {
		t.Fatalf("AMAC served only %.0f%% of lookups: %v", 100*info.Share(ops.AMAC), info)
	}
	if info.Sched.MaxWidth < 4 {
		t.Fatalf("width never grew past %d on a memory-bound phase: %v", info.Sched.MaxWidth, info)
	}
}

// TestAdaptiveReprobesOnPhaseShift: a Concat whose second half has chains an
// order of magnitude longer must push the observed cost out of the drift
// band and trigger a second probe epoch.
func TestAdaptiveReprobesOnPhaseShift(t *testing.T) {
	short := exectest.NewChainMachine(chainLengths(1500, 1), 3)
	long := exectest.NewChainMachine(chainLengths(1500, 12), 13)
	m := exec.NewConcat[exectest.ChainState](short, long)
	ctl := adapt.NewController(adaptCfg())
	info := adapt.Run(newCore(), m, ctl)
	if got := len(short.Completions) + len(long.Completions); got != 3000 {
		t.Fatalf("completed %d of 3000 lookups", got)
	}
	if info.Probes < 2 {
		t.Fatalf("phase shift did not trigger a re-probe: %v", info)
	}
}

// TestAdaptiveControllerPersistsAcrossRuns: two heterogeneous machines run
// back to back under one controller retune at the boundary through the same
// drift machinery, and the tallies accumulate.
func TestAdaptiveControllerPersistsAcrossRuns(t *testing.T) {
	ctl := adapt.NewController(adaptCfg())
	a := exectest.NewChainMachine(chainLengths(1200, 1), 3)
	adapt.Run(newCore(), a, ctl)
	b := exectest.NewChainMachine(chainLengths(1200, 10), 11)
	info := adapt.Run(newCore(), b, ctl)
	if len(a.Completions) != 1200 || len(b.Completions) != 1200 {
		t.Fatalf("completions %d + %d, want 1200 each", len(a.Completions), len(b.Completions))
	}
	if info.Probes < 2 {
		t.Fatalf("operator boundary did not retune: %v", info)
	}
	total := 0
	for _, n := range info.Lookups {
		total += n
	}
	if total != 2400 {
		t.Fatalf("tallies cover %d of 2400 lookups across runs", total)
	}
}

// TestAdaptiveStreamCompletesAll: the lease-based streaming runner serves
// every request exactly once and reports aggregated scheduler stats.
func TestAdaptiveStreamCompletesAll(t *testing.T) {
	m := exectest.NewChainMachine(mixedLengths(3000, 17), 7)
	src := exec.NewMachineSource[exectest.ChainState](m)
	ctl := adapt.NewController(adapt.Config{RetuneRequests: 256, ProbeRequests: 64})
	adapt.RunStream(newCore(), src, ctl, nil)
	if len(m.Completions) != 3000 {
		t.Fatalf("served %d of 3000 requests", len(m.Completions))
	}
	seen := make(map[int]bool)
	for _, idx := range m.Completions {
		if seen[idx] {
			t.Fatalf("request %d served twice", idx)
		}
		seen[idx] = true
	}
	info := ctl.Info()
	if info.Probes < 1 || info.Segments < 4 {
		t.Fatalf("stream controller barely ran: %v", info)
	}
}

// TestConcatMatchesSequentialRuns: Concat is a pure view — running it under
// any engine visits exactly the nodes the two phases would visit separately.
func TestConcatMatchesSequentialRuns(t *testing.T) {
	for _, tech := range ops.Techniques {
		a := exectest.NewChainMachine(mixedLengths(300, 1), 7)
		b := exectest.NewChainMachine(mixedLengths(300, 2), 7)
		m := exec.NewConcat[exectest.ChainState](a, b)
		if m.NumLookups() != 600 {
			t.Fatalf("concat lookups = %d", m.NumLookups())
		}
		ops.RunMachine(newCore(), m, tech, ops.Params{Window: 8})
		if len(a.Completions) != 300 || len(b.Completions) != 300 {
			t.Fatalf("%v: completions %d + %d, want 300 each", tech, len(a.Completions), len(b.Completions))
		}
		for i, want := range a.Lengths {
			if a.Visits[i] != want {
				t.Fatalf("%v: phase A lookup %d visited %d, want %d", tech, i, a.Visits[i], want)
			}
		}
		for i, want := range b.Lengths {
			if b.Visits[i] != want {
				t.Fatalf("%v: phase B lookup %d visited %d, want %d", tech, i, b.Visits[i], want)
			}
		}
	}
}

package adapt_test

import (
	"testing"

	"amac/internal/adapt"
	"amac/internal/core"
	"amac/internal/ops"
)

// TestTailBiasForcesAMAC drives a StreamTuner through a calibration that
// picks Baseline, then engages the serving layer's tail-safe signal and
// checks exploit leases flip to AMAC (with the decision logged) and flip
// back on release.
func TestTailBiasForcesAMAC(t *testing.T) {
	ctl := adapt.NewController(adapt.Config{
		Techniques: []ops.Technique{ops.Baseline, ops.AMAC},
	})
	biased := false
	ctl.SetTailBias(func() bool { return biased })
	tuner := adapt.NewStreamTuner(ctl, nil)

	// Calibration epoch: warm-up lease, then one probe per candidate, with
	// Baseline measured far cheaper.
	observe := func(l adapt.Lease, cpl float64) {
		tuner.Observe(l, 100, uint64(cpl*100), core.RunStats{}, false)
	}
	observe(tuner.Next(), 50) // warm-up (unmeasured)
	observe(tuner.Next(), 10) // Baseline probe
	observe(tuner.Next(), 40) // AMAC probe
	if got := ctl.Technique(); got != ops.Baseline {
		t.Fatalf("calibration chose %v, want Baseline", got)
	}
	if l := tuner.Next(); l.Tech != ops.Baseline || l.Probe {
		t.Fatalf("unbiased exploit lease = %+v, want Baseline exploit", l)
	}

	biased = true
	l := tuner.Next()
	if l.Tech != ops.AMAC || l.Probe {
		t.Fatalf("biased exploit lease = %+v, want AMAC exploit", l)
	}
	decs := ctl.Decisions()
	last := decs[len(decs)-1]
	if last.Kind != adapt.KindTailSafe || last.From != ops.Baseline || last.To != ops.AMAC {
		t.Fatalf("engagement not logged: %+v", last)
	}
	// The forced lease's cost must not feed the Baseline drift detector, so
	// observing an expensive AMAC lease does not trigger a re-probe.
	observe(l, 40)
	if l := tuner.Next(); l.Probe {
		t.Fatal("tail-safe lease cost leaked into the drift detector")
	}

	biased = false
	if l := tuner.Next(); l.Tech != ops.Baseline {
		t.Fatalf("release should restore the calibrated choice, got %v", l.Tech)
	}
	decs = ctl.Decisions()
	last = decs[len(decs)-1]
	if last.Kind != adapt.KindTailSafe || last.To != ops.Baseline {
		t.Fatalf("release not logged: %+v", last)
	}
}

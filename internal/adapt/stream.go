package adapt

import (
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
)

// Streaming adaptation runs the same probe/exploit controller against an
// open-loop request source. The engines loop until their source is
// exhausted, so the controller interposes a lease (exec.LeaseSource): a
// source wrapper that reports end-of-stream after a quota of admitted
// requests. The engine drains its in-flight lookups and returns — no request
// is abandoned — and the controller reads the lease's window (busy cycles
// per completion, idle share, queue depth) before launching the next lease,
// possibly under a different technique. Lease quotas are counted in
// requests, not cycles, so retuning accelerates exactly when load rises —
// the moment adaptation matters under bursty or shifting traffic.
//
// The decision loop itself lives in StreamTuner (tuner.go), so the pipeline
// layer can drive the same cadence stage-by-stage; RunStream is the
// single-source composition of tuner and engine dispatch.

// RunStream serves the source adaptively on core c: leases of requests run
// under the controller's current technique, the controller re-probes the
// candidates when the observed busy-cycles-per-request drifts (a load or
// working-set shift) or when the queue depth jumps, and AMAC leases run
// under the persistent width controller. queueDepth, if non-nil, reports
// the admission-queue backlog between leases (serve.QueueSource.Depth); nil
// disables the queue-pressure trigger. Returns the aggregated AMAC
// scheduler stats, like core.RunStream.
func RunStream[S any](c *memsim.Core, src exec.Source[S], ctl *Controller, queueDepth func() int) core.RunStats {
	t := NewStreamTuner(ctl, queueDepth)
	var agg core.RunStats
	for {
		lease, sched := RunLease(c, src, t, t.Next(), nil, false)
		agg.Add(sched)
		if lease.Exhausted {
			return agg
		}
	}
}

package adapt

import (
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/ops"
)

// Streaming adaptation runs the same probe/exploit controller against an
// open-loop request source. The engines loop until their source is
// exhausted, so the controller interposes a lease: a source wrapper that
// reports end-of-stream after a quota of admitted requests. The engine
// drains its in-flight lookups and returns — no request is abandoned — and
// the controller reads the lease's window (busy cycles per completion, idle
// share, queue depth) before launching the next lease, possibly under a
// different technique. Lease quotas are counted in requests, not cycles, so
// retuning accelerates exactly when load rises — the moment adaptation
// matters under bursty or shifting traffic.

// leaseSource caps an underlying source at quota admitted requests.
type leaseSource[S any] struct {
	src       exec.Source[S]
	quota     int
	completed int
	exhausted bool // the underlying source ended for real
}

// ProvisionedStages implements exec.Source.
func (l *leaseSource[S]) ProvisionedStages() int { return l.src.ProvisionedStages() }

// Pull implements exec.Source: forward until the lease quota is spent, then
// report end-of-stream so the engine drains and hands control back.
func (l *leaseSource[S]) Pull(c *memsim.Core, s *S, now uint64) exec.PullResult {
	if l.quota <= 0 {
		return exec.PullResult{Status: exec.Exhausted}
	}
	pr := l.src.Pull(c, s, now)
	switch pr.Status {
	case exec.Exhausted:
		l.exhausted = true
	case exec.Pulled:
		l.quota--
	}
	return pr
}

// Stage implements exec.Source.
func (l *leaseSource[S]) Stage(c *memsim.Core, s *S, stage int) exec.Outcome {
	return l.src.Stage(c, s, stage)
}

// Complete implements exec.Source.
func (l *leaseSource[S]) Complete(req exec.Request, done uint64) {
	l.completed++
	l.src.Complete(req, done)
}

// RunStream serves the source adaptively on core c: leases of requests run
// under the controller's current technique, the controller re-probes the
// candidates when the observed busy-cycles-per-request drifts (a load or
// working-set shift) or when the queue depth jumps, and AMAC leases run
// under the persistent width controller. queueDepth, if non-nil, reports
// the admission-queue backlog between leases (serve.QueueSource.Depth); nil
// disables the queue-pressure trigger. Returns the aggregated AMAC
// scheduler stats, like core.RunStream.
func RunStream[S any](c *memsim.Core, src exec.Source[S], ctl *Controller, queueDepth func() int) core.RunStats {
	cfg := ctl.cfg
	var agg core.RunStats
	lastDepth := 0
	probing := -1 // -1: warm-up lease; 0..len-1: candidate being measured
	var best ops.Technique
	var bestCPL float64

	for {
		tech := ctl.chosen
		quota := cfg.RetuneRequests
		if !ctl.calibrated {
			quota = cfg.ProbeRequests
			if probing >= 0 {
				tech = cfg.Techniques[probing]
			}
			// probing == -1 keeps the incumbent: an unmeasured warm-up
			// lease so the first probed candidate is not penalised with
			// cold caches (see Run).
		}

		lease := &leaseSource[S]{src: src, quota: quota}
		before := c.Stats()
		var sched core.RunStats
		switch tech {
		case ops.Baseline:
			exec.BaselineStream(c, lease)
		case ops.GP:
			exec.GroupPrefetchStream(c, lease, cfg.Window)
		case ops.SPP:
			exec.SoftwarePipelineStream(c, lease, cfg.Window)
		case ops.AMAC:
			sched = core.RunStream(c, lease, ctl.amacOptions())
			agg.Add(sched)
		}
		after := c.Stats()
		ctl.account(tech, lease.completed, sched)

		// Busy cycles per completion: idle time is traffic, not service
		// cost, so it is excluded — the controller compares how much work a
		// request costs under each technique, which is what determines both
		// capacity and the queue's drain rate.
		busy := (after.Cycles - before.Cycles) - (after.IdleCycles - before.IdleCycles)
		cpl := 0.0
		if lease.completed > 0 {
			cpl = float64(busy) / float64(lease.completed)
		}

		if !ctl.calibrated {
			if probing >= 0 && cpl > 0 && (bestCPL == 0 || cpl < bestCPL) {
				best, bestCPL = tech, cpl
			}
			probing++
			if probing == len(cfg.Techniques) || lease.exhausted {
				if bestCPL > 0 {
					ctl.calibrate(best, bestCPL, ctl.info.Probes == 0)
					if queueDepth != nil {
						// Seed the queue-pressure baseline with the backlog
						// the probe epoch itself left behind, so the first
						// exploit lease compares against it instead of a
						// vacuous zero — the chosen engine deserves one
						// lease to start draining what probing queued up.
						lastDepth = queueDepth()
					}
				}
				probing, bestCPL = -1, 0
			}
		} else {
			ctl.observe(cpl)
			if queueDepth != nil {
				// A queue that doubled across a lease AND holds several
				// windows' worth of backlog means the service fell behind
				// the offered load: re-probe even if the per-request cost
				// looks stable. The absolute floor matters — bursty
				// arrivals spike the depth by a burst length every burst,
				// and re-probing on every burst echo would serve probe
				// leases under load and inflate the very tail the
				// controller exists to protect.
				d := queueDepth()
				if d > 2*lastDepth && d > 4*cfg.Window {
					// Same contract as a drift retune: the width tuning
					// belonged to the old regime, so reset it too.
					ctl.recalibrate()
				}
				lastDepth = d
			}
		}

		if lease.exhausted {
			return agg
		}
	}
}

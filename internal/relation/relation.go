// Package relation defines the columnar tuples and workload generators used
// by every experiment in the AMAC reproduction.
//
// Following the paper's methodology (Section 4), all workloads use 16-byte
// tuples consisting of an 8-byte integer key and an 8-byte integer payload,
// representative of in-memory columnar storage. Generators cover:
//
//   - uniform foreign-key join relations (dense unique keys),
//   - Zipf-skewed join relations with configurable skew on the build and/or
//     probe side ([Z_R, Z_S] in the paper's notation),
//   - group-by inputs where every key appears a fixed number of times or
//     follows a Zipf distribution,
//   - unique-key inputs for tree and skip list workloads.
//
// All generation is deterministic given the seed.
package relation

import (
	"fmt"

	"amac/internal/xrand"
)

// Tuple is a 16-byte columnar tuple: 8-byte key, 8-byte payload.
type Tuple struct {
	Key     uint64
	Payload uint64
}

// TupleBytes is the in-memory size of a tuple, used when computing working
// set sizes and when laying tuples out in the arena.
const TupleBytes = 16

// Relation is an in-memory column of tuples.
type Relation struct {
	// Name labels the relation in reports ("R", "S", ...).
	Name   string
	Tuples []Tuple
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Bytes returns the relation's size in bytes.
func (r *Relation) Bytes() int { return len(r.Tuples) * TupleBytes }

// MinKey returns the smallest key present, or 0 for an empty relation.
func (r *Relation) MinKey() uint64 {
	if len(r.Tuples) == 0 {
		return 0
	}
	min := r.Tuples[0].Key
	for _, t := range r.Tuples[1:] {
		if t.Key < min {
			min = t.Key
		}
	}
	return min
}

// MaxKey returns the largest key present, or 0 for an empty relation.
func (r *Relation) MaxKey() uint64 {
	max := uint64(0)
	for _, t := range r.Tuples {
		if t.Key > max {
			max = t.Key
		}
	}
	return max
}

// DistinctKeys returns the number of distinct key values.
func (r *Relation) DistinctKeys() int {
	seen := make(map[uint64]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		seen[t.Key] = struct{}{}
	}
	return len(seen)
}

// JoinSpec describes a hash-join workload: a build relation R and a probe
// relation S over the same key domain.
type JoinSpec struct {
	// BuildSize and ProbeSize are tuple counts (the paper's |R| and |S|).
	BuildSize int
	ProbeSize int
	// ZipfBuild and ZipfProbe are the Zipf exponents for the R and S keys
	// (the paper's [Z_R, Z_S]); zero means uniform. With both zero and
	// equal sizes the relations form a dense unique foreign-key pair.
	ZipfBuild float64
	ZipfProbe float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate reports whether the specification is usable.
func (s JoinSpec) Validate() error {
	if s.BuildSize <= 0 || s.ProbeSize <= 0 {
		return fmt.Errorf("relation: join spec needs positive sizes, got |R|=%d |S|=%d", s.BuildSize, s.ProbeSize)
	}
	if s.ZipfBuild < 0 || s.ZipfProbe < 0 {
		return fmt.Errorf("relation: negative Zipf factors")
	}
	return nil
}

// String renders the spec in the paper's notation.
func (s JoinSpec) String() string {
	return fmt.Sprintf("|R|=%d |S|=%d [Z_R=%.2f, Z_S=%.2f]", s.BuildSize, s.ProbeSize, s.ZipfBuild, s.ZipfProbe)
}

// BuildJoin generates the build relation R and probe relation S for a hash
// join following the spec. Key domain is [1, BuildSize]; S keys always fall
// inside R's key range (the foreign-key restriction of Section 4). Skewed
// key popularity is mapped through a random permutation of the domain so
// that hot keys are not numerically adjacent, which would otherwise give
// them artificial cache locality.
func BuildJoin(spec JoinSpec) (build, probe *Relation, err error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	rng := xrand.New(spec.Seed)
	domain := uint64(spec.BuildSize)

	// A permutation of the key domain; position i holds the key assigned
	// popularity rank i under the Zipf distributions.
	rank := make([]uint64, domain)
	for i := range rank {
		rank[i] = uint64(i) + 1
	}
	rng.Shuffle(len(rank), func(i, j int) { rank[i], rank[j] = rank[j], rank[i] })

	build = &Relation{Name: "R", Tuples: make([]Tuple, spec.BuildSize)}
	if spec.ZipfBuild == 0 {
		// Dense unique keys: every domain value appears exactly once.
		for i := range build.Tuples {
			build.Tuples[i] = Tuple{Key: rank[i], Payload: uint64(i) + 1}
		}
	} else {
		z := xrand.NewZipf(rng, spec.ZipfBuild, domain)
		for i := range build.Tuples {
			build.Tuples[i] = Tuple{Key: rank[z.Next()], Payload: uint64(i) + 1}
		}
	}

	probe = &Relation{Name: "S", Tuples: make([]Tuple, spec.ProbeSize)}
	const probePayloadBase = 1 << 40 // keep probe payloads disjoint from build payloads
	switch {
	case spec.ZipfProbe > 0:
		z := xrand.NewZipf(rng, spec.ZipfProbe, domain)
		for i := range probe.Tuples {
			probe.Tuples[i] = Tuple{Key: rank[z.Next()], Payload: probePayloadBase + uint64(i)}
		}
	case spec.ZipfBuild == 0 && spec.ProbeSize == spec.BuildSize:
		// Unique foreign-key join: S contains each R key exactly once, in
		// random order.
		perm := rng.Perm(spec.BuildSize)
		for i := range probe.Tuples {
			probe.Tuples[i] = Tuple{Key: rank[perm[i]], Payload: probePayloadBase + uint64(i)}
		}
	default:
		for i := range probe.Tuples {
			probe.Tuples[i] = Tuple{Key: rank[rng.Uint64n(domain)], Payload: probePayloadBase + uint64(i)}
		}
	}
	return build, probe, nil
}

// GroupBySpec describes a group-by workload.
type GroupBySpec struct {
	// Size is the number of input tuples.
	Size int
	// Repeats is how many times each distinct key appears when the keys are
	// uniform (the paper uses three).
	Repeats int
	// Zipf is the key skew; zero means uniform with exactly Repeats
	// occurrences per key.
	Zipf float64
	Seed uint64
}

// Validate reports whether the specification is usable.
func (s GroupBySpec) Validate() error {
	if s.Size <= 0 {
		return fmt.Errorf("relation: group-by spec needs a positive size")
	}
	if s.Repeats <= 0 {
		return fmt.Errorf("relation: group-by spec needs positive repeats")
	}
	if s.Zipf < 0 {
		return fmt.Errorf("relation: negative Zipf factor")
	}
	return nil
}

// BuildGroupBy generates a group-by input relation. With Zipf == 0 the
// relation contains Size/Repeats distinct keys, each appearing exactly
// Repeats times, in random order; with skew, keys are drawn from a Zipf
// distribution over the same domain. Payloads are distinct values so that
// aggregate results are sensitive to any lost or duplicated tuple.
func BuildGroupBy(spec GroupBySpec) (*Relation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(spec.Seed)
	groups := spec.Size / spec.Repeats
	if groups == 0 {
		groups = 1
	}
	domain := uint64(groups)

	rank := make([]uint64, domain)
	for i := range rank {
		rank[i] = uint64(i) + 1
	}
	rng.Shuffle(len(rank), func(i, j int) { rank[i], rank[j] = rank[j], rank[i] })

	rel := &Relation{Name: "G", Tuples: make([]Tuple, spec.Size)}
	if spec.Zipf == 0 {
		for i := range rel.Tuples {
			rel.Tuples[i].Key = rank[uint64(i)%domain]
		}
		rng.Shuffle(len(rel.Tuples), func(i, j int) {
			rel.Tuples[i].Key, rel.Tuples[j].Key = rel.Tuples[j].Key, rel.Tuples[i].Key
		})
	} else {
		z := xrand.NewZipf(rng, spec.Zipf, domain)
		for i := range rel.Tuples {
			rel.Tuples[i].Key = rank[z.Next()]
		}
	}
	for i := range rel.Tuples {
		rel.Tuples[i].Payload = uint64(i) + 1
	}
	return rel, nil
}

// BuildIndexWorkload generates the build and probe relations for the tree
// and skip list workloads: n unique, uniformly distributed keys to build the
// index from, and a probe relation that is a random permutation of the same
// keys, so every lookup finds exactly one match (the paper's index-join
// scenario).
func BuildIndexWorkload(n int, seed uint64) (build, probe *Relation, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("relation: index workload needs a positive size, got %d", n)
	}
	rng := xrand.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	build = &Relation{Name: "I", Tuples: make([]Tuple, n)}
	for i, k := range keys {
		build.Tuples[i] = Tuple{Key: k, Payload: uint64(i) + 1}
	}

	perm := rng.Perm(n)
	probe = &Relation{Name: "Q", Tuples: make([]Tuple, n)}
	for i, p := range perm {
		probe.Tuples[i] = Tuple{Key: build.Tuples[p].Key, Payload: 1<<40 + uint64(i)}
	}
	return build, probe, nil
}

package relation

import (
	"testing"
)

// TestZipfKeysDeterministic: the same (n, domain, theta, seed) must yield
// byte-identical keys, and a different seed a different sequence.
func TestZipfKeysDeterministic(t *testing.T) {
	a := ZipfKeys(5000, 1<<12, 1.0, 42)
	b := ZipfKeys(5000, 1<<12, 1.0, 42)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d != %d", i, a[i], b[i])
		}
	}
	c := ZipfKeys(5000, 1<<12, 1.0, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestZipfKeysDomainAndSkew: every key lies in [1, domain]; higher theta
// concentrates more mass on fewer keys; theta 0 is near-uniform.
func TestZipfKeysDomainAndSkew(t *testing.T) {
	const n, domain = 40000, 1 << 10
	distinct := func(theta float64) int {
		seen := make(map[uint64]bool)
		for _, k := range ZipfKeys(n, domain, theta, 7) {
			if k < 1 || k > domain {
				t.Fatalf("key %d outside [1, %d]", k, domain)
			}
			seen[k] = true
		}
		return len(seen)
	}
	d0, d1, d15 := distinct(0), distinct(1.0), distinct(1.5)
	if !(d0 > d1 && d1 > d15) {
		t.Fatalf("distinct keys should fall with skew: theta0=%d theta1=%d theta1.5=%d", d0, d1, d15)
	}
	if d0 < domain*9/10 {
		t.Fatalf("uniform draw covered only %d of %d keys", d0, domain)
	}
}

// TestZipfKeysHotMass: under heavy skew the most popular handful of keys
// dominates — the property the adaptive experiments' hot-probe phase relies
// on to keep its working set cache-resident.
func TestZipfKeysHotMass(t *testing.T) {
	const n, domain = 100000, 1 << 16
	counts := make(map[uint64]int)
	for _, k := range ZipfKeys(n, domain, 1.5, 11) {
		counts[k]++
	}
	type kc struct {
		k uint64
		c int
	}
	top := 0
	// Count the mass of the 256 most frequent keys.
	all := make([]kc, 0, len(counts))
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	for i := 0; i < 256 && len(all) > 0; i++ {
		best := 0
		for j := range all {
			if all[j].c > all[best].c {
				best = j
			}
		}
		top += all[best].c
		all[best] = all[len(all)-1]
		all = all[:len(all)-1]
	}
	if frac := float64(top) / n; frac < 0.75 {
		t.Fatalf("top-256 keys hold only %.0f%% of Zipf(1.5) draws, want >= 75%%", 100*frac)
	}
}

// TestKeyedRelation: explicit keys come through in order with distinct
// payloads.
func TestKeyedRelation(t *testing.T) {
	rel := KeyedRelation("X", []uint64{5, 9, 5}, 1000)
	if rel.Len() != 3 || rel.Name != "X" {
		t.Fatalf("relation %+v", rel)
	}
	for i, want := range []uint64{5, 9, 5} {
		if rel.Tuples[i].Key != want || rel.Tuples[i].Payload != 1000+uint64(i) {
			t.Fatalf("tuple %d = %+v", i, rel.Tuples[i])
		}
	}
}

package relation

import (
	"fmt"

	"amac/internal/xrand"
)

// ZipfKeys returns n keys drawn from a Zipf(theta) popularity distribution
// over the key domain [1, domain]. Popularity ranks are mapped through a
// seed-deterministic permutation of the domain, exactly as BuildJoin does,
// so hot keys are scattered across the key space rather than numerically
// adjacent (adjacency would give them artificial cache locality). theta 0
// degenerates to uniform. The result is deterministic given (n, domain,
// theta, seed).
//
// It is the small reusable piece behind every skewed workload in this
// repository: the adaptN experiment draws its hot-then-cold probe phases
// from it, and examples/hashjoin_skew uses it to build probe-side skew
// against a uniform build relation.
func ZipfKeys(n int, domain uint64, theta float64, seed uint64) []uint64 {
	if n < 0 {
		panic(fmt.Sprintf("relation: ZipfKeys needs a non-negative count, got %d", n))
	}
	if domain == 0 {
		panic("relation: ZipfKeys needs a non-empty domain")
	}
	rng := xrand.New(seed)
	rank := make([]uint64, domain)
	for i := range rank {
		rank[i] = uint64(i) + 1
	}
	rng.Shuffle(len(rank), func(i, j int) { rank[i], rank[j] = rank[j], rank[i] })

	z := xrand.NewZipf(rng, theta, domain)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rank[z.Next()]
	}
	return keys
}

// KeyedRelation builds a relation from explicit keys, with payloads
// payloadBase+i so every tuple stays distinguishable in checksums.
func KeyedRelation(name string, keys []uint64, payloadBase uint64) *Relation {
	rel := &Relation{Name: name, Tuples: make([]Tuple, len(keys))}
	for i, k := range keys {
		rel.Tuples[i] = Tuple{Key: k, Payload: payloadBase + uint64(i)}
	}
	return rel
}

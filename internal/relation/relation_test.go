package relation

import (
	"testing"
	"testing/quick"
)

func TestBuildJoinUniformUniqueForeignKey(t *testing.T) {
	spec := JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, Seed: 1}
	build, probe, err := BuildJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	if build.Len() != 1<<10 || probe.Len() != 1<<10 {
		t.Fatalf("sizes %d/%d", build.Len(), probe.Len())
	}
	if build.DistinctKeys() != build.Len() {
		t.Fatal("uniform build relation must have unique keys")
	}
	if probe.DistinctKeys() != probe.Len() {
		t.Fatal("equal-size uniform probe relation must contain each key once")
	}
	if build.MinKey() != 1 || build.MaxKey() != uint64(build.Len()) {
		t.Fatalf("dense key domain expected, got [%d,%d]", build.MinKey(), build.MaxKey())
	}
}

func TestBuildJoinProbeKeysAlwaysInBuildDomain(t *testing.T) {
	f := func(seed uint64) bool {
		spec := JoinSpec{BuildSize: 256, ProbeSize: 1024, ZipfProbe: 0.75, Seed: seed}
		build, probe, err := BuildJoin(spec)
		if err != nil {
			return false
		}
		domain := make(map[uint64]bool, build.Len())
		for _, tup := range build.Tuples {
			domain[tup.Key] = true
		}
		for _, tup := range probe.Tuples {
			if !domain[tup.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildJoinSkewedBuildHasDuplicates(t *testing.T) {
	spec := JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, ZipfBuild: 1.0, Seed: 3}
	build, _, err := BuildJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	if build.DistinctKeys() >= build.Len() {
		t.Fatal("Zipf(1.0) build keys should contain duplicates")
	}
}

func TestBuildJoinSmallerBuildRestrictsProbeRange(t *testing.T) {
	spec := JoinSpec{BuildSize: 128, ProbeSize: 4096, Seed: 7}
	build, probe, err := BuildJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	if probe.MaxKey() > build.MaxKey() {
		t.Fatal("probe keys must stay within the build key range")
	}
}

func TestBuildJoinDeterministic(t *testing.T) {
	spec := JoinSpec{BuildSize: 512, ProbeSize: 512, ZipfBuild: 0.5, ZipfProbe: 0.5, Seed: 11}
	b1, p1, _ := BuildJoin(spec)
	b2, p2, _ := BuildJoin(spec)
	for i := range b1.Tuples {
		if b1.Tuples[i] != b2.Tuples[i] {
			t.Fatal("build generation is not deterministic")
		}
	}
	for i := range p1.Tuples {
		if p1.Tuples[i] != p2.Tuples[i] {
			t.Fatal("probe generation is not deterministic")
		}
	}
}

func TestBuildJoinPayloadsDisjoint(t *testing.T) {
	build, probe, err := BuildJoin(JoinSpec{BuildSize: 100, ProbeSize: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, bt := range build.Tuples {
		for _, pt := range probe.Tuples {
			if bt.Payload == pt.Payload {
				t.Fatal("build and probe payloads should be disjoint for verifiability")
			}
		}
	}
}

func TestBuildJoinRejectsBadSpecs(t *testing.T) {
	bad := []JoinSpec{
		{BuildSize: 0, ProbeSize: 10},
		{BuildSize: 10, ProbeSize: 0},
		{BuildSize: 10, ProbeSize: 10, ZipfBuild: -1},
	}
	for _, spec := range bad {
		if _, _, err := BuildJoin(spec); err == nil {
			t.Fatalf("spec %+v should be rejected", spec)
		}
	}
	if (JoinSpec{BuildSize: 4, ProbeSize: 4}).String() == "" {
		t.Fatal("String should render")
	}
}

func TestBuildGroupByUniformRepeats(t *testing.T) {
	rel, err := BuildGroupBy(GroupBySpec{Size: 3000, Repeats: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	for _, tup := range rel.Tuples {
		counts[tup.Key]++
	}
	if len(counts) != 1000 {
		t.Fatalf("distinct keys = %d, want 1000", len(counts))
	}
	for k, c := range counts {
		if c != 3 {
			t.Fatalf("key %d appears %d times, want 3", k, c)
		}
	}
}

func TestBuildGroupByPayloadsDistinct(t *testing.T) {
	rel, err := BuildGroupBy(GroupBySpec{Size: 300, Repeats: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, tup := range rel.Tuples {
		if seen[tup.Payload] {
			t.Fatal("payloads must be distinct")
		}
		seen[tup.Payload] = true
	}
}

func TestBuildGroupBySkewed(t *testing.T) {
	rel, err := BuildGroupBy(GroupBySpec{Size: 30000, Repeats: 3, Zipf: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	max := 0
	for _, tup := range rel.Tuples {
		counts[tup.Key]++
		if counts[tup.Key] > max {
			max = counts[tup.Key]
		}
	}
	if max <= 10 {
		t.Fatalf("Zipf(1.0) should produce a heavily repeated key, max count %d", max)
	}
}

func TestBuildGroupByRejectsBadSpecs(t *testing.T) {
	bad := []GroupBySpec{
		{Size: 0, Repeats: 3},
		{Size: 10, Repeats: 0},
		{Size: 10, Repeats: 3, Zipf: -0.5},
	}
	for _, spec := range bad {
		if _, err := BuildGroupBy(spec); err == nil {
			t.Fatalf("spec %+v should be rejected", spec)
		}
	}
}

func TestBuildGroupByTinyRelation(t *testing.T) {
	rel, err := BuildGroupBy(GroupBySpec{Size: 2, Repeats: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("len = %d", rel.Len())
	}
}

func TestBuildIndexWorkload(t *testing.T) {
	build, probe, err := BuildIndexWorkload(1<<10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if build.DistinctKeys() != build.Len() {
		t.Fatal("index build keys must be unique")
	}
	if probe.Len() != build.Len() {
		t.Fatal("probe size must equal index size")
	}
	// Every probe key exists in the index exactly once.
	keys := make(map[uint64]int)
	for _, tup := range build.Tuples {
		keys[tup.Key]++
	}
	for _, tup := range probe.Tuples {
		keys[tup.Key]--
	}
	for k, c := range keys {
		if c != 0 {
			t.Fatalf("key %d unbalanced between build and probe (%d)", k, c)
		}
	}
	if _, _, err := BuildIndexWorkload(0, 1); err == nil {
		t.Fatal("zero-size workload should be rejected")
	}
}

func TestRelationHelpers(t *testing.T) {
	r := &Relation{Tuples: []Tuple{{Key: 5, Payload: 1}, {Key: 2, Payload: 2}, {Key: 9, Payload: 3}}}
	if r.MinKey() != 2 || r.MaxKey() != 9 {
		t.Fatalf("min/max = %d/%d", r.MinKey(), r.MaxKey())
	}
	if r.Bytes() != 3*TupleBytes {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
	empty := &Relation{}
	if empty.MinKey() != 0 || empty.MaxKey() != 0 || empty.DistinctKeys() != 0 {
		t.Fatal("empty relation helpers wrong")
	}
}

package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string // substring; empty means valid
		want    []Episode
	}{
		{
			name: "slow with factor",
			spec: "slow:0@60000+120000x4",
			want: []Episode{{Kind: Slow, Shard: 0, Start: 60000, Dur: 120000, Factor: 4}},
		},
		{
			name: "suffixes and list",
			spec: "freeze:1@5k+3k,crash:2@1M+40k",
			want: []Episode{
				{Kind: Freeze, Shard: 1, Start: 5000, Dur: 3000, Factor: 1},
				{Kind: Crash, Shard: 2, Start: 1000000, Dur: 40000, Factor: 1},
			},
		},
		{
			name: "spike",
			spec: "spike:3@800+200x8",
			want: []Episode{{Kind: Spike, Shard: 3, Start: 800, Dur: 200, Factor: 8}},
		},
		{name: "unknown kind", spec: "melt:0@1+2", wantErr: "unknown kind"},
		{name: "missing kind", spec: "0@1+2", wantErr: "lacks a kind"},
		{name: "missing start", spec: "slow:0+2x2", wantErr: "lacks @start"},
		{name: "missing dur", spec: "slow:0@100x2", wantErr: "lacks +dur"},
		{name: "zero dur", spec: "slow:0@100+0x2", wantErr: "bad duration"},
		{name: "slow without factor", spec: "slow:0@100+50", wantErr: "need an xfactor"},
		{name: "freeze with factor", spec: "freeze:0@100+50x2", wantErr: "take no factor"},
		{name: "factor below one", spec: "slow:0@100+50x0.5", wantErr: "bad factor"},
		{name: "negative shard", spec: "slow:-1@100+50x2", wantErr: "bad shard"},
		{name: "empty token", spec: "slow:0@1+2x2,,", wantErr: "empty episode"},
		{name: "empty spec", spec: "", wantErr: "empty schedule"},
		{name: "bad rand seed", spec: "rand:nope", wantErr: "bad rand seed"},
		{name: "bad rand count", spec: "rand:7:zero", wantErr: "bad rand episode count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := ParseSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sp.Sched.Episodes, tc.want) {
				t.Fatalf("episodes = %+v, want %+v", sp.Sched.Episodes, tc.want)
			}
		})
	}
}

func TestParseSpecRand(t *testing.T) {
	sp, err := ParseSpec("rand:99:6")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.IsRand || sp.RandSeed != 99 || sp.RandN != 6 {
		t.Fatalf("spec = %+v", sp)
	}
	sched, err := sp.Resolve(4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := sp.Resolve(4, 1<<20)
	if !reflect.DeepEqual(sched, again) {
		t.Fatal("random schedules must be deterministic for a fixed seed")
	}
	if sched.Empty() {
		t.Fatal("six requested episodes produced none")
	}
}

func TestScheduleValidate(t *testing.T) {
	overlap := &Schedule{Episodes: []Episode{
		{Kind: Slow, Shard: 0, Start: 100, Dur: 100, Factor: 2},
		{Kind: Freeze, Shard: 0, Start: 150, Dur: 10, Factor: 1},
	}}
	if err := overlap.Validate(2); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlap not rejected: %v", err)
	}
	outOfRange := &Schedule{Episodes: []Episode{{Kind: Crash, Shard: 3, Start: 0, Dur: 1, Factor: 1}}}
	if err := outOfRange.Validate(2); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("out-of-range shard not rejected: %v", err)
	}
	disjoint := &Schedule{Episodes: []Episode{
		{Kind: Slow, Shard: 1, Start: 100, Dur: 50, Factor: 2},
		{Kind: Slow, Shard: 0, Start: 100, Dur: 50, Factor: 2}, // other shard: fine
		{Kind: Crash, Shard: 1, Start: 150, Dur: 10, Factor: 1},
	}}
	if err := disjoint.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineAdvance(t *testing.T) {
	eps := []Episode{
		{Kind: Slow, Shard: 0, Start: 100, Dur: 50, Factor: 2},
		{Kind: Crash, Shard: 0, Start: 200, Dur: 30, Factor: 1},
	}
	tl := NewTimeline(eps)
	type change struct {
		kind  Kind
		begin bool
	}
	var got []change
	apply := func(ep Episode, begin bool) { got = append(got, change{ep.Kind, begin}) }

	tl.Advance(50, apply)
	if len(got) != 0 {
		t.Fatalf("changes before any start: %v", got)
	}
	tl.Advance(120, apply)
	if want := []change{{Slow, true}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if ep, ok := tl.Active(); !ok || ep.Kind != Slow {
		t.Fatalf("active = %v, %v", ep, ok)
	}
	// A step over the slow end and the whole crash episode reports all three
	// boundaries in order.
	got = nil
	tl.Advance(500, apply)
	want := []change{{Slow, false}, {Crash, true}, {Crash, false}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if _, ok := tl.Active(); ok {
		t.Fatal("nothing should be active after everything ended")
	}
}

func TestApplySpikes(t *testing.T) {
	arrivals := []uint64{0, 100, 200, 300, 400, 500}
	eps := []Episode{{Kind: Spike, Shard: 0, Start: 200, Dur: 200, Factor: 2}}
	got := ApplySpikes(arrivals, eps)
	want := []uint64{0, 100, 200, 250, 400, 500}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if arrivals[3] != 300 {
		t.Fatal("input schedule must not be modified")
	}
	// Monotonicity survives compression.
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("schedule not monotone at %d", i)
		}
	}
	// Non-spike episodes leave the schedule aliased and untouched.
	same := ApplySpikes(arrivals, []Episode{{Kind: Slow, Start: 0, Dur: 1000, Factor: 4}})
	if &same[0] != &arrivals[0] {
		t.Fatal("non-spike episodes should not copy the schedule")
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	r := RetryPolicy{Max: 3, Backoff: 100, Cap: 350}
	if !r.Enabled() {
		t.Fatal("Max>0 must enable")
	}
	for attempt, want := range map[int]uint64{1: 100, 2: 200, 3: 350, 4: 350} {
		if got := r.Delay(attempt); got != want {
			t.Fatalf("Delay(%d) = %d, want %d", attempt, got, want)
		}
	}
	// Default cap is 8x the base.
	unc := RetryPolicy{Max: 10, Backoff: 10}
	if got := unc.Delay(9); got != 80 {
		t.Fatalf("default cap: Delay(9) = %d, want 80", got)
	}
	if (RetryPolicy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(2, BreakerConfig{Cooldown: 1000, MinSamples: 8, ProbeEvery: 4})
	if b.State() != StateClosed {
		t.Fatal("breakers start closed")
	}
	// Healthy traffic keeps it closed.
	b.Observe(100, 20, 0)
	if b.State() != StateClosed || !b.Admit() {
		t.Fatal("healthy shard must stay closed")
	}
	// A burst of timeouts opens it (enough samples, EWMA above threshold).
	b.Observe(200, 0, 20)
	b.Observe(300, 0, 20)
	if b.State() != StateOpen {
		t.Fatalf("state = %v after sustained timeouts", b.State())
	}
	if b.Admit() {
		t.Fatal("open breaker must reroute")
	}
	// Before the cooldown nothing changes; after it, half-open.
	b.Observe(900, 0, 0)
	if b.State() != StateOpen {
		t.Fatal("cooldown not elapsed yet")
	}
	b.Observe(1300, 0, 0)
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v after cooldown", b.State())
	}
	// Half-open admits one probe in every ProbeEvery arrivals.
	admits := 0
	for i := 0; i < 8; i++ {
		if b.Admit() {
			admits++
		}
	}
	if admits != 2 {
		t.Fatalf("half-open admitted %d of 8, want 2", admits)
	}
	// Successful probes close it.
	for now := uint64(1400); b.State() == StateHalfOpen; now += 100 {
		b.Observe(now, 4, 0)
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v after healthy probes", b.State())
	}
	// The transition log captured the full closed→open→half-open→closed arc.
	var arc []State
	for _, tr := range b.Transitions() {
		if tr.Shard != 2 {
			t.Fatalf("transition carries shard %d, want 2", tr.Shard)
		}
		arc = append(arc, tr.To)
	}
	want := []State{StateOpen, StateHalfOpen, StateClosed}
	if !reflect.DeepEqual(arc, want) {
		t.Fatalf("transition arc %v, want %v", arc, want)
	}
}

func TestBreakerHalfOpenReopens(t *testing.T) {
	b := NewBreaker(0, BreakerConfig{Cooldown: 100, MinSamples: 4})
	b.Observe(10, 0, 10) // opens
	if b.State() != StateOpen {
		t.Fatalf("state = %v", b.State())
	}
	b.Observe(200, 0, 0) // half-open after cooldown
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v", b.State())
	}
	b.Observe(300, 0, 5) // probes failed: reopen
	if b.State() != StateOpen {
		t.Fatalf("state = %v after failed probes", b.State())
	}
}

func TestBrownoutShedAndRestore(t *testing.T) {
	b := NewBrownout(SLO{P99Budget: 1000, Classes: 4, HoldRounds: 2})
	if !b.Admit(3) {
		t.Fatal("nothing shed yet")
	}
	// Over budget: shed one class per round, never class 0.
	for i := 0; i < 10; i++ {
		b.Observe(5000)
	}
	if b.Level() != 3 {
		t.Fatalf("level = %d, want 3 (classes-1)", b.Level())
	}
	if b.Admit(1) || !b.Admit(0) {
		t.Fatal("level 3 must serve only class 0")
	}
	// In the hysteresis band: no restore.
	b.Observe(900)
	b.Observe(900)
	if b.Level() != 3 {
		t.Fatal("restore must need the margin, not just the budget")
	}
	// Well under budget for HoldRounds: restore one class at a time.
	b.Observe(100)
	if _, changed := b.Observe(100); !changed {
		t.Fatal("second in-margin round should restore a class")
	}
	if b.Level() != 2 {
		t.Fatalf("level = %d, want 2", b.Level())
	}
	if b.MaxLevel() != 3 {
		t.Fatalf("max level = %d, want 3", b.MaxLevel())
	}
}

package fault

// State is a circuit breaker's position. The numeric codes are stable: the
// obs trace exports them (KindBreaker events) without importing this package.
type State uint8

const (
	// StateClosed: traffic flows normally.
	StateClosed State = iota
	// StateOpen: the shard is considered unhealthy; arrivals are rerouted to
	// siblings until a cooldown elapses.
	StateOpen
	// StateHalfOpen: after the cooldown, a trickle of probe requests tests
	// the shard; success closes the breaker, failure reopens it.
	StateHalfOpen
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "?"
}

// Transition is one breaker state change on the simulated clock.
type Transition struct {
	Cycle    uint64
	Shard    int
	From, To State
}

// BreakerConfig tunes a per-shard circuit breaker. The zero value selects
// all defaults.
type BreakerConfig struct {
	// Alpha is the EWMA weight of each observation round's timeout fraction.
	// Default 0.3.
	Alpha float64
	// OpenAbove is the EWMA timeout fraction above which a closed (or
	// half-open) breaker opens. Default 0.5.
	OpenAbove float64
	// CloseBelow is the fraction at or below which a half-open breaker
	// closes. Default 0.1.
	CloseBelow float64
	// Cooldown is how long an open breaker waits before probing, in cycles.
	// Default 1<<16.
	Cooldown uint64
	// ProbeEvery admits one of every N arrivals while half-open and reroutes
	// the rest. Default 8.
	ProbeEvery int
	// MinSamples is the number of request outcomes the EWMA must cover
	// before it can open the breaker. Default 16.
	MinSamples int
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.OpenAbove == 0 {
		c.OpenAbove = 0.5
	}
	if c.CloseBelow == 0 {
		c.CloseBelow = 0.1
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1 << 16
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.MinSamples == 0 {
		c.MinSamples = 16
	}
	return c
}

// Breaker is one shard's circuit breaker: an EWMA over per-round timeout
// fractions drives closed → open → half-open → closed transitions, and Admit
// answers, per arrival, whether the shard may take the request or it should
// be rerouted to a healthy sibling. Purely host-side policy state — the
// coordinator feeds it at slice boundaries on the simulated clock.
type Breaker struct {
	cfg      BreakerConfig
	shard    int
	state    State
	ewma     float64
	seeded   bool
	samples  int
	openedAt uint64
	probeN   int
	trans    []Transition
}

// NewBreaker builds a closed breaker for the shard.
func NewBreaker(shard int, cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), shard: shard}
}

// State returns the breaker's position.
func (b *Breaker) State() State { return b.state }

// Health returns the EWMA timeout fraction (0 = healthy).
func (b *Breaker) Health() float64 { return b.ewma }

// Transitions returns every state change so far, in order.
func (b *Breaker) Transitions() []Transition { return b.trans }

// transitionTo records and applies a state change.
func (b *Breaker) transitionTo(now uint64, to State) {
	b.trans = append(b.trans, Transition{Cycle: now, Shard: b.shard, From: b.state, To: to})
	b.state = to
	if to == StateOpen {
		b.openedAt = now
	}
	if to == StateHalfOpen {
		b.probeN = 0
	}
}

// Observe feeds one observation round: the number of requests the shard
// completed and timed out since the last call. Call it every round even with
// zero counts — the open → half-open transition is time-driven. Returns the
// state after the round.
func (b *Breaker) Observe(now uint64, completed, timedOut int) State {
	if b.state == StateOpen && now >= b.openedAt+b.cfg.Cooldown {
		b.transitionTo(now, StateHalfOpen)
	}
	n := completed + timedOut
	if n == 0 {
		return b.state
	}
	frac := float64(timedOut) / float64(n)
	if !b.seeded {
		b.ewma = frac
		b.seeded = true
	} else {
		b.ewma = b.cfg.Alpha*frac + (1-b.cfg.Alpha)*b.ewma
	}
	b.samples += n
	switch b.state {
	case StateClosed:
		if b.samples >= b.cfg.MinSamples && b.ewma > b.cfg.OpenAbove {
			b.transitionTo(now, StateOpen)
		}
	case StateHalfOpen:
		if b.ewma > b.cfg.OpenAbove {
			b.transitionTo(now, StateOpen)
		} else if b.ewma <= b.cfg.CloseBelow {
			b.transitionTo(now, StateClosed)
		}
	}
	return b.state
}

// Admit answers whether the shard may take the next arrival: always while
// closed, never while open, one probe in every ProbeEvery while half-open.
func (b *Breaker) Admit() bool {
	switch b.state {
	case StateOpen:
		return false
	case StateHalfOpen:
		b.probeN++
		return b.probeN%b.cfg.ProbeEvery == 1
	}
	return true
}

// SLO configures the brownout controller: a p99 budget and the request
// classes load is shed by.
type SLO struct {
	// P99Budget is the sliding-window p99 latency target in cycles; zero
	// disables the brownout.
	P99Budget uint64
	// Classes partitions requests into priority classes (request index mod
	// Classes; class 0 is the most important and never shed). Default 4.
	Classes int
	// Margin is the budget fraction the p99 must fall below before a shed
	// class is restored — hysteresis against flapping. Default 0.7.
	Margin float64
	// HoldRounds is how many consecutive in-budget observation rounds must
	// pass before restoring a class. Default 4.
	HoldRounds int
}

// withDefaults fills zero fields.
func (s SLO) withDefaults() SLO {
	if s.Classes == 0 {
		s.Classes = 4
	}
	if s.Margin == 0 {
		s.Margin = 0.7
	}
	if s.HoldRounds == 0 {
		s.HoldRounds = 4
	}
	return s
}

// Enabled reports whether the SLO drives a brownout.
func (s SLO) Enabled() bool { return s.P99Budget > 0 }

// Brownout sheds load class-by-class when the observed p99 exceeds the SLO
// budget, and restores classes (with hysteresis) when it recovers. Level is
// the number of classes currently shed; requests in the top Level classes
// are rejected at admission.
type Brownout struct {
	slo      SLO
	level    int
	maxLevel int
	okRounds int
}

// NewBrownout builds a brownout controller; the zero-field SLO defaults
// apply.
func NewBrownout(slo SLO) *Brownout {
	return &Brownout{slo: slo.withDefaults()}
}

// Observe feeds one round's sliding p99; it returns the shed level after the
// round and whether it changed.
func (b *Brownout) Observe(p99 uint64) (level int, changed bool) {
	switch {
	case p99 > b.slo.P99Budget:
		b.okRounds = 0
		if b.level < b.slo.Classes-1 {
			b.level++
			if b.level > b.maxLevel {
				b.maxLevel = b.level
			}
			return b.level, true
		}
	case float64(p99) <= float64(b.slo.P99Budget)*b.slo.Margin:
		b.okRounds++
		if b.okRounds >= b.slo.HoldRounds && b.level > 0 {
			b.level--
			b.okRounds = 0
			return b.level, true
		}
	default:
		b.okRounds = 0
	}
	return b.level, false
}

// Level is the number of classes currently shed.
func (b *Brownout) Level() int { return b.level }

// MaxLevel is the highest level the controller reached.
func (b *Brownout) MaxLevel() int { return b.maxLevel }

// Classes returns the configured class count.
func (b *Brownout) Classes() int { return b.slo.Classes }

// Admit answers whether a request of the given class may be served at the
// current shed level.
func (b *Brownout) Admit(class int) bool { return class < b.slo.Classes-b.level }

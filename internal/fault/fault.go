// Package fault is the deterministic chaos layer of the serving stack: fault
// episodes scripted (or drawn from a seeded generator) against the simulated
// clock, plus the recovery-policy primitives — capped-backoff retry, hedged
// re-dispatch, a per-shard circuit breaker and an SLO brownout controller —
// that the serve coordinator composes into graceful degradation.
//
// Everything here is host-side policy state keyed on simulated cycles: the
// package never touches a core or advances the clock, so a fault run is
// bit-identical replayable from its schedule and seeds alone.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"amac/internal/xrand"
)

// Kind discriminates fault episodes. The numeric codes are stable: the obs
// trace exports them (KindFault events) without importing this package.
type Kind uint8

const (
	// Slow inflates the shard's off-chip memory latency by Factor for the
	// episode — a degraded DIMM, a noisy neighbour, a thermal throttle.
	Slow Kind = iota
	// Freeze halts the shard entirely for the episode; queued and in-flight
	// work is preserved and resumes afterwards (a long GC pause, a live
	// migration).
	Freeze
	// Crash kills the shard: in-flight and queued requests are lost, and the
	// shard restarts Dur cycles later with cold private caches.
	Crash
	// Spike compresses the shard's arrivals inside the episode window by
	// Factor — a flash crowd hitting one shard's keyspace.
	Spike
)

// String renders the kind name used by the parser and the trace export.
func (k Kind) String() string {
	switch k {
	case Slow:
		return "slow"
	case Freeze:
		return "freeze"
	case Crash:
		return "crash"
	case Spike:
		return "spike"
	}
	return "fault"
}

// parseKind inverts String.
func parseKind(s string) (Kind, error) {
	for _, k := range []Kind{Slow, Freeze, Crash, Spike} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want slow, freeze, crash or spike)", s)
}

// Episode is one fault applied to one shard over [Start, Start+Dur) simulated
// cycles.
type Episode struct {
	Kind  Kind
	Shard int
	Start uint64
	Dur   uint64
	// Factor is the slowdown multiplier (Slow) or arrival-rate multiplier
	// (Spike); Freeze and Crash ignore it.
	Factor float64
}

// End is the first cycle after the episode.
func (e Episode) End() uint64 { return e.Start + e.Dur }

// String renders the episode in the -faults flag grammar.
func (e Episode) String() string {
	s := fmt.Sprintf("%s:%d@%d+%d", e.Kind, e.Shard, e.Start, e.Dur)
	if e.Kind == Slow || e.Kind == Spike {
		s += fmt.Sprintf("x%g", e.Factor)
	}
	return s
}

// Schedule is a set of episodes, sorted by start cycle. A shard's episodes
// never overlap (Validate enforces it), so the per-shard injector carries at
// most one active episode.
type Schedule struct {
	Episodes []Episode
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Episodes) == 0 }

// String renders the schedule in the -faults flag grammar.
func (s *Schedule) String() string {
	if s.Empty() {
		return "none"
	}
	parts := make([]string, len(s.Episodes))
	for i, e := range s.Episodes {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// sortEpisodes orders by (Start, Shard, Kind) — a total, deterministic order.
func sortEpisodes(eps []Episode) {
	sort.Slice(eps, func(i, j int) bool {
		a, b := eps[i], eps[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Kind < b.Kind
	})
}

// Validate checks every episode against the shard count: shards in range,
// positive durations, sane factors, and no overlapping episodes on one shard.
func (s *Schedule) Validate(shards int) error {
	if s == nil {
		return nil
	}
	lastEnd := make(map[int]uint64, shards)
	sortEpisodes(s.Episodes)
	for _, e := range s.Episodes {
		if e.Shard < 0 || e.Shard >= shards {
			return fmt.Errorf("fault: episode %s names shard %d of %d", e, e.Shard, shards)
		}
		if e.Dur == 0 {
			return fmt.Errorf("fault: episode %s has zero duration", e)
		}
		if (e.Kind == Slow || e.Kind == Spike) && e.Factor < 1 {
			return fmt.Errorf("fault: episode %s needs a factor >= 1", e)
		}
		if end, ok := lastEnd[e.Shard]; ok && e.Start < end {
			return fmt.Errorf("fault: episode %s overlaps an earlier episode on shard %d", e, e.Shard)
		}
		lastEnd[e.Shard] = e.End()
	}
	return nil
}

// ForShard returns the shard's episodes in start order.
func (s *Schedule) ForShard(w int) []Episode {
	if s == nil {
		return nil
	}
	var eps []Episode
	for _, e := range s.Episodes {
		if e.Shard == w {
			eps = append(eps, e)
		}
	}
	return eps
}

// Spec is a parsed -faults flag: either a fixed schedule, or a request for a
// seeded random one that Resolve materializes once the shard count and run
// horizon are known.
type Spec struct {
	Sched    *Schedule
	IsRand   bool
	RandSeed uint64
	RandN    int
}

// ParseSpec parses the -faults flag grammar: a comma-separated episode list
//
//	kind:shard@start+dur[xfactor]   e.g. slow:0@60000+120000x4
//
// or a seeded random request rand:<seed>[:<episodes>]. Cycle counts accept a
// k/M suffix (×1e3/×1e6).
func ParseSpec(spec string) (Spec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Spec{}, fmt.Errorf("fault: empty schedule")
	}
	if rest, ok := strings.CutPrefix(spec, "rand:"); ok {
		seedStr, nStr, hasN := strings.Cut(rest, ":")
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad rand seed %q", seedStr)
		}
		n := 4
		if hasN {
			if n, err = strconv.Atoi(nStr); err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("fault: bad rand episode count %q", nStr)
			}
		}
		return Spec{IsRand: true, RandSeed: seed, RandN: n}, nil
	}
	sched := &Schedule{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return Spec{}, fmt.Errorf("fault: empty episode in %q", spec)
		}
		ep, err := parseEpisode(tok)
		if err != nil {
			return Spec{}, err
		}
		sched.Episodes = append(sched.Episodes, ep)
	}
	sortEpisodes(sched.Episodes)
	return Spec{Sched: sched}, nil
}

// parseEpisode parses one kind:shard@start+dur[xfactor] token.
func parseEpisode(tok string) (Episode, error) {
	kindStr, rest, ok := strings.Cut(tok, ":")
	if !ok {
		return Episode{}, fmt.Errorf("fault: episode %q lacks a kind: prefix", tok)
	}
	kind, err := parseKind(kindStr)
	if err != nil {
		return Episode{}, err
	}
	shardStr, rest, ok := strings.Cut(rest, "@")
	if !ok {
		return Episode{}, fmt.Errorf("fault: episode %q lacks @start", tok)
	}
	shard, err := strconv.Atoi(shardStr)
	if err != nil || shard < 0 {
		return Episode{}, fmt.Errorf("fault: bad shard %q in %q", shardStr, tok)
	}
	startStr, rest, ok := strings.Cut(rest, "+")
	if !ok {
		return Episode{}, fmt.Errorf("fault: episode %q lacks +dur", tok)
	}
	start, err := parseCycles(startStr)
	if err != nil {
		return Episode{}, fmt.Errorf("fault: bad start %q in %q", startStr, tok)
	}
	durStr, factorStr, hasFactor := strings.Cut(rest, "x")
	dur, err := parseCycles(durStr)
	if err != nil || dur == 0 {
		return Episode{}, fmt.Errorf("fault: bad duration %q in %q", durStr, tok)
	}
	ep := Episode{Kind: kind, Shard: shard, Start: start, Dur: dur, Factor: 1}
	if hasFactor {
		if kind == Freeze || kind == Crash {
			return Episode{}, fmt.Errorf("fault: %s episodes take no factor (%q)", kind, tok)
		}
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || f < 1 {
			return Episode{}, fmt.Errorf("fault: bad factor %q in %q", factorStr, tok)
		}
		ep.Factor = f
	} else if kind == Slow || kind == Spike {
		return Episode{}, fmt.Errorf("fault: %s episodes need an xfactor (%q)", kind, tok)
	}
	return ep, nil
}

// parseCycles parses a cycle count with an optional k or M suffix.
func parseCycles(s string) (uint64, error) {
	mult := uint64(1)
	if n, ok := strings.CutSuffix(s, "k"); ok {
		s, mult = n, 1000
	} else if n, ok := strings.CutSuffix(s, "M"); ok {
		s, mult = n, 1000000
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// Resolve materializes the spec against a shard count and run horizon:
// random specs draw their episodes, fixed schedules are validated as-is.
func (sp Spec) Resolve(shards int, horizon uint64) (*Schedule, error) {
	sched := sp.Sched
	if sp.IsRand {
		sched = Random(sp.RandSeed, sp.RandN, shards, horizon)
	}
	if err := sched.Validate(shards); err != nil {
		return nil, err
	}
	return sched, nil
}

// Random draws up to n episodes from a seeded generator: kinds, shards,
// starts in the middle [1/8, 5/8) of the horizon, durations in [1/64, 3/16)
// of it, factors in 2..5. Episodes that would overlap an earlier one on the
// same shard are discarded rather than re-drawn, so the stream of random
// numbers consumed — and therefore the schedule — depends only on the seed.
func Random(seed uint64, n, shards int, horizon uint64) *Schedule {
	r := xrand.New(seed)
	sched := &Schedule{}
	for i := 0; i < n; i++ {
		ep := Episode{
			Kind:   Kind(r.Uint64n(4)),
			Shard:  int(r.Uint64n(uint64(shards))),
			Start:  horizon/8 + r.Uint64n(horizon/2),
			Dur:    horizon/64 + r.Uint64n(horizon/8),
			Factor: float64(2 + r.Uint64n(4)),
		}
		overlaps := false
		for _, prev := range sched.Episodes {
			if prev.Shard == ep.Shard && ep.Start < prev.End() && prev.Start < ep.End() {
				overlaps = true
				break
			}
		}
		if overlaps {
			continue
		}
		sched.Episodes = append(sched.Episodes, ep)
	}
	sortEpisodes(sched.Episodes)
	return sched
}

// Timeline walks one shard's episodes against the simulated clock: Advance
// reports, in order, every episode boundary (begin, then end) crossed since
// the previous call. Because a shard's episodes never overlap, at most one is
// active at a time.
type Timeline struct {
	eps    []Episode
	idx    int
	active int // index into eps, -1 when none
}

// NewTimeline builds a timeline over episodes already filtered to one shard
// and sorted by start (Schedule.ForShard's output).
func NewTimeline(eps []Episode) *Timeline {
	return &Timeline{eps: eps, active: -1}
}

// Advance applies every boundary at or before now: apply(ep, true) when an
// episode begins, apply(ep, false) when it ends. An episode wholly inside the
// step reports both in order.
func (t *Timeline) Advance(now uint64, apply func(ep Episode, begin bool)) {
	for {
		if t.active >= 0 {
			ep := t.eps[t.active]
			if ep.End() > now {
				return
			}
			t.active = -1
			apply(ep, false)
			continue
		}
		if t.idx < len(t.eps) && t.eps[t.idx].Start <= now {
			t.active = t.idx
			t.idx++
			apply(t.eps[t.active], true)
			continue
		}
		return
	}
}

// Active returns the currently active episode, if any.
func (t *Timeline) Active() (Episode, bool) {
	if t.active < 0 {
		return Episode{}, false
	}
	return t.eps[t.active], true
}

// ApplySpikes rewrites one shard's arrival schedule for its Spike episodes:
// arrivals inside [Start, End) are compressed toward Start by the factor, so
// the window's requests land at Factor times the rate followed by a lull —
// the same total load, delivered as a burst. Other kinds leave the schedule
// untouched (their effects are runtime state). The input is not modified; the
// result is freshly allocated only when a spike applies.
func ApplySpikes(arrivals []uint64, eps []Episode) []uint64 {
	var out []uint64
	for _, ep := range eps {
		if ep.Kind != Spike || ep.Factor <= 1 {
			continue
		}
		if out == nil {
			out = append([]uint64(nil), arrivals...)
		}
		for i, a := range out {
			if a >= ep.Start && a < ep.End() {
				out[i] = ep.Start + uint64(float64(a-ep.Start)/ep.Factor)
			}
		}
	}
	if out == nil {
		return arrivals
	}
	return out
}

// RetryPolicy is capped exponential backoff for timed-out requests.
type RetryPolicy struct {
	// Max is the number of retry attempts after the first try; zero disables
	// retries.
	Max int
	// Backoff is the delay before the first retry, in cycles; each further
	// attempt doubles it.
	Backoff uint64
	// Cap bounds the delay; zero means 8x Backoff.
	Cap uint64
}

// Enabled reports whether the policy retries at all.
func (r RetryPolicy) Enabled() bool { return r.Max > 0 }

// Delay returns the backoff before retry attempt (1-based), capped.
func (r RetryPolicy) Delay(attempt int) uint64 {
	if attempt < 1 {
		attempt = 1
	}
	cap := r.Cap
	if cap == 0 {
		cap = 8 * r.Backoff
	}
	d := r.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// HedgePolicy duplicates slow requests onto a sibling shard.
type HedgePolicy struct {
	// Delay is how long after arrival a still-unserved request is hedged, in
	// cycles; zero disables hedging. The serving tier derives it from the
	// clean-run p99, per the classic tail-at-scale prescription.
	Delay uint64
}

// Enabled reports whether hedging is on.
func (h HedgePolicy) Enabled() bool { return h.Delay > 0 }

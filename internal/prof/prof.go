// Package prof implements an exact cycle-attribution profiler on the
// simulated clock. The simulator charges every core cycle it advances to one
// attribution category (compute, a memory-hierarchy level, TLB, MSHR
// pressure, or idle) under the attribution context its requester pushed
// (engine technique, stage number, probe/exploit epoch, pipeline stage), so
// per-category sums reconcile exactly with memsim.Stats total cycles — the
// conservation invariant the tests enforce. Contexts form stacks that export
// as folded flamegraph text and gzipped pprof protos keyed on simulated
// cycles.
//
// Like internal/obs, a nil profiler is the disabled state: every method on a
// nil *Profile or *CoreProf is a single-branch, zero-allocation no-op, so
// the simulator and every engine thread the profiler unconditionally and a
// profiled run is byte-identical to an unprofiled one.
package prof

import (
	"fmt"
	"sync"
)

// Cat is a cycle-attribution category. Every simulated core cycle is charged
// to exactly one category.
type Cat uint8

const (
	// CatCompute is instruction execution (Core.Instr).
	CatCompute Cat = iota
	// CatL1 is exposed load-to-use stall on an L1-D hit.
	CatL1
	// CatL2 is exposed stall on a fill from the private L2.
	CatL2
	// CatLLC is exposed stall on a fill from the shared last-level cache.
	CatLLC
	// CatDRAM is exposed stall on an off-chip fill (fabric queue included).
	CatDRAM
	// CatTLB is the page-walk penalty of TLB misses.
	CatTLB
	// CatMSHRFull is stall waiting for a free miss-status register.
	CatMSHRFull
	// CatIdle is cycles with no work to run: serving-queue waits, GP/SPP
	// batch-boundary bubbles, pipeline backpressure.
	CatIdle

	numCats
)

// NumCats is the number of attribution categories.
const NumCats = int(numCats)

var catNames = [NumCats]string{"compute", "L1", "L2", "LLC", "DRAM", "TLB", "MSHR-full", "idle"}

// String returns the category's export label.
func (c Cat) String() string {
	if int(c) < NumCats {
		return catNames[c]
	}
	return fmt.Sprintf("Cat(%d)", int(c))
}

// Cats lists every category in charge order, for iteration in exports.
var Cats = [NumCats]Cat{CatCompute, CatL1, CatL2, CatLLC, CatDRAM, CatTLB, CatMSHRFull, CatIdle}

// Frame is an interned context label. Frames are per-CoreProf; exchange them
// only with the CoreProf that handed them out.
type Frame int32

// node is one context-tree node: a frame under a parent context. The root
// node (index 0) has no frame; charges made with an empty stack land there.
type node struct {
	parent int32
	frame  Frame
}

type childKey struct {
	parent int32
	frame  Frame
}

// CoreProf accumulates one simulated core's cycle attribution. It is
// single-goroutine like the core it observes (the simulator's
// one-goroutine-per-core model); all methods are nil-safe no-ops costing a
// single predictable branch on the disabled path, and the hot-path methods
// (Charge, Hide, Expose, OffchipFill) never allocate.
type CoreProf struct {
	name string

	frames   []string
	frameIDs map[string]Frame

	nodes    []node            // nodes[0] is the root; parents precede children
	counts   [][NumCats]uint64 // counts[i] are cycles charged at node i
	children map[childKey]int32

	stack []int32 // current context path, stack[0] == root
	cur   int32   // == stack[len(stack)-1]

	stageFrames []Frame // memoized "stage k" frames, indexed by k

	// Overlap accounting, independent of the context tree: hide[c] is fill
	// latency of category c scheduled off the critical path (prefetch
	// allocations plus the OoO-hidden tail of blocking misses), expose[c] the
	// part a later demand access waited out anyway.
	hide    [NumCats]uint64
	expose  [NumCats]uint64
	offchip uint64 // total off-chip fill occupancy (cycles of DRAM service)
}

// NewCoreProf creates an empty per-core profiler. Most callers obtain one
// through Profile.Core instead.
func NewCoreProf(name string) *CoreProf {
	p := &CoreProf{
		name:     name,
		frameIDs: make(map[string]Frame),
		children: make(map[childKey]int32),
	}
	p.nodes = append(p.nodes, node{parent: -1, frame: -1})
	p.counts = append(p.counts, [NumCats]uint64{})
	p.stack = append(p.stack, 0)
	return p
}

// Name returns the profiler's registered core name.
func (p *CoreProf) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Frame interns a context label for Push. Interning outside the hot loop
// keeps Push allocation- and hash-free on repeat visits.
func (p *CoreProf) Frame(label string) Frame {
	if p == nil {
		return 0
	}
	return p.intern(label)
}

func (p *CoreProf) intern(label string) Frame {
	if f, ok := p.frameIDs[label]; ok {
		return f
	}
	f := Frame(len(p.frames))
	p.frames = append(p.frames, label)
	p.frameIDs[label] = f
	return f
}

// Push enters a context: subsequent charges accumulate under this frame
// until the matching Pop.
func (p *CoreProf) Push(f Frame) {
	if p == nil {
		return
	}
	p.push(f)
}

func (p *CoreProf) push(f Frame) {
	key := childKey{parent: p.cur, frame: f}
	id, ok := p.children[key]
	if !ok {
		id = int32(len(p.nodes))
		p.nodes = append(p.nodes, node{parent: p.cur, frame: f})
		p.counts = append(p.counts, [NumCats]uint64{})
		p.children[key] = id
	}
	p.cur = id
	p.stack = append(p.stack, id)
}

// PushStage enters the memoized "stage k" context, the per-stage attribution
// every engine uses around Init (stage 0) and Stage calls.
func (p *CoreProf) PushStage(stage int) {
	if p == nil {
		return
	}
	for len(p.stageFrames) <= stage {
		p.stageFrames = append(p.stageFrames, p.intern(fmt.Sprintf("stage %d", len(p.stageFrames))))
	}
	p.push(p.stageFrames[stage])
}

// Pop leaves the current context. An unmatched Pop is an instrumentation bug
// and panics rather than silently corrupting attribution.
func (p *CoreProf) Pop() {
	if p == nil {
		return
	}
	if len(p.stack) <= 1 {
		panic("prof: Pop without matching Push")
	}
	p.stack = p.stack[:len(p.stack)-1]
	p.cur = p.stack[len(p.stack)-1]
}

// Depth is the current context depth (0 at the root).
func (p *CoreProf) Depth() int {
	if p == nil {
		return 0
	}
	return len(p.stack) - 1
}

// Charge attributes n simulated cycles of category cat to the current
// context. The simulator calls it at every clock advance; the sum of all
// charges equals the core's total cycles exactly.
func (p *CoreProf) Charge(cat Cat, n uint64) {
	if p == nil {
		return
	}
	p.counts[p.cur][cat] += n
}

// Hide records n cycles of category-cat fill latency scheduled off the
// critical path: a prefetch's full fill latency at allocation, or the
// OoO-hidden tail of a blocking miss.
func (p *CoreProf) Hide(cat Cat, n uint64) {
	if p == nil {
		return
	}
	p.hide[cat] += n
}

// Expose records n cycles of previously hidden latency that a demand access
// waited out anyway (an MSHR-hit wait on an in-flight prefetch).
func (p *CoreProf) Expose(cat Cat, n uint64) {
	if p == nil {
		return
	}
	p.expose[cat] += n
}

// OffchipFill tallies n cycles of off-chip fill occupancy — the DRAM service
// time of one miss, whether demand or prefetch. Dividing the total by the
// exposed memory-wait cycles yields the achieved MLP.
func (p *CoreProf) OffchipFill(n uint64) {
	if p == nil {
		return
	}
	p.offchip += n
}

// ResetCounts zeroes every accumulated counter while keeping the context
// tree, interned frames and the live stack, so instrumented engines stay
// balanced across a mid-run reset (it mirrors Core.ResetStats).
func (p *CoreProf) ResetCounts() {
	if p == nil {
		return
	}
	for i := range p.counts {
		p.counts[i] = [NumCats]uint64{}
	}
	p.hide = [NumCats]uint64{}
	p.expose = [NumCats]uint64{}
	p.offchip = 0
}

// TotalCycles is the sum of every charge across all contexts and categories;
// with the profiler attached for a whole run it equals the core's cycle
// count exactly.
func (p *CoreProf) TotalCycles() uint64 {
	if p == nil {
		return 0
	}
	var sum uint64
	for i := range p.counts {
		for c := 0; c < NumCats; c++ {
			sum += p.counts[i][c]
		}
	}
	return sum
}

// CatCycles is the total charged to one category across all contexts.
func (p *CoreProf) CatCycles(cat Cat) uint64 {
	if p == nil {
		return 0
	}
	var sum uint64
	for i := range p.counts {
		sum += p.counts[i][cat]
	}
	return sum
}

// SumUnder is the total of category cat charged at or below any context
// whose path contains a frame with the given label (e.g. GP's "admit"
// batch-gather frame). Unknown labels return zero.
func (p *CoreProf) SumUnder(label string, cat Cat) uint64 {
	if p == nil {
		return 0
	}
	f, ok := p.frameIDs[label]
	if !ok {
		return 0
	}
	var sum uint64
	for i := range p.nodes {
		for n := int32(i); n > 0; n = p.nodes[n].parent {
			if p.nodes[n].frame == f {
				sum += p.counts[i][cat]
				break
			}
		}
	}
	return sum
}

// Merge folds another profiler's counters into p, matching contexts by
// frame-label path. Serving uses it to aggregate per-worker profiles.
func (p *CoreProf) Merge(o *CoreProf) {
	if p == nil || o == nil {
		return
	}
	idMap := make([]int32, len(o.nodes))
	for i := 1; i < len(o.nodes); i++ { // parents precede children
		on := o.nodes[i]
		f := p.intern(o.frames[on.frame])
		key := childKey{parent: idMap[on.parent], frame: f}
		id, ok := p.children[key]
		if !ok {
			id = int32(len(p.nodes))
			p.nodes = append(p.nodes, node{parent: key.parent, frame: f})
			p.counts = append(p.counts, [NumCats]uint64{})
			p.children[key] = id
		}
		idMap[i] = id
	}
	for i := range o.nodes {
		for c := 0; c < NumCats; c++ {
			p.counts[idMap[i]][c] += o.counts[i][c]
		}
	}
	for c := 0; c < NumCats; c++ {
		p.hide[c] += o.hide[c]
		p.expose[c] += o.expose[c]
	}
	p.offchip += o.offchip
}

// Profile is the root registry of per-core profilers, mirroring obs.Trace:
// nil is the disabled state, Core registers (or re-uses) a named per-core
// profiler, and registration takes a mutex while recording itself is
// core-local and lock-free.
type Profile struct {
	mu    sync.Mutex
	cores []*CoreProf
}

// NewProfile creates an empty profile registry.
func NewProfile() *Profile {
	return &Profile{}
}

// Core registers (or re-uses) the named per-core profiler; a nil receiver
// returns nil, whose methods all no-op — callers thread the result
// unconditionally.
func (pr *Profile) Core(name string) *CoreProf {
	if pr == nil {
		return nil
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	for _, c := range pr.cores {
		if c.name == name {
			return c
		}
	}
	c := NewCoreProf(name)
	pr.cores = append(pr.cores, c)
	return c
}

// Cores snapshots the registered per-core profilers in registration order.
func (pr *Profile) Cores() []*CoreProf {
	if pr == nil {
		return nil
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return append([]*CoreProf(nil), pr.cores...)
}

// Merged returns a fresh profiler holding the sum of every registered core,
// matching contexts by label path — the sharded-serving aggregate view.
func (pr *Profile) Merged(name string) *CoreProf {
	m := NewCoreProf(name)
	if pr == nil {
		return m
	}
	for _, c := range pr.Cores() {
		m.Merge(c)
	}
	return m
}

// TotalCycles sums every registered core's attributed cycles.
func (pr *Profile) TotalCycles() uint64 {
	var sum uint64
	for _, c := range pr.Cores() {
		sum += c.TotalCycles()
	}
	return sum
}

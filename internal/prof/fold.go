package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// pathLabels returns the frame labels of node id, root-first, prefixed with
// the core name.
func (p *CoreProf) pathLabels(id int32) []string {
	var rev []string
	for n := id; n > 0; n = p.nodes[n].parent {
		rev = append(rev, p.frames[p.nodes[n].frame])
	}
	path := make([]string, 0, len(rev)+1)
	path = append(path, p.name)
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// foldedLines renders every nonzero (context, category) cell as one folded
// stack line "core;frame;...;category count", sorted lexicographically so
// the export is independent of context discovery order.
func (p *CoreProf) foldedLines() []string {
	if p == nil {
		return nil
	}
	var lines []string
	for i := range p.nodes {
		for c := 0; c < NumCats; c++ {
			v := p.counts[i][c]
			if v == 0 {
				continue
			}
			parts := append(p.pathLabels(int32(i)), Cat(c).String())
			lines = append(lines, fmt.Sprintf("%s %d", strings.Join(parts, ";"), v))
		}
	}
	sort.Strings(lines)
	return lines
}

// WriteFolded exports the profile as folded-stack flamegraph text — one
// "core;frame;...;category count" line per nonzero cell, the input format of
// flamegraph.pl, speedscope and pprof's -flame views. Cores export in
// registration order, lines within a core sorted, so the output is
// deterministic.
func (pr *Profile) WriteFolded(w io.Writer) error {
	if pr == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, c := range pr.Cores() {
		for _, line := range c.foldedLines() {
			if _, err := bw.WriteString(line); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Breakdown is a core's top-down cycle accounting: total cycles per
// category, the net hidden fill latency per category, and the off-chip fill
// occupancy that feeds the achieved-MLP figure.
type Breakdown struct {
	Name string
	// Cats[c] is the exposed cycles charged to category c; summing over c
	// reproduces the core's total cycles.
	Cats [NumCats]uint64
	// Hidden[c] is fill latency of category c kept off the critical path:
	// hide minus the portion later exposed by demand waits.
	Hidden [NumCats]uint64
	// OffchipFill is the total DRAM service occupancy in cycles.
	OffchipFill uint64
}

// Breakdown summarises the profiler's counters.
func (p *CoreProf) Breakdown() Breakdown {
	var b Breakdown
	if p == nil {
		return b
	}
	b.Name = p.name
	for i := range p.counts {
		for c := 0; c < NumCats; c++ {
			b.Cats[c] += p.counts[i][c]
		}
	}
	for c := 0; c < NumCats; c++ {
		if p.hide[c] > p.expose[c] {
			b.Hidden[c] = p.hide[c] - p.expose[c]
		}
	}
	b.OffchipFill = p.offchip
	return b
}

// Total is the sum over all categories — the core's attributed cycles.
func (b Breakdown) Total() uint64 {
	var sum uint64
	for _, v := range b.Cats {
		sum += v
	}
	return sum
}

// HiddenFraction is the share of category-cat fill latency kept off the
// critical path: hidden / (hidden + exposed). Zero when the category saw no
// latency at all.
func (b Breakdown) HiddenFraction(cat Cat) float64 {
	den := b.Hidden[cat] + b.Cats[cat]
	if den == 0 {
		return 0
	}
	return float64(b.Hidden[cat]) / float64(den)
}

// AchievedMLP is the memory-level parallelism the engine realised: total
// off-chip fill occupancy divided by the cycles the core actually spent
// waiting on memory (exposed DRAM stall plus MSHR-full stall). A blocking
// baseline scores ~1 — every fill is waited out in full — while an engine
// overlapping W misses approaches W. Zero when nothing went off-chip.
func (b Breakdown) AchievedMLP() float64 {
	den := b.Cats[CatDRAM] + b.Cats[CatMSHRFull]
	if den == 0 {
		return 0
	}
	return float64(b.OffchipFill) / float64(den)
}

package prof

import (
	"compress/gzip"
	"encoding/binary"
	"io"
)

// This file hand-rolls the pprof profile.proto encoding (gzipped protobuf)
// so the profiler stays dependency-free. Only the subset pprof actually
// needs is emitted: a string table, one function+location per distinct
// frame label, and one sample per nonzero (context, category) cell with the
// category as the leaf frame and the core name as the root frame. The time
// axis is the simulated clock — one cycle maps to one "nanosecond", and no
// wall-clock timestamp is written, so the export is byte-deterministic.

// pbuf is a minimal protobuf wire-format builder.
type pbuf struct{ b []byte }

func (p *pbuf) uvarint(v uint64) {
	p.b = binary.AppendUvarint(p.b, v)
}

func (p *pbuf) keyOf(field, wire int) {
	p.uvarint(uint64(field)<<3 | uint64(wire))
}

// varintField emits a varint-typed field, omitting the proto3 zero default.
func (p *pbuf) varintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.keyOf(field, 0)
	p.uvarint(v)
}

func (p *pbuf) bytesField(field int, data []byte) {
	p.keyOf(field, 2)
	p.uvarint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *pbuf) stringField(field int, s string) {
	p.keyOf(field, 2)
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedField emits a packed repeated varint field.
func (p *pbuf) packedField(field int, vals []uint64) {
	var inner pbuf
	for _, v := range vals {
		inner.uvarint(v)
	}
	p.bytesField(field, inner.b)
}

// WritePprof exports the profile as a gzipped pprof profile.proto, loadable
// with `go tool pprof` (text, web and flamegraph views). Stacks read
// root-to-leaf as core name, context frames, category; values are simulated
// cycles. The output is byte-deterministic: no timestamp is recorded and
// tables build in registration/first-use order.
func (pr *Profile) WritePprof(w io.Writer) error {
	if pr == nil {
		return nil
	}
	var out pbuf

	strs := []string{""}
	strIdx := map[string]int{"": 0}
	str := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return uint64(i)
		}
		strIdx[s] = len(strs)
		strs = append(strs, s)
		return uint64(len(strs) - 1)
	}

	funcIDs := map[string]uint64{}
	var funcOrder []string
	loc := func(label string) uint64 {
		if id, ok := funcIDs[label]; ok {
			return id
		}
		id := uint64(len(funcOrder) + 1)
		funcIDs[label] = id
		funcOrder = append(funcOrder, label)
		return id
	}

	// Profile.sample_type: one ValueType {type: "cycles", unit: "cycles"}.
	var vt pbuf
	vt.varintField(1, str("cycles"))
	vt.varintField(2, str("cycles"))
	out.bytesField(1, vt.b)

	// Profile.sample: location_ids leaf-first (category, frames deepest
	// first, core name last), value the charged cycle count.
	var total uint64
	for _, c := range pr.Cores() {
		for i := range c.nodes {
			for cat := 0; cat < NumCats; cat++ {
				v := c.counts[i][cat]
				if v == 0 {
					continue
				}
				total += v
				locs := []uint64{loc(Cat(cat).String())}
				for n := int32(i); n > 0; n = c.nodes[n].parent {
					locs = append(locs, loc(c.frames[c.nodes[n].frame]))
				}
				locs = append(locs, loc(c.name))
				var s pbuf
				s.packedField(1, locs)
				s.packedField(2, []uint64{v})
				out.bytesField(2, s.b)
			}
		}
	}

	// One synthetic Location and Function per distinct frame label, with
	// matching ids (no mappings or source coordinates — the "binary" here is
	// the simulated machine).
	for i, label := range funcOrder {
		id := uint64(i + 1)
		var line pbuf
		line.varintField(1, id) // Line.function_id
		var l pbuf
		l.varintField(1, id) // Location.id
		l.bytesField(4, line.b)
		out.bytesField(4, l.b)

		var f pbuf
		f.varintField(1, id)         // Function.id
		f.varintField(2, str(label)) // Function.name
		out.bytesField(5, f.b)
	}

	for _, s := range strs {
		out.stringField(6, s)
	}

	// duration_nanos: total attributed cycles, 1 cycle == 1ns on pprof's
	// time axis (simulated time, deliberately not wall clock).
	out.varintField(10, total)

	var pt pbuf
	pt.varintField(1, str("cycles"))
	pt.varintField(2, str("cycles"))
	out.bytesField(11, pt.b)
	out.varintField(12, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

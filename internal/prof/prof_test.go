package prof

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestNilProfilerNoOps: every method of the disabled (nil) profiler must be
// a safe no-op that never allocates — the simulator hot path calls them
// unconditionally.
func TestNilProfilerNoOps(t *testing.T) {
	var p *CoreProf
	var pr *Profile

	allocs := testing.AllocsPerRun(100, func() {
		p.Push(p.Frame("x"))
		p.PushStage(3)
		p.Charge(CatDRAM, 17)
		p.Hide(CatDRAM, 5)
		p.Expose(CatDRAM, 2)
		p.OffchipFill(9)
		p.Pop()
		p.ResetCounts()
		p.Merge(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil CoreProf methods allocate: %v allocs/op", allocs)
	}
	if p.TotalCycles() != 0 || p.CatCycles(CatIdle) != 0 || p.Depth() != 0 || p.Name() != "" {
		t.Fatal("nil CoreProf accessors must return zero values")
	}
	if pr.Core("w") != nil || pr.Cores() != nil || pr.TotalCycles() != 0 {
		t.Fatal("nil Profile accessors must return zero values")
	}
	if err := pr.WriteFolded(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := pr.WritePprof(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestChargeTreeAndConservation: charges land under the current context path
// and the per-category totals sum exactly to every cycle charged.
func TestChargeTreeAndConservation(t *testing.T) {
	p := NewCoreProf("core")
	amac := p.Frame("AMAC")
	p.Charge(CatIdle, 3) // root-level charge
	p.Push(amac)
	p.Charge(CatCompute, 10)
	p.PushStage(0)
	p.Charge(CatDRAM, 100)
	p.Pop()
	p.PushStage(2)
	p.Charge(CatDRAM, 50)
	p.Charge(CatL2, 7)
	p.Pop()
	p.Pop()
	if d := p.Depth(); d != 0 {
		t.Fatalf("Depth = %d after balanced push/pop, want 0", d)
	}

	if got, want := p.TotalCycles(), uint64(3+10+100+50+7); got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
	if got := p.CatCycles(CatDRAM); got != 150 {
		t.Fatalf("CatCycles(DRAM) = %d, want 150", got)
	}
	if got := p.SumUnder("AMAC", CatDRAM); got != 150 {
		t.Fatalf("SumUnder(AMAC, DRAM) = %d, want 150", got)
	}
	if got := p.SumUnder("stage 2", CatDRAM); got != 50 {
		t.Fatalf("SumUnder(stage 2, DRAM) = %d, want 50", got)
	}
	if got := p.SumUnder("absent", CatDRAM); got != 0 {
		t.Fatalf("SumUnder(absent) = %d, want 0", got)
	}

	b := p.Breakdown()
	if b.Total() != p.TotalCycles() {
		t.Fatalf("Breakdown.Total = %d, want %d", b.Total(), p.TotalCycles())
	}
}

// TestUnbalancedPopPanics: an unmatched Pop is an instrumentation bug and
// must fail loudly.
func TestUnbalancedPopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on an empty stack did not panic")
		}
	}()
	NewCoreProf("core").Pop()
}

// TestFoldedDeterministicOrder: two profilers visiting the same contexts in
// different orders must render identical folded output.
func TestFoldedDeterministicOrder(t *testing.T) {
	build := func(order []string) string {
		pr := NewProfile()
		p := pr.Core("w0")
		for _, label := range order {
			p.Push(p.Frame(label))
			p.PushStage(1)
			p.Charge(CatDRAM, 10)
			p.Pop()
			p.Charge(CatCompute, 5)
			p.Pop()
		}
		var buf bytes.Buffer
		if err := pr.WriteFolded(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"GP", "AMAC", "Baseline"})
	b := build([]string{"Baseline", "GP", "AMAC"})
	if a != b {
		t.Fatalf("folded output depends on discovery order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "w0;AMAC;stage 1;DRAM 10") {
		t.Fatalf("folded output missing expected line:\n%s", a)
	}
}

// TestMergeByPath: merging matches contexts by label path, sums counters,
// and carries the overlap accounting.
func TestMergeByPath(t *testing.T) {
	mk := func(n uint64) *CoreProf {
		p := NewCoreProf(fmt.Sprintf("w%d", n))
		p.Push(p.Frame("AMAC"))
		p.PushStage(1)
		p.Charge(CatDRAM, n)
		p.Pop()
		p.Pop()
		p.Push(p.Frame("probe"))
		p.Charge(CatCompute, 2*n)
		p.Pop()
		p.Hide(CatDRAM, 100*n)
		p.Expose(CatDRAM, 10*n)
		p.OffchipFill(1000 * n)
		return p
	}
	m := NewCoreProf("all")
	m.Merge(mk(1))
	m.Merge(mk(2))
	if got := m.SumUnder("stage 1", CatDRAM); got != 3 {
		t.Fatalf("merged SumUnder(stage 1, DRAM) = %d, want 3", got)
	}
	if got := m.SumUnder("probe", CatCompute); got != 6 {
		t.Fatalf("merged SumUnder(probe, compute) = %d, want 6", got)
	}
	if got, want := m.TotalCycles(), uint64(3+6); got != want {
		t.Fatalf("merged TotalCycles = %d, want %d", got, want)
	}
	b := m.Breakdown()
	if b.Hidden[CatDRAM] != 270 {
		t.Fatalf("merged Hidden[DRAM] = %d, want 270", b.Hidden[CatDRAM])
	}
	if b.OffchipFill != 3000 {
		t.Fatalf("merged OffchipFill = %d, want 3000", b.OffchipFill)
	}
}

// TestProfileMerged: the registry-level aggregate merges every worker.
func TestProfileMerged(t *testing.T) {
	pr := NewProfile()
	for w := 0; w < 3; w++ {
		c := pr.Core(fmt.Sprintf("worker %d", w))
		c.Push(c.Frame("AMAC"))
		c.Charge(CatDRAM, 10)
		c.Pop()
	}
	if pr.Core("worker 1") != pr.Core("worker 1") {
		t.Fatal("Core must re-use the registered profiler")
	}
	m := pr.Merged("service")
	if got := m.SumUnder("AMAC", CatDRAM); got != 30 {
		t.Fatalf("Merged SumUnder = %d, want 30", got)
	}
	if pr.TotalCycles() != 30 {
		t.Fatalf("Profile.TotalCycles = %d, want 30", pr.TotalCycles())
	}
}

// TestResetCountsKeepsContext: a mid-run reset zeroes counters but keeps the
// live stack so balanced instrumentation can continue.
func TestResetCountsKeepsContext(t *testing.T) {
	p := NewCoreProf("core")
	p.Push(p.Frame("warm"))
	p.Charge(CatDRAM, 99)
	p.Hide(CatDRAM, 5)
	p.OffchipFill(7)
	p.ResetCounts()
	if p.TotalCycles() != 0 {
		t.Fatalf("TotalCycles after reset = %d, want 0", p.TotalCycles())
	}
	b := p.Breakdown()
	if b.Hidden[CatDRAM] != 0 || b.OffchipFill != 0 {
		t.Fatal("overlap counters survived ResetCounts")
	}
	if p.Depth() != 1 {
		t.Fatalf("Depth after reset = %d, want 1 (stack preserved)", p.Depth())
	}
	p.Charge(CatCompute, 4)
	p.Pop() // must not panic: the warm frame is still on the stack
	if p.TotalCycles() != 4 {
		t.Fatalf("TotalCycles = %d, want 4", p.TotalCycles())
	}
}

// TestHiddenFractionAndMLP: the overlap arithmetic behind the profN table.
func TestHiddenFractionAndMLP(t *testing.T) {
	p := NewCoreProf("core")
	p.Hide(CatDRAM, 900)
	p.Expose(CatDRAM, 100)
	p.Charge(CatDRAM, 200)    // exposed DRAM stall
	p.Charge(CatMSHRFull, 50) // exposed MSHR pressure
	p.OffchipFill(1000)
	b := p.Breakdown()
	if got, want := b.Hidden[CatDRAM], uint64(800); got != want {
		t.Fatalf("Hidden[DRAM] = %d, want %d", got, want)
	}
	if got, want := b.HiddenFraction(CatDRAM), 0.8; got != want {
		t.Fatalf("HiddenFraction = %v, want %v", got, want)
	}
	if got, want := b.AchievedMLP(), 4.0; got != want {
		t.Fatalf("AchievedMLP = %v, want %v", got, want)
	}
	var empty Breakdown
	if empty.AchievedMLP() != 0 || empty.HiddenFraction(CatDRAM) != 0 {
		t.Fatal("empty breakdown ratios must be zero")
	}
}

// pprofDoc is the subset of profile.proto the decode test cares about.
type pprofDoc struct {
	strings   []string
	samples   int
	locations map[uint64]uint64 // location id -> function id
	functions map[uint64]uint64 // function id -> name string index
	sampleSum uint64
	duration  uint64
}

// parsePprof walks the wire format with a minimal field scanner.
func parsePprof(t *testing.T, raw []byte) pprofDoc {
	t.Helper()
	doc := pprofDoc{locations: map[uint64]uint64{}, functions: map[uint64]uint64{}}
	fields := scanFields(t, raw)
	for _, f := range fields {
		switch f.num {
		case 2: // Sample
			doc.samples++
			for _, sf := range scanFields(t, f.data) {
				if sf.num == 2 { // packed values
					v, _ := binary.Uvarint(sf.data)
					doc.sampleSum += v
				}
			}
		case 4: // Location
			var id, fn uint64
			for _, lf := range scanFields(t, f.data) {
				switch lf.num {
				case 1:
					id = lf.varint
				case 4: // Line
					for _, nf := range scanFields(t, lf.data) {
						if nf.num == 1 {
							fn = nf.varint
						}
					}
				}
			}
			doc.locations[id] = fn
		case 5: // Function
			var id, name uint64
			for _, ff := range scanFields(t, f.data) {
				switch ff.num {
				case 1:
					id = ff.varint
				case 2:
					name = ff.varint
				}
			}
			doc.functions[id] = name
		case 6:
			doc.strings = append(doc.strings, string(f.data))
		case 10:
			doc.duration = f.varint
		}
	}
	return doc
}

type pbField struct {
	num    int
	varint uint64
	data   []byte
}

func scanFields(t *testing.T, b []byte) []pbField {
	t.Helper()
	var out []pbField
	for len(b) > 0 {
		key, n := binary.Uvarint(b)
		if n <= 0 {
			t.Fatal("bad varint key")
		}
		b = b[n:]
		f := pbField{num: int(key >> 3)}
		switch key & 7 {
		case 0:
			v, n := binary.Uvarint(b)
			if n <= 0 {
				t.Fatal("bad varint value")
			}
			f.varint = v
			b = b[n:]
		case 2:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				t.Fatal("bad length-delimited field")
			}
			f.data = b[n : n+int(l)]
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d", key&7)
		}
		out = append(out, f)
	}
	return out
}

// TestPprofExportDecodes: the gzipped protobuf must decode back into a
// consistent profile — every sample's cycles accounted, every location
// backed by a function, and the attribution labels present in the string
// table — and be byte-deterministic across writes.
func TestPprofExportDecodes(t *testing.T) {
	pr := NewProfile()
	p := pr.Core("worker 0")
	p.Push(p.Frame("AMAC"))
	p.PushStage(1)
	p.Charge(CatDRAM, 123)
	p.Pop()
	p.Charge(CatCompute, 45)
	p.Pop()

	var buf1, buf2 bytes.Buffer
	if err := pr.WritePprof(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := pr.WritePprof(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("pprof export is not byte-deterministic")
	}

	gz, err := gzip.NewReader(&buf1)
	if err != nil {
		t.Fatalf("export is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	doc := parsePprof(t, raw)

	if doc.samples != 2 {
		t.Fatalf("samples = %d, want 2", doc.samples)
	}
	if doc.sampleSum != 168 || doc.duration != 168 {
		t.Fatalf("sample sum / duration = %d/%d, want 168/168", doc.sampleSum, doc.duration)
	}
	if len(doc.strings) == 0 || doc.strings[0] != "" {
		t.Fatal("string table must start with the empty string")
	}
	have := map[string]bool{}
	for _, s := range doc.strings {
		have[s] = true
	}
	for _, want := range []string{"worker 0", "AMAC", "stage 1", "DRAM", "compute", "cycles"} {
		if !have[want] {
			t.Fatalf("string table missing %q: %v", want, doc.strings)
		}
	}
	for id, fn := range doc.locations {
		nameIdx, ok := doc.functions[fn]
		if !ok {
			t.Fatalf("location %d references unknown function %d", id, fn)
		}
		if nameIdx == 0 || int(nameIdx) >= len(doc.strings) {
			t.Fatalf("function %d has invalid name index %d", fn, nameIdx)
		}
	}
}

package bst

import (
	"testing"
	"testing/quick"

	"amac/internal/arena"
	"amac/internal/xrand"
)

// TestRandomInsertSearchMatchesMap checks a random build against a map
// reference, including searches for keys that were never inserted.
func TestRandomInsertSearchMatchesMap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		tr := New(arena.New())
		ref := make(map[uint64]uint64)
		for i := 0; i < 500; i++ {
			key := rng.Uint64n(1000) + 1
			if _, exists := ref[key]; exists {
				continue // duplicate keys go right; searches would be ambiguous
			}
			payload := rng.Uint64()
			tr.Insert(key, payload)
			ref[key] = payload
		}
		for key := uint64(1); key <= 1000; key++ {
			got, ok := tr.SearchRaw(key)
			want, exists := ref[key]
			if ok != exists || (ok && got != want) {
				return false
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBSTOrderingInvariant: for every node, all keys in the left subtree are
// smaller and all keys in the right subtree are greater or equal.
func TestBSTOrderingInvariant(t *testing.T) {
	rng := xrand.New(5)
	tr := New(arena.New())
	for i := 0; i < 4000; i++ {
		tr.Insert(rng.Uint64n(1<<40), uint64(i))
	}
	type bound struct {
		node     arena.Addr
		min, max uint64
	}
	stack := []bound{{tr.Root(), 0, ^uint64(0)}}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.node == 0 {
			continue
		}
		k := tr.Key(b.node)
		if k < b.min || k > b.max {
			t.Fatalf("key %d violates subtree bounds [%d, %d]", k, b.min, b.max)
		}
		if l := tr.Left(b.node); l != 0 {
			if k == 0 {
				t.Fatal("zero key cannot bound a left subtree")
			}
			stack = append(stack, bound{l, b.min, k - 1})
		}
		stack = append(stack, bound{tr.Right(b.node), k, b.max})
	}
}

package bst

import (
	"sort"
	"testing"
	"testing/quick"

	"amac/internal/arena"
	"amac/internal/relation"
)

func TestEmptyTree(t *testing.T) {
	tr := New(arena.New())
	if tr.Root() != 0 || tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree invariants broken")
	}
	if _, ok := tr.SearchRaw(1); ok {
		t.Fatal("search in empty tree should fail")
	}
	if tr.Depth(1) != 0 {
		t.Fatal("depth of absent key should be 0")
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := New(arena.New())
	keys := []uint64{50, 25, 75, 10, 30, 60, 90}
	for i, k := range keys {
		tr.Insert(k, uint64(i)+1000)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, k := range keys {
		p, ok := tr.SearchRaw(k)
		if !ok || p != uint64(i)+1000 {
			t.Fatalf("search(%d) = %d,%v", k, p, ok)
		}
	}
	if _, ok := tr.SearchRaw(55); ok {
		t.Fatal("absent key reported found")
	}
	if tr.Depth(50) != 1 || tr.Depth(10) != 3 {
		t.Fatalf("depths: root=%d leaf=%d", tr.Depth(50), tr.Depth(10))
	}
}

func TestInOrderIsSorted(t *testing.T) {
	f := func(seed uint64) bool {
		build, _, err := relation.BuildIndexWorkload(256, seed)
		if err != nil {
			return false
		}
		tr := New(arena.New())
		for _, tup := range build.Tuples {
			tr.Insert(tup.Key, tup.Payload)
		}
		keys := tr.InOrderKeys()
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) && len(keys) == 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeHeightIsLogarithmic(t *testing.T) {
	build, _, err := relation.BuildIndexWorkload(1<<12, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(arena.New())
	for _, tup := range build.Tuples {
		tr.Insert(tup.Key, tup.Payload)
	}
	// A random BST over n keys has expected height ~2.99 log2(n); 12 levels
	// of keys should comfortably stay under 48.
	if h := tr.Height(); h < 12 || h > 48 {
		t.Fatalf("height %d outside the plausible range for a random BST of 4096 keys", h)
	}
}

func TestSortedInsertYieldsDegenerateTree(t *testing.T) {
	tr := New(arena.New())
	for k := uint64(1); k <= 64; k++ {
		tr.Insert(k, k)
	}
	if tr.Height() != 64 {
		t.Fatalf("sorted insert should produce a linked list, height = %d", tr.Height())
	}
}

func TestChildFollowsComparison(t *testing.T) {
	tr := New(arena.New())
	tr.Insert(10, 1)
	tr.Insert(5, 2)
	tr.Insert(15, 3)
	root := tr.Root()
	if tr.Child(root, 3) != tr.Left(root) {
		t.Fatal("smaller key should go left")
	}
	if tr.Child(root, 12) != tr.Right(root) {
		t.Fatal("larger key should go right")
	}
	if tr.Child(root, 10) != tr.Right(root) {
		t.Fatal("equal key goes right by convention")
	}
	if tr.Key(root) != 10 || tr.Payload(root) != 1 {
		t.Fatal("root accessors wrong")
	}
}

func TestEveryProbeKeyFoundInIndexWorkload(t *testing.T) {
	build, probe, err := relation.BuildIndexWorkload(2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(arena.New())
	ref := make(map[uint64]uint64, build.Len())
	for _, tup := range build.Tuples {
		tr.Insert(tup.Key, tup.Payload)
		ref[tup.Key] = tup.Payload
	}
	for _, tup := range probe.Tuples {
		p, ok := tr.SearchRaw(tup.Key)
		if !ok || p != ref[tup.Key] {
			t.Fatalf("probe key %d: got %d,%v want %d", tup.Key, p, ok, ref[tup.Key])
		}
	}
}

func TestNodesAreCacheLineAligned(t *testing.T) {
	tr := New(arena.New())
	tr.Insert(1, 1)
	tr.Insert(2, 2)
	if tr.Root()%64 != 0 {
		t.Fatalf("node at %d not cache-line aligned", tr.Root())
	}
	if r := tr.Right(tr.Root()); r%64 != 0 {
		t.Fatalf("node at %d not cache-line aligned", r)
	}
}

// Package bst implements the canonical binary search tree index used in the
// paper's tree-search workload (Sections 4 and 5.3).
//
// Every node holds an 8-byte key, an 8-byte payload and two 8-byte child
// pointers, and is aligned to its own 64-byte cache line, exactly as in the
// paper's methodology. Nodes live in an arena so that traversals map onto
// simulated memory accesses; no method here charges simulator time.
package bst

import (
	"encoding/binary"

	"amac/internal/arena"
	"amac/internal/memsim"
)

// Node field offsets.
const (
	offKey     = 0
	offPayload = 8
	offLeft    = 16
	offRight   = 24

	// NodeBytes is the allocated size of a node; the paper cache-aligns
	// nodes, so each one occupies its own line.
	NodeBytes = 32
)

// Tree is a binary search tree over arena-resident nodes.
type Tree struct {
	a     *arena.Arena
	root  arena.Addr
	count int
}

// New returns an empty tree whose nodes will be allocated from a.
func New(a *arena.Arena) *Tree { return &Tree{a: a} }

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.count }

// Root returns the address of the root node (0 if the tree is empty).
func (t *Tree) Root() arena.Addr { return t.root }

// NodeRef is a zero-copy view of one node's bytes, aliasing the arena; the
// search stage decodes key and both children from it with a single bounds
// check per node visit.
type NodeRef []byte

// Node returns the view of the node at n.
func (t *Tree) Node(n arena.Addr) NodeRef { return NodeRef(t.a.Bytes(n, NodeBytes)) }

// Key returns the node's key through the view.
func (n NodeRef) Key() uint64 { return binary.LittleEndian.Uint64(n[offKey:]) }

// Payload returns the node's payload through the view.
func (n NodeRef) Payload() uint64 { return binary.LittleEndian.Uint64(n[offPayload:]) }

// Left returns the left child through the view (0 if none).
func (n NodeRef) Left() arena.Addr {
	return arena.Addr(binary.LittleEndian.Uint64(n[offLeft:]))
}

// Right returns the right child through the view (0 if none).
func (n NodeRef) Right() arena.Addr {
	return arena.Addr(binary.LittleEndian.Uint64(n[offRight:]))
}

// Key returns the key stored at node n.
func (t *Tree) Key(n arena.Addr) uint64 { return t.a.ReadU64(n + offKey) }

// Payload returns the payload stored at node n.
func (t *Tree) Payload(n arena.Addr) uint64 { return t.a.ReadU64(n + offPayload) }

// Left returns the left child of node n (0 if none).
func (t *Tree) Left(n arena.Addr) arena.Addr { return t.a.ReadAddr(n + offLeft) }

// Right returns the right child of node n (0 if none).
func (t *Tree) Right(n arena.Addr) arena.Addr { return t.a.ReadAddr(n + offRight) }

// Child returns the child to follow when searching for key at node n: the
// left child if key is smaller than the node's key, otherwise the right
// child. It mirrors the comparison a search stage performs.
func (t *Tree) Child(n arena.Addr, key uint64) arena.Addr {
	if key < t.Key(n) {
		return t.Left(n)
	}
	return t.Right(n)
}

func (t *Tree) allocNode(key, payload uint64) arena.Addr {
	n := t.a.Alloc(NodeBytes, memsim.LineSize)
	t.a.WriteU64(n+offKey, key)
	t.a.WriteU64(n+offPayload, payload)
	return n
}

// Insert adds a key/payload pair. Duplicate keys go to the right subtree,
// matching the canonical unbalanced implementation the paper evaluates.
// Insert does not charge simulator time; in the experiments the tree is an
// index that exists before the measured search phase.
func (t *Tree) Insert(key, payload uint64) {
	node := t.allocNode(key, payload)
	t.count++
	if t.root == 0 {
		t.root = node
		return
	}
	cur := t.root
	for {
		if key < t.Key(cur) {
			next := t.Left(cur)
			if next == 0 {
				t.a.WriteAddr(cur+offLeft, node)
				return
			}
			cur = next
		} else {
			next := t.Right(cur)
			if next == 0 {
				t.a.WriteAddr(cur+offRight, node)
				return
			}
			cur = next
		}
	}
}

// SearchRaw returns the payload for key and whether it was found, without
// charging simulator time. It is the reference for validating engine-driven
// searches.
func (t *Tree) SearchRaw(key uint64) (uint64, bool) {
	cur := t.root
	for cur != 0 {
		k := t.Key(cur)
		if k == key {
			return t.Payload(cur), true
		}
		if key < k {
			cur = t.Left(cur)
		} else {
			cur = t.Right(cur)
		}
	}
	return 0, false
}

// Depth returns the number of nodes on the path from the root to key
// (inclusive), or 0 if the key is absent. Used by tests and to reason about
// the expected number of memory accesses per lookup.
func (t *Tree) Depth(key uint64) int {
	cur := t.root
	d := 0
	for cur != 0 {
		d++
		k := t.Key(cur)
		if k == key {
			return d
		}
		if key < k {
			cur = t.Left(cur)
		} else {
			cur = t.Right(cur)
		}
	}
	return 0
}

// Height returns the height of the tree (longest root-to-leaf path, in
// nodes). It walks iteratively to avoid deep recursion on skewed trees.
func (t *Tree) Height() int {
	if t.root == 0 {
		return 0
	}
	type item struct {
		n arena.Addr
		d int
	}
	stack := []item{{t.root, 1}}
	max := 0
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.d > max {
			max = it.d
		}
		if l := t.Left(it.n); l != 0 {
			stack = append(stack, item{l, it.d + 1})
		}
		if r := t.Right(it.n); r != 0 {
			stack = append(stack, item{r, it.d + 1})
		}
	}
	return max
}

// InOrderKeys returns all keys in sorted order (iteratively, for tests).
func (t *Tree) InOrderKeys() []uint64 {
	var out []uint64
	var stack []arena.Addr
	cur := t.root
	for cur != 0 || len(stack) > 0 {
		for cur != 0 {
			stack = append(stack, cur)
			cur = t.Left(cur)
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, t.Key(cur))
		cur = t.Right(cur)
	}
	return out
}

package arena

import (
	"testing"
	"testing/quick"

	"amac/internal/memsim"
)

func TestAllocNeverReturnsZeroAddress(t *testing.T) {
	a := New()
	if addr := a.Alloc(8, 8); addr == 0 {
		t.Fatal("first allocation returned the nil address")
	}
}

func TestAllocAlignment(t *testing.T) {
	a := New()
	a.Alloc(3, 1)
	addr := a.Alloc(64, 64)
	if addr%64 != 0 {
		t.Fatalf("allocation not 64-byte aligned: %d", addr)
	}
	addr2 := a.Alloc(16, 16)
	if addr2%16 != 0 {
		t.Fatalf("allocation not 16-byte aligned: %d", addr2)
	}
	if a.Wasted() == 0 {
		t.Fatal("alignment padding should have been recorded")
	}
}

func TestAllocLines(t *testing.T) {
	a := New()
	addr := a.AllocLines(3)
	if addr%memsim.LineSize != 0 {
		t.Fatalf("AllocLines not line aligned: %d", addr)
	}
	if got := a.Allocations(); got != 1 {
		t.Fatalf("Allocations = %d, want 1", got)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a := New()
	type span struct{ start, end uint64 }
	var spans []span
	sizes := []int{1, 7, 8, 64, 100, 63, 128, 16}
	for i := 0; i < 200; i++ {
		size := sizes[i%len(sizes)]
		addr := a.Alloc(size, 8)
		spans = append(spans, span{uint64(addr), uint64(addr) + uint64(size)})
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].start < spans[i-1].end {
			t.Fatalf("allocation %d overlaps previous: %+v vs %+v", i, spans[i], spans[i-1])
		}
	}
}

func TestAllocationNeverCrossesChunkBoundary(t *testing.T) {
	const chunk = 4 * memsim.LineSize
	a := NewWithChunkSize(chunk)
	for i := 0; i < 50; i++ {
		addr := a.Alloc(100, 8)
		if uint64(addr)/chunk != (uint64(addr)+99)/chunk {
			t.Fatalf("allocation at %d crosses a chunk boundary", addr)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := New()
	addr := a.Alloc(64, 64)

	a.WriteU64(addr, 0xdeadbeefcafebabe)
	if got := a.ReadU64(addr); got != 0xdeadbeefcafebabe {
		t.Fatalf("u64 round trip: %x", got)
	}
	a.WriteI64(addr+8, -42)
	if got := a.ReadI64(addr + 8); got != -42 {
		t.Fatalf("i64 round trip: %d", got)
	}
	a.WriteU32(addr+16, 0x12345678)
	if got := a.ReadU32(addr + 16); got != 0x12345678 {
		t.Fatalf("u32 round trip: %x", got)
	}
	a.WriteU8(addr+20, 0xab)
	if got := a.ReadU8(addr + 20); got != 0xab {
		t.Fatalf("u8 round trip: %x", got)
	}
	a.WriteAddr(addr+24, addr)
	if got := a.ReadAddr(addr + 24); got != addr {
		t.Fatalf("addr round trip: %d", got)
	}
	a.WriteBytes(addr+32, []byte{1, 2, 3, 4})
	if got := a.ReadBytes(addr+32, 4); got[0] != 1 || got[3] != 4 {
		t.Fatalf("bytes round trip: %v", got)
	}
}

func TestFreshAllocationIsZeroed(t *testing.T) {
	a := New()
	addr := a.Alloc(64, 64)
	for i := 0; i < 8; i++ {
		if a.ReadU64(addr+Addr(i*8)) != 0 {
			t.Fatal("fresh allocation not zeroed")
		}
	}
}

func TestWritesToDifferentAllocationsAreIndependent(t *testing.T) {
	f := func(v1, v2 uint64) bool {
		a := New()
		p1 := a.Alloc(8, 8)
		p2 := a.Alloc(8, 8)
		a.WriteU64(p1, v1)
		a.WriteU64(p2, v2)
		return a.ReadU64(p1) == v1 && a.ReadU64(p2) == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidAccessesPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(a *Arena)
	}{
		{"zero size alloc", func(a *Arena) { a.Alloc(0, 8) }},
		{"bad alignment", func(a *Arena) { a.Alloc(8, 3) }},
		{"oversized alloc", func(a *Arena) { a.Alloc(int(DefaultChunkBytes)+1, 8) }},
		{"nil address read", func(a *Arena) { a.ReadU64(0) }},
		{"out of bounds read", func(a *Arena) { a.ReadU64(1 << 40) }},
		{"read past allocation", func(a *Arena) { addr := a.Alloc(8, 8); a.ReadBytes(addr, 1<<16) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f(New())
		})
	}
}

func TestBadChunkSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misaligned chunk size")
		}
	}()
	NewWithChunkSize(1000)
}

func TestSizeGrowsMonotonically(t *testing.T) {
	a := New()
	prev := a.Size()
	for i := 0; i < 20; i++ {
		a.Alloc(48, 16)
		if a.Size() <= prev {
			t.Fatal("Size must grow with every allocation")
		}
		prev = a.Size()
	}
}

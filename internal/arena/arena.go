// Package arena provides the simulated address space that every data
// structure in this repository lives in.
//
// The AMAC paper's data structures (hash table buckets, tree nodes, skip list
// towers) are ordinary C structs aligned to 64-byte cache lines. Here they
// are byte ranges inside an Arena: allocation returns an abstract address,
// typed accessors read and write the bytes, and the memory-hierarchy
// simulator (package memsim) charges time for the same addresses. Keeping
// the data in a flat, explicitly addressed space — rather than in Go objects —
// is what lets the simulator reason about cache lines, and it also removes
// the Go garbage collector from the measured path.
package arena

import (
	"encoding/binary"
	"fmt"

	"amac/internal/memsim"
)

// Addr is re-exported so that data-structure packages can use a single
// address type with both the arena and the simulator.
type Addr = memsim.Addr

// DefaultChunkBytes is the allocation granularity of the arena's backing
// storage. Individual allocations may not exceed it.
const DefaultChunkBytes = 1 << 20

// Arena is a bump allocator over a simulated address space. The zero address
// is never handed out, so data structures can use 0 as a nil pointer.
// An Arena is not safe for concurrent mutation.
type Arena struct {
	chunkBytes uint64
	chunks     [][]byte
	top        uint64 // next free address
	allocs     uint64
	wasted     uint64 // bytes lost to alignment and chunk padding
}

// New returns an empty arena with the default chunk size.
func New() *Arena { return NewWithChunkSize(DefaultChunkBytes) }

// NewWithChunkSize returns an empty arena whose backing storage grows in
// chunks of the given size (must be a positive multiple of the cache-line
// size). Small chunk sizes are useful in tests.
func NewWithChunkSize(chunkBytes int) *Arena {
	if chunkBytes <= 0 || chunkBytes%memsim.LineSize != 0 {
		panic(fmt.Sprintf("arena: chunk size %d must be a positive multiple of %d", chunkBytes, memsim.LineSize))
	}
	return &Arena{
		chunkBytes: uint64(chunkBytes),
		// Skip the first cache line so address 0 is never allocated.
		top: memsim.LineSize,
	}
}

// Alloc reserves size bytes aligned to align (a power of two no larger than
// the chunk size) and returns the address of the first byte. The returned
// memory is zeroed. Alloc panics on invalid arguments, since those are
// programming errors in this repository rather than user input.
func (a *Arena) Alloc(size, align int) Addr {
	if size <= 0 {
		panic("arena: allocation size must be positive")
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("arena: alignment %d must be a power of two", align))
	}
	if uint64(size) > a.chunkBytes {
		panic(fmt.Sprintf("arena: allocation of %d bytes exceeds chunk size %d", size, a.chunkBytes))
	}

	pos := a.top
	if rem := pos % uint64(align); rem != 0 {
		pad := uint64(align) - rem
		pos += pad
		a.wasted += pad
	}
	// Never let an allocation straddle a chunk boundary: bump to the next
	// chunk if it would.
	if pos/a.chunkBytes != (pos+uint64(size)-1)/a.chunkBytes {
		next := (pos/a.chunkBytes + 1) * a.chunkBytes
		a.wasted += next - pos
		pos = next
	}

	end := pos + uint64(size)
	for uint64(len(a.chunks))*a.chunkBytes < end {
		a.chunks = append(a.chunks, make([]byte, a.chunkBytes))
	}
	a.top = end
	a.allocs++
	return Addr(pos)
}

// AllocLines reserves n whole cache lines (64-byte aligned).
func (a *Arena) AllocLines(n int) Addr {
	return a.Alloc(n*memsim.LineSize, memsim.LineSize)
}

// AllocSpan reserves size bytes of contiguous, cache-line-aligned address
// space, spanning as many chunks as needed. It is used for large arrays
// (bucket directories, materialized relations) whose elements are addressed
// by offset arithmetic.
func (a *Arena) AllocSpan(size uint64) Addr {
	if size == 0 {
		panic("arena: AllocSpan of zero bytes")
	}
	if size <= a.chunkBytes {
		return a.Alloc(int(size), memsim.LineSize)
	}
	// Start at a chunk boundary so that each chunk-sized piece the arena
	// hands back is adjacent to the previous one.
	first := a.Alloc(int(a.chunkBytes), int(a.chunkBytes))
	remaining := size - a.chunkBytes
	for remaining > 0 {
		n := remaining
		if n > a.chunkBytes {
			n = a.chunkBytes
		}
		a.Alloc(int(n), memsim.LineSize)
		remaining -= n
	}
	return first
}

// Size returns the number of bytes of address space handed out so far
// (including alignment padding).
func (a *Arena) Size() uint64 { return a.top }

// Allocations returns the number of Alloc calls served.
func (a *Arena) Allocations() uint64 { return a.allocs }

// Wasted returns the number of bytes lost to alignment and chunk padding.
func (a *Arena) Wasted() uint64 { return a.wasted }

// slice returns the backing bytes for [addr, addr+size), which must lie
// within one chunk and within allocated space.
func (a *Arena) slice(addr Addr, size int) []byte {
	pos := uint64(addr)
	if size <= 0 || pos == 0 {
		panic(fmt.Sprintf("arena: invalid access addr=%d size=%d", addr, size))
	}
	end := pos + uint64(size)
	if end > a.top {
		panic(fmt.Sprintf("arena: access [%d,%d) beyond allocated space %d", pos, end, a.top))
	}
	chunk := pos / a.chunkBytes
	off := pos % a.chunkBytes
	if off+uint64(size) > a.chunkBytes {
		panic(fmt.Sprintf("arena: access [%d,%d) crosses a chunk boundary", pos, end))
	}
	return a.chunks[chunk][off : off+uint64(size)]
}

// ReadU64 reads a little-endian 64-bit value.
func (a *Arena) ReadU64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(a.slice(addr, 8))
}

// WriteU64 writes a little-endian 64-bit value.
func (a *Arena) WriteU64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(a.slice(addr, 8), v)
}

// ReadI64 reads a signed 64-bit value.
func (a *Arena) ReadI64(addr Addr) int64 { return int64(a.ReadU64(addr)) }

// WriteI64 writes a signed 64-bit value.
func (a *Arena) WriteI64(addr Addr, v int64) { a.WriteU64(addr, uint64(v)) }

// ReadU32 reads a little-endian 32-bit value.
func (a *Arena) ReadU32(addr Addr) uint32 {
	return binary.LittleEndian.Uint32(a.slice(addr, 4))
}

// WriteU32 writes a little-endian 32-bit value.
func (a *Arena) WriteU32(addr Addr, v uint32) {
	binary.LittleEndian.PutUint32(a.slice(addr, 4), v)
}

// ReadU8 reads a single byte.
func (a *Arena) ReadU8(addr Addr) uint8 { return a.slice(addr, 1)[0] }

// WriteU8 writes a single byte.
func (a *Arena) WriteU8(addr Addr, v uint8) { a.slice(addr, 1)[0] = v }

// ReadAddr reads a stored address (pointer field).
func (a *Arena) ReadAddr(addr Addr) Addr { return Addr(a.ReadU64(addr)) }

// WriteAddr stores an address (pointer field).
func (a *Arena) WriteAddr(addr Addr, v Addr) { a.WriteU64(addr, uint64(v)) }

// ReadBytes copies size bytes starting at addr into a new slice.
func (a *Arena) ReadBytes(addr Addr, size int) []byte {
	out := make([]byte, size)
	copy(out, a.slice(addr, size))
	return out
}

// WriteBytes copies b into the arena starting at addr.
func (a *Arena) WriteBytes(addr Addr, b []byte) {
	copy(a.slice(addr, len(b)), b)
}

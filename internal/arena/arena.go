// Package arena provides the simulated address space that every data
// structure in this repository lives in.
//
// The AMAC paper's data structures (hash table buckets, tree nodes, skip list
// towers) are ordinary C structs aligned to 64-byte cache lines. Here they
// are byte ranges inside an Arena: allocation returns an abstract address,
// typed accessors read and write the bytes, and the memory-hierarchy
// simulator (package memsim) charges time for the same addresses. Keeping
// the data in a flat, explicitly addressed space — rather than in Go objects —
// is what lets the simulator reason about cache lines, and it also removes
// the Go garbage collector from the measured path.
//
// Every typed accessor funnels through slice, which runs once per simulated
// field access — it is on the simulator's hot path. Chunk sizes are therefore
// required to be powers of two so chunk/offset splits are a shift and a mask,
// and the panic messages (which call fmt) live in separate noinline slow
// paths so the bounds checks stay branch-plus-nothing in the common case.
package arena

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"amac/internal/memsim"
)

// Addr is re-exported so that data-structure packages can use a single
// address type with both the arena and the simulator.
type Addr = memsim.Addr

// DefaultChunkBytes is the allocation granularity of the arena's backing
// storage. Individual allocations may not exceed it.
const DefaultChunkBytes = 1 << 20

// Arena is a bump allocator over a simulated address space. The zero address
// is never handed out, so data structures can use 0 as a nil pointer.
// An Arena is not safe for concurrent use, including read-only use: every
// access updates the last-touched-chunk cache. The parallel execution layer
// gives each worker a private arena (see ops.PartitionJoin), which is the
// supported sharing model.
type Arena struct {
	chunkBytes uint64
	chunkShift uint
	chunkMask  uint64
	chunks     [][]byte
	top        uint64 // next free address
	allocs     uint64
	wasted     uint64 // bytes lost to alignment and chunk padding

	// lastIdx/lastBuf cache the most recently touched chunk: consecutive
	// accesses overwhelmingly land in one chunk, and chunk backing arrays
	// never move once allocated, so the cached slice header stays valid.
	lastIdx uint64
	lastBuf []byte
}

// New returns an empty arena with the default chunk size.
func New() *Arena { return NewWithChunkSize(DefaultChunkBytes) }

// NewWithChunkSize returns an empty arena whose backing storage grows in
// chunks of the given size, which must be a power of two and a multiple of
// the cache-line size. Small chunk sizes are useful in tests.
func NewWithChunkSize(chunkBytes int) *Arena {
	if chunkBytes <= 0 || chunkBytes%memsim.LineSize != 0 || chunkBytes&(chunkBytes-1) != 0 {
		panic(fmt.Sprintf("arena: chunk size %d must be a power of two multiple of %d", chunkBytes, memsim.LineSize))
	}
	return &Arena{
		chunkBytes: uint64(chunkBytes),
		chunkShift: uint(bits.TrailingZeros64(uint64(chunkBytes))),
		chunkMask:  uint64(chunkBytes) - 1,
		// Skip the first cache line so address 0 is never allocated.
		top:     memsim.LineSize,
		lastIdx: ^uint64(0),
	}
}

// Alloc reserves size bytes aligned to align (a power of two no larger than
// the chunk size) and returns the address of the first byte. The returned
// memory is zeroed. Alloc panics on invalid arguments, since those are
// programming errors in this repository rather than user input.
func (a *Arena) Alloc(size, align int) Addr {
	if size <= 0 {
		panic("arena: allocation size must be positive")
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("arena: alignment %d must be a power of two", align))
	}
	if uint64(size) > a.chunkBytes {
		panic(fmt.Sprintf("arena: allocation of %d bytes exceeds chunk size %d", size, a.chunkBytes))
	}

	pos := a.top
	if rem := pos & (uint64(align) - 1); rem != 0 {
		pad := uint64(align) - rem
		pos += pad
		a.wasted += pad
	}
	// Never let an allocation straddle a chunk boundary: bump to the next
	// chunk if it would.
	if pos>>a.chunkShift != (pos+uint64(size)-1)>>a.chunkShift {
		next := (pos>>a.chunkShift + 1) << a.chunkShift
		a.wasted += next - pos
		pos = next
	}

	a.reserve(pos + uint64(size))
	a.allocs++
	return Addr(pos)
}

// reserve grows the backing chunks to cover addresses below end and raises
// the allocation watermark.
func (a *Arena) reserve(end uint64) {
	for uint64(len(a.chunks))<<a.chunkShift < end {
		a.chunks = append(a.chunks, make([]byte, a.chunkBytes))
	}
	a.top = end
}

// AllocLines reserves n whole cache lines (64-byte aligned).
func (a *Arena) AllocLines(n int) Addr {
	return a.Alloc(n*memsim.LineSize, memsim.LineSize)
}

// AllocSpan reserves size bytes of contiguous, cache-line-aligned address
// space, spanning as many chunks as needed, and reserving all of them in one
// pass. It is used for large arrays (bucket directories, materialized
// relations) whose elements are addressed by offset arithmetic. A span
// larger than one chunk counts as a single allocation.
func (a *Arena) AllocSpan(size uint64) Addr {
	if size == 0 {
		panic("arena: AllocSpan of zero bytes")
	}
	if size <= a.chunkBytes {
		return a.Alloc(int(size), memsim.LineSize)
	}
	// Start at a chunk boundary so that every chunk-sized piece of the span
	// is adjacent to the previous one.
	pos := a.top
	if rem := pos & a.chunkMask; rem != 0 {
		pad := a.chunkBytes - rem
		a.wasted += pad
		pos += pad
	}
	a.reserve(pos + size)
	a.allocs++
	return Addr(pos)
}

// Size returns the number of bytes of address space handed out so far
// (including alignment padding).
func (a *Arena) Size() uint64 { return a.top }

// Allocations returns the number of Alloc/AllocSpan calls served.
func (a *Arena) Allocations() uint64 { return a.allocs }

// Wasted returns the number of bytes lost to alignment and chunk padding.
func (a *Arena) Wasted() uint64 { return a.wasted }

// slice returns the backing bytes for [addr, addr+size), which must lie
// within one chunk and within allocated space.
func (a *Arena) slice(addr Addr, size int) []byte {
	pos := uint64(addr)
	off := pos & a.chunkMask
	if pos == 0 || size <= 0 || pos+uint64(size) > a.top || off+uint64(size) > a.chunkBytes {
		a.accessPanic(addr, size)
	}
	if idx := pos >> a.chunkShift; idx != a.lastIdx {
		a.lastIdx = idx
		a.lastBuf = a.chunks[idx]
	}
	return a.lastBuf[off : off+uint64(size)]
}

// accessPanic reports an invalid access; it is kept out of slice so the fast
// path never materializes a format call.
//
//go:noinline
func (a *Arena) accessPanic(addr Addr, size int) {
	pos := uint64(addr)
	end := pos + uint64(size)
	switch {
	case size <= 0 || pos == 0:
		panic(fmt.Sprintf("arena: invalid access addr=%d size=%d", addr, size))
	case end > a.top:
		panic(fmt.Sprintf("arena: access [%d,%d) beyond allocated space %d", pos, end, a.top))
	default:
		panic(fmt.Sprintf("arena: access [%d,%d) crosses a chunk boundary", pos, end))
	}
}

// ReadU64 reads a little-endian 64-bit value.
func (a *Arena) ReadU64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(a.slice(addr, 8))
}

// WriteU64 writes a little-endian 64-bit value.
func (a *Arena) WriteU64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(a.slice(addr, 8), v)
}

// ReadI64 reads a signed 64-bit value.
func (a *Arena) ReadI64(addr Addr) int64 { return int64(a.ReadU64(addr)) }

// WriteI64 writes a signed 64-bit value.
func (a *Arena) WriteI64(addr Addr, v int64) { a.WriteU64(addr, uint64(v)) }

// ReadU32 reads a little-endian 32-bit value.
func (a *Arena) ReadU32(addr Addr) uint32 {
	return binary.LittleEndian.Uint32(a.slice(addr, 4))
}

// WriteU32 writes a little-endian 32-bit value.
func (a *Arena) WriteU32(addr Addr, v uint32) {
	binary.LittleEndian.PutUint32(a.slice(addr, 4), v)
}

// ReadU8 reads a single byte.
func (a *Arena) ReadU8(addr Addr) uint8 { return a.slice(addr, 1)[0] }

// WriteU8 writes a single byte.
func (a *Arena) WriteU8(addr Addr, v uint8) { a.slice(addr, 1)[0] = v }

// ReadAddr reads a stored address (pointer field).
func (a *Arena) ReadAddr(addr Addr) Addr { return Addr(a.ReadU64(addr)) }

// WriteAddr stores an address (pointer field).
func (a *Arena) WriteAddr(addr Addr, v Addr) { a.WriteU64(addr, uint64(v)) }

// Bytes returns the backing bytes for [addr, addr+size) without copying.
// The returned slice aliases the arena: it stays valid (chunks never move),
// and writes through it are visible to subsequent reads. Callers that need
// a stable snapshot must copy; the node accessors in the data-structure
// packages use it to decode several fields from one bounds check.
func (a *Arena) Bytes(addr Addr, size int) []byte {
	return a.slice(addr, size)
}

// ReadInto copies len(dst) bytes starting at addr into dst without
// allocating.
func (a *Arena) ReadInto(dst []byte, addr Addr) {
	copy(dst, a.slice(addr, len(dst)))
}

// ReadBytes copies size bytes starting at addr into a new slice. Prefer
// Bytes or ReadInto on hot paths; ReadBytes allocates its result.
func (a *Arena) ReadBytes(addr Addr, size int) []byte {
	out := make([]byte, size)
	copy(out, a.slice(addr, size))
	return out
}

// WriteBytes copies b into the arena starting at addr.
func (a *Arena) WriteBytes(addr Addr, b []byte) {
	copy(a.slice(addr, len(b)), b)
}

package serve

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
)

// Policy says what a bounded admission queue does with a request that
// arrives while the queue is full.
type Policy int

const (
	// Block never rejects: a request that finds the queue full waits outside
	// and is admitted when space frees. Its latency still counts from the
	// original arrival cycle, so blocking shows up as queue delay — under
	// sustained overload, latencies grow with the length of the run, which
	// is exactly how an unbounded open-loop queue behaves.
	Block Policy = iota
	// Drop rejects a request that arrives while the queue holds Capacity
	// requests; rejections are counted in the recorder's Dropped.
	Drop
)

// String renders the policy name.
func (p Policy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// Queue-side bookkeeping costs, in abstract instructions, charged to the
// serving core: checking the arrival clock and linking a request into the
// queue, and unlinking the head on a pull. They are small by design — the
// queue is a few pointer writes next to the operator work.
const (
	costAdmit = 1
	costPop   = 2
)

// ringPool recycles admission-ring buffers across runs, so a load sweep that
// builds one QueueSource per (technique, load, worker) run reuses a handful
// of rings instead of allocating per run.
var ringPool = sync.Pool{New: func() any { b := make([]int32, 0, 64); return &b }}

// getRing returns a power-of-two ring with room for at least n entries.
func getRing(n int) *[]int32 {
	size := 64
	for size < n {
		size <<= 1
	}
	p := ringPool.Get().(*[]int32)
	if cap(*p) < size {
		*p = make([]int32, size)
	} else {
		*p = (*p)[:cap(*p)]
	}
	return p
}

// QueueSource feeds a streaming engine from a bounded admission queue filled
// by an open-loop arrival schedule. Request i of the schedule is lookup i of
// the wrapped machine; arrivals are processed lazily (and exactly) at each
// Pull, which is correct because the queue only ever drains at pulls.
//
// The queue is a power-of-two ring buffer: admit writes at the tail, a pull
// reads at the head, both O(1) with no copying or reslicing in steady state
// (an unbounded queue doubles the ring only when its depth outgrows it).
//
// A QueueSource is single-run state: build a fresh one per (engine, core)
// execution. Close releases its ring for reuse by later sources.
type QueueSource[S any] struct {
	m        exec.Machine[S]
	arrivals []uint64
	policy   Policy
	capacity int
	rec      *Recorder

	next int // next schedule index not yet admitted or dropped

	// tr receives queue lifecycle events (admit, drop, block, depth); lat
	// records completion latencies for the sliding-window p99 gauge. Both
	// are nil-safe no-ops and purely observational.
	tr  *obs.CoreTrace
	lat *obs.LatencyWindow

	// Admitted request indices live in ring[head&mask .. tail&mask); head
	// and tail increase monotonically, so tail-head is the queue depth.
	ringP      *[]int32
	ring       []int32
	mask       int
	head, tail int
}

// NewQueueSource builds a source serving the machine's lookups at the given
// arrival cycles (non-decreasing; at most NumLookups entries are used).
// capacity bounds the admitted queue; zero or negative means unbounded,
// which forces the Block policy. The recorder may be shared with the caller
// for reading afterwards; it must not be shared with another live source.
func NewQueueSource[S any](m exec.Machine[S], arrivals []uint64, capacity int, policy Policy, rec *Recorder) *QueueSource[S] {
	n := m.NumLookups()
	if len(arrivals) > n {
		arrivals = arrivals[:n]
	}
	if len(arrivals) > 1<<31-1 {
		panic("serve: arrival schedule exceeds 2^31-1 requests")
	}
	if capacity <= 0 {
		capacity = 0
		policy = Block
	}
	if rec == nil {
		rec = &Recorder{}
	}
	q := &QueueSource[S]{m: m, arrivals: arrivals, policy: policy, capacity: capacity, rec: rec}
	// A bounded queue never holds more than capacity entries, so its ring is
	// sized once and never grows.
	q.ringP = getRing(capacity)
	q.ring = *q.ringP
	q.mask = len(q.ring) - 1
	return q
}

// Close releases the source's ring buffer back to the shared pool. The
// source must not be used afterwards.
func (q *QueueSource[S]) Close() {
	if q.ringP == nil {
		return
	}
	ringPool.Put(q.ringP)
	q.ringP = nil
	q.ring = nil
}

// Recorder returns the recorder accumulating this source's statistics.
func (q *QueueSource[S]) Recorder() *Recorder { return q.rec }

// SetTrace attaches a per-core trace sink: the queue emits admit, drop and
// block instants and a depth counter on its track. Purely observational.
func (q *QueueSource[S]) SetTrace(tr *obs.CoreTrace) { q.tr = tr }

// SetLatencyWindow attaches a sliding window that records every completion's
// admission-to-done latency — the backing store of a live p99 gauge. Purely
// observational.
func (q *QueueSource[S]) SetLatencyWindow(lw *obs.LatencyWindow) { q.lat = lw }

// depth returns the number of admitted, not-yet-pulled requests.
func (q *QueueSource[S]) depth() int { return q.tail - q.head }

// Depth exposes the admission-queue backlog: the adaptive serving
// controller reads it between leases as its queue-pressure retune signal.
func (q *QueueSource[S]) Depth() int { return q.depth() }

// grow doubles the ring (unbounded queues only), relinking the live entries
// in FIFO order.
func (q *QueueSource[S]) grow() {
	old, oldMask := q.ring, q.mask
	p := getRing(2 * len(old))
	q.ringP, q.ring = p, *p
	q.mask = len(q.ring) - 1
	for i := q.head; i < q.tail; i++ {
		q.ring[i&q.mask] = old[i&oldMask]
	}
	ringPool.Put(&old)
}

// admit processes every arrival due at or before now, in arrival order:
// admitted while there is room, dropped (under Drop) once the queue is
// full. Lazy processing is exact because the queue only drains at pulls —
// occupancy cannot fall between two pulls.
func (q *QueueSource[S]) admit(c *memsim.Core, now uint64) {
	for q.next < len(q.arrivals) && q.arrivals[q.next] <= now {
		if q.capacity > 0 && q.depth() >= q.capacity {
			if q.policy == Drop {
				q.rec.Offered++
				q.rec.recordDrop()
				q.tr.QueueDrop(q.arrivals[q.next], q.next)
				q.next++
				continue
			}
			// Block: the request waits outside the queue; stop admitting.
			q.tr.QueueBlock(now, q.depth())
			return
		}
		if q.depth() == len(q.ring) {
			q.grow()
		}
		c.Instr(costAdmit)
		q.rec.Offered++
		q.tr.QueueAdmit(q.arrivals[q.next], q.next)
		q.ring[q.tail&q.mask] = int32(q.next)
		q.tail++
		q.next++
	}
}

// ProvisionedStages implements exec.Source.
func (q *QueueSource[S]) ProvisionedStages() int { return q.m.ProvisionedStages() }

// Pull implements exec.Source: admit due arrivals, then hand out the queue
// head.
func (q *QueueSource[S]) Pull(c *memsim.Core, s *S, now uint64) exec.PullResult {
	q.admit(c, now)
	q.rec.sampleDepth(q.depth())
	q.tr.QueueDepth(now, q.depth())
	if q.depth() > 0 {
		idx := int(q.ring[q.head&q.mask])
		q.head++
		c.Instr(costPop)
		req := exec.Request{Index: idx, Admit: q.arrivals[idx]}
		q.rec.recordQueueWait(now - req.Admit)
		out := q.m.Init(c, s, idx)
		return exec.PullResult{Status: exec.Pulled, Out: out, Req: req}
	}
	if q.next < len(q.arrivals) {
		return exec.PullResult{Status: exec.Wait, NextArrival: q.arrivals[q.next]}
	}
	return exec.PullResult{Status: exec.Exhausted}
}

// Stage implements exec.Source.
func (q *QueueSource[S]) Stage(c *memsim.Core, s *S, stage int) exec.Outcome {
	return q.m.Stage(c, s, stage)
}

// Complete implements exec.Source: record admission→completion latency.
func (q *QueueSource[S]) Complete(req exec.Request, done uint64) {
	q.rec.RecordLatency(done - req.Admit)
	q.lat.Record(done - req.Admit)
}

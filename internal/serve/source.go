package serve

import (
	"amac/internal/exec"
	"amac/internal/memsim"
)

// Policy says what a bounded admission queue does with a request that
// arrives while the queue is full.
type Policy int

const (
	// Block never rejects: a request that finds the queue full waits outside
	// and is admitted when space frees. Its latency still counts from the
	// original arrival cycle, so blocking shows up as queue delay — under
	// sustained overload, latencies grow with the length of the run, which
	// is exactly how an unbounded open-loop queue behaves.
	Block Policy = iota
	// Drop rejects a request that arrives while the queue holds Capacity
	// requests; rejections are counted in the recorder's Dropped.
	Drop
)

// String renders the policy name.
func (p Policy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// Queue-side bookkeeping costs, in abstract instructions, charged to the
// serving core: checking the arrival clock and linking a request into the
// queue, and unlinking the head on a pull. They are small by design — the
// queue is a few pointer writes next to the operator work.
const (
	costAdmit = 1
	costPop   = 2
)

// QueueSource feeds a streaming engine from a bounded admission queue filled
// by an open-loop arrival schedule. Request i of the schedule is lookup i of
// the wrapped machine; arrivals are processed lazily (and exactly) at each
// Pull, which is correct because the queue only ever drains at pulls.
//
// A QueueSource is single-run state: build a fresh one per (engine, core)
// execution.
type QueueSource[S any] struct {
	m        exec.Machine[S]
	arrivals []uint64
	policy   Policy
	capacity int
	rec      *Recorder

	next  int   // next schedule index not yet admitted or dropped
	queue []int // admitted request indices, FIFO
	head  int   // first live element of queue
}

// NewQueueSource builds a source serving the machine's lookups at the given
// arrival cycles (non-decreasing; at most NumLookups entries are used).
// capacity bounds the admitted queue; zero or negative means unbounded,
// which forces the Block policy. The recorder may be shared with the caller
// for reading afterwards; it must not be shared with another live source.
func NewQueueSource[S any](m exec.Machine[S], arrivals []uint64, capacity int, policy Policy, rec *Recorder) *QueueSource[S] {
	if n := m.NumLookups(); len(arrivals) > n {
		arrivals = arrivals[:n]
	}
	if capacity <= 0 {
		capacity = 0
		policy = Block
	}
	if rec == nil {
		rec = &Recorder{}
	}
	return &QueueSource[S]{m: m, arrivals: arrivals, policy: policy, capacity: capacity, rec: rec}
}

// Recorder returns the recorder accumulating this source's statistics.
func (q *QueueSource[S]) Recorder() *Recorder { return q.rec }

// depth returns the number of admitted, not-yet-pulled requests.
func (q *QueueSource[S]) depth() int { return len(q.queue) - q.head }

// admit processes every arrival due at or before now, in arrival order:
// admitted while there is room, dropped (under Drop) once the queue is
// full. Lazy processing is exact because the queue only drains at pulls —
// occupancy cannot fall between two pulls.
func (q *QueueSource[S]) admit(c *memsim.Core, now uint64) {
	for q.next < len(q.arrivals) && q.arrivals[q.next] <= now {
		if q.capacity > 0 && q.depth() >= q.capacity {
			if q.policy == Drop {
				q.rec.Offered++
				q.rec.recordDrop()
				q.next++
				continue
			}
			// Block: the request waits outside the queue; stop admitting.
			return
		}
		c.Instr(costAdmit)
		q.rec.Offered++
		q.queue = append(q.queue, q.next)
		q.next++
	}
	// Reclaim the drained prefix once it dominates the backing array.
	if q.head > 64 && q.head*2 > len(q.queue) {
		q.queue = append(q.queue[:0], q.queue[q.head:]...)
		q.head = 0
	}
}

// ProvisionedStages implements exec.Source.
func (q *QueueSource[S]) ProvisionedStages() int { return q.m.ProvisionedStages() }

// Pull implements exec.Source: admit due arrivals, then hand out the queue
// head.
func (q *QueueSource[S]) Pull(c *memsim.Core, s *S, now uint64) exec.PullResult {
	q.admit(c, now)
	q.rec.sampleDepth(q.depth())
	if q.depth() > 0 {
		idx := q.queue[q.head]
		q.head++
		c.Instr(costPop)
		req := exec.Request{Index: idx, Admit: q.arrivals[idx]}
		q.rec.recordQueueWait(now - req.Admit)
		out := q.m.Init(c, s, idx)
		return exec.PullResult{Status: exec.Pulled, Out: out, Req: req}
	}
	if q.next < len(q.arrivals) {
		return exec.PullResult{Status: exec.Wait, NextArrival: q.arrivals[q.next]}
	}
	return exec.PullResult{Status: exec.Exhausted}
}

// Stage implements exec.Source.
func (q *QueueSource[S]) Stage(c *memsim.Core, s *S, stage int) exec.Outcome {
	return q.m.Stage(c, s, stage)
}

// Complete implements exec.Source: record admission→completion latency.
func (q *QueueSource[S]) Complete(req exec.Request, done uint64) {
	q.rec.RecordLatency(done - req.Admit)
}

package serve

import (
	"sync"

	"amac/internal/exec"
	"amac/internal/fault"
	"amac/internal/memsim"
	"amac/internal/obs"
)

// Policy says what a bounded admission queue does with a request that
// arrives while the queue is full.
type Policy int

const (
	// Block never rejects: a request that finds the queue full waits outside
	// and is admitted when space frees. Its latency still counts from the
	// original arrival cycle, so blocking shows up as queue delay — under
	// sustained overload, latencies grow with the length of the run, which
	// is exactly how an unbounded open-loop queue behaves.
	Block Policy = iota
	// Drop rejects a request that arrives while the queue holds Capacity
	// requests; rejections are counted in the recorder's Dropped.
	Drop
)

// String renders the policy name.
func (p Policy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// Queue-side bookkeeping costs, in abstract instructions, charged to the
// serving core: checking the arrival clock and linking a request into the
// queue, and unlinking the head on a pull. They are small by design — the
// queue is a few pointer writes next to the operator work.
const (
	costAdmit = 1
	costPop   = 2
)

// ringPool recycles admission-ring buffers across runs, so a load sweep that
// builds one QueueSource per (technique, load, worker) run reuses a handful
// of rings instead of allocating per run.
var ringPool = sync.Pool{New: func() any { b := make([]int32, 0, 64); return &b }}

// getRing returns a power-of-two ring with room for at least n entries.
func getRing(n int) *[]int32 {
	size := 64
	for size < n {
		size <<= 1
	}
	p := ringPool.Get().(*[]int32)
	if cap(*p) < size {
		*p = make([]int32, size)
	} else {
		*p = (*p)[:cap(*p)]
	}
	return p
}

// QueueSource feeds a streaming engine from a bounded admission queue filled
// by an open-loop arrival schedule. Request i of the schedule is lookup i of
// the wrapped machine; arrivals are processed lazily (and exactly) at each
// Pull, which is correct because the queue only ever drains at pulls.
//
// The queue is a power-of-two ring buffer: admit writes at the tail, a pull
// reads at the head, both O(1) with no copying or reslicing in steady state
// (an unbounded queue doubles the ring only when its depth outgrows it).
//
// A QueueSource is single-run state: build a fresh one per (engine, core)
// execution. Close releases its ring for reuse by later sources.
type QueueSource[S any] struct {
	m        exec.Machine[S]
	arrivals []uint64
	policy   Policy
	capacity int
	rec      *Recorder

	next int // next schedule index not yet admitted or dropped

	// tr receives queue lifecycle events (admit, drop, block, depth); lat
	// records completion latencies for the sliding-window p99 gauge. Both
	// are nil-safe no-ops and purely observational.
	tr  *obs.CoreTrace
	lat *obs.LatencyWindow

	// Admitted request indices live in ring[head&mask .. tail&mask); head
	// and tail increase monotonically, so tail-head is the queue depth.
	ringP      *[]int32
	ring       []int32
	mask       int
	head, tail int

	// Fault-tolerant serving extensions. All are zero/nil in plain runs, in
	// which case every code path below reduces exactly to the original
	// queue: same instruction charges, same events, same accounting.

	// shard is this queue's worker index under a fault router.
	shard int
	// sched maps a schedule position to the machine lookup index it serves;
	// nil means the identity (position i is lookup i). A router requires an
	// explicit map placing every worker's schedule in one shared index
	// space, so a request keeps its identity when served by a sibling.
	sched []int32
	// deadline is the per-request budget in cycles from arrival; entries
	// that expire while still queued are resolved at pop time. Zero
	// disables the check.
	deadline uint64
	// brown, when set, sheds arrivals whose class (lookup index mod
	// classes) is currently browned out.
	brown   *fault.Brownout
	classes int
	// sloN counts admissions toward the queue-local brownout observation
	// (used only when no router owns the brownout).
	sloN int
	// router, when set, owns cross-shard recovery: it is consulted at
	// admission (breaker reroutes), at entry expiry and on completion.
	router *router
	// horizon is the wait floor handed to the engine when the queue is
	// empty but the router may still inject work; the coordinator advances
	// it every round. closed means the router declared the run resolved.
	horizon uint64
	closed  bool
	// extras holds router-injected recovery dispatches (hedge duplicates,
	// breaker reroutes, retry re-enqueues), served ahead of the base ring
	// in injection order once their ready cycle passes.
	extras    []extra
	extraHead int
}

// extra is one router-injected recovery dispatch.
type extra struct {
	idx     int32  // machine lookup index (the request's global identity)
	attempt uint8  // retry attempt; zero for hedges and reroutes
	arrival uint64 // original arrival cycle — the latency base
	ready   uint64 // earliest cycle the entry may be pulled
}

// NewQueueSource builds a source serving the machine's lookups at the given
// arrival cycles (non-decreasing; at most NumLookups entries are used).
// capacity bounds the admitted queue; zero or negative means unbounded,
// which forces the Block policy. The recorder may be shared with the caller
// for reading afterwards; it must not be shared with another live source.
func NewQueueSource[S any](m exec.Machine[S], arrivals []uint64, capacity int, policy Policy, rec *Recorder) *QueueSource[S] {
	n := m.NumLookups()
	if len(arrivals) > n {
		arrivals = arrivals[:n]
	}
	if len(arrivals) > 1<<31-1 {
		panic("serve: arrival schedule exceeds 2^31-1 requests")
	}
	if capacity <= 0 {
		capacity = 0
		policy = Block
	}
	if rec == nil {
		rec = &Recorder{}
	}
	q := &QueueSource[S]{m: m, arrivals: arrivals, policy: policy, capacity: capacity, rec: rec}
	// A bounded queue never holds more than capacity entries, so its ring is
	// sized once and never grows.
	q.ringP = getRing(capacity)
	q.ring = *q.ringP
	q.mask = len(q.ring) - 1
	return q
}

// Close releases the source's ring buffer back to the shared pool. The
// source must not be used afterwards.
func (q *QueueSource[S]) Close() {
	if q.ringP == nil {
		return
	}
	ringPool.Put(q.ringP)
	q.ringP = nil
	q.ring = nil
}

// Recorder returns the recorder accumulating this source's statistics.
func (q *QueueSource[S]) Recorder() *Recorder { return q.rec }

// SetTrace attaches a per-core trace sink: the queue emits admit, drop and
// block instants and a depth counter on its track. Purely observational.
func (q *QueueSource[S]) SetTrace(tr *obs.CoreTrace) { q.tr = tr }

// SetLatencyWindow attaches a sliding window that records every completion's
// admission-to-done latency — the backing store of a live p99 gauge. Purely
// observational.
func (q *QueueSource[S]) SetLatencyWindow(lw *obs.LatencyWindow) { q.lat = lw }

// SetSchedule maps schedule positions to machine lookup indices (nil keeps
// the identity). Routed services use it to place every worker's schedule in
// one shared index space over replicated machines.
func (q *QueueSource[S]) SetSchedule(sched []int32) { q.sched = sched }

// SetDeadline sets the per-request cycle budget from arrival; zero disables.
func (q *QueueSource[S]) SetDeadline(d uint64) { q.deadline = d }

// SetBrownout attaches an SLO brownout controller: arrivals whose class
// (lookup index mod the controller's class count) is shed are rejected at
// admission. When no router owns the controller, the queue feeds it the
// sliding p99 itself, once every 64 offered requests (SetLatencyWindow must
// be called too).
func (q *QueueSource[S]) SetBrownout(b *fault.Brownout) {
	q.brown = b
	if b != nil {
		q.classes = b.Classes()
	}
}

// bind attaches the fault router that owns this queue's shard.
func (q *QueueSource[S]) bind(r *router, shard int) { q.router = r; q.shard = shard }

// setHorizon advances the round-boundary wait floor the engine sees while
// the router may still inject work into an otherwise empty queue.
func (q *QueueSource[S]) setHorizon(h uint64) { q.horizon = h }

// closeRouted marks the routed run resolved: once the backlog drains, Pull
// reports Exhausted instead of waiting on the horizon.
func (q *QueueSource[S]) closeRouted() { q.closed = true }

// inject appends a recovery dispatch; it is served ahead of the base ring
// once its ready cycle passes.
func (q *QueueSource[S]) inject(e extra) { q.extras = append(q.extras, e) }

// scheduleDone reports whether every base arrival has been consumed.
func (q *QueueSource[S]) scheduleDone() bool { return q.next >= len(q.arrivals) }

// idxAt resolves a schedule position to its machine lookup index.
func (q *QueueSource[S]) idxAt(pos int32) int32 {
	if q.sched == nil {
		return pos
	}
	return q.sched[pos]
}

// maybeObserveSLO feeds the queue-owned brownout controller (router-less
// runs only) the sliding p99 once every 64 offered requests.
func (q *QueueSource[S]) maybeObserveSLO(now uint64) {
	if q.brown == nil || q.router != nil {
		return
	}
	q.sloN++
	if q.sloN < 64 {
		return
	}
	q.sloN = 0
	if lvl, changed := q.brown.Observe(q.lat.Quantile(0.99)); changed {
		q.tr.Brownout(now, lvl)
	}
}

// timeoutEntry resolves a queued entry whose deadline expired before an
// engine could pull it.
func (q *QueueSource[S]) timeoutEntry(idx int32, arrival, now uint64) {
	q.tr.QueueDrop(now, int(idx))
	if q.router != nil {
		q.router.onCopyDead(q.shard, idx, arrival, now, exec.FailDeadline)
		return
	}
	q.rec.TimedOut++
}

// Fail implements exec.FailSink: the engine reports a slot it closed without
// completing (deadline expiry in flight, or a crash abort).
func (q *QueueSource[S]) Fail(req exec.Request, at uint64, kind exec.FailKind) {
	if q.router != nil {
		q.router.onCopyDead(q.shard, int32(req.Index), req.Admit, at, kind)
		return
	}
	if kind == exec.FailCrash {
		q.rec.Failed++
	} else {
		q.rec.TimedOut++
	}
}

// failQueued drops every queued entry (base ring and pending extras) on a
// shard crash; the router decides which requests retry and which are lost.
func (q *QueueSource[S]) failQueued(now uint64) {
	for q.head < q.tail {
		pos := q.ring[q.head&q.mask]
		q.head++
		if q.router != nil {
			q.router.onCopyDead(q.shard, q.idxAt(pos), q.arrivals[pos], now, exec.FailCrash)
		} else {
			q.rec.Failed++
		}
	}
	for q.extraHead < len(q.extras) {
		e := q.extras[q.extraHead]
		q.extraHead++
		if q.router != nil {
			q.router.onCopyDead(q.shard, e.idx, e.arrival, now, exec.FailCrash)
		} else {
			q.rec.Failed++
		}
	}
}

// depth returns the number of admitted, not-yet-pulled requests.
func (q *QueueSource[S]) depth() int { return q.tail - q.head }

// Depth exposes the admission-queue backlog: the adaptive serving
// controller reads it between leases as its queue-pressure retune signal.
func (q *QueueSource[S]) Depth() int { return q.depth() }

// grow doubles the ring (unbounded queues only), relinking the live entries
// in FIFO order.
func (q *QueueSource[S]) grow() {
	old, oldMask := q.ring, q.mask
	p := getRing(2 * len(old))
	q.ringP, q.ring = p, *p
	q.mask = len(q.ring) - 1
	for i := q.head; i < q.tail; i++ {
		q.ring[i&q.mask] = old[i&oldMask]
	}
	ringPool.Put(&old)
}

// admit processes every arrival due at or before now, in arrival order:
// admitted while there is room, dropped (under Drop) once the queue is
// full. Lazy processing is exact because the queue only drains at pulls —
// occupancy cannot fall between two pulls.
func (q *QueueSource[S]) admit(c *memsim.Core, now uint64) {
	for q.next < len(q.arrivals) && q.arrivals[q.next] <= now {
		// Front-door recovery checks, before any queueing: a request already
		// resolved by a hedge is consumed silently, a browned-out class is
		// shed, an open breaker redirects to a healthy sibling. Each counts
		// the offer on this (home) shard.
		if q.router != nil || q.brown != nil {
			idx := q.idxAt(int32(q.next))
			if q.router != nil && !q.router.pendingOrNew(idx) {
				q.rec.Offered++
				q.next++
				continue
			}
			if q.brown != nil && !q.brown.Admit(int(idx)%q.classes) {
				q.rec.Offered++
				q.rec.Shed++
				if q.router != nil {
					q.router.onShed(q.shard, idx)
				}
				q.next++
				q.maybeObserveSLO(now)
				continue
			}
			if q.router != nil && q.router.redirect(q.shard, idx, q.arrivals[q.next]) {
				q.rec.Offered++
				q.rec.Rerouted++
				q.next++
				continue
			}
		}
		if q.capacity > 0 && q.depth() >= q.capacity {
			if q.policy == Drop {
				q.rec.Offered++
				q.rec.recordDrop()
				q.tr.QueueDrop(q.arrivals[q.next], q.next)
				if q.router != nil {
					q.router.onDrop(q.shard, q.idxAt(int32(q.next)))
				}
				q.next++
				continue
			}
			// Block: the request waits outside the queue; stop admitting.
			q.tr.QueueBlock(now, q.depth())
			return
		}
		if q.depth() == len(q.ring) {
			q.grow()
		}
		c.Instr(costAdmit)
		q.rec.Offered++
		q.tr.QueueAdmit(q.arrivals[q.next], q.next)
		q.ring[q.tail&q.mask] = int32(q.next)
		q.tail++
		if q.router != nil {
			q.router.onAdmit(q.shard, q.idxAt(int32(q.next)))
		}
		q.next++
		q.maybeObserveSLO(now)
	}
}

// ProvisionedStages implements exec.Source.
func (q *QueueSource[S]) ProvisionedStages() int { return q.m.ProvisionedStages() }

// Pull implements exec.Source: admit due arrivals, then hand out the next
// runnable entry — injected recovery dispatches first, then the queue head.
// Entries whose deadline expired while queued, and copies of requests a
// sibling already resolved, are skipped (each skip still pays the pop cost).
func (q *QueueSource[S]) Pull(c *memsim.Core, s *S, now uint64) exec.PullResult {
	q.admit(c, now)
	q.rec.sampleDepth(q.depth())
	q.tr.QueueDepth(now, q.depth())
	for q.extraHead < len(q.extras) && q.extras[q.extraHead].ready <= now {
		e := q.extras[q.extraHead]
		q.extraHead++
		c.Instr(costPop)
		if q.router != nil && !q.router.pendingOrNew(e.idx) {
			continue
		}
		if q.deadline != 0 && now > e.arrival+q.deadline {
			q.timeoutEntry(e.idx, e.arrival, now)
			continue
		}
		req := exec.Request{Index: int(e.idx), Admit: e.arrival}
		q.rec.recordQueueWait(now - e.ready)
		out := q.m.Init(c, s, int(e.idx))
		return exec.PullResult{Status: exec.Pulled, Out: out, Req: req}
	}
	for q.depth() > 0 {
		pos := q.ring[q.head&q.mask]
		q.head++
		c.Instr(costPop)
		idx := q.idxAt(pos)
		arrival := q.arrivals[pos]
		if q.router != nil && !q.router.pendingOrNew(idx) {
			continue
		}
		if q.deadline != 0 && now > arrival+q.deadline {
			q.timeoutEntry(idx, arrival, now)
			continue
		}
		req := exec.Request{Index: int(idx), Admit: arrival}
		q.rec.recordQueueWait(now - arrival)
		out := q.m.Init(c, s, int(idx))
		return exec.PullResult{Status: exec.Pulled, Out: out, Req: req}
	}
	wait, has := uint64(0), false
	if q.next < len(q.arrivals) {
		wait, has = q.arrivals[q.next], true
	}
	if q.extraHead < len(q.extras) {
		if r := q.extras[q.extraHead].ready; !has || r < wait {
			wait, has = r, true
		}
	}
	if has {
		return exec.PullResult{Status: exec.Wait, NextArrival: wait}
	}
	if q.router != nil && !q.closed {
		h := q.horizon
		if h <= now {
			h = now + 1
		}
		return exec.PullResult{Status: exec.Wait, NextArrival: h}
	}
	return exec.PullResult{Status: exec.Exhausted}
}

// Stage implements exec.Source.
func (q *QueueSource[S]) Stage(c *memsim.Core, s *S, stage int) exec.Outcome {
	return q.m.Stage(c, s, stage)
}

// Complete implements exec.Source: record admission→completion latency. With
// a router, only the first completion of a request counts; late duplicates
// (a hedge losing the race) are absorbed silently.
func (q *QueueSource[S]) Complete(req exec.Request, done uint64) {
	if q.router != nil && !q.router.onComplete(q.shard, int32(req.Index)) {
		return
	}
	q.rec.RecordLatency(done - req.Admit)
	q.lat.Record(done - req.Admit)
}

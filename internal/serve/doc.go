// Package serve is the streaming request-serving layer: it turns the
// repository's batch operators into a simulated service under open-loop
// load, which is the system shape the paper's flexibility argument is
// really about. A load generator emits requests at simulated-cycle arrival
// times (deterministic, Poisson or bursty on/off); a bounded admission
// queue absorbs them under a drop or block policy; a streaming engine —
// queue-fed AMAC (core.RunStream) or the batch-boundary GP/SPP/Baseline
// adapters (package exec) — pulls requests out and runs them as stage
// machines; and a latency recorder histograms every request's
// admission→completion cycles into p50/p95/p99/max, throughput and queue
// depth.
//
// The point of the layer is that the four techniques differ in WHEN a freed
// execution slot may admit the next request: AMAC refills per slot the
// moment a lookup completes, GP only at group boundaries, SPP only at
// static pipeline refill points, the baseline one request at a time. Under
// batch execution that difference is a few percent of cycles; under
// open-loop arrivals near saturation it is the difference between a flat
// p99 and an admission queue that grows without bound.
//
// Service runs a sharded multi-worker instance of the whole arrangement on
// exec.RunParallel: every worker owns a private core, machine, queue and
// recorder, so the simulation stays deterministic under -race.
//
// RunFaulty is the fault-tolerant variant of that sharded service: a
// single-goroutine coordinator steps every shard's engine over shared time
// slices so that host-side policy — package fault's scripted episodes
// (slowdown, freeze, crash, arrival spikes), per-request deadlines enforced
// in queue and in flight, capped-backoff retry, hedged re-dispatch with
// first-completion-wins dedup, a per-shard circuit breaker and the SLO
// brownout — can act between slices on the simulated clock. With no faults
// and no policies configured, RunFaulty is bit-identical to Run; a timed-out
// slot is drained through the engine's shrink machinery, never abandoned,
// and the Recorder splits outcomes into served/timed-out/failed/shed/dropped
// with retry/hedge/reroute activity counted separately.
package serve

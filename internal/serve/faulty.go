package serve

import (
	"fmt"

	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/fault"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
)

// FaultyOptions configures a fault-injected service run: the plain serving
// options plus a chaos schedule, per-request deadlines and the recovery
// policies layered on top of the shards.
type FaultyOptions struct {
	Options

	// Faults is the chaos schedule applied on the simulated clock (nil =
	// none). Slow episodes inflate the shard's off-chip latency, Freeze
	// pauses it, Crash aborts its in-flight and queued work and restarts it
	// with cold private caches, Spike compresses its arrival schedule.
	Faults *fault.Schedule

	// Deadline is the per-request cycle budget from arrival, enforced both
	// in the queue (expired entries are resolved at pop) and in flight
	// (the engine closes and drains the slot). Zero disables deadlines.
	Deadline uint64

	// Retry re-enqueues a request whose last live copy timed out or was
	// crash-dropped, with capped exponential backoff.
	Retry fault.RetryPolicy

	// Hedge dispatches a duplicate of a request still unresolved Delay
	// cycles after arrival to a healthy sibling shard; the first completion
	// wins and the loser is absorbed.
	Hedge fault.HedgePolicy

	// Breaker, when non-nil, gives every shard a circuit breaker fed each
	// round with the shard's copy outcomes; an open breaker redirects the
	// shard's arrivals to healthy siblings until probes succeed.
	Breaker *fault.BreakerConfig

	// SLO, when enabled, drives a per-shard brownout: the sliding p99
	// against the budget sheds request classes at admission.
	SLO fault.SLO

	// Slice is the coordinator round length in cycles (default 4096):
	// engines run concurrently in Slice-sized time slices, and fault
	// boundaries, hedging, breakers and brownouts apply at round edges.
	Slice uint64

	// Sched maps each worker's schedule positions to machine lookup
	// indices. Required whenever a recovery policy (retry, hedge, breaker)
	// is enabled: every worker's schedule must land in one shared index
	// space over replicated machines, with no index on two home shards, so
	// a request keeps its identity when a sibling serves it. Nil keeps the
	// per-worker identity mapping (valid only for unrouted runs).
	Sched [][]int32
}

// routed reports whether any cross-shard recovery policy is active.
func (o *FaultyOptions) routed() bool {
	return o.Retry.Enabled() || o.Hedge.Enabled() || o.Breaker != nil
}

// FaultInfo summarises a run's fault activity for one shard (or merged).
type FaultInfo struct {
	// Episodes is the number of fault episodes applied.
	Episodes int
	// MaxShedLevel is the highest brownout shed level reached.
	MaxShedLevel int
	// Breaker holds every circuit-breaker state transition, in cycle order
	// per shard; Transition carries the shard.
	Breaker []fault.Transition
}

// Merge folds another shard's fault summary into f.
func (f *FaultInfo) Merge(o *FaultInfo) {
	f.Episodes += o.Episodes
	if o.MaxShedLevel > f.MaxShedLevel {
		f.MaxShedLevel = o.MaxShedLevel
	}
	f.Breaker = append(f.Breaker, o.Breaker...)
}

// reqStatus is a routed request's lifecycle position.
type reqStatus uint8

const (
	reqUnseen reqStatus = iota
	reqPending
	reqServed
	reqDead
)

// reqState is the router's per-request record, indexed by machine lookup
// index (the request's global identity across replicas).
type reqState struct {
	status  reqStatus
	home    int16
	copies  int16 // live dispatches: queued or in flight anywhere
	attempt uint8
	hedged  bool
}

// router owns cross-shard recovery for a faulty service run: per-request
// copy tracking with first-completion-wins dedup, hedged re-dispatch,
// breaker-driven rerouting and retry re-enqueues. It is host-side policy
// state touched only from the coordinator goroutine, so every decision is
// deterministic for a fixed configuration.
type router struct {
	retry    fault.RetryPolicy
	hedge    fault.HedgePolicy
	breakers []*fault.Breaker // nil when breakers are disabled

	recs   []*Recorder
	trs    []*obs.CoreTrace
	down   []bool
	inject []func(extra)

	reqs        []reqState
	outstanding int

	// Per-round copy outcomes per executing shard, feeding the breakers.
	roundDone []int
	roundDead []int

	// Hedge scanning walks each home shard's arrival schedule directly, so
	// requests bound for a frozen or crashed shard are hedged even though
	// the shard never admitted them.
	scheds   [][]uint64
	schedIdx [][]int32
	hedgeCur []int
}

// state returns the request's record.
func (r *router) state(idx int32) *reqState { return &r.reqs[idx] }

// ensure registers the request under its home shard on first sight.
func (r *router) ensure(idx int32, home int) *reqState {
	st := &r.reqs[idx]
	if st.status == reqUnseen {
		st.status = reqPending
		st.home = int16(home)
	}
	return st
}

// pendingOrNew reports whether the request is still unresolved.
func (r *router) pendingOrNew(idx int32) bool {
	return r.reqs[idx].status <= reqPending
}

// healthy reports whether a shard can take traffic right now.
func (r *router) healthy(w int) bool {
	if r.down[w] {
		return false
	}
	if r.breakers != nil && r.breakers[w] != nil && r.breakers[w].State() != fault.StateClosed {
		return false
	}
	return true
}

// healthySibling picks a healthy shard other than home, rotating the start
// by the request index so recovered traffic spreads across siblings.
func (r *router) healthySibling(home int, idx int32) int {
	n := len(r.inject)
	if n <= 1 {
		return -1
	}
	start := int(uint32(idx)) % (n - 1)
	for d := 0; d < n-1; d++ {
		cand := (home + 1 + (start+d)%(n-1)) % n
		if cand != home && r.healthy(cand) {
			return cand
		}
	}
	return -1
}

// redirect is the breaker check at a home shard's admission: true means the
// arrival was dispatched to a healthy sibling instead.
func (r *router) redirect(home int, idx int32, arrival uint64) bool {
	st := r.ensure(idx, home)
	if st.status != reqPending {
		return false
	}
	if r.breakers == nil {
		return false
	}
	b := r.breakers[home]
	if b == nil || b.Admit() {
		return false
	}
	target := r.healthySibling(home, idx)
	if target < 0 {
		return false // nowhere healthier: admit locally and hope
	}
	st.copies++
	r.inject[target](extra{idx: idx, arrival: arrival, ready: arrival})
	r.trs[home].Reroute(arrival, int(idx), target)
	return true
}

// onAdmit notes a base arrival queued locally at its home shard.
func (r *router) onAdmit(home int, idx int32) {
	st := r.ensure(idx, home)
	if st.status == reqPending {
		st.copies++
	}
}

// onShed resolves a request rejected by the brownout at admission.
func (r *router) onShed(home int, idx int32) {
	st := r.ensure(idx, home)
	if st.status == reqPending {
		st.status = reqDead
		r.outstanding--
	}
}

// onDrop resolves a request rejected by a full Drop-policy queue.
func (r *router) onDrop(home int, idx int32) {
	r.onShed(home, idx)
}

// onCopyDead handles one dispatched copy dying at the executing shard — a
// queue-side deadline expiry, an in-flight timeout, or a crash drop. When it
// was the request's last live copy, the retry policy either re-enqueues the
// request (capped exponential backoff, preferring the healthy home) or the
// request is finally lost.
func (r *router) onCopyDead(shard int, idx int32, arrival, at uint64, kind exec.FailKind) {
	r.roundDead[shard]++
	st := r.state(idx)
	if st.status != reqPending {
		return
	}
	if st.copies > 0 {
		st.copies--
	}
	if st.copies > 0 {
		return // a sibling copy is still live
	}
	home := int(st.home)
	if r.retry.Enabled() && int(st.attempt) < r.retry.Max {
		st.attempt++
		st.copies++
		target := home
		if !r.healthy(home) {
			if s := r.healthySibling(home, idx); s >= 0 {
				target = s
			}
		}
		ready := at + r.retry.Delay(int(st.attempt))
		r.inject[target](extra{idx: idx, attempt: st.attempt, arrival: arrival, ready: ready})
		r.recs[home].Retried++
		r.trs[home].Requeue(at, int(idx), int(st.attempt))
		return
	}
	st.status = reqDead
	r.outstanding--
	if kind == exec.FailCrash {
		r.recs[home].Failed++
	} else {
		r.recs[home].TimedOut++
	}
}

// onComplete handles a completion at the executing shard; it reports whether
// this completion is the request's first (and should be recorded).
func (r *router) onComplete(shard int, idx int32) bool {
	r.roundDone[shard]++
	st := r.state(idx)
	if st.copies > 0 {
		st.copies--
	}
	if st.status != reqPending {
		if st.hedged {
			r.recs[st.home].HedgeWaste++
		}
		return false
	}
	st.status = reqServed
	r.outstanding--
	if st.hedged && shard != int(st.home) {
		r.recs[st.home].HedgeWins++
	}
	return true
}

// hedgeScan fires hedge duplicates at a round boundary: every scheduled
// request older than the hedge delay and still unresolved gets one duplicate
// on a healthy sibling.
func (r *router) hedgeScan(t uint64) {
	if !r.hedge.Enabled() {
		return
	}
	for home := range r.scheds {
		sched := r.scheds[home]
		cur := r.hedgeCur[home]
		for cur < len(sched) && sched[cur]+r.hedge.Delay <= t {
			arrival := sched[cur]
			idx := int32(cur)
			if r.schedIdx[home] != nil {
				idx = r.schedIdx[home][cur]
			}
			cur++
			st := r.ensure(idx, home)
			if st.status != reqPending || st.hedged {
				continue
			}
			target := r.healthySibling(home, idx)
			if target < 0 {
				continue
			}
			st.hedged = true
			st.copies++
			r.inject[target](extra{idx: idx, arrival: arrival, ready: t})
			r.recs[home].Hedged++
			r.trs[home].Hedge(t, int(idx), target)
		}
		r.hedgeCur[home] = cur
	}
}

// breakerRound feeds every breaker the round's copy outcomes and traces the
// resulting transitions.
func (r *router) breakerRound(t uint64) {
	if r.breakers == nil {
		return
	}
	for w, b := range r.breakers {
		before := len(b.Transitions())
		b.Observe(t, r.roundDone[w], r.roundDead[w])
		r.roundDone[w], r.roundDead[w] = 0, 0
		for _, tr := range b.Transitions()[before:] {
			r.trs[w].Breaker(t, int(tr.From), int(tr.To))
		}
	}
}

// RunFaulty executes the sharded streaming service under deterministic fault
// injection: the same share-nothing per-worker simulations as Run, but
// stepped by one coordinator goroutine in Slice-sized time slices of the
// simulated clock, so the chaos timeline, deadlines, hedging, breakers and
// brownout apply at identical simulated instants on every execution. The
// engine pauses charge nothing simulated, so a zero-fault, zero-policy
// RunFaulty is bit-identical to Run on the same configuration.
//
// RunFaulty requires the AMAC engine (timed-out and aborted slots reuse its
// shrink-drain machinery) and a non-adaptive configuration.
func RunFaulty[S any](opts FaultyOptions, workers []Worker[S]) Result {
	n := len(workers)
	if n == 0 {
		return Result{}
	}
	if opts.Technique != ops.AMAC {
		panic("serve: RunFaulty requires the AMAC engine")
	}
	if opts.Adaptive != nil {
		panic("serve: RunFaulty does not support adaptive control")
	}
	routed := opts.routed()
	if routed && opts.Sched == nil {
		panic("serve: recovery policies need a Sched map into a shared index space")
	}
	slice := opts.Slice
	if slice == 0 {
		slice = 4096
	}

	// Per-shard chaos timelines; spikes are pre-applied to the arrival
	// schedules (compression toward the episode start: a burst then a lull,
	// same total load).
	eps := make([][]fault.Episode, n)
	arr := make([][]uint64, n)
	for w := 0; w < n; w++ {
		if opts.Faults != nil {
			eps[w] = opts.Faults.ForShard(w)
		}
		arr[w] = fault.ApplySpikes(workers[w].Arrivals, eps[w])
	}

	pooled := make([]*memsim.PooledSystem, n)
	cores := make([]*memsim.Core, n)
	sources := make([]*QueueSource[S], n)
	trs := make([]*obs.CoreTrace, n)
	lws := make([]*obs.LatencyWindow, n)
	shared := opts.Hardware.ShareLLC(n)
	for w := 0; w < n; w++ {
		pooled[w] = memsim.AcquireSystem(shared)
		cores[w] = pooled[w].Core
		pooled[w].Sys.SetActiveThreads(n, cores[w])
		if opts.Prepare != nil {
			opts.Prepare(w, cores[w])
		}
		cores[w].ResetStats()
		cores[w].SetProfiler(opts.Profile.Core(fmt.Sprintf("worker %d", w)))
		sources[w] = NewQueueSource(workers[w].Machine, arr[w], opts.QueueCap, opts.Policy, nil)
		trs[w] = opts.Trace.Core(fmt.Sprintf("worker %d", w))
		if trs[w] == nil && opts.Metrics != nil {
			trs[w] = obs.NewDiscardCore()
		}
		sources[w].SetTrace(trs[w])
		lws[w] = obs.NewLatencyWindow(0)
		sources[w].SetLatencyWindow(lws[w])
		sources[w].SetDeadline(opts.Deadline)
		if opts.Sched != nil {
			sources[w].SetSchedule(opts.Sched[w])
		}
		if opts.Metrics != nil {
			cm := opts.Metrics.Core(fmt.Sprintf("worker %d", w))
			src, c, tr, lw := sources[w], cores[w], trs[w], lws[w]
			cm.Gauge("queue_depth", func() float64 { return float64(src.Depth()) })
			cm.Gauge("mshr_outstanding", func() float64 { return float64(c.MSHROutstanding()) })
			cm.Gauge("width", func() float64 { return float64(tr.Width()) })
			cm.Gauge("p99_window", func() float64 { return float64(lw.Quantile(0.99)) })
			var prev memsim.Stats
			cm.Gauge("stall_fraction", func() float64 {
				s := c.Stats()
				busy := (s.Cycles - prev.Cycles) - (s.IdleCycles - prev.IdleCycles)
				stall := s.StallCycles - prev.StallCycles
				prev = s
				if busy == 0 {
					return 0
				}
				return float64(stall) / float64(busy)
			})
			c.SetCycleHook(opts.Metrics.Interval(), cm.Tick)
		}
	}

	var brown []*fault.Brownout
	if opts.SLO.Enabled() {
		brown = make([]*fault.Brownout, n)
		for w := range brown {
			brown[w] = fault.NewBrownout(opts.SLO)
			sources[w].SetBrownout(brown[w])
		}
	}

	down := make([]bool, n)
	var r *router
	if routed {
		r = &router{
			retry:     opts.Retry,
			hedge:     opts.Hedge,
			recs:      make([]*Recorder, n),
			trs:       trs,
			down:      down,
			inject:    make([]func(extra), n),
			scheds:    arr,
			schedIdx:  opts.Sched,
			hedgeCur:  make([]int, n),
			roundDone: make([]int, n),
			roundDead: make([]int, n),
		}
		if opts.Breaker != nil {
			r.breakers = make([]*fault.Breaker, n)
			for w := range r.breakers {
				r.breakers[w] = fault.NewBreaker(w, *opts.Breaker)
			}
		}
		total := 0
		for w := 0; w < n; w++ {
			r.recs[w] = sources[w].Recorder()
			src := sources[w]
			r.inject[w] = func(e extra) { src.inject(e) }
			r.outstanding += len(arr[w])
			for _, idx := range opts.Sched[w][:len(arr[w])] {
				if int(idx) >= total {
					total = int(idx) + 1
				}
			}
			sources[w].bind(r, w)
		}
		r.reqs = make([]reqState, total)
	}

	engines := make([]*core.StreamEngine[S], n)
	for w := 0; w < n; w++ {
		engines[w] = core.NewStreamEngine(cores[w], sources[w],
			core.Options{Width: opts.Window, Trace: trs[w], Deadline: opts.Deadline})
	}

	timelines := make([]*fault.Timeline, n)
	for w := 0; w < n; w++ {
		timelines[w] = fault.NewTimeline(eps[w])
	}
	downUntil := make([]uint64, n)
	engDone := make([]bool, n)
	infos := make([]FaultInfo, n)
	closed := false

	baseLat := cores[0].MemLatency()
	for {
		allDone := true
		for w := 0; w < n; w++ {
			if !engDone[w] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		var t uint64
		if closed {
			// Everything is resolved: let the engines drain unbounded.
			t = ^uint64(0)
		} else {
			t = timelinesNext(cores, slice)
		}
		// Fault boundaries first, in shard order, then thaw.
		for w := 0; w < n; w++ {
			w := w
			timelines[w].Advance(t, func(ep fault.Episode, begin bool) {
				switch ep.Kind {
				case fault.Slow:
					if begin {
						infos[w].Episodes++
						scaled := uint64(float64(baseLat) * ep.Factor)
						cores[w].SetMemLatency(scaled)
						trs[w].Fault(ep.Start, ep.Dur, int(ep.Kind), int64(ep.Factor*1000))
					} else {
						cores[w].SetMemLatency(0)
					}
				case fault.Freeze:
					if begin {
						infos[w].Episodes++
						down[w] = true
						downUntil[w] = ep.End()
						trs[w].Fault(ep.Start, ep.Dur, int(ep.Kind), 1000)
					}
				case fault.Crash:
					if begin {
						infos[w].Episodes++
						engines[w].Abort()
						sources[w].failQueued(cores[w].Cycle())
						cores[w].FlushPrivate()
						down[w] = true
						downUntil[w] = ep.End()
						trs[w].Fault(ep.Start, ep.Dur, int(ep.Kind), 1000)
					}
				case fault.Spike:
					if begin {
						infos[w].Episodes++
						trs[w].Fault(ep.Start, ep.Dur, int(ep.Kind), int64(ep.Factor*1000))
					}
				}
			})
			if down[w] && downUntil[w] <= t {
				down[w] = false
				if !engDone[w] && cores[w].Cycle() < downUntil[w] {
					// The shard did nothing while down; its clock jumps to
					// the episode end as pure idle time, charged under the
					// "down" frame to keep it apart from queue idle.
					p := cores[w].Profiler()
					p.Push(p.Frame("down"))
					cores[w].AdvanceTo(downUntil[w])
					p.Pop()
				}
			}
		}
		// Run every live engine up to the round edge, in shard order.
		for w := 0; w < n; w++ {
			if engDone[w] || down[w] {
				continue
			}
			sources[w].setHorizon(t)
			engDone[w] = engines[w].Run(t)
		}
		// Recovery policies tick at the round edge. After close every request
		// is resolved, so the unbounded drain round has nothing to route —
		// ticking it would only stamp sentinel-time transitions into the
		// breaker log.
		if r != nil && !closed {
			r.hedgeScan(t)
			r.breakerRound(t)
		}
		if brown != nil {
			for w := 0; w < n; w++ {
				lvl, changed := brown[w].Observe(lws[w].Quantile(0.99))
				if changed {
					trs[w].Brownout(t, lvl)
				}
				if lvl > infos[w].MaxShedLevel {
					infos[w].MaxShedLevel = lvl
				}
			}
		}
		if r != nil && !closed && r.outstanding == 0 {
			scheduled := true
			for w := 0; w < n; w++ {
				if !sources[w].scheduleDone() {
					scheduled = false
					break
				}
			}
			if scheduled {
				closed = true
				for w := 0; w < n; w++ {
					sources[w].closeRouted()
				}
			}
		}
	}

	res := Result{Faults: &FaultInfo{}}
	sched := make([]core.RunStats, n)
	perStats := make([]memsim.Stats, n)
	for w := 0; w < n; w++ {
		sched[w] = engines[w].Stats()
		engines[w].Close()
		perStats[w] = cores[w].Stats()
	}
	res.Stats = memsim.MergeParallel(perStats)
	res.Sched = core.MergeRunStats(sched)
	for w := 0; w < n; w++ {
		if r != nil && r.breakers != nil {
			infos[w].Breaker = append(infos[w].Breaker, r.breakers[w].Transitions()...)
		}
		info := infos[w]
		wr := WorkerResult{
			Stats:   perStats[w],
			Latency: sources[w].Recorder(),
			Sched:   sched[w],
			Faults:  &info,
		}
		res.PerWorker = append(res.PerWorker, wr)
		res.Latency.Merge(sources[w].Recorder())
		res.Faults.Merge(&info)
		sources[w].Close()
		cores[w].SetCycleHook(0, nil)
		cores[w].SetProfiler(nil)
		pooled[w].Release()
	}
	return res
}

// timelinesNext picks the next round edge: one slice past the most advanced
// live core (so rounds always make progress even after long idle jumps).
func timelinesNext(cores []*memsim.Core, slice uint64) uint64 {
	var maxC uint64
	for _, c := range cores {
		if cy := c.Cycle(); cy > maxC {
			maxC = cy
		}
	}
	return (maxC/slice + 1) * slice
}

package serve

import (
	"math"
	"testing"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose reported maximum is >= the
	// value and within 12.5% of it (exact below 2*subBuckets).
	values := []uint64{0, 1, 5, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxUint64 / 3}
	prev := -1
	for _, v := range values {
		b := bucketOf(v)
		if b < prev {
			// values chosen increasing: buckets must be non-decreasing
			t.Fatalf("bucketOf(%d) = %d not monotone (prev %d)", v, b, prev)
		}
		prev = b
		maxV := bucketMax(b)
		if maxV < v {
			t.Fatalf("bucketMax(bucketOf(%d)) = %d < value", v, maxV)
		}
		if v >= 2*subBuckets && float64(maxV) > float64(v)*1.125+1 {
			t.Fatalf("bucketMax(bucketOf(%d)) = %d overshoots by more than 12.5%%", v, maxV)
		}
		if v < 2*subBuckets && maxV != v {
			t.Fatalf("small values must be exact: bucketMax(bucketOf(%d)) = %d", v, maxV)
		}
	}
}

func TestBucketsContiguous(t *testing.T) {
	// Consecutive values never skip backwards, and every bucket index stays
	// inside the array.
	prev := 0
	for v := uint64(0); v < 1<<16; v++ {
		b := bucketOf(v)
		if b < prev || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d (prev %d, numBuckets %d)", v, b, prev, numBuckets)
		}
		prev = b
	}
	if b := bucketOf(math.MaxUint64); b >= numBuckets {
		t.Fatalf("bucketOf(MaxUint64) = %d out of range", b)
	}
}

func TestRecorderQuantiles(t *testing.T) {
	var r Recorder
	// 100 requests: 90 at ~100 cycles, 9 at ~1000, 1 at 100000.
	for i := 0; i < 90; i++ {
		r.RecordLatency(100)
	}
	for i := 0; i < 9; i++ {
		r.RecordLatency(1000)
	}
	r.RecordLatency(100000)

	within := func(got, want uint64) bool {
		return float64(got) >= float64(want) && float64(got) <= float64(want)*1.125+1
	}
	if !within(r.P50(), 100) {
		t.Fatalf("p50 = %d, want ~100", r.P50())
	}
	if !within(r.P95(), 1000) {
		t.Fatalf("p95 = %d, want ~1000", r.P95())
	}
	if !within(r.Quantile(1), 100000) {
		t.Fatalf("q100 = %d, want ~100000", r.Quantile(1))
	}
	if r.MaxLatency != 100000 {
		t.Fatalf("max = %d", r.MaxLatency)
	}
	if mean := r.MeanLatency(); mean < 100 || mean > 1200 {
		t.Fatalf("mean = %f out of range", mean)
	}
}

func TestRecorderQuantileNeverExceedsMax(t *testing.T) {
	// A population whose max is not its bucket's upper bound: the quantile
	// must clamp to the observed max, never report the bucket bound.
	var r Recorder
	for i := 0; i < 100; i++ {
		r.RecordLatency(100) // bucketMax(bucketOf(100)) = 103
	}
	if r.P99() != 100 || r.Quantile(1) != 100 {
		t.Fatalf("p99 = %d, q100 = %d, want the observed max 100", r.P99(), r.Quantile(1))
	}
	if r.P50() > r.MaxLatency {
		t.Fatalf("p50 %d exceeds max %d", r.P50(), r.MaxLatency)
	}
}

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	if r.P50() != 0 || r.P99() != 0 || r.MeanLatency() != 0 || r.MeanDepth() != 0 || r.DropFraction() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	if r.ThroughputPerCycle(0) != 0 {
		t.Fatal("zero elapsed must not divide by zero")
	}
}

func TestRecorderMerge(t *testing.T) {
	var a, b Recorder
	for i := 0; i < 50; i++ {
		a.RecordLatency(10)
		b.RecordLatency(1000)
	}
	a.Offered, b.Offered = 60, 50
	b.recordDrop()
	a.sampleDepth(3)
	b.sampleDepth(9)

	var merged Recorder
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Completed != 100 || merged.Offered != 110 || merged.Dropped != 1 {
		t.Fatalf("merged counters wrong: %+v", merged)
	}
	if merged.MaxLatency != 1000 || merged.DepthMax != 9 {
		t.Fatalf("merged maxima wrong: %+v", merged)
	}
	// Median of the merged population sits between the two groups' values.
	if p50 := merged.P50(); p50 < 10 || p50 > 1125 {
		t.Fatalf("merged p50 = %d", p50)
	}
	// Merged histogram holds the union: p25-ish is ~10, p75-ish ~1000.
	if q := merged.Quantile(0.25); q > 11 {
		t.Fatalf("q25 = %d, want ~10", q)
	}
	if q := merged.Quantile(0.9); q < 1000 {
		t.Fatalf("q90 = %d, want ~1000", q)
	}
}

// TestRecorderSingleSample: every quantile of a one-sample run is that
// sample (exactly below 16 cycles, within the bucket bound above), and the
// rank-1 clamp keeps q=0 from reading an empty prefix.
func TestRecorderSingleSample(t *testing.T) {
	for _, lat := range []uint64{0, 1, 7, 1000, 1 << 40} {
		var r Recorder
		r.RecordLatency(lat)
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			got := r.Quantile(q)
			if got != lat {
				// Above the exact range the bucket upper bound applies, but
				// the max clamp must still pin it to the recorded value.
				t.Fatalf("1-sample Quantile(%.2f) = %d, want %d", q, got, lat)
			}
		}
		if r.MeanLatency() != float64(lat) || r.MaxLatency != lat {
			t.Fatalf("1-sample mean/max = %f/%d, want %d", r.MeanLatency(), r.MaxLatency, lat)
		}
	}
}

// TestRecorderAllDropped: a run in which every offered request was rejected
// has no latency population — quantiles and means are zero, drop fraction
// is one, and merging it into a live recorder adds only drop counters.
func TestRecorderAllDropped(t *testing.T) {
	var r Recorder
	for i := 0; i < 25; i++ {
		r.Offered++
		r.recordDrop()
	}
	if r.Dropped != 25 || r.Completed != 0 {
		t.Fatalf("counters %+v", r)
	}
	if r.DropFraction() != 1 {
		t.Fatalf("drop fraction = %f, want 1", r.DropFraction())
	}
	if r.P50() != 0 || r.P99() != 0 || r.Quantile(1) != 0 || r.MeanLatency() != 0 || r.MeanQueueWait() != 0 {
		t.Fatal("all-dropped run must report zero latencies")
	}

	var live Recorder
	live.Offered = 10
	for i := 0; i < 10; i++ {
		live.RecordLatency(100)
	}
	live.Merge(&r)
	if live.Completed != 10 || live.Dropped != 25 || live.Offered != 35 {
		t.Fatalf("merge with all-dropped: %+v", live)
	}
	if live.P99() != 100 {
		t.Fatalf("latency population polluted by drops: p99 = %d", live.P99())
	}
}

// TestRecorderMergeEmpty: merging empty recorders — empty into empty, empty
// into live, live into empty — never changes the live population.
func TestRecorderMergeEmpty(t *testing.T) {
	var a, b Recorder
	a.Merge(&b)
	if a.Completed != 0 || a.P99() != 0 || a.DepthMax != 0 {
		t.Fatalf("empty∪empty = %+v", a)
	}

	var live Recorder
	live.Offered = 3
	live.RecordLatency(10)
	live.RecordLatency(20)
	live.RecordLatency(30)
	live.sampleDepth(2)
	before := live

	var empty Recorder
	live.Merge(&empty)
	if live != before {
		t.Fatalf("merging an empty recorder changed the live one:\n%+v\n%+v", live, before)
	}

	var target Recorder
	target.Merge(&live)
	if target != live {
		t.Fatalf("merging into an empty recorder must copy the population:\n%+v\n%+v", target, live)
	}
}

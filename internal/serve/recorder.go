package serve

import (
	"fmt"
	"math/bits"
)

// Recorder accumulates per-request serving statistics: an HDR-style
// log-linear latency histogram (8 sub-buckets per power of two, so every
// recorded quantile is within 12.5% of the true value), completion and drop
// counts, queue-wait time and queue-depth samples. Recorders are
// worker-private during a run and merged afterwards; Merge is exact because
// every field is a sum, max or histogram.
type Recorder struct {
	// Offered counts requests presented to the queue (admitted or dropped).
	Offered uint64
	// Completed counts requests that finished execution.
	Completed uint64
	// Dropped counts requests rejected by a full Drop-policy queue.
	Dropped uint64

	// Fault-tolerant serving outcomes (all zero in plain runs). Recovery
	// counters live on a request's home shard; latency is recorded on the
	// shard that actually served it.

	// TimedOut counts requests that exceeded their deadline (queued or in
	// flight) and were not recovered by a retry.
	TimedOut uint64
	// Failed counts requests lost to a shard crash and not recovered.
	Failed uint64
	// Shed counts requests rejected at admission by the SLO brownout.
	Shed uint64
	// Retried counts retry re-dispatches issued for this shard's requests.
	Retried uint64
	// Hedged counts hedge duplicates issued for this shard's requests.
	Hedged uint64
	// HedgeWins counts requests whose hedge duplicate completed first.
	HedgeWins uint64
	// HedgeWaste counts duplicate completions that arrived after the request
	// was already resolved.
	HedgeWaste uint64
	// Rerouted counts arrivals redirected to a sibling shard by this shard's
	// open circuit breaker.
	Rerouted uint64

	// SumLatency and MaxLatency summarise admission→completion cycles.
	SumLatency uint64
	MaxLatency uint64
	// SumQueueWait accumulates the cycles requests spent queued before an
	// engine pulled them (a component of latency, not an addition to it).
	SumQueueWait uint64

	// DepthSamples/DepthSum/DepthMax summarise queue depth observed at each
	// pull.
	DepthSamples uint64
	DepthSum     uint64
	DepthMax     int

	buckets [numBuckets]uint64
}

// subBucketBits gives 1<<subBucketBits sub-buckets per octave: relative
// quantile error is at most 1/2^subBucketBits.
const subBucketBits = 3

const subBuckets = 1 << subBucketBits

// numBuckets covers every uint64 value: values below 2*subBuckets are exact,
// above that each octave contributes subBuckets buckets.
const numBuckets = 2*subBuckets + (64-subBucketBits-1)*subBuckets

// bucketOf maps a latency to its histogram bucket.
func bucketOf(v uint64) int {
	if v < 2*subBuckets {
		return int(v)
	}
	// v has bits.Len64(v) significant bits; keep the top subBucketBits+1 of
	// them as the sub-bucket index within the octave.
	shift := uint(bits.Len64(v) - subBucketBits - 1)
	return int(shift)*subBuckets + int(v>>shift)
}

// bucketMax returns the largest value a bucket holds (the value reported for
// quantiles that land in it).
func bucketMax(b int) uint64 {
	if b < 2*subBuckets {
		return uint64(b)
	}
	shift := uint(b/subBuckets) - 1
	sub := uint64(b%subBuckets) + subBuckets
	return (sub+1)<<shift - 1
}

// RecordLatency folds one completed request's admission→completion cycles.
func (r *Recorder) RecordLatency(lat uint64) {
	r.Completed++
	r.SumLatency += lat
	if lat > r.MaxLatency {
		r.MaxLatency = lat
	}
	r.buckets[bucketOf(lat)]++
}

// recordQueueWait notes the cycles one request waited between admission and
// being pulled by the engine.
func (r *Recorder) recordQueueWait(wait uint64) {
	r.SumQueueWait += wait
}

// recordDrop notes one rejected request.
func (r *Recorder) recordDrop() {
	r.Dropped++
}

// sampleDepth notes the queue depth observed at one engine pull.
func (r *Recorder) sampleDepth(depth int) {
	r.DepthSamples++
	r.DepthSum += uint64(depth)
	if depth > r.DepthMax {
		r.DepthMax = depth
	}
}

// Quantile returns the latency value at or below which fraction q of
// completed requests finished (q clamped to [0, 1]); zero when nothing
// completed. The answer is the upper bound of the histogram bucket holding
// the target rank, so it is exact for latencies below 16 cycles and within
// 12.5% above.
func (r *Recorder) Quantile(q float64) uint64 {
	if r.Completed == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(r.Completed))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, n := range r.buckets {
		seen += n
		if seen >= rank {
			// The bucket's upper bound can exceed the largest latency that
			// actually landed in it; never report a quantile above the max.
			if v := bucketMax(b); v < r.MaxLatency {
				return v
			}
			return r.MaxLatency
		}
	}
	return r.MaxLatency
}

// P50 is the median admission→completion latency in cycles.
func (r *Recorder) P50() uint64 { return r.Quantile(0.50) }

// P95 is the 95th-percentile latency in cycles.
func (r *Recorder) P95() uint64 { return r.Quantile(0.95) }

// P99 is the 99th-percentile latency in cycles.
func (r *Recorder) P99() uint64 { return r.Quantile(0.99) }

// MeanLatency is the average admission→completion latency in cycles.
func (r *Recorder) MeanLatency() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.SumLatency) / float64(r.Completed)
}

// MeanQueueWait is the average cycles a completed request spent queued.
func (r *Recorder) MeanQueueWait() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.SumQueueWait) / float64(r.Completed)
}

// MeanDepth is the average queue depth observed across engine pulls.
func (r *Recorder) MeanDepth() float64 {
	if r.DepthSamples == 0 {
		return 0
	}
	return float64(r.DepthSum) / float64(r.DepthSamples)
}

// DropFraction is the fraction of offered requests that were rejected.
func (r *Recorder) DropFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// ThroughputPerCycle converts completions over an elapsed cycle count into
// requests per cycle (callers scale by the clock to get requests/second).
func (r *Recorder) ThroughputPerCycle(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(r.Completed) / float64(elapsed)
}

// Merge folds another recorder (typically another worker's) into r.
func (r *Recorder) Merge(other *Recorder) {
	r.Offered += other.Offered
	r.Completed += other.Completed
	r.Dropped += other.Dropped
	r.TimedOut += other.TimedOut
	r.Failed += other.Failed
	r.Shed += other.Shed
	r.Retried += other.Retried
	r.Hedged += other.Hedged
	r.HedgeWins += other.HedgeWins
	r.HedgeWaste += other.HedgeWaste
	r.Rerouted += other.Rerouted
	r.SumLatency += other.SumLatency
	if other.MaxLatency > r.MaxLatency {
		r.MaxLatency = other.MaxLatency
	}
	r.SumQueueWait += other.SumQueueWait
	r.DepthSamples += other.DepthSamples
	r.DepthSum += other.DepthSum
	if other.DepthMax > r.DepthMax {
		r.DepthMax = other.DepthMax
	}
	for b := range other.buckets {
		r.buckets[b] += other.buckets[b]
	}
}

// String renders a one-line summary for logs and examples. Fault-tolerance
// counters appear only when nonzero, so clean runs render exactly as before.
func (r *Recorder) String() string {
	s := fmt.Sprintf("completed=%d dropped=%d p50=%d p95=%d p99=%d max=%d meanQwait=%.0f maxDepth=%d",
		r.Completed, r.Dropped, r.P50(), r.P95(), r.P99(), r.MaxLatency, r.MeanQueueWait(), r.DepthMax)
	if r.TimedOut+r.Failed+r.Shed+r.Retried+r.Hedged+r.Rerouted > 0 {
		s += fmt.Sprintf(" timedOut=%d failed=%d shed=%d retried=%d hedged=%d rerouted=%d",
			r.TimedOut, r.Failed, r.Shed, r.Retried, r.Hedged, r.Rerouted)
	}
	return s
}

package serve

import (
	"fmt"
	"math"

	"amac/internal/xrand"
)

// ArrivalProcess generates the open-loop arrival schedule of a load
// generator: the absolute simulated cycles at which requests enter the
// system, independent of how fast the service drains them (that
// independence is what makes the load open-loop, and what lets queues grow
// when a technique cannot keep up).
type ArrivalProcess interface {
	// Name identifies the process in reports ("deterministic", "poisson",
	// "bursty").
	Name() string
	// Schedule returns n non-decreasing arrival cycles. It is deterministic
	// given the seed.
	Schedule(n int, seed uint64) []uint64
}

// Deterministic spaces arrivals exactly Period cycles apart: request i
// arrives at cycle i*Period. The most benign traffic shape — any queueing it
// causes is due purely to the service's own refill restrictions.
type Deterministic struct {
	// Period is the inter-arrival gap in cycles (minimum 1).
	Period uint64
}

// Name implements ArrivalProcess.
func (d Deterministic) Name() string { return "deterministic" }

// Schedule implements ArrivalProcess.
func (d Deterministic) Schedule(n int, seed uint64) []uint64 {
	period := d.Period
	if period < 1 {
		period = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) * period
	}
	return out
}

// Poisson draws independent exponential inter-arrival gaps with the given
// mean, the classic memoryless traffic model: the same long-run rate as
// Deterministic{MeanPeriod} but with natural short-term bursts that probe a
// service's headroom.
type Poisson struct {
	// MeanPeriod is the mean inter-arrival gap in cycles (minimum 1).
	MeanPeriod float64
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return "poisson" }

// Schedule implements ArrivalProcess.
func (p Poisson) Schedule(n int, seed uint64) []uint64 {
	mean := p.MeanPeriod
	if mean < 1 {
		mean = 1
	}
	rng := xrand.New(seed)
	out := make([]uint64, n)
	t := 0.0
	for i := range out {
		// Inverse-CDF sampling; 1-U is in (0, 1] so the log is finite.
		t += -mean * math.Log(1-rng.Float64())
		out[i] = uint64(t)
	}
	return out
}

// Bursty is an on/off modulated process: bursts of BurstLen requests spaced
// Period apart, separated by Off idle cycles. Its long-run rate is lower
// than 1/Period, but within a burst the instantaneous rate is the full
// 1/Period — the adversarial shape for batch-boundary refill, because a
// burst lands while the previous group is still draining.
type Bursty struct {
	// Period is the intra-burst inter-arrival gap in cycles (minimum 1).
	Period uint64
	// BurstLen is the number of requests per burst (minimum 1).
	BurstLen int
	// Off is the idle gap between bursts, in cycles.
	Off uint64
}

// Name implements ArrivalProcess.
func (b Bursty) Name() string { return "bursty" }

// Schedule implements ArrivalProcess.
func (b Bursty) Schedule(n int, seed uint64) []uint64 {
	period := b.Period
	if period < 1 {
		period = 1
	}
	burst := b.BurstLen
	if burst < 1 {
		burst = 1
	}
	out := make([]uint64, n)
	t := uint64(0)
	for i := range out {
		out[i] = t
		if (i+1)%burst == 0 {
			t += period + b.Off
		} else {
			t += period
		}
	}
	return out
}

// ParseArrivals builds the named process at the given mean inter-arrival
// period: "deterministic", "poisson" (the default for empty input), or
// "bursty" (bursts of 32 at half the period, idle between bursts so the
// long-run rate matches the requested period).
func ParseArrivals(name string, period float64) (ArrivalProcess, error) {
	if period < 1 {
		period = 1
	}
	switch name {
	case "", "poisson":
		return Poisson{MeanPeriod: period}, nil
	case "deterministic":
		return Deterministic{Period: uint64(period + 0.5)}, nil
	case "bursty":
		const burst = 32
		intra := uint64(period/2 + 0.5)
		if intra < 1 {
			intra = 1
		}
		// Choose the off gap so the long-run rate still averages one request
		// per `period` cycles: burst*period = burst*intra + off.
		off := uint64(burst*period+0.5) - burst*intra
		return Bursty{Period: intra, BurstLen: burst, Off: off}, nil
	default:
		return nil, fmt.Errorf("serve: unknown arrival process %q (want deterministic, poisson or bursty)", name)
	}
}

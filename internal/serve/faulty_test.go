package serve_test

import (
	"reflect"
	"testing"

	"amac/internal/core"
	"amac/internal/exec/exectest"
	"amac/internal/fault"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/serve"
)

// TestStreamEnginePauseResumeBitIdentical pins the resumable engine's core
// contract: running in arbitrary time slices is bit-identical to one
// uninterrupted run, because pauses happen between slot visits and charge
// nothing simulated.
func TestStreamEnginePauseResumeBitIdentical(t *testing.T) {
	const n = 200
	run := func(chunk uint64) (memsim.Stats, core.RunStats, serve.Recorder) {
		m := exectest.NewChainMachine(chainLengths(n, 3), 4)
		arrivals := serve.Deterministic{Period: 150}.Schedule(n, 1)
		src := serve.NewQueueSource[exectest.ChainState](m, arrivals, 0, serve.Block, nil)
		c := newCore()
		if chunk == 0 {
			core.RunStream(c, src, core.Options{Width: 6})
		} else {
			e := core.NewStreamEngine[exectest.ChainState](c, src, core.Options{Width: 6})
			for limit := chunk; !e.Run(limit); limit += chunk {
			}
			e.Close()
		}
		return c.Stats(), core.RunStats{}, *src.Recorder()
	}
	wantStats, _, wantRec := run(0)
	for _, chunk := range []uint64{97, 1000, 4096} {
		gotStats, _, gotRec := run(chunk)
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("chunk %d: stats diverged:\n got %+v\nwant %+v", chunk, gotStats, wantStats)
		}
		if !reflect.DeepEqual(gotRec, wantRec) {
			t.Fatalf("chunk %d: recorder diverged", chunk)
		}
	}
}

// TestStreamEngineDeadlineNoSlotLeak drives an engine with a deadline tight
// enough to expire requests both in the queue and in flight, and asserts the
// slot-leak invariant: every initiated request is accounted exactly once.
func TestStreamEngineDeadlineNoSlotLeak(t *testing.T) {
	const n = 150
	m := exectest.NewChainMachine(chainLengths(n, 6), 7)
	// Everything arrives at once: most of the backlog blows the deadline.
	src := serve.NewQueueSource[exectest.ChainState](m, make([]uint64, n), 0, serve.Block, nil)
	src.SetDeadline(3000)
	c := newCore()
	e := core.NewStreamEngine[exectest.ChainState](c, src, core.Options{Width: 4, Deadline: 3000})
	e.Run(^uint64(0))
	stats := e.Stats()
	e.Close()
	rec := src.Recorder()
	if stats.TimedOut == 0 {
		t.Fatal("expected in-flight deadline expiries")
	}
	if stats.Initiated != stats.Completed+stats.TimedOut+stats.Aborted {
		t.Fatalf("slot leak: initiated=%d completed=%d timedOut=%d aborted=%d",
			stats.Initiated, stats.Completed, stats.TimedOut, stats.Aborted)
	}
	if rec.Completed+rec.TimedOut != n {
		t.Fatalf("request leak: completed=%d timedOut=%d, want sum %d", rec.Completed, rec.TimedOut, n)
	}
	if rec.TimedOut == 0 || rec.Completed == 0 {
		t.Fatalf("want a mix of outcomes, got completed=%d timedOut=%d", rec.Completed, rec.TimedOut)
	}
}

// faultyWorkers builds W replica workers over one shared index space of n
// requests: worker w serves positions k -> index k*W+w at the given period.
func faultyWorkers(n, W int, period uint64, hops int) ([]serve.Worker[exectest.ChainState], [][]int32) {
	workers := make([]serve.Worker[exectest.ChainState], W)
	sched := make([][]int32, W)
	for w := 0; w < W; w++ {
		nw := n / W
		arrivals := serve.Deterministic{Period: period}.Schedule(nw, uint64(w+1))
		idx := make([]int32, nw)
		for k := 0; k < nw; k++ {
			idx[k] = int32(k*W + w)
		}
		workers[w] = serve.Worker[exectest.ChainState]{
			Machine:  exectest.NewChainMachine(chainLengths(n, hops), hops+1),
			Arrivals: arrivals,
		}
		sched[w] = idx
	}
	return workers, sched
}

// TestRunFaultyZeroConfigMatchesRun pins the coordinator's cornerstone: with
// no faults and no recovery policies, RunFaulty's time-sliced execution is
// bit-identical to Run's free-running workers.
func TestRunFaultyZeroConfigMatchesRun(t *testing.T) {
	build := func() []serve.Worker[exectest.ChainState] {
		ws, _ := faultyWorkers(160, 2, 400, 3)
		return ws
	}
	opts := serve.Options{
		Hardware:  memsim.XeonX5670(),
		Technique: ops.AMAC,
		Window:    6,
	}
	want := serve.Run(opts, build())
	got := serve.RunFaulty(serve.FaultyOptions{Options: opts}, build())
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("stats diverged:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Latency, want.Latency) {
		t.Fatalf("latency recorders diverged:\n got %v\nwant %v", &got.Latency, &want.Latency)
	}
	if !reflect.DeepEqual(got.Sched, want.Sched) {
		t.Fatalf("scheduler stats diverged:\n got %+v\nwant %+v", got.Sched, want.Sched)
	}
	for w := range want.PerWorker {
		if !reflect.DeepEqual(got.PerWorker[w].Stats, want.PerWorker[w].Stats) {
			t.Fatalf("worker %d stats diverged", w)
		}
	}
	if got.Faults == nil || got.Faults.Episodes != 0 {
		t.Fatalf("faults summary = %+v, want zero episodes", got.Faults)
	}
}

// TestRunFaultySlowShardRecovery injects a long 8x memory-latency episode on
// shard 0 and checks that deadlines, hedging and the breaker recover the
// traffic: every request is accounted exactly once, duplicates dedup, and
// the run is deterministic.
func TestRunFaultySlowShardRecovery(t *testing.T) {
	const n, W = 240, 3
	run := func() serve.Result {
		workers, sched := faultyWorkers(n, W, 500, 3)
		return serve.RunFaulty(serve.FaultyOptions{
			Options: serve.Options{
				Hardware:  memsim.XeonX5670(),
				Technique: ops.AMAC,
				Window:    6,
			},
			Faults: &fault.Schedule{Episodes: []fault.Episode{
				{Kind: fault.Slow, Shard: 0, Start: 4000, Dur: 30000, Factor: 8},
			}},
			Deadline: 2500,
			Retry:    fault.RetryPolicy{Max: 2, Backoff: 500},
			Hedge:    fault.HedgePolicy{Delay: 1500},
			Breaker:  &fault.BreakerConfig{Cooldown: 8192, MinSamples: 4, Alpha: 0.5},
			Slice:    1024,
			Sched:    sched,
		}, workers)
	}
	res := run()
	rec := res.Latency
	total := rec.Completed + rec.TimedOut + rec.Failed + rec.Shed + rec.Dropped
	if total != n {
		t.Fatalf("request accounting: completed=%d timedOut=%d failed=%d shed=%d dropped=%d, sum %d want %d",
			rec.Completed, rec.TimedOut, rec.Failed, rec.Shed, rec.Dropped, total, n)
	}
	if rec.Offered != n {
		t.Fatalf("offered=%d, want %d", rec.Offered, n)
	}
	if res.Sched.Initiated != res.Sched.Completed+res.Sched.TimedOut+res.Sched.Aborted {
		t.Fatalf("slot leak: %+v", res.Sched)
	}
	if rec.Hedged == 0 {
		t.Fatal("the slow episode should have fired hedges")
	}
	if rec.HedgeWins+rec.HedgeWaste > rec.Hedged {
		t.Fatalf("hedge outcomes exceed issues: wins=%d waste=%d issued=%d",
			rec.HedgeWins, rec.HedgeWaste, rec.Hedged)
	}
	if res.Faults == nil || res.Faults.Episodes != 1 {
		t.Fatalf("faults = %+v, want one episode", res.Faults)
	}
	// The whole degraded run must be deterministic.
	again := run()
	if !reflect.DeepEqual(res.Latency, again.Latency) || !reflect.DeepEqual(res.Stats, again.Stats) {
		t.Fatal("faulty runs must be bit-identical across executions")
	}
	if !reflect.DeepEqual(res.Faults, again.Faults) {
		t.Fatalf("fault summaries diverged: %+v vs %+v", res.Faults, again.Faults)
	}
}

// TestRunFaultyCrashRetries crashes a shard mid-run: its in-flight slots
// abort, its queue drops, and the retry policy re-dispatches the lost
// requests to siblings so most of them still complete.
func TestRunFaultyCrashRetries(t *testing.T) {
	const n, W = 160, 2
	workers, sched := faultyWorkers(n, W, 600, 3)
	res := serve.RunFaulty(serve.FaultyOptions{
		Options: serve.Options{
			Hardware:  memsim.XeonX5670(),
			Technique: ops.AMAC,
			Window:    6,
		},
		Faults: &fault.Schedule{Episodes: []fault.Episode{
			{Kind: fault.Crash, Shard: 1, Start: 8000, Dur: 16000},
		}},
		Retry: fault.RetryPolicy{Max: 3, Backoff: 1000},
		Slice: 2048,
		Sched: sched,
	}, workers)
	rec := res.Latency
	if res.Sched.Aborted == 0 {
		t.Fatal("the crash should have aborted in-flight slots")
	}
	if rec.Retried == 0 {
		t.Fatal("crash-dropped requests should have been retried")
	}
	if rec.Completed+rec.TimedOut+rec.Failed != n {
		t.Fatalf("accounting: completed=%d timedOut=%d failed=%d, want sum %d",
			rec.Completed, rec.TimedOut, rec.Failed, n)
	}
	if rec.Completed < uint64(n*9/10) {
		t.Fatalf("retries should recover most traffic: completed=%d of %d", rec.Completed, n)
	}
}

// TestRunSLOBrownoutSheds overloads a plain (non-faulty) service with an SLO
// attached and checks the brownout sheds load but never class 0.
func TestRunSLOBrownoutSheds(t *testing.T) {
	const n = 600
	m := exectest.NewChainMachine(chainLengths(n, 5), 6)
	// Offered load far above capacity: the sliding p99 blows any budget.
	workers := []serve.Worker[exectest.ChainState]{{
		Machine:  m,
		Arrivals: serve.Deterministic{Period: 40}.Schedule(n, 1),
	}}
	res := serve.Run(serve.Options{
		Hardware:  memsim.XeonX5670(),
		Technique: ops.AMAC,
		Window:    6,
		SLO:       fault.SLO{P99Budget: 2000, Classes: 4, HoldRounds: 2},
	}, workers)
	rec := res.Latency
	if rec.Shed == 0 {
		t.Fatal("sustained overload must shed load")
	}
	if rec.Completed+rec.Shed != n {
		t.Fatalf("accounting: completed=%d shed=%d, want sum %d", rec.Completed, rec.Shed, n)
	}
	// Class 0 (index % 4 == 0) is never shed, so at least every fourth
	// request completes.
	if rec.Completed < n/4 {
		t.Fatalf("class 0 must always be served: completed=%d", rec.Completed)
	}
}

// TestRecorderFaultEdgeCases covers the satellite edge cases: an
// all-timed-out recorder, merging with a zero-served shard, and quantiles
// with hedge duplicates resolved on both shards.
func TestRecorderFaultEdgeCases(t *testing.T) {
	// All-timed-out: quantiles and means stay defined (zero), counters hold.
	var dead serve.Recorder
	dead.Offered = 10
	dead.TimedOut = 10
	if dead.P99() != 0 || dead.MeanLatency() != 0 {
		t.Fatalf("all-timed-out quantiles: p99=%d mean=%f", dead.P99(), dead.MeanLatency())
	}

	// A served shard merged with a zero-served shard keeps its quantiles and
	// gains the dead shard's outcome counters.
	var served serve.Recorder
	served.Offered = 4
	for _, lat := range []uint64{100, 200, 300, 400} {
		served.RecordLatency(lat)
	}
	p99Before := served.P99()
	served.Merge(&dead)
	if served.P99() != p99Before {
		t.Fatalf("merge with zero-served shard moved p99: %d -> %d", p99Before, served.P99())
	}
	if served.TimedOut != 10 || served.Offered != 14 {
		t.Fatalf("merge lost counters: timedOut=%d offered=%d", served.TimedOut, served.Offered)
	}

	// Hedged duplicates completing on both shards: the winner records the
	// latency on the executing shard, the loser only bumps HedgeWaste — the
	// merged completion count stays one per request.
	var home, sibling serve.Recorder
	home.Offered = 1
	home.Hedged = 1
	home.HedgeWins = 1
	home.HedgeWaste = 1 // the home copy finished after the hedge had won
	sibling.RecordLatency(500)
	home.Merge(&sibling)
	if home.Completed != 1 {
		t.Fatalf("hedge dedup: completed=%d, want 1", home.Completed)
	}
	if home.P99() != 500 || home.MaxLatency != 500 {
		t.Fatalf("hedge winner's latency lost: p99=%d max=%d", home.P99(), home.MaxLatency)
	}

	// The nonzero fault counters surface in String; a clean recorder's
	// String must not mention them.
	if s := home.String(); len(s) == 0 || !contains(s, "hedged=1") {
		t.Fatalf("String misses fault counters: %q", s)
	}
	var clean serve.Recorder
	clean.RecordLatency(10)
	if contains(clean.String(), "hedged=") {
		t.Fatalf("clean String grew fault counters: %q", clean.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package serve

import (
	"fmt"

	"amac/internal/adapt"
	"amac/internal/core"
	"amac/internal/exec"
	"amac/internal/fault"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
	"amac/internal/prof"
)

// RunSource drives one streaming engine over one source on one core: the
// streaming counterpart of ops.RunMachine. AMAC returns its scheduler
// stats; the other engines report everything through the source's recorder.
func RunSource[S any](c *memsim.Core, src exec.Source[S], tech ops.Technique, p ops.Params) core.RunStats {
	return RunSourceTraced(c, src, tech, p, nil)
}

// RunSourceTraced is RunSource with a per-core trace sink attached to the
// engine (nil behaves exactly like RunSource).
func RunSourceTraced[S any](c *memsim.Core, src exec.Source[S], tech ops.Technique, p ops.Params, tr *obs.CoreTrace) core.RunStats {
	window := p.Window
	if window <= 0 {
		window = ops.DefaultWindow
	}
	switch tech {
	case ops.Baseline:
		exec.BaselineStreamTraced(c, src, tr)
	case ops.GP:
		exec.GroupPrefetchStreamTraced(c, src, window, tr)
	case ops.SPP:
		exec.SoftwarePipelineStreamTraced(c, src, window, tr)
	case ops.AMAC:
		return core.RunStream(c, src, core.Options{Width: window, Trace: tr})
	default:
		panic(fmt.Sprintf("serve: unknown technique %d", int(tech)))
	}
	return core.RunStats{}
}

// Worker describes one worker of a sharded streaming service: the operator
// machine serving its partition of the data and the arrival schedule of the
// requests routed to it. Lookup i of the machine is request i of the
// schedule.
type Worker[S any] struct {
	Machine  exec.Machine[S]
	Arrivals []uint64
}

// Options configures a service run.
type Options struct {
	// Hardware is the socket model; every worker gets a private System whose
	// L3 is its capacity share (Config.ShareLLC) and whose off-chip queue is
	// told all workers are active, as in the batch parallel layer.
	Hardware memsim.Config
	// Technique selects the streaming engine.
	Technique ops.Technique
	// Window is the number of in-flight lookups (zero = ops.DefaultWindow).
	Window int
	// QueueCap bounds each worker's admission queue (zero = unbounded).
	QueueCap int
	// Policy says what a full queue does with new arrivals.
	Policy Policy
	// Prepare, if non-nil, runs on every worker's core before measurement
	// (cache warming); the core's stats are reset afterwards.
	Prepare func(worker int, c *memsim.Core)
	// Adaptive, if non-nil, replaces the fixed Technique with a per-shard
	// adaptive controller (package adapt): every worker probes the
	// candidate techniques on its own traffic, exploits the cheapest, and
	// retunes when its observed per-request cost drifts or its queue depth
	// jumps — so a load shift on one shard retunes that shard alone.
	Adaptive *adapt.Config
	// Trace, if non-nil, records every worker's slot lifecycle, queue events
	// and controller decisions into a per-core ring ("worker N" tracks,
	// registered in worker order so output is deterministic). Purely
	// observational: simulated results are bit-identical with or without it.
	Trace *obs.Trace
	// Metrics, if non-nil, samples per-worker gauges (queue depth, MSHR
	// occupancy, AMAC width, sliding-window p99, stall fraction) every
	// Metrics.Interval() simulated cycles via the core's cycle hook. Purely
	// observational, like Trace.
	Metrics *obs.Metrics
	// Profile, if non-nil, attributes every worker's cycles ("worker N"
	// cores, registered in worker order) to engine/stage/queue-wait contexts.
	// Purely observational, like Trace; merge the per-worker profiles with
	// Profile.Merged for a service-wide flamegraph.
	Profile *prof.Profile
	// SLO, when enabled, gives every worker an SLO brownout: the shard's
	// sliding p99 against the budget sheds request classes at admission, and
	// adaptive runs additionally bias exploit leases onto AMAC (the
	// tail-robust engine) while classes are shed.
	SLO fault.SLO
}

// WorkerResult is one worker's outcome.
type WorkerResult struct {
	Stats   memsim.Stats
	Latency *Recorder
	// Sched holds AMAC's scheduler counters (zero for other techniques).
	Sched core.RunStats
	// Adapt holds the shard controller's tallies for adaptive runs (nil
	// otherwise).
	Adapt *adapt.Info
	// Faults holds the shard's fault-injection summary for RunFaulty runs
	// (nil otherwise).
	Faults *FaultInfo
}

// Result is the merged outcome of a service run.
type Result struct {
	PerWorker []WorkerResult
	// Stats merges the workers' core counters: Cycles is the slowest
	// worker's elapsed count, everything else sums.
	Stats memsim.Stats
	// Latency merges every worker's recorder.
	Latency Recorder
	// Sched merges the AMAC scheduler stats.
	Sched core.RunStats
	// Adapt merges the shard controllers' tallies for adaptive runs (nil
	// otherwise).
	Adapt *adapt.Info
	// Faults merges the shards' fault-injection summaries for RunFaulty runs
	// (nil otherwise).
	Faults *FaultInfo
}

// ElapsedCycles is the simulated wall-clock of the service phase.
func (r Result) ElapsedCycles() uint64 { return r.Stats.Cycles }

// ThroughputPerCycle is aggregate completed requests per cycle.
func (r Result) ThroughputPerCycle() float64 {
	return r.Latency.ThroughputPerCycle(r.ElapsedCycles())
}

// Run executes the sharded streaming service: every worker serves its own
// machine from its own queue-fed source on a private core, concurrently on
// real goroutines (exec.RunParallel), and the per-worker stats and latency
// recorders are merged. Deterministic for a fixed configuration regardless
// of the goroutine schedule, because workers share nothing mutable.
//
// The socket models are recycled (memsim.AcquireSystem), so a load sweep
// that calls Run once per (technique, load) point reuses one System+Core
// pair per worker instead of rebuilding megabytes of cache metadata per
// point; a recycled pair is reset to exactly the fresh-construction state,
// so results are bit-identical either way.
func Run[S any](opts Options, workers []Worker[S]) Result {
	n := len(workers)
	if n == 0 {
		return Result{}
	}

	pooled := make([]*memsim.PooledSystem, n)
	cores := make([]*memsim.Core, n)
	sources := make([]*QueueSource[S], n)
	trs := make([]*obs.CoreTrace, n)
	brown := make([]*fault.Brownout, n)
	shared := opts.Hardware.ShareLLC(n)
	for w := 0; w < n; w++ {
		pooled[w] = memsim.AcquireSystem(shared)
		cores[w] = pooled[w].Core
		pooled[w].Sys.SetActiveThreads(n, cores[w])
		if opts.Prepare != nil {
			opts.Prepare(w, cores[w])
		}
		cores[w].ResetStats()
		cores[w].SetProfiler(opts.Profile.Core(fmt.Sprintf("worker %d", w)))
		sources[w] = NewQueueSource(workers[w].Machine, workers[w].Arrivals, opts.QueueCap, opts.Policy, nil)
		// Tracks register here, in worker order on one goroutine, so the
		// exported trace's process layout is deterministic regardless of the
		// goroutine schedule. Metrics without tracing still needs a CoreTrace
		// as the width-gauge holder; an unregistered discard core serves.
		trs[w] = opts.Trace.Core(fmt.Sprintf("worker %d", w))
		if trs[w] == nil && opts.Metrics != nil {
			trs[w] = obs.NewDiscardCore()
		}
		sources[w].SetTrace(trs[w])
		var lw *obs.LatencyWindow
		if opts.Metrics != nil || opts.SLO.Enabled() {
			lw = obs.NewLatencyWindow(0)
			sources[w].SetLatencyWindow(lw)
		}
		if opts.SLO.Enabled() {
			brown[w] = fault.NewBrownout(opts.SLO)
			sources[w].SetBrownout(brown[w])
		}
		if opts.Metrics != nil {
			cm := opts.Metrics.Core(fmt.Sprintf("worker %d", w))
			src, c, tr := sources[w], cores[w], trs[w]
			cm.Gauge("queue_depth", func() float64 { return float64(src.Depth()) })
			cm.Gauge("mshr_outstanding", func() float64 { return float64(c.MSHROutstanding()) })
			cm.Gauge("width", func() float64 { return float64(tr.Width()) })
			cm.Gauge("p99_window", func() float64 { return float64(lw.Quantile(0.99)) })
			var prev memsim.Stats
			cm.Gauge("stall_fraction", func() float64 {
				s := c.Stats()
				busy := (s.Cycles - prev.Cycles) - (s.IdleCycles - prev.IdleCycles)
				stall := s.StallCycles - prev.StallCycles
				prev = s
				if busy == 0 {
					return 0
				}
				return float64(stall) / float64(busy)
			})
			c.SetCycleHook(opts.Metrics.Interval(), cm.Tick)
		}
	}

	sched := make([]core.RunStats, n)
	var ctls []*adapt.Controller
	if opts.Adaptive != nil {
		ctls = make([]*adapt.Controller, n)
		for w := range ctls {
			ctls[w] = adapt.NewController(*opts.Adaptive)
			ctls[w].SetTrace(trs[w])
			if brown[w] != nil {
				b := brown[w]
				ctls[w].SetTailBias(func() bool { return b.Level() > 0 })
			}
		}
	}
	ps := exec.RunParallel(cores, func(w int, c *memsim.Core) {
		if ctls != nil {
			sched[w] = adapt.RunStream(c, sources[w], ctls[w], sources[w].Depth)
			return
		}
		sched[w] = RunSourceTraced(c, sources[w], opts.Technique, ops.Params{Window: opts.Window}, trs[w])
	})

	res := Result{Stats: ps.Merged, Sched: core.MergeRunStats(sched)}
	if ctls != nil {
		res.Adapt = &adapt.Info{}
	}
	for w := 0; w < n; w++ {
		wr := WorkerResult{
			Stats:   ps.PerWorker[w],
			Latency: sources[w].Recorder(),
			Sched:   sched[w],
		}
		if ctls != nil {
			info := ctls[w].Info()
			wr.Adapt = &info
			res.Adapt.Merge(info)
		}
		res.PerWorker = append(res.PerWorker, wr)
		res.Latency.Merge(sources[w].Recorder())
		sources[w].Close()
		cores[w].SetCycleHook(0, nil) // pooled core: never leak a hook or profiler past the run
		cores[w].SetProfiler(nil)
		pooled[w].Release()
	}
	return res
}

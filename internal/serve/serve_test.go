package serve_test

import (
	"testing"

	"amac/internal/adapt"
	"amac/internal/core"
	"amac/internal/exec/exectest"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
	"amac/internal/serve"
)

func newCore() *memsim.Core {
	sys := memsim.MustSystem(memsim.XeonX5670())
	return sys.NewCore()
}

func TestArrivalSchedules(t *testing.T) {
	cases := []struct {
		proc serve.ArrivalProcess
		name string
	}{
		{serve.Deterministic{Period: 50}, "deterministic"},
		{serve.Poisson{MeanPeriod: 50}, "poisson"},
		{serve.Bursty{Period: 10, BurstLen: 4, Off: 500}, "bursty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.proc.Name() != tc.name {
				t.Fatalf("Name() = %q", tc.proc.Name())
			}
			sched := tc.proc.Schedule(1000, 42)
			if len(sched) != 1000 {
				t.Fatalf("len = %d", len(sched))
			}
			for i := 1; i < len(sched); i++ {
				if sched[i] < sched[i-1] {
					t.Fatalf("schedule not monotone at %d: %d < %d", i, sched[i], sched[i-1])
				}
			}
			again := tc.proc.Schedule(1000, 42)
			for i := range sched {
				if sched[i] != again[i] {
					t.Fatal("schedules must be deterministic for a fixed seed")
				}
			}
		})
	}
}

func TestPoissonScheduleMeanGap(t *testing.T) {
	const mean = 200.0
	sched := serve.Poisson{MeanPeriod: mean}.Schedule(100000, 7)
	got := float64(sched[len(sched)-1]) / float64(len(sched)-1)
	if got < mean*0.95 || got > mean*1.05 {
		t.Fatalf("empirical mean gap %.1f, want ~%.0f", got, mean)
	}
}

func TestBurstyScheduleLongRunRate(t *testing.T) {
	// ParseArrivals promises the bursty process keeps the requested long-run
	// period.
	proc, err := serve.ParseArrivals("bursty", 100)
	if err != nil {
		t.Fatal(err)
	}
	sched := proc.Schedule(3200, 1)
	got := float64(sched[len(sched)-1]) / float64(len(sched)-1)
	if got < 90 || got > 110 {
		t.Fatalf("bursty long-run gap %.1f, want ~100", got)
	}
}

func TestParseArrivals(t *testing.T) {
	for _, name := range []string{"", "poisson", "deterministic", "bursty"} {
		if _, err := serve.ParseArrivals(name, 10); err != nil {
			t.Fatalf("ParseArrivals(%q): %v", name, err)
		}
	}
	if _, err := serve.ParseArrivals("uniformly-random", 10); err == nil {
		t.Fatal("unknown process must fail to parse")
	}
}

func chainLengths(n, l int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = l
	}
	return ls
}

func TestQueueSourceBlockPolicyServesEverything(t *testing.T) {
	const n = 100
	m := exectest.NewChainMachine(chainLengths(n, 2), 3)
	// Everything arrives at cycle 0 into a tiny bounded queue: Block must
	// still serve all requests, just later.
	src := serve.NewQueueSource[exectest.ChainState](m, make([]uint64, n), 4, serve.Block, nil)
	core.RunStream(newCore(), src, core.Options{Width: 8})
	rec := src.Recorder()
	if rec.Completed != n || rec.Dropped != 0 {
		t.Fatalf("completed=%d dropped=%d, want %d/0", rec.Completed, rec.Dropped, n)
	}
	if rec.DepthMax > 4 {
		t.Fatalf("queue depth %d exceeded the capacity 4", rec.DepthMax)
	}
	if len(m.Completions) != n {
		t.Fatalf("machine completed %d of %d", len(m.Completions), n)
	}
}

func TestQueueSourceDropPolicyRejectsOverflow(t *testing.T) {
	const n = 100
	m := exectest.NewChainMachine(chainLengths(n, 2), 3)
	// Everything arrives at cycle 0 into a queue of 4 under Drop: the first
	// pull admits 4 and rejects the rest (the engine had no chance to drain
	// in between).
	src := serve.NewQueueSource[exectest.ChainState](m, make([]uint64, n), 4, serve.Drop, nil)
	core.RunStream(newCore(), src, core.Options{Width: 8})
	rec := src.Recorder()
	if rec.Completed != 4 || rec.Dropped != n-4 {
		t.Fatalf("completed=%d dropped=%d, want 4/%d", rec.Completed, rec.Dropped, n-4)
	}
	if rec.Offered != n {
		t.Fatalf("offered=%d, want %d", rec.Offered, n)
	}
	if rec.DropFraction() <= 0.9 {
		t.Fatalf("drop fraction %f", rec.DropFraction())
	}
}

func TestQueueSourceLatencyIncludesQueueWait(t *testing.T) {
	// Two requests arrive together; the second's latency must include the
	// time it waited behind the first under a serial engine.
	m := exectest.NewChainMachine(chainLengths(2, 4), 3)
	src := serve.NewQueueSource[exectest.ChainState](m, []uint64{0, 0}, 0, serve.Block, nil)
	c := newCore()
	serve.RunSource(c, src, ops.Baseline, ops.Params{})
	rec := src.Recorder()
	if rec.Completed != 2 {
		t.Fatalf("completed=%d", rec.Completed)
	}
	if rec.SumQueueWait == 0 {
		t.Fatal("second request must have waited in the queue")
	}
	if rec.MaxLatency <= rec.Quantile(0.25) {
		t.Fatal("the queued request's latency must exceed the first's")
	}
}

// streamJoinOutput serves a probe workload with the given technique under
// the given arrival schedule and returns the join output.
func streamJoinOutput(t *testing.T, tech ops.Technique, arrivals []uint64) (count, checksum uint64) {
	t.Helper()
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 11, ProbeSize: 1 << 11, ZipfBuild: 0.75, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	j := ops.NewHashJoin(build, probe)
	j.PrebuildRaw()
	out := ops.NewOutput(j.Arena, false)
	src := serve.NewQueueSource[ops.ProbeState](j.ProbeMachine(out, false), arrivals, 0, serve.Block, nil)
	serve.RunSource(newCore(), src, tech, ops.Params{Window: 8})
	if got := src.Recorder().Completed; got != uint64(len(arrivals)) {
		t.Fatalf("%s completed %d of %d requests", tech, got, len(arrivals))
	}
	return out.Count, out.Checksum
}

func TestStreamedJoinOutputMatchesBatchForAllTechniques(t *testing.T) {
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 11, ProbeSize: 1 << 11, ZipfBuild: 0.75, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	j := ops.NewHashJoin(build, probe)
	j.PrebuildRaw()
	wantCount, wantSum := j.ReferenceJoin()

	arrivals := serve.Poisson{MeanPeriod: 300}.Schedule(probe.Len(), 3)
	for _, tech := range ops.Techniques {
		count, checksum := streamJoinOutput(t, tech, arrivals)
		if count != wantCount || checksum != wantSum {
			t.Fatalf("%s: streamed output (count=%d sum=%x) differs from reference (count=%d sum=%x)",
				tech, count, checksum, wantCount, wantSum)
		}
	}
}

// TestAMACStreamHoldsTailUnderLoad asserts the subsystem's reason to exist:
// at an arrival rate near AMAC's batch capacity, the batch-boundary refill
// of GP and SPP (and the serial baseline) inflates p99 latency by orders of
// magnitude while AMAC's queue stays shallow.
func TestAMACStreamHoldsTailUnderLoad(t *testing.T) {
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, ZipfBuild: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate AMAC's batch service time per request.
	jb := ops.NewHashJoin(build, probe)
	jb.PrebuildRaw()
	cb := newCore()
	core.Run(cb, jb.ProbeMachine(ops.NewOutput(jb.Arena, false), true), core.Options{Width: 10})
	period := float64(cb.Cycle()) / float64(probe.Len()) / 0.9 // 90% load

	p99 := func(tech ops.Technique) uint64 {
		j := ops.NewHashJoin(build, probe)
		j.PrebuildRaw()
		out := ops.NewOutput(j.Arena, false)
		arrivals := serve.Poisson{MeanPeriod: period}.Schedule(probe.Len(), 17)
		src := serve.NewQueueSource[ops.ProbeState](j.ProbeMachine(out, true), arrivals, 0, serve.Block, nil)
		serve.RunSource(newCore(), src, tech, ops.Params{Window: 10})
		return src.Recorder().P99()
	}

	amac := p99(ops.AMAC)
	for _, tech := range []ops.Technique{ops.Baseline, ops.GP, ops.SPP} {
		if other := p99(tech); amac*4 > other {
			t.Fatalf("at 90%% load AMAC p99 (%d) should be far below %s p99 (%d)", amac, tech, other)
		}
	}
}

func TestServiceShardsAndMerges(t *testing.T) {
	const workers = 3
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pj := ops.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	wantCount, wantSum := pj.ReferenceJoinFirstMatch()

	run := func() (serve.Result, uint64, uint64) {
		outs := make([]*ops.Output, workers)
		specs := make([]serve.Worker[ops.ProbeState], workers)
		for w := 0; w < workers; w++ {
			outs[w] = ops.NewOutput(pj.Parts[w].Arena, false)
			outs[w].Sequential = true
			specs[w] = serve.Worker[ops.ProbeState]{
				Machine:  pj.ProbeMachine(w, outs[w], true),
				Arrivals: serve.Deterministic{Period: 150}.Schedule(pj.Parts[w].Probe.Len(), 0),
			}
		}
		res := serve.Run(serve.Options{
			Hardware:  memsim.XeonX5670(),
			Technique: ops.AMAC,
			Window:    10,
		}, specs)
		var count, checksum uint64
		for _, out := range outs {
			count += out.Count
			checksum += out.Checksum
		}
		return res, count, checksum
	}

	res, count, checksum := run()
	if count != wantCount || checksum != wantSum {
		t.Fatalf("sharded service output (count=%d sum=%x) differs from reference (count=%d sum=%x)",
			count, checksum, wantCount, wantSum)
	}
	if res.Latency.Completed != uint64(probe.Len()) {
		t.Fatalf("merged recorder completed %d of %d", res.Latency.Completed, probe.Len())
	}
	if len(res.PerWorker) != workers {
		t.Fatalf("%d worker results", len(res.PerWorker))
	}
	var perWorkerCompleted uint64
	slowest := uint64(0)
	for _, wr := range res.PerWorker {
		perWorkerCompleted += wr.Latency.Completed
		if wr.Stats.Cycles > slowest {
			slowest = wr.Stats.Cycles
		}
	}
	if perWorkerCompleted != res.Latency.Completed {
		t.Fatal("merged recorder must equal the sum of worker recorders")
	}
	if res.ElapsedCycles() != slowest {
		t.Fatalf("elapsed %d, want slowest worker %d", res.ElapsedCycles(), slowest)
	}
	if res.Sched.Completed != probe.Len() {
		t.Fatalf("merged AMAC sched stats completed %d, want %d", res.Sched.Completed, probe.Len())
	}

	// Determinism across goroutine schedules: run again and compare.
	res2, count2, checksum2 := run()
	if count2 != count || checksum2 != checksum || res2.ElapsedCycles() != res.ElapsedCycles() ||
		res2.Latency.P99() != res.Latency.P99() {
		t.Fatal("service runs must be deterministic")
	}
}

func TestServiceEmptyWorkers(t *testing.T) {
	res := serve.Run[ops.ProbeState](serve.Options{Hardware: memsim.XeonX5670(), Technique: ops.AMAC}, nil)
	if res.Latency.Completed != 0 || len(res.PerWorker) != 0 {
		t.Fatalf("empty service should be empty: %+v", res)
	}
}

// TestServiceAdaptiveServesEverything: the per-shard adaptive controller
// must serve every request exactly once with output identical to a static
// run, report its tallies per worker and merged, and stay deterministic
// across goroutine schedules.
func TestServiceAdaptiveServesEverything(t *testing.T) {
	const workers = 2
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 12, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	pj := ops.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	wantCount, wantSum := pj.ReferenceJoinFirstMatch()

	// Collectors are allocated once and reset per run so that every run
	// charges its stores at identical arena addresses — the same
	// pre-allocation discipline the experiment sweeps use.
	outs := make([]*ops.Output, workers)
	for w := 0; w < workers; w++ {
		outs[w] = ops.NewOutput(pj.Parts[w].Arena, false)
		outs[w].Sequential = true
	}

	run := func() (serve.Result, uint64, uint64) {
		specs := make([]serve.Worker[ops.ProbeState], workers)
		for w := 0; w < workers; w++ {
			outs[w].Reset()
			specs[w] = serve.Worker[ops.ProbeState]{
				Machine:  pj.ProbeMachine(w, outs[w], true),
				Arrivals: serve.Poisson{MeanPeriod: 120}.Schedule(pj.Parts[w].Probe.Len(), uint64(w)+1),
			}
		}
		res := serve.Run(serve.Options{
			Hardware: memsim.XeonX5670(),
			Adaptive: &adapt.Config{RetuneRequests: 128, ProbeRequests: 32},
		}, specs)
		var count, checksum uint64
		for _, out := range outs {
			count += out.Count
			checksum += out.Checksum
		}
		return res, count, checksum
	}

	res, count, checksum := run()
	if count != wantCount || checksum != wantSum {
		t.Fatalf("adaptive service output (count=%d sum=%x) differs from reference (count=%d sum=%x)",
			count, checksum, wantCount, wantSum)
	}
	if res.Latency.Completed != uint64(probe.Len()) {
		t.Fatalf("completed %d of %d", res.Latency.Completed, probe.Len())
	}
	if res.Adapt == nil {
		t.Fatal("merged adaptive tallies missing")
	}
	if res.Adapt.Probes < workers {
		t.Fatalf("every shard should calibrate at least once: %v", res.Adapt)
	}
	total := 0
	for _, n := range res.Adapt.Lookups {
		total += n
	}
	if total != probe.Len() {
		t.Fatalf("technique tallies cover %d of %d requests", total, probe.Len())
	}
	for w, wr := range res.PerWorker {
		if wr.Adapt == nil {
			t.Fatalf("worker %d missing adaptive tallies", w)
		}
	}

	res2, count2, checksum2 := run()
	if count2 != count || checksum2 != checksum || res2.ElapsedCycles() != res.ElapsedCycles() ||
		res2.Latency.P99() != res.Latency.P99() {
		t.Fatal("adaptive service runs must be deterministic")
	}
}

package experiments

// Shape tests for the adaptive execution subsystem, mirroring the adaptN
// acceptance criteria at test speed on the scaled hierarchy: on steady
// phases the adaptive controller must land within 5% of the best static
// configuration, and on phase-shifting workloads it must strictly beat
// every static configuration, because no fixed technique/width is right for
// both halves.

import (
	"testing"

	"amac/internal/adapt"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
)

// shapeAdaptCfg keeps probe epochs and drift checks meaningful at 2^16-
// lookup test workloads.
func shapeAdaptCfg() adapt.Config {
	return adapt.Config{SegmentLookups: 1024, ProbeLookups: 128}
}

// runAdaptShape measures one workload under every static configuration and
// under the adaptive controller, returning cycles per lookup per column.
func runAdaptShape(t *testing.T, machine memsim.Config, mk func() adaptExec) (static map[string]float64, adaptive float64) {
	t.Helper()
	static = adaptStaticGrid(t, machine, mk)
	ex := mk()
	c := adaptCore(machine, ex)
	ctl := adapt.NewController(shapeAdaptCfg())
	ex.adaptive(c, ctl)
	adaptive = float64(c.Cycle()) / float64(ex.lookups)
	return static, adaptive
}

func adaptStaticGrid(t *testing.T, machine memsim.Config, mk func() adaptExec) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, s := range adaptStatics {
		ex := mk()
		c := adaptCore(machine, ex)
		ex.static(c, s.tech, s.window)
		out[s.label] = float64(c.Cycle()) / float64(ex.lookups)
	}
	return out
}

func bestStatic(static map[string]float64) (string, float64) {
	bestLabel, best := "", 0.0
	for label, v := range static {
		if best == 0 || v < best {
			bestLabel, best = label, v
		}
	}
	return bestLabel, best
}

const shapeAdaptN = 1 << 16

// TestShapeAdaptiveSteadyPhases: on a cache-resident dimension join and a
// DRAM-resident join the adaptive controller must be within 5% of the best
// static configuration (the acceptance bar of ISSUE 5).
func TestShapeAdaptiveSteadyPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	machine := scaledXeon()
	cases := []struct {
		name string
		mk   func() adaptExec
	}{
		{"dim join (cache-resident)", func() adaptExec {
			return adaptJoinExec(defaultEnv, relation.JoinSpec{BuildSize: 1 << 8, ProbeSize: shapeAdaptN, Seed: 5})
		}},
		{"big join (DRAM-resident)", func() adaptExec {
			return adaptJoinExec(defaultEnv, relation.JoinSpec{BuildSize: shapeAdaptN, ProbeSize: shapeAdaptN, Seed: 5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			static, adaptive := runAdaptShape(t, machine, tc.mk)
			label, best := bestStatic(static)
			if adaptive > best*1.05 {
				t.Errorf("adaptive %.1f cycles/lookup is more than 5%% off the best static %s (%.1f); statics: %v",
					adaptive, label, best, static)
			}
		})
	}
}

// TestShapeAdaptiveBeatsStaticsOnPhaseShifts: on workloads whose character
// shifts mid-run — a dimension table giving way to a DRAM-resident one, and
// a cache-resident BST giving way to a DRAM-resident skip list — the
// adaptive controller must strictly beat every static configuration (the
// acceptance bar's "at least two phase-shifting workloads").
func TestShapeAdaptiveBeatsStaticsOnPhaseShifts(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	machine := scaledXeon()
	cases := []struct {
		name string
		mk   func() adaptExec
	}{
		{"dim→big join", func() adaptExec {
			return adaptShiftJoinExec(1<<8, shapeAdaptN, shapeAdaptN/2, 5)
		}},
		{"BST→skip list", func() adaptExec {
			return adaptMixExec(1<<8, 1<<14, 5)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			static, adaptive := runAdaptShape(t, machine, tc.mk)
			label, best := bestStatic(static)
			if adaptive >= best {
				t.Errorf("adaptive %.1f cycles/lookup does not beat the best static %s (%.1f); statics: %v",
					adaptive, label, best, static)
			}
		})
	}
}

// TestShapeAdaptiveHotColdTracksBest: the hot→cold probe workload at test
// scale is dominated by its warm-up transient (the Zipf hot set warming
// into the caches is a sizeable fraction of 2^15 probes), so the strict-win
// bar belongs to the small-scale adaptN run recorded in EXPERIMENTS.md;
// here the adaptive controller must stay within 10% of the best static.
func TestShapeAdaptiveHotColdTracksBest(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	static, adaptive := runAdaptShape(t, scaledXeon(), func() adaptExec {
		return adaptHotColdExec(shapeAdaptN, shapeAdaptN/2, 5)
	})
	label, best := bestStatic(static)
	if adaptive > best*1.10 {
		t.Errorf("adaptive %.1f cycles/lookup is more than 10%% off the best static %s (%.1f); statics: %v",
			adaptive, label, best, static)
	}
}

// TestShapeAdaptiveOutputMatchesStatic: the adaptive executor's join output
// must be identical to the static engines' output on the same workload.
func TestShapeAdaptiveOutputMatchesStatic(t *testing.T) {
	build, probe, err := relation.BuildJoin(relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: 1 << 14, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	j := ops.NewHashJoin(build, probe)
	j.PrebuildRaw()
	wantCount, wantSum := j.ReferenceJoinFirstMatch()

	out := ops.NewOutput(j.Arena, false)
	sys := memsim.MustSystem(scaledXeon())
	ctl := adapt.NewController(shapeAdaptCfg())
	adapt.Run(sys.NewCore(), j.ProbeMachine(out, true), ctl)
	if out.Count != wantCount || out.Checksum != wantSum {
		t.Fatalf("adaptive output (count=%d sum=%x) differs from reference (count=%d sum=%x)",
			out.Count, out.Checksum, wantCount, wantSum)
	}
}

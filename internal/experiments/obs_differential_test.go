package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"amac/internal/obs"
	"amac/internal/profile"
)

// renderRun executes an experiment and renders its tables exactly the way
// cmd/amacbench does — text via Table.Render and JSON Lines via
// profile.WriteJSONRows — so byte-comparing the two forms covers both output
// paths of the CLI.
func renderRun(t *testing.T, id string, cfg Config) (text, jsonl string) {
	t.Helper()
	tables, err := Run(id, cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var tb, jb bytes.Buffer
	for _, table := range tables {
		table.Render(&tb)
	}
	if err := profile.WriteJSONRows(&jb, id, tables); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tb.String(), jb.String()
}

// TestObservabilityDifferential is the observability subsystem's central
// invariant as a test: attaching trace and metrics sinks changes no simulated
// result byte. Every traceable experiment runs untraced and traced (including
// traced under parallel sweep fan-out, where only the designated cell
// records) and both the rendered text tables and the -json rows must be
// byte-identical. The traced runs must also actually record something —
// a trivially-empty trace would pass the diff while proving nothing.
func TestObservabilityDifferential(t *testing.T) {
	metricsOK := map[string]bool{"serveN": true, "adaptN": true, "obsN": true, "faultN": true}

	baseText := map[string]string{}
	baseJSON := map[string]string{}
	baseline := func(id string) (string, string) {
		if _, ok := baseText[id]; !ok {
			baseText[id], baseJSON[id] = renderRun(t, id, Config{Scale: Tiny, Parallel: 1})
		}
		return baseText[id], baseJSON[id]
	}

	cases := []struct {
		id       string
		parallel int
	}{
		{"serveN", 1},
		{"serveN", 4},
		{"adaptN", 1},
		{"adaptN", 4},
		{"pipeN", 1},
		{"pipeN", 4},
		{"obsN", 1},
		{"faultN", 1},
		{"faultN", 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/parallel=%d", tc.id, tc.parallel), func(t *testing.T) {
			wantText, wantJSON := baseline(tc.id)

			cfg := Config{Scale: Tiny, Parallel: tc.parallel, Trace: obs.NewTrace(0)}
			if metricsOK[tc.id] {
				cfg.Metrics = obs.NewMetrics(0)
			}
			gotText, gotJSON := renderRun(t, tc.id, cfg)

			if gotText != wantText {
				t.Errorf("text tables differ traced vs untraced:\n--- untraced ---\n%s\n--- traced ---\n%s", wantText, gotText)
			}
			if gotJSON != wantJSON {
				t.Errorf("JSON rows differ traced vs untraced:\n--- untraced ---\n%s\n--- traced ---\n%s", wantJSON, gotJSON)
			}

			events := 0
			for _, c := range cfg.Trace.Cores() {
				events += c.Len()
			}
			if events == 0 {
				t.Error("traced run recorded no events")
			}
			if cfg.Metrics != nil {
				samples := 0
				for _, c := range cfg.Metrics.Cores() {
					samples += c.Samples()
				}
				if samples == 0 {
					t.Error("metered run recorded no samples")
				}
			}
		})
	}
}

package experiments

// Shape tests: assert the qualitative results the paper argues from, on
// working sets scaled so the tests stay fast. Because absolute cycle counts
// depend on the calibration of the cost model, every assertion here is about
// orderings and ratios (who wins, what degrades, where scaling saturates),
// not about absolute values. A reduced memory hierarchy ("scaled Xeon",
// "scaled T4") keeps the decisive property — the large working sets overflow
// the LLC — while letting each measurement finish in milliseconds.

import (
	"testing"

	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
)

// scaledXeon is a Xeon-like socket with a 256 KB LLC so that a 2^16-tuple
// join (2 MB hash table) is overwhelmingly memory-resident, preserving the
// paper's 2 GB-versus-12 MB proportions at test speed.
func scaledXeon() memsim.Config {
	cfg := memsim.XeonX5670()
	cfg.L2 = memsim.CacheConfig{SizeBytes: 64 << 10, Ways: 8, LatencyCycles: 10}
	cfg.L3 = memsim.CacheConfig{SizeBytes: 256 << 10, Ways: 16, LatencyCycles: 38}
	return cfg
}

// scaledT4 shrinks the T4 the same way.
func scaledT4() memsim.Config {
	cfg := memsim.SPARCT4()
	cfg.L2 = memsim.CacheConfig{SizeBytes: 64 << 10, Ways: 8, LatencyCycles: 12}
	cfg.L3 = memsim.CacheConfig{SizeBytes: 128 << 10, Ways: 16, LatencyCycles: 40}
	return cfg
}

const shapeJoinSize = 1 << 16

func shapeJoin(t *testing.T, machine memsim.Config, zr, zs float64, tech ops.Technique, threads int) joinResult {
	t.Helper()
	return runJoin(defaultEnv, joinConfig{
		machine:   machine,
		spec:      relation.JoinSpec{BuildSize: shapeJoinSize, ProbeSize: shapeJoinSize, ZipfBuild: zr, ZipfProbe: zs, Seed: 99},
		earlyExit: zr == 0,
		tech:      tech,
		window:    10,
		threads:   threads,
	})
}

// TestShapeUniformJoinSpeedups: on the memory-resident uniform join all three
// prefetching techniques deliver large speedups over the baseline, and AMAC
// is the fastest (Figure 5b, [0,0]).
func TestShapeUniformJoinSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	cycles := map[ops.Technique]float64{}
	for _, tech := range ops.Techniques {
		cycles[tech] = shapeJoin(t, scaledXeon(), 0, 0, tech, 1).probe.cyclesPerTuple()
	}
	for _, tech := range ops.PrefetchingTechniques {
		if speedup := cycles[ops.Baseline] / cycles[tech]; speedup < 2 {
			t.Errorf("%v speedup over baseline = %.2fx, expected well above 2x on the uniform memory-resident join", tech, speedup)
		}
	}
	if cycles[ops.AMAC] >= cycles[ops.GP] || cycles[ops.AMAC] >= cycles[ops.SPP] {
		t.Errorf("AMAC (%.1f) should be the fastest technique (GP %.1f, SPP %.1f)", cycles[ops.AMAC], cycles[ops.GP], cycles[ops.SPP])
	}
}

// TestShapeSkewRobustness: going from uniform to heavily skewed build keys
// (the paper's [1, 0]) hurts GP and SPP far more than AMAC, and AMAC ends up
// clearly faster than both (Figure 5b, Section 5.1).
func TestShapeSkewRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	perTuple := func(tech ops.Technique, zr float64) float64 {
		return shapeJoin(t, scaledXeon(), zr, 0, tech, 1).probe.cyclesPerTuple()
	}
	gpU, gpS := perTuple(ops.GP, 0), perTuple(ops.GP, 1)
	sppU, sppS := perTuple(ops.SPP, 0), perTuple(ops.SPP, 1)
	amacU, amacS := perTuple(ops.AMAC, 0), perTuple(ops.AMAC, 1)

	gpSlow, sppSlow, amacSlow := gpS/gpU, sppS/sppU, amacS/amacU
	if amacSlow >= gpSlow || amacSlow >= sppSlow {
		t.Errorf("AMAC slowdown under skew (%.2fx) should be below GP (%.2fx) and SPP (%.2fx)", amacSlow, gpSlow, sppSlow)
	}
	if amacS >= gpS || amacS >= sppS {
		t.Errorf("under skew AMAC (%.1f cyc/tuple) should beat GP (%.1f) and SPP (%.1f)", amacS, gpS, sppS)
	}
}

// TestShapeSmallBuildRelation: when the build table fits in the LLC, the
// benefit of prefetching shrinks dramatically (Figure 5a versus 5b): the
// best technique's advantage over the baseline must be far smaller than on
// the memory-resident join.
func TestShapeSmallBuildRelation(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	small := func(tech ops.Technique) float64 {
		return runJoin(defaultEnv, joinConfig{
			machine:   scaledXeon(),
			spec:      relation.JoinSpec{BuildSize: 1 << 12, ProbeSize: shapeJoinSize, Seed: 5},
			earlyExit: true,
			tech:      tech,
			window:    10,
		}).probe.cyclesPerTuple()
	}
	large := func(tech ops.Technique) float64 {
		return shapeJoin(t, scaledXeon(), 0, 0, tech, 1).probe.cyclesPerTuple()
	}
	smallGain := small(ops.Baseline) / small(ops.AMAC)
	largeGain := large(ops.Baseline) / large(ops.AMAC)
	if smallGain >= largeGain {
		t.Errorf("AMAC's advantage on the cache-resident join (%.2fx) should be smaller than on the memory-resident join (%.2fx)", smallGain, largeGain)
	}
}

// TestShapeInFlightSensitivity: AMAC performance improves with the number of
// in-flight lookups until the MSHR limit and is insensitive beyond it
// (Figure 6c / Section 6).
func TestShapeInFlightSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	at := func(window int) float64 {
		return runJoin(defaultEnv, joinConfig{
			machine:   scaledXeon(),
			spec:      relation.JoinSpec{BuildSize: shapeJoinSize, ProbeSize: shapeJoinSize, Seed: 99},
			earlyExit: true,
			tech:      ops.AMAC,
			window:    window,
		}).probe.cyclesPerTuple()
	}
	one, ten, thirty := at(1), at(10), at(30)
	if ten >= one/2 {
		t.Errorf("10 in-flight lookups (%.1f) should be at least 2x better than 1 (%.1f)", ten, one)
	}
	if thirty < ten*0.8 || thirty > ten*1.5 {
		t.Errorf("beyond the MSHR limit performance should be flat: width 30 = %.1f, width 10 = %.1f", thirty, ten)
	}
}

// TestShapeXeonScalabilitySaturates: with six threads sharing the Xeon's
// 32-entry off-chip queue, AMAC probe throughput stops scaling, while the
// same six threads on the T4-like socket (bigger queue) keep scaling
// (Figures 7 and 8, Section 5.1.1).
func TestShapeXeonScalabilitySaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	throughput := func(machine memsim.Config, threads int) float64 {
		res := shapeJoin(t, machine, 0, 0, ops.AMAC, threads)
		return res.probe.throughputMTuplesPerSec(machine.FreqHz, threads)
	}
	xeon1, xeon6 := throughput(scaledXeon(), 1), throughput(scaledXeon(), 6)
	t4x1, t4x6 := throughput(scaledT4(), 1), throughput(scaledT4(), 6)

	xeonScaling := xeon6 / xeon1
	t4Scaling := t4x6 / t4x1
	if xeonScaling > 4.5 {
		t.Errorf("Xeon AMAC throughput scaled %.2fx with 6 threads; the 32-entry off-chip queue should prevent near-linear scaling", xeonScaling)
	}
	if t4Scaling < xeonScaling {
		t.Errorf("T4-like socket (%.2fx) should scale at least as well as the Xeon (%.2fx)", t4Scaling, xeonScaling)
	}
	if t4Scaling < 4 {
		t.Errorf("T4-like socket should scale close to linearly over 6 physical cores, got %.2fx", t4Scaling)
	}
}

// TestShapeBaselineScalesBetterThanAMACOnXeon: the baseline's low per-thread
// MLP means it does not contend for the off-chip queue, so its throughput
// keeps improving with threads and narrows AMAC's lead (Figure 7a).
func TestShapeBaselineScalesBetterThanAMACOnXeon(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	ratioAt := func(threads int) float64 {
		machine := scaledXeon()
		amacT := shapeJoin(t, machine, 0, 0, ops.AMAC, threads).probe.throughputMTuplesPerSec(machine.FreqHz, threads)
		baseT := shapeJoin(t, machine, 0, 0, ops.Baseline, threads).probe.throughputMTuplesPerSec(machine.FreqHz, threads)
		return amacT / baseT
	}
	lead1, lead12 := ratioAt(1), ratioAt(12)
	if lead12 >= lead1 {
		t.Errorf("AMAC's lead over the baseline should shrink as threads contend for the off-chip queue: 1 thread %.2fx, 12 threads %.2fx", lead1, lead12)
	}
}

// TestShapeMSHRHitsRiseWithThreads reproduces the trend of Table 4: more
// threads sharing the off-chip queue means prefetches arrive later, so the
// probe sees more L1-D MSHR hits per kilo-instruction and lower IPC, and
// spreading four threads over two sockets undoes the damage.
func TestShapeMSHRHitsRiseWithThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	machine := scaledXeon()
	stats := func(threads, perSocket int) memsim.Stats {
		return runJoin(defaultEnv, joinConfig{
			machine:          machine,
			spec:             relation.JoinSpec{BuildSize: shapeJoinSize, ProbeSize: shapeJoinSize, Seed: 99},
			earlyExit:        true,
			tech:             ops.AMAC,
			window:           10,
			threads:          threads,
			threadsPerSocket: perSocket,
		}).probe.stats
	}
	waitPerKiloInstr := func(s memsim.Stats) float64 {
		return 1000 * float64(s.MSHRHitWaitCycles) / float64(s.Instructions)
	}
	one := stats(1, 1)
	six := stats(6, 6)
	four := stats(4, 4)
	split := stats(4, 2)
	if waitPerKiloInstr(six) <= waitPerKiloInstr(one) {
		t.Errorf("time spent waiting on outstanding misses should rise with thread count: 1 thread %.1f, 6 threads %.1f cycles/k-instr",
			waitPerKiloInstr(one), waitPerKiloInstr(six))
	}
	if six.IPC() >= one.IPC() {
		t.Errorf("IPC should drop with thread count: 1 thread %.2f, 6 threads %.2f", one.IPC(), six.IPC())
	}
	if split.IPC() <= four.IPC() {
		t.Errorf("spreading 4 threads over two sockets (IPC %.2f) should relieve the contention of one socket (IPC %.2f)",
			split.IPC(), four.IPC())
	}
	if waitPerKiloInstr(split) >= waitPerKiloInstr(four) {
		t.Errorf("spreading 4 threads over two sockets (%.1f) should reduce outstanding-miss waits versus one socket (%.1f)",
			waitPerKiloInstr(split), waitPerKiloInstr(four))
	}
}

// TestShapeGroupBySkew: under heavy key skew the read/write dependencies
// serialize SPP's pipeline, while AMAC stays ahead of both prior techniques
// (Figure 9).
func TestShapeGroupBySkew(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	cyc := func(tech ops.Technique, zipf float64) float64 {
		return runGroupBy(groupByConfig{
			machine: scaledXeon(),
			spec:    relation.GroupBySpec{Size: 1 << 16, Repeats: 3, Zipf: zipf, Seed: 3},
			tech:    tech,
			window:  10,
		}).cyclesPerTuple()
	}
	if amac, spp := cyc(ops.AMAC, 1.0), cyc(ops.SPP, 1.0); amac >= spp {
		t.Errorf("under Zipf(1.0) AMAC (%.1f) should beat SPP (%.1f)", amac, spp)
	}
	if amac, gp := cyc(ops.AMAC, 1.0), cyc(ops.GP, 1.0); amac >= gp {
		t.Errorf("under Zipf(1.0) AMAC (%.1f) should beat GP (%.1f)", amac, gp)
	}
	// AMAC must also beat the baseline on the uniform case.
	if amac, base := cyc(ops.AMAC, 0), cyc(ops.Baseline, 0); base/amac < 1.5 {
		t.Errorf("AMAC group-by speedup over baseline = %.2fx, expected at least 1.5x", base/amac)
	}
}

// TestShapeBSTBenefitGrowsWithTreeSize: the deeper the tree, the longer the
// dependent chains and the larger AMAC's advantage over the baseline
// (Figure 10).
func TestShapeBSTBenefitGrowsWithTreeSize(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	speedup := func(sizeExp int) float64 {
		base := runBSTSearch(defaultEnv, scaledXeon(), sizeExp, ops.Baseline, 10, 7).cyclesPerTuple()
		am := runBSTSearch(defaultEnv, scaledXeon(), sizeExp, ops.AMAC, 10, 7).cyclesPerTuple()
		return base / am
	}
	smallTree, bigTree := speedup(10), speedup(16)
	if bigTree <= smallTree {
		t.Errorf("AMAC speedup should grow with tree depth: 2^10 -> %.2fx, 2^16 -> %.2fx", smallTree, bigTree)
	}
	if bigTree < 2 {
		t.Errorf("AMAC speedup on a memory-resident tree should be large, got %.2fx", bigTree)
	}
}

// TestShapeSkipListSearchAndInsert: search benefits more than insert (whose
// splice phase is compute-bound), and AMAC leads both prior techniques on
// search (Section 5.4).
func TestShapeSkipListSearchAndInsert(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests take a few seconds")
	}
	const sizeExp = 14
	searchSpeedup := func(tech ops.Technique) float64 {
		base := runSkipListSearch(defaultEnv, scaledXeon(), sizeExp, ops.Baseline, 10, 7).cyclesPerTuple()
		return base / runSkipListSearch(defaultEnv, scaledXeon(), sizeExp, tech, 10, 7).cyclesPerTuple()
	}
	insertSpeedup := func(tech ops.Technique) float64 {
		base := runSkipListInsert(scaledXeon(), sizeExp, ops.Baseline, 10, 7).cyclesPerTuple()
		return base / runSkipListInsert(scaledXeon(), sizeExp, tech, 10, 7).cyclesPerTuple()
	}
	amacSearch := searchSpeedup(ops.AMAC)
	if amacSearch <= searchSpeedup(ops.GP) || amacSearch <= searchSpeedup(ops.SPP) {
		t.Errorf("AMAC should deliver the best skip list search speedup (got %.2fx)", amacSearch)
	}
	if amacInsert := insertSpeedup(ops.AMAC); amacInsert >= amacSearch {
		t.Errorf("insert speedup (%.2fx) should be more modest than search speedup (%.2fx): the splice phase is CPU-bound", amacInsert, amacSearch)
	}
}

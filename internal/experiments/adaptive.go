package experiments

import (
	"amac/internal/adapt"
	"amac/internal/arena"
	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
	"amac/internal/profile"
	"amac/internal/relation"
	"amac/internal/serve"
)

func init() {
	register(Descriptor{
		ID:    "adaptN",
		Title: "Adaptive execution: online technique selection and dynamic AMAC width versus every static configuration",
		Run:   adaptN,
	})
}

// adaptStatic is one static configuration column of the adaptN tables.
type adaptStatic struct {
	label  string
	tech   ops.Technique
	window int
}

// adaptStatics are the static configurations the adaptive controller is
// judged against: the three prior techniques at the paper's recommended
// window, plus AMAC at three widths bracketing the Xeon's MSHR limit.
var adaptStatics = []adaptStatic{
	{"Baseline", ops.Baseline, 10},
	{"GP", ops.GP, 10},
	{"SPP", ops.SPP, 10},
	{"AMAC@5", ops.AMAC, 5},
	{"AMAC@10", ops.AMAC, 10},
	{"AMAC@15", ops.AMAC, 15},
}

const adaptiveCol = "Adaptive"

// adaptExec is one materialized adaptN workload: a cache-warming prepare
// step plus the two executors. The static and adaptive executors run the
// identical lookups over the identical structures, so cycle counts are
// directly comparable across columns.
type adaptExec struct {
	lookups  int
	prepare  func(c *memsim.Core)
	static   func(c *memsim.Core, tech ops.Technique, window int)
	adaptive func(c *memsim.Core, ctl *adapt.Controller)
}

// adaptConfig builds the controller configuration for the scale.
func adaptConfig(sz sizes) adapt.Config {
	return adapt.Config{SegmentLookups: sz.adaptSegment, ProbeLookups: sz.adaptProbe}
}

// adaptKey identifies one composite adaptN workload (shift join, hot→cold,
// operator mix) in a workloadSet, so each sweep worker materializes it once
// and the seven configuration columns of a row reuse it — the executors
// reset their output collectors per run, and the probed structures are
// read-only, exactly the probeJoin reuse contract.
type adaptKey struct {
	kind         string
	sizeA, sizeB int
	half         int
	seed         uint64
}

// adaptWorkload returns the set's cached composite workload for the key,
// materializing it on first use.
func (ws *workloadSet) adaptWorkload(key adaptKey, build func() adaptExec) adaptExec {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.adapts.get(key, build)
}

// adaptHCKey keys the cached hot→cold probe relation.
type adaptHCKey struct {
	domain int
	hot    int
	cold   int
	theta  float64
	seed   uint64
}

// adaptHotColdProbes caches the composite skewed-then-uniform probe
// relation (immutable, so one process-wide copy serves every sweep worker).
var adaptHotColdProbes = newOnceCache[adaptHCKey, *relation.Relation](4)

// cachedHotColdProbes returns a probe relation whose first hot entries are a
// Zipf(theta) draw over the domain — a handful of hot keys whose buckets
// stay cache-resident — and whose remaining cold entries are uniform.
func cachedHotColdProbes(domain, hot, cold int, theta float64, seed uint64) *relation.Relation {
	k := adaptHCKey{domain, hot, cold, theta, seed}
	return adaptHotColdProbes.get(k, func() *relation.Relation {
		keys := relation.ZipfKeys(hot, uint64(domain), theta, seed)
		keys = append(keys, relation.ZipfKeys(cold, uint64(domain), 0, seed+1)...)
		return relation.KeyedRelation("S", keys, 1<<40)
	})
}

// adaptN measures the adaptive execution subsystem against every static
// configuration on six workloads. Three are steady phases — an L2-resident
// dimension-table join (compute-bound, where the baseline's lean loop
// wins), a DRAM-resident join and a DRAM-resident BST search (memory-bound,
// where AMAC near the MSHR-limit width wins) — on which the acceptance bar
// is adaptive within 5% of the best static column. Three shift phase
// mid-run with no announcement: the probe input crosses from a dimension
// table to a DRAM-resident table, the probe keys go from hot (Zipf 2.0,
// cache-resident buckets) to cold (uniform), and the operator switches from
// a cache-resident BST to a DRAM-resident skip list. On those no static
// configuration is right for both halves, and the adaptive controller —
// which re-probes when its per-segment cost drifts out of the calibrated
// band — beats every one of them.
func adaptN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	machine := memsim.XeonX5670()
	seed := cfg.seed()
	acfg := adaptConfig(sz)

	n := sz.joinLarge
	half := n / 2

	type workload struct {
		name string
		make func(e *sweepEnv) adaptExec
	}
	workloads := []workload{
		{"steady dim join (cache)", func(e *sweepEnv) adaptExec {
			return adaptJoinExec(e, relation.JoinSpec{BuildSize: sz.adaptDim, ProbeSize: n, Seed: seed})
		}},
		{"steady big join (DRAM)", func(e *sweepEnv) adaptExec {
			return adaptJoinExec(e, relation.JoinSpec{BuildSize: n, ProbeSize: n, Seed: seed})
		}},
		{"steady BST search (DRAM)", func(e *sweepEnv) adaptExec {
			return adaptBSTExec(e, 1<<sz.bstT4, seed)
		}},
		{"shift dim→big join", func(e *sweepEnv) adaptExec {
			return e.wl.adaptWorkload(adaptKey{"shiftjoin", sz.adaptDim, n, half, seed}, func() adaptExec {
				return adaptShiftJoinExec(sz.adaptDim, n, half, seed)
			})
		}},
		{"shift hot→cold probes", func(e *sweepEnv) adaptExec {
			return e.wl.adaptWorkload(adaptKey{"hotcold", n, n, half, seed}, func() adaptExec {
				return adaptHotColdExec(n, half, seed)
			})
		}},
		{"shift BST→skip list", func(e *sweepEnv) adaptExec {
			return e.wl.adaptWorkload(adaptKey{"mix", 1 << sz.adaptBST, 1 << sz.slT4, 0, seed}, func() adaptExec {
				return adaptMixExec(1<<sz.adaptBST, 1<<sz.slT4, seed)
			})
		}},
	}

	rows := make([]string, len(workloads))
	for i, w := range workloads {
		rows[i] = w.name
	}
	cols := make([]string, 0, len(adaptStatics)+1)
	for _, s := range adaptStatics {
		cols = append(cols, s.label)
	}
	cols = append(cols, adaptiveCol)

	main := profile.New("adaptN", "Adaptive execution versus static configurations (Xeon)", "cycles/lookup", rows, cols)
	main.AddNote("steady rows: adaptive must be within 5%% of the best static column; shift rows: no static config is right for both phases and adaptive beats every one")
	main.AddNote("|S| = 2^%d probes per join row, dim table %d keys (L2-resident), scale %q, seed %d, segments %d/%d lookups",
		log2(n), sz.adaptDim, cfg.scale(), seed, sz.adaptSegment, sz.adaptProbe)
	diagCols := []string{"probe epochs", "switches", "AMAC share %", "min width", "max width", "resizes"}
	diag := profile.New("adaptN-ctl", "Adaptive controller diagnostics per workload", "", rows, diagCols)
	diag.AddNote("AMAC share is the fraction of lookups the controller served with AMAC; widths are the slot-window extremes its AIMD policy visited")

	type cell struct {
		row int
		col int // index into adaptStatics; len(adaptStatics) = adaptive
	}
	type result struct {
		cycles  uint64
		lookups int
		info    *adapt.Info
	}
	var cells []cell
	var tasks []func(*sweepEnv) result
	for r, w := range workloads {
		for s := range adaptStatics {
			r, s, w := r, s, w
			cells = append(cells, cell{r, s})
			tasks = append(tasks, func(e *sweepEnv) result {
				ex := w.make(e)
				c := adaptCore(machine, ex)
				st := adaptStatics[s]
				ex.static(c, st.tech, st.window)
				return result{cycles: c.Cycle(), lookups: ex.lookups}
			})
		}
		r, w := r, w
		cells = append(cells, cell{r, len(adaptStatics)})
		tasks = append(tasks, func(e *sweepEnv) result {
			ex := w.make(e)
			c := adaptCore(machine, ex)
			ctl := adapt.NewController(acfg)
			ex.adaptive(c, ctl)
			info := ctl.Info()
			return result{cycles: c.Cycle(), lookups: ex.lookups, info: &info}
		})
	}

	for i, res := range runSweep(cfg, tasks) {
		cl := cells[i]
		row := rows[cl.row]
		col := cols[cl.col]
		main.Set(row, col, float64(res.cycles)/float64(res.lookups))
		if res.info != nil {
			diag.Set(row, "probe epochs", float64(res.info.Probes))
			diag.Set(row, "switches", float64(res.info.Switches))
			diag.Set(row, "AMAC share %", 100*res.info.Share(ops.AMAC))
			diag.Set(row, "min width", float64(res.info.Sched.MinWidth))
			diag.Set(row, "max width", float64(res.info.Sched.MaxWidth))
			diag.Set(row, "resizes", float64(res.info.Sched.WidthChanges))
		}
	}

	return []*profile.Table{main, diag, adaptServeTable(cfg, machine)}
}

// adaptCore builds a fresh measured core for one cell: private socket,
// prepare (cache warm-up), counters reset.
func adaptCore(machine memsim.Config, ex adaptExec) *memsim.Core {
	sys := memsim.MustSystem(machine)
	c := sys.NewCore()
	if ex.prepare != nil {
		ex.prepare(c)
	}
	c.ResetStats()
	return c
}

// adaptJoinExec materializes a steady probe-only join from the sweep
// worker's cache.
func adaptJoinExec(e *sweepEnv, spec relation.JoinSpec) adaptExec {
	j, out := e.wl.probeJoin(spec, 0)
	return adaptExec{
		lookups: j.Probe.Len(),
		prepare: func(c *memsim.Core) { warmTable(c, j) },
		static: func(c *memsim.Core, tech ops.Technique, window int) {
			out.Reset()
			ops.RunMachine(c, j.ProbeMachine(out, true), tech, ops.Params{Window: window})
		},
		adaptive: func(c *memsim.Core, ctl *adapt.Controller) {
			out.Reset()
			adapt.Run(c, j.ProbeMachine(out, true), ctl)
		},
	}
}

// adaptBSTExec materializes a steady tree-search workload from the sweep
// worker's cache.
func adaptBSTExec(e *sweepEnv, size int, seed uint64) adaptExec {
	w, out := e.wl.bstWorkload(size, seed)
	return adaptExec{
		lookups: w.Probe.Len(),
		static: func(c *memsim.Core, tech ops.Technique, window int) {
			out.Reset()
			ops.RunMachine(c, w.SearchMachine(out), tech, ops.Params{Window: window})
		},
		adaptive: func(c *memsim.Core, ctl *adapt.Controller) {
			out.Reset()
			adapt.Run(c, w.SearchMachine(out), ctl)
		},
	}
}

// adaptShiftJoinExec materializes the small→large composite join: the first
// half of the probes hits an L2-resident dimension table, the second half a
// DRAM-resident table, both living in one arena (separate arenas would
// alias in the cache model) and probed through one exec.Concat machine so
// engines see a single input whose character shifts mid-batch.
func adaptShiftJoinExec(dimSize, bigSize, half int, seed uint64) adaptExec {
	dimBuild, dimProbe := cachedJoinRelations(relation.JoinSpec{BuildSize: dimSize, ProbeSize: half, Seed: seed + 10})
	bigBuild, bigProbe := cachedJoinRelations(relation.JoinSpec{BuildSize: bigSize, ProbeSize: half, Seed: seed + 11})
	a := arena.New()
	dim := ops.NewHashJoinInArena(a, dimBuild, dimProbe, 0)
	dim.PrebuildRaw()
	big := ops.NewHashJoinInArena(a, bigBuild, bigProbe, 0)
	big.PrebuildRaw()
	outDim := ops.NewOutput(a, false)
	outBig := ops.NewOutput(a, false)
	machineOf := func() *exec.Concat[ops.ProbeState] {
		return exec.NewConcat[ops.ProbeState](dim.ProbeMachine(outDim, true), big.ProbeMachine(outBig, true))
	}
	return adaptExec{
		lookups: half * 2,
		prepare: func(c *memsim.Core) {
			// Big table first so the dimension table ends up fully resident.
			warmTable(c, big)
			warmTable(c, dim)
		},
		static: func(c *memsim.Core, tech ops.Technique, window int) {
			outDim.Reset()
			outBig.Reset()
			ops.RunMachine(c, machineOf(), tech, ops.Params{Window: window})
		},
		adaptive: func(c *memsim.Core, ctl *adapt.Controller) {
			outDim.Reset()
			outBig.Reset()
			adapt.Run(c, machineOf(), ctl)
		},
	}
}

// adaptHotColdExec materializes the hot→cold probe workload: one
// DRAM-resident join whose first half of probe keys is a Zipf(2.0) draw —
// a couple hundred hot buckets that stay L1-resident once touched — and
// whose second half is uniform, so the per-probe cost jumps an order of
// magnitude at the boundary with no structural change at all.
func adaptHotColdExec(domain, half int, seed uint64) adaptExec {
	build, _ := cachedIndexRelations(domain, seed+20)
	probes := cachedHotColdProbes(domain, half, half, 2.0, seed+21)
	j := ops.NewHashJoin(build, probes)
	j.PrebuildRaw()
	out := ops.NewOutput(j.Arena, false)
	return adaptExec{
		lookups: probes.Len(),
		prepare: func(c *memsim.Core) { warmTable(c, j) },
		static: func(c *memsim.Core, tech ops.Technique, window int) {
			out.Reset()
			ops.RunMachine(c, j.ProbeMachine(out, true), tech, ops.Params{Window: window})
		},
		adaptive: func(c *memsim.Core, ctl *adapt.Controller) {
			out.Reset()
			adapt.Run(c, j.ProbeMachine(out, true), ctl)
		},
	}
}

// adaptMixExec materializes the BST→skip list operator mix: a cache-resident
// tree searched first, then a DRAM-resident skip list, in one arena. The
// static columns run both machines under one fixed configuration; the
// adaptive column carries one controller across both runs, so the operator
// boundary is detected by the same drift machinery as an in-machine shift.
func adaptMixExec(bstSize, slSize int, seed uint64) adaptExec {
	bstBuild, bstProbe := cachedIndexRelations(bstSize, seed+30)
	slBuild, slProbe := cachedIndexRelations(slSize, seed+31)
	a := arena.New()
	bw := ops.NewBSTWorkloadInArena(a, bstBuild, bstProbe)
	sw := ops.NewSkipListWorkloadInArena(a, slBuild, slProbe)
	sw.PrebuildRaw(seed + 32)
	outB := ops.NewOutput(a, false)
	outS := ops.NewOutput(a, false)
	return adaptExec{
		lookups: bstProbe.Len() + slProbe.Len(),
		prepare: func(c *memsim.Core) {
			// Warm the small tree by searching it once uncharged-ish; the
			// caller resets the counters afterwards.
			ops.RunMachine(c, bw.SearchMachine(outB), ops.Baseline, ops.Params{})
			outB.Reset()
		},
		static: func(c *memsim.Core, tech ops.Technique, window int) {
			outB.Reset()
			outS.Reset()
			p := ops.Params{Window: window}
			ops.RunMachine(c, bw.SearchMachine(outB), tech, p)
			ops.RunMachine(c, sw.SearchMachine(outS), tech, p)
		},
		adaptive: func(c *memsim.Core, ctl *adapt.Controller) {
			outB.Reset()
			outS.Reset()
			adapt.Run(c, bw.SearchMachine(outB), ctl)
			adapt.Run(c, sw.SearchMachine(outS), ctl)
		},
	}
}

// adaptServeTable measures the serve-integrated per-shard controller: the
// serveN workload (skewed build keys) under bursty arrivals at moderate and
// near-saturation load, p99 latency per engine with the adaptive controller
// as the last column. The controller settles on AMAC — the throughput
// matches — but its probe leases serve real requests with the slower
// candidates under live load, and the requests queued behind those leases
// are exactly what a p99 measures: adaptive lands well below every
// batch-boundary static and above a clairvoyant static AMAC. That
// exploration tax is the honest price of not knowing the winner in
// advance (an SLO-aware probe policy is a ROADMAP item).
func adaptServeTable(cfg Config, machine memsim.Config) *profile.Table {
	sz := cfg.sizes()
	n := sz.joinLarge
	workers := 1
	if cfg.Workers > 0 {
		workers = cfg.Workers
	}
	loads := []float64{0.6, 0.9}
	acfg := adaptConfig(sz)

	spec := relation.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: 1.0, Seed: cfg.seed()}
	runs := 1 + len(loads)*(len(ops.Techniques)+1)
	sj := defaultWorkloads.servingJoin(spec, workers, runs)
	capacity := calibrateServeCapacity(sj, machine, workers, cfg.window())

	// Bursty traffic is the default (the adversarial shape for batch-boundary
	// refill AND for probe timing); -arrivals and -qcap override as in serveN.
	serveCfg := cfg
	if serveCfg.Arrivals == "" {
		serveCfg.Arrivals = "bursty"
	}
	policy := queuePolicy(cfg)

	rows := make([]string, len(loads))
	for i, l := range loads {
		rows[i] = loadLabel(l)
	}
	cols := append(append([]string(nil), techColumns...), adaptiveCol)
	t := profile.New("adaptN-serve", "Adaptive serving: p99 latency per engine (Xeon)", "kcycles", rows, cols)
	t.AddNote("per-shard adaptive controllers retune on cost drift and queue-depth jumps; %s arrivals, %s queue; offered load is a fraction of AMAC's batch capacity (%.3f req/cycle)",
		arrivalsName(serveCfg), policyLabel(policy, cfg.QueueCap), capacity)
	t.AddNote("adaptive settles on AMAC but pays an exploration tax in the tail: probe leases serve requests with the slower candidates under live load, so its p99 sits well below every batch-boundary static and above a clairvoyant static AMAC")

	type cell struct {
		load float64
		col  string
	}
	var cells []cell
	var tasks []func(*sweepEnv) serve.Result
	for _, load := range loads {
		for _, tech := range ops.Techniques {
			load, tech, runIdx := load, tech, 1+len(cells)
			cells = append(cells, cell{load, tech.String()})
			tasks = append(tasks, func(e *sweepEnv) serve.Result {
				sj := e.wl.servingJoin(spec, workers, runs)
				return runServe(serveCfg, sj, runIdx, machine, workers, tech, load, capacity, policy, nil, nil, nil, nil)
			})
		}
		load, runIdx := load, 1+len(cells)
		cells = append(cells, cell{load, adaptiveCol})
		tasks = append(tasks, func(e *sweepEnv) serve.Result {
			sj := e.wl.servingJoin(spec, workers, runs)
			// The adaptive cell at 90% load is adaptN's designated trace
			// cell: probe epochs, technique switches and width moves all
			// land on one deterministic export.
			var tr *obs.Trace
			var met *obs.Metrics
			if load == 0.9 {
				tr, met = cfg.Trace, cfg.Metrics
			}
			return runServe(serveCfg, sj, runIdx, machine, workers, ops.AMAC, load, capacity, policy, &acfg, tr, met, nil)
		})
	}
	for i, res := range runSweep(cfg, tasks) {
		t.Set(loadLabel(cells[i].load), cells[i].col, float64(res.Latency.P99())/1000)
	}
	return t
}

package experiments

import (
	"sync"
	"sync/atomic"
)

// This file implements the parallel sweep runner: an experiment enumerates
// its measurement points as independent closures (one per table cell or row
// group), and runSweep fans them out over host workers. Three properties
// make the fan-out invisible in the results:
//
//   - Points are independent by construction: each one simulates on a
//     private System/Core, and the arena-backed workloads it touches come
//     from its worker's own workloadSet (arenas are not goroutine-safe even
//     read-only). Workers share only immutable relations and schedules.
//   - Workload materialization is deterministic, so every worker's copy of
//     a workload is byte-identical in the simulated address space and each
//     point computes exactly the value it computes serially.
//   - Results land in a slice indexed by submission order; the caller
//     consumes them in that order, so rendered tables — and the -json
//     profile stream — are byte-identical to the serial run.
//
// The trade is host memory: every busy worker beyond the first materializes
// its own copies of the workloads its points touch.

// sweepEnv is the per-worker context a sweep point runs under.
type sweepEnv struct {
	wl *workloadSet
}

// defaultEnv is the environment of all serial execution: points run in
// submission order against the process-wide workload set.
var defaultEnv = &sweepEnv{wl: defaultWorkloads}

// runSweep executes the point tasks of one experiment sweep and returns
// their results in submission order. With parallelism 1 (or a single task)
// every task runs in order on the calling goroutine against the default
// workload set — exactly the pre-parallel behaviour. Otherwise
// min(parallelism, len(tasks)) workers drain the task list; worker 0 borrows
// the default set so already-built workloads keep serving, and every other
// worker owns a fresh private set.
func runSweep[T any](cfg Config, tasks []func(*sweepEnv) T) []T {
	results := make([]T, len(tasks))
	p := cfg.parallelism()
	if p > len(tasks) {
		p = len(tasks)
	}
	if p <= 1 {
		for i, task := range tasks {
			results[i] = task(defaultEnv)
		}
		return results
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		env := defaultEnv
		if w > 0 {
			env = &sweepEnv{wl: newWorkloadSet()}
		}
		wg.Add(1)
		go func(env *sweepEnv) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				results[i] = tasks[i](env)
			}
		}(env)
	}
	wg.Wait()
	return results
}

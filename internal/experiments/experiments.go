// Package experiments regenerates every table and figure of the AMAC
// paper's evaluation (plus the motivation experiments of Section 2 and a set
// of ablations suggested by Section 6) on top of the simulated memory
// hierarchy. Each experiment is registered under the identifier used in
// DESIGN.md and EXPERIMENTS.md and returns one or more profile.Tables whose
// rows and columns mirror the paper's artifact.
package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"amac/internal/obs"
	"amac/internal/prof"
	"amac/internal/profile"
)

// Scale selects the dataset sizes. The paper uses 2^27-tuple relations
// (2 GB); the default reproduction scale keeps the decisive property — the
// "large" working sets overflow the simulated LLC while the "small" build
// table fits in it — at a fraction of the simulation time.
type Scale string

const (
	// Tiny is for smoke tests and CI: everything fits in the caches, so
	// only functional behaviour (not the performance shapes) is meaningful.
	Tiny Scale = "tiny"
	// Small is the default reporting scale (about 1M-tuple relations).
	Small Scale = "small"
	// Paper uses the paper's original tuple counts; runs take a long time
	// and tens of gigabytes of memory.
	Paper Scale = "paper"
)

// ParseScale validates a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case Tiny, Small, Paper:
		return Scale(s), nil
	default:
		return Small, fmt.Errorf("experiments: unknown scale %q (want tiny, small or paper)", s)
	}
}

// Config parameterizes an experiment run.
type Config struct {
	// Scale selects dataset sizes; the zero value means Small.
	Scale Scale
	// Seed makes workload generation deterministic.
	Seed uint64
	// Window overrides the number of in-flight lookups for all prefetching
	// techniques (zero keeps each experiment's default of 10).
	Window int
	// Workers caps the worker sweep of the parallel scalability experiments
	// (scaleN): zero keeps the default sweep {1, 2, 4, 8, 16}; a positive
	// value sweeps the powers of two up to it, plus the value itself. The
	// serving experiment (serveN) uses it as the worker count (zero = 1).
	Workers int
	// Arrivals selects the serving experiments' traffic shape:
	// "deterministic", "poisson" (the default for empty) or "bursty".
	Arrivals string
	// QueueCap bounds the serving experiments' per-worker admission queue
	// and switches it to the drop policy; zero keeps an unbounded blocking
	// queue.
	QueueCap int
	// Parallel is the number of host workers independent sweep points fan
	// out over: zero uses every host core (GOMAXPROCS), one forces the
	// serial path. Results are identical for every value — each worker
	// deterministically materializes its own workload copies and results
	// are collected in submission order — so the knob trades host memory
	// (one workload image per busy worker) for wall clock only.
	Parallel int
	// Plans filters the pipeline experiment (pipeN) to the plans whose names
	// contain any of the comma-separated, case-insensitive tokens; empty
	// runs every plan. Validate with ValidatePipePlans.
	Plans string
	// Burst overrides the pipeline experiment's pump lease size (admissions
	// per upstream lease); zero keeps the pipeline default.
	Burst int
	// PipeCap overrides the pipeline experiment's inter-stage pipe capacity
	// in rows (the backpressure bound); zero keeps the pipeline default.
	PipeCap int
	// Faults overrides the fault experiment's chaos schedule: a scripted
	// episode list ("kind:shard@start+dur[xfactor]", comma-separated) or a
	// seeded random request ("rand:SEED[:N]"); empty keeps faultN's default
	// scenario (shard 0 at 4x memory latency for the middle half of the run).
	Faults string
	// Deadline overrides the fault experiment's per-request cycle budget;
	// zero derives it from the clean run's p99.
	Deadline int
	// SLOBudget sets the fault experiment's p99 SLO budget in cycles and
	// enables its brownout row; zero omits the row.
	SLOBudget int
	// Trace, if non-nil, records a simulated-time event trace of exactly one
	// designated cell per experiment — serveN's AMAC cell at 90% load,
	// adaptN's adaptive serving cell at 90% load, pipeN's planner-assigned
	// mixed plan, obsN's replay — so the exported trace is deterministic
	// regardless of -parallel. Purely observational: every table is
	// byte-identical with or without it.
	Trace *obs.Trace
	// Metrics, if non-nil, samples gauge time series from the same
	// designated cell (obsN and the serving experiments). Purely
	// observational, like Trace.
	Metrics *obs.Metrics
	// Profile, if non-nil, collects an exact cycle-attribution profile from
	// one designated cell per experiment — profN's batch and serving phases,
	// serveN's AMAC cell at 90% load — for flamegraph/pprof export. Purely
	// observational, like Trace: every table is byte-identical with or
	// without it.
	Profile *prof.Profile
}

func (c Config) scale() Scale {
	if c.Scale == "" {
		return Small
	}
	return c.Scale
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

func (c Config) window() int {
	if c.Window <= 0 {
		return 10
	}
	return c.Window
}

// parallelism resolves the sweep worker count (see Config.Parallel).
func (c Config) parallelism() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// workerCounts returns the worker sweep for the parallel scalability
// experiments.
func (c Config) workerCounts() []int {
	if c.Workers <= 0 {
		return []int{1, 2, 4, 8, 16}
	}
	var counts []int
	for w := 1; w < c.Workers; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, c.Workers)
}

// sizes holds every scale-dependent knob.
type sizes struct {
	joinLarge   int // |R| = |S| for the "large" (2 GB ⋈ 2 GB) join
	joinSmall   int // |R| for the "small" (2 MB ⋈ 2 GB) join
	gbLarge     int
	gbSmall     int
	gbRepeats   int
	bstSizes    []int // log2 tree sizes for Figure 10
	slSizes     []int // log2 skip list sizes for Figure 11
	bstT4       int   // log2 tree size for Figure 13
	slT4        int   // log2 skip list size for Figure 13
	xeonThreads []int
	t4Threads   []int
	windows     []int // in-flight sweep for Figure 6

	// adaptN knobs: the cache-resident dimension-table build size, the
	// cache-resident BST of the operator-mix workload (log2), and the
	// adaptive controller's segment/probe lengths (scaled so that probe
	// epochs stay a small fraction of the run at every scale).
	adaptDim     int
	adaptBST     int
	adaptSegment int
	adaptProbe   int

	// pipeN knobs: root probe rows per plan, the DRAM-resident build-table
	// size, the cache-resident dimension table of the mixed chain plan, the
	// BST of the probe→filter plan, the aggregation group count, and the
	// mini-planner's root sample size (whose first half warms, second half
	// measures — it must cover the dimension table about twice over).
	pipeRows   int
	pipeBuild  int
	pipeDim    int
	pipeBST    int
	pipeGroups int
	pipeSample int
}

func (c Config) sizes() sizes {
	switch c.scale() {
	case Tiny:
		return sizes{
			joinLarge: 1 << 13, joinSmall: 1 << 10,
			gbLarge: 1 << 12, gbSmall: 1 << 10, gbRepeats: 3,
			bstSizes: []int{10, 12}, slSizes: []int{9, 11},
			bstT4: 12, slT4: 11,
			xeonThreads: []int{1, 2, 4, 6, 8, 12},
			t4Threads:   []int{1, 8, 16, 64},
			windows:     []int{1, 5, 10, 15},
			adaptDim:    1 << 8, adaptBST: 8, adaptSegment: 256, adaptProbe: 64,
			pipeRows: 1 << 12, pipeBuild: 1 << 12, pipeDim: 1 << 7, pipeBST: 1 << 9, pipeGroups: 128, pipeSample: 256,
		}
	case Paper:
		return sizes{
			joinLarge: 1 << 27, joinSmall: 1 << 17,
			gbLarge: 1 << 27, gbSmall: 1 << 17, gbRepeats: 3,
			bstSizes: []int{15, 18, 21, 24, 26, 27}, slSizes: []int{15, 21, 25},
			bstT4: 25, slT4: 25,
			xeonThreads: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
			t4Threads:   []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64},
			windows:     []int{1, 5, 10, 15},
			adaptDim:    1 << 12, adaptBST: 12, adaptSegment: 4096, adaptProbe: 512,
			pipeRows: 1 << 18, pipeBuild: 1 << 20, pipeDim: 1 << 10, pipeBST: 1 << 12, pipeGroups: 4096, pipeSample: 4096,
		}
	default: // Small
		return sizes{
			joinLarge: 1 << 20, joinSmall: 1 << 17,
			gbLarge: 1 << 20, gbSmall: 1 << 17, gbRepeats: 3,
			bstSizes: []int{14, 16, 18, 20}, slSizes: []int{14, 16, 18},
			bstT4: 18, slT4: 17,
			xeonThreads: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
			t4Threads:   []int{1, 2, 4, 8, 16, 24, 32, 48, 64},
			windows:     []int{1, 5, 10, 15},
			adaptDim:    1 << 12, adaptBST: 12, adaptSegment: 2048, adaptProbe: 256,
			pipeRows: 1 << 16, pipeBuild: 1 << 16, pipeDim: 1 << 9, pipeBST: 1 << 11, pipeGroups: 1024, pipeSample: 2048,
		}
	}
}

// Descriptor registers one reproducible artifact.
type Descriptor struct {
	// ID is the identifier used across DESIGN.md, EXPERIMENTS.md, the CLI
	// and the benchmarks ("fig5a", "table3", ...).
	ID string
	// Title summarises what the paper artifact shows.
	Title string
	// Run regenerates the artifact.
	Run func(Config) []*profile.Table
}

// registry is populated by the experiment files' init order via Register.
var registry []Descriptor

func register(d Descriptor) { registry = append(registry, d) }

// Registry returns every registered experiment sorted by ID.
func Registry() []Descriptor {
	out := append([]Descriptor(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find locates an experiment by ID.
func Find(id string) (Descriptor, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Descriptor{}, false
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) ([]*profile.Table, error) {
	d, ok := Find(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return d.Run(cfg), nil
}

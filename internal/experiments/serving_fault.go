package experiments

import (
	"fmt"

	"amac/internal/fault"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
	"amac/internal/profile"
	"amac/internal/relation"
	"amac/internal/serve"
)

func init() {
	register(Descriptor{
		ID:    "faultN",
		Title: "Fault injection: graceful degradation of the streaming service under shard faults (Xeon, AMAC)",
		Run:   faultN,
	})
}

// faultLoad is the offered load of every faultN row, as a fraction of the
// aggregate AMAC service capacity — the decisive serveN operating point:
// healthy shards have headroom, but a 4x-slowed shard does not, so the run
// is only survivable if the recovery policies move or shed its traffic.
const faultLoad = 0.9

// faultKey identifies a replicated serving workload in a workloadSet.
type faultKey struct {
	spec    relation.JoinSpec
	workers int
	runs    int
}

// faultJoin is a serving workload for fault injection: unlike the
// partitioned serveN workload, every worker holds a FULL replica of the
// hash join (its own arena), so any shard can serve any request — the
// property hedging, rerouting and retry-on-sibling rely on. scheds maps
// each worker's schedule positions to the contiguous block of lookup
// indices it is home shard for; collectors are pre-allocated in run-major
// order so every sweep worker's copy lays them out at identical simulated
// addresses (see servingJoin).
type faultJoin struct {
	joins  []*ops.HashJoin
	outs   [][]*ops.Output // [run][worker]
	scheds [][]int32
}

// faultJoin returns the set's replicated serving workload for the key,
// materializing it on first use.
func (ws *workloadSet) faultJoin(spec relation.JoinSpec, workers, runs int) *faultJoin {
	build, probe := cachedJoinRelations(spec)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.faults.get(faultKey{spec, workers, runs}, func() *faultJoin {
		fj := &faultJoin{}
		n := probe.Len()
		for w := 0; w < workers; w++ {
			j := ops.NewHashJoin(build, probe)
			j.PrebuildRaw()
			fj.joins = append(fj.joins, j)
		}
		fj.outs = make([][]*ops.Output, runs)
		for r := range fj.outs {
			fj.outs[r] = make([]*ops.Output, workers)
			for w := range fj.outs[r] {
				fj.outs[r][w] = ops.NewOutput(fj.joins[w].Arena, false)
			}
		}
		fj.scheds = make([][]int32, workers)
		for w := 0; w < workers; w++ {
			lo, hi := w*n/workers, (w+1)*n/workers
			sched := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				sched = append(sched, int32(i))
			}
			fj.scheds[w] = sched
		}
		return fj
	})
}

// faultMode is one degradation row: which policies are layered onto the
// faulted service. The rows form a ladder — each adds one mechanism — so
// the table reads as an ablation of the recovery stack.
type faultMode struct {
	name     string
	faults   bool
	deadline bool
	retry    bool
	hedge    bool
	breaker  bool
	slo      bool
}

// faultN measures graceful degradation end to end: the serveN workload
// (skewed build keys, long divergent chains) is replicated across shards
// and served at 90% of aggregate capacity while a deterministic fault
// schedule — by default one shard at 4x memory latency for the middle half
// of the run — plays against the simulated clock. Each row re-runs the
// identical faulted workload with one more recovery mechanism enabled:
// nothing (naive), per-request deadlines with capped-backoff retry, hedged
// re-dispatch to a sibling replica, a per-shard circuit breaker, and (with
// -slo) the SLO brownout. The clean row is the same configuration with no
// faults, and doubles as the calibration run the deadline, hedge delay and
// SLO budget are derived from.
//
// -faults overrides the chaos schedule ("kind:shard@start+durxfactor" list
// or "rand:SEED[:N]"); -deadline and -slo override the derived cycle
// budgets; -workers sets the replica count (default 4, minimum 2 so every
// shard has a sibling); -arrivals and -qcap behave as in serveN. Rows are
// independent runs and fan out over -parallel sweep workers.
func faultN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	n := sz.joinLarge
	machine := memsim.XeonX5670()
	workers := 4
	if cfg.Workers > 0 {
		workers = cfg.Workers
	}
	if workers < 2 {
		workers = 2 // recovery needs a sibling to hedge or reroute to
	}

	modes := []faultMode{
		{name: "clean"},
		{name: "naive", faults: true},
		{name: "deadline", faults: true, deadline: true, retry: true},
		{name: "hedge", faults: true, deadline: true, retry: true, hedge: true},
		{name: "breaker", faults: true, deadline: true, retry: true, hedge: true, breaker: true},
	}
	if cfg.SLOBudget > 0 {
		modes = append(modes, faultMode{name: "slo", faults: true, deadline: true,
			retry: true, hedge: true, breaker: true, slo: true})
	}

	spec := relation.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: 1.0, Seed: cfg.seed()}
	runs := 1 + len(modes) // run 0 is the batch capacity calibration
	sj := defaultWorkloads.faultJoin(spec, workers, runs)
	perCore := calibrateFaultCapacity(sj, machine, workers, cfg.window())
	period := 1 / (faultLoad * perCore)
	policy := queuePolicy(cfg)

	// The run horizon (for scheduling default fault episodes) is the last
	// arrival across all shards; schedules are cached, so the rows replay
	// these exact arrivals.
	var horizon uint64
	for w := 0; w < workers; w++ {
		arr := cachedArrivalSchedule(cfg.Arrivals, period, len(sj.scheds[w]), cfg.seed()+uint64(w)+1)
		if len(arr) > 0 && arr[len(arr)-1] > horizon {
			horizon = arr[len(arr)-1]
		}
	}
	sched := faultSchedule(cfg, workers, horizon)

	// The clean row runs serially first: it is both the baseline row and the
	// calibration the recovery knobs derive from (deadline and SLO budget 2x
	// the clean p99, hedge delay the clean p99 — the tail-at-scale rule).
	clean := runFaultServe(defaultEnv, cfg, spec, workers, runs, 1, machine, period,
		nil, modes[0], 0, fault.RetryPolicy{}, fault.HedgePolicy{}, nil, fault.SLO{}, policy, nil, nil)
	p99c := clean.Latency.P99()
	if p99c == 0 {
		p99c = 1
	}
	deadline := 2 * p99c
	if cfg.Deadline > 0 {
		deadline = uint64(cfg.Deadline)
	}
	retry := fault.RetryPolicy{Max: 2, Backoff: deadline / 2}
	hedge := fault.HedgePolicy{Delay: p99c}
	// The cooldown is a few request deadlines rather than the absolute
	// default: an open breaker should send half-open probes on the timescale
	// requests resolve on, so a healed shard rejoins within a few deadlines
	// instead of staying evicted for the rest of the run.
	breaker := &fault.BreakerConfig{Cooldown: 4 * deadline}
	slo := fault.SLO{P99Budget: 2 * p99c}
	if cfg.SLOBudget > 0 {
		slo.P99Budget = uint64(cfg.SLOBudget)
	}

	rows := make([]string, len(modes))
	for i, m := range modes {
		rows[i] = m.name
	}
	lat := profile.New("faultN", "Fault injection: surviving-request latency by degradation mode (Xeon, AMAC)", "kcycles", rows, []string{"p50", "p95", "p99"})
	outs := profile.New("faultN-outcomes", "Fault injection: request outcome fractions by degradation mode", "fraction", rows, []string{"served", "timed-out", "failed", "shed", "dropped"})
	recov := profile.New("faultN-recovery", "Fault injection: recovery-path activity by degradation mode", "count", rows, []string{"retried", "hedged", "hedge-wins", "rerouted", "breaker-trips"})
	lat.AddNote("faults: %s (horizon %d cycles)", sched, horizon)
	lat.AddNote("|R| = |S| = 2^%d, Zipf(1.0) build keys, %d full replicas, %s arrivals, %s queue, %d%% of capacity (%.4f req/cycle/core), scale %q",
		log2(n), workers, arrivalsName(cfg), policyLabel(policy, cfg.QueueCap), int(faultLoad*100), perCore, cfg.scale())
	lat.AddNote("derived from the clean p99 (%d cycles): deadline %d, retry backoff %d x2, hedge delay %d, SLO budget %d",
		p99c, deadline, retry.Backoff, hedge.Delay, slo.P99Budget)
	outs.AddNote("each row adds one recovery mechanism to the previous; deadlines convert unbounded queueing into timed-out requests, hedging and the breaker move the sick shard's traffic to its siblings")

	var tasks []func(*sweepEnv) serve.Result
	for i, m := range modes {
		i, m := i, m
		tasks = append(tasks, func(e *sweepEnv) serve.Result {
			if i == 0 {
				return clean // already measured during calibration
			}
			// The breaker row is faultN's designated trace cell: the full
			// recovery stack, traced exactly once so the export is
			// deterministic under -parallel.
			var tr *obs.Trace
			var met *obs.Metrics
			if m.name == "breaker" {
				tr, met = cfg.Trace, cfg.Metrics
			}
			return runFaultServe(e, cfg, spec, workers, runs, 1+i, machine, period,
				sched, m, deadline, retry, hedge, breaker, slo, policy, tr, met)
		})
	}
	for i, res := range runSweep(cfg, tasks) {
		row := modes[i].name
		r := &res.Latency
		lat.Set(row, "p50", float64(r.P50())/1000)
		lat.Set(row, "p95", float64(r.P95())/1000)
		lat.Set(row, "p99", float64(r.P99())/1000)
		offered := float64(r.Offered)
		if offered == 0 {
			offered = 1
		}
		outs.Set(row, "served", float64(r.Completed)/offered)
		outs.Set(row, "timed-out", float64(r.TimedOut)/offered)
		outs.Set(row, "failed", float64(r.Failed)/offered)
		outs.Set(row, "shed", float64(r.Shed)/offered)
		outs.Set(row, "dropped", float64(r.Dropped)/offered)
		recov.Set(row, "retried", float64(r.Retried))
		recov.Set(row, "hedged", float64(r.Hedged))
		recov.Set(row, "hedge-wins", float64(r.HedgeWins))
		recov.Set(row, "rerouted", float64(r.Rerouted))
		trips := 0
		if res.Faults != nil {
			for _, t := range res.Faults.Breaker {
				if t.To == fault.StateOpen {
					trips++
				}
			}
		}
		recov.Set(row, "breaker-trips", float64(trips))
	}
	return []*profile.Table{lat, outs, recov}
}

// faultSchedule resolves the chaos schedule: the -faults spec when given,
// else the default scripted scenario — shard 0 at 4x memory latency for the
// middle half of the run.
func faultSchedule(cfg Config, workers int, horizon uint64) *fault.Schedule {
	if cfg.Faults != "" {
		spec, err := fault.ParseSpec(cfg.Faults)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		sched, err := spec.Resolve(workers, horizon)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return sched
	}
	return &fault.Schedule{Episodes: []fault.Episode{
		{Kind: fault.Slow, Shard: 0, Start: horizon / 4, Dur: horizon / 2, Factor: 4},
	}}
}

// runFaultServe executes one degradation row: every worker serves the full
// replicated join from a queue fed by its home block's arrival schedule,
// under the row's fault schedule and recovery policies. Uses the workload's
// pre-allocated run-indexed collectors and the shared arrival-schedule
// cache, like runServe.
func runFaultServe(e *sweepEnv, cfg Config, spec relation.JoinSpec, workers, runs, run int,
	machine memsim.Config, period float64, sched *fault.Schedule, m faultMode,
	deadline uint64, retry fault.RetryPolicy, hedge fault.HedgePolicy,
	breaker *fault.BreakerConfig, slo fault.SLO, policy serve.Policy,
	tr *obs.Trace, met *obs.Metrics) serve.Result {
	fj := e.wl.faultJoin(spec, workers, runs)
	specs := make([]serve.Worker[ops.ProbeState], workers)
	for w := 0; w < workers; w++ {
		fj.outs[run][w].Reset()
		specs[w] = serve.Worker[ops.ProbeState]{
			Machine:  fj.joins[w].ProbeMachine(fj.outs[run][w], true),
			Arrivals: cachedArrivalSchedule(cfg.Arrivals, period, len(fj.scheds[w]), cfg.seed()+uint64(w)+1),
		}
	}
	fo := serve.FaultyOptions{
		Options: serve.Options{
			Hardware:  machine,
			Technique: ops.AMAC,
			Window:    cfg.window(),
			QueueCap:  cfg.QueueCap,
			Policy:    policy,
			Prepare:   func(w int, c *memsim.Core) { warmTable(c, fj.joins[w]) },
			Trace:     tr,
			Metrics:   met,
		},
		Sched: fj.scheds,
	}
	if m.faults {
		fo.Faults = sched
	}
	if m.deadline {
		fo.Deadline = deadline
	}
	if m.retry {
		fo.Retry = retry
	}
	if m.hedge {
		fo.Hedge = hedge
	}
	if m.breaker {
		fo.Breaker = breaker
	}
	if m.slo {
		fo.SLO = slo
	}
	return serve.RunFaulty(fo, specs)
}

// calibrateFaultCapacity measures AMAC's per-core batch service capacity
// (requests per cycle) on one replica, under the same LLC share and
// active-thread count as the serving rows; the aggregate capacity is
// workers times it. Uses (and resets) the calibration collector, outs[0][0].
func calibrateFaultCapacity(fj *faultJoin, machine memsim.Config, workers, window int) float64 {
	out := fj.outs[0][0]
	out.Reset()
	sys := memsim.MustSystem(machine.ShareLLC(workers))
	core := sys.NewCore()
	sys.SetActiveThreads(workers, core)
	warmTable(core, fj.joins[0])
	core.ResetStats()
	pm := fj.joins[0].ProbeMachine(out, true)
	ops.RunMachine(core, pm, ops.AMAC, ops.Params{Window: window})
	return float64(pm.NumLookups()) / float64(core.Stats().Cycles)
}

package experiments

// Shape and wiring tests for the pipeN streaming-pipeline experiment. The
// acceptance properties run on the scaled hierarchy (see shapes_test.go):
// the build tables overflow the 256 KB LLC while the mixed chain plan's
// dimension table stays cache-resident, reproducing the regime split the
// mini-planner exists for.

import (
	"testing"

	"amac/internal/adapt"
	"amac/internal/ops"
	"amac/internal/pipeline"
)

// shapePipeSizes keeps the decisive proportions at test speed: 2^15-key
// build tables (~1.5 MB with buckets) against a 256 KB LLC, a 2^8-key
// dimension table that fits in L1/L2 and is covered twice by the sample's
// warm half (512 rows).
func shapePipeSizes() pipeSizes {
	return pipeSizes{rows: 1 << 13, build: 1 << 15, dim: 1 << 8, bst: 1 << 9, groups: 256, sample: 1 << 10}
}

func shapePipePlans() []pipePlan {
	return pipePlans(scaledXeon(), shapePipeSizes(), 99, adapt.Config{SegmentLookups: 1024, ProbeLookups: 128})
}

// TestShapePipelinePlanner is the pipeN acceptance bar: on the steady plans
// the mini-planner's assignment lands within 5% of the best exhaustively
// swept static per-stage assignment, and on the mixed plan (DRAM joins
// around a cache-resident dimension join) it beats every uniform-technique
// assignment.
func TestShapePipelinePlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline shape tests take a few seconds")
	}
	for _, p := range shapePipePlans() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			combos := pipeCombos(p.stages, 10)
			best, bestUniform := 0.0, 0.0
			bestLabel := ""
			for _, cc := range combos {
				v := p.run(defaultEnv, cc).cyclesPerRow()
				if best == 0 || v < best {
					best, bestLabel = v, pipeComboLabel(cc)
				}
				if _, ok := uniformTech(cc); ok && (bestUniform == 0 || v < bestUniform) {
					bestUniform = v
				}
			}
			choice := p.choice(defaultEnv)
			planner := p.run(defaultEnv, choice.Configs).cyclesPerRow()
			t.Logf("best static %s = %.1f cy/row, best uniform = %.1f, planner %s = %.1f",
				bestLabel, best, bestUniform, defaultEnv.planChoiceLabel(p), planner)
			if planner > 1.05*best {
				t.Errorf("planner (%.1f cy/row, %s) more than 5%% behind best static %s (%.1f)",
					planner, defaultEnv.planChoiceLabel(p), bestLabel, best)
			}
			if p.mixed && planner >= bestUniform {
				t.Errorf("mixed plan: planner (%.1f cy/row, %s) must beat every uniform assignment (best uniform %.1f)",
					planner, defaultEnv.planChoiceLabel(p), bestUniform)
			}
		})
	}
}

// TestShapePipelineAdaptive: per-stage adaptive execution stays in the same
// league as the planner on every plan — within 25% of the best static
// assignment (it pays online probe epochs the planner pays off-path).
func TestShapePipelineAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline shape tests take a few seconds")
	}
	for _, p := range shapePipePlans() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			uniformBest := 0.0
			for _, tech := range ops.Techniques {
				cfgs := make([]pipeline.StageConfig, p.stages)
				for i := range cfgs {
					cfgs[i] = pipeline.StageConfig{Tech: tech, Window: 10}
				}
				if v := p.run(defaultEnv, cfgs).cyclesPerRow(); uniformBest == 0 || v < uniformBest {
					uniformBest = v
				}
			}
			ad := p.adaptive(defaultEnv).cyclesPerRow()
			t.Logf("adaptive = %.1f cy/row, best uniform = %.1f", ad, uniformBest)
			if ad > 1.25*uniformBest {
				t.Errorf("adaptive (%.1f cy/row) more than 25%% behind the best uniform assignment (%.1f)", ad, uniformBest)
			}
		})
	}
}

// TestPipeExperimentDeterministicCells: repeated runs of the same pipeN cell
// — including the fresh-arena-per-cell charged-build plan — produce
// identical cycle counts, the invariant the parallel sweep relies on.
func TestPipeExperimentDeterministicCells(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline shape tests take a few seconds")
	}
	for _, p := range shapePipePlans() {
		cfgs := make([]pipeline.StageConfig, p.stages)
		for i := range cfgs {
			cfgs[i] = pipeline.StageConfig{Tech: ops.AMAC, Window: 10}
		}
		first := p.run(defaultEnv, cfgs)
		again := p.run(defaultEnv, cfgs)
		if first != again {
			t.Errorf("%s: repeated cell differs: %+v vs %+v", p.name, first, again)
		}
		c1 := p.choice(defaultEnv)
		c2 := p.choice(defaultEnv)
		if c1.PlanCycles != c2.PlanCycles || len(c1.Configs) != len(c2.Configs) {
			t.Errorf("%s: cached plan choice not stable: %v vs %v", p.name, c1, c2)
		}
	}
}

// TestPipeCombos: the exhaustive enumeration covers 4^stages assignments,
// each exactly once, with every uniform assignment present.
func TestPipeCombos(t *testing.T) {
	combos := pipeCombos(3, 10)
	if len(combos) != 64 {
		t.Fatalf("3-stage enumeration has %d combos, want 64", len(combos))
	}
	seen := map[string]bool{}
	uniforms := 0
	for _, cc := range combos {
		l := pipeComboLabel(cc)
		if seen[l] {
			t.Fatalf("combo %s enumerated twice", l)
		}
		seen[l] = true
		if _, ok := uniformTech(cc); ok {
			uniforms++
		}
	}
	if uniforms != len(ops.Techniques) {
		t.Fatalf("%d uniform combos, want %d", uniforms, len(ops.Techniques))
	}
}

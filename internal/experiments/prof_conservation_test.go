package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"amac/internal/adapt"
	"amac/internal/arena"
	"amac/internal/ht"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/pipeline"
	"amac/internal/prof"
	"amac/internal/relation"
	"amac/internal/serve"
)

// checkConservation asserts the profiler's central invariant: every cycle the
// core advanced is attributed to exactly one (context, category) cell, so the
// attribution total reconciles exactly — not approximately — with the core's
// cycle counter.
func checkConservation(t *testing.T, name string, cp *prof.CoreProf, cycles uint64) {
	t.Helper()
	if got := cp.TotalCycles(); got != cycles {
		t.Errorf("%s: attributed %d cycles, core counted %d (off by %d)", name, got, cycles, int64(got)-int64(cycles))
	}
	if got := cp.Breakdown().Total(); got != cycles {
		t.Errorf("%s: breakdown sums to %d cycles, core counted %d", name, got, cycles)
	}
}

// profCore builds a fresh profiled core on the given socket model.
func profCore(machine memsim.Config, name string) (*memsim.Core, *prof.CoreProf) {
	sys := memsim.MustSystem(machine)
	c := sys.NewCore()
	cp := prof.NewCoreProf(name)
	c.SetProfiler(cp)
	return c, cp
}

// TestProfConservationEngines runs every engine over the batch workloads —
// the uniform and the skewed (divergent-chain, early-exit) hash-join probe
// and the BST search — and requires exact conservation for each.
func TestProfConservationEngines(t *testing.T) {
	machine := memsim.XeonX5670()
	for _, tech := range ops.Techniques {
		for _, skew := range []float64{0, 1.0} {
			name := fmt.Sprintf("%v/join-zipf%.1f", tech, skew)
			spec := relation.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, ZipfBuild: skew, Seed: 7}
			pj := newParallelJoin(spec, 1)
			c, cp := profCore(machine, name)
			warmTable(c, pj.Parts[0])
			c.ResetStats()
			out := ops.NewOutput(pj.Parts[0].Arena, false)
			ops.RunMachine(c, pj.ProbeMachine(0, out, skew > 0), tech, ops.Params{Window: 8})
			checkConservation(t, name, cp, c.Stats().Cycles)
		}

		name := fmt.Sprintf("%v/bst", tech)
		w, out := defaultEnv.wl.bstWorkload(1<<10, 7)
		c, cp := profCore(machine, name)
		ops.RunMachine(c, w.SearchMachine(out), tech, ops.Params{Window: 8})
		checkConservation(t, name, cp, c.Stats().Cycles)
	}
}

// TestProfConservationStreaming runs every streaming engine through the
// serving layer (open-loop arrivals, queue idle included) and reconciles each
// worker's profile against its core.
func TestProfConservationStreaming(t *testing.T) {
	machine := memsim.XeonX5670()
	spec := relation.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, ZipfBuild: 1.0, Seed: 7}
	pj := newParallelJoin(spec, 1)
	n := pj.Parts[0].Probe.Len()
	arrivals := make([]uint64, n)
	for i := range arrivals {
		arrivals[i] = uint64(i) * 120 // sparse enough to exercise the idle path
	}
	for _, tech := range ops.Techniques {
		sp := prof.NewProfile()
		out := ops.NewOutput(pj.Parts[0].Arena, false)
		res := serve.Run(serve.Options{
			Hardware:  machine,
			Technique: tech,
			Window:    8,
			Prepare:   func(w int, c *memsim.Core) { warmTable(c, pj.Parts[0]) },
			Profile:   sp,
		}, []serve.Worker[ops.ProbeState]{{Machine: pj.ProbeMachine(0, out, true), Arrivals: arrivals}})
		checkConservation(t, fmt.Sprintf("%v/serve", tech), sp.Cores()[0], res.PerWorker[0].Stats.Cycles)
	}
}

// TestProfConservationAdaptive runs the adaptive controller's probe/exploit
// loop over the phase-shift workload obsN replays.
func TestProfConservationAdaptive(t *testing.T) {
	n := 1 << 12
	half := n / 2
	ex := defaultEnv.wl.adaptWorkload(adaptKey{"shiftjoin", 1 << 8, n, half, 7}, func() adaptExec {
		return adaptShiftJoinExec(1<<8, n, half, 7)
	})
	c := adaptCore(memsim.XeonX5670(), ex)
	cp := prof.NewCoreProf("adaptive")
	c.SetProfiler(cp)
	ctl := adapt.NewController(adapt.Config{SegmentLookups: 256, ProbeLookups: 64})
	ex.adaptive(c, ctl)
	checkConservation(t, "adaptive/shiftjoin", cp, c.Stats().Cycles)
	if cp.SumUnder("probe", prof.CatCompute) == 0 {
		t.Error("adaptive run charged no compute under the probe frame")
	}
}

// TestProfConservationPipeline runs a two-stage build→probe→aggregate
// pipeline (with a charged build prelude) on one profiled core.
func TestProfConservationPipeline(t *testing.T) {
	const rows, buildN, groups = 1 << 10, 1 << 9, 64
	buildRel := pipeRel("R", buildN,
		func(i int) uint64 { return uint64(i) + 1 },
		func(i int) uint64 { return uint64(i) % groups })
	probeRel := pipeRel("S", rows,
		func(i int) uint64 { return (uint64(i)*2654435761)%uint64(2*buildN) + 1 },
		func(i int) uint64 { return uint64(i) })

	a := arena.New()
	table := ht.New(a, buildN/ops.TuplesPerBucket)
	agg := ht.NewAgg(a, groups)
	b := pipeline.NewBuilder(a)
	b.PreludeBuild(table, ops.NewInput(a, buildRel))
	b.ScanProbe(table, ops.NewInput(a, probeRel), true)
	b.Aggregate(agg, pipeline.SelBuildPayload)

	c, cp := profCore(memsim.XeonX5670(), "pipeline")
	b.Build(nil).Run(c, []pipeline.StageConfig{
		{Tech: ops.AMAC, Window: 8},
		{Tech: ops.GP, Window: 4},
	})
	checkConservation(t, "pipeline/agg", cp, c.Stats().Cycles)
}

// TestProfiledDifferential is the profiler's PR 7 contract as a test:
// attaching a profile sink changes no simulated result byte. The profiled
// experiments run unprofiled and profiled (serial and under parallel sweep
// fan-out, where only the designated cell records) and both the rendered
// text tables and the -json rows must match exactly. The profiled runs must
// also actually record cycles — an empty profile would pass the diff while
// proving nothing.
func TestProfiledDifferential(t *testing.T) {
	baseText := map[string]string{}
	baseJSON := map[string]string{}
	baseline := func(id string) (string, string) {
		if _, ok := baseText[id]; !ok {
			baseText[id], baseJSON[id] = renderRun(t, id, Config{Scale: Tiny, Parallel: 1})
		}
		return baseText[id], baseJSON[id]
	}

	cases := []struct {
		id       string
		parallel int
	}{
		{"profN", 1},
		{"profN", 4},
		{"serveN", 1},
		{"serveN", 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/parallel=%d", tc.id, tc.parallel), func(t *testing.T) {
			wantText, wantJSON := baseline(tc.id)

			cfg := Config{Scale: Tiny, Parallel: tc.parallel, Profile: prof.NewProfile()}
			gotText, gotJSON := renderRun(t, tc.id, cfg)

			if gotText != wantText {
				t.Errorf("text tables differ profiled vs unprofiled:\n--- unprofiled ---\n%s\n--- profiled ---\n%s", wantText, gotText)
			}
			if gotJSON != wantJSON {
				t.Errorf("JSON rows differ profiled vs unprofiled:\n--- unprofiled ---\n%s\n--- profiled ---\n%s", wantJSON, gotJSON)
			}

			if cfg.Profile.TotalCycles() == 0 {
				t.Fatal("profiled run attributed no cycles")
			}
			var folded bytes.Buffer
			if err := cfg.Profile.WriteFolded(&folded); err != nil {
				t.Fatalf("WriteFolded: %v", err)
			}
			if folded.Len() == 0 {
				t.Error("profiled run exported an empty folded profile")
			}
		})
	}
}

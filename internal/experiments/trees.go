package experiments

import (
	"fmt"

	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/profile"
)

func init() {
	register(Descriptor{ID: "fig10", Title: "Binary search tree search: cycles per probe tuple versus tree size (Xeon)", Run: fig10})
	register(Descriptor{ID: "fig11", Title: "Skip list search and insert: cycles per output tuple versus size (Xeon)", Run: fig11})
	register(Descriptor{ID: "fig13", Title: "BST search and skip list search on SPARC T4", Run: fig13})
}

// fig10 reproduces Figure 10: BST search cost as a function of tree size.
func fig10(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	rows := make([]string, len(sz.bstSizes))
	for i, e := range sz.bstSizes {
		rows[i] = fmt.Sprintf("2^%d", e)
	}
	t := profile.New("fig10", "BST search on Xeon x5670", "cycles/probe tuple", rows, techColumns)
	t.AddNote("rows: tree size (nodes); probe relation size equals tree size; scale %q", cfg.scale())
	type cell struct {
		row  string
		tech ops.Technique
	}
	var cells []cell
	var tasks []func(*sweepEnv) phaseResult
	for _, e := range sz.bstSizes {
		for _, tech := range ops.Techniques {
			e, tech := e, tech
			cells = append(cells, cell{fmt.Sprintf("2^%d", e), tech})
			tasks = append(tasks, func(env *sweepEnv) phaseResult {
				return runBSTSearch(env, memsim.XeonX5670(), e, tech, cfg.window(), cfg.seed())
			})
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		t.Set(cells[i].row, cells[i].tech.String(), res.cyclesPerTuple())
	}
	return []*profile.Table{t}
}

// fig11 reproduces Figure 11: skip list search and insert cost versus size.
func fig11(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	rows := make([]string, len(sz.slSizes))
	for i, e := range sz.slSizes {
		rows[i] = fmt.Sprintf("2^%d", e)
	}
	search := profile.New("fig11-search", "Skip list search on Xeon x5670", "cycles/probe tuple", rows, techColumns)
	insert := profile.New("fig11-insert", "Skip list insert on Xeon x5670", "cycles/input tuple", rows, techColumns)
	search.AddNote("rows: skip list size (elements); scale %q", cfg.scale())
	insert.AddNote("rows: number of inserted elements (list built from scratch); scale %q", cfg.scale())
	type cell struct {
		row  string
		tech ops.Technique
	}
	type pair struct{ search, insert phaseResult }
	var cells []cell
	var tasks []func(*sweepEnv) pair
	for _, e := range sz.slSizes {
		for _, tech := range ops.Techniques {
			e, tech := e, tech
			cells = append(cells, cell{fmt.Sprintf("2^%d", e), tech})
			tasks = append(tasks, func(env *sweepEnv) pair {
				return pair{
					search: runSkipListSearch(env, memsim.XeonX5670(), e, tech, cfg.window(), cfg.seed()),
					insert: runSkipListInsert(memsim.XeonX5670(), e, tech, cfg.window(), cfg.seed()),
				}
			})
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		search.Set(cells[i].row, cells[i].tech.String(), res.search.cyclesPerTuple())
		insert.Set(cells[i].row, cells[i].tech.String(), res.insert.cyclesPerTuple())
	}
	return []*profile.Table{search, insert}
}

// fig13 reproduces Figure 13: BST search and skip list search on the T4.
func fig13(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	rows := []string{
		fmt.Sprintf("BST search (2^%d nodes)", sz.bstT4),
		fmt.Sprintf("Skip list search (2^%d elements)", sz.slT4),
	}
	t := profile.New("fig13", "BST and skip list search on SPARC T4", "cycles/probe tuple", rows, techColumns)
	t.AddNote("scale %q", cfg.scale())
	type pair struct{ bst, sl phaseResult }
	var tasks []func(*sweepEnv) pair
	for _, tech := range ops.Techniques {
		tech := tech
		tasks = append(tasks, func(env *sweepEnv) pair {
			return pair{
				bst: runBSTSearch(env, memsim.SPARCT4(), sz.bstT4, tech, cfg.window(), cfg.seed()),
				sl:  runSkipListSearch(env, memsim.SPARCT4(), sz.slT4, tech, cfg.window(), cfg.seed()),
			}
		})
	}
	for i, res := range runSweep(cfg, tasks) {
		tech := ops.Techniques[i]
		t.Set(rows[0], tech.String(), res.bst.cyclesPerTuple())
		t.Set(rows[1], tech.String(), res.sl.cyclesPerTuple())
	}
	return []*profile.Table{t}
}

package experiments

import (
	"fmt"

	"amac/internal/adapt"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/ops"
	"amac/internal/prof"
	"amac/internal/profile"
	"amac/internal/relation"
	"amac/internal/serve"
)

func init() {
	register(Descriptor{
		ID:    "serveN",
		Title: "Streaming request service: arrival-rate sweep, throughput and tail latency per technique (Xeon)",
		Run:   serveN,
	})
}

// serveLoads are the offered loads of the sweep, as fractions of AMAC's
// measured batch service capacity on the same workload. 0.9 is the decisive
// row: within AMAC's capacity but beyond what the slower batch-boundary
// techniques can drain, so their queues grow while AMAC's p99 stays near
// its service time. 1.2 overloads everyone and shows the saturation shape.
var serveLoads = []float64{0.3, 0.6, 0.9, 1.2}

func loadLabel(l float64) string { return fmt.Sprintf("%d%%", int(l*100+0.5)) }

// servingKey identifies a serving-prepared partitioned join in a
// workloadSet.
type servingKey struct {
	spec    relation.JoinSpec
	workers int
	runs    int
}

// servingJoin is a partitioned join prepared for a serving sweep: the
// workload plus the output collectors of every run of the sweep
// (calibration is run 0), pre-allocated in run-major order at
// materialization time. Pre-allocation pins the collectors' arena
// addresses: a serial sweep allocates them lazily in exactly this order, so
// every sweep worker's private copy — whichever subset of runs it executes —
// charges its stores at the same simulated addresses and reproduces the
// serial cycle counts bit for bit.
type servingJoin struct {
	pj   *ops.PartitionedHashJoin
	outs [][]*ops.Output // [run][worker]
}

// servingJoin returns the set's serving workload for the key, materializing
// it on first use. Collectors are not reset here; each run resets the ones
// it uses.
func (ws *workloadSet) servingJoin(spec relation.JoinSpec, workers, runs int) *servingJoin {
	build, probe := cachedJoinRelations(spec)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.serves.get(servingKey{spec, workers, runs}, func() *servingJoin {
		pj := ops.PartitionJoin(build, probe, workers)
		pj.PrebuildRaw()
		outs := make([][]*ops.Output, runs)
		for r := range outs {
			outs[r] = make([]*ops.Output, workers)
			for w := 0; w < workers; w++ {
				outs[r][w] = ops.NewOutput(pj.Parts[w].Arena, false)
				outs[r][w].Sequential = true // dense per-worker output partition
			}
		}
		return &servingJoin{pj: pj, outs: outs}
	})
}

// serveN measures the streaming request-serving layer end to end: a hash
// join with skewed build keys (long, divergent bucket chains — the fig5b
// [1, 0] configuration where AMAC's refill flexibility matters most) is
// served under open-loop arrivals at a sweep of offered loads, once per
// technique, and each run reports achieved throughput and latency
// quantiles. Loads are calibrated against AMAC's batch-mode cycles per
// tuple measured on the identical workload, so "90%" means ninety percent
// of what AMAC sustains with an always-full input — a rate the
// batch-boundary techniques cannot keep up with.
//
// -workers shards the service (default 1 worker); -arrivals selects the
// traffic shape (poisson by default); -qcap bounds the admission queue and
// switches it to the drop policy, adding a drop-fraction table. The
// (load, technique) cells are independent runs and fan out over -parallel
// sweep workers.
func serveN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	n := sz.joinLarge
	machine := memsim.XeonX5670()
	workers := 1
	if cfg.Workers > 0 {
		workers = cfg.Workers
	}

	spec := relation.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: 1.0, Seed: cfg.seed()}
	runs := 1 + len(serveLoads)*len(ops.Techniques)
	sj := defaultWorkloads.servingJoin(spec, workers, runs)
	capacity := calibrateServeCapacity(sj, machine, workers, cfg.window())
	policy := queuePolicy(cfg)

	rows := make([]string, len(serveLoads))
	for i, l := range serveLoads {
		rows[i] = loadLabel(l)
	}
	tput := profile.New("serveN", "Streaming service: achieved throughput versus offered load (Xeon)", "M req/s", rows, techColumns)
	p50 := profile.New("serveN-p50", "Streaming service: median request latency versus offered load (Xeon)", "kcycles", rows, techColumns)
	p99 := profile.New("serveN-p99", "Streaming service: p99 request latency versus offered load (Xeon)", "kcycles", rows, techColumns)
	var drops *profile.Table
	if policy == serve.Drop {
		drops = profile.New("serveN-drops", "Streaming service: dropped request fraction versus offered load (Xeon)", "fraction", rows, techColumns)
	}
	tput.AddNote("rows: offered load as a fraction of AMAC's batch service capacity (%.3f req/cycle aggregate)", capacity)
	tput.AddNote("|R| = |S| = 2^%d, Zipf(1.0) build keys, %d worker(s), %s arrivals, %s queue, scale %q",
		log2(n), workers, arrivalsName(cfg), policyLabel(policy, cfg.QueueCap), cfg.scale())
	p99.AddNote("AMAC refills each slot the moment a lookup completes; GP/SPP admit only at batch boundaries, " +
		"so near saturation their queues grow and p99 inflates while AMAC's stays near its service time")

	type cell struct {
		load float64
		tech ops.Technique
	}
	var cells []cell
	var tasks []func(*sweepEnv) serve.Result
	for _, load := range serveLoads {
		for _, tech := range ops.Techniques {
			load, tech := load, tech
			runIdx := 1 + len(cells) // collector set of this cell; 0 is calibration
			cells = append(cells, cell{load, tech})
			tasks = append(tasks, func(e *sweepEnv) serve.Result {
				sj := e.wl.servingJoin(spec, workers, runs)
				// The AMAC cell at 90% load is serveN's designated trace cell:
				// the decisive row, traced (and profiled) exactly once so the
				// export is deterministic under -parallel.
				var tr *obs.Trace
				var met *obs.Metrics
				var pr *prof.Profile
				if tech == ops.AMAC && load == 0.9 {
					tr, met, pr = cfg.Trace, cfg.Metrics, cfg.Profile
				}
				return runServe(cfg, sj, runIdx, machine, workers, tech, load, capacity, policy, nil, tr, met, pr)
			})
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		c := cells[i]
		row := loadLabel(c.load)
		tput.Set(row, c.tech.String(), res.ThroughputPerCycle()*machine.FreqHz/1e6)
		p50.Set(row, c.tech.String(), float64(res.Latency.P50())/1000)
		p99.Set(row, c.tech.String(), float64(res.Latency.P99())/1000)
		if drops != nil {
			drops.Set(row, c.tech.String(), res.Latency.DropFraction())
		}
	}

	out := []*profile.Table{tput, p50, p99}
	if drops != nil {
		out = append(out, drops)
	}
	return out
}

// runServe executes one (technique, load) cell of the sweep: every worker
// serves its partition's probe machine from a queue fed by its own arrival
// schedule, rates split across workers in proportion to their partition
// sizes so each worker's stream spans the same simulated duration. The cell
// uses the serving workload's pre-allocated run-indexed collectors and the
// shared arrival-schedule cache, so repeated cells rebuild nothing. A
// non-nil adaptive config replaces the fixed technique with per-shard
// adaptive controllers (the adaptN serving table). tr and met, non-nil only
// for an experiment's designated trace cell, attach the observability sinks.
func runServe(cfg Config, sj *servingJoin, run int, machine memsim.Config, workers int,
	tech ops.Technique, load, capacity float64, policy serve.Policy, adaptive *adapt.Config,
	tr *obs.Trace, met *obs.Metrics, pr *prof.Profile) serve.Result {
	pj := sj.pj
	totalTuples := pj.ProbeTuples()
	outs := sj.outs[run]
	specs := make([]serve.Worker[ops.ProbeState], workers)
	for w := 0; w < workers; w++ {
		outs[w].Reset()
		nw := pj.Parts[w].Probe.Len()
		if nw == 0 {
			specs[w] = serve.Worker[ops.ProbeState]{Machine: pj.ProbeMachine(w, outs[w], true)}
			continue
		}
		// Worker w's offered rate is load*capacity*nw/total requests per
		// cycle; its mean inter-arrival period is the reciprocal.
		period := float64(totalTuples) / (load * capacity * float64(nw))
		specs[w] = serve.Worker[ops.ProbeState]{
			Machine:  pj.ProbeMachine(w, outs[w], true),
			Arrivals: cachedArrivalSchedule(cfg.Arrivals, period, nw, cfg.seed()+uint64(w)+1),
		}
	}
	return serve.Run(serve.Options{
		Hardware:  machine,
		Technique: tech,
		Window:    cfg.window(),
		QueueCap:  cfg.QueueCap,
		Policy:    policy,
		Prepare:   func(w int, c *memsim.Core) { warmTable(c, pj.Parts[w]) },
		Adaptive:  adaptive,
		Trace:     tr,
		Metrics:   met,
		Profile:   pr,
	}, specs)
}

// calibrateServeCapacity measures AMAC's aggregate batch service capacity
// (requests per cycle) on the serving workload: batch-mode AMAC over the
// same partitions and cores, total tuples over the slowest worker's time,
// exactly as the scaleN experiment reports it. It defines the load axis of
// every serving table (serveN, adaptN-serve), so there is exactly one copy.
// Uses (and resets) the workload's calibration collector set, outs[0].
func calibrateServeCapacity(sj *servingJoin, machine memsim.Config, workers, window int) float64 {
	for _, out := range sj.outs[0] {
		out.Reset()
	}
	batch := runParallelProbeOuts(sj.pj, parallelJoinConfig{
		machine: machine, workers: workers, tech: ops.AMAC, window: window, earlyExit: true,
	}, sj.outs[0])
	return float64(batch.tuples) / float64(batch.merged.Cycles)
}

// queuePolicy resolves the admission-queue policy from the configuration: a
// bounded queue (-qcap) drops on overflow, an unbounded one blocks.
func queuePolicy(cfg Config) serve.Policy {
	if cfg.QueueCap > 0 {
		return serve.Drop
	}
	return serve.Block
}

// arrivalsName resolves the configured arrival process label.
func arrivalsName(cfg Config) string {
	if cfg.Arrivals == "" {
		return "poisson"
	}
	return cfg.Arrivals
}

// policyLabel renders the queue configuration for table notes.
func policyLabel(p serve.Policy, cap int) string {
	if p == serve.Drop {
		return fmt.Sprintf("drop@%d", cap)
	}
	return "unbounded block"
}

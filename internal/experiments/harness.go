package experiments

import (
	"fmt"

	"amac/internal/exec"
	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/relation"
)

// phaseResult captures one measured operator phase on one representative
// hardware thread.
type phaseResult struct {
	cycles uint64
	stats  memsim.Stats
	tuples int
	// outputCount is the number of materialized results (probe phases).
	outputCount uint64
}

// cyclesPerTuple is the paper's main metric.
func (r phaseResult) cyclesPerTuple() float64 {
	if r.tuples == 0 {
		return 0
	}
	return float64(r.cycles) / float64(r.tuples)
}

// instrPerTuple reproduces the first row of the paper's Table 3.
func (r phaseResult) instrPerTuple() float64 {
	if r.tuples == 0 {
		return 0
	}
	return float64(r.stats.Instructions) / float64(r.tuples)
}

// throughputMTuplesPerSec converts one thread's partition time into the
// aggregate probe throughput of `threads` identical threads, the metric of
// Figures 7 and 8.
func (r phaseResult) throughputMTuplesPerSec(freqHz float64, threads int) float64 {
	if r.cycles == 0 {
		return 0
	}
	seconds := float64(r.cycles) / freqHz
	return float64(r.tuples) * float64(threads) / seconds / 1e6
}

// joinConfig describes one hash-join measurement.
type joinConfig struct {
	machine memsim.Config
	spec    relation.JoinSpec
	// buckets overrides the table's bucket count (0 = |R|/2, the
	// Balkesen-style sizing; Figure 3 uses |R|/8 for four-node chains).
	buckets int
	// earlyExit terminates probes on the first match (unique build keys).
	earlyExit bool
	// provision overrides the stage count GP and SPP provision for the
	// probe (0 keeps the operator default of 2: one node per bucket). The
	// paper tunes this per experiment.
	provision int
	tech      ops.Technique
	window    int
	// chargeBuild measures the build phase with the same technique before
	// the probe phase (Figure 5); otherwise the table is pre-built outside
	// the measurement and only its cache footprint is warmed.
	chargeBuild bool
	// threads is the number of software threads assumed active; the probe
	// relation is partitioned across them and one representative thread is
	// simulated. threadsPerSocket (0 = all on one socket) controls how many
	// of them share an LLC and off-chip queue.
	threads          int
	threadsPerSocket int
}

// joinResult is the outcome of runJoin.
type joinResult struct {
	build phaseResult
	probe phaseResult
}

// runJoin generates the relations, materializes the workload, and measures
// the requested phases. The workload comes from the sweep worker's private
// set (probe-only runs) or is rebuilt fresh from the shared relations
// (charged builds mutate the table), so concurrent sweep points never touch
// one arena.
func runJoin(e *sweepEnv, cfg joinConfig) joinResult {
	if cfg.threads <= 0 {
		cfg.threads = 1
	}
	if cfg.threadsPerSocket <= 0 {
		cfg.threadsPerSocket = cfg.threads
	}
	if cfg.window <= 0 {
		cfg.window = ops.DefaultWindow
	}

	// The measured phases dictate what may be reused: a charged build phase
	// mutates the table, so it materializes a fresh workload from the cached
	// relations; a probe-only run reuses the whole materialized image (table,
	// inputs and output buffer are read-only or reset), which a fresh
	// construction would reproduce byte-for-byte anyway.
	var (
		j   *ops.HashJoin
		out *ops.Output
	)
	if cfg.chargeBuild {
		build, probe := cachedJoinRelations(cfg.spec)
		if cfg.buckets > 0 {
			j = ops.NewHashJoinWithBuckets(build, probe, cfg.buckets)
		} else {
			j = ops.NewHashJoin(build, probe)
		}
	} else {
		j, out = e.wl.probeJoin(cfg.spec, cfg.buckets)
	}

	sys := memsim.MustSystem(cfg.machine)
	core := sys.NewCore()
	sys.SetActiveThreads(cfg.threadsPerSocket, core)

	var res joinResult

	if cfg.chargeBuild {
		m := j.BuildMachine()
		ops.RunMachine(core, m, cfg.tech, ops.Params{Window: cfg.window})
		res.build = phaseResult{cycles: core.Cycle(), stats: core.Stats(), tuples: j.Build.Len()}
		out = ops.NewOutput(j.Arena, false)
	} else {
		warmTable(core, j)
	}
	core.ResetStats()

	pm := j.ProbeMachine(out, cfg.earlyExit)
	pm.Provision = cfg.provision
	pm.Limit = j.Probe.Len() / cfg.threads
	ops.RunMachine(core, pm, cfg.tech, ops.Params{Window: cfg.window})
	res.probe = phaseResult{
		cycles:      core.Cycle(),
		stats:       core.Stats(),
		tuples:      pm.NumLookups(),
		outputCount: out.Count,
	}
	return res
}

// warmTable installs the hash table's most recently written lines into the
// hierarchy, approximating the cache state the probe phase would inherit
// from a real build phase that ran on the same core. Only as much of the
// table as fits in the LLC is touched (most recent lines last, so they are
// the most recently used).
func warmTable(core *memsim.Core, j *ops.HashJoin) {
	llc := uint64(core.Config().L3.SizeBytes)
	total := j.Table.NumBuckets() * 64
	start := uint64(0)
	if total > llc {
		start = total - llc
	}
	base := uint64(j.Table.BaseAddr())
	for off := start; off < total; off += 64 {
		core.Touch(memsim.Addr(base+off), 64)
	}
}

// parallelJoinConfig describes one sharded multi-core hash-join measurement:
// the probe relation is hash-partitioned across workers and every worker
// simulates its shard on a private core, concurrently and deterministically
// (see exec.RunParallel).
type parallelJoinConfig struct {
	machine   memsim.Config
	spec      relation.JoinSpec
	workers   int
	tech      ops.Technique
	window    int
	earlyExit bool
}

// parallelJoinResult is the merged outcome of runParallelJoin.
type parallelJoinResult struct {
	// perWorker holds each worker's probe-phase counters.
	perWorker []memsim.Stats
	// merged has Cycles = max over workers, counters summed.
	merged memsim.Stats
	// tuples is the total probe cardinality across all workers.
	tuples int
	// outputCount and outputChecksum aggregate the workers' outputs.
	outputCount    uint64
	outputChecksum uint64
}

// aggregateThroughputMTuplesPerSec is the scalability metric of the scaleN
// experiment: total probe tuples divided by the slowest worker's elapsed
// time.
func (r parallelJoinResult) aggregateThroughputMTuplesPerSec(freqHz float64) float64 {
	if r.merged.Cycles == 0 {
		return 0
	}
	seconds := float64(r.merged.Cycles) / freqHz
	return float64(r.tuples) / seconds / 1e6
}

// newParallelJoin generates the relations and hash-partitions them across
// the workers, tables pre-built raw. Probes never mutate the tables, so one
// partitioned workload can be reused read-only across techniques.
func newParallelJoin(spec relation.JoinSpec, workers int) *ops.PartitionedHashJoin {
	build, probe := cachedJoinRelations(spec)
	pj := ops.PartitionJoin(build, probe, workers)
	pj.PrebuildRaw()
	return pj
}

// runParallelJoin generates a fresh partitioned workload and measures it;
// sweeps that reuse one workload across techniques call newParallelJoin once
// and runParallelProbe per technique.
func runParallelJoin(cfg parallelJoinConfig) parallelJoinResult {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	return runParallelProbe(newParallelJoin(cfg.spec, cfg.workers), cfg)
}

// runParallelProbe measures the probe phase of a pre-built partitioned
// workload with every worker running its own engine instance over its
// partition on a private core. Each worker gets a private System whose L3 is
// its capacity share of the socket's LLC (Config.ShareLLC) and whose
// off-chip queue is told that all workers are active, so queue contention
// scales with the worker count as on the real socket. Tables are
// cache-warmed per worker, mirroring the single-core probe-only harness
// (runJoin). When the worker count exceeds the socket's hardware contexts,
// the merged elapsed cycles are scaled by workers/contexts — ideal
// round-robin time-slicing of the surplus workers — so oversubscribed rows
// never report physically impossible concurrency.
func runParallelProbe(pj *ops.PartitionedHashJoin, cfg parallelJoinConfig) parallelJoinResult {
	return runParallelProbeOuts(pj, cfg, nil)
}

// runParallelProbeOuts is runParallelProbe with caller-provided output
// collectors (one per worker, reset). The serving sweep pre-allocates its
// collectors in run order when the partitioned workload is materialized, so
// every sweep worker's copy lays them out at identical arena addresses; nil
// keeps the classic allocate-at-run behaviour.
func runParallelProbeOuts(pj *ops.PartitionedHashJoin, cfg parallelJoinConfig, outs []*ops.Output) parallelJoinResult {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.window <= 0 {
		cfg.window = ops.DefaultWindow
	}

	cores := make([]*memsim.Core, cfg.workers)
	machines := make([]*ops.ProbeMachine, cfg.workers)
	if outs == nil {
		outs = make([]*ops.Output, cfg.workers)
		for w := 0; w < cfg.workers; w++ {
			outs[w] = ops.NewOutput(pj.Parts[w].Arena, false)
			outs[w].Sequential = true // dense per-worker output partition
		}
	}
	shared := cfg.machine.ShareLLC(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		sys := memsim.MustSystem(shared)
		cores[w] = sys.NewCore()
		sys.SetActiveThreads(cfg.workers, cores[w])
		warmTable(cores[w], pj.Parts[w])
		cores[w].ResetStats()
		machines[w] = pj.ProbeMachine(w, outs[w], cfg.earlyExit)
	}

	ps := exec.RunParallel(cores, func(w int, c *memsim.Core) {
		ops.RunMachine(c, machines[w], cfg.tech, ops.Params{Window: cfg.window})
	})

	res := parallelJoinResult{
		perWorker: ps.PerWorker,
		merged:    ps.Merged,
		tuples:    pj.ProbeTuples(),
	}
	if hw := cfg.machine.HardwareThreads(); cfg.workers > hw {
		res.merged.Cycles = res.merged.Cycles * uint64(cfg.workers) / uint64(hw)
	}
	for _, out := range outs {
		res.outputCount += out.Count
		res.outputChecksum += out.Checksum
	}
	return res
}

// groupByConfig describes one group-by measurement.
type groupByConfig struct {
	machine memsim.Config
	spec    relation.GroupBySpec
	tech    ops.Technique
	window  int
}

// runGroupBy measures a group-by phase.
func runGroupBy(cfg groupByConfig) phaseResult {
	if cfg.window <= 0 {
		cfg.window = ops.DefaultWindow
	}
	rel := cachedGroupByRelation(cfg.spec)
	groups := cfg.spec.Size / cfg.spec.Repeats
	g := ops.NewGroupBy(rel, groups)
	sys := memsim.MustSystem(cfg.machine)
	core := sys.NewCore()
	ops.RunMachine(core, g.Machine(), cfg.tech, ops.Params{Window: cfg.window})
	return phaseResult{cycles: core.Cycle(), stats: core.Stats(), tuples: rel.Len()}
}

// runBSTSearch measures a tree-search phase over a 2^sizeExp-node tree.
func runBSTSearch(e *sweepEnv, machine memsim.Config, sizeExp int, tech ops.Technique, window int, seed uint64) phaseResult {
	w, out := e.wl.bstWorkload(1<<sizeExp, seed)
	sys := memsim.MustSystem(machine)
	core := sys.NewCore()
	ops.RunMachine(core, w.SearchMachine(out), tech, ops.Params{Window: window})
	return phaseResult{cycles: core.Cycle(), stats: core.Stats(), tuples: w.Probe.Len(), outputCount: out.Count}
}

// runSkipListSearch measures a search phase over a pre-built skip list.
func runSkipListSearch(e *sweepEnv, machine memsim.Config, sizeExp int, tech ops.Technique, window int, seed uint64) phaseResult {
	w, out := e.wl.skipListSearch(1<<sizeExp, seed)
	sys := memsim.MustSystem(machine)
	core := sys.NewCore()
	ops.RunMachine(core, w.SearchMachine(out), tech, ops.Params{Window: window})
	return phaseResult{cycles: core.Cycle(), stats: core.Stats(), tuples: w.Probe.Len(), outputCount: out.Count}
}

// runSkipListInsert measures building a skip list from scratch.
func runSkipListInsert(machine memsim.Config, sizeExp int, tech ops.Technique, window int, seed uint64) phaseResult {
	// Inserts mutate the list, so only the relations are cached; the list is
	// rebuilt fresh for every measured run.
	build, probe := cachedIndexRelations(1<<sizeExp, seed)
	w := ops.NewSkipListWorkload(build, probe)
	sys := memsim.MustSystem(machine)
	core := sys.NewCore()
	m := w.InsertMachine(seed)
	ops.RunMachine(core, m, tech, ops.Params{Window: window})
	return phaseResult{cycles: core.Cycle(), stats: core.Stats(), tuples: build.Len(), outputCount: uint64(m.Inserted)}
}

// techColumns is the column order used by most figures.
var techColumns = []string{"Baseline", "GP", "SPP", "AMAC"}

// skewLabel renders the paper's [Z_R, Z_S] notation.
func skewLabel(zr, zs float64) string {
	return fmt.Sprintf("[%.2g, %.2g]", zr, zs)
}

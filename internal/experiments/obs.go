package experiments

import (
	"fmt"

	"amac/internal/adapt"
	"amac/internal/memsim"
	"amac/internal/obs"
	"amac/internal/profile"
)

func init() {
	register(Descriptor{
		ID:    "obsN",
		Title: "Observability replay: the adaptive controller's decision timeline on a phase-shift workload",
		Run:   obsN,
	})
}

// obsTimelineCap bounds the decision-timeline table; a healthy run records a
// handful of decisions, so hitting the cap is itself a diagnostic.
const obsTimelineCap = 32

// obsN replays the adaptN shift-join workload — probes cross from an
// L2-resident dimension table to a DRAM-resident table mid-batch — under one
// adaptive controller and prints its decision log as a timeline table: every
// probe epoch, calibration, technique switch and drift re-probe with the
// simulated cycle it happened at, the width in force and the
// cycles-per-lookup evidence it acted on. This is the observability
// subsystem's demonstration experiment: with -trace the same run exports the
// slot-lifecycle/decision/width tracks to a Perfetto-loadable file, and with
// -metrics it samples width, MSHR occupancy and stall fraction as a time
// series — but the timeline table itself comes from the always-on decision
// log, so the experiment is equally useful untraced (including under
// -exp all). The replay is a single serial cell; tracing and metrics observe
// the identical run, so the table is byte-identical with or without them.
func obsN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	machine := memsim.XeonX5670()
	seed := cfg.seed()
	n := sz.joinLarge
	half := n / 2

	ex := defaultEnv.wl.adaptWorkload(adaptKey{"shiftjoin", sz.adaptDim, n, half, seed}, func() adaptExec {
		return adaptShiftJoinExec(sz.adaptDim, n, half, seed)
	})
	c := adaptCore(machine, ex)
	ctl := adapt.NewController(adaptConfig(sz))

	// Attach the observability sinks. Metrics without tracing still needs a
	// CoreTrace as the width-gauge holder; an unregistered discard core serves
	// (same contract as the serving layer).
	tr := cfg.Trace.Core("adaptive core")
	if tr == nil && cfg.Metrics != nil {
		tr = obs.NewDiscardCore()
	}
	ctl.SetTrace(tr)
	if cfg.Metrics != nil {
		cm := cfg.Metrics.Core("adaptive core")
		cm.Gauge("width", func() float64 { return float64(tr.Width()) })
		cm.Gauge("mshr_outstanding", func() float64 { return float64(c.MSHROutstanding()) })
		var prev memsim.Stats
		cm.Gauge("stall_fraction", func() float64 {
			s := c.Stats()
			busy := (s.Cycles - prev.Cycles) - (s.IdleCycles - prev.IdleCycles)
			stall := s.StallCycles - prev.StallCycles
			prev = s
			if busy == 0 {
				return 0
			}
			return float64(stall) / float64(busy)
		})
		c.SetCycleHook(cfg.Metrics.Interval(), cm.Tick)
	}

	ex.adaptive(c, ctl)
	c.SetCycleHook(0, nil)
	cycles := c.Cycle()

	decisions := ctl.Decisions()
	shown := decisions
	if len(shown) > obsTimelineCap {
		shown = shown[:obsTimelineCap]
	}
	rows := make([]string, len(shown))
	for i, d := range shown {
		rows[i] = fmt.Sprintf("%02d %s", i+1, obsDecisionLabel(d))
	}
	cols := []string{"kcycles", "width", "cpl"}
	t := profile.New("obsN", "Adaptive controller decision timeline on the shift dim→big join (Xeon)", "", rows, cols)
	for i, d := range shown {
		t.Set(rows[i], "kcycles", float64(d.Cycle)/1000)
		t.Set(rows[i], "width", float64(d.Width))
		t.Set(rows[i], "cpl", d.CPL)
	}
	t.AddNote("rows are the controller's decision log in order: probe epochs, calibrations (→ winner), switches (from→to) and re-probes; cpl is the cycles-per-lookup evidence the decision acted on (zero when none applies)")
	t.AddNote("replay: shift dim→big join, 2×2^%d lookups, %d total kcycles (%.1f cycles/lookup), dim table %d keys, scale %q, seed %d",
		log2(half), cycles/1000, float64(cycles)/float64(ex.lookups), sz.adaptDim, cfg.scale(), seed)
	if len(decisions) > obsTimelineCap {
		t.AddNote("timeline truncated: %d of %d decisions shown", obsTimelineCap, len(decisions))
	}
	return []*profile.Table{t}
}

// obsDecisionLabel renders one decision-log entry as a timeline row label.
func obsDecisionLabel(d adapt.Decision) string {
	switch {
	case d.From != d.To:
		return fmt.Sprintf("%v %v→%v", d.Kind, d.From, d.To)
	case d.Kind == adapt.KindCalibrate:
		return fmt.Sprintf("calibrate→%v", d.To)
	default:
		return d.Kind.String()
	}
}

package experiments

import (
	"strings"
	"sync"
	"testing"

	"amac/internal/profile"
	"amac/internal/relation"
	"amac/internal/serve"
)

// TestSharedCachesConcurrentFirstBuild hammers the process-wide immutable
// caches from many goroutines racing on the same keys, the exact pattern
// parallel sweep workers produce on a cold cache. Run under -race in CI.
// Every goroutine must observe the same published value (per-key build runs
// exactly once).
func TestSharedCachesConcurrentFirstBuild(t *testing.T) {
	spec := relation.JoinSpec{BuildSize: 1 << 10, ProbeSize: 1 << 10, ZipfBuild: 0.5, Seed: 971}
	gspec := relation.GroupBySpec{Size: 1 << 10, Repeats: 3, Zipf: 0.5, Seed: 971}

	const workers = 16
	type seen struct {
		build, probe *relation.Relation
		group        *relation.Relation
		idx          *relation.Relation
		arr          *uint64 // first element of the shared schedule
		arrLen       int
	}
	got := make([]seen, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				b, p := cachedJoinRelations(spec)
				ib, _ := cachedIndexRelations(1<<9, 971)
				g := cachedGroupByRelation(gspec)
				a := cachedArrivalSchedule("poisson", 123.5, 1<<10, 971)
				got[w] = seen{build: b, probe: p, group: g, idx: ib, arr: &a[0], arrLen: len(a)}
			}
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatalf("worker %d observed different cache entries than worker 0: %+v vs %+v", w, got[w], got[0])
		}
	}
	if got[0].arrLen != 1<<10 {
		t.Fatalf("arrival schedule has %d entries, want %d", got[0].arrLen, 1<<10)
	}
}

// TestArrivalScheduleCacheMatchesFreshBuild pins the cache to the uncached
// construction: same process, rate, length and seed must yield the same
// schedule a direct build produces.
func TestArrivalScheduleCacheMatchesFreshBuild(t *testing.T) {
	for _, name := range []string{"deterministic", "poisson", "bursty"} {
		got := cachedArrivalSchedule(name, 333.25, 500, 7)
		fresh := mustSchedule(t, name, 333.25, 500, 7)
		if len(got) != len(fresh) {
			t.Fatalf("%s: cached length %d, fresh %d", name, len(got), len(fresh))
		}
		for i := range got {
			if got[i] != fresh[i] {
				t.Fatalf("%s: arrival %d: cached %d, fresh %d", name, i, got[i], fresh[i])
			}
		}
	}
}

// renderAll flattens tables into one comparable string.
func renderAll(tables []*profile.Table) string {
	var b strings.Builder
	for _, tab := range tables {
		tab.Render(&b)
	}
	return b.String()
}

// TestSweepParallelMatchesSerial is the tentpole invariant: fanning sweep
// points over host workers must reproduce the serial run byte for byte —
// every worker materializes its own deterministic workload copies, and
// results are consumed in submission order. Exercised across the sweep
// shapes (per-cell joins, per-row partitioned probes, serving cells, index
// sweeps). Run under -race in CI.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		id  string
		cfg Config
	}{
		{"fig6", Config{Scale: Tiny, Seed: 11}},
		{"fig5a", Config{Scale: Tiny, Seed: 11}},
		{"scaleN", Config{Scale: Tiny, Seed: 11, Workers: 4}},
		{"serveN", Config{Scale: Tiny, Seed: 11, Workers: 2}},
		{"serveN", Config{Scale: Tiny, Seed: 11, Arrivals: "bursty", QueueCap: 32}},
		{"fig10", Config{Scale: Tiny, Seed: 11}},
		{"pipeN", Config{Scale: Tiny, Seed: 11}},
		{"pipeN", Config{Scale: Tiny, Seed: 11, QueueCap: 32}},
	}
	for _, tc := range cases {
		serialCfg := tc.cfg
		serialCfg.Parallel = 1
		parallelCfg := tc.cfg
		parallelCfg.Parallel = 4

		serialTables, err := Run(tc.id, serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		parallelTables, err := Run(tc.id, parallelCfg)
		if err != nil {
			t.Fatal(err)
		}
		if s, p := renderAll(serialTables), renderAll(parallelTables); s != p {
			t.Errorf("%s (%+v): parallel sweep diverged from serial\n--- serial ---\n%s\n--- parallel ---\n%s", tc.id, tc.cfg, s, p)
		}
	}
}

func mustSchedule(t *testing.T, name string, period float64, n int, seed uint64) []uint64 {
	t.Helper()
	proc, err := serve.ParseArrivals(name, period)
	if err != nil {
		t.Fatal(err)
	}
	return proc.Schedule(n, seed)
}

package experiments

import (
	"fmt"

	"amac/internal/memsim"
	"amac/internal/ops"
	"amac/internal/profile"
	"amac/internal/relation"
)

func init() {
	register(Descriptor{ID: "fig3", Title: "Motivation: normalized cycles per lookup under uniform, non-uniform and skewed traversals (Xeon)", Run: fig3})
	register(Descriptor{ID: "table3", Title: "Execution profile of the uniform small join (instructions and cycles per tuple, Xeon)", Run: table3})
	register(Descriptor{ID: "fig5a", Title: "Hash join with small build relation: cycles per output tuple under skew (Xeon)", Run: fig5a})
	register(Descriptor{ID: "fig5b", Title: "Hash join with equally sized relations: cycles per output tuple under skew (Xeon)", Run: fig5b})
	register(Descriptor{ID: "fig6", Title: "Probe sensitivity to the number of in-flight lookups (Xeon, large join)", Run: fig6})
	register(Descriptor{ID: "fig7", Title: "Probe throughput scalability on Xeon (uniform and skewed keys)", Run: fig7})
	register(Descriptor{ID: "fig8", Title: "Probe throughput scalability on SPARC T4 (uniform and skewed keys)", Run: fig8})
	register(Descriptor{ID: "table4", Title: "Probe scalability profiling on Xeon: IPC and L1-D MSHR hits per kilo-instruction", Run: table4})
	register(Descriptor{ID: "fig12a", Title: "Hash join on SPARC T4: cycles per output tuple under skew", Run: fig12a})
	register(Descriptor{ID: "scaleN", Title: "Sharded multi-core probe: aggregate throughput and speedup versus worker count (Xeon, partitioned join)", Run: scaleN})
}

// fig3SkewFactor is the Zipf factor of the motivation experiment's skewed
// traversal (Section 2.2.2).
const fig3SkewFactor = 0.75

// fig3 reproduces Figure 3: hash probes over a table provisioned with four
// nodes per bucket, under three traversal regimes, normalized to the
// baseline's uniform-traversal cost.
func fig3(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	n := sz.joinLarge
	rows := []string{"Uniform traversals", "Non-uniform traversals", "Skewed traversals"}
	t := profile.New("fig3", "Normalized cycles per lookup tuple (baseline uniform = 1)", "x", rows, techColumns)
	t.AddNote("|R| = |S| = 2^%d tuples, 4 nodes per bucket, scale %q", log2(n), cfg.scale())

	type variant struct {
		label     string
		zipfBuild float64
		earlyExit bool
	}
	variants := []variant{
		{"Uniform traversals", 0, false},
		{"Non-uniform traversals", 0, true},
		{"Skewed traversals", fig3SkewFactor, false},
	}

	type cell struct {
		v    variant
		tech ops.Technique
	}
	var cells []cell
	var tasks []func(*sweepEnv) joinResult
	for _, v := range variants {
		for _, tech := range ops.Techniques {
			jc := joinConfig{
				machine:   memsim.XeonX5670(),
				spec:      relation.JoinSpec{BuildSize: n, ProbeSize: n, ZipfBuild: v.zipfBuild, Seed: cfg.seed()},
				buckets:   n / 8, // four two-tuple nodes per bucket
				earlyExit: v.earlyExit,
				provision: 5, // the common case is four node visits (Section 2.2.2)
				tech:      tech,
				window:    cfg.window(),
			}
			cells = append(cells, cell{v, tech})
			tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
		}
	}

	var baselineUniform float64
	for i, res := range runSweep(cfg, tasks) {
		c := cells[i]
		cpt := res.probe.cyclesPerTuple()
		if c.v.label == "Uniform traversals" && c.tech == ops.Baseline {
			baselineUniform = cpt
		}
		t.Set(c.v.label, c.tech.String(), cpt)
	}
	if baselineUniform > 0 {
		for i := range t.Values {
			for j := range t.Values[i] {
				t.Values[i][j] /= baselineUniform
			}
		}
	}
	return []*profile.Table{t}
}

// table3 reproduces Table 3: instructions per tuple and cycles per tuple for
// the uniform join with unequal table sizes (the LLC-resident build table).
func table3(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	t := profile.New("table3", "Uniform join with unequal table sizes (2MB-class build)", "per probe tuple",
		[]string{"Instructions per Tuple", "Cycles per Tuple"}, techColumns)
	t.AddNote("|R| = 2^%d, |S| = 2^%d, scale %q", log2(sz.joinSmall), log2(sz.joinLarge), cfg.scale())
	var tasks []func(*sweepEnv) joinResult
	for _, tech := range ops.Techniques {
		jc := joinConfig{
			machine:   memsim.XeonX5670(),
			spec:      relation.JoinSpec{BuildSize: sz.joinSmall, ProbeSize: sz.joinLarge, Seed: cfg.seed()},
			earlyExit: true,
			tech:      tech,
			window:    cfg.window(),
		}
		tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
	}
	for i, res := range runSweep(cfg, tasks) {
		tech := ops.Techniques[i]
		t.Set("Instructions per Tuple", tech.String(), res.probe.instrPerTuple())
		t.Set("Cycles per Tuple", tech.String(), res.probe.cyclesPerTuple())
	}
	return []*profile.Table{t}
}

// joinSkews are the [Z_R, Z_S] configurations of Figure 5 and Figure 12a.
var joinSkews = [][2]float64{{0, 0}, {0.5, 0}, {1, 0}, {0.5, 0.5}, {1, 1}}

// runFig5 measures build and probe cycles per output tuple for every skew
// configuration and technique on one machine.
func runFig5(cfg Config, id, title string, machine memsim.Config, buildSize, probeSize int) []*profile.Table {
	rows := make([]string, len(joinSkews))
	for i, s := range joinSkews {
		rows[i] = skewLabel(s[0], s[1])
	}
	total := profile.New(id, title+" (build + probe)", "cycles/output tuple", rows, techColumns)
	buildT := profile.New(id+"-build", title+" (build phase only)", "cycles/output tuple", rows, techColumns)
	probeT := profile.New(id+"-probe", title+" (probe phase only)", "cycles/output tuple", rows, techColumns)
	total.AddNote("|R| = 2^%d, |S| = 2^%d, scale %q; output tuples = probe tuples", log2(buildSize), log2(probeSize), cfg.scale())

	type cell struct {
		row  string
		tech ops.Technique
	}
	var cells []cell
	var tasks []func(*sweepEnv) joinResult
	for _, s := range joinSkews {
		for _, tech := range ops.Techniques {
			jc := joinConfig{
				machine: machine,
				spec:    relation.JoinSpec{BuildSize: buildSize, ProbeSize: probeSize, ZipfBuild: s[0], ZipfProbe: s[1], Seed: cfg.seed()},
				// The paper's probe stages (Table 1) terminate at the first
				// match; under build-key skew the irregularity comes from
				// the long chains a probe must traverse before finding its
				// match (or the chain end), not from emitting every match.
				earlyExit:   true,
				tech:        tech,
				window:      cfg.window(),
				chargeBuild: true,
			}
			cells = append(cells, cell{skewLabel(s[0], s[1]), tech})
			tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		c := cells[i]
		buildPerOut := float64(res.build.cycles) / float64(res.probe.tuples)
		probePerOut := res.probe.cyclesPerTuple()
		buildT.Set(c.row, c.tech.String(), buildPerOut)
		probeT.Set(c.row, c.tech.String(), probePerOut)
		total.Set(c.row, c.tech.String(), buildPerOut+probePerOut)
	}
	return []*profile.Table{total, buildT, probeT}
}

func fig5a(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	return runFig5(cfg, "fig5a", "Small build relation join", memsim.XeonX5670(), sz.joinSmall, sz.joinLarge)
}

func fig5b(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	return runFig5(cfg, "fig5b", "Equally sized relations join", memsim.XeonX5670(), sz.joinLarge, sz.joinLarge)
}

// fig6 reproduces Figure 6: probe cycles per tuple as a function of the
// number of in-flight lookups, for GP, SPP and AMAC, under the five skew
// configurations. One table per technique (6a, 6b, 6c).
func fig6(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	cols := make([]string, len(joinSkews))
	for i, s := range joinSkews {
		cols[i] = skewLabel(s[0], s[1])
	}
	rows := make([]string, len(sz.windows))
	for i, w := range sz.windows {
		rows[i] = fmt.Sprintf("%d", w)
	}

	type cell struct {
		table int
		row   string
		col   string
	}
	var out []*profile.Table
	var cells []cell
	var tasks []func(*sweepEnv) joinResult
	for i, tech := range ops.PrefetchingTechniques {
		sub := string(rune('a' + i))
		t := profile.New("fig6"+sub, fmt.Sprintf("Probe sensitivity to in-flight lookups: %s", tech), "cycles/probe tuple", rows, cols)
		t.AddNote("rows: number of in-flight lookups; |R| = |S| = 2^%d, scale %q", log2(sz.joinLarge), cfg.scale())
		out = append(out, t)
		for _, s := range joinSkews {
			for _, w := range sz.windows {
				jc := joinConfig{
					machine:   memsim.XeonX5670(),
					spec:      relation.JoinSpec{BuildSize: sz.joinLarge, ProbeSize: sz.joinLarge, ZipfBuild: s[0], ZipfProbe: s[1], Seed: cfg.seed()},
					earlyExit: true, // first-match probe, as in the paper's Table 1
					tech:      tech,
					window:    w,
				}
				cells = append(cells, cell{i, fmt.Sprintf("%d", w), skewLabel(s[0], s[1])})
				tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
			}
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		c := cells[i]
		out[c.table].Set(c.row, c.col, res.probe.cyclesPerTuple())
	}
	return out
}

// scalabilitySkews are the [Z_R, Z_S] configurations of Figures 7 and 8.
var scalabilitySkews = [][2]float64{{0, 0}, {0.5, 0.5}, {1, 1}}

// runScalability measures probe throughput versus thread count.
func runScalability(cfg Config, id, title string, machine memsim.Config, threads []int, joinSize int) []*profile.Table {
	type cell struct {
		table   int
		row     string
		tech    ops.Technique
		threads int
	}
	var out []*profile.Table
	var cells []cell
	var tasks []func(*sweepEnv) joinResult
	for i, s := range scalabilitySkews {
		sub := string(rune('a' + i))
		rows := make([]string, len(threads))
		for k, th := range threads {
			rows[k] = fmt.Sprintf("%d", th)
		}
		t := profile.New(id+sub, fmt.Sprintf("%s, keys %s", title, skewLabel(s[0], s[1])), "M tuples/s", rows, techColumns)
		t.AddNote("rows: hardware threads; |R| = |S| = 2^%d, scale %q", log2(joinSize), cfg.scale())
		out = append(out, t)
		for _, th := range threads {
			for _, tech := range ops.Techniques {
				jc := joinConfig{
					machine:   machine,
					spec:      relation.JoinSpec{BuildSize: joinSize, ProbeSize: joinSize, ZipfBuild: s[0], ZipfProbe: s[1], Seed: cfg.seed()},
					earlyExit: true, // first-match probe, as in the paper's Table 1
					tech:      tech,
					window:    cfg.window(),
					threads:   th,
				}
				cells = append(cells, cell{i, fmt.Sprintf("%d", th), tech, th})
				tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
			}
		}
	}
	for i, res := range runSweep(cfg, tasks) {
		c := cells[i]
		out[c.table].Set(c.row, c.tech.String(), res.probe.throughputMTuplesPerSec(machine.FreqHz, c.threads))
	}
	return out
}

func fig7(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	return runScalability(cfg, "fig7", "Hash table probe scalability on Xeon x5670", memsim.XeonX5670(), sz.xeonThreads, sz.joinLarge)
}

func fig8(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	return runScalability(cfg, "fig8", "Hash table probe scalability on SPARC T4", memsim.SPARCT4(), sz.t4Threads, sz.joinLarge)
}

// scaleN measures the sharded multi-core execution layer: the probe relation
// is hash-partitioned across W workers, each worker runs its own engine
// instance over its private table on a private core (concurrently, on real
// goroutines), and the aggregate throughput is total tuples over the slowest
// worker's time. Unlike fig7/fig8 — which extrapolate from one simulated
// representative thread — every worker here is simulated in full, so load
// imbalance across partitions shows up in the merged numbers. Uniform unique
// build keys keep the first-match output independent of the partition count.
func scaleN(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	n := sz.joinLarge
	machine := memsim.XeonX5670()
	counts := cfg.workerCounts()
	rows := make([]string, len(counts))
	for i, w := range counts {
		rows[i] = fmt.Sprintf("%d", w)
	}
	tput := profile.New("scaleN", "Partitioned probe: aggregate throughput versus workers (Xeon)", "M tuples/s", rows, techColumns)
	speed := profile.New("scaleN-speedup", "Partitioned probe: speedup versus one worker (Xeon)", "x", rows, techColumns)
	tput.AddNote("rows: workers, each simulated on a private core with an LLC capacity share; |R| = |S| = 2^%d, scale %q", log2(n), cfg.scale())
	tput.AddNote("throughput = total probe tuples / slowest worker's elapsed time")
	if counts[len(counts)-1] > machine.HardwareThreads() {
		tput.AddNote("rows beyond the socket's %d hardware threads time-slice the surplus workers (elapsed x W/%d)",
			machine.HardwareThreads(), machine.HardwareThreads())
	}

	spec := relation.JoinSpec{BuildSize: n, ProbeSize: n, Seed: cfg.seed()}
	// One task per worker count: each task materializes its own partitioned
	// workload (fresh per count, as before) and probes it read-only with
	// every technique in the fixed column order, so tasks are independent
	// and can fan out across sweep workers.
	var tasks []func(*sweepEnv) []float64
	for _, w := range counts {
		w := w
		tasks = append(tasks, func(*sweepEnv) []float64 {
			pj := newParallelJoin(spec, w)
			tputs := make([]float64, len(ops.Techniques))
			for t, tech := range ops.Techniques {
				res := runParallelProbe(pj, parallelJoinConfig{
					machine:   machine,
					workers:   w,
					tech:      tech,
					window:    cfg.window(),
					earlyExit: true, // unique build keys: first match == only match
				})
				tputs[t] = res.aggregateThroughputMTuplesPerSec(machine.FreqHz)
			}
			return tputs
		})
	}
	base := make(map[ops.Technique]float64)
	for i, tputs := range runSweep(cfg, tasks) {
		w := counts[i]
		for t, tech := range ops.Techniques {
			th := tputs[t]
			if _, ok := base[tech]; !ok {
				base[tech] = th
			}
			tput.Set(fmt.Sprintf("%d", w), tech.String(), th)
			if base[tech] > 0 {
				speed.Set(fmt.Sprintf("%d", w), tech.String(), th/base[tech])
			}
		}
	}
	return []*profile.Table{tput, speed}
}

// table4 reproduces Table 4: IPC and MSHR hits per kilo-instruction of the
// AMAC probe phase while increasing the thread count, including the
// two-socket "2+2" configuration that relieves the LLC queue contention.
func table4(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	cols := []string{"1", "2", "4", "6", "2+2"}
	t := profile.New("table4", "Hash join probe scalability profiling on Xeon x5670 (AMAC)", "",
		[]string{"IPC", "L1-D MSHR Hits (per k-inst.)", "MSHR hit wait cycles (per k-inst.)"}, cols)
	t.AddNote("columns: threads; 2+2 = four threads over two sockets; |R| = |S| = 2^%d, scale %q", log2(sz.joinLarge), cfg.scale())

	type point struct {
		label            string
		threads          int
		threadsPerSocket int
	}
	points := []point{
		{"1", 1, 1}, {"2", 2, 2}, {"4", 4, 4}, {"6", 6, 6}, {"2+2", 4, 2},
	}
	var tasks []func(*sweepEnv) joinResult
	for _, p := range points {
		jc := joinConfig{
			machine:          memsim.XeonX5670(),
			spec:             relation.JoinSpec{BuildSize: sz.joinLarge, ProbeSize: sz.joinLarge, Seed: cfg.seed()},
			earlyExit:        true,
			tech:             ops.AMAC,
			window:           cfg.window(),
			threads:          p.threads,
			threadsPerSocket: p.threadsPerSocket,
		}
		tasks = append(tasks, func(e *sweepEnv) joinResult { return runJoin(e, jc) })
	}
	for i, res := range runSweep(cfg, tasks) {
		p := points[i]
		t.Set("IPC", p.label, res.probe.stats.IPC())
		t.Set("L1-D MSHR Hits (per k-inst.)", p.label, res.probe.stats.MSHRHitsPerKiloInstr())
		t.Set("MSHR hit wait cycles (per k-inst.)", p.label,
			1000*float64(res.probe.stats.MSHRHitWaitCycles)/float64(res.probe.stats.Instructions))
	}
	t.AddNote("the wait-cycles row is the simulator's analogue of rising MSHR-hit counts on real hardware: " +
		"prefetches that arrive late make demand loads wait on the outstanding miss")
	return []*profile.Table{t}
}

// fig12a reproduces the hash join portion of Figure 12 on the SPARC T4
// (large relations only; the T4 drops prefetches that hit on chip, so the
// paper does not evaluate the small join there).
func fig12a(cfg Config) []*profile.Table {
	sz := cfg.sizes()
	tables := runFig5(cfg, "fig12a", "Hash join on SPARC T4 (2GB-class relations)", memsim.SPARCT4(), sz.joinLarge, sz.joinLarge)
	// Figure 12a reports only the [0,0], [.5,.5] and [1,1] configurations.
	keep := map[string]bool{
		skewLabel(0, 0): true, skewLabel(0.5, 0.5): true, skewLabel(1, 1): true,
	}
	for _, t := range tables {
		filterRows(t, keep)
	}
	return tables
}

// filterRows drops rows whose label is not in keep.
func filterRows(t *profile.Table, keep map[string]bool) {
	var rows []string
	var vals [][]float64
	for i, r := range t.RowLabels {
		if keep[r] {
			rows = append(rows, r)
			vals = append(vals, t.Values[i])
		}
	}
	t.RowLabels = rows
	t.Values = vals
}

// log2 returns the floor of log2(n), used for labelling dataset sizes.
func log2(n int) int {
	l := 0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}

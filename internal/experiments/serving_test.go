package experiments

import (
	"testing"

	"amac/internal/profile"
)

func findTable(t *testing.T, tables []*profile.Table, id string) *profile.Table {
	t.Helper()
	for _, tb := range tables {
		if tb.ID == id {
			return tb
		}
	}
	t.Fatalf("no table %q in result", id)
	return nil
}

// TestServeNShapes asserts the serving experiment's decisive trend at smoke
// scale: near saturation (the 90% row) AMAC both sustains a higher achieved
// rate and holds a far lower p99 than the batch-boundary techniques,
// because its slots refill per completion rather than per batch.
func TestServeNShapes(t *testing.T) {
	cfg := Config{Scale: Tiny, Seed: 42, Workers: 2}
	tables, err := Run("serveN", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tput := findTable(t, tables, "serveN")
	p99 := findTable(t, tables, "serveN-p99")

	const nearSat = "90%"
	for _, other := range []string{"Baseline", "GP", "SPP"} {
		if a, o := tput.Get(nearSat, "AMAC"), tput.Get(nearSat, other); a < o {
			t.Errorf("near saturation AMAC throughput (%.1f) should be at least %s's (%.1f)", a, other, o)
		}
		if a, o := p99.Get(nearSat, "AMAC"), p99.Get(nearSat, other); a*2 > o {
			t.Errorf("near saturation AMAC p99 (%.1f kcycles) should be far below %s's (%.1f kcycles)", a, other, o)
		}
	}

	// At light load the open-loop property holds: every technique achieves
	// (close to) the offered rate, so the columns agree within 10%.
	light := tput.Get("30%", "AMAC")
	for _, other := range []string{"Baseline", "GP", "SPP"} {
		if o := tput.Get("30%", other); o < light*0.9 || o > light*1.1 {
			t.Errorf("at 30%% load %s throughput (%.1f) should match AMAC's (%.1f)", other, o, light)
		}
	}

	// Latency quantiles are ordered and positive.
	p50 := findTable(t, tables, "serveN-p50")
	for _, row := range p99.RowLabels {
		for _, col := range p99.ColLabels {
			lo, hi := p50.Get(row, col), p99.Get(row, col)
			if lo <= 0 || hi < lo {
				t.Errorf("%s/%s: p50 %.3f p99 %.3f must be positive and ordered", row, col, lo, hi)
			}
		}
	}
}

func TestServeNDropPolicy(t *testing.T) {
	cfg := Config{Scale: Tiny, Seed: 42, QueueCap: 16, Arrivals: "bursty"}
	tables, err := Run("serveN", cfg)
	if err != nil {
		t.Fatal(err)
	}
	drops := findTable(t, tables, "serveN-drops")
	for _, row := range drops.RowLabels {
		for _, col := range drops.ColLabels {
			if f := drops.Get(row, col); f < 0 || f > 1 {
				t.Errorf("%s/%s: drop fraction %f out of range", row, col, f)
			}
		}
	}
	// Under overload a bounded drop queue must reject some baseline traffic:
	// the baseline's capacity is a fraction of the offered 120% rate.
	if drops.Get("120%", "Baseline") == 0 {
		t.Error("overloaded baseline with a 16-deep drop queue should reject requests")
	}
	// And AMAC must drop less than the baseline at every load.
	for _, row := range drops.RowLabels {
		if a, b := drops.Get(row, "AMAC"), drops.Get(row, "Baseline"); a > b {
			t.Errorf("%s: AMAC drop fraction (%f) should not exceed the baseline's (%f)", row, a, b)
		}
	}
}

func TestServeNDeterministic(t *testing.T) {
	cfg := Config{Scale: Tiny, Seed: 7}
	a, err := Run("serveN", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("serveN", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for r := range a[i].Values {
			for c := range a[i].Values[r] {
				if a[i].Values[r][c] != b[i].Values[r][c] {
					t.Fatalf("table %s cell (%d,%d) differs across identical runs", a[i].ID, r, c)
				}
			}
		}
	}
}
